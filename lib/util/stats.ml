let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

(* Sample standard deviation (Bessel's correction, n - 1): the series we
   summarise are repetition samples, not whole populations, and dividing
   by n understates spread exactly where it matters — small repetition
   counts in bench/report summaries. *)
let stddev a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun s x -> s +. ((x -. m) *. (x -. m))) 0.0 a in
    sqrt (acc /. float_of_int (n - 1))
  end

(* Float.compare, not polymorphic compare: specialized (no boxing) and a
   deterministic total order on NaN-containing series (NaNs first). *)
let sorted_copy a =
  let b = Array.copy a in
  Array.sort Float.compare b;
  b

let median a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let b = sorted_copy a in
    if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0
  end

let percentile a ~p =
  if Float.is_nan p then invalid_arg "Stats.percentile: p is NaN";
  let p = Float.max 0.0 (Float.min 100.0 p) in
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let b = sorted_copy a in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then b.(lo)
    else begin
      let w = rank -. float_of_int lo in
      (b.(lo) *. (1.0 -. w)) +. (b.(hi) *. w)
    end
  end

let min_max a =
  if Array.length a = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (mn, mx) x -> (Float.min mn x, Float.max mx x))
    (a.(0), a.(0)) a

let geometric_mean a =
  let n = Array.length a in
  if n = 0 then 0.0
  else if Array.exists (fun x -> x < 0.0 || Float.is_nan x) a then
    invalid_arg "Stats.geometric_mean: negative or NaN input"
  else if Array.exists (fun x -> x = 0.0) a then 0.0
  else begin
    let acc = Array.fold_left (fun s x -> s +. log x) 0.0 a in
    exp (acc /. float_of_int n)
  end
