let num_domains () = Stdlib.min 8 (Domain.recommended_domain_count ())

let map ?domains f inputs =
  let n = Array.length inputs in
  let domains = match domains with Some d -> Stdlib.max 1 d | None -> num_domains () in
  if n = 0 then [||]
  else if domains = 1 || n = 1 then Array.map f inputs
  else begin
    let results = Array.make n None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else begin
          match f inputs.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
            (* First failure wins; the rest of the pool drains quickly. *)
            ignore (Atomic.compare_and_set failure None (Some e));
            continue := false
        end
      done
    in
    let spawned =
      Array.init (Stdlib.min domains n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Parallel.map: missing result (worker died?)")
      results
  end

let map_list ?domains f inputs =
  Array.to_list (map ?domains f (Array.of_list inputs))

let default_chunk domains = Stdlib.max domains (4 * domains)

let map_chunked ?domains ?chunk ~on_chunk f inputs =
  let n = Array.length inputs in
  let width = match domains with Some d -> Stdlib.max 1 d | None -> num_domains () in
  let chunk =
    match chunk with Some c -> Stdlib.max 1 c | None -> default_chunk width
  in
  let offset = ref 0 in
  while !offset < n do
    let len = Stdlib.min chunk (n - !offset) in
    (* Each chunk is one bounded parallel burst: the pool joins before
       [on_chunk] runs, so a raised exception (from a worker or from the
       callback itself) leaves no live domain behind and no chunk is
       reported out of order. *)
    let results = map ~domains:width f (Array.sub inputs !offset len) in
    on_chunk ~offset:!offset results;
    offset := !offset + len
  done
