(** Small descriptive-statistics helpers used by the experiment harness
    to aggregate per-platform results into the series reported in the
    paper's figures. *)

val mean : float array -> float
(** Arithmetic mean; 0 on an empty array. *)

val stddev : float array -> float
(** Sample standard deviation (Bessel's correction: the sum of squared
    deviations is divided by [n - 1], not [n], since the inputs are
    repetition samples); 0 on arrays of length < 2. *)

val median : float array -> float
(** Median (average of the two middle elements for even lengths); 0 on
    an empty array.  Does not mutate its argument.  Order statistics
    use [Float.compare], so NaN-containing series (degenerate 0/0
    ratio records) sort deterministically with NaNs first — i.e. NaNs
    occupy the {e low} ranks. *)

val percentile : float array -> p:float -> float
(** [percentile a ~p], linear interpolation between closest ranks; 0 on
    an empty array.  [p] is clamped to [\[0, 100\]], so [p < 0] yields
    the minimum and [p > 100] the maximum instead of indexing out of
    bounds.  NaN elements sort first (see {!median}).
    @raise Invalid_argument when [p] itself is NaN. *)

val min_max : float array -> float * float
(** Minimum and maximum.
    @raise Invalid_argument on an empty array. *)

val geometric_mean : float array -> float
(** Geometric mean; 0 on an empty array.  A zero element makes the
    result exactly 0 (instead of silently computing [exp (-.infinity)]
    — the Section 6.1 ratio summaries legitimately contain LPR scores
    of 0).
    @raise Invalid_argument on a negative or NaN input, whose geometric
    mean is undefined. *)
