type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: xor-shift-multiply mixing of a Weyl sequence. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let derive ~seed ~index =
  if index < 0 then invalid_arg "Prng.derive: negative index";
  (* Two splitmix derivation rounds: the seed selects a stream family,
     the index selects the member.  Equivalent to seeding a master
     generator and taking its [index]-th split, but O(1) in [index] —
     shard workers can jump straight to their slice of a campaign. *)
  let family = mix (Int64.add (Int64.of_int seed) golden_gamma) in
  { state =
      mix (Int64.add family (Int64.mul (Int64.of_int (index + 1)) golden_gamma)) }

(* Top 62 bits as a non-negative OCaml int. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int: lo > hi";
  let span = hi - lo + 1 in
  if span <= 0 then
    (* Range covers more than max_int: accept any 62-bit draw offset. *)
    lo + bits62 t
  else begin
    (* Rejection sampling for exact uniformity. *)
    let bound = 0x3FFF_FFFF_FFFF_FFFF / span * span in
    let rec draw () =
      let v = bits62 t in
      if v >= bound then draw () else lo + (v mod span)
    in
    draw ()
  end

let float t ~lo ~hi =
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 uniform bits in [0,1). *)
  let unit = u *. 0x1.0p-53 in
  lo +. (unit *. (hi -. lo))

let bool t ~p = float t ~lo:0.0 ~hi:1.0 < p

let pick t a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t ~lo:0 ~hi:(n - 1))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~lo:0 ~hi:i in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
