(** Write-ahead journal machinery: append-only line logs with
    torn-tail recovery, plus atomic manifest writes.

    Factored out of the experiment {!Dls_experiments.Engine} so that
    every crash-safe component — the campaign runner, the resilience
    and dynamic experiments, the scheduler daemon — shares one
    implementation of the discipline:

    - {b Append-only log.}  One record per line (the codec is the
      caller's; {!Dls_util.Json} with its single-line guarantee is the
      usual choice), appended and flushed as work completes.
    - {b Torn-tail truncation.}  A process killed mid-append leaves at
      most one damaged line, and only at the end of the file: the final
      line either lacks its newline or fails to parse.  {!load} drops
      exactly that line and reports the valid prefix length;
      {!truncate_torn} shrinks the file back to it so subsequent
      appends continue from a clean state.  A corrupt line {e before}
      the end is real damage and is reported as an error, never
      silently skipped.
    - {b Atomic manifests.}  Derived state (checkpoints, fingerprints)
      is written via temp-file-and-rename ({!write_atomic}), so a crash
      mid-write loses the update but can never produce a torn file. *)

val load :
  of_line:(string -> ('e, string) result) ->
  path:string ->
  ('e list * int, string) result
(** Replay an existing log: entries in file order, plus the byte length
    of the valid prefix.  A final line that is unparseable or lacks its
    trailing newline is dropped (interrupted write); an invalid line
    {e before} the end is an [Error] mentioning [path] and the 1-based
    line number.  @raise Sys_error when the file cannot be read. *)

val truncate_torn : path:string -> valid_len:int -> int
(** Shrink [path] to [valid_len] bytes if it is currently longer;
    returns the number of bytes dropped (0 when the file was already
    clean).  Pair with the [valid_len] returned by {!load}. *)

val write_atomic : path:string -> string -> unit
(** Write a file via temp-and-rename, so a crash mid-write can only
    lose the update, never produce a torn file (the manifest
    discipline). *)

val open_append : path:string -> out_channel
(** Open (creating if needed) an append-mode channel suitable for the
    log: writes land after any valid prefix left by a previous run. *)

val append_line : out_channel -> string -> unit
(** Write one record line (the string must not contain ['\n'] — the
    caller's codec guarantees it) followed by a newline, and flush, so
    an accepted record survives any later crash of the process.
    @raise Invalid_argument if the line contains a newline. *)
