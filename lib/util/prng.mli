(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the library (platform generation,
    randomized rounding in LPRR, property-test workloads) draws from an
    explicit [Prng.t] so that experiments are exactly reproducible from a
    seed.  The generator is the splitmix64 mixer, which has a full 2^64
    period and passes BigCrush; it is more than adequate for simulation
    workloads and has no global state. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from an integer seed.  Equal seeds
    yield identical streams. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  The two
    streams are statistically independent; used to give sub-experiments
    their own stream so that adding draws to one does not perturb the
    other. *)

val derive : seed:int -> index:int -> t
(** [derive ~seed ~index] is the [index]-th member of the stream family
    identified by [seed]: a generator statistically independent of every
    other index's, computed in O(1) (no master generator to advance).
    This is what makes campaign evaluation order-free — any shard or
    domain can reconstruct platform [index]'s exact random draws without
    replaying the first [index - 1] platforms.
    @raise Invalid_argument on a negative [index]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> lo:int -> hi:int -> int
(** Uniform integer in the inclusive range [\[lo, hi\]].  Uses rejection
    sampling, so the distribution is exactly uniform.
    @raise Invalid_argument if [lo > hi]. *)

val float : t -> lo:float -> hi:float -> float
(** Uniform float in [\[lo, hi)]. *)

val bool : t -> p:float -> bool
(** Bernoulli draw: [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
