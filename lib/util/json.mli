(** Minimal strict JSON, used by the campaign runner's append-only JSONL
    record log and checkpoint manifest.

    Deliberately dependency-free and line-oriented: {!to_string} always
    produces a single compact line (no embedded newlines, even inside
    strings — they are escaped), so one JSON value per log line is an
    invariant the crash-recovery code can rely on; {!of_string} is
    strict (the whole input must be exactly one value) so a torn or
    partially-flushed trailing line is reported as [Error] rather than
    silently accepted. *)

type t =
  | Null
  | Bool of bool
  | Num of float
      (** Numbers are IEEE doubles, printed with ["%.17g"] so that
          decode (string -> float) is the exact inverse of encode —
          byte-stable across runs, which the determinism tests depend
          on.  Non-finite values are not representable in JSON. *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no spaces, no newlines).
    @raise Invalid_argument on a NaN or infinite {!Num} — the campaign
    records only finite measurements; anything else is a logic error
    upstream, not something to smuggle into a log file. *)

val of_string : string -> (t, string) result
(** Strict parse of exactly one JSON value: leading/trailing ASCII
    whitespace is allowed, any other trailing garbage (including a
    second value) is an error.  Never raises on malformed input. *)

(** {2 Accessors}

    Small total helpers so decoders read as straight-line code. *)

val member : string -> t -> t option
(** Field lookup in an {!Obj} ([None] on missing field or non-object). *)

val to_num : t -> (float, string) result

val to_int : t -> (int, string) result
(** A {!Num} that is an exact integer (no fractional part). *)

val to_str : t -> (string, string) result

val to_bool : t -> (bool, string) result

val to_list : t -> (t list, string) result
