(** Fixed-pool data parallelism over OCaml 5 domains.

    The experiment sweeps evaluate hundreds of independent platforms;
    each evaluation is pure CPU (simplex pivots), so they scale across
    cores.  This is a deliberately small work-stealing-free pool: tasks
    are indexed, each domain repeatedly claims the next undone index
    with an atomic counter, and results land in a pre-sized array — no
    locks on the hot path, deterministic output order regardless of
    scheduling.

    Determinism note for callers: generate the random inputs
    {e sequentially} first (so the PRNG draws are reproducible), then
    map over them in parallel. *)

val num_domains : unit -> int
(** Pool width used by default: [Domain.recommended_domain_count],
    capped at 8 (simplex working sets are cache-hungry). *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f inputs] applies [f] to every element, in parallel when
    [domains > 1] (default {!num_domains}).  Exceptions raised by [f]
    are re-raised in the caller after all domains join.  Result order
    matches input order. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** List convenience wrapper over {!map}. *)

val map_chunked :
  ?domains:int ->
  ?chunk:int ->
  on_chunk:(offset:int -> 'b array -> unit) ->
  ('a -> 'b) ->
  'a array ->
  unit
(** [map_chunked ~on_chunk f inputs] is the streaming form of {!map}:
    inputs are processed in consecutive chunks of [chunk] elements
    (default [4 * domains]), each chunk evaluated in parallel, and
    [on_chunk ~offset results] called after every chunk with
    [results.(i) = f inputs.(offset + i)].  Callbacks arrive strictly
    in input order with monotonically increasing offsets, and at most
    one chunk of results is live at a time — memory is O(chunk), not
    O(n), which is what lets a quarter-million-platform campaign stream
    to disk.  An exception raised by [f] (the first one, as in {!map})
    or by [on_chunk] propagates to the caller after all domains of the
    current chunk have joined: no orphan domains, and every chunk
    already reported is durable. *)
