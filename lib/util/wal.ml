let load ~of_line ~path =
  let content = In_channel.with_open_bin path In_channel.input_all in
  let len = String.length content in
  let rec go pos line_no acc =
    if pos >= len then Ok (List.rev acc, pos)
    else
      match String.index_from_opt content pos '\n' with
      | None ->
        (* Final line never got its newline: interrupted write. *)
        Ok (List.rev acc, pos)
      | Some nl -> (
        let line = String.sub content pos (nl - pos) in
        match of_line line with
        | Ok e -> go (nl + 1) (line_no + 1) (e :: acc)
        | Error msg ->
          if nl = len - 1 then
            (* Unparseable final line: also an interrupted write. *)
            Ok (List.rev acc, pos)
          else
            Error
              (Printf.sprintf "%s: corrupt entry at line %d: %s" path line_no
                 msg))
  in
  go 0 1 []

let truncate_torn ~path ~valid_len =
  let size = (Unix.stat path).Unix.st_size in
  if valid_len < size then begin
    Unix.truncate path valid_len;
    size - valid_len
  end
  else 0

let write_atomic ~path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let open_append ~path =
  open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path

let append_line oc line =
  if String.contains line '\n' then
    invalid_arg "Wal.append_line: record contains a newline";
  output_string oc line;
  output_char oc '\n';
  flush oc
