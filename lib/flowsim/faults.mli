(** Deterministic fault injection for the flow simulator.

    The paper's conclusion calls for refining the network model toward
    observed wide-area behaviour, where backbone links churn and
    clusters slow down or vanish.  This module describes that dynamism
    as a {e plan}: a time-sorted sequence of platform events — backbone
    link failure/recovery, per-connection bandwidth degradation,
    [max_connect] reduction, cluster speed throttling and crash — that
    {!Simulator.run} applies mid-execution and {!Dls_core.Repair}
    recovers from.

    Determinism contract: {!random} draws every entity's event stream
    from its own {!Dls_util.Prng.derive}d generator, so a fault trace is
    a pure function of [(seed, platform shape, horizon, rates)] —
    independent of evaluation order, domain count or shard partitioning,
    matching the campaign runner's reproducibility guarantees.  The test
    suite checks byte-identical traces across 1-vs-8 domains. *)

type kind =
  | Link_down of int  (** backbone link fails: no connection passes *)
  | Link_up of int  (** failed link recovers (degradation also clears) *)
  | Link_degrade of { link : int; factor : float }
      (** per-connection bandwidth multiplied by [factor] (in [(0, 1]];
          [1.0] restores the nominal bandwidth) *)
  | Max_connect of { link : int; limit : int }
      (** simultaneous-connection cap lowered (or restored) to [limit] *)
  | Cluster_throttle of { cluster : int; factor : float }
      (** compute speed multiplied by [factor] (in [(0, 1]]; [1.0]
          restores the nominal speed) *)
  | Cluster_crash of int
      (** cluster vanishes: speed and local link capacity drop to 0
          for the rest of the run (no recovery event) *)

type event = { time : float; kind : kind }

type policy = Stall | Kill
(** What {!Simulator.run} does with an in-flight transfer that a fault
    renders unmovable (down link on its route, crashed endpoint):
    [Stall] keeps it queued — it resumes if a recovery event restores
    capacity, otherwise it counts as stalled; [Kill] drops it
    immediately (the chunk never arrives) and counts it as killed. *)

type plan
(** An immutable, time-sorted event sequence for one platform. *)

val empty : plan

val make : Dls_platform.Platform.t -> event list -> plan
(** Sort (stable, by time) and validate a hand-written event list.
    @raise Invalid_argument on a negative time, an out-of-range link or
    cluster id, a degradation/throttle factor outside [(0, 1]], or a
    negative [Max_connect] limit. *)

val events : plan -> event list
(** Events in application order. *)

val is_empty : plan -> bool

val random :
  seed:int ->
  horizon:float ->
  ?link_rate:float ->
  ?cluster_rate:float ->
  Dls_platform.Platform.t ->
  plan
(** Seed-derived random plan over [[0, horizon)].  Each backbone link
    and each cluster gets its own Poisson event process
    ([link_rate] / [cluster_rate] expected events per entity per time
    unit, defaults 0 — i.e. an empty plan): links alternate between
    outright failure/recovery, bandwidth degradation/restoration and
    [max_connect] reduction/restoration episodes; clusters mostly
    throttle and recover, occasionally crash for good.  Entity [i]'s
    draws come from [Prng.derive ~seed ~index:i]-style streams, so the
    plan is reproducible in O(1) per entity regardless of who else was
    generated first.
    @raise Invalid_argument on a negative rate or horizon. *)

val pp_kind : Format.formatter -> kind -> unit
val pp_event : Format.formatter -> event -> unit

val kind_to_json : kind -> Dls_util.Json.t
(** One-object encoding ([{"fault":"link_down","link":3}], ...) — the
    wire format of the scheduler daemon's [platform_delta] request. *)

val kind_of_json : Dls_util.Json.t -> (kind, string) result
(** Inverse of {!kind_to_json}.  Structural decoding only: range checks
    against a platform happen in {!make}. *)

val trace : plan -> string
(** One line per event ([t=<time> <kind>]), byte-stable across runs —
    the determinism tests compare these strings. *)

(** {2 Cursor}

    Mutable application state over a plan, advanced by the simulator at
    event times. *)

type state

val start : Dls_platform.Platform.t -> plan -> state
(** Fresh cursor at time 0, all entities healthy. *)

val next_time : state -> float option
(** Time of the next unapplied event; [None] when exhausted. *)

val advance : state -> now:float -> event list
(** Apply every unapplied event with [time <= now] (closed at [now]: an
    event landing exactly on the boundary is applied); returns them in
    application order.  Each event is applied exactly once — a second
    [advance] to the same [now] returns []. *)

val apply_kind : state -> kind -> unit
(** Apply one event kind to the cursor immediately, outside any plan —
    the allocation daemon uses this to maintain a materialized view of
    its delta log instead of refolding the log per request.  Applying
    the same kinds in the same order as {!advance} would leaves the
    cursor in the identical state. *)

val link_factor : state -> int -> float
(** Current per-connection bandwidth multiplier of a backbone link: 0
    when down, the degradation factor otherwise. *)

val link_degradation : state -> int -> float
(** The raw degradation factor of a backbone link, ignoring whether the
    link is down (unlike {!link_factor}). *)

val link_max_connect : state -> int -> int
(** Current connection cap of a backbone link (0 when down). *)

val speed_factor : state -> int -> float
(** Current compute-speed multiplier of a cluster (0 when crashed). *)

val crashed : state -> int -> bool

val any_fault_active : state -> bool
(** Whether any entity currently deviates from its nominal state. *)

val degraded_platform : state -> Dls_platform.Platform.t
(** The residual platform under the cursor's current state, with the
    original routing table preserved: throttled/crashed clusters keep a
    scaled (or zero) speed, crashed clusters lose their local link,
    degraded backbones grant scaled per-connection bandwidth, and a
    {e down} backbone keeps its nominal bandwidth but drops to
    [max_connect = 0] — no connection can cross it, which is how the
    feasibility checker (Eqs. 7d/7e) and {!Dls_core.Residual} see an
    unusable link.  Feed the result to {!Dls_core.Repair}. *)

val degraded_at : Dls_platform.Platform.t -> plan -> time:float -> Dls_platform.Platform.t
(** Convenience: the degraded platform after applying every event with
    [time <= time] to a fresh cursor. *)

val downtime : Dls_platform.Platform.t -> plan -> horizon:float -> float
(** Total time over the half-open window [[0, horizon)] during which at
    least one fault was active ({!any_fault_active}).  The half-open
    convention means an event landing exactly on the horizon is outside
    the window and contributes nothing: a fault starting at [horizon]
    adds no downtime, and a recovery at [horizon] does not clip the
    preceding fault episode, which is charged up to the horizon.
    Abutting episodes (one ends exactly where the next begins) count
    the shared boundary instant once — intervals never double-count. *)
