(** Flow-level execution of a periodic steady-state schedule.

    The paper argues (Section 3.2) that any valid allocation can be
    turned into a periodic schedule: during each period every cluster
    ships its chunks and computes the chunks received in the previous
    period.  This simulator executes that pattern under the Section 2
    bandwidth-sharing model — local links max-min shared, backbone
    connections individually capped — and measures the long-run
    throughput actually achieved per application, providing an
    independent, equation-free check of the steady-state analysis.

    Transfers of one period all start at the period boundary; rates are
    the max-min fair equilibrium, recomputed at every flow completion
    (processor sharing).  A chunk becomes computable at the destination
    when its transfer completes; clusters drain their compute queues at
    their speed, FIFO and work-conserving.  Transfers that overrun their
    period (possible: per-link feasibility does not imply that the
    concurrent max-min schedule meets every deadline) simply continue,
    delaying their chunk — the measured throughput quantifies the
    effect. *)

type stats = {
  predicted : float array;
  (** per-application throughput promised by the allocation, [alpha_k] *)
  achieved : float array;
  (** per-application work computed per time unit over the measurement
      window (after warm-up) *)
  late_transfers : int;
  (** transfers that completed after the period in which they started *)
  stalled_transfers : int;
  (** transfers that could never move (zero rate): an infeasible input,
      or — under a fault plan with the [Stall] policy — transfers still
      wedged on a failed route or dead endpoint when the run ends *)
  killed_transfers : int;
  (** transfers dropped by the [Kill] fault policy (0 without faults) *)
  fault_events : int;
  (** fault-plan events that fired inside the simulated horizon *)
  downtime : float;
  (** total simulated time during which at least one fault was active *)
  guard_exhausted : bool;
  (** [true] when the transfer loop hit its defensive iteration bound
      before reaching the horizon — the run was truncated, its stats are
      suspect, and the [sim.guard_exhausted] obs counter was bumped.
      Always [false] on a healthy run. *)
}

val run :
  ?periods:int ->
  ?warmup:int ->
  ?latency:Latency.t ->
  ?faults:Faults.plan ->
  ?fault_policy:Faults.policy ->
  Dls_core.Problem.t ->
  Dls_core.Allocation.t ->
  stats
(** [run ~periods ~warmup problem alloc] simulates [periods] periods of
    unit length (defaults 20) and measures over the last
    [periods - warmup] (default warm-up 2).  With [latency], chunk
    arrivals are delayed by the one-way path latency and link sharing is
    RTT-biased ({!Latency.tcp_weight}) — the refinement the paper's
    conclusion proposes; steady-state throughput is unaffected
    asymptotically (latency is a constant offset per chunk) but warm-up
    takes longer and fairness between long and short routes degrades,
    which the stats expose.

    With [faults], the plan's events are applied at their times
    mid-execution and rates re-equilibrated: a transfer's capacity
    follows the degraded per-connection bandwidth of its route (zero
    across a down link, so the transfer stalls), connection counts are
    scaled down when a reduced [max_connect] no longer covers the
    allocation's demand on a link, crashed clusters lose their local
    link (in-flight transfers to them stall or are killed per
    [fault_policy], default [Stall]) and the compute phase integrates
    each cluster's piecewise-constant throttled speed.  An empty plan is
    bit-identical to running without [faults].

    Numeric comparisons in the transfer loop use tolerances scaled to
    the magnitudes involved (the horizon for times, each flow's nominal
    rate for liveness, the allocation's largest [alpha] for pattern
    membership), so behavior is invariant under uniform rescaling of
    bandwidths, speeds and workloads across many orders of magnitude;
    capacities compare against exact zero, the only dead value the
    fault model produces.

    All-stalled schedules short-circuit: when every transfer of the
    periodic pattern starts with zero capacity or a zero-capacity
    endpoint (and no fault event could revive it), the run skips the
    period loop and returns immediately with [stalled_transfers]
    covering all [periods]' transfers — same stats, none of the work.
    @raise Invalid_argument if [periods <= warmup] or either is
    negative. *)

val efficiency : stats -> float
(** Ratio of total achieved to total predicted throughput (1 when the
    simulation delivers everything the equations promise); 1 when
    nothing was predicted. *)
