module P = Dls_platform.Platform
module A = Dls_core.Allocation
module M = Dls_obs.Metrics
module Trace = Dls_obs.Trace
module Olog = Dls_obs.Log
module Flight = Dls_obs.Flight

let m_runs = M.counter "sim.runs"
let m_rounds = M.counter "sim.rounds"
let m_faults_applied = M.counter "sim.fault_events_applied"
let m_guard_exhausted = M.counter "sim.guard_exhausted"

type stats = {
  predicted : float array;
  achieved : float array;
  late_transfers : int;
  stalled_transfers : int;
  killed_transfers : int;
  fault_events : int;
  downtime : float;
  guard_exhausted : bool;
}

(* One period's transfer, instantiated afresh at each period boundary. *)
type proto = {
  psrc : int;
  pdst : int;
  pamount : float;
  pcap : float;  (* nominal capacity: beta * route bottleneck *)
  pweight : float;
  pdelay : float;
  proute : int list option;  (* None: unreachable; Some []: co-located *)
  pbeta : int;
  pscale : float;  (* nominal rate magnitude, see [flow.rscale] *)
}

type flow = {
  src : int;
  dst : int;
  amount : float;
  mutable remaining : float;
  mutable cap : float;
  route : int list option;
  beta : int;
  weight : float;
  delay : float;  (* one-way path latency added to the arrival *)
  spawned : float;  (* period-start time *)
  rscale : float;
  (* nominal magnitude of this flow's rate: min of the nominal route
     capacity and both endpoints' nominal local links.  Liveness tests
     compare rates against [eps *. rscale] so the classification is
     scale-free — a 5e-11-wide pipe making full-rate progress is live,
     and a 5e+11 pipe reduced to rounding dust is not. *)
}

(* Relative tolerance unit.  Every comparison in the transfer loop
   scales [eps] by the magnitude of the quantities involved (horizon
   for times, nominal rate for liveness, the largest [alpha] for
   pattern filtering); capacities compare against exact zero, which is
   the only value the fault model can produce for a dead entity. *)
let eps = 1e-9

let run ?(periods = 20) ?(warmup = 2) ?latency ?faults
    ?(fault_policy = Faults.Stall) problem alloc =
  if warmup < 0 || periods <= warmup then
    invalid_arg "Simulator.run: need 0 <= warmup < periods";
  let sp = Trace.start ~cat:"sim" "sim.run" in
  M.incr m_runs;
  let p = Dls_core.Problem.platform problem in
  let kk = P.num_clusters p in
  let horizon = float_of_int periods in
  (* Absolute slack on time comparisons, scaled to the horizon: all
     simulated times live in [0, horizon], so [eps *. horizon] is the
     rounding-dust magnitude there.  The [max 1.0] keeps the historical
     behavior for sub-unit horizons. *)
  let time_tol = eps *. Float.max 1.0 horizon in
  let predicted = Array.init kk (A.app_throughput alloc) in
  (* Transfers are part of the pattern when their [alpha] is visible at
     the allocation's own magnitude — an absolute cutoff would drop the
     entire pattern of a legitimately tiny-valued workload. *)
  let alpha_tol =
    let m = ref 0.0 in
    Array.iter (Array.iter (fun a -> if a > !m then m := a)) alloc.A.alpha;
    eps *. !m
  in
  let plan = match faults with None -> Faults.empty | Some plan -> plan in
  let fstate = Faults.start p plan in
  let fault_events =
    List.length
      (List.filter (fun e -> e.Faults.time < horizon) (Faults.events plan))
  in
  let capacities = Array.init kk (P.local_bw p) in
  let refresh_capacities () =
    for k = 0 to kk - 1 do
      capacities.(k) <- (if Faults.crashed fstate k then 0.0 else P.local_bw p k)
    done
  in
  (* Transfers of one period, described once and respawned each period.
     With a latency model, sharing weights follow 1/RTT and arrivals are
     delayed by the one-way path latency. *)
  let link_demand = Array.make (P.num_backbones p) 0 in
  let pattern = ref [] in
  for k = kk - 1 downto 0 do
    for l = kk - 1 downto 0 do
      if k <> l && alloc.A.alpha.(k).(l) > alpha_tol then begin
        let route = P.route p k l in
        let beta = alloc.A.beta.(k).(l) in
        let cap =
          match P.route_bottleneck p k l with
          | None -> 0.0
          | Some bw when bw = infinity -> infinity  (* co-located *)
          | Some bw -> float_of_int beta *. bw
        in
        (match route with
        | Some links ->
          List.iter (fun i -> link_demand.(i) <- link_demand.(i) + beta) links
        | None -> ());
        let weight, delay =
          match latency with
          | None -> (1.0, 0.0)
          | Some lat -> (Latency.tcp_weight p lat k l, Latency.one_way p lat k l)
        in
        pattern :=
          { psrc = k; pdst = l; pamount = alloc.A.alpha.(k).(l); pcap = cap;
            pweight = weight; pdelay = delay; proute = route; pbeta = beta;
            pscale =
              (let s =
                 Float.min cap (Float.min (P.local_bw p k) (P.local_bw p l))
               in
               (* an unbounded scale degrades to a strict > 0 liveness
                  test rather than an unreachable threshold *)
               if Float.is_finite s then s else 0.0) }
          :: !pattern
      end
    done
  done;
  (* Capacity of a transfer under the current fault state: the smallest
     degraded per-connection bandwidth on the route times the connection
     count, the latter scaled down when a link's surviving [max_connect]
     no longer covers the allocation's total demand on it (a down link
     has factor 0, so the whole product vanishes).  Only consulted once
     a fault event has fired — a no-fault run keeps the nominal caps and
     is bit-identical to the fault-free simulator. *)
  let current_cap route beta =
    match route with
    | None -> 0.0
    | Some [] -> infinity
    | Some links ->
      let min_bw = ref infinity and frac = ref 1.0 in
      List.iter
        (fun i ->
          let b = P.backbone p i in
          min_bw := Float.min !min_bw (b.P.bw *. Faults.link_factor fstate i);
          let d = link_demand.(i) in
          if d > 0 then
            frac :=
              Float.min !frac
                (Float.min 1.0
                   (float_of_int (Faults.link_max_connect fstate i)
                   /. float_of_int d)))
        links;
      float_of_int beta *. !frac *. !min_bw
  in
  let active : flow list ref = ref [] in
  let arrivals = ref [] in  (* (time, cluster, app, amount) *)
  let late = ref 0 and stalled = ref 0 and killed = ref 0 in
  let faulted = ref false in
  (* Exact-zero tests: degraded capacities are products with an exact
     0.0 factor (down link, crashed cluster, unreachable route), never
     rounding dust, so a genuinely tiny but live capacity is not
     misclassified as dead regardless of the platform's scale. *)
  let cannot_move fl =
    fl.cap <= 0.0
    || capacities.(fl.src) <= 0.0
    || capacities.(fl.dst) <= 0.0
  in
  let cull_if_killing () =
    if fault_policy = Faults.Kill then begin
      let dead, alive = List.partition cannot_move !active in
      killed := !killed + List.length dead;
      active := alive
    end
  in
  let apply_events now =
    (* the [time_tol] slack consumes events within float-rounding
       distance of the current time, so the loop cannot creep toward an
       event time without ever reaching it — at large horizons the
       absolute [eps] is below one ulp and the loop would wedge *)
    let applied = Faults.advance fstate ~now:(now +. time_tol) in
    if applied <> [] then begin
      faulted := true;
      M.add m_faults_applied (List.length applied);
      Trace.instant ~cat:"sim" "sim.fault";
      List.iter
        (fun fe ->
          if Olog.enabled Olog.Warn || Flight.enabled () then begin
            let descr = Format.asprintf "%a" Faults.pp_kind fe.Faults.kind in
            if Olog.enabled Olog.Warn then
              Olog.warn "sim.fault"
                ~fields:[ ("sim_t", Olog.Float now); ("fault", Olog.Str descr) ];
            if Flight.enabled () then
              Flight.record ~kind:"fault" descr
                ~fields:[ ("sim_t", Printf.sprintf "%.17g" now) ]
          end)
        applied;
      refresh_capacities ();
      List.iter (fun fl -> fl.cap <- current_cap fl.route fl.beta) !active;
      cull_if_killing ()
    end
  in
  let t = ref 0.0 in
  let next_spawn = ref 0 in
  let guard_exhausted = ref false in
  let guard =
    ref
      ((1000 * (periods + 1) * (1 + List.length !pattern))
      + (16 * fault_events) + 1000)
  in
  let finished = ref false in
  (* All-stalled fixpoint, detected up front: if every transfer of the
     periodic pattern starts with zero capacity or a zero-capacity
     endpoint (and no fault event could revive it), no period will ever
     move a byte — record the stall counts and local arrivals the full
     run would have produced and skip the transfer loop entirely. *)
  let all_stalled_from_start =
    !pattern <> []
    && Faults.is_empty plan
    && List.for_all
         (fun pr ->
           pr.pcap <= 0.0
           || capacities.(pr.psrc) <= 0.0
           || capacities.(pr.pdst) <= 0.0)
         !pattern
  in
  if all_stalled_from_start then begin
    stalled := periods * List.length !pattern;
    for per = 0 to periods - 1 do
      let now = float_of_int per in
      for k = 0 to kk - 1 do
        if alloc.A.alpha.(k).(k) > alpha_tol then
          arrivals := (now, k, k, alloc.A.alpha.(k).(k)) :: !arrivals
      done
    done
  end
  else begin
    apply_events 0.0;
    while (not !finished) && !t < horizon -. time_tol && !guard > 0 do
      decr guard;
      M.incr m_rounds;
      (* Fault events due now are applied before anything else moves. *)
      (match Faults.next_time fstate with
      | Some tf when tf <= !t +. time_tol -> apply_events !t
      | _ -> ());
      (* Spawn the period's flows and local chunks at each boundary. *)
      if !next_spawn < periods && !t >= float_of_int !next_spawn -. time_tol
      then begin
        let now = float_of_int !next_spawn in
        List.iter
          (fun pr ->
            let cap = if !faulted then current_cap pr.proute pr.pbeta else pr.pcap in
            active :=
              { src = pr.psrc; dst = pr.pdst; amount = pr.pamount;
                remaining = pr.pamount; cap; route = pr.proute;
                beta = pr.pbeta; weight = pr.pweight; delay = pr.pdelay;
                spawned = now; rscale = pr.pscale }
              :: !active)
          !pattern;
        if !faulted then cull_if_killing ();
        for k = 0 to kk - 1 do
          if alloc.A.alpha.(k).(k) > alpha_tol then
            arrivals := (now, k, k, alloc.A.alpha.(k).(k)) :: !arrivals
        done;
        incr next_spawn
      end;
      let flows = !active in
      let sharing_flows =
        List.map
          (fun f ->
            { Sharing.resources = [ f.src; f.dst ]; cap = f.cap;
              weight = f.weight })
          flows
      in
      let rates = Sharing.rates ~capacities sharing_flows in
      (* Time to the next event: a completion, a period boundary or a
         fault. *)
      let dt_complete = ref infinity in
      List.iteri
        (fun i f ->
          if rates.(i) > eps *. f.rscale then
            dt_complete := Float.min !dt_complete (f.remaining /. rates.(i)))
        flows;
      let next_boundary =
        if !next_spawn < periods then float_of_int !next_spawn else horizon
      in
      let next_fault =
        match Faults.next_time fstate with
        | Some tf when tf < horizon -. time_tol -> tf
        | _ -> infinity
      in
      let next_stop = Float.min next_boundary next_fault in
      let dt = Float.min !dt_complete (next_stop -. !t) in
      if dt = infinity || (dt <= time_tol && !dt_complete = infinity && flows = [])
      then begin
        (* Nothing in flight and no boundary ahead: jump to the next
           stop. *)
        if next_stop > !t +. time_tol then t := next_stop else finished := true
      end
      else if
        !dt_complete = infinity
        && next_stop >= horizon -. time_tol
        && flows <> []
      then begin
        (* Flows exist but none can move and no spawn or fault event
           will change that. *)
        stalled := !stalled + List.length flows;
        active := [];
        finished := true
      end
      else begin
        let dt = Float.max 0.0 dt in
        List.iteri
          (fun i f -> f.remaining <- f.remaining -. (rates.(i) *. dt))
          flows;
        t := !t +. dt;
        (* Purely relative completion threshold: an absolute floor here
           would declare any transfer smaller than the floor complete at
           spawn time. *)
        let done_, still =
          List.partition (fun f -> f.remaining <= eps *. f.amount) flows
        in
        List.iter
          (fun f ->
            arrivals := (!t +. f.delay, f.dst, f.src, f.amount) :: !arrivals;
            if !t +. f.delay > f.spawned +. 1.0 +. time_tol then incr late)
          done_;
        active := still
      end
    done;
    (* The guard is a defensive bound far above any legitimate round
       count; exhausting it means the transfer loop failed to make
       progress and the run is truncated, not finished.  Surface that
       loudly instead of reporting stats as if the horizon was
       reached. *)
    if !guard <= 0 && (not !finished) && !t < horizon -. time_tol then begin
      guard_exhausted := true;
      M.incr m_guard_exhausted
    end;
    (* Under a fault plan, transfers still wedged at the horizon (down
       route or dead endpoint) count as stalled; in-flight transfers
       that merely ran out of time do not. *)
    if !faulted then
      stalled := !stalled + List.length (List.filter cannot_move !active)
  end;
  (* Compute phase: per-cluster FIFO fluid processing at speed s_l —
     piecewise-constant when throttle/crash events touch the cluster —
     accumulating the work each application gets done inside the
     measurement window. *)
  let window_start = float_of_int warmup in
  let window = horizon -. window_start in
  let achieved = Array.make kk 0.0 in
  let by_cluster = Array.make kk [] in
  List.iter
    (fun ((_, c, _, _) as arrival) -> by_cluster.(c) <- arrival :: by_cluster.(c))
    !arrivals;
  (* Speed breakpoints per cluster, in event order (throttles after a
     crash are dead letters, as in [Faults.state]). *)
  let speed_events = Array.make kk [] in
  let crashed_seen = Array.make kk false in
  List.iter
    (fun ev ->
      match ev.Faults.kind with
      | Faults.Cluster_throttle { cluster; factor } ->
        if not crashed_seen.(cluster) then
          speed_events.(cluster) <-
            (ev.Faults.time, factor) :: speed_events.(cluster)
      | Faults.Cluster_crash c ->
        crashed_seen.(c) <- true;
        speed_events.(c) <- (ev.Faults.time, 0.0) :: speed_events.(c)
      | _ -> ())
    (Faults.events plan);
  for c = 0 to kk - 1 do
    let s = P.speed p c in
    let queue =
      List.sort
        (fun (t1, _, a1, _) (t2, _, a2, _) -> Stdlib.compare (t1, a1) (t2, a2))
        by_cluster.(c)
    in
    match List.rev speed_events.(c) with
    | [] ->
      if s > 0.0 then begin
        let clock = ref 0.0 in
        List.iter
          (fun (arrival_time, _, app, amount) ->
            let start = Float.max !clock arrival_time in
            let finish = start +. (amount /. s) in
            clock := finish;
            (* Work performed inside [window_start, horizon]. *)
            let lo = Float.max start window_start
            and hi = Float.min finish horizon in
            if hi > lo then achieved.(app) <- achieved.(app) +. (s *. (hi -. lo)))
          queue
      end
    | brk ->
      (* Piecewise-constant speed profile: segment [i] runs at [ss.(i)]
         over [ts.(i), ts.(i+1)) (the last one unbounded). *)
      let n = 1 + List.length brk in
      let ts = Array.make n 0.0 and ss = Array.make n s in
      List.iteri
        (fun i (tim, fac) ->
          ts.(i + 1) <- tim;
          ss.(i + 1) <- s *. fac)
        brk;
      let seg_of tm =
        let i = ref 0 in
        while !i + 1 < n && ts.(!i + 1) <= tm do incr i done;
        !i
      in
      let finish_time start amount =
        let i = ref (seg_of start) in
        let tm = ref start and rem = ref amount in
        let res = ref nan in
        while Float.is_nan !res do
          let sp = ss.(!i) in
          let seg_end = if !i + 1 < n then ts.(!i + 1) else infinity in
          if sp > 0.0 && !tm +. (!rem /. sp) <= seg_end then
            res := !tm +. (!rem /. sp)
          else if seg_end = infinity then res := infinity
          else begin
            if sp > 0.0 then rem := !rem -. (sp *. (seg_end -. !tm));
            tm := seg_end;
            incr i
          end
        done;
        !res
      in
      let work_between lo hi =
        if hi <= lo then 0.0
        else begin
          let acc = ref 0.0 in
          for i = 0 to n - 1 do
            let a = Float.max lo ts.(i)
            and b = Float.min hi (if i + 1 < n then ts.(i + 1) else hi) in
            if b > a then acc := !acc +. (ss.(i) *. (b -. a))
          done;
          !acc
        end
      in
      let clock = ref 0.0 in
      List.iter
        (fun (arrival_time, _, app, amount) ->
          if !clock < infinity then begin
            let start = Float.max !clock arrival_time in
            let finish = finish_time start amount in
            clock := finish;
            (* Work performed inside [window_start, horizon]; a chunk
               cut short by a crash still credits what it processed. *)
            let lo = Float.max start window_start
            and hi = Float.min finish horizon in
            achieved.(app) <- achieved.(app) +. work_between lo hi
          end)
        queue
  done;
  Array.iteri (fun i w -> achieved.(i) <- w /. window) achieved;
  let downtime =
    if Faults.is_empty plan then 0.0 else Faults.downtime p plan ~horizon
  in
  if Trace.live sp then
    Trace.finish sp
      ~args:
        [ ("periods", string_of_int periods);
          ("fault_events", string_of_int fault_events) ];
  { predicted; achieved; late_transfers = !late; stalled_transfers = !stalled;
    killed_transfers = !killed; fault_events; downtime;
    guard_exhausted = !guard_exhausted }

let efficiency stats =
  let tot a = Array.fold_left ( +. ) 0.0 a in
  let p = tot stats.predicted in
  if p <= 0.0 then 1.0 else tot stats.achieved /. p
