module Platform = Dls_platform.Platform
module Prng = Dls_util.Prng

type kind =
  | Link_down of int
  | Link_up of int
  | Link_degrade of { link : int; factor : float }
  | Max_connect of { link : int; limit : int }
  | Cluster_throttle of { cluster : int; factor : float }
  | Cluster_crash of int

type event = { time : float; kind : kind }

type policy = Stall | Kill

type plan = event list (* sorted by time, stable *)

let empty = []
let events plan = plan
let is_empty plan = plan = []

let check_factor what f =
  if not (f > 0.0 && f <= 1.0) then
    invalid_arg (Printf.sprintf "Faults.make: %s factor %g outside (0, 1]" what f)

let validate_event p ev =
  let nl = Platform.num_backbones p and nc = Platform.num_clusters p in
  let check_link i =
    if i < 0 || i >= nl then
      invalid_arg (Printf.sprintf "Faults.make: backbone link %d out of range" i)
  and check_cluster c =
    if c < 0 || c >= nc then
      invalid_arg (Printf.sprintf "Faults.make: cluster %d out of range" c)
  in
  if not (ev.time >= 0.0 && ev.time < infinity) then
    invalid_arg (Printf.sprintf "Faults.make: event time %g not in [0, inf)" ev.time);
  match ev.kind with
  | Link_down i | Link_up i -> check_link i
  | Link_degrade { link; factor } ->
    check_link link;
    check_factor "degradation" factor
  | Max_connect { link; limit } ->
    check_link link;
    if limit < 0 then
      invalid_arg (Printf.sprintf "Faults.make: negative max_connect limit %d" limit)
  | Cluster_throttle { cluster; factor } ->
    check_cluster cluster;
    check_factor "throttle" factor
  | Cluster_crash c -> check_cluster c

let make p evs =
  List.iter (validate_event p) evs;
  List.stable_sort (fun a b -> compare a.time b.time) evs

let pp_kind fmt = function
  | Link_down i -> Format.fprintf fmt "link %d down" i
  | Link_up i -> Format.fprintf fmt "link %d up" i
  | Link_degrade { link; factor } ->
    Format.fprintf fmt "link %d degrade x%.17g" link factor
  | Max_connect { link; limit } ->
    Format.fprintf fmt "link %d max_connect %d" link limit
  | Cluster_throttle { cluster; factor } ->
    Format.fprintf fmt "cluster %d throttle x%.17g" cluster factor
  | Cluster_crash c -> Format.fprintf fmt "cluster %d crash" c

let pp_event fmt ev = Format.fprintf fmt "t=%.17g %a" ev.time pp_kind ev.kind

(* JSON codec for kinds — the daemon's [platform_delta] wire format.
   Field names mirror the record labels; the tag is the constructor in
   snake_case. *)
module J = Dls_util.Json

let kind_to_json = function
  | Link_down i -> J.Obj [ ("fault", J.Str "link_down"); ("link", J.Num (float_of_int i)) ]
  | Link_up i -> J.Obj [ ("fault", J.Str "link_up"); ("link", J.Num (float_of_int i)) ]
  | Link_degrade { link; factor } ->
    J.Obj
      [ ("fault", J.Str "link_degrade"); ("link", J.Num (float_of_int link));
        ("factor", J.Num factor) ]
  | Max_connect { link; limit } ->
    J.Obj
      [ ("fault", J.Str "max_connect"); ("link", J.Num (float_of_int link));
        ("limit", J.Num (float_of_int limit)) ]
  | Cluster_throttle { cluster; factor } ->
    J.Obj
      [ ("fault", J.Str "cluster_throttle");
        ("cluster", J.Num (float_of_int cluster)); ("factor", J.Num factor) ]
  | Cluster_crash c ->
    J.Obj [ ("fault", J.Str "cluster_crash"); ("cluster", J.Num (float_of_int c)) ]

let kind_of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match J.member name j with
    | None -> Error (Printf.sprintf "fault: missing field %S" name)
    | Some v -> conv v
  in
  let* tag = field "fault" J.to_str in
  match tag with
  | "link_down" ->
    let* i = field "link" J.to_int in
    Ok (Link_down i)
  | "link_up" ->
    let* i = field "link" J.to_int in
    Ok (Link_up i)
  | "link_degrade" ->
    let* link = field "link" J.to_int in
    let* factor = field "factor" J.to_num in
    Ok (Link_degrade { link; factor })
  | "max_connect" ->
    let* link = field "link" J.to_int in
    let* limit = field "limit" J.to_int in
    Ok (Max_connect { link; limit })
  | "cluster_throttle" ->
    let* cluster = field "cluster" J.to_int in
    let* factor = field "factor" J.to_num in
    Ok (Cluster_throttle { cluster; factor })
  | "cluster_crash" ->
    let* c = field "cluster" J.to_int in
    Ok (Cluster_crash c)
  | other -> Error (Printf.sprintf "fault: unknown kind %S" other)

let trace plan =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  List.iter (fun ev -> Format.fprintf fmt "%a@\n" pp_event ev) plan;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* Per-entity Poisson episode processes.  Entity streams are derived,
   not split, so entity [i]'s draws do not depend on how many other
   entities exist or in which order they are generated — the property
   the 1-vs-8-domain determinism test pins down. *)
let random ~seed ~horizon ?(link_rate = 0.0) ?(cluster_rate = 0.0) p =
  if not (horizon >= 0.0 && horizon < infinity) then
    invalid_arg (Printf.sprintf "Faults.random: horizon %g not in [0, inf)" horizon);
  if link_rate < 0.0 || cluster_rate < 0.0 then
    invalid_arg "Faults.random: negative event rate";
  let exponential g ~rate =
    (* inversion; [Prng.float] is in [0, 1) so [1 - u] never hits 0 *)
    let u = Prng.float g ~lo:0.0 ~hi:1.0 in
    -.log (1.0 -. u) /. rate
  in
  let evs = ref [] in
  let emit time kind = evs := { time; kind } :: !evs in
  if link_rate > 0.0 then
    for i = 0 to Platform.num_backbones p - 1 do
      let g = Prng.derive ~seed ~index:(2 * i) in
      let nominal = (Platform.backbone p i).Platform.max_connect in
      let t = ref (exponential g ~rate:link_rate) in
      while !t < horizon do
        (* one fault episode: onset now, restoration at the next arrival
           (restorations past the horizon still land inside it so runs
           do not end with every link wedged down) *)
        let t_end = !t +. exponential g ~rate:(3.0 *. link_rate) in
        (match Prng.int g ~lo:0 ~hi:2 with
        | 0 ->
          emit !t (Link_down i);
          emit t_end (Link_up i)
        | 1 ->
          let factor = Prng.float g ~lo:0.1 ~hi:0.9 in
          emit !t (Link_degrade { link = i; factor });
          emit t_end (Link_up i)
        | _ ->
          if nominal >= 1 then begin
            let limit = Prng.int g ~lo:0 ~hi:(nominal - 1) in
            emit !t (Max_connect { link = i; limit });
            emit t_end (Max_connect { link = i; limit = nominal })
          end
          else begin
            emit !t (Link_down i);
            emit t_end (Link_up i)
          end);
        t := t_end +. exponential g ~rate:link_rate
      done
    done;
  if cluster_rate > 0.0 then
    for c = 0 to Platform.num_clusters p - 1 do
      let g = Prng.derive ~seed ~index:((2 * c) + 1) in
      let t = ref (exponential g ~rate:cluster_rate) in
      let alive = ref true in
      while !alive && !t < horizon do
        if Prng.bool g ~p:0.15 then begin
          emit !t (Cluster_crash c);
          alive := false
        end
        else begin
          let factor = Prng.float g ~lo:0.1 ~hi:0.9 in
          let t_end = !t +. exponential g ~rate:(3.0 *. cluster_rate) in
          emit !t (Cluster_throttle { cluster = c; factor });
          emit t_end (Cluster_throttle { cluster = c; factor = 1.0 });
          t := t_end +. exponential g ~rate:cluster_rate
        end
      done
    done;
  (* [!evs] is reverse-entity-ordered; re-reverse before the stable sort
     so simultaneous events apply in entity order. *)
  make p (List.rev !evs)

type state = {
  platform : Platform.t;
  mutable pending : event list;
  link_down : bool array;
  link_deg : float array;
  link_maxcon : int array;  (* current cap while the link is up *)
  speed_fac : float array;
  crashed_ : bool array;
}

let start p plan =
  {
    platform = p;
    pending = plan;
    link_down = Array.make (Platform.num_backbones p) false;
    link_deg = Array.make (Platform.num_backbones p) 1.0;
    link_maxcon =
      Array.init (Platform.num_backbones p) (fun i ->
          (Platform.backbone p i).Platform.max_connect);
    speed_fac = Array.make (Platform.num_clusters p) 1.0;
    crashed_ = Array.make (Platform.num_clusters p) false;
  }

let next_time st =
  match st.pending with [] -> None | ev :: _ -> Some ev.time

let apply st = function
  | Link_down i -> st.link_down.(i) <- true
  | Link_up i ->
    st.link_down.(i) <- false;
    st.link_deg.(i) <- 1.0
  | Link_degrade { link; factor } -> st.link_deg.(link) <- factor
  | Max_connect { link; limit } -> st.link_maxcon.(link) <- limit
  | Cluster_throttle { cluster; factor } ->
    if not st.crashed_.(cluster) then st.speed_fac.(cluster) <- factor
  | Cluster_crash c ->
    st.crashed_.(c) <- true;
    st.speed_fac.(c) <- 0.0

let advance st ~now =
  let rec go acc = function
    | ev :: rest when ev.time <= now ->
      apply st ev.kind;
      go (ev :: acc) rest
    | rest ->
      st.pending <- rest;
      List.rev acc
  in
  go [] st.pending

let apply_kind = apply

let link_factor st i = if st.link_down.(i) then 0.0 else st.link_deg.(i)
let link_degradation st i = st.link_deg.(i)
let link_max_connect st i = if st.link_down.(i) then 0 else st.link_maxcon.(i)
let speed_factor st c = st.speed_fac.(c)
let crashed st c = st.crashed_.(c)

let any_fault_active st =
  let p = st.platform in
  let faulty = ref false in
  Array.iteri (fun _ d -> if d then faulty := true) st.link_down;
  Array.iteri (fun _ f -> if f < 1.0 then faulty := true) st.link_deg;
  Array.iteri
    (fun i m ->
      if m <> (Platform.backbone p i).Platform.max_connect then faulty := true)
    st.link_maxcon;
  Array.iteri (fun _ f -> if f < 1.0 then faulty := true) st.speed_fac;
  Array.iteri (fun _ c -> if c then faulty := true) st.crashed_;
  !faulty

let degraded_platform st =
  let p = st.platform in
  let clusters =
    Array.init (Platform.num_clusters p) (fun k ->
        let c = Platform.cluster p k in
        if st.crashed_.(k) then { c with Platform.speed = 0.0; local_bw = 0.0 }
        else { c with Platform.speed = c.Platform.speed *. st.speed_fac.(k) })
  in
  let backbones =
    Array.init (Platform.num_backbones p) (fun i ->
        let b = Platform.backbone p i in
        if st.link_down.(i) then
          (* bw must stay positive for [Platform.make]; an unusable link
             is expressed as a zero connection cap, which Eq. 7e and the
             residual tracker both honour *)
          { b with Platform.max_connect = 0 }
        else
          {
            Platform.bw = b.Platform.bw *. st.link_deg.(i);
            max_connect = st.link_maxcon.(i);
          })
  in
  let routes = ref [] in
  let n = Platform.num_clusters p in
  for k = 0 to n - 1 do
    for l = 0 to n - 1 do
      if k <> l then
        match Platform.route p k l with
        | Some links -> routes := (k, l, links) :: !routes
        | None -> ()
    done
  done;
  Platform.make_with_routes ~clusters ~topology:(Platform.topology p) ~backbones
    ~routes:!routes

let degraded_at p plan ~time =
  let st = start p plan in
  ignore (advance st ~now:time);
  degraded_platform st

let downtime p plan ~horizon =
  let st = start p plan in
  let total = ref 0.0 in
  let t = ref 0.0 in
  let rec go () =
    match next_time st with
    | Some tn when tn < horizon ->
      let tn = Float.max tn !t in
      if any_fault_active st then total := !total +. (tn -. !t);
      t := tn;
      ignore (advance st ~now:tn);
      go ()
    | _ ->
      if any_fault_active st then total := !total +. (horizon -. !t)
  in
  if horizon > 0.0 then go ();
  !total
