(** Dynamic workloads: streams of divisible-load applications arriving
    over time, either synthesized from seed-derived random processes or
    replayed from an SWF-style batch log.

    Determinism contract: {!synthetic} draws job [i]'s randomness from
    [Prng.derive ~seed ~index:i], so a workload is a pure function of
    its parameters — independent of evaluation order, domain count or
    shard partitioning, exactly like {!Dls_flowsim.Faults.random}. *)

type job = {
  id : int;  (** unique within the workload, 0-based in arrival order *)
  arrival : float;  (** submit time, >= 0 *)
  cluster : int;  (** cluster hosting the application's source data *)
  work : float;  (** total load units to process, > 0 *)
  payoff : float;  (** relative worth [pi_k] while the job is active *)
}

type t = job list
(** Sorted by [(arrival, id)]; ids are unique and dense. *)

val synthetic :
  seed:int ->
  jobs:int ->
  rate:float ->
  ?heavy:bool ->
  ?mean_work:float ->
  clusters:int ->
  unit ->
  t
(** [synthetic ~seed ~jobs ~rate ~clusters ()] generates [jobs] jobs:
    Poisson arrivals ([rate] expected arrivals per time unit, gaps by
    exponential inversion), uniform source cluster, and work sizes
    either uniform in [[0.5, 1.5] * mean_work] (default
    [mean_work = 200.]) or — with [heavy] — Pareto with shape 1.5
    (scale chosen so the mean is [mean_work], truncated at
    [100 * mean_work] to keep replay times bounded), the classic
    heavy-tailed job-size model of batch traces.
    @raise Invalid_argument on negative [jobs], non-positive [rate],
    [mean_work] or [clusters]. *)

val of_swf : clusters:int -> ?work_scale:float -> string -> (t, string) result
(** Parse an SWF-style (Standard Workload Format) batch log: lines of
    whitespace-separated fields, [;]/[#] comment lines ignored.  Of the
    standard 18 fields the reader uses job number (1), submit time (2),
    run time (4), allocated/requested processors (5/8), queue (15) and
    partition (16); a line needs at least the first 5.  Jobs with
    non-positive run time or negative submit time (cancelled or
    malformed entries) are skipped.  Mapping into the divisible-load
    model: [work = run_time * processors * work_scale] (default scale
    1.0), the source cluster is the partition (or queue, or job number)
    modulo [clusters], payoff 1.  Submit times are shifted so the
    earliest job arrives at 0, and jobs are re-numbered densely in
    arrival order.
    @raise nothing — malformed numeric fields yield [Error]. *)

val load_swf :
  clusters:int -> ?work_scale:float -> path:string -> unit -> (t, string) result
(** {!of_swf} on a file's contents; I/O errors yield [Error]. *)

val to_swf : t -> string
(** Render as an SWF fragment (18 fields, [-1] for the unused ones,
    processors pinned to 1 so [of_swf ~work_scale:1.0] inverts it).
    Floats print as [%.17g], so a round trip is exact. *)

val pp_job : Format.formatter -> job -> unit

val total_work : t -> float

val makespan_lower_bound : Dls_platform.Platform.t -> t -> float
(** Crude lower bound on any schedule's makespan: last arrival, plus
    total remaining work divided by the platform's total compute speed.
    Used for sanity checks and progress reporting, not for science. *)
