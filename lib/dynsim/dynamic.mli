(** Event-driven online scheduling of a dynamic divisible-load
    workload.

    The paper plans one steady-state schedule per platform; this module
    turns that machinery into an online story: applications arrive,
    share the platform for a while, complete and depart, and platform
    faults strike mid-run.  Each such event triggers a {e re-plan}
    through the {!Dls_core.Repair} ladder (rescale → greedy refine →
    full re-solve, warm-started from the previous allocation), and
    between events every admitted application's backlog drains at its
    planned steady-state rate — or, with {!fidelity} [Flow], at the
    rate the flow-level simulator actually measures for the plan.

    Queueing model: one application per cluster at a time.  Jobs arriving
    at a busy cluster queue FIFO behind it; a cluster's {e head} job is
    the one eligible for admission.  Which heads are admitted is the
    {!policy}'s choice — the LP plans whatever set it is given, so the
    policies differ only in admission, making the comparison fair.

    Determinism contract: with a fixed platform, workload, fault plan
    and policy, {!run} is a pure function — the event log is
    byte-stable across processes, domain counts and kill/resume (the
    test suite pins this).  Wall-clock re-plan latencies are reported
    out-of-band and never enter the log. *)

type policy =
  | Lp_repair  (** admit every cluster head; plan them jointly *)
  | Fcfs  (** admit only the globally oldest head: serial batch FCFS *)
  | Easy
      (** EASY backfilling: admit the oldest head plus any younger head
          whose estimated solo runtime fits before the oldest head's
          estimated finish (estimates use the head cluster's local
          compute speed — crude, as real backfilling estimates are) *)

val policy_name : policy -> string
val policy_of_name : string -> policy option
val all_policies : policy list

type fidelity =
  | Fluid  (** backlogs drain at the LP-planned rates *)
  | Flow of int
      (** backlogs drain at the per-application throughput measured by
          [Dls_flowsim.Simulator.run] over this many periods of the
          current plan — the flow simulator advanced between events *)

type job_record = {
  job : Workload.job;
  started : float;  (** first admission time *)
  finished : float;
}

type result = {
  completed : job_record list;  (** in completion order *)
  unfinished : int;
      (** jobs not completed when the run ended: still queued, wedged,
          or never arrived before an [until] cutoff *)
  makespan : float;  (** last completion time; 0 with no completions *)
  completed_work : float;
  mean_response : float;  (** mean of [finished - arrival]; 0 if none *)
  throughput : float;  (** [completed_work / makespan]; 0 if none *)
  events : int;  (** events processed (arrivals, faults, completions) *)
  replans : int;
  replan_seconds : float array;
  (** per-replan ladder cost (sum of stage wall-clocks), in replan
      order; nondeterministic, reported out-of-band of the event log *)
  event_log : string;
  (** one line per event, [t=<%.17g> <kind> ...]; byte-stable *)
  guard_exhausted : bool;
  (** the defensive iteration bound tripped: the run was truncated *)
}

val run :
  ?policy:policy ->
  ?heuristic:Dls_core.Heuristics.t ->
  ?objective:Dls_core.Lp_relax.objective ->
  ?fidelity:fidelity ->
  ?faults:Dls_flowsim.Faults.plan ->
  ?until:float ->
  Dls_platform.Platform.t ->
  Workload.t ->
  result
(** [run platform workload] replays the workload to completion (or to
    [until], if given): defaults [policy = Lp_repair],
    [heuristic = LPRG], [objective = Maxmin], [fidelity = Fluid], no
    faults.  The run ends when every job has completed or nothing can
    make progress any more (e.g. jobs wedged on a crashed cluster);
    wedged jobs count as [unfinished].
    @raise Invalid_argument on a NaN/negative [until] or a [Flow]
    fidelity with fewer than 2 periods. *)
