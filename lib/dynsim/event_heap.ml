type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { arr = [||]; len = 0; next_seq = 0 }

let length h = h.len

let is_empty h = h.len = 0

(* Lexicographic (time, seq): stable FIFO order among equal times. *)
let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h entry =
  let cap = Array.length h.arr in
  if h.len = cap then begin
    let arr = Array.make (Stdlib.max 8 (2 * cap)) entry in
    Array.blit h.arr 0 arr 0 h.len;
    h.arr <- arr
  end

let push h ~time payload =
  if Float.is_nan time then invalid_arg "Event_heap.push: NaN time";
  let entry = { time; seq = h.next_seq; payload } in
  h.next_seq <- h.next_seq + 1;
  grow h entry;
  h.arr.(h.len) <- entry;
  h.len <- h.len + 1;
  (* sift up *)
  let i = ref (h.len - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before h.arr.(!i) h.arr.(parent) then begin
      let tmp = h.arr.(parent) in
      h.arr.(parent) <- h.arr.(!i);
      h.arr.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let peek_time h = if h.len = 0 then None else Some h.arr.(0).time

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.arr.(0) <- h.arr.(h.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && before h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.len && before h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.arr.(!smallest) in
          h.arr.(!smallest) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end
