module Prng = Dls_util.Prng
module P = Dls_platform.Platform

type job = {
  id : int;
  arrival : float;
  cluster : int;
  work : float;
  payoff : float;
}

type t = job list

let order a b = Stdlib.compare (a.arrival, a.id) (b.arrival, b.id)

let synthetic ~seed ~jobs ~rate ?(heavy = false) ?(mean_work = 200.0) ~clusters
    () =
  if jobs < 0 then invalid_arg "Workload.synthetic: negative job count";
  if not (rate > 0.0 && Float.is_finite rate) then
    invalid_arg "Workload.synthetic: rate must be positive";
  if not (mean_work > 0.0 && Float.is_finite mean_work) then
    invalid_arg "Workload.synthetic: mean_work must be positive";
  if clusters <= 0 then invalid_arg "Workload.synthetic: need clusters > 0";
  let arrival = ref 0.0 in
  List.init jobs (fun i ->
      (* Job [i]'s draws come from its own derived stream: the workload
         is reproducible per job in O(1), whatever else was generated. *)
      let rng = Prng.derive ~seed ~index:i in
      let u = Prng.float rng ~lo:0.0 ~hi:1.0 in
      (* exponential inversion; u < 1 so log never sees 0 *)
      let gap = -.log (1.0 -. u) /. rate in
      arrival := !arrival +. gap;
      let cluster = Prng.int rng ~lo:0 ~hi:(clusters - 1) in
      let work =
        if heavy then begin
          (* Pareto, shape 1.5: mean = shape/(shape-1) * scale = 3 *
             scale.  Truncated so one monster job cannot dominate the
             replay wall-clock. *)
          let shape = 1.5 in
          let scale = mean_work /. 3.0 in
          let v = Prng.float rng ~lo:0.0 ~hi:1.0 in
          Float.min
            (scale /. ((1.0 -. v) ** (1.0 /. shape)))
            (100.0 *. mean_work)
        end
        else mean_work *. Prng.float rng ~lo:0.5 ~hi:1.5
      in
      { id = i; arrival = !arrival; cluster; work; payoff = 1.0 })

(* --- SWF ----------------------------------------------------------- *)

let is_comment line =
  String.length line = 0 || line.[0] = ';' || line.[0] = '#'

let fields line =
  List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line))

let of_swf ~clusters ?(work_scale = 1.0) text =
  if clusters <= 0 then Error "of_swf: need clusters > 0"
  else if not (work_scale > 0.0 && Float.is_finite work_scale) then
    Error "of_swf: work_scale must be positive"
  else begin
    let err = ref None in
    let jobs = ref [] in
    let lineno = ref 0 in
    List.iter
      (fun raw ->
        incr lineno;
        let line = String.trim raw in
        if !err = None && not (is_comment line) then begin
          match List.map float_of_string_opt (fields line) with
          | exception _ -> err := Some (Printf.sprintf "line %d: unreadable" !lineno)
          | parsed ->
            if List.exists (( = ) None) parsed then
              err := Some (Printf.sprintf "line %d: non-numeric field" !lineno)
            else begin
              let v = Array.of_list (List.map Option.get parsed) in
              if Array.length v < 5 then
                err :=
                  Some
                    (Printf.sprintf "line %d: %d fields, need at least 5"
                       !lineno (Array.length v))
              else begin
                let get i = if i < Array.length v then v.(i) else -1.0 in
                let submit = get 1 and run_time = get 3 in
                (* cancelled/malformed entries carry -1 or 0 run times *)
                if run_time > 0.0 && submit >= 0.0 then begin
                  let procs =
                    if get 4 > 0.0 then get 4
                    else if get 7 > 0.0 then get 7
                    else 1.0
                  in
                  let origin =
                    if get 15 >= 0.0 then get 15
                    else if get 14 >= 0.0 then get 14
                    else Float.abs (get 0)
                  in
                  let cluster = int_of_float origin mod clusters in
                  jobs :=
                    { id = 0; arrival = submit;
                      cluster = (if cluster < 0 then 0 else cluster);
                      work = run_time *. procs *. work_scale; payoff = 1.0 }
                    :: !jobs
                end
              end
            end
        end)
      (String.split_on_char '\n' text);
    match !err with
    | Some e -> Error e
    | None ->
      let sorted = List.sort order (List.rev !jobs) in
      let t0 =
        match sorted with [] -> 0.0 | j :: _ -> j.arrival
      in
      Ok
        (List.mapi
           (fun i j -> { j with id = i; arrival = j.arrival -. t0 })
           sorted)
  end

let load_swf ~clusters ?work_scale ~path () =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> of_swf ~clusters ?work_scale text

let to_swf t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "; SWF fragment written by dls (dynamic workload)\n";
  Buffer.add_string buf
    "; fields: job submit wait run procs cpu mem req_procs req_time req_mem \
     status uid gid exe queue partition prev think\n";
  List.iter
    (fun j ->
      Buffer.add_string buf
        (Printf.sprintf
           "%d %.17g -1 %.17g 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 %d -1 -1\n"
           (j.id + 1) j.arrival j.work j.cluster))
    t;
  Buffer.contents buf

let pp_job fmt j =
  Format.fprintf fmt "job %d: t=%g cluster=%d work=%g payoff=%g" j.id j.arrival
    j.cluster j.work j.payoff

let total_work t = List.fold_left (fun acc j -> acc +. j.work) 0.0 t

let makespan_lower_bound p t =
  let total_speed = ref 0.0 in
  for k = 0 to P.num_clusters p - 1 do
    total_speed := !total_speed +. P.speed p k
  done;
  let last_arrival = List.fold_left (fun acc j -> Float.max acc j.arrival) 0.0 t in
  if !total_speed > 0.0 then last_arrival +. (total_work t /. !total_speed)
  else if t = [] then 0.0
  else infinity
