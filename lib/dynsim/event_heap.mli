(** Binary min-heap event queue for the dynamic simulator.

    Events are ordered by [(time, seq)] where [seq] is the push order:
    two events at the same instant pop in the order they were pushed.
    That tie-break is what makes the event log a pure function of the
    workload — no dependence on heap internals or float coincidences.

    The heap is the textbook array-backed binary heap: O(log n) push
    and pop, O(1) peek, amortized O(1) space per element. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
(** Insert an event.  @raise Invalid_argument on a NaN time (a NaN
    would corrupt the heap order silently). *)

val peek_time : 'a t -> float option
(** Time of the earliest event without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event (FIFO among equal times). *)
