module P = Dls_platform.Platform
module Problem = Dls_core.Problem
module Allocation = Dls_core.Allocation
module Repair = Dls_core.Repair
module Heuristics = Dls_core.Heuristics
module Faults = Dls_flowsim.Faults
module Sim = Dls_flowsim.Simulator
module M = Dls_obs.Metrics
module Trace = Dls_obs.Trace
module Olog = Dls_obs.Log
module Flight = Dls_obs.Flight

let m_events = M.counter "dyn.events"
let m_replans = M.counter "dyn.replans"
let m_replan_s = M.histogram "dyn.replan_seconds"
let m_guard_exhausted = M.counter "dyn.guard_exhausted"

type policy = Lp_repair | Fcfs | Easy

let policy_name = function
  | Lp_repair -> "lp-repair"
  | Fcfs -> "fcfs"
  | Easy -> "easy"

let policy_of_name s =
  match String.lowercase_ascii s with
  | "lp-repair" | "lp_repair" | "lp" -> Some Lp_repair
  | "fcfs" -> Some Fcfs
  | "easy" -> Some Easy
  | _ -> None

let all_policies = [ Lp_repair; Fcfs; Easy ]

type fidelity = Fluid | Flow of int

type job_record = {
  job : Workload.job;
  started : float;
  finished : float;
}

type result = {
  completed : job_record list;
  unfinished : int;
  makespan : float;
  completed_work : float;
  mean_response : float;
  throughput : float;
  events : int;
  replans : int;
  replan_seconds : float array;
  event_log : string;
  guard_exhausted : bool;
}

(* Live bookkeeping for one job. *)
type live = {
  j : Workload.job;
  mutable remaining : float;
  mutable started : float;  (* -1 until first admitted *)
  mutable rate : float;  (* current planned drain rate; 0 unless admitted *)
}

type event = Arrival of Workload.job | Fault_tick | Completion of { gen : int }

let eps = 1e-9

let run ?(policy = Lp_repair) ?(heuristic = Heuristics.LPRG) ?objective
    ?(fidelity = Fluid) ?faults ?until platform workload =
  (match until with
  | Some u when not (u >= 0.0) ->
    invalid_arg "Dynamic.run: until must be >= 0"
  | _ -> ());
  (match fidelity with
  | Flow periods when periods < 2 ->
    invalid_arg "Dynamic.run: Flow fidelity needs >= 2 periods"
  | _ -> ());
  let sp_run = Trace.start ~cat:"dyn" "dyn.run" in
  let kk = P.num_clusters platform in
  let plan = match faults with None -> Faults.empty | Some plan -> plan in
  let fstate = Faults.start platform plan in
  let log = Buffer.create 4096 in
  let logf fmt = Printf.ksprintf (fun s -> Buffer.add_string log s) fmt in
  (* Per-cluster FIFO queues; the head of a queue is the only job of
     that cluster the planner ever sees. *)
  let queues : live Queue.t array = Array.init kk (fun _ -> Queue.create ()) in
  let heap : event Event_heap.t = Event_heap.create () in
  List.iter (fun j -> Event_heap.push heap ~time:j.Workload.arrival (Arrival j))
    workload;
  let fault_times =
    List.sort_uniq Float.compare
      (List.map (fun e -> e.Faults.time) (Faults.events plan))
  in
  List.iter (fun tf -> Event_heap.push heap ~time:tf Fault_tick) fault_times;
  let clock = ref 0.0 in
  let gen = ref 0 in
  let events = ref 0 in
  let replans = ref 0 in
  let replan_seconds = ref [] in
  let completed = ref [] in
  let completed_work = ref 0.0 in
  let prev_alloc = ref (Allocation.zero kk) in
  let heads () =
    let hs = ref [] in
    for k = kk - 1 downto 0 do
      match Queue.peek_opt queues.(k) with
      | Some live -> hs := (k, live) :: !hs
      | None -> ()
    done;
    !hs
  in
  let oldest hs =
    List.fold_left
      (fun best ((_, lv) as cand) ->
        match best with
        | None -> Some cand
        | Some (_, blv) ->
          if
            (lv.j.Workload.arrival, lv.j.Workload.id)
            < (blv.j.Workload.arrival, blv.j.Workload.id)
          then Some cand
          else best)
      None hs
  in
  let current_platform () =
    if Faults.any_fault_active fstate then Faults.degraded_platform fstate
    else platform
  in
  (* Admission: the policy picks which cluster heads the planner sees.
     The plan itself always comes from the same repair ladder, so the
     policies differ in admission only. *)
  let admit hs =
    match policy with
    | Lp_repair -> hs
    | Fcfs -> ( match oldest hs with None -> [] | Some h -> [ h ])
    | Easy -> (
      match oldest hs with
      | None -> []
      | Some ((hk, hlv) as head) ->
        let p = current_platform () in
        let est (k, lv) =
          let s = P.speed p k in
          if s > 0.0 then lv.remaining /. s else infinity
        in
        let head_finish = est (hk, hlv) in
        head
        :: List.filter
             (fun ((k, _) as cand) -> k <> hk && est cand <= head_finish)
             hs)
  in
  let replan ~now ~reason =
    incr replans;
    incr gen;
    M.incr m_replans;
    let sp = Trace.start ~cat:"dyn" "dyn.replan" in
    let hs = heads () in
    let admitted = admit hs in
    List.iter (fun (_, lv) -> lv.rate <- 0.0) hs;
    List.iter
      (fun (_, lv) ->
        if lv.started < 0.0 then begin
          lv.started <- now;
          logf "t=%.17g start job=%d\n" now lv.j.Workload.id
        end)
      admitted;
    if admitted = [] then begin
      prev_alloc := Allocation.zero kk;
      logf "t=%.17g replan reason=%s policy=%s active=0 idle\n" now reason
        (policy_name policy)
    end
    else begin
      let payoffs = Array.make kk 0.0 in
      List.iter
        (fun (k, lv) -> payoffs.(k) <- lv.j.Workload.payoff)
        admitted;
      let problem = Problem.make (current_platform ()) ~payoffs in
      (* Warm start: the previous allocation with the rows of
         now-inactive applications zeroed (a payoff-0 sender is an
         infeasibility, not something Rescale can shrink away). *)
      let warm = Allocation.copy !prev_alloc in
      for k = 0 to kk - 1 do
        if payoffs.(k) <= 0.0 then
          for l = 0 to kk - 1 do
            warm.Allocation.alpha.(k).(l) <- 0.0;
            warm.Allocation.beta.(k).(l) <- 0
          done
      done;
      match Repair.repair ?objective ~heuristic problem warm with
      | Ok outcome ->
        let alloc = outcome.Repair.allocation in
        prev_alloc := alloc;
        let ladder_s =
          List.fold_left
            (fun acc a -> acc +. a.Repair.seconds)
            0.0 outcome.Repair.attempts
        in
        replan_seconds := ladder_s :: !replan_seconds;
        M.observe m_replan_s ladder_s;
        (* Drain rates for the admitted heads: planned throughput, or
           the flow-level simulator's measured throughput of this very
           plan on the degraded platform — the "advance the flow
           simulator between events" fidelity. *)
        let rate_of =
          match fidelity with
          | Fluid -> fun k -> Allocation.app_throughput alloc k
          | Flow periods ->
            let stats =
              Sim.run ~periods ~warmup:(Stdlib.min 1 (periods - 1)) problem
                alloc
            in
            fun k -> stats.Sim.achieved.(k)
        in
        List.iter (fun (k, lv) -> lv.rate <- rate_of k) admitted;
        logf "t=%.17g replan reason=%s policy=%s active=%d stage=%s objective=%.17g\n"
          now reason (policy_name policy)
          (List.length admitted)
          (Repair.stage_name outcome.Repair.stage)
          (Allocation.objective `Maxmin problem alloc);
        if Olog.enabled Olog.Debug then
          Olog.debug "dyn.replan"
            ~fields:
              [ ("sim_t", Olog.Float now);
                ("reason", Olog.Str reason);
                ("policy", Olog.Str (policy_name policy));
                ("active", Olog.Int (List.length admitted));
                ("stage", Olog.Str (Repair.stage_name outcome.Repair.stage));
                ("seconds", Olog.Float ladder_s) ];
        if Flight.enabled () then
          Flight.record ~kind:"replan" reason
            ~fields:
              [ ("policy", policy_name policy);
                ("stage", Repair.stage_name outcome.Repair.stage) ]
      | Error e ->
        (* Cannot happen for well-formed platforms (Rescale is total);
           degrade to an idle plan rather than abort the replay. *)
        prev_alloc := Allocation.zero kk;
        Olog.error "dyn.replan.failed"
          ~fields:
            [ ("sim_t", Olog.Float now);
              ("reason", Olog.Str reason);
              ("policy", Olog.Str (policy_name policy));
              ("error", Olog.Str e) ];
        if Flight.enabled () then
          Flight.record ~kind:"replan" "failed"
            ~fields:[ ("reason", reason); ("error", e) ];
        logf "t=%.17g replan reason=%s policy=%s failed %s\n" now reason
          (policy_name policy) e
    end;
    if Trace.live sp then
      Trace.finish sp ~args:[ ("reason", reason); ("policy", policy_name policy) ]
  in
  (* One completion event per re-plan generation: the earliest-finishing
     admitted head.  Anything that changes the plan bumps [gen] and
     schedules a fresh event; stale ones are ignored on pop. *)
  let schedule_completion now =
    let best = ref None in
    List.iter
      (fun (_, lv) ->
        if lv.rate > 0.0 then begin
          let tfin = now +. (lv.remaining /. lv.rate) in
          match !best with
          | Some t when t <= tfin -> ()
          | _ -> best := Some tfin
        end)
      (heads ());
    match !best with
    | Some tfin -> Event_heap.push heap ~time:tfin (Completion { gen = !gen })
    | None -> ()
  in
  let advance_to t =
    let dt = t -. !clock in
    if dt > 0.0 then begin
      List.iter
        (fun (_, lv) ->
          if lv.rate > 0.0 then
            lv.remaining <- Float.max 0.0 (lv.remaining -. (lv.rate *. dt)))
        (heads ());
      clock := t
    end
  in
  let horizon_reached t = match until with Some u -> t > u | None -> false in
  let guard =
    ref ((64 * (List.length workload + List.length fault_times + 8)) + 1024)
  in
  let guard_exhausted = ref false in
  let stop = ref false in
  while (not !stop) && not (Event_heap.is_empty heap) do
    if !guard <= 0 then begin
      guard_exhausted := true;
      M.incr m_guard_exhausted;
      Olog.error "dyn.guard_exhausted"
        ~fields:[ ("sim_t", Olog.Float !clock); ("events", Olog.Int !events) ];
      if Flight.enabled () then
        Flight.record ~kind:"fault" "dyn.guard_exhausted"
          ~fields:[ ("sim_t", Printf.sprintf "%.17g" !clock) ];
      stop := true
    end
    else begin
      decr guard;
      match Event_heap.pop heap with
      | None -> stop := true
      | Some (t, ev) ->
        if horizon_reached t then stop := true
        else begin
          advance_to t;
          (match ev with
          | Arrival j ->
            incr events;
            M.incr m_events;
            let sp = Trace.start ~cat:"dyn" "dyn.event" in
            logf "t=%.17g arrive job=%d cluster=%d work=%.17g\n" t
              j.Workload.id j.Workload.cluster j.Workload.work;
            Queue.add
              { j; remaining = j.Workload.work; started = -1.0; rate = 0.0 }
              queues.(j.Workload.cluster);
            replan ~now:t ~reason:"arrival";
            schedule_completion t;
            if Trace.live sp then Trace.finish sp ~args:[ ("kind", "arrival") ]
          | Fault_tick ->
            let applied = Faults.advance fstate ~now:t in
            if applied <> [] then begin
              incr events;
              M.incr m_events;
              let sp = Trace.start ~cat:"dyn" "dyn.event" in
              List.iter
                (fun fe ->
                  let descr = Format.asprintf "%a" Faults.pp_kind fe.Faults.kind in
                  logf "t=%.17g fault %s\n" t descr;
                  if Olog.enabled Olog.Warn then
                    Olog.warn "dyn.fault"
                      ~fields:[ ("sim_t", Olog.Float t); ("fault", Olog.Str descr) ];
                  if Flight.enabled () then
                    Flight.record ~kind:"fault" descr
                      ~fields:[ ("sim_t", Printf.sprintf "%.17g" t) ])
                applied;
              replan ~now:t ~reason:"fault";
              schedule_completion t;
              if Trace.live sp then Trace.finish sp ~args:[ ("kind", "fault") ]
            end
          | Completion { gen = g } when g = !gen ->
            incr events;
            M.incr m_events;
            let sp = Trace.start ~cat:"dyn" "dyn.event" in
            (* Every head whose backlog is (numerically) drained
               completes now; the tolerance is relative to the job's
               own size. *)
            let finished_any = ref false in
            Array.iteri
              (fun _k q ->
                match Queue.peek_opt q with
                | Some lv
                  when lv.rate > 0.0
                       && lv.remaining <= eps *. lv.j.Workload.work ->
                  ignore (Queue.pop q);
                  finished_any := true;
                  completed :=
                    { job = lv.j; started = lv.started; finished = t }
                    :: !completed;
                  completed_work := !completed_work +. lv.j.Workload.work;
                  logf "t=%.17g complete job=%d response=%.17g\n" t
                    lv.j.Workload.id
                    (t -. lv.j.Workload.arrival)
                | _ -> ())
              queues;
            if !finished_any then begin
              replan ~now:t ~reason:"completion";
              schedule_completion t
            end
            else
              (* Numeric drift: the planned finish undershot.  Re-arm
                 for the residual backlog rather than spinning. *)
              schedule_completion t;
            if Trace.live sp then
              Trace.finish sp ~args:[ ("kind", "completion") ]
          | Completion _ -> (* stale generation: superseded plan *) ())
        end
    end
  done;
  let completed = List.rev !completed in
  (* Not just the queued residue: jobs whose arrival never fired (an
     [until] cutoff before their submit time) are unfinished too. *)
  let unfinished = List.length workload - List.length completed in
  let makespan =
    List.fold_left (fun acc r -> Float.max acc r.finished) 0.0 completed
  in
  let mean_response =
    match completed with
    | [] -> 0.0
    | _ ->
      List.fold_left (fun acc r -> acc +. (r.finished -. r.job.Workload.arrival))
        0.0 completed
      /. float_of_int (List.length completed)
  in
  let throughput =
    if makespan > 0.0 then !completed_work /. makespan else 0.0
  in
  logf "t=%.17g end completed=%d unfinished=%d\n" !clock
    (List.length completed) unfinished;
  if Trace.live sp_run then
    Trace.finish sp_run
      ~args:
        [ ("policy", policy_name policy);
          ("jobs", string_of_int (List.length workload));
          ("replans", string_of_int !replans) ];
  { completed; unfinished; makespan; completed_work = !completed_work;
    mean_response; throughput; events = !events; replans = !replans;
    replan_seconds = Array.of_list (List.rev !replan_seconds);
    event_log = Buffer.contents log; guard_exhausted = !guard_exhausted }
