(** Sparse LU factorization of a simplex basis, with a product-form eta
    file for cheap post-pivot updates.

    [factor] runs a right-looking Gaussian elimination with
    Markowitz-style pivot selection: at each step it prefers the pivot
    minimizing [(r_i - 1) * (c_j - 1)] (row and column active counts)
    among numerically acceptable candidates ([|a_ij| >= tau * colmax]),
    which is what keeps fill-in low on the banded/arrow-shaped bases the
    divisible-load relaxations produce.

    The basis columns are addressed by {e slot} (their position in the
    basis, [0 .. m-1]) while matrix entries are addressed by {e row}.
    [ftran] maps a row-indexed right-hand side to a slot-indexed solution
    of [B x = b]; [btran] maps a slot-indexed objective restriction to a
    row-indexed dual solution of [B^T y = c].

    After a simplex pivot replaces the column in slot [r], call
    {!update} with the freshly computed [w = B^{-1} a_q]: the factors
    are not rebuilt, an eta transform is appended instead (product-form
    update, the variant of Forrest–Tomlin bookkeeping used here).  The
    eta file grows until the owner decides to refactorize. *)

type t

val factor : m:int -> col:(int -> int array * float array) -> t option
(** [factor ~m ~col] factorizes the [m x m] basis whose slot [k] column
    is [col k] (parallel row-index/value arrays, rows unsorted is fine,
    no duplicates).  Returns [None] when the basis is numerically
    singular. *)

val ftran : t -> float array -> unit
(** In-place solve of [B x = b] (with all appended etas), length [m].
    Input indexed by row, output indexed by slot. *)

val btran : t -> float array -> unit
(** In-place solve of [B^T y = c], length [m].  Input indexed by slot,
    output indexed by row. *)

val update : t -> slot:int -> float array -> unit
(** [update t ~slot w] records that the column in [slot] was replaced by
    a column whose ftran image is [w] (slot-indexed, as returned by
    {!ftran}).  [w] is not modified.  Raises [Invalid_argument] if
    [w.(slot)] is numerically zero (the replacement would be singular —
    the simplex ratio test must prevent this). *)

val size : t -> int
(** Dimension [m]. *)

val lu_nnz : t -> int
(** Nonzeros stored in the triangular factors (diagonal included). *)

val basis_nnz : t -> int
(** Nonzeros of the basis matrix that was factorized; [lu_nnz - basis_nnz]
    is the fill-in. *)

val eta_count : t -> int
(** Number of product-form updates appended since [factor]. *)

val eta_nnz : t -> int
(** Total nonzeros across the eta file. *)
