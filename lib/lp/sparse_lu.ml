(* Sparse LU of a simplex basis: right-looking elimination with
   Markowitz pivot selection and threshold partial pivoting, plus a
   product-form eta file appended by [update] between refactorizations.

   Factorization state is kept column-wise in growable buffers.  A row
   becomes "frozen" once it has been chosen as a pivot row; frozen
   entries stay in place inside the column buffers and become the U part
   of that column when (and if) the column itself is pivoted.  Active
   row/column counts drive the Markowitz cost; columns are found through
   a bucket queue keyed by active count, with lazy deletion (stale
   bucket entries are discarded when popped). *)

let tau = 0.1 (* threshold pivoting: accept |a_ij| >= tau * colmax *)
let drop_tol = 1e-12
let max_candidates = 4 (* columns examined per pivot before settling *)

type eta = {
  e_slot : int;
  e_piv : float;
  e_idx : int array;
  e_val : float array;
}

type t = {
  m : int;
  p_row : int array; (* step -> pivot row *)
  p_slot : int array; (* step -> basis slot *)
  diag : float array;
  l_idx : int array array; (* multiplier rows, per step *)
  l_val : float array array;
  u_idx : int array array; (* earlier pivot rows with entries, per step *)
  u_val : float array array;
  lu_nnz : int;
  basis_nnz : int;
  scratch : float array;
  mutable etas : eta list; (* newest first *)
  mutable n_etas : int;
  mutable etas_nnz : int;
}

let size t = t.m
let lu_nnz t = t.lu_nnz
let basis_nnz t = t.basis_nnz
let eta_count t = t.n_etas
let eta_nnz t = t.etas_nnz

(* Growable parallel buffers. *)

type ivec = { mutable ia : int array; mutable ilen : int }

let ivec () = { ia = [||]; ilen = 0 }

let ipush v x =
  if v.ilen = Array.length v.ia then begin
    let cap = max 8 (2 * Array.length v.ia) in
    let a = Array.make cap 0 in
    Array.blit v.ia 0 a 0 v.ilen;
    v.ia <- a
  end;
  v.ia.(v.ilen) <- x;
  v.ilen <- v.ilen + 1

type colbuf = {
  mutable cr : int array;
  mutable cv : float array;
  mutable clen : int;
}

let colbuf_reserve cb n =
  if Array.length cb.cr < n then begin
    let cap = max n (2 * Array.length cb.cr) in
    let r = Array.make cap 0 and v = Array.make cap 0.0 in
    Array.blit cb.cr 0 r 0 cb.clen;
    Array.blit cb.cv 0 v 0 cb.clen;
    cb.cr <- r;
    cb.cv <- v
  end

exception Singular

let factor ~m ~col =
  if m = 0 then
    Some
      {
        m = 0;
        p_row = [||];
        p_slot = [||];
        diag = [||];
        l_idx = [||];
        l_val = [||];
        u_idx = [||];
        u_val = [||];
        lu_nnz = 0;
        basis_nnz = 0;
        scratch = [||];
        etas = [];
        n_etas = 0;
        etas_nnz = 0;
      }
  else begin
    let cols = Array.init m (fun _ -> { cr = [||]; cv = [||]; clen = 0 }) in
    let rowlists = Array.init m (fun _ -> ivec ()) in
    let rowcount = Array.make m 0 in
    let colcount = Array.make m 0 in
    let row_pivoted = Array.make m false in
    let col_done = Array.make m false in
    let buckets = Array.make (m + 1) [] in
    let basis_nnz = ref 0 in
    for k = 0 to m - 1 do
      let ri, rv = col k in
      let len = Array.length ri in
      if Array.length rv <> len then
        invalid_arg "Sparse_lu.factor: ragged column";
      let cb = cols.(k) in
      colbuf_reserve cb len;
      for p = 0 to len - 1 do
        let i = ri.(p) in
        if i < 0 || i >= m then
          invalid_arg "Sparse_lu.factor: row index out of range";
        cb.cr.(p) <- i;
        cb.cv.(p) <- rv.(p);
        rowcount.(i) <- rowcount.(i) + 1;
        ipush rowlists.(i) k
      done;
      cb.clen <- len;
      colcount.(k) <- len;
      basis_nnz := !basis_nnz + len;
      buckets.(len) <- k :: buckets.(len)
    done;
    (* Recorded steps. *)
    let p_row = Array.make m 0 in
    let p_slot = Array.make m 0 in
    let diag = Array.make m 0.0 in
    let l_idx = Array.make m [||] in
    let l_val = Array.make m [||] in
    let u_idx = Array.make m [||] in
    let u_val = Array.make m [||] in
    (* Scatter workspace for column rebuilds. *)
    let w = Array.make m 0.0 in
    let present = Array.make m (-1) in
    let in_old = Array.make m (-1) in
    let touched = ivec () in
    let tmp_r = Array.make m 0 in
    let tmp_v = Array.make m 0.0 in
    let seen_col = Array.make m (-1) in
    let tag = ref 0 in
    try
      for step = 0 to m - 1 do
        (* --- Markowitz pivot selection over the bucket queue --- *)
        let best_col = ref (-1) in
        let best_row = ref (-1) in
        let best_cost = ref max_int in
        let best_mag = ref 0.0 in
        let examined = ref [] in
        let n_examined = ref 0 in
        (try
           for c = 1 to m do
             let continue_bucket = ref true in
             while !continue_bucket do
               match buckets.(c) with
               | [] -> continue_bucket := false
               | j :: rest ->
                   buckets.(c) <- rest;
                   (* Lazy deletion: stale copies are dropped here; a
                      valid copy lives in the bucket of the current
                      count, pushed when the count last changed. *)
                   if (not col_done.(j)) && colcount.(j) = c then begin
                     examined := j :: !examined;
                     incr n_examined;
                     let cb = cols.(j) in
                     let colmax = ref 0.0 in
                     for p = 0 to cb.clen - 1 do
                       if not row_pivoted.(cb.cr.(p)) then begin
                         let a = Float.abs cb.cv.(p) in
                         if a > !colmax then colmax := a
                       end
                     done;
                     if !colmax > drop_tol then begin
                       let thresh = tau *. !colmax in
                       for p = 0 to cb.clen - 1 do
                         let i = cb.cr.(p) in
                         if not row_pivoted.(i) then begin
                           let a = Float.abs cb.cv.(p) in
                           if a >= thresh && a > drop_tol then begin
                             let cost = (rowcount.(i) - 1) * (c - 1) in
                             if
                               cost < !best_cost
                               || (cost = !best_cost && a > !best_mag)
                             then begin
                               best_cost := cost;
                               best_mag := a;
                               best_col := j;
                               best_row := i
                             end
                           end
                         end
                       done
                     end;
                     if !best_col >= 0
                        && (!best_cost = 0 || !n_examined >= max_candidates)
                     then raise Exit
                   end
             done
           done
         with Exit -> ());
        List.iter
          (fun j ->
            if j <> !best_col && not col_done.(j) then
              buckets.(colcount.(j)) <- j :: buckets.(colcount.(j)))
          !examined;
        if !best_col < 0 then raise Singular;
        let q = !best_col and p = !best_row in
        (* --- Record the step: split the pivot column into U / diag / L --- *)
        let cb = cols.(q) in
        let d = ref 0.0 in
        for pos = 0 to cb.clen - 1 do
          if cb.cr.(pos) = p then d := cb.cv.(pos)
        done;
        let li = ref [] and lv = ref [] and ui = ref [] and uv = ref [] in
        for pos = 0 to cb.clen - 1 do
          let i = cb.cr.(pos) and v = cb.cv.(pos) in
          if i = p then ()
          else if row_pivoted.(i) then begin
            ui := i :: !ui;
            uv := v :: !uv
          end
          else begin
            li := i :: !li;
            lv := (v /. !d) :: !lv;
            rowcount.(i) <- rowcount.(i) - 1
          end
        done;
        rowcount.(p) <- rowcount.(p) - 1;
        p_row.(step) <- p;
        p_slot.(step) <- q;
        diag.(step) <- !d;
        l_idx.(step) <- Array.of_list !li;
        l_val.(step) <- Array.of_list !lv;
        u_idx.(step) <- Array.of_list !ui;
        u_val.(step) <- Array.of_list !uv;
        col_done.(q) <- true;
        row_pivoted.(p) <- true;
        let mult_i = l_idx.(step) and mult_v = l_val.(step) in
        (* --- Eliminate row p from every other active column --- *)
        let rl = rowlists.(p) in
        incr tag;
        let step_tag = !tag in
        for t = 0 to rl.ilen - 1 do
          let j = rl.ia.(t) in
          if j <> q && (not col_done.(j)) && seen_col.(j) <> step_tag then begin
            seen_col.(j) <- step_tag;
            let cbj = cols.(j) in
            let apj = ref 0.0 and found = ref false in
            for pos = 0 to cbj.clen - 1 do
              if cbj.cr.(pos) = p then begin
                apj := cbj.cv.(pos);
                found := true
              end
            done;
            if !found then begin
              if Array.length mult_i = 0 then begin
                (* Only the frozen p-entry changes status. *)
                colcount.(j) <- colcount.(j) - 1;
                buckets.(colcount.(j)) <- j :: buckets.(colcount.(j))
              end
              else begin
                incr tag;
                let utag = !tag in
                touched.ilen <- 0;
                let tlen = ref 0 in
                (* Frozen entries (now including row p) carry over
                   verbatim; active entries are scattered for update. *)
                for pos = 0 to cbj.clen - 1 do
                  let i = cbj.cr.(pos) in
                  if row_pivoted.(i) then begin
                    tmp_r.(!tlen) <- i;
                    tmp_v.(!tlen) <- cbj.cv.(pos);
                    incr tlen
                  end
                  else begin
                    w.(i) <- cbj.cv.(pos);
                    present.(i) <- utag;
                    in_old.(i) <- utag;
                    ipush touched i
                  end
                done;
                for k = 0 to Array.length mult_i - 1 do
                  let i = mult_i.(k) in
                  let delta = mult_v.(k) *. !apj in
                  if present.(i) = utag then w.(i) <- w.(i) -. delta
                  else begin
                    w.(i) <- -.delta;
                    present.(i) <- utag;
                    ipush touched i
                  end
                done;
                let kept = ref 0 in
                for t2 = 0 to touched.ilen - 1 do
                  let i = touched.ia.(t2) in
                  if Float.abs w.(i) > drop_tol then begin
                    tmp_r.(!tlen) <- i;
                    tmp_v.(!tlen) <- w.(i);
                    incr tlen;
                    incr kept;
                    if in_old.(i) <> utag then begin
                      (* fill-in *)
                      rowcount.(i) <- rowcount.(i) + 1;
                      ipush rowlists.(i) j
                    end
                  end
                  else if in_old.(i) = utag then
                    rowcount.(i) <- rowcount.(i) - 1
                done;
                colbuf_reserve cbj !tlen;
                Array.blit tmp_r 0 cbj.cr 0 !tlen;
                Array.blit tmp_v 0 cbj.cv 0 !tlen;
                cbj.clen <- !tlen;
                colcount.(j) <- !kept;
                buckets.(!kept) <- j :: buckets.(!kept)
              end
            end
          end
        done
      done;
      let lu_nnz = ref m in
      for k = 0 to m - 1 do
        lu_nnz := !lu_nnz + Array.length l_idx.(k) + Array.length u_idx.(k)
      done;
      Some
        {
          m;
          p_row;
          p_slot;
          diag;
          l_idx;
          l_val;
          u_idx;
          u_val;
          lu_nnz = !lu_nnz;
          basis_nnz = !basis_nnz;
          scratch = Array.make m 0.0;
          etas = [];
          n_etas = 0;
          etas_nnz = 0;
        }
    with Singular -> None
  end

(* Eta transforms live in slot space, exactly like the dense solver's
   product-form file. *)

let apply_eta v e =
  let t1 = v.(e.e_slot) /. e.e_piv in
  for k = 0 to Array.length e.e_idx - 1 do
    v.(e.e_idx.(k)) <- v.(e.e_idx.(k)) -. (e.e_val.(k) *. t1)
  done;
  v.(e.e_slot) <- t1

let apply_eta_t v e =
  let acc = ref v.(e.e_slot) in
  for k = 0 to Array.length e.e_idx - 1 do
    acc := !acc -. (e.e_val.(k) *. v.(e.e_idx.(k)))
  done;
  v.(e.e_slot) <- !acc /. e.e_piv

let ftran t v =
  if t.m > 0 then begin
    (* L: forward elimination in pivot order. *)
    for k = 0 to t.m - 1 do
      let x = v.(t.p_row.(k)) in
      if x <> 0.0 then begin
        let li = t.l_idx.(k) and lv = t.l_val.(k) in
        for p = 0 to Array.length li - 1 do
          v.(li.(p)) <- v.(li.(p)) -. (lv.(p) *. x)
        done
      end
    done;
    (* U: back substitution; results land in slot order via scratch. *)
    let res = t.scratch in
    for k = t.m - 1 downto 0 do
      let x = v.(t.p_row.(k)) /. t.diag.(k) in
      if x <> 0.0 then begin
        let ui = t.u_idx.(k) and uv = t.u_val.(k) in
        for p = 0 to Array.length ui - 1 do
          v.(ui.(p)) <- v.(ui.(p)) -. (uv.(p) *. x)
        done
      end;
      res.(t.p_slot.(k)) <- x
    done;
    Array.blit res 0 v 0 t.m;
    List.iter (apply_eta v) (List.rev t.etas)
  end

let btran t v =
  if t.m > 0 then begin
    List.iter (apply_eta_t v) t.etas;
    let c = t.scratch in
    Array.blit v 0 c 0 t.m;
    (* U^T: forward over steps; unknowns live at pivot rows. *)
    for k = 0 to t.m - 1 do
      let acc = ref c.(t.p_slot.(k)) in
      let ui = t.u_idx.(k) and uv = t.u_val.(k) in
      for p = 0 to Array.length ui - 1 do
        acc := !acc -. (uv.(p) *. v.(ui.(p)))
      done;
      v.(t.p_row.(k)) <- !acc /. t.diag.(k)
    done;
    (* L^T: reverse order. *)
    for k = t.m - 1 downto 0 do
      let li = t.l_idx.(k) and lv = t.l_val.(k) in
      let acc = ref v.(t.p_row.(k)) in
      for p = 0 to Array.length li - 1 do
        acc := !acc -. (lv.(p) *. v.(li.(p)))
      done;
      v.(t.p_row.(k)) <- !acc
    done
  end

let update t ~slot w =
  let piv = w.(slot) in
  if Float.abs piv <= drop_tol then
    invalid_arg "Sparse_lu.update: singular pivot";
  let n = ref 0 in
  for i = 0 to t.m - 1 do
    if i <> slot && Float.abs w.(i) > drop_tol then incr n
  done;
  let idx = Array.make !n 0 and vals = Array.make !n 0.0 in
  let p = ref 0 in
  for i = 0 to t.m - 1 do
    if i <> slot && Float.abs w.(i) > drop_tol then begin
      idx.(!p) <- i;
      vals.(!p) <- w.(i);
      incr p
    end
  done;
  t.etas <- { e_slot = slot; e_piv = piv; e_idx = idx; e_val = vals } :: t.etas;
  t.n_etas <- t.n_etas + 1;
  t.etas_nnz <- t.etas_nnz + !n + 1
