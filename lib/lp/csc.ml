type t = {
  nrows : int;
  ncols : int;
  colptr : int array;
  rowind : int array;
  values : float array;
}

let nnz t = t.colptr.(t.ncols)

(* Build from per-row adjacency.  Two passes: count entries per column,
   then fill with a per-column cursor.  Visiting rows in order makes row
   indices within each column increasing for free.  Duplicates are merged
   per row first so the counts are exact. *)
let of_rows ~nrows ~ncols rows =
  if Array.length rows <> nrows then
    invalid_arg "Csc.of_rows: row count mismatch";
  let merged =
    Array.map
      (fun entries ->
        match entries with
        | [] -> [||]
        | _ ->
            let tbl = Hashtbl.create (List.length entries) in
            List.iter
              (fun (j, v) ->
                if j < 0 || j >= ncols then
                  invalid_arg "Csc.of_rows: column index out of range";
                let prev = try Hashtbl.find tbl j with Not_found -> 0.0 in
                Hashtbl.replace tbl j (prev +. v))
              entries;
            let acc = Hashtbl.fold (fun j v l -> (j, v) :: l) tbl [] in
            let arr = Array.of_list (List.filter (fun (_, v) -> v <> 0.0) acc) in
            Array.sort (fun (a, _) (b, _) -> compare a b) arr;
            arr)
      rows
  in
  let counts = Array.make ncols 0 in
  Array.iter
    (Array.iter (fun (j, _) -> counts.(j) <- counts.(j) + 1))
    merged;
  let colptr = Array.make (ncols + 1) 0 in
  for j = 0 to ncols - 1 do
    colptr.(j + 1) <- colptr.(j) + counts.(j)
  done;
  let total = colptr.(ncols) in
  let rowind = Array.make total 0 in
  let values = Array.make total 0.0 in
  let cursor = Array.copy colptr in
  Array.iteri
    (fun i entries ->
      Array.iter
        (fun (j, v) ->
          let p = cursor.(j) in
          rowind.(p) <- i;
          values.(p) <- v;
          cursor.(j) <- p + 1)
        entries)
    merged;
  { nrows; ncols; colptr; rowind; values }

let of_dense rows =
  let nrows = Array.length rows in
  let ncols = if nrows = 0 then 0 else Array.length rows.(0) in
  let adj =
    Array.map
      (fun row ->
        if Array.length row <> ncols then
          invalid_arg "Csc.of_dense: ragged rows";
        let acc = ref [] in
        for j = ncols - 1 downto 0 do
          if row.(j) <> 0.0 then acc := (j, row.(j)) :: !acc
        done;
        !acc)
      rows
  in
  of_rows ~nrows ~ncols adj

let to_dense t =
  let d = Array.make_matrix t.nrows t.ncols 0.0 in
  for j = 0 to t.ncols - 1 do
    for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      d.(t.rowind.(p)).(j) <- d.(t.rowind.(p)).(j) +. t.values.(p)
    done
  done;
  d

let transpose t =
  let counts = Array.make t.nrows 0 in
  for p = 0 to nnz t - 1 do
    counts.(t.rowind.(p)) <- counts.(t.rowind.(p)) + 1
  done;
  let colptr = Array.make (t.nrows + 1) 0 in
  for i = 0 to t.nrows - 1 do
    colptr.(i + 1) <- colptr.(i) + counts.(i)
  done;
  let rowind = Array.make (nnz t) 0 in
  let values = Array.make (nnz t) 0.0 in
  let cursor = Array.copy colptr in
  (* Walking columns in order keeps row indices sorted in the result. *)
  for j = 0 to t.ncols - 1 do
    for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      let i = t.rowind.(p) in
      let q = cursor.(i) in
      rowind.(q) <- j;
      values.(q) <- t.values.(p);
      cursor.(i) <- q + 1
    done
  done;
  { nrows = t.ncols; ncols = t.nrows; colptr; rowind; values }

let mat_vec t x =
  if Array.length x <> t.ncols then invalid_arg "Csc.mat_vec: length mismatch";
  let y = Array.make t.nrows 0.0 in
  for j = 0 to t.ncols - 1 do
    let xj = x.(j) in
    if xj <> 0.0 then
      for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
        y.(t.rowind.(p)) <- y.(t.rowind.(p)) +. (t.values.(p) *. xj)
      done
  done;
  y

let mat_tvec t y =
  if Array.length y <> t.nrows then invalid_arg "Csc.mat_tvec: length mismatch";
  let x = Array.make t.ncols 0.0 in
  for j = 0 to t.ncols - 1 do
    let acc = ref 0.0 in
    for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      acc := !acc +. (t.values.(p) *. y.(t.rowind.(p)))
    done;
    x.(j) <- !acc
  done;
  x

let iter_col t j f =
  for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
    f t.rowind.(p) t.values.(p)
  done

let col t j =
  let lo = t.colptr.(j) and hi = t.colptr.(j + 1) in
  (Array.sub t.rowind lo (hi - lo), Array.sub t.values lo (hi - lo))
