(** Structural presolve for the packed inequality form
    [maximize c.x subject to Ax <= b, x >= 0, b >= 0].

    Reductions, iterated to a fixpoint:
    - empty rows and rows whose coefficients are all nonpositive are
      dropped (always satisfied by [x >= 0, b >= 0]);
    - among singleton rows [a x_j <= b] with [a > 0] only the tightest
      bound per column is kept;
    - empty columns are dropped: if such a column has a positive
      objective the LP is unbounded, otherwise the variable is fixed
      at 0;
    - columns with nonpositive objective and only nonnegative
      coefficients are fixed at 0 (raising them never helps).

    Every reduction preserves the optimal objective and the status
    (optimal/unbounded), and the postsolve mapping embeds a reduced
    solution back into the original index space with zeros for dropped
    variables and zero duals for dropped rows — both remain feasible
    for the original problem. *)

type map

type result =
  | Reduced of Revised_simplex.problem * map
  | Unbounded of int
      (** An empty column with positive objective: the LP is unbounded
          along that coordinate axis. *)

val reduce : Revised_simplex.problem -> result
(** Raises [Invalid_argument] on negative right-hand sides or
    out-of-range variable indices, mirroring solver validation. *)

val restore_values : map -> float array -> float array
(** Map a reduced primal solution to original variable space. *)

val restore_duals : map -> float array -> float array
(** Map reduced row duals to original row space. *)

val kept_rows : map -> int

val kept_cols : map -> int
