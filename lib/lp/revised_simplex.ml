type constr = { coeffs : (int * float) list; rhs : float }

type problem = {
  num_vars : int;
  maximize : (int * float) list;
  rows : constr list;
}

type status = Optimal | Unbounded | Iteration_limit | Cycling

type solution = {
  status : status;
  objective : float;
  values : float array;
  duals : float array;
  iterations : int;
}

type counters = {
  solves : int;
  warm_starts : int;
  cold_starts : int;
  pivots : int;
  reinversions : int;
  bland_activations : int;
  wall_clock : float;
}

let zero_counters =
  { solves = 0; warm_starts = 0; cold_starts = 0; pivots = 0;
    reinversions = 0; bland_activations = 0; wall_clock = 0.0 }

let src = Logs.Src.create "dls.lp.revised" ~doc:"Sparse revised simplex"

module Log = (val Logs.src_log src : Logs.LOG)

(* Registry metrics: cross-state totals, alongside the per-state [ctr]
   record that the campaign codec and warm-start tests rely on.  The
   registry is off by default, so these cost one atomic load per event
   in normal runs. *)
module M = Dls_obs.Metrics

let m_solves = M.counter "lp.solves"
let m_warm_starts = M.counter "lp.warm_starts"
let m_cold_starts = M.counter "lp.cold_starts"
let m_pivots = M.counter "lp.pivots"
let m_reinversions = M.counter "lp.reinversions"
let m_bland_activations = M.counter "lp.bland_activations"
let m_solve_seconds = M.histogram "lp.solve_seconds"
let m_solve_pivots = M.histogram "lp.solve_pivots"

(* Eta matrix of one pivot: identity with column [row] replaced by the
   (sparse) transformed entering column; [pivot] is that column's entry
   in position [row]. *)
type eta = {
  row : int;
  pivot : float;
  idx : int array;  (* off-pivot row indices *)
  value : float array;  (* matching off-pivot entries *)
}

let dtol = 1e-7  (* reduced-cost / pivot significance threshold *)
let drop_tol = 1e-12  (* entries below this are not stored in etas *)
let refactor_interval = 100

type state = {
  m : int;
  n : int;  (* structural columns; slack j = n + i covers row i *)
  (* CSC structural columns *)
  col_idx : int array array;
  col_val : float array array;
  obj : float array;  (* length n *)
  rhs : float array;
  basis : int array;  (* column basic in each row *)
  in_basis : bool array;  (* length n + m *)
  x_basic : float array;
  mutable etas : eta list;  (* newest first *)
  mutable num_etas : int;
  mutable pivot_etas : int;  (* etas appended by pivots since the last
                                reinversion — the factorization's own
                                etas must not count against the
                                refactorization interval, or a large
                                basis re-inverts on every pivot *)
  mutable solved : bool;  (* a previous solve's basis is carried *)
  mutable ctr : counters;  (* cumulative over the state's lifetime *)
}

(* v <- B^-1 v : apply etas oldest-first. *)
let ftran st v =
  List.iter
    (fun e ->
      let t = v.(e.row) /. e.pivot in
      if t <> 0.0 then begin
        for k = 0 to Array.length e.idx - 1 do
          v.(e.idx.(k)) <- v.(e.idx.(k)) -. (e.value.(k) *. t)
        done
      end;
      v.(e.row) <- t)
    (List.rev st.etas)

(* y <- (B^-1)' y : apply etas newest-first. *)
let btran st y =
  List.iter
    (fun e ->
      let acc = ref y.(e.row) in
      for k = 0 to Array.length e.idx - 1 do
        acc := !acc -. (e.value.(k) *. y.(e.idx.(k)))
      done;
      y.(e.row) <- !acc /. e.pivot)
    st.etas

let scatter_column st j v =
  Array.fill v 0 st.m 0.0;
  if j < st.n then begin
    let idx = st.col_idx.(j) and value = st.col_val.(j) in
    for k = 0 to Array.length idx - 1 do
      v.(idx.(k)) <- value.(k)
    done
  end
  else v.(j - st.n) <- 1.0

let pack_eta row w m =
  let count = ref 0 in
  for i = 0 to m - 1 do
    if i <> row && Float.abs w.(i) > drop_tol then incr count
  done;
  let idx = Array.make !count 0 and value = Array.make !count 0.0 in
  let k = ref 0 in
  for i = 0 to m - 1 do
    if i <> row && Float.abs w.(i) > drop_tol then begin
      idx.(!k) <- i;
      value.(!k) <- w.(i);
      incr k
    end
  done;
  { row; pivot = w.(row); idx; value }

(* Rebuild the eta representation for the current basis set from
   scratch (reinversion), then recompute the basic values.  Returns
   [true] when the carried basis was kept, [false] when it was singular
   and the state fell back to the all-slack basis.

   Phase 1 — triangularization: repeatedly eliminate a row whose support
   among the remaining basis columns is a singleton.  In that order each
   column has no entry in any earlier pivot row, so its eta is the raw
   column — no ftran, no fill-in.  Phase 2 — the residual "bump" is
   pivoted generically with partial pivoting over the unused rows.  Row
   assignments may permute, so [basis] is rewritten accordingly. *)
let refactor st =
  st.ctr <- { st.ctr with reinversions = st.ctr.reinversions + 1 };
  M.incr m_reinversions;
  let columns = Array.copy st.basis in
  let ncols = Array.length columns in
  st.etas <- [];
  st.num_etas <- 0;
  let row_used = Array.make st.m false in
  let col_done = Array.make ncols false in
  (* Support of each basis column restricted to rows; per-row incidence
     lists of basis-column positions. *)
  let support c =
    let j = columns.(c) in
    if j >= st.n then [| j - st.n |] else st.col_idx.(j)
  in
  let entry_of c i =
    let j = columns.(c) in
    if j >= st.n then 1.0
    else begin
      let idx = st.col_idx.(j) and value = st.col_val.(j) in
      let rec find k = if idx.(k) = i then value.(k) else find (k + 1) in
      find 0
    end
  in
  let row_cols = Array.make st.m [] in
  let row_count = Array.make st.m 0 in
  Array.iteri
    (fun c _ ->
      Array.iter
        (fun i ->
          row_cols.(i) <- c :: row_cols.(i);
          row_count.(i) <- row_count.(i) + 1)
        (support c))
    columns;
  let singletons = Queue.create () in
  for i = 0 to st.m - 1 do
    if row_count.(i) = 1 then Queue.add i singletons
  done;
  let push_raw_eta c r =
    (* Raw column as eta; identity etas (unit slack columns) are not
       stored at all. *)
    let j = columns.(c) in
    if j >= st.n then ()
    else begin
      let idx = st.col_idx.(j) and value = st.col_val.(j) in
      let keep = ref 0 in
      Array.iteri (fun k i -> if i <> r && Float.abs value.(k) > drop_tol then incr keep) idx;
      if !keep = 0 && Float.abs (entry_of c r -. 1.0) < 1e-15 then ()
      else begin
        let oidx = Array.make !keep 0 and oval = Array.make !keep 0.0 in
        let k' = ref 0 in
        Array.iteri
          (fun k i ->
            if i <> r && Float.abs value.(k) > drop_tol then begin
              oidx.(!k') <- i;
              oval.(!k') <- value.(k);
              incr k'
            end)
          idx;
        st.etas <- { row = r; pivot = entry_of c r; idx = oidx; value = oval } :: st.etas;
        st.num_etas <- st.num_etas + 1
      end
    end
  in
  (* Phase 1: triangular prefix. *)
  while not (Queue.is_empty singletons) do
    let r = Queue.pop singletons in
    if (not row_used.(r)) && row_count.(r) = 1 then begin
      match List.find_opt (fun c -> not col_done.(c)) row_cols.(r) with
      | Some c when Float.abs (entry_of c r) > drop_tol ->
        row_used.(r) <- true;
        col_done.(c) <- true;
        st.basis.(r) <- columns.(c);
        push_raw_eta c r;
        (* Retire the column: decrement the counts of its other rows. *)
        Array.iter
          (fun i ->
            if not row_used.(i) then begin
              row_count.(i) <- row_count.(i) - 1;
              if row_count.(i) = 1 then Queue.add i singletons
            end)
          (support c)
      | Some _ | None -> ()
    end
  done;
  (* Phase 2: generic PFI pivoting of the residual bump. *)
  let w = Array.make st.m 0.0 in
  let ok = ref true in
  for c = 0 to ncols - 1 do
    if !ok && not col_done.(c) then begin
      scatter_column st columns.(c) w;
      ftran st w;
      let best = ref (-1) and best_mag = ref 0.0 in
      for i = 0 to st.m - 1 do
        if (not row_used.(i)) && Float.abs w.(i) > !best_mag then begin
          best := i;
          best_mag := Float.abs w.(i)
        end
      done;
      if !best < 0 || !best_mag < drop_tol then ok := false
      else begin
        let r = !best in
        row_used.(r) <- true;
        col_done.(c) <- true;
        st.basis.(r) <- columns.(c);
        st.etas <- pack_eta r w st.m :: st.etas;
        st.num_etas <- st.num_etas + 1
      end
    end
  done;
  if not !ok then begin
    (* Singular refactorization (numerical breakdown): fall back to the
       all-slack basis; the outer loop re-optimizes from there. *)
    st.etas <- [];
    st.num_etas <- 0;
    Array.fill st.in_basis 0 (st.n + st.m) false;
    for i = 0 to st.m - 1 do
      st.basis.(i) <- st.n + i;
      st.in_basis.(st.n + i) <- true
    done
  end;
  st.pivot_etas <- 0;
  (* Recompute basic values x_B = B^-1 b. *)
  Array.blit st.rhs 0 st.x_basic 0 st.m;
  ftran st st.x_basic;
  for i = 0 to st.m - 1 do
    if st.x_basic.(i) < 0.0 && st.x_basic.(i) > -1e-6 then st.x_basic.(i) <- 0.0
  done;
  !ok

let create problem =
  let rows = Array.of_list problem.rows in
  let m = Array.length rows in
  let n = problem.num_vars in
  (* Transpose the row-wise input into compressed columns, summing
     duplicate coefficients. *)
  let per_col = Array.make n [] in
  Array.iteri
    (fun i (r : constr) ->
      if r.rhs < 0.0 then
        invalid_arg "Revised_simplex.solve: negative right-hand side";
      let merged = Hashtbl.create 8 in
      List.iter
        (fun (j, v) ->
          if j < 0 || j >= n then
            invalid_arg
              (Printf.sprintf "Revised_simplex.solve: variable index %d out of range" j);
          Hashtbl.replace merged j
            (v +. Option.value ~default:0.0 (Hashtbl.find_opt merged j)))
        r.coeffs;
      Hashtbl.iter (fun j v -> if v <> 0.0 then per_col.(j) <- (i, v) :: per_col.(j)) merged)
    rows;
  let col_idx = Array.map (fun l -> Array.of_list (List.rev_map fst l)) per_col in
  let col_val = Array.map (fun l -> Array.of_list (List.rev_map snd l)) per_col in
  let obj = Array.make n 0.0 in
  List.iter
    (fun (j, v) ->
      if j < 0 || j >= n then
        invalid_arg
          (Printf.sprintf "Revised_simplex.solve: objective index %d out of range" j);
      obj.(j) <- obj.(j) +. v)
    problem.maximize;
  let rhs = Array.map (fun (r : constr) -> r.rhs) rows in
  let basis = Array.init m (fun i -> n + i) in
  let in_basis = Array.make (n + m) false in
  for i = 0 to m - 1 do
    in_basis.(n + i) <- true
  done;
  { m; n; col_idx; col_val; obj; rhs; basis; in_basis;
    x_basic = Array.copy rhs; etas = []; num_etas = 0; pivot_etas = 0;
    solved = false; ctr = zero_counters }

let counters st = st.ctr

(* ---------------- incremental updates ---------------- *)

let set_rhs st ~row v =
  if row < 0 || row >= st.m then
    invalid_arg "Revised_simplex.set_rhs: row out of range";
  if v < 0.0 then invalid_arg "Revised_simplex.set_rhs: negative right-hand side";
  st.rhs.(row) <- v

let rhs st ~row =
  if row < 0 || row >= st.m then
    invalid_arg "Revised_simplex.rhs: row out of range";
  st.rhs.(row)

let zero_coeff st ~row ~var =
  if row < 0 || row >= st.m then
    invalid_arg "Revised_simplex.zero_coeff: row out of range";
  if var < 0 || var >= st.n then
    invalid_arg "Revised_simplex.zero_coeff: variable out of range";
  let idx = st.col_idx.(var) and value = st.col_val.(var) in
  for k = 0 to Array.length idx - 1 do
    if idx.(k) = row then value.(k) <- 0.0
  done

(* Reset to the (always primal-feasible) all-slack starting basis. *)
let reset_cold st =
  st.etas <- [];
  st.num_etas <- 0;
  st.pivot_etas <- 0;
  Array.fill st.in_basis 0 (st.n + st.m) false;
  for i = 0 to st.m - 1 do
    st.basis.(i) <- st.n + i;
    st.in_basis.(st.n + i) <- true
  done;
  Array.blit st.rhs 0 st.x_basic 0 st.m

let objective_value st =
  let z = ref 0.0 in
  for i = 0 to st.m - 1 do
    let j = st.basis.(i) in
    if j < st.n then z := !z +. (st.obj.(j) *. st.x_basic.(i))
  done;
  !z

(* Primal simplex iterations from the current (primal-feasible) basis:
   Dantzig pricing with a stall-triggered switch to Bland's rule.  The
   pivot budget is a hard termination guarantee even on degenerate LPs:
   exhausting it while Bland's rule is active and the objective has not
   moved since the switch is reported as [Cycling] (a degenerate spin),
   every other exhaustion as [Iteration_limit]. *)
let optimize ?max_iterations st =
  let total_cols = st.n + st.m in
  let budget =
    match max_iterations with
    | Some b -> b
    | None -> 2000 + (60 * (st.m + total_cols))
  in
  let iterations = ref 0 in
  let y = Array.make st.m 0.0 in
  let w = Array.make st.m 0.0 in
  let stall = ref 0 in
  let stall_limit = 4 * (st.m + total_cols) in
  let bland = ref false in
  let z_at_bland = ref neg_infinity in
  let last_z = ref neg_infinity in
  let result = ref None in
  while !result = None do
    begin
      if st.pivot_etas >= refactor_interval then ignore (refactor st : bool);
      (* Pricing: y = (B^-1)' c_B, then reduced costs per nonbasic column. *)
      Array.fill y 0 st.m 0.0;
      for i = 0 to st.m - 1 do
        let j = st.basis.(i) in
        if j < st.n then y.(i) <- st.obj.(j)
      done;
      btran st y;
      let reduced j =
        if j < st.n then begin
          let idx = st.col_idx.(j) and value = st.col_val.(j) in
          let dot = ref 0.0 in
          for k = 0 to Array.length idx - 1 do
            dot := !dot +. (value.(k) *. y.(idx.(k)))
          done;
          st.obj.(j) -. !dot
        end
        else -.y.(j - st.n)
      in
      let entering = ref (-1) in
      if !bland then begin
        let j = ref 0 in
        while !entering < 0 && !j < total_cols do
          if (not st.in_basis.(!j)) && reduced !j > dtol then entering := !j;
          incr j
        done
      end
      else begin
        let best = ref dtol in
        for j = 0 to total_cols - 1 do
          if not st.in_basis.(j) then begin
            let d = reduced j in
            if d > !best then begin
              best := d;
              entering := j
            end
          end
        done
      end;
      if !entering < 0 then result := Some Optimal
      else if !iterations >= budget then
        (* Budget checked only after pricing fails to prove optimality:
           a solve that reaches the optimum in exactly [budget] pivots
           is Optimal, not Iteration_limit (the off-by-one fixed while
           wiring the sparse backend; pinned in test_lp). *)
        result :=
          Some
            (if !bland && objective_value st <= !z_at_bland +. 1e-12 then
               Cycling
             else Iteration_limit)
      else begin
        let q = !entering in
        scatter_column st q w;
        ftran st w;
        (* Ratio test with Bland tie-breaking. *)
        let leave = ref (-1) and theta = ref infinity in
        for i = 0 to st.m - 1 do
          if w.(i) > dtol then begin
            let ratio = st.x_basic.(i) /. w.(i) in
            if
              !leave < 0
              || ratio < !theta -. 1e-12
              || (Float.abs (ratio -. !theta) <= 1e-12
                  && st.basis.(i) < st.basis.(!leave))
            then begin
              leave := i;
              theta := ratio
            end
          end
        done;
        if !leave < 0 then result := Some Unbounded
        else begin
          let r = !leave in
          let theta = Float.max 0.0 !theta in
          for i = 0 to st.m - 1 do
            if i <> r then st.x_basic.(i) <- st.x_basic.(i) -. (w.(i) *. theta)
          done;
          st.x_basic.(r) <- theta;
          st.in_basis.(st.basis.(r)) <- false;
          st.in_basis.(q) <- true;
          st.basis.(r) <- q;
          st.etas <- pack_eta r w st.m :: st.etas;
          st.num_etas <- st.num_etas + 1;
          st.pivot_etas <- st.pivot_etas + 1;
          incr iterations;
          let z = objective_value st in
          if z > !last_z +. 1e-12 then begin
            last_z := z;
            stall := 0
          end
          else begin
            incr stall;
            if !stall > stall_limit && not !bland then begin
              bland := true;
              z_at_bland := z;
              st.ctr <-
                { st.ctr with
                  bland_activations = st.ctr.bland_activations + 1 };
              M.incr m_bland_activations;
              Log.debug (fun m ->
                  m "solve #%d: degenerate stall after %d pivots, \
                     switching to Bland's rule"
                    st.ctr.solves !iterations)
            end
          end
        end
      end
    end
  done;
  let status = match !result with Some s -> s | None -> assert false in
  (status, !iterations)

let solve_state ?max_iterations st =
  let t0 = Unix.gettimeofday () in
  let before = st.ctr in
  let sp = Dls_obs.Trace.start ~cat:"lp" "lp.solve" in
  (* Warm attempt: reinvert the carried basis against the (possibly
     updated) matrix and right-hand sides; fall back to the all-slack
     cold start when the basis is singular or no longer primal
     feasible. *)
  let warm =
    st.solved
    && refactor st
    && not (Array.exists (fun x -> x < 0.0) st.x_basic)
  in
  if not warm then reset_cold st;
  st.ctr <-
    { st.ctr with
      solves = st.ctr.solves + 1;
      warm_starts = (st.ctr.warm_starts + if warm then 1 else 0);
      cold_starts = (st.ctr.cold_starts + if warm then 0 else 1) };
  M.incr m_solves;
  M.incr (if warm then m_warm_starts else m_cold_starts);
  let status, iterations = optimize ?max_iterations st in
  st.solved <- true;
  let values = Array.make st.n 0.0 in
  let duals = Array.make st.m 0.0 in
  if status = Optimal then begin
    for i = 0 to st.m - 1 do
      let j = st.basis.(i) in
      if j < st.n then values.(j) <- Float.max 0.0 st.x_basic.(i)
    done;
    (* Dual vector y = (B^-1)' c_B at the optimal basis. *)
    for i = 0 to st.m - 1 do
      let j = st.basis.(i) in
      duals.(i) <- (if j < st.n then st.obj.(j) else 0.0)
    done;
    btran st duals
  end;
  let objective =
    Array.fold_left ( +. ) 0.0 (Array.mapi (fun j v -> st.obj.(j) *. v) values)
  in
  let dt = Unix.gettimeofday () -. t0 in
  st.ctr <-
    { st.ctr with
      pivots = st.ctr.pivots + iterations;
      wall_clock = st.ctr.wall_clock +. dt };
  M.add m_pivots iterations;
  M.observe m_solve_seconds dt;
  M.observe m_solve_pivots (float_of_int iterations);
  if Dls_obs.Trace.live sp then
    Dls_obs.Trace.finish sp
      ~args:
        [ ("start", if warm then "warm" else "cold");
          ("pivots", string_of_int iterations) ];
  Log.debug (fun m ->
      m "solve #%d (%s): %d pivots, %d reinversions, %.3f ms"
        st.ctr.solves
        (if warm then "warm" else "cold")
        iterations
        (st.ctr.reinversions - before.reinversions)
        (1e3 *. dt));
  { status; objective; values; duals; iterations }

let solve ?max_iterations problem = solve_state ?max_iterations (create problem)
