module Make (F : Field.S) = struct
  module Solver = Simplex.Make (F)

  type var = int

  type row = { coeffs : (var * F.t) list; cmp : Solver.cmp; rhs : F.t }

  type t = {
    mutable names : string list;  (* reversed *)
    mutable n : int;
    mutable rows : row list;  (* reversed *)
    mutable nrows : int;
    bounds : (var, F.t) Hashtbl.t;
    mutable objective : (var * F.t) list;
  }

  let create () =
    { names = []; n = 0; rows = []; nrows = 0;
      bounds = Hashtbl.create 16; objective = [] }

  let add_var ?name ?ub t =
    let id = t.n in
    let name = match name with Some s -> s | None -> Printf.sprintf "x%d" id in
    t.names <- name :: t.names;
    t.n <- t.n + 1;
    (match ub with Some b -> Hashtbl.replace t.bounds id b | None -> ());
    id

  let var_name t v = List.nth t.names (t.n - 1 - v)

  let num_vars t = t.n
  let num_constraints t = t.nrows

  let check_var t v =
    if v < 0 || v >= t.n then invalid_arg "Model: variable of another problem"

  let add_row t coeffs cmp rhs =
    List.iter (fun (v, _) -> check_var t v) coeffs;
    t.rows <- { coeffs; cmp; rhs } :: t.rows;
    t.nrows <- t.nrows + 1

  let add_le t coeffs rhs = add_row t coeffs Solver.Le rhs
  let add_ge t coeffs rhs = add_row t coeffs Solver.Ge rhs
  let add_eq t coeffs rhs = add_row t coeffs Solver.Eq rhs

  let set_upper_bound t v b =
    check_var t v;
    match Hashtbl.find_opt t.bounds v with
    | Some prev when F.compare prev b <= 0 -> ()
    | _ -> Hashtbl.replace t.bounds v b

  let set_objective t coeffs =
    List.iter (fun (v, _) -> check_var t v) coeffs;
    t.objective <- coeffs

  type result = {
    status : Solver.status;
    objective : F.t;
    value : var -> F.t;
    duals : F.t array;
    iterations : int;
  }

  let to_problem t =
    let bound_rows =
      Hashtbl.fold
        (fun v b acc ->
          { Solver.coeffs = [ (v, F.one) ]; cmp = Solver.Le; rhs = b } :: acc)
        t.bounds []
    in
    let rows =
      List.rev_map
        (fun r -> { Solver.coeffs = r.coeffs; cmp = r.cmp; rhs = r.rhs })
        t.rows
    in
    { Solver.num_vars = t.n; maximize = t.objective; rows = rows @ bound_rows }

  let solve ?max_iterations t =
    let sol = Solver.solve ?max_iterations (to_problem t) in
    { status = sol.status;
      objective = sol.objective;
      value =
        (fun v ->
          check_var t v;
          sol.values.(v));
      duals = Array.sub sol.duals 0 (Stdlib.min t.nrows (Array.length sol.duals));
      iterations = sol.iterations }

  let pp fmt t =
    let pp_terms fmt coeffs =
      let first = ref true in
      List.iter
        (fun (v, c) ->
          if not !first then Format.fprintf fmt " + ";
          first := false;
          Format.fprintf fmt "%a*%s" F.pp c (var_name t v))
        coeffs
    in
    Format.fprintf fmt "@[<v>maximize %a@," pp_terms t.objective;
    List.iter
      (fun r ->
        let op =
          match r.cmp with Solver.Le -> "<=" | Solver.Ge -> ">=" | Solver.Eq -> "="
        in
        Format.fprintf fmt "  %a %s %a@," pp_terms r.coeffs op F.pp r.rhs)
      (List.rev t.rows);
    Hashtbl.iter
      (fun v b -> Format.fprintf fmt "  %s <= %a@," (var_name t v) F.pp b)
      t.bounds;
    Format.fprintf fmt "@]"
end

module Float = struct
  include Make (Field.Float)

  (* The builder's internals are visible here (same compilation unit as
     the functor), letting the packed-inequality fast path reuse them. *)
  let packed_form t =
    let all_le_nonneg =
      List.for_all (fun r -> r.cmp = Solver.Le && r.rhs >= 0.0) t.rows
      && Hashtbl.fold (fun _ b acc -> acc && b >= 0.0) t.bounds true
    in
    if not all_le_nonneg then None
    else begin
      let bound_rows =
        Hashtbl.fold
          (fun v b acc ->
            { Revised_simplex.coeffs = [ (v, 1.0) ]; rhs = b } :: acc)
          t.bounds []
      in
      let rows =
        List.rev_map
          (fun r -> { Revised_simplex.coeffs = r.coeffs; rhs = r.rhs })
          t.rows
      in
      Some
        { Revised_simplex.num_vars = t.n;
          maximize = t.objective;
          rows = rows @ bound_rows }
    end

  let result_of_sparse t (sol : Revised_simplex.solution) =
    let status =
      match sol.Revised_simplex.status with
      | Revised_simplex.Optimal -> Solver.Optimal
      | Revised_simplex.Unbounded -> Solver.Unbounded
      | Revised_simplex.Iteration_limit -> Solver.Iteration_limit
      (* The dense engine has no cycling diagnosis; both are a pivot
         budget exhaustion from the model's point of view. *)
      | Revised_simplex.Cycling -> Solver.Iteration_limit
    in
    { status;
      objective = sol.Revised_simplex.objective;
      value =
        (fun v ->
          check_var t v;
          sol.Revised_simplex.values.(v));
      duals =
        Array.sub sol.Revised_simplex.duals 0
          (Stdlib.min t.nrows (Array.length sol.Revised_simplex.duals));
      iterations = sol.Revised_simplex.iterations }

  (* The packed constraint matrix in compressed sparse column form,
     bound rows included — the representation the sparse backend
     consumes directly. *)
  let packed_csc t =
    match packed_form t with
    | None -> None
    | Some p ->
      let rows = Array.of_list p.Revised_simplex.rows in
      let adj =
        Array.map (fun (c : Revised_simplex.constr) -> c.coeffs) rows
      in
      let mat =
        Csc.of_rows ~nrows:(Array.length rows) ~ncols:p.Revised_simplex.num_vars
          adj
      in
      Some
        ( mat,
          p.Revised_simplex.maximize,
          Array.map (fun (c : Revised_simplex.constr) -> c.rhs) rows )

  let solve_auto ?backend ?max_iterations t =
    match packed_form t with
    | None -> solve ?max_iterations t
    | Some problem ->
      let backend =
        match backend with Some b -> b | None -> Backend.default ()
      in
      let sol =
        match backend with
        | Backend.Dense -> Revised_simplex.solve ?max_iterations problem
        | Backend.Sparse -> Sparse_simplex.solve ?max_iterations problem
      in
      result_of_sparse t sol

  (* Incremental-solve handle: the model is snapshotted once into a
     solver state of the selected backend; subsequent row edits go
     through the state (the builder is not kept in sync) and re-solves
     warm-start from the previous optimal basis. *)
  type inc_state =
    | Inc_dense of Revised_simplex.state
    | Inc_sparse of Sparse_simplex.state

  type incremental = { model : t; state : inc_state }

  let incremental ?backend t =
    let backend =
      match backend with Some b -> b | None -> Backend.default ()
    in
    match backend with
    | Backend.Dense -> (
      match packed_form t with
      | None ->
        invalid_arg
          "Model.Float.incremental: model not in packed inequality form"
      | Some problem ->
        { model = t; state = Inc_dense (Revised_simplex.create problem) })
    | Backend.Sparse -> (
      match packed_csc t with
      | None ->
        invalid_arg
          "Model.Float.incremental: model not in packed inequality form"
      | Some (mat, maximize, rhs) ->
        { model = t; state = Inc_sparse (Sparse_simplex.of_csc mat ~maximize ~rhs) })

  let check_row h row =
    if row < 0 || row >= h.model.nrows then
      invalid_arg "Model.Float.incremental: row out of range"

  let inc_set_rhs h ~row v =
    check_row h row;
    match h.state with
    | Inc_dense st -> Revised_simplex.set_rhs st ~row v
    | Inc_sparse st -> Sparse_simplex.set_rhs st ~row v

  let inc_rhs h ~row =
    check_row h row;
    match h.state with
    | Inc_dense st -> Revised_simplex.rhs st ~row
    | Inc_sparse st -> Sparse_simplex.rhs st ~row

  let inc_zero_coeff h ~row v =
    check_row h row;
    check_var h.model v;
    match h.state with
    | Inc_dense st -> Revised_simplex.zero_coeff st ~row ~var:v
    | Inc_sparse st -> Sparse_simplex.zero_coeff st ~row ~var:v

  let inc_solve ?max_iterations h =
    result_of_sparse h.model
      (match h.state with
      | Inc_dense st -> Revised_simplex.solve_state ?max_iterations st
      | Inc_sparse st -> Sparse_simplex.solve_state ?max_iterations st)

  let inc_counters h =
    match h.state with
    | Inc_dense st -> Revised_simplex.counters st
    | Inc_sparse st -> Sparse_simplex.counters st
end

module Exact = Make (Field.Exact)
