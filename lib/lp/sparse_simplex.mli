(** Revised simplex on the sparse core: CSC columns, Markowitz LU of the
    basis ({!Sparse_lu}) with product-form updates instead of full
    reinversion, partial pricing, and a presolve/equilibration front end
    ({!Presolve}).

    Same packed inequality scope as {!Revised_simplex} — maximize
    [c . x] subject to [A x <= b], [x >= 0], [b >= 0] — and the same
    problem/solution/counters types, so the two cores are drop-in
    interchangeable behind {!Backend} and directly comparable in the
    differential harness ([test/test_lp_diff.ml]), where the dense core
    is the trusted oracle.

    Numerics: the constraint matrix is equilibrated with powers of two
    (exact in binary floating point) before solving; scaling is frozen
    when a state is built so row/column indices stay valid across
    incremental edits.  One-shot {!solve} additionally runs the
    structural presolve; resumable states skip it so that rows that are
    slack today can be tightened tomorrow (the LPRR warm-start
    contract). *)

type problem = Revised_simplex.problem
type status = Revised_simplex.status
type solution = Revised_simplex.solution
type counters = Revised_simplex.counters

val solve : ?presolve:bool -> ?max_iterations:int -> problem -> solution
(** One-shot solve; [presolve] defaults to [true].
    @raise Invalid_argument on an out-of-range variable index or a
    negative right-hand side. *)

(** {2 Resumable solver state}

    Mirrors {!Revised_simplex}: the optimal basis is carried between
    solves, {!set_rhs}/{!zero_coeff} edit the problem in place, and the
    next {!solve_state} warm-starts by refactorizing the carried basis,
    falling back to the all-slack cold start when it has become singular
    or primal infeasible. *)

type state

val create : problem -> state
(** Build CSC form and equilibration scaling once.  Raises like
    {!solve}.  No structural presolve is applied. *)

val of_csc :
  Csc.t -> maximize:(int * float) list -> rhs:float array -> state
(** Build a state directly from a CSC constraint matrix (the
    {!Model.Float.packed_csc} path).  Takes ownership of the matrix —
    its values are rescaled in place.
    @raise Invalid_argument on dimension mismatch or negative rhs. *)

val solve_state : ?max_iterations:int -> state -> solution

val set_rhs : state -> row:int -> float -> unit
val rhs : state -> row:int -> float
val zero_coeff : state -> row:int -> var:int -> unit
val counters : state -> counters

val factor_stats : state -> (int * int * int) option
(** [(lu_nnz, fill_in, eta_count)] of the current factorization, if one
    exists — the quantities also exported through the [lp.factor.*]
    metrics. *)
