(** Linear-program modeling layer.

    A thin, imperative builder over {!Simplex}: named variables, linear
    constraints, optional upper bounds (lowered to [<=] rows), and a
    maximization objective.  The DLS encoders in [Dls_core] use this API
    so that the same construction code produces both the float and the
    exact-rational programs. *)

module Make (F : Field.S) : sig
  module Solver : module type of Simplex.Make (F)

  type t
  (** Mutable problem under construction. *)

  type var
  (** Handle to a non-negative decision variable of one problem. *)

  val create : unit -> t

  val add_var : ?name:string -> ?ub:F.t -> t -> var
  (** New variable constrained to [0 <= x] (and [x <= ub] if given). *)

  val var_name : t -> var -> string
  (** The name given at creation, or ["x<i>"]. *)

  val num_vars : t -> int

  val num_constraints : t -> int
  (** Rows added so far, not counting bound rows. *)

  val add_le : t -> (var * F.t) list -> F.t -> unit
  val add_ge : t -> (var * F.t) list -> F.t -> unit
  val add_eq : t -> (var * F.t) list -> F.t -> unit

  val set_upper_bound : t -> var -> F.t -> unit
  (** Adds/overrides an upper bound on a variable (used by LPRR when it
      fixes a rounded [beta_{k,l}]). The tightest bound set wins. *)

  val set_objective : t -> (var * F.t) list -> unit
  (** Maximization objective; replaces any previous objective. *)

  type result = {
    status : Solver.status;
    objective : F.t;
    value : var -> F.t;
    duals : F.t array;
    (** shadow prices of the constraints added with [add_le]/[add_ge]/
        [add_eq], in order of addition (bound rows are not included);
        meaningful when optimal *)
    iterations : int;
  }

  val solve : ?max_iterations:int -> t -> result
  (** Solving does not consume the builder: more constraints can be added
      afterwards and the problem re-solved (LPRR does exactly this). *)

  val pp : Format.formatter -> t -> unit
  (** Debug rendering of the full program. *)
end

module Float : sig
  include module type of struct include Make (Field.Float) end

  val packed_csc :
    t -> (Csc.t * (int * float) list * float array) option
  (** The constraint matrix of a packed-inequality model in compressed
      sparse column form (bound rows appended after the explicit rows),
      with the objective terms and the right-hand sides — [None] when
      the model is not packed.  This is the representation the sparse
      backend consumes without re-deriving it from row lists. *)

  val solve_auto :
    ?backend:Backend.t -> ?max_iterations:int -> t -> result
  (** Like {!solve}, but routes programs in packed inequality form (all
      rows [<=] with non-negative right-hand sides — the shape of every
      DLS relaxation) to a revised-simplex core, falling back to the
      dense tableau otherwise.  [backend] picks the core
      ({!Backend.Dense} = {!Revised_simplex}, {!Backend.Sparse} =
      {!Sparse_simplex}); it defaults to {!Backend.default}.  Identical
      results up to float tolerance; cross-checked by the property
      tests and the differential harness. *)

  type incremental
  (** Handle for a sequence of warm-started re-solves of one packed
      model (LPRR's pinning loop).  Created by snapshotting the builder;
      later edits to the builder are {e not} reflected in the handle. *)

  val incremental : ?backend:Backend.t -> t -> incremental
  (** Snapshot the model into a revised-simplex state of the selected
      backend (default {!Backend.default}).
      @raise Invalid_argument unless the model is in packed inequality
      form (all rows [<=], right-hand sides and upper bounds
      non-negative). *)

  val inc_set_rhs : incremental -> row:int -> float -> unit
  (** Replace the right-hand side of the [row]-th constraint (in order
      of [add_le] addition; variable-bound rows are not addressable).
      @raise Invalid_argument on an out-of-range row or negative
      value. *)

  val inc_rhs : incremental -> row:int -> float
  (** Current right-hand side of the [row]-th constraint. *)

  val inc_zero_coeff : incremental -> row:int -> var -> unit
  (** Delete a variable's coefficient from a constraint (no-op if the
      variable does not appear in it). *)

  val inc_solve : ?max_iterations:int -> incremental -> result
  (** Re-optimize: the first call is a cold start, later calls
      warm-start from the previous optimal basis (with automatic
      fallback to a cold start when that basis is stale — singular or
      infeasible after the edits). *)

  val inc_counters : incremental -> Revised_simplex.counters
  (** Cumulative solver instrumentation for this handle. *)
end
(** Pre-instantiated float model (the experiments' fast path). *)

module Exact : module type of struct include Make (Field.Exact) end
(** Pre-instantiated exact-rational model (ground truth / schedules). *)
