type t = Dense | Sparse

let state = ref Dense

let default () = !state

let set_default b = state := b

let to_string = function Dense -> "dense" | Sparse -> "sparse"

let of_string s =
  match String.lowercase_ascii s with
  | "dense" -> Some Dense
  | "sparse" -> Some Sparse
  | _ -> None
