(** Compressed sparse column matrices over floats.

    Column [j] occupies entries [colptr.(j) .. colptr.(j+1) - 1] of
    [rowind]/[values]; within a column the row indices are strictly
    increasing.  The structure is frozen after construction, but callers
    may overwrite [values] in place (e.g. zeroing a coefficient for an
    incremental LP re-solve) — the sparsity pattern never grows. *)

type t = {
  nrows : int;
  ncols : int;
  colptr : int array;  (** length [ncols + 1] *)
  rowind : int array;  (** length [nnz] *)
  values : float array;  (** length [nnz] *)
}

val of_rows : nrows:int -> ncols:int -> (int * float) list array -> t
(** [of_rows ~nrows ~ncols rows] builds the matrix from per-row
    [(column, coefficient)] lists.  Duplicate coordinates are summed;
    exact zeros (including duplicate sums that cancel) are dropped.
    Raises [Invalid_argument] on an out-of-range column index. *)

val of_dense : float array array -> t
(** Rows of equal length; zeros dropped.  [of_dense [||]] is the 0x0
    matrix. *)

val to_dense : t -> float array array

val transpose : t -> t

val nnz : t -> int

val mat_vec : t -> float array -> float array
(** [mat_vec a x] is [A x]; [x] has length [ncols]. *)

val mat_tvec : t -> float array -> float array
(** [mat_tvec a y] is [A^T y]; [y] has length [nrows]. *)

val iter_col : t -> int -> (int -> float -> unit) -> unit
(** [iter_col a j f] applies [f row value] over column [j] in increasing
    row order. *)

val col : t -> int -> int array * float array
(** Copy of column [j] as parallel (rows, values) arrays. *)
