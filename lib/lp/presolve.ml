module Rs = Revised_simplex

type map = {
  orig_vars : int;
  orig_rows : int;
  col_of_reduced : int array; (* reduced col -> original col *)
  row_of_reduced : int array; (* reduced row -> original row *)
}

type result = Reduced of Rs.problem * map | Unbounded of int

let kept_rows m = Array.length m.row_of_reduced
let kept_cols m = Array.length m.col_of_reduced

exception Found_unbounded of int

let reduce (p : Rs.problem) =
  let n = p.num_vars in
  let nrows = List.length p.rows in
  (* Merge duplicate coefficients per row, validating as the solvers do. *)
  let rows =
    Array.of_list
      (List.map
         (fun (c : Rs.constr) ->
           if c.rhs < 0.0 then
             invalid_arg "Presolve.reduce: negative right-hand side";
           let tbl = Hashtbl.create 8 in
           List.iter
             (fun (j, v) ->
               if j < 0 || j >= n then
                 invalid_arg "Presolve.reduce: variable index out of range";
               let prev = try Hashtbl.find tbl j with Not_found -> 0.0 in
               Hashtbl.replace tbl j (prev +. v))
             c.coeffs;
           let entries =
             Hashtbl.fold (fun j v l -> if v = 0.0 then l else (j, v) :: l) tbl []
           in
           (entries, c.rhs))
         p.rows)
  in
  let obj = Array.make n 0.0 in
  List.iter
    (fun (j, v) ->
      if j < 0 || j >= n then
        invalid_arg "Presolve.reduce: variable index out of range";
      obj.(j) <- obj.(j) +. v)
    p.maximize;
  let keep_row = Array.make nrows true in
  let keep_col = Array.make n true in
  let changed = ref true in
  (try
     while !changed do
       changed := false;
       (* Tightest bound per column among positive singleton rows. *)
       let best_bound = Array.make n infinity in
       let best_row = Array.make n (-1) in
       Array.iteri
         (fun i (entries, rhs) ->
           if keep_row.(i) then begin
             let live =
               List.filter (fun (j, _) -> keep_col.(j)) entries
             in
             match live with
             | [] ->
                 keep_row.(i) <- false;
                 changed := true
             | _ when List.for_all (fun (_, v) -> v <= 0.0) live ->
                 (* lhs <= 0 <= rhs under x >= 0: vacuous. *)
                 keep_row.(i) <- false;
                 changed := true
             | [ (j, a) ] when a > 0.0 ->
                 let bound = rhs /. a in
                 if bound < best_bound.(j) then begin
                   best_bound.(j) <- bound;
                   best_row.(j) <- i
                 end
             | _ -> ()
           end)
         rows;
       (* Drop singleton rows dominated by a tighter one. *)
       Array.iteri
         (fun i (entries, _) ->
           if keep_row.(i) then
             match List.filter (fun (j, _) -> keep_col.(j)) entries with
             | [ (j, a) ] when a > 0.0 && best_row.(j) <> i ->
                 keep_row.(i) <- false;
                 changed := true
             | _ -> ())
         rows;
       (* Column scans: constraint footprint over the kept rows. *)
       let appears = Array.make n false in
       let has_negative = Array.make n false in
       Array.iteri
         (fun i (entries, _) ->
           if keep_row.(i) then
             List.iter
               (fun (j, v) ->
                 if keep_col.(j) then begin
                   appears.(j) <- true;
                   if v < 0.0 then has_negative.(j) <- true
                 end)
               entries)
         rows;
       for j = 0 to n - 1 do
         if keep_col.(j) then
           if not appears.(j) then begin
             if obj.(j) > 0.0 then raise (Found_unbounded j);
             keep_col.(j) <- false;
             changed := true
           end
           else if obj.(j) <= 0.0 && not has_negative.(j) then begin
             (* Raising x_j only consumes capacity and never pays. *)
             keep_col.(j) <- false;
             changed := true
           end
       done
     done;
     let col_of_reduced =
       Array.of_seq
         (Seq.filter (fun j -> keep_col.(j)) (Seq.init n (fun j -> j)))
     in
     let row_of_reduced =
       Array.of_seq
         (Seq.filter (fun i -> keep_row.(i)) (Seq.init nrows (fun i -> i)))
     in
     let new_col = Array.make n (-1) in
     Array.iteri (fun r j -> new_col.(j) <- r) col_of_reduced;
     let reduced_rows =
       Array.to_list row_of_reduced
       |> List.map (fun i ->
              let entries, rhs = rows.(i) in
              {
                Rs.coeffs =
                  List.filter_map
                    (fun (j, v) ->
                      if keep_col.(j) then Some (new_col.(j), v) else None)
                    entries;
                rhs;
              })
     in
     let reduced_obj =
       Array.to_list col_of_reduced
       |> List.filter_map (fun j ->
              if obj.(j) = 0.0 then None else Some (new_col.(j), obj.(j)))
     in
     Reduced
       ( {
           Rs.num_vars = Array.length col_of_reduced;
           maximize = reduced_obj;
           rows = reduced_rows;
         },
         { orig_vars = n; orig_rows = nrows; col_of_reduced; row_of_reduced }
       )
   with Found_unbounded j -> Unbounded j)

let restore_values m values =
  let out = Array.make m.orig_vars 0.0 in
  Array.iteri (fun r j -> out.(j) <- values.(r)) m.col_of_reduced;
  out

let restore_duals m duals =
  let out = Array.make m.orig_rows 0.0 in
  Array.iteri (fun r i -> out.(i) <- duals.(r)) m.row_of_reduced;
  out
