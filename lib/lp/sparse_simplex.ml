module Rs = Revised_simplex

type problem = Rs.problem
type status = Rs.status
type solution = Rs.solution
type counters = Rs.counters

let src = Logs.Src.create "dls.lp.sparse" ~doc:"Sparse-LU revised simplex"

module Log = (val Logs.src_log src : Logs.LOG)
module M = Dls_obs.Metrics

(* The lp.* registry names are shared with Revised_simplex — metric
   registration is idempotent by name, so both cores feed the same
   cells and campaign-level dashboards see one LP workload.  The
   lp.factor.* family is specific to this core. *)
let m_solves = M.counter "lp.solves"
let m_warm_starts = M.counter "lp.warm_starts"
let m_cold_starts = M.counter "lp.cold_starts"
let m_pivots = M.counter "lp.pivots"
let m_reinversions = M.counter "lp.reinversions"
let m_bland_activations = M.counter "lp.bland_activations"
let m_solve_seconds = M.histogram "lp.solve_seconds"
let m_solve_pivots = M.histogram "lp.solve_pivots"
let m_refactors = M.counter "lp.factor.refactors"
let m_factor_nnz = M.histogram "lp.factor.nnz"
let m_factor_fill = M.histogram "lp.factor.fill"
let m_eta_len = M.histogram "lp.factor.eta_len"

let dtol = 1e-7
let eta_interval = 64 (* product-form updates tolerated before refactor *)

let zero_counters =
  {
    Rs.solves = 0;
    warm_starts = 0;
    cold_starts = 0;
    pivots = 0;
    reinversions = 0;
    bland_activations = 0;
    wall_clock = 0.0;
  }

type state = {
  m : int;
  n : int; (* structural columns; slack j = n + i covers row i *)
  mat : Csc.t; (* equilibrated structural columns *)
  obj : float array; (* scaled: c_j * col_scale_j *)
  obj_orig : float array;
  rhs : float array; (* scaled: row_scale_i * b_i *)
  row_scale : float array; (* powers of two *)
  col_scale : float array;
  basis : int array;
  in_basis : bool array; (* length n + m *)
  x_basic : float array; (* slot-indexed, scaled *)
  mutable lu : Sparse_lu.t option;
  mutable cursor : int; (* partial-pricing rotation point *)
  mutable solved : bool;
  mutable ctr : counters;
}

let counters st = st.ctr

let factor_stats st =
  Option.map
    (fun lu ->
      ( Sparse_lu.lu_nnz lu,
        Sparse_lu.lu_nnz lu - Sparse_lu.basis_nnz lu,
        Sparse_lu.eta_count lu ))
    st.lu

(* Power-of-two factor normalizing [mx] into [0.5, 1). *)
let pow2_scale mx =
  if mx > 0.0 && Float.is_finite mx then Float.ldexp 1.0 (-snd (Float.frexp mx))
  else 1.0

let basis_col st k =
  let j = st.basis.(k) in
  if j >= st.n then ([| j - st.n |], [| 1.0 |])
  else begin
    (* Skip zeroed entries (zero_coeff leaves structural holes). *)
    let ri, rv = Csc.col st.mat j in
    let n = Array.length ri in
    let keep = ref 0 in
    for p = 0 to n - 1 do
      if rv.(p) <> 0.0 then incr keep
    done;
    if !keep = n then (ri, rv)
    else begin
      let fi = Array.make !keep 0 and fv = Array.make !keep 0.0 in
      let c = ref 0 in
      for p = 0 to n - 1 do
        if rv.(p) <> 0.0 then begin
          fi.(!c) <- ri.(p);
          fv.(!c) <- rv.(p);
          incr c
        end
      done;
      (fi, fv)
    end
  end

(* Every factorization counts as a reinversion; a sparse cold start
   factors the (trivial) slack basis too, so its opening factor shows
   up in the counters, unlike the dense core whose cold start needs no
   etas at all. *)
let count_refactor st =
  st.ctr <- { st.ctr with reinversions = st.ctr.reinversions + 1 };
  M.incr m_reinversions;
  M.incr m_refactors;
  match st.lu with
  | Some lu -> M.observe m_eta_len (float_of_int (Sparse_lu.eta_count lu))
  | None -> ()

let install st lu =
  st.lu <- Some lu;
  M.observe m_factor_nnz (float_of_int (Sparse_lu.lu_nnz lu));
  M.observe m_factor_fill
    (float_of_int (Sparse_lu.lu_nnz lu - Sparse_lu.basis_nnz lu));
  Array.blit st.rhs 0 st.x_basic 0 st.m;
  Sparse_lu.ftran lu st.x_basic;
  for i = 0 to st.m - 1 do
    if st.x_basic.(i) < 0.0 && st.x_basic.(i) > -1e-6 then
      st.x_basic.(i) <- 0.0
  done

let reset_cold st =
  Array.fill st.in_basis 0 (st.n + st.m) false;
  for i = 0 to st.m - 1 do
    st.basis.(i) <- st.n + i;
    st.in_basis.(st.n + i) <- true
  done;
  count_refactor st;
  match Sparse_lu.factor ~m:st.m ~col:(basis_col st) with
  | Some lu -> install st lu
  | None -> assert false (* the slack basis is the identity *)

(* Refactorize the carried basis.  Returns [false] (after falling back
   to the all-slack basis) when it is singular. *)
let refactor_or_cold st =
  count_refactor st;
  match Sparse_lu.factor ~m:st.m ~col:(basis_col st) with
  | Some lu ->
      install st lu;
      true
  | None ->
      reset_cold st;
      false

let of_csc mat ~maximize ~rhs =
  let m = mat.Csc.nrows and n = mat.Csc.ncols in
  if Array.length rhs <> m then invalid_arg "Sparse_simplex.of_csc: rhs length";
  Array.iter
    (fun b ->
      if b < 0.0 then
        invalid_arg "Sparse_simplex.of_csc: negative right-hand side")
    rhs;
  let obj_orig = Array.make n 0.0 in
  List.iter
    (fun (j, v) ->
      if j < 0 || j >= n then
        invalid_arg "Sparse_simplex.of_csc: objective index out of range";
      obj_orig.(j) <- obj_orig.(j) +. v)
    maximize;
  (* Equilibration: rows then columns, powers of two so every product
     below is exact and unscaling is a lossless shift. *)
  let row_scale = Array.make m 1.0 and col_scale = Array.make n 1.0 in
  let row_max = Array.make m 0.0 in
  for p = 0 to Csc.nnz mat - 1 do
    let i = mat.Csc.rowind.(p) in
    let a = Float.abs mat.Csc.values.(p) in
    if a > row_max.(i) then row_max.(i) <- a
  done;
  for i = 0 to m - 1 do
    row_scale.(i) <- pow2_scale row_max.(i)
  done;
  for j = 0 to n - 1 do
    let mx = ref 0.0 in
    for p = mat.Csc.colptr.(j) to mat.Csc.colptr.(j + 1) - 1 do
      let a = Float.abs (mat.Csc.values.(p) *. row_scale.(mat.Csc.rowind.(p))) in
      if a > !mx then mx := a
    done;
    col_scale.(j) <- pow2_scale !mx;
    for p = mat.Csc.colptr.(j) to mat.Csc.colptr.(j + 1) - 1 do
      mat.Csc.values.(p) <-
        mat.Csc.values.(p) *. row_scale.(mat.Csc.rowind.(p)) *. col_scale.(j)
    done
  done;
  let st =
    {
      m;
      n;
      mat;
      obj = Array.mapi (fun j c -> c *. col_scale.(j)) obj_orig;
      obj_orig;
      rhs = Array.mapi (fun i b -> b *. row_scale.(i)) rhs;
      row_scale;
      col_scale;
      basis = Array.init m (fun i -> n + i);
      in_basis =
        Array.init (n + m) (fun j -> j >= n);
      x_basic = Array.make m 0.0;
      lu = None;
      cursor = 0;
      solved = false;
      ctr = zero_counters;
    }
  in
  Array.blit st.rhs 0 st.x_basic 0 st.m;
  st

let create (p : problem) =
  let rows = Array.of_list p.Rs.rows in
  let adj =
    Array.map
      (fun (c : Rs.constr) ->
        if c.Rs.rhs < 0.0 then
          invalid_arg "Sparse_simplex.create: negative right-hand side";
        c.Rs.coeffs)
      rows
  in
  let mat =
    try Csc.of_rows ~nrows:(Array.length rows) ~ncols:p.Rs.num_vars adj
    with Invalid_argument _ ->
      invalid_arg "Sparse_simplex.create: variable index out of range"
  in
  of_csc mat ~maximize:p.Rs.maximize
    ~rhs:(Array.map (fun (c : Rs.constr) -> c.Rs.rhs) rows)

(* ---------------- incremental updates ---------------- *)

let set_rhs st ~row v =
  if row < 0 || row >= st.m then
    invalid_arg "Sparse_simplex.set_rhs: row out of range";
  if v < 0.0 then invalid_arg "Sparse_simplex.set_rhs: negative right-hand side";
  st.rhs.(row) <- v *. st.row_scale.(row)

let rhs st ~row =
  if row < 0 || row >= st.m then
    invalid_arg "Sparse_simplex.rhs: row out of range";
  st.rhs.(row) /. st.row_scale.(row)

let zero_coeff st ~row ~var =
  if row < 0 || row >= st.m then
    invalid_arg "Sparse_simplex.zero_coeff: row out of range";
  if var < 0 || var >= st.n then
    invalid_arg "Sparse_simplex.zero_coeff: variable out of range";
  for p = st.mat.Csc.colptr.(var) to st.mat.Csc.colptr.(var + 1) - 1 do
    if st.mat.Csc.rowind.(p) = row then st.mat.Csc.values.(p) <- 0.0
  done

let objective_value st =
  let z = ref 0.0 in
  for i = 0 to st.m - 1 do
    let j = st.basis.(i) in
    if j < st.n then z := !z +. (st.obj.(j) *. st.x_basic.(i))
  done;
  !z

(* ---------------- the simplex loop ---------------- *)

let optimize ?max_iterations st =
  let total = st.n + st.m in
  let budget =
    match max_iterations with
    | Some b -> b
    | None -> 2000 + (60 * (st.m + total))
  in
  let iterations = ref 0 in
  let y = Array.make st.m 0.0 in
  let w = Array.make st.m 0.0 in
  let stall = ref 0 in
  let stall_limit = 4 * (st.m + total) in
  let bland = ref false in
  let z_at_bland = ref neg_infinity in
  let last_z = ref neg_infinity in
  let result = ref None in
  let lu () =
    match st.lu with Some lu -> lu | None -> assert false
  in
  let reduced j =
    if j < st.n then begin
      let dot = ref 0.0 in
      for p = st.mat.Csc.colptr.(j) to st.mat.Csc.colptr.(j + 1) - 1 do
        dot := !dot +. (st.mat.Csc.values.(p) *. y.(st.mat.Csc.rowind.(p)))
      done;
      st.obj.(j) -. !dot
    end
    else -.y.(j - st.n)
  in
  (* Partial pricing: rotate over ~1/8 blocks of the column span, enter
     the best positive reduced cost of the first block that has one.
     Only a full fruitless wrap proves optimality. *)
  let pick_partial () =
    let block = max 64 ((total + 7) / 8) in
    let entering = ref (-1) and best = ref dtol in
    let scanned = ref 0 in
    let j = ref st.cursor in
    while !scanned < total && !entering < 0 do
      let stop = min total (!scanned + block) in
      while !scanned < stop do
        let jj = !j in
        if not st.in_basis.(jj) then begin
          let d = reduced jj in
          if d > !best then begin
            best := d;
            entering := jj
          end
        end;
        incr scanned;
        j := if jj + 1 = total then 0 else jj + 1
      done
    done;
    if !entering >= 0 then st.cursor <- (!entering + 1) mod total;
    !entering
  in
  let pick_bland () =
    let entering = ref (-1) in
    let j = ref 0 in
    while !entering < 0 && !j < total do
      if (not st.in_basis.(!j)) && reduced !j > dtol then entering := !j;
      incr j
    done;
    !entering
  in
  while !result = None do
    (match st.lu with
    | None -> ignore (refactor_or_cold st : bool)
    | Some lu ->
        if
          Sparse_lu.eta_count lu >= eta_interval
          || Sparse_lu.eta_nnz lu > (2 * Sparse_lu.lu_nnz lu) + st.m
        then ignore (refactor_or_cold st : bool));
    (* Pricing: y = B^-T c_B (row-indexed), then reduced costs. *)
    for i = 0 to st.m - 1 do
      let j = st.basis.(i) in
      y.(i) <- (if j < st.n then st.obj.(j) else 0.0)
    done;
    Sparse_lu.btran (lu ()) y;
    let entering = if !bland then pick_bland () else pick_partial () in
    if entering < 0 then result := Some Rs.Optimal
    else if !iterations >= budget then
      (* Pricing before the budget check: an optimum reached in exactly
         [budget] pivots is still Optimal (see the matching fix in
         Revised_simplex). *)
      result :=
        Some
          (if !bland && objective_value st <= !z_at_bland +. 1e-12 then
             Rs.Cycling
           else Rs.Iteration_limit)
    else begin
      let q = entering in
      Array.fill w 0 st.m 0.0;
      if q < st.n then
        Csc.iter_col st.mat q (fun i v -> w.(i) <- v)
      else w.(q - st.n) <- 1.0;
      Sparse_lu.ftran (lu ()) w;
      (* Ratio test with Bland tie-breaking. *)
      let leave = ref (-1) and theta = ref infinity in
      for i = 0 to st.m - 1 do
        if w.(i) > dtol then begin
          let ratio = st.x_basic.(i) /. w.(i) in
          if
            !leave < 0
            || ratio < !theta -. 1e-12
            || (Float.abs (ratio -. !theta) <= 1e-12
                && st.basis.(i) < st.basis.(!leave))
          then begin
            leave := i;
            theta := ratio
          end
        end
      done;
      if !leave < 0 then result := Some Rs.Unbounded
      else begin
        let r = !leave in
        let theta = Float.max 0.0 !theta in
        for i = 0 to st.m - 1 do
          if i <> r then st.x_basic.(i) <- st.x_basic.(i) -. (w.(i) *. theta)
        done;
        st.x_basic.(r) <- theta;
        st.in_basis.(st.basis.(r)) <- false;
        st.in_basis.(q) <- true;
        st.basis.(r) <- q;
        Sparse_lu.update (lu ()) ~slot:r w;
        incr iterations;
        let z = objective_value st in
        if z > !last_z +. 1e-12 then begin
          last_z := z;
          stall := 0
        end
        else begin
          incr stall;
          if !stall > stall_limit && not !bland then begin
            bland := true;
            z_at_bland := z;
            st.ctr <-
              { st.ctr with
                bland_activations = st.ctr.bland_activations + 1 };
            M.incr m_bland_activations;
            Log.debug (fun m ->
                m "solve #%d: degenerate stall after %d pivots, switching \
                   to Bland's rule"
                  st.ctr.solves !iterations)
          end
        end
      end
    end
  done;
  let status = match !result with Some s -> s | None -> assert false in
  (status, !iterations)

let solve_state ?max_iterations st =
  let t0 = Unix.gettimeofday () in
  let sp = Dls_obs.Trace.start ~cat:"lp" "lp.solve" in
  let warm =
    st.solved
    && refactor_or_cold st
    && not (Array.exists (fun x -> x < 0.0) st.x_basic)
  in
  if not warm then reset_cold st;
  st.ctr <-
    { st.ctr with
      solves = st.ctr.solves + 1;
      warm_starts = (st.ctr.warm_starts + if warm then 1 else 0);
      cold_starts = (st.ctr.cold_starts + if warm then 0 else 1) };
  M.incr m_solves;
  M.incr (if warm then m_warm_starts else m_cold_starts);
  let status, iterations = optimize ?max_iterations st in
  st.solved <- true;
  let values = Array.make st.n 0.0 in
  let duals = Array.make st.m 0.0 in
  if status = Rs.Optimal then begin
    for i = 0 to st.m - 1 do
      let j = st.basis.(i) in
      if j < st.n then
        values.(j) <- Float.max 0.0 (st.x_basic.(i) *. st.col_scale.(j))
    done;
    for i = 0 to st.m - 1 do
      let j = st.basis.(i) in
      duals.(i) <- (if j < st.n then st.obj.(j) else 0.0)
    done;
    (match st.lu with Some lu -> Sparse_lu.btran lu duals | None -> ());
    for i = 0 to st.m - 1 do
      duals.(i) <- duals.(i) *. st.row_scale.(i)
    done
  end;
  let objective =
    let z = ref 0.0 in
    for j = 0 to st.n - 1 do
      z := !z +. (st.obj_orig.(j) *. values.(j))
    done;
    !z
  in
  let dt = Unix.gettimeofday () -. t0 in
  st.ctr <-
    { st.ctr with
      pivots = st.ctr.pivots + iterations;
      wall_clock = st.ctr.wall_clock +. dt };
  M.add m_pivots iterations;
  M.observe m_solve_seconds dt;
  M.observe m_solve_pivots (float_of_int iterations);
  if Dls_obs.Trace.live sp then
    Dls_obs.Trace.finish sp
      ~args:
        [ ("backend", "sparse");
          ("start", if warm then "warm" else "cold");
          ("pivots", string_of_int iterations) ];
  Log.debug (fun m ->
      m "solve #%d (%s): %d pivots, %.3f ms"
        st.ctr.solves
        (if warm then "warm" else "cold")
        iterations (1e3 *. dt));
  { Rs.status; objective; values; duals; iterations }

let solve ?(presolve = true) ?max_iterations (p : problem) =
  if not presolve then solve_state ?max_iterations (create p)
  else
    match Presolve.reduce p with
    | Presolve.Unbounded _ ->
        {
          Rs.status = Rs.Unbounded;
          objective = 0.0;
          values = Array.make p.Rs.num_vars 0.0;
          duals = Array.make (List.length p.Rs.rows) 0.0;
          iterations = 0;
        }
    | Presolve.Reduced (rp, map) ->
        let sol = solve_state ?max_iterations (create rp) in
        if sol.Rs.status = Rs.Optimal then begin
          let values = Presolve.restore_values map sol.Rs.values in
          let duals = Presolve.restore_duals map sol.Rs.duals in
          let objective =
            let z = ref 0.0 in
            List.iter (fun (j, c) -> z := !z +. (c *. values.(j))) p.Rs.maximize;
            !z
          in
          { sol with Rs.values; duals; objective }
        end
        else
          {
            sol with
            Rs.values = Array.make p.Rs.num_vars 0.0;
            duals = Array.make (List.length p.Rs.rows) 0.0;
            objective = 0.0;
          }
