(** LP kernel selection for the packed inequality path.

    Two interchangeable cores solve the packed form [maximize c.x subject
    to Ax <= b, x >= 0, b >= 0]:

    - {!Dense}: the eta-file revised simplex of {!Revised_simplex}, with
      dense work vectors and full Dantzig pricing.  Proven since PR 1; it
      is the oracle the differential harness trusts.
    - {!Sparse}: the sparse core of {!Sparse_simplex} — CSC columns,
      Markowitz LU of the basis with product-form updates, partial
      pricing, presolve and equilibration.

    The process-wide default feeds every call site that does not pass an
    explicit [?backend] (experiments, heuristics, benches); the CLI
    exposes it as [--lp-backend]. *)

type t = Dense | Sparse

val default : unit -> t
(** Current process-wide default, {!Dense} unless {!set_default} ran. *)

val set_default : t -> unit

val to_string : t -> string

val of_string : string -> t option
(** Accepts ["dense"] and ["sparse"] (case-insensitive). *)
