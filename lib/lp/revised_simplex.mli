(** Sparse revised simplex with product-form-of-inverse updates.

    The dense tableau of {!Simplex} costs O(m * (n + m)) memory and per
    pivot; the DLS relaxations are extremely sparse (each alpha variable
    touches at most four rows), so at the paper's largest K = 95 the
    dense tableau wastes almost all of its work.  This solver keeps the
    constraint matrix in compressed column form and represents the basis
    inverse as a product of eta matrices, refactorized periodically for
    numerical hygiene — the classical revised simplex (Dantzig pricing
    with a stall-triggered switch to Bland's rule, Harris-free ratio
    test with Bland tie-breaking).

    Scope: the packed inequality form the steady-state relaxation
    naturally has — maximize [c . x] subject to [A x <= b] with
    [x >= 0] and [b >= 0] — so the all-slack basis is feasible and no
    phase 1 is needed.  {!Model.Float.solve_auto} routes eligible
    programs here and everything else to the dense tableau; both engines
    are cross-checked on random programs in the test suite.

    {2 Resumable solves}

    A {!state} survives across solves: after {!solve_state}, the
    optimal basis is carried, the caller may tighten right-hand sides
    ({!set_rhs}) or delete matrix entries ({!zero_coeff}), and the next
    {!solve_state} {e warm-starts} — it reinverts the carried basis via
    the triangularized refactorization and re-optimizes from there,
    falling back to the cold all-slack start when the carried basis is
    singular or no longer primal feasible.  LPRR's iterated rounding
    (one LP per remote route, each differing from the previous by one
    pinned beta) is the motivating client; see
    [Dls_core.Lp_relax.Incremental]. *)

type constr = {
  coeffs : (int * float) list;  (** duplicate indices are summed *)
  rhs : float;  (** must be [>= 0] *)
}

type problem = {
  num_vars : int;
  maximize : (int * float) list;
  rows : constr list;
}

type status =
  | Optimal
  | Unbounded
  | Iteration_limit
      (** pivot budget exhausted while the objective was still moving *)
  | Cycling
      (** pivot budget exhausted in a degenerate spin: the stall
          detector had already switched to Bland's anti-cycling rule and
          the objective has not improved since — the LP is (numerically)
          stuck on a degenerate vertex.  The budget guarantees
          termination either way; this status tells the two apart. *)

type solution = {
  status : status;
  objective : float;
  values : float array;
  duals : float array;
  (** one non-negative shadow price per row when optimal; strong
      duality [sum duals_i * rhs_i = objective] holds and is tested *)
  iterations : int;
}

val solve : ?max_iterations:int -> problem -> solution
(** One-shot solve from the all-slack basis.  [max_iterations] caps the
    number of pivots; the cap is only reported ({!Iteration_limit} or
    {!Cycling}) when pricing cannot already prove optimality, so a
    program whose optimum needs exactly [max_iterations] pivots still
    comes back {!Optimal}.
    @raise Invalid_argument on an out-of-range variable index or a
    negative right-hand side. *)

(** {2 Resumable solver state} *)

type state
(** A built problem plus its carried basis and factorization. *)

type counters = {
  solves : int;  (** calls to {!solve_state} on this state *)
  warm_starts : int;  (** solves begun from a carried basis *)
  cold_starts : int;
  (** solves begun from the all-slack basis: the first solve plus every
      fallback from a singular or primal-infeasible carried basis *)
  pivots : int;  (** simplex iterations, cumulative *)
  reinversions : int;
  (** basis refactorizations, cumulative (periodic refreshes during a
      solve plus the one opening every warm start) *)
  bland_activations : int;
  (** stall-triggered switches to Bland's anti-cycling pivot rule,
      cumulative — each one is a solve that degenerated far enough for
      Dantzig pricing to stop making progress *)
  wall_clock : float;  (** seconds spent inside {!solve_state} *)
}

val create : problem -> state
(** Build the compressed-column form once.  Raises like {!solve}. *)

val solve_state : ?max_iterations:int -> state -> solution
(** Optimize the state's current problem.  The first call is a cold
    start; later calls warm-start from the carried basis as described
    above.  Cumulative {!counters} are updated, and a [dls.lp.revised]
    debug line is logged per solve (pivots, reinversions, warm/cold
    tag, wall-clock). *)

val set_rhs : state -> row:int -> float -> unit
(** Replace a row's right-hand side (rows are indexed in the order they
    were given to {!create}).
    @raise Invalid_argument on an out-of-range row or a negative
    value. *)

val rhs : state -> row:int -> float
(** Current right-hand side of a row. *)

val zero_coeff : state -> row:int -> var:int -> unit
(** Set the coefficient of [var] in [row] to zero without rebuilding
    the compressed-column matrix (entries absent from the row are left
    untouched).  The carried basis is revalidated on the next
    {!solve_state}. *)

val counters : state -> counters
(** Snapshot of the cumulative instrumentation counters. *)
