(** LPR: round the rational relaxation down (Section 5.2.1).

    From a relaxation solution [(alpha~, beta~)], LPR keeps
    [beta^ = floor(beta~)] and [alpha^ = min(alpha~, beta^ * g_{k,l})].
    Every constraint still holds because both matrices only decreased —
    but whole routes whose fractional connection count was below 1 are
    zeroed, which is why the paper finds LPR "very poor" (often worth 0);
    it exists as the base layer of LPRG. *)

val round_down : Problem.t -> float Lp_relax.solution -> Allocation.t
(** Deterministic rounding of a relaxation solution. *)

val solve :
  ?objective:Lp_relax.objective ->
  ?backend:Dls_lp.Backend.t ->
  Problem.t ->
  (Allocation.t, string) result
(** Solve the relaxation, then {!round_down}. *)
