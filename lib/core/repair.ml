module P = Dls_platform.Platform
module Olog = Dls_obs.Log
module Flight = Dls_obs.Flight

type stage = Rescale | Refine | Resolve

let stage_name = function
  | Rescale -> "rescale"
  | Refine -> "refine"
  | Resolve -> "resolve"

type attempt = {
  stage : stage;
  seconds : float;
  within_budget : bool;
  feasible : bool;
  objective : float;
}

type budgets = { rescale_s : float; refine_s : float; resolve_s : float }

let default_budgets = { rescale_s = 0.001; refine_s = 0.1; resolve_s = 2.0 }

type outcome = {
  allocation : Allocation.t;
  stage : stage;
  attempts : attempt list;
}

(* Stage 1: shrink the broken allocation onto the degraded capacities.
   Each step below restores one family of constraints without breaking
   the ones already fixed, so the result is feasible by construction:
   dead entries are zeroed (7f/7g, no-route), per-link connection sums
   are floored under the surviving caps (7d; a sum of floors of
   proportionally scaled terms never exceeds the cap), bandwidth rows
   are re-capped against the degraded per-connection bandwidth (7e),
   and one global λ-scaling of the alphas fixes the CPU and local-link
   rows (7b/7c) while only shrinking everything the earlier steps
   bounded. *)
let rescale degraded alloc =
  let p = Problem.platform degraded in
  let kk = Problem.num_clusters degraded in
  let a = Allocation.copy alloc in
  let alpha = a.Allocation.alpha and beta = a.Allocation.beta in
  (* Entries the degraded platform cannot carry at all. *)
  for k = 0 to kk - 1 do
    if not (Problem.is_active degraded k) then
      for l = 0 to kk - 1 do
        alpha.(k).(l) <- 0.0;
        beta.(k).(l) <- 0
      done
    else begin
      if P.speed p k <= 0.0 then alpha.(k).(k) <- 0.0;
      for l = 0 to kk - 1 do
        if l <> k && (alpha.(k).(l) > 0.0 || beta.(k).(l) > 0) then begin
          let dead =
            P.speed p l <= 0.0
            || P.local_bw p k <= 0.0
            || P.local_bw p l <= 0.0
            || P.route p k l = None
          in
          if dead then begin
            alpha.(k).(l) <- 0.0;
            beta.(k).(l) <- 0
          end
          else if alpha.(k).(l) <= 0.0 then
            (* no work: release the slots before the per-link re-pin *)
            beta.(k).(l) <- 0
        end
      done
    end
  done;
  (* Connection caps (7d): proportional floor-scaling per link.  Links
     are processed in order; later reductions only lower the usage seen
     by links already under their cap. *)
  for i = 0 to P.num_backbones p - 1 do
    let cap = (P.backbone p i).P.max_connect in
    let pairs = P.routes_through p i in
    let usage = List.fold_left (fun s (k, l) -> s + beta.(k).(l)) 0 pairs in
    if usage > cap then begin
      let f = float_of_int cap /. float_of_int usage in
      List.iter
        (fun (k, l) ->
          let b = beta.(k).(l) in
          if b > 0 then
            beta.(k).(l) <- int_of_float (floor (float_of_int b *. f)))
        pairs
    end
  done;
  (* Bandwidth rows (7e) against the degraded per-connection bw. *)
  for k = 0 to kk - 1 do
    for l = 0 to kk - 1 do
      if k <> l && alpha.(k).(l) > 0.0 then
        match P.route_bottleneck p k l with
        | None -> alpha.(k).(l) <- 0.0
        | Some g when g = infinity -> ()  (* co-located: no backbone row *)
        | Some g ->
          alpha.(k).(l) <- Float.min alpha.(k).(l) (float_of_int beta.(k).(l) *. g)
    done
  done;
  (* CPU and local-link rows (7b/7c): one global shrink factor. *)
  let lambda = ref 1.0 in
  for l = 0 to kk - 1 do
    let cpu = ref 0.0 in
    for k = 0 to kk - 1 do
      cpu := !cpu +. alpha.(k).(l)
    done;
    if !cpu > 0.0 then lambda := Float.min !lambda (P.speed p l /. !cpu);
    let traffic = ref 0.0 in
    for k = 0 to kk - 1 do
      if k <> l then traffic := !traffic +. alpha.(l).(k) +. alpha.(k).(l)
    done;
    if !traffic > 0.0 then
      lambda := Float.min !lambda (P.local_bw p l /. !traffic)
  done;
  let lambda = Float.max 0.0 (Float.min 1.0 !lambda) in
  if lambda < 1.0 then
    for k = 0 to kk - 1 do
      for l = 0 to kk - 1 do
        if alpha.(k).(l) > 0.0 then alpha.(k).(l) <- alpha.(k).(l) *. lambda
      done
    done;
  a

let run_stage ?objective ?(heuristic = Heuristics.LPRG) ?rng stage degraded
    alloc =
  match stage with
  | Rescale -> Ok (rescale degraded alloc)
  | Refine ->
    let base = rescale degraded alloc in
    let residual = Residual.of_allocation (Problem.platform degraded) base in
    Ok (Greedy.refine degraded residual base)
  | Resolve -> (
    match Heuristics.run ?objective ?rng heuristic degraded with
    | Ok a -> Ok a
    | Error _ when heuristic <> Heuristics.G ->
      (* the LP can fail on a pathological residual platform; the
         objective-free greedy cannot *)
      Heuristics.run ?objective ?rng Heuristics.G degraded
    | Error _ as e -> e)

let total_throughput degraded a =
  let kk = Problem.num_clusters degraded in
  let s = ref 0.0 in
  for k = 0 to kk - 1 do
    s := !s +. Allocation.app_throughput a k
  done;
  !s

let repair ?objective ?heuristic ?rng ?(budgets = default_budgets) degraded
    alloc =
  let obj_kind =
    match objective with Some Lp_relax.Sum -> `Sum | _ -> `Maxmin
  in
  let attempt stage budget =
    let t0 = Sys.time () in
    let r = run_stage ?objective ?heuristic ?rng stage degraded alloc in
    let seconds = Sys.time () -. t0 in
    let repaired =
      match r with
      | Ok a when Allocation.is_feasible degraded a -> Some a
      | Ok _ | Error _ -> None
    in
    let objective =
      match repaired with
      | Some a -> Allocation.objective obj_kind degraded a
      | None -> 0.0
    in
    ( { stage; seconds; within_budget = seconds <= budget;
        feasible = repaired <> None; objective },
      repaired )
  in
  let ladder =
    [ (Rescale, budgets.rescale_s); (Refine, budgets.refine_s);
      (Resolve, budgets.resolve_s) ]
  in
  let attempts = ref [] in
  (* best feasible so far, ranked by (objective, total throughput) — the
     throughput tiebreak matters under MAXMIN, where any crashed source
     pins the objective at 0 for every stage *)
  let best = ref None in
  let winner =
    List.find_map
      (fun (stage, budget) ->
        let att, repaired = attempt stage budget in
        attempts := att :: !attempts;
        (match repaired with
        | Some a ->
          let score = (att.objective, total_throughput degraded a) in
          (match !best with
          | Some (_, _, s) when s >= score -> ()
          | _ -> best := Some (stage, a, score))
        | None -> ());
        match repaired with
        | Some a when att.objective > 0.0 -> Some (stage, a)
        | _ ->
          (* This rung did not settle it; the ladder escalates. *)
          if Olog.enabled Olog.Debug then
            Olog.debug "repair.escalate"
              ~fields:
                [ ("from", Olog.Str (stage_name stage));
                  ("feasible", Olog.Bool att.feasible);
                  ("objective", Olog.Float att.objective);
                  ("seconds", Olog.Float att.seconds) ];
          if Flight.enabled () then
            Flight.record ~kind:"repair" ("escalate past " ^ stage_name stage)
              ~fields:[ ("feasible", string_of_bool att.feasible) ];
          None)
      ladder
  in
  let attempts = List.rev !attempts in
  match (winner, !best) with
  | Some (stage, allocation), _ -> Ok { allocation; stage; attempts }
  | None, Some (stage, allocation, _) -> Ok { allocation; stage; attempts }
  | None, None ->
    Olog.error "repair.failed"
      ~fields:[ ("attempts", Olog.Int (List.length attempts)) ];
    if Flight.enabled () then
      Flight.record ~kind:"repair" "failed: no feasible stage";
    Error "repair: no stage produced a feasible allocation"
