module P = Dls_platform.Platform
module M = Dls_obs.Metrics
module Trace = Dls_obs.Trace

let m_iterations = M.counter "greedy.iterations"
let m_budget_exhausted = M.counter "greedy.budget_exhausted"

let eps = 1e-9

(* Benefit of executing work of application [k] on remote cluster [m]
   using one fresh connection: min { g_k, g_{k,m}, g_m, s_m } (step 4 of
   the paper's pseudo-code), over residual capacities. *)
let remote_benefit platform residual ~k ~m =
  let v =
    Float.min
      (Float.min (Residual.local_bw residual k) (Residual.bottleneck platform residual k m))
      (Float.min (Residual.local_bw residual m) (Residual.speed residual m))
  in
  Float.max 0.0 v

(* Step 5's local cap: the largest amount some other application could
   have executed on [k] through the network. *)
let local_cap platform residual ~k =
  let kk = P.num_clusters platform in
  let best = ref 0.0 in
  for m = 0 to kk - 1 do
    if m <> k then begin
      let v =
        Float.min
          (Float.min (Residual.local_bw residual k)
             (Residual.bottleneck platform residual k m))
          (Float.min (Residual.local_bw residual m) (Residual.speed residual k))
      in
      if v > !best then best := v
    end
  done;
  !best

let refine problem residual start =
  let sp = Trace.start ~cat:"heuristic" "greedy.refine" in
  let iterations = ref 0 in
  let platform = Problem.platform problem in
  let kk = P.num_clusters platform in
  let alloc = Allocation.copy start in
  let throughput = Array.init kk (Allocation.app_throughput alloc) in
  let remaining = ref (Problem.active problem) in
  (* Every iteration either removes an application or allocates work.
     Remote allocations consume connection slots (finitely many) and
     local ones consume speed in steps of the current cap, so the loop
     terminates; the budget is a guard against degenerate float caps
     (documented in DESIGN.md), after which each surviving application
     just takes its remaining local speed. *)
  let budget = ref (100_000 + (2_000 * kk * kk)) in
  let score k = Problem.payoff problem k *. throughput.(k) in
  let drop k = remaining := List.filter (fun a -> a <> k) !remaining in
  while !remaining <> [] && !budget > 0 do
    decr budget;
    Stdlib.incr iterations;
    M.incr m_iterations;
    (* Step 3: application with the smallest pi_k * alpha_k; ties to the
       higher payoff, then the smaller index. *)
    let k =
      List.fold_left
        (fun best a ->
          let c = Float.compare (score a) (score best) in
          if c < 0 then a
          else if c > 0 then best
          else if Problem.payoff problem a > Problem.payoff problem best then a
          else best)
        (List.hd !remaining) (List.tl !remaining)
    in
    (* Step 4: most profitable target cluster; ties prefer local, then
       the smaller index. *)
    let best_l = ref k and best_benefit = ref (Residual.speed residual k) in
    for m = 0 to kk - 1 do
      if m <> k then begin
        let b = remote_benefit platform residual ~k ~m in
        if b > !best_benefit +. eps then begin
          best_benefit := b;
          best_l := m
        end
      end
    done;
    if !best_benefit <= eps then
      (* Step 4's exit: nothing profitable remains for this application. *)
      drop k
    else begin
      let l = !best_l in
      if l = k then begin
        (* Step 5, local branch: allocate only what another application
           could have used here; if no one can reach us, take it all. *)
        let cap = local_cap platform residual ~k in
        let amount = if cap <= eps then Residual.speed residual k else cap in
        let amount = Float.min amount (Residual.speed residual k) in
        if amount > eps then begin
          Residual.consume_local residual k amount;
          alloc.Allocation.alpha.(k).(k) <- alloc.Allocation.alpha.(k).(k) +. amount;
          throughput.(k) <- throughput.(k) +. amount
        end
        else drop k
      end
      else begin
        let amount = !best_benefit in
        Residual.consume_remote platform residual ~src:k ~dst:l amount;
        alloc.Allocation.alpha.(k).(l) <- alloc.Allocation.alpha.(k).(l) +. amount;
        alloc.Allocation.beta.(k).(l) <- alloc.Allocation.beta.(k).(l) + 1;
        throughput.(k) <- throughput.(k) +. amount
      end
    end
  done;
  (* Budget exhausted (degenerate caps): drain remaining local speed in
     one pass so the result is still a sensible allocation. *)
  if !remaining <> [] then M.incr m_budget_exhausted;
  List.iter
    (fun k ->
      let s = Residual.speed residual k in
      if s > eps then begin
        Residual.consume_local residual k s;
        alloc.Allocation.alpha.(k).(k) <- alloc.Allocation.alpha.(k).(k) +. s
      end)
    !remaining;
  if Trace.live sp then
    Trace.finish sp ~args:[ ("iterations", string_of_int !iterations) ];
  alloc

let solve problem =
  let platform = Problem.platform problem in
  refine problem (Residual.full platform) (Allocation.zero (P.num_clusters platform))
