let solve ?objective ?backend problem =
  Dls_obs.Trace.with_span ~cat:"heuristic" "lprg.solve" @@ fun () ->
  match Lp_relax.solve ?objective ?backend problem with
  | Lp_relax.Failed msg -> Error msg
  | Lp_relax.Solution sol ->
    let rounded = Lpr.round_down problem sol in
    let residual = Residual.of_allocation (Problem.platform problem) rounded in
    Ok (Greedy.refine problem residual rounded)
