module P = Dls_platform.Platform

type objective = Sum | Maxmin

type 'num solution = {
  alpha : 'num array array;
  beta : 'num array array;
  objective_value : 'num;
  iterations : int;
}

type 'num outcome = Solution of 'num solution | Failed of string

let remote_pairs problem =
  let p = Problem.platform problem in
  let kk = P.num_clusters p in
  let acc = ref [] in
  for k = kk - 1 downto 0 do
    if Problem.is_active problem k then
      for l = kk - 1 downto 0 do
        if k <> l then begin
          match P.route p k l with
          | Some (_ :: _) -> acc := (k, l) :: !acc
          | Some [] | None -> ()
        end
      done
  done;
  !acc

module Encode (F : Dls_lp.Field.S) = struct
  module M = Dls_lp.Model.Make (F)

  (* Variable layout: one alpha variable per admissible (k, l) pair —
     always (k, k) for active k; (k, l) when a route exists — plus, for
     MAXMIN, one auxiliary variable t with rows t <= pi_k * alpha_k.
     [solver] lets the float instance route the model to the sparse
     revised simplex. *)
  let solve ?solver ?(objective = Maxmin) ?(fixed = []) ?max_iterations problem =
    let solve_model = match solver with Some f -> f | None -> M.solve in
    let p = Problem.platform problem in
    let kk = P.num_clusters p in
    let active = Problem.active problem in
    let zero_solution () =
      { alpha = Array.make_matrix kk kk F.zero;
        beta = Array.make_matrix kk kk F.zero;
        objective_value = F.zero;
        iterations = 0 }
    in
    if active = [] then Solution (zero_solution ())
    else begin
      let fixed_tbl = Hashtbl.create 16 in
      List.iter
        (fun ((k, l), v) ->
          if v < 0 then invalid_arg "Lp_relax: negative fixed beta";
          Hashtbl.replace fixed_tbl (k, l) v)
        fixed;
      let m = M.create () in
      let vars = Array.make_matrix kk kk None in
      let bottleneck = Array.make_matrix kk kk infinity in
      List.iter
        (fun k ->
          for l = 0 to kk - 1 do
            let admissible =
              if l = k then true
              else (
                match P.route p k l with Some _ -> true | None -> false)
            in
            if admissible then begin
              let v = M.add_var ~name:(Printf.sprintf "a_%d_%d" k l) m in
              vars.(k).(l) <- Some v;
              if l <> k then begin
                match P.route_bottleneck p k l with
                | Some bw -> bottleneck.(k).(l) <- bw
                | None -> assert false
              end
            end
          done)
        active;
      (* Pinned pairs: alpha <= v * g as an upper bound. *)
      Hashtbl.iter
        (fun (k, l) v ->
          match vars.(k).(l) with
          | Some var when k <> l && Float.is_finite bottleneck.(k).(l) ->
            M.set_upper_bound m var
              (F.mul (F.of_int v) (F.of_float bottleneck.(k).(l)))
          | Some _ | None ->
            invalid_arg "Lp_relax: fixed beta on a pair without a backbone route")
        fixed_tbl;
      (* Equation 7b: per-cluster compute capacity. *)
      for l = 0 to kk - 1 do
        let terms = ref [] in
        for k = 0 to kk - 1 do
          match vars.(k).(l) with
          | Some v -> terms := (v, F.one) :: !terms
          | None -> ()
        done;
        if !terms <> [] then M.add_le m !terms (F.of_float (P.speed p l))
      done;
      (* Equation 7c: per-cluster local link, outgoing plus incoming. *)
      for k = 0 to kk - 1 do
        let terms = ref [] in
        for l = 0 to kk - 1 do
          if l <> k then begin
            (match vars.(k).(l) with
             | Some v -> terms := (v, F.one) :: !terms
             | None -> ());
            match vars.(l).(k) with
            | Some v -> terms := (v, F.one) :: !terms
            | None -> ()
          end
        done;
        if !terms <> [] then M.add_le m !terms (F.of_float (P.local_bw p k))
      done;
      (* Equation 7d with betas eliminated: each unpinned crossing pair
         charges alpha/g slots; each pinned pair charges the constant v. *)
      let infeasible = ref None in
      for link = 0 to P.num_backbones p - 1 do
        let terms = ref [] in
        let rhs = ref (F.of_int (P.backbone p link).P.max_connect) in
        List.iter
          (fun (k, l) ->
            match vars.(k).(l) with
            | None -> ()
            | Some v -> begin
              match Hashtbl.find_opt fixed_tbl (k, l) with
              | Some fixed_v -> rhs := F.sub !rhs (F.of_int fixed_v)
              | None ->
                let g = bottleneck.(k).(l) in
                terms := (v, F.div F.one (F.of_float g)) :: !terms
            end)
          (P.routes_through p link);
        if F.compare !rhs F.zero < 0 then
          infeasible := Some (Printf.sprintf "pinned connections exceed backbone %d" link)
        else if !terms <> [] then M.add_le m !terms !rhs
      done;
      match !infeasible with
      | Some msg -> Failed msg
      | None ->
        (* Objective. *)
        let alpha_terms k =
          List.filter_map
            (fun l -> Option.map (fun v -> (v, F.one)) vars.(k).(l))
            (List.init kk Fun.id)
        in
        (match objective with
         | Sum ->
           let terms =
             List.concat_map
               (fun k ->
                 let pi = F.of_float (Problem.payoff problem k) in
                 List.map (fun (v, _) -> (v, pi)) (alpha_terms k))
               active
           in
           M.set_objective m terms
         | Maxmin ->
           let t = M.add_var ~name:"t" m in
           List.iter
             (fun k ->
               let pi = F.of_float (Problem.payoff problem k) in
               let row =
                 (t, F.one)
                 :: List.map (fun (v, _) -> (v, F.neg pi)) (alpha_terms k)
               in
               M.add_le m row F.zero)
             active;
           M.set_objective m [ (t, F.one) ]);
        let result = solve_model ?max_iterations m in
        (match result.M.status with
         | M.Solver.Optimal ->
           let alpha = Array.make_matrix kk kk F.zero in
           let beta = Array.make_matrix kk kk F.zero in
           for k = 0 to kk - 1 do
             for l = 0 to kk - 1 do
               match vars.(k).(l) with
               | None -> ()
               | Some v ->
                 let a = result.M.value v in
                 alpha.(k).(l) <- a;
                 if k <> l && Float.is_finite bottleneck.(k).(l) then begin
                   match Hashtbl.find_opt fixed_tbl (k, l) with
                   | Some fv -> beta.(k).(l) <- F.of_int fv
                   | None -> beta.(k).(l) <- F.div a (F.of_float bottleneck.(k).(l))
                 end
             done
           done;
           Solution
             { alpha; beta;
               objective_value = result.M.objective;
               iterations = result.M.iterations }
         | M.Solver.Infeasible -> Failed "LP infeasible"
         | M.Solver.Unbounded -> Failed "LP unbounded (malformed problem)"
         | M.Solver.Iteration_limit -> Failed "simplex iteration budget exhausted")
    end
end

module Float_encoder = Encode (Dls_lp.Field.Float)
module Exact_encoder = Encode (Dls_lp.Field.Exact)

(* ------------------------------------------------------------------ *)
(* Incremental (warm-started) float path                               *)
(* ------------------------------------------------------------------ *)

(* LPRR solves K^2 + 1 LPs per platform, each differing from the
   previous only by one newly pinned beta pair.  This handle builds the
   float relaxation once and threads a [Model.Float.incremental] state
   through the pinning loop: a pin tightens the pair's bound row to
   [v * g] and, on every backbone link of its route, deletes the pair's
   [1/g] slot charge and lowers the right-hand side by the constant
   [v].  The matrix layout never changes, so each re-solve warm-starts
   from the previous optimal basis.

   One encoding difference from the cold path: every remote pair gets
   an explicit bound row [alpha_{k,l} <= g_{k,l} * min max-connect over
   the route] up front.  Before the pair is pinned the row is redundant
   (implied by the link rows), so the relaxation is unchanged; pinning
   then only tightens its right-hand side. *)
module Incremental = struct
  module M = Dls_lp.Model.Float
  module Rs = Dls_lp.Revised_simplex

  type pair_info = {
    var : M.var;
    g : float;  (* route bottleneck g_{k,l} *)
    links : int list;  (* deduplicated backbone ids of the route *)
    bound_row : int;
  }

  type handle = {
    kk : int;
    inc : M.incremental option;  (* None when no application is active *)
    vars : M.var option array array;
    bottleneck : float array array;
    pairs : (int * int, pair_info) Hashtbl.t;
    link_row : int array;  (* -1 when the backbone link has no row *)
    compute_row : int array;  (* 7b row per cluster; -1 when absent *)
    local_row : int array;  (* 7c row per cluster; -1 when absent *)
    cap_now : float array;  (* current per-link connection cap *)
    pin_charge : float array;  (* pinned slots already charged per link *)
    pinned : (int * int, int) Hashtbl.t;
  }

  let create ?(objective = Maxmin) ?backend problem =
    let p = Problem.platform problem in
    let kk = P.num_clusters p in
    let active = Problem.active problem in
    let vars = Array.make_matrix kk kk None in
    let bottleneck = Array.make_matrix kk kk infinity in
    let pairs = Hashtbl.create 64 in
    let link_row = Array.make (P.num_backbones p) (-1) in
    let compute_row = Array.make kk (-1) in
    let local_row = Array.make kk (-1) in
    let cap_now =
      Array.init (P.num_backbones p) (fun link ->
          float_of_int (P.backbone p link).P.max_connect)
    in
    let pin_charge = Array.make (P.num_backbones p) 0.0 in
    let pinned = Hashtbl.create 64 in
    if active = [] then
      { kk; inc = None; vars; bottleneck; pairs; link_row; compute_row;
        local_row; cap_now; pin_charge; pinned }
    else begin
      let m = M.create () in
      List.iter
        (fun k ->
          for l = 0 to kk - 1 do
            let admissible =
              if l = k then true
              else (match P.route p k l with Some _ -> true | None -> false)
            in
            if admissible then begin
              let v = M.add_var ~name:(Printf.sprintf "a_%d_%d" k l) m in
              vars.(k).(l) <- Some v;
              if l <> k then begin
                match P.route_bottleneck p k l with
                | Some bw -> bottleneck.(k).(l) <- bw
                | None -> assert false
              end
            end
          done)
        active;
      (* Equation 7b: per-cluster compute capacity. *)
      for l = 0 to kk - 1 do
        let terms = ref [] in
        for k = 0 to kk - 1 do
          match vars.(k).(l) with
          | Some v -> terms := (v, 1.0) :: !terms
          | None -> ()
        done;
        if !terms <> [] then begin
          compute_row.(l) <- M.num_constraints m;
          M.add_le m !terms (P.speed p l)
        end
      done;
      (* Equation 7c: per-cluster local link, outgoing plus incoming. *)
      for k = 0 to kk - 1 do
        let terms = ref [] in
        for l = 0 to kk - 1 do
          if l <> k then begin
            (match vars.(k).(l) with
             | Some v -> terms := (v, 1.0) :: !terms
             | None -> ());
            match vars.(l).(k) with
            | Some v -> terms := (v, 1.0) :: !terms
            | None -> ()
          end
        done;
        if !terms <> [] then begin
          local_row.(k) <- M.num_constraints m;
          M.add_le m !terms (P.local_bw p k)
        end
      done;
      (* Equation 7d with betas eliminated: each crossing pair charges
         alpha/g connection slots. *)
      for link = 0 to P.num_backbones p - 1 do
        let terms = ref [] in
        List.iter
          (fun (k, l) ->
            match vars.(k).(l) with
            | None -> ()
            | Some v -> terms := (v, 1.0 /. bottleneck.(k).(l)) :: !terms)
          (P.routes_through p link);
        if !terms <> [] then begin
          link_row.(link) <- M.num_constraints m;
          M.add_le m !terms (float_of_int (P.backbone p link).P.max_connect)
        end
      done;
      (* Per-pair bound rows (redundant until the pair is pinned). *)
      List.iter
        (fun (k, l) ->
          match (vars.(k).(l), P.route p k l) with
          | Some var, Some (_ :: _ as route) ->
            let links = List.sort_uniq compare route in
            let g = bottleneck.(k).(l) in
            let min_maxcon =
              List.fold_left
                (fun acc link ->
                  Stdlib.min acc (P.backbone p link).P.max_connect)
                max_int links
            in
            let bound_row = M.num_constraints m in
            M.add_le m [ (var, 1.0) ] (g *. float_of_int min_maxcon);
            Hashtbl.replace pairs (k, l) { var; g; links; bound_row }
          | _ -> assert false)
        (remote_pairs problem);
      (* Objective. *)
      let alpha_terms k =
        List.filter_map
          (fun l -> Option.map (fun v -> (v, 1.0)) vars.(k).(l))
          (List.init kk Fun.id)
      in
      (match objective with
       | Sum ->
         let terms =
           List.concat_map
             (fun k ->
               let pi = Problem.payoff problem k in
               List.map (fun (v, _) -> (v, pi)) (alpha_terms k))
             active
         in
         M.set_objective m terms
       | Maxmin ->
         let t = M.add_var ~name:"t" m in
         List.iter
           (fun k ->
             let pi = Problem.payoff problem k in
             let row =
               (t, 1.0) :: List.map (fun (v, _) -> (v, -.pi)) (alpha_terms k)
             in
             M.add_le m row 0.0)
           active;
         M.set_objective m [ (t, 1.0) ]);
      { kk; inc = Some (M.incremental ?backend m); vars; bottleneck; pairs;
        link_row; compute_row; local_row; cap_now; pin_charge; pinned }
    end

  let pin h (k, l) v =
    if v < 0 then invalid_arg "Lp_relax.Incremental.pin: negative fixed beta";
    match Hashtbl.find_opt h.pairs (k, l) with
    | None ->
      invalid_arg "Lp_relax.Incremental.pin: fixed beta on a non-remote pair"
    | Some info ->
      if Hashtbl.mem h.pinned (k, l) then
        invalid_arg "Lp_relax.Incremental.pin: pair already pinned";
      let inc = match h.inc with Some i -> i | None -> assert false in
      let overfull =
        List.find_opt
          (fun link ->
            h.link_row.(link) >= 0
            && M.inc_rhs inc ~row:h.link_row.(link) < float_of_int v)
          info.links
      in
      (match overfull with
       | Some link ->
         Error (Printf.sprintf "pinned connections exceed backbone %d" link)
       | None ->
         Hashtbl.replace h.pinned (k, l) v;
         M.inc_set_rhs inc ~row:info.bound_row (float_of_int v *. info.g);
         List.iter
           (fun link ->
             if h.link_row.(link) >= 0 then begin
               let row = h.link_row.(link) in
               M.inc_zero_coeff inc ~row info.var;
               M.inc_set_rhs inc ~row (M.inc_rhs inc ~row -. float_of_int v);
               h.pin_charge.(link) <- h.pin_charge.(link) +. float_of_int v
             end)
           info.links;
         Ok ())

  let pinned h = Hashtbl.fold (fun pair v acc -> (pair, v) :: acc) h.pinned []

  (* Capacity edits (daemon warm path): pure right-hand-side updates
     that keep the matrix layout — and hence the carried basis — valid.
     Every setter takes the new *absolute* capacity of the degraded
     platform, not a delta, so replaying the same mutation log always
     lands the handle in the same state. *)

  let set_speed h ~cluster v =
    if cluster < 0 || cluster >= h.kk then
      invalid_arg "Lp_relax.Incremental.set_speed: cluster out of range";
    if not (Float.is_finite v) || v < 0.0 then
      invalid_arg "Lp_relax.Incremental.set_speed: invalid speed";
    match h.inc with
    | None -> ()
    | Some inc ->
      if h.compute_row.(cluster) >= 0 then
        M.inc_set_rhs inc ~row:h.compute_row.(cluster) v

  let set_local_bw h ~cluster v =
    if cluster < 0 || cluster >= h.kk then
      invalid_arg "Lp_relax.Incremental.set_local_bw: cluster out of range";
    if not (Float.is_finite v) || v < 0.0 then
      invalid_arg "Lp_relax.Incremental.set_local_bw: invalid bandwidth";
    match h.inc with
    | None -> ()
    | Some inc ->
      if h.local_row.(cluster) >= 0 then
        M.inc_set_rhs inc ~row:h.local_row.(cluster) v

  let set_max_connect h ~link n =
    if link < 0 || link >= Array.length h.cap_now then
      invalid_arg "Lp_relax.Incremental.set_max_connect: link out of range";
    if n < 0 then
      invalid_arg "Lp_relax.Incremental.set_max_connect: negative cap";
    match h.inc with
    | None -> h.cap_now.(link) <- float_of_int n
    | Some inc ->
      h.cap_now.(link) <- float_of_int n;
      if h.link_row.(link) >= 0 then
        M.inc_set_rhs inc ~row:h.link_row.(link)
          (Float.max 0.0 (float_of_int n -. h.pin_charge.(link)));
      (* The per-pair bound rows were encoded as [g * min max-connect
         over the route]; re-derive them from the current caps so they
         stay redundant even when a cap is *raised* past its build-time
         value (otherwise the warm optimum could be over-constrained
         relative to a cold rebuild). *)
      Hashtbl.iter
        (fun pair info ->
          if List.mem link info.links && not (Hashtbl.mem h.pinned pair) then begin
            let min_cap =
              List.fold_left
                (fun acc l -> Float.min acc h.cap_now.(l))
                infinity info.links
            in
            M.inc_set_rhs inc ~row:info.bound_row
              (Float.max 0.0 (info.g *. min_cap))
          end)
        h.pairs

  let solve ?max_iterations h =
    match h.inc with
    | None ->
      Solution
        { alpha = Array.make_matrix h.kk h.kk 0.0;
          beta = Array.make_matrix h.kk h.kk 0.0;
          objective_value = 0.0;
          iterations = 0 }
    | Some inc ->
      let result = M.inc_solve ?max_iterations inc in
      (match result.M.status with
       | M.Solver.Optimal ->
         let alpha = Array.make_matrix h.kk h.kk 0.0 in
         let beta = Array.make_matrix h.kk h.kk 0.0 in
         for k = 0 to h.kk - 1 do
           for l = 0 to h.kk - 1 do
             match h.vars.(k).(l) with
             | None -> ()
             | Some v ->
               let a = result.M.value v in
               alpha.(k).(l) <- a;
               if k <> l && Float.is_finite h.bottleneck.(k).(l) then begin
                 match Hashtbl.find_opt h.pinned (k, l) with
                 | Some fv -> beta.(k).(l) <- float_of_int fv
                 | None -> beta.(k).(l) <- a /. h.bottleneck.(k).(l)
               end
           done
         done;
         Solution
           { alpha; beta;
             objective_value = result.M.objective;
             iterations = result.M.iterations }
       | M.Solver.Infeasible -> Failed "LP infeasible"
       | M.Solver.Unbounded -> Failed "LP unbounded (malformed problem)"
       | M.Solver.Iteration_limit -> Failed "simplex iteration budget exhausted")

  let counters h =
    match h.inc with
    | Some inc -> M.inc_counters inc
    | None ->
      { Rs.solves = 0; warm_starts = 0; cold_starts = 0; pivots = 0;
        reinversions = 0; bland_activations = 0; wall_clock = 0.0 }
end

let solve ?(engine = `Sparse) ?backend ?objective ?fixed ?max_iterations
    problem =
  let solver =
    match engine with
    | `Sparse ->
      fun ?max_iterations m ->
        Dls_lp.Model.Float.solve_auto ?backend ?max_iterations m
    | `Dense -> fun ?max_iterations m -> Dls_lp.Model.Float.solve ?max_iterations m
  in
  Float_encoder.solve ~solver ?objective ?fixed ?max_iterations problem

let solve_exact ?objective ?fixed ?max_iterations problem =
  Exact_encoder.solve ?objective ?fixed ?max_iterations problem
