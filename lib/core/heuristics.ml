type t = G | LPR | LPRG | LPRR

let all = [ G; LPR; LPRG; LPRR ]

let name = function G -> "G" | LPR -> "LPR" | LPRG -> "LPRG" | LPRR -> "LPRR"

let of_name s =
  match String.lowercase_ascii s with
  | "g" | "greedy" -> Some G
  | "lpr" -> Some LPR
  | "lprg" -> Some LPRG
  | "lprr" -> Some LPRR
  | _ -> None

let default_seed = 0x5EED

let run ?objective ?backend ?rng spec problem =
  match spec with
  | G -> Ok (Greedy.solve problem)
  | LPR -> Lpr.solve ?objective ?backend problem
  | LPRG -> Lprg.solve ?objective ?backend problem
  | LPRR ->
    let rng =
      match rng with
      | Some r -> r
      | None -> Dls_util.Prng.create ~seed:default_seed
    in
    Result.map
      (fun stats -> stats.Lprr.allocation)
      (Lprr.solve ?objective ?backend ~rng problem)

let lp_bound ?objective ?backend problem =
  match Lp_relax.solve ?objective ?backend problem with
  | Lp_relax.Solution sol -> Ok sol.Lp_relax.objective_value
  | Lp_relax.Failed msg -> Error msg
