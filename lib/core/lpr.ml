module P = Dls_platform.Platform

(* Guard against representation noise in beta~ = alpha/g: a value that
   is 3 - 1e-12 is really 3 and must not round to 2. *)
let floor_eps = 1e-9

let round_down problem (sol : float Lp_relax.solution) =
  let p = Problem.platform problem in
  let kk = P.num_clusters p in
  let alloc = Allocation.zero kk in
  for k = 0 to kk - 1 do
    for l = 0 to kk - 1 do
      if l = k then alloc.Allocation.alpha.(k).(l) <- sol.alpha.(k).(l)
      else begin
        match P.route_bottleneck p k l with
        | None -> ()
        | Some bw when bw = infinity ->
          (* Co-located pair: no backbone crossed, nothing to round. *)
          alloc.Allocation.alpha.(k).(l) <- sol.alpha.(k).(l)
        | Some bw ->
          let beta_hat = int_of_float (Float.floor (sol.beta.(k).(l) +. floor_eps)) in
          alloc.Allocation.beta.(k).(l) <- beta_hat;
          alloc.Allocation.alpha.(k).(l) <-
            Float.min sol.alpha.(k).(l) (float_of_int beta_hat *. bw)
      end
    done
  done;
  alloc

let solve ?objective ?backend problem =
  match Lp_relax.solve ?objective ?backend problem with
  | Lp_relax.Solution sol -> Ok (round_down problem sol)
  | Lp_relax.Failed msg -> Error msg
