(** LPRG: LP round-down refined by the greedy heuristic (Section 5.2.2).

    "LPR gives the basic framework of the solution, while the greedy
    heuristic refines it": the residual network capacity thrown away by
    rounding down is reclaimed by running G from the rounded allocation.
    This is the paper's best practical heuristic — close to the LP upper
    bound on the SUM objective at large K. *)

val solve :
  ?objective:Lp_relax.objective ->
  ?backend:Dls_lp.Backend.t ->
  Problem.t ->
  (Allocation.t, string) result
