module P = Dls_platform.Platform
module Prng = Dls_util.Prng
module Rs = Dls_lp.Revised_simplex
module M = Dls_obs.Metrics
module Trace = Dls_obs.Trace

let m_rounds = M.counter "lprr.rounds"
let m_upward = M.counter "lprr.upward_rounds"
let m_clamped = M.counter "lprr.clamped_pins"
let m_lp_solves = M.counter "lprr.lp_solves"

type stats = {
  allocation : Allocation.t;
  lp_solves : int;
  upward_rounds : int;
  pin_trace : ((int * int) * int) list;
  lp_objectives : float list;
  counters : Rs.counters option;
}

let floor_eps = 1e-9

(* Incremental per-link used-slots table: O(route length) per query
   instead of rescanning every pinned pair through [routes_through] for
   every candidate on every iteration (O(K^4) over a full LPRR run). *)
module Slots = struct
  type t = { problem : Problem.t; used : int array }

  let create problem =
    { problem;
      used = Array.make (P.num_backbones (Problem.platform problem)) 0 }

  (* Routes are paths, but [make_with_routes] overrides could repeat a
     link; count each crossed link once, like [routes_through] does. *)
  let route_links p k l =
    match P.route p k l with
    | None | Some [] -> []
    | Some links -> List.sort_uniq compare links

  let pin t (k, l) v =
    List.iter
      (fun link -> t.used.(link) <- t.used.(link) + v)
      (route_links (Problem.platform t.problem) k l)

  let route_slack t (k, l) =
    let p = Problem.platform t.problem in
    match route_links p k l with
    | [] -> 0
    | links ->
      List.fold_left
        (fun acc link ->
          Stdlib.min acc ((P.backbone p link).P.max_connect - t.used.(link)))
        max_int links
end

(* Reference implementation of the slack computation, quadratic in the
   number of pins: kept for the property test pitting it against the
   incremental table, and for callers holding a bare pin list. *)
let recompute_route_slack problem pins (k, l) =
  let p = Problem.platform problem in
  match P.route p k l with
  | None | Some [] -> 0
  | Some links ->
    List.fold_left
      (fun acc link ->
        let used =
          List.fold_left
            (fun u pair ->
              match List.assoc_opt pair pins with
              | Some v -> u + v
              | None -> u)
            0
            (P.routes_through p link)
        in
        Stdlib.min acc ((P.backbone p link).P.max_connect - used))
      max_int links

(* The rounding loop, shared by the warm and cold paths.  [solve_pinned]
   re-solves the relaxation under the pins so far; [record_pin] commits
   one rounding decision. *)
let rounding_loop ~equal_probability ~rng ~pairs ~slots ~solve_pinned
    ~record_pin =
  let unfixed = ref pairs in
  let lp_solves = ref 0 in
  let upward = ref 0 in
  let trace = ref [] in
  let objectives = ref [] in
  let failure = ref None in
  let finished = ref false in
  let pin pair v =
    match record_pin pair v with
    | Ok () ->
      Slots.pin slots pair v;
      trace := (pair, v) :: !trace
    | Error msg -> failure := Some msg
  in
  while not !finished && !failure = None do
    match solve_pinned () with
    | Lp_relax.Failed msg -> failure := Some msg
    | Lp_relax.Solution sol ->
      incr lp_solves;
      M.incr m_lp_solves;
      objectives := sol.Lp_relax.objective_value :: !objectives;
      let candidates =
        List.filter (fun (k, l) -> sol.Lp_relax.beta.(k).(l) > floor_eps) !unfixed
      in
      (match candidates with
       | [] ->
         (* No live fractional route left: pin the rest to zero. *)
         List.iter (fun pair -> pin pair 0) !unfixed;
         unfixed := [];
         finished := true
       | _ :: _ ->
         let sp = Trace.start ~cat:"heuristic" "lprr.round" in
         M.incr m_rounds;
         let (k, l) = Prng.pick rng (Array.of_list candidates) in
         let b = sol.Lp_relax.beta.(k).(l) in
         let fl = int_of_float (Float.floor (b +. floor_eps)) in
         let frac = Float.max 0.0 (b -. float_of_int fl) in
         let up =
           if equal_probability then Prng.bool rng ~p:0.5
           else Prng.bool rng ~p:frac
         in
         let wanted = if up then fl + 1 else fl in
         (* Feasibility clamp: never pin more slots than the route has. *)
         let v = Stdlib.min wanted (Slots.route_slack slots (k, l)) in
         let v = Stdlib.max v 0 in
         if v < wanted then M.incr m_clamped;
         if up && v = fl + 1 then begin
           incr upward;
           M.incr m_upward
         end;
         pin (k, l) v;
         unfixed := List.filter (fun pair -> pair <> (k, l)) !unfixed;
         if Trace.live sp then
           Trace.finish sp
             ~args:
               [ ("pair", Printf.sprintf "%d->%d" k l);
                 ("rounded", if up then "up" else "down");
                 ("value", string_of_int v) ])
  done;
  match !failure with
  | Some msg -> Error msg
  | None ->
    (* Final solve with every beta pinned gives the alphas. *)
    (match solve_pinned () with
     | Lp_relax.Failed msg -> Error msg
     | Lp_relax.Solution sol ->
       incr lp_solves;
       M.incr m_lp_solves;
       objectives := sol.Lp_relax.objective_value :: !objectives;
       Ok (sol, !lp_solves, !upward, List.rev !trace, List.rev !objectives))

let finish problem (sol, lp_solves, upward, trace, objectives) ~counters =
  let kk = Problem.num_clusters problem in
  let alloc = Allocation.zero kk in
  for k = 0 to kk - 1 do
    for l = 0 to kk - 1 do
      alloc.Allocation.alpha.(k).(l) <- sol.Lp_relax.alpha.(k).(l)
    done
  done;
  List.iter
    (fun ((k, l), v) -> alloc.Allocation.beta.(k).(l) <- v)
    trace;
  { allocation = alloc; lp_solves; upward_rounds = upward; pin_trace = trace;
    lp_objectives = objectives; counters }

let run ~equal_probability ~warm ?objective ?backend ~rng problem =
  let sp = Trace.start ~cat:"heuristic" "lprr.solve" in
  Fun.protect ~finally:(fun () ->
      if Trace.live sp then
        Trace.finish sp ~args:[ ("start", if warm then "warm" else "cold") ])
  @@ fun () ->
  let pairs = Lp_relax.remote_pairs problem in
  let slots = Slots.create problem in
  if warm then begin
    (* Warm path: encode once, thread the incremental handle through
       the pinning loop; each re-solve starts from the previous optimal
       basis. *)
    let handle = Lp_relax.Incremental.create ?objective ?backend problem in
    let outcome =
      rounding_loop ~equal_probability ~rng ~pairs ~slots
        ~solve_pinned:(fun () -> Lp_relax.Incremental.solve handle)
        ~record_pin:(fun pair v -> Lp_relax.Incremental.pin handle pair v)
    in
    Result.map
      (fun r ->
        finish problem r ~counters:(Some (Lp_relax.Incremental.counters handle)))
      outcome
  end
  else begin
    (* Cold path (the paper's cost model and our warm-vs-cold bench
       baseline): rebuild the model and re-solve from the all-slack
       basis at every iteration. *)
    let pins = ref [] in
    let outcome =
      rounding_loop ~equal_probability ~rng ~pairs ~slots
        ~solve_pinned:(fun () ->
          Lp_relax.solve ?objective ?backend ~fixed:!pins problem)
        ~record_pin:(fun pair v ->
          pins := (pair, v) :: !pins;
          Ok ())
    in
    Result.map (fun r -> finish problem r ~counters:None) outcome
  end

let solve ?(warm = true) ?objective ?backend ~rng problem =
  run ~equal_probability:false ~warm ?objective ?backend ~rng problem

let solve_equal_probability ?(warm = true) ?objective ?backend ~rng problem =
  run ~equal_probability:true ~warm ?objective ?backend ~rng problem
