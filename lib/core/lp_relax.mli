(** Rational relaxation of the mixed LP (7a)–(7g), for both objectives.

    In the relaxation, [beta_{k,l}] has no objective cost and appears
    only in the connection-count rows (7d) and the bandwidth rows (7e),
    so an optimal solution always sets
    [beta_{k,l} = alpha_{k,l} / g_{k,l}], where
    [g_{k,l} = min bw over the route].  We therefore eliminate the betas
    and charge [alpha_{k,l} / g_{k,l}] connection slots on every
    backbone link of the route — an exactly equivalent LP with half the
    columns (Section 2.1 of DESIGN.md).  The relaxation's optimum is the
    upper bound ("LP") the paper compares every heuristic against.

    [fixed] pins selected remote pairs to integer connection counts: the
    pair's bandwidth row becomes [alpha_{k,l} <= v * g_{k,l}] and its
    slot charge on each route link becomes the constant [v].  LPRR uses
    this to implement its iterated randomized rounding. *)

type objective = Sum | Maxmin

type 'num solution = {
  alpha : 'num array array;
  (** K x K work matrix; zero where no variable exists. *)
  beta : 'num array array;
  (** Fractional connection counts [alpha/g] (or the pinned integers);
      zero on local and co-located pairs, which cross no backbone. *)
  objective_value : 'num;
  iterations : int;  (** simplex pivots *)
}

type 'num outcome =
  | Solution of 'num solution
  | Failed of string  (** infeasible pinning or pivot-budget exhaustion *)

val solve :
  ?engine:[ `Sparse | `Dense ] ->
  ?backend:Dls_lp.Backend.t ->
  ?objective:objective ->
  ?fixed:((int * int) * int) list ->
  ?max_iterations:int ->
  Problem.t ->
  float outcome
(** Float path (default objective [Maxmin], like the paper's headline
    fairness criterion).  [engine] selects the LP kernel family: the
    revised simplex on the packed form (default) or the dense tableau —
    both give the same optimum; the option exists for cross-checking
    and benchmarks.  Under [`Sparse], [backend] further picks the
    revised-simplex core ([Dls_lp.Backend.Dense] eta-file solver vs the
    [Sparse] Markowitz-LU core), defaulting to the process-wide
    [Dls_lp.Backend.default] — which the CLI exposes as
    [--lp-backend]. *)

val solve_exact :
  ?objective:objective ->
  ?fixed:((int * int) * int) list ->
  ?max_iterations:int ->
  Problem.t ->
  Dls_num.Rat.t outcome
(** Exact-rational path: same construction with platform parameters
    injected exactly (every float is a rational).  Slower; intended for
    tests, small instances, and schedule reconstruction. *)

val remote_pairs : Problem.t -> (int * int) list
(** Ordered pairs (k, l), k active, k <> l, joined by a route that
    crosses at least one backbone link — exactly the pairs whose beta
    matters, i.e. LPRR's rounding domain. *)

(** Warm-started float path for iterated pinning (LPRR's inner loop).

    The relaxation is encoded once; {!Incremental.pin} then updates the
    sparse solver state in place — it tightens the pair's bound row to
    [v * g_{k,l}], deletes the pair's [1/g] slot charge from every
    backbone row of its route and lowers those right-hand sides by [v]
    — and {!Incremental.solve} re-optimizes from the previous optimal
    basis instead of rebuilding the model and re-solving from the
    all-slack basis.  Each solve is the same LP the cold
    [solve ~fixed:(pinned so far)] path would build (the handle carries
    one extra, initially redundant, bound row per remote pair), so
    optimal objectives agree within float tolerance — a property the
    test suite checks on random platforms. *)
module Incremental : sig
  type handle

  val create :
    ?objective:objective -> ?backend:Dls_lp.Backend.t -> Problem.t -> handle
  (** Encode the relaxation (default [Maxmin]) with no pair pinned.
      [backend] selects the revised-simplex core carrying the
      warm-started state (default [Dls_lp.Backend.default]). *)

  val pin : handle -> int * int -> int -> (unit, string) result
  (** [pin h (k, l) v] fixes the pair's connection count to [v].
      [Error] (with the same message as the cold path's [Failed]) when
      [v] exceeds the slots remaining on a backbone link of the route;
      the handle is left unchanged in that case.
      @raise Invalid_argument on a negative [v], a pair outside
      {!remote_pairs}, or a pair already pinned. *)

  val pinned : handle -> ((int * int) * int) list
  (** Pins applied so far, in no particular order. *)

  (** {2 Capacity edits}

      The allocation daemon keeps one handle resident across requests
      and applies platform deltas as right-hand-side edits instead of
      re-encoding: compute throttles and crashes move the 7b rows,
      local-link losses move the 7c rows, and connection-cap changes
      move the 7d rows (and re-derive the redundant per-pair bound rows
      from the current caps).  All three take the new {e absolute}
      capacity of the degraded platform, are no-ops on a handle with no
      active application, and leave the carried basis warm.  Bandwidth
      degradation changes the [1/g] {e coefficients}, not a right-hand
      side, so it cannot be expressed here — the daemon rebuilds the
      handle for those deltas. *)

  val set_speed : handle -> cluster:int -> float -> unit
  (** Set cluster's compute capacity (7b right-hand side).  [0.] models
      a crash.  @raise Invalid_argument on a bad cluster id or a
      negative/non-finite speed. *)

  val set_local_bw : handle -> cluster:int -> float -> unit
  (** Set cluster's local-link capacity (7c right-hand side).
      @raise Invalid_argument on a bad cluster id or a negative/
      non-finite bandwidth. *)

  val set_max_connect : handle -> link:int -> int -> unit
  (** Set a backbone link's simultaneous-connection cap (7d right-hand
      side, net of already-pinned charges, clamped at 0).  [0] models a
      down link: every crossing pair is forced to zero work regardless
      of its (stale) bandwidth coefficient, which is why link failure is
      warm-editable while degradation is not.
      @raise Invalid_argument on a bad link id or a negative cap. *)

  val solve : ?max_iterations:int -> handle -> float outcome
  (** Re-optimize under the current pins.  The first call is a cold
      start; later calls warm-start (with automatic cold fallback when
      the carried basis went stale). *)

  val counters : handle -> Dls_lp.Revised_simplex.counters
  (** Cumulative solver instrumentation for this handle. *)
end
