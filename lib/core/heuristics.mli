(** Uniform driver over the paper's four heuristics.

    Used by the experiment harness, CLIs and examples so that a
    heuristic is a first-class value (parsed from the command line,
    iterated over in sweeps, timed uniformly). *)

type t =
  | G  (** greedy (Section 5.1) *)
  | LPR  (** LP relaxation + round down (5.2.1) *)
  | LPRG  (** LPR + greedy refinement (5.2.2) *)
  | LPRR  (** iterated randomized rounding (5.2.3) *)

val all : t list

val name : t -> string
val of_name : string -> t option
(** Case-insensitive; ["g"], ["lpr"], ["lprg"], ["lprr"]. *)

val run :
  ?objective:Lp_relax.objective ->
  ?backend:Dls_lp.Backend.t ->
  ?rng:Dls_util.Prng.t ->
  t ->
  Problem.t ->
  (Allocation.t, string) result
(** Runs the heuristic.  [objective] (default [Maxmin]) selects the LP
    objective for the LP-based heuristics; G ignores it (its fairness
    rule is objective-free, as in the paper).  [rng] seeds LPRR's coin
    flips (default: a fixed seed, for reproducibility). *)

val lp_bound :
  ?objective:Lp_relax.objective ->
  ?backend:Dls_lp.Backend.t ->
  Problem.t ->
  (float, string) result
(** The rational-relaxation optimum — the upper bound every figure of
    the paper normalizes against. *)
