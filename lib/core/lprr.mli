(** LPRR: iterated randomized rounding (Section 5.2.3).

    Following Coudert and Rivano's practical variant of the
    Motwani–Naor–Raghavan scheme, LPRR repeatedly (i) solves the
    relaxation with all previously pinned connection counts, (ii) picks
    an unpinned route with non-zero fractional [beta~] uniformly at
    random, and (iii) pins it to [floor(beta~) + X] where
    [X ~ Bernoulli(frac(beta~))] — so the count rounds to the nearer
    integer with the higher probability.  When no unpinned route has a
    non-zero [beta~] left, the rest are pinned to 0 and a final solve
    yields the alphas.  One deviation keeps every iteration feasible
    (the paper notes Coudert–Rivano "always provides a feasible
    solution" without detail): an upward round is clamped to the
    connection slots actually remaining on the route.

    Cost: one LP solve per remote route — the K^2 factor the paper
    measures in Figure 7.  By default ([warm = true]) those solves go
    through {!Lp_relax.Incremental}: the model is encoded once and each
    re-solve warm-starts from the previous optimal basis.
    [~warm:false] keeps the historical rebuild-and-cold-solve loop; it
    is the baseline the warm-vs-cold bench measures against.  Both
    paths solve the same LP under the same pins, but MAXMIN optima are
    massively degenerate, so the two may return different optimal
    vertices and the random trajectories can drift apart — what is
    guaranteed (and property-tested) is that every per-iteration LP
    objective matches a from-scratch solve under the same pin prefix. *)

type stats = {
  allocation : Allocation.t;
  lp_solves : int;  (** LP solves performed, including the final one *)
  upward_rounds : int;  (** pins where the Bernoulli rounded up *)
  pin_trace : ((int * int) * int) list;
  (** Pins in the order they were committed — replaying a prefix with
      [Lp_relax.solve ~fixed] reproduces the corresponding LP. *)
  lp_objectives : float list;
  (** Objective of each LP solve, in order (one per entry of
      [pin_trace] possibly batched with trailing zero pins, plus the
      final solve). *)
  counters : Dls_lp.Revised_simplex.counters option;
  (** Solver instrumentation (pivots, warm/cold starts, reinversions,
      wall-clock); [None] on the cold path, which makes a fresh solver
      per iteration. *)
}

val solve :
  ?warm:bool ->
  ?objective:Lp_relax.objective ->
  ?backend:Dls_lp.Backend.t ->
  rng:Dls_util.Prng.t ->
  Problem.t ->
  (stats, string) result

val solve_equal_probability :
  ?warm:bool ->
  ?objective:Lp_relax.objective ->
  ?backend:Dls_lp.Backend.t ->
  rng:Dls_util.Prng.t ->
  Problem.t ->
  (stats, string) result
(** Ablation: round up or down with probability 1/2 regardless of the
    fractional part.  The paper reports this variant "performed much
    worse than LPRR"; the ablation bench reproduces that comparison. *)

(** Incremental per-link used-connection-slot table — the rounding
    loop's O(route) replacement for rescanning every pinned pair through
    [routes_through] at each clamp (O(K^2) pairs x O(K^2) rescan).
    Exposed for the property test against {!recompute_route_slack}. *)
module Slots : sig
  type t

  val create : Problem.t -> t
  (** All counts zero. *)

  val pin : t -> int * int -> int -> unit
  (** [pin t (k, l) v] charges [v] slots on every backbone link of the
      (k, l) route. *)

  val route_slack : t -> int * int -> int
  (** Slots left on the tightest link of the route; 0 when the pair has
      no backbone route. *)
end

val recompute_route_slack :
  Problem.t -> ((int * int) * int) list -> int * int -> int
(** [recompute_route_slack problem pins (k, l)]: connection slots left
    on the tightest backbone link of the (k, l) route under the given
    pins, recomputed from scratch by scanning [routes_through] for every
    link.  Reference implementation for the incremental per-link table
    the rounding loop maintains; the test suite checks they agree. *)
