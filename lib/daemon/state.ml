module Platform = Dls_platform.Platform
module Platform_io = Dls_platform.Platform_io
module Faults = Dls_flowsim.Faults
module Problem = Dls_core.Problem

type t = {
  pf : Platform.t;
  pf_fingerprint : string;
  mutable app_list : (string * (int * float)) list;  (* insertion order *)
  mutable delta_rev : Faults.kind list;  (* newest first *)
  mutable n_mutations : int;
}

let create pf =
  {
    pf;
    pf_fingerprint = Digest.to_hex (Digest.string (Platform_io.to_string pf));
    app_list = [];
    delta_rev = [];
    n_mutations = 0;
  }

let platform t = t.pf

let apps t =
  List.sort (fun (a, _) (b, _) -> String.compare a b) t.app_list

let deltas t = List.rev t.delta_rev

let seq t = t.n_mutations

let fingerprint t = t.pf_fingerprint

let apply t (m : Protocol.mutation) =
  match m with
  | Protocol.Register_app { app; cluster; payoff } ->
    if app = "" then Error "register_app: empty application name"
    else if List.mem_assoc app t.app_list then
      Error (Printf.sprintf "register_app: %S already registered" app)
    else if cluster < 0 || cluster >= Platform.num_clusters t.pf then
      Error
        (Printf.sprintf "register_app: cluster %d outside [0, %d)" cluster
           (Platform.num_clusters t.pf))
    else if not (payoff > 0.0 && payoff < infinity) then
      Error (Printf.sprintf "register_app: payoff %g not in (0, inf)" payoff)
    else (
      match
        List.find_opt (fun (_, (c, _)) -> c = cluster) t.app_list
      with
      | Some (other, _) ->
        Error
          (Printf.sprintf "register_app: cluster %d already owned by %S"
             cluster other)
      | None ->
        t.app_list <- t.app_list @ [ (app, (cluster, payoff)) ];
        t.n_mutations <- t.n_mutations + 1;
        Ok ())
  | Protocol.Retire_app { app } ->
    if not (List.mem_assoc app t.app_list) then
      Error (Printf.sprintf "retire_app: %S not registered" app)
    else begin
      t.app_list <- List.remove_assoc app t.app_list;
      t.n_mutations <- t.n_mutations + 1;
      Ok ()
    end
  | Protocol.Platform_delta kinds ->
    if kinds = [] then Error "platform_delta: empty event list"
    else (
      (* Faults.make performs the entity-range and factor validation;
         the synthetic times (0, 1, 2, ...) only fix application
         order. *)
      match
        Faults.make t.pf
          (List.mapi
             (fun i k -> { Faults.time = float_of_int i; kind = k })
             kinds)
      with
      | _plan ->
        t.delta_rev <- List.rev_append kinds t.delta_rev;
        t.n_mutations <- t.n_mutations + 1;
        Ok ()
      | exception Invalid_argument msg -> Error msg)

let degraded_platform t =
  match t.delta_rev with
  | [] -> t.pf
  | _ ->
    let kinds = List.rev t.delta_rev in
    let n = List.length kinds in
    let plan =
      Faults.make t.pf
        (List.mapi
           (fun i k -> { Faults.time = float_of_int i; kind = k })
           kinds)
    in
    Faults.degraded_at t.pf plan ~time:(float_of_int (n - 1))

let problem t =
  let payoffs = Array.make (Platform.num_clusters t.pf) 0.0 in
  List.iter (fun (_, (c, p)) -> payoffs.(c) <- p) t.app_list;
  Problem.make (degraded_platform t) ~payoffs

let equal a b =
  a.pf_fingerprint = b.pf_fingerprint
  && apps a = apps b
  && a.delta_rev = b.delta_rev
