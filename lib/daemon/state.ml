module Platform = Dls_platform.Platform
module Platform_io = Dls_platform.Platform_io
module Faults = Dls_flowsim.Faults
module Problem = Dls_core.Problem

type capacity_edit =
  | Set_speed of int * float
  | Set_local_bw of int * float
  | Set_link_cap of int * int

type t = {
  pf : Platform.t;
  pf_fingerprint : string;
  mutable app_list : (string * (int * float)) list;  (* insertion order *)
  mutable delta_rev : Faults.kind list;  (* newest first *)
  mutable n_mutations : int;
  cursor : Faults.state;  (* materialized view of the delta log *)
  mutable cached_degraded : Platform.t option;  (* dropped per delta *)
  mutable cached_problem : Problem.t option;  (* dropped per mutation *)
}

let create pf =
  {
    pf;
    pf_fingerprint = Digest.to_hex (Digest.string (Platform_io.to_string pf));
    app_list = [];
    delta_rev = [];
    n_mutations = 0;
    cursor = Faults.start pf Faults.empty;
    cached_degraded = None;
    cached_problem = None;
  }

let platform t = t.pf

let apps t =
  List.sort (fun (a, _) (b, _) -> String.compare a b) t.app_list

let deltas t = List.rev t.delta_rev

let seq t = t.n_mutations

let fingerprint t = t.pf_fingerprint

let apply t (m : Protocol.mutation) =
  match m with
  | Protocol.Register_app { app; cluster; payoff } ->
    if app = "" then Error "register_app: empty application name"
    else if List.mem_assoc app t.app_list then
      Error (Printf.sprintf "register_app: %S already registered" app)
    else if cluster < 0 || cluster >= Platform.num_clusters t.pf then
      Error
        (Printf.sprintf "register_app: cluster %d outside [0, %d)" cluster
           (Platform.num_clusters t.pf))
    else if not (payoff > 0.0 && payoff < infinity) then
      Error (Printf.sprintf "register_app: payoff %g not in (0, inf)" payoff)
    else (
      match
        List.find_opt (fun (_, (c, _)) -> c = cluster) t.app_list
      with
      | Some (other, _) ->
        Error
          (Printf.sprintf "register_app: cluster %d already owned by %S"
             cluster other)
      | None ->
        t.app_list <- t.app_list @ [ (app, (cluster, payoff)) ];
        t.n_mutations <- t.n_mutations + 1;
        t.cached_problem <- None;
        Ok ())
  | Protocol.Retire_app { app } ->
    if not (List.mem_assoc app t.app_list) then
      Error (Printf.sprintf "retire_app: %S not registered" app)
    else begin
      t.app_list <- List.remove_assoc app t.app_list;
      t.n_mutations <- t.n_mutations + 1;
      t.cached_problem <- None;
      Ok ()
    end
  | Protocol.Platform_delta kinds ->
    if kinds = [] then Error "platform_delta: empty event list"
    else (
      (* Faults.make performs the entity-range and factor validation;
         the synthetic times (0, 1, 2, ...) only fix application
         order.  Validation must complete before the first kind touches
         the cursor so a rejected mutation leaves the state unchanged. *)
      match
        Faults.make t.pf
          (List.mapi
             (fun i k -> { Faults.time = float_of_int i; kind = k })
             kinds)
      with
      | _plan ->
        List.iter (Faults.apply_kind t.cursor) kinds;
        t.delta_rev <- List.rev_append kinds t.delta_rev;
        t.n_mutations <- t.n_mutations + 1;
        t.cached_degraded <- None;
        t.cached_problem <- None;
        Ok ()
      | exception Invalid_argument msg -> Error msg)

let degraded_platform t =
  match t.delta_rev with
  | [] -> t.pf
  | _ -> (
    match t.cached_degraded with
    | Some p -> p
    | None ->
      let p = Faults.degraded_platform t.cursor in
      t.cached_degraded <- Some p;
      p)

let problem t =
  match t.cached_problem with
  | Some pr -> pr
  | None ->
    let payoffs = Array.make (Platform.num_clusters t.pf) 0.0 in
    List.iter (fun (_, (c, p)) -> payoffs.(c) <- p) t.app_list;
    let pr = Problem.make (degraded_platform t) ~payoffs in
    t.cached_problem <- Some pr;
    pr

(* Post-apply classification of an accepted mutation for the daemon's
   resident LP handle.  A mutation is warm-editable when every kind
   only moves a right-hand side of the relaxation: compute throttles
   and crashes (7b / 7c), connection-cap changes and link failures
   (7d).  Bandwidth degradation rescales [1/g] coefficients, and a
   link recovery clears any degradation along with the failure, so
   both force a rebuild — as do registry changes, which alter the
   variable layout.  The emitted edits carry absolute capacities read
   from the cursor, so replaying the same mutation log produces the
   same edit stream. *)
let warm_edits t (m : Protocol.mutation) =
  match m with
  | Protocol.Register_app _ | Protocol.Retire_app _ -> None
  | Protocol.Platform_delta kinds ->
    let edit = function
      | Faults.Cluster_throttle { cluster; _ } ->
        Some
          [ Set_speed
              ( cluster,
                Platform.speed t.pf cluster
                *. Faults.speed_factor t.cursor cluster ) ]
      | Faults.Cluster_crash c ->
        Some [ Set_speed (c, 0.0); Set_local_bw (c, 0.0) ]
      | Faults.Max_connect { link; _ } | Faults.Link_down link ->
        Some [ Set_link_cap (link, Faults.link_max_connect t.cursor link) ]
      | Faults.Link_up _ | Faults.Link_degrade _ -> None
    in
    List.fold_left
      (fun acc k ->
        match (acc, edit k) with
        | Some es, Some e -> Some (es @ e)
        | _ -> None)
      (Some []) kinds

let equal a b =
  a.pf_fingerprint = b.pf_fingerprint
  && apps a = apps b
  && a.delta_rev = b.delta_rev
