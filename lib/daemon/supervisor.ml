module M = Dls_obs.Metrics
module Olog = Dls_obs.Log
module Flight = Dls_obs.Flight
module Prng = Dls_util.Prng

let m_restarts = M.counter "daemon.restarts"

let run ?(should_stop = fun () -> false) ?(on_restart = fun _ _ -> ())
    ?(max_restarts = 100) ?(backoff_base_s = 0.1) ?(sleep = Unix.sleepf)
    config ~load =
  if max_restarts < 0 then
    invalid_arg "Supervisor.run: max_restarts must be >= 0";
  let rng = Prng.derive ~seed:config.Server.seed ~index:1 in
  let rec go restarts =
    match load () with
    | Error _ as e -> e
    | Ok (state, journal) -> (
      let close () = Option.iter Journal.close journal in
      match Server.serve ~should_stop ~restarts config state journal with
      | result ->
        close ();
        result
      | exception exn ->
        close ();
        let msg = Printexc.to_string exn in
        let n = restarts + 1 in
        Flight.record ~kind:"daemon"
          ~fields:[ ("restart", string_of_int n) ]
          ("server crashed: " ^ msg);
        M.incr m_restarts;
        Olog.error "daemon.crash"
          ~fields:[ ("exn", Olog.Str msg); ("restarts", Olog.Int n) ];
        on_restart exn n;
        if n > max_restarts then
          Error (Printf.sprintf "daemon: giving up after %d restarts: %s" n msg)
        else if should_stop () then Ok ()
        else begin
          (* Jittered exponential backoff so a crash loop cannot spin,
             capped: the daemon must come back within seconds of a
             transient fault even deep into a bad stretch. *)
          let backoff =
            Float.min 5.0
              (backoff_base_s *. Float.pow 2.0 (float_of_int (min n 10)))
            *. (1.0 +. Prng.float rng ~lo:0.0 ~hi:0.5)
          in
          sleep backoff;
          go n
        end)
  in
  go 0
