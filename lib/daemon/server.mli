(** Event-loop allocation server with batched, worker-offloaded solves.

    One [select]-driven loop owns the listen socket and every client
    connection, and remains the only writer of daemon state: it applies
    mutations (so the WAL sees them in exactly the order clients were
    answered), coalesces concurrent [get_schedule] requests against the
    same state seq into one {e batch} whose single solve fans out to
    every waiter, and — when [workers > 0] — hands batches to a
    {!Pool} of solver domains so the loop keeps accepting, shedding
    and reaping while schedules are computed.  Resident warm-LP edits
    and warm solves travel through the pool's pinned FIFO, which keeps
    the warm handle's history a pure function of the mutation log; a
    batch whose seq went stale before dispatch solves cold against its
    own problem snapshot and its reply still carries the seq it was
    asked at.  With [workers = 0] batches solve inline at the end of
    the tick (their cost bounded by the per-request deadline budget),
    which is also the reference path the determinism tests compare
    against.

    Robustness properties, each pinned by the test suite:
    - {b admission control}: a bounded request queue; when full, the
      request is answered immediately with [{"status":"overloaded"}]
      and a [retry_after_ms] hint instead of queuing unbounded latency;
    - {b slow-client reaper}: connections idle past [conn_timeout]
      (never completed a frame, or stopped reading replies) are closed
      — a slowloris client costs one connection slot for one timeout,
      not a wedged server;
    - {b connection cap}: accepted connections beyond [max_conns] are
      answered with [overloaded] and closed;
    - {b malformed input}: an unparseable frame or JSON gets an error
      reply and the connection dropped (frame resynchronisation is
      impossible), never an exception out of the loop;
    - {b crash recovery}: accepted mutations are journaled (flushed)
      before the reply is sent;
    - {b graceful drain}: [drain] stops accepting, finishes the queue,
      flushes every reply, then returns [Ok ()].

    Uncaught exceptions (a solver bug, or the test-only [crash]
    request) propagate out of {!serve} — containing them is the
    {!Supervisor}'s job, by design: the loop must never continue on
    state of unknown integrity. *)

exception Crash_requested
(** Raised by the [crash] request when [allow_crash] is set — the
    supervisor-restart test hook. *)

type config = {
  addr : Dls_obs.Publish.addr;  (** listen address ([Tcp]/[Unix_sock]) *)
  queue_cap : int;  (** bounded request queue (default 64) *)
  max_conns : int;  (** connection cap (default 64) *)
  conn_timeout : float;  (** slow-client reap threshold, seconds (10.) *)
  default_budget_s : float;  (** budget for requests without one (0.5) *)
  max_requests_per_tick : int;  (** queue drained per loop turn (8) *)
  breaker_threshold : int;  (** LP blowouts before the breaker opens (3) *)
  breaker_base_backoff_s : float;  (** first open interval (1.0) *)
  seed : int;  (** breaker jitter stream *)
  allow_crash : bool;  (** honour the [crash] request (tests/CI only) *)
  workers : int;
      (** solver domains behind the loop; 0 (default) solves inline on
          the event loop *)
  resident : bool;
      (** keep warm {!Dls_core.Lp_relax.Incremental} handles resident
          across requests (default true); disable for the cold
          single-threaded baseline the load benchmark compares against *)
  coalesce : bool;
      (** batch same-seq [get_schedule] requests into one solve
          (default true) *)
}

val default_config : Dls_obs.Publish.addr -> config

val serve :
  ?should_stop:(unit -> bool) ->
  ?on_ready:(unit -> unit) ->
  ?restarts:int ->
  config ->
  State.t ->
  Journal.t option ->
  (unit, string) result
(** Run the loop until a [drain] request completes or [should_stop]
    (polled every turn, ~50 ms) returns true.  [on_ready] fires once
    the socket is listening (test synchronisation).  [restarts] is
    reported in [health] replies (the supervisor passes its count).
    [Error] on a setup failure (bad address, bind); runtime exceptions
    propagate (see above).  The listen socket and every connection are
    closed on the way out, however the loop exits; the journal handle
    stays open (the caller owns it). *)
