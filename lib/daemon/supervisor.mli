(** Restart supervision for the serving loop.

    The server never catches its own exceptions: anything uncaught
    means the in-memory state is of unknown integrity, so the only safe
    continuation is the crash-recovery path — discard everything,
    replay the WAL, serve again.  The supervisor owns that loop:

    + call [load ()] for a fresh [(state, journal)] pair (a WAL replay,
      so every restart exercises exactly the code path a kill -9 +
      re-exec would);
    + run {!Server.serve};
    + on [Ok] (a graceful drain) or [should_stop], return;
    + on an exception: record it in the {!Dls_obs.Flight} ring, bump
      [daemon.restarts], close the journal, sleep a jittered
      exponential backoff (base 0.1 s, cap 5 s — crash loops must not
      spin), and go to 1 — up to [max_restarts] times, after which the
      last exception's message is returned as [Error]. *)

val run :
  ?should_stop:(unit -> bool) ->
  ?on_restart:(exn -> int -> unit) ->
  ?max_restarts:int ->
  ?backoff_base_s:float ->
  ?sleep:(float -> unit) ->
  Server.config ->
  load:(unit -> (State.t * Journal.t option, string) result) ->
  (unit, string) result
(** Supervise [Server.serve config] over states produced by [load].
    [on_restart exn n] fires after the [n]th crash, before the backoff
    sleep — the binary resets the {!Dls_obs.Obs} epoch there.
    [max_restarts] defaults to 100; [sleep] (default [Unix.sleepf]) and
    [backoff_base_s] (default 0.1) are test hooks.  A [load] failure is
    returned as [Error] immediately: a state that cannot be rebuilt
    from the WAL must never be served. *)
