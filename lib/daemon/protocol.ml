module J = Dls_util.Json
module Faults = Dls_flowsim.Faults

let ( let* ) = Result.bind

type mutation =
  | Register_app of { app : string; cluster : int; payoff : float }
  | Retire_app of { app : string }
  | Platform_delta of Faults.kind list

type request =
  | Mutate of mutation
  | Get_schedule of {
      objective : Dls_core.Lp_relax.objective;
      budget_ms : float option;
    }
  | Health
  | Drain
  | Crash

(* ------------------------------------------------------------------ *)
(* JSON codecs                                                         *)
(* ------------------------------------------------------------------ *)

let field name conv j =
  match J.member name j with
  | None -> Error (Printf.sprintf "request: missing field %S" name)
  | Some v -> conv v

let opt_field name conv j =
  match J.member name j with
  | None | Some J.Null -> Ok None
  | Some v ->
    let* v = conv v in
    Ok (Some v)

let mutation_to_json = function
  | Register_app { app; cluster; payoff } ->
    J.Obj
      [ ("op", J.Str "register_app"); ("app", J.Str app);
        ("cluster", J.Num (float_of_int cluster)); ("payoff", J.Num payoff) ]
  | Retire_app { app } ->
    J.Obj [ ("op", J.Str "retire_app"); ("app", J.Str app) ]
  | Platform_delta kinds ->
    J.Obj
      [ ("op", J.Str "platform_delta");
        ("events", J.Arr (List.map Faults.kind_to_json kinds)) ]

let mutation_of_json j =
  let* op = field "op" J.to_str j in
  match op with
  | "register_app" ->
    let* app = field "app" J.to_str j in
    let* cluster = field "cluster" J.to_int j in
    let* payoff = field "payoff" J.to_num j in
    Ok (Register_app { app; cluster; payoff })
  | "retire_app" ->
    let* app = field "app" J.to_str j in
    Ok (Retire_app { app })
  | "platform_delta" ->
    let* events = field "events" J.to_list j in
    let* kinds =
      List.fold_left
        (fun acc e ->
          let* acc = acc in
          let* k = Faults.kind_of_json e in
          Ok (k :: acc))
        (Ok []) events
    in
    Ok (Platform_delta (List.rev kinds))
  | other -> Error (Printf.sprintf "request: unknown mutation op %S" other)

let objective_name = function
  | Dls_core.Lp_relax.Sum -> "sum"
  | Dls_core.Lp_relax.Maxmin -> "maxmin"

let objective_of_name = function
  | "sum" -> Ok Dls_core.Lp_relax.Sum
  | "maxmin" -> Ok Dls_core.Lp_relax.Maxmin
  | other -> Error (Printf.sprintf "request: unknown objective %S" other)

let request_to_json = function
  | Mutate m -> mutation_to_json m
  | Get_schedule { objective; budget_ms } ->
    J.Obj
      (( [ ("op", J.Str "get_schedule");
           ("objective", J.Str (objective_name objective)) ]
       @ match budget_ms with
         | None -> []
         | Some b -> [ ("budget_ms", J.Num b) ] ))
  | Health -> J.Obj [ ("op", J.Str "health") ]
  | Drain -> J.Obj [ ("op", J.Str "drain") ]
  | Crash -> J.Obj [ ("op", J.Str "crash") ]

let request_of_json j =
  let* op = field "op" J.to_str j in
  match op with
  | "register_app" | "retire_app" | "platform_delta" ->
    let* m = mutation_of_json j in
    Ok (Mutate m)
  | "get_schedule" ->
    let* objective =
      match J.member "objective" j with
      | None | Some J.Null -> Ok Dls_core.Lp_relax.Maxmin
      | Some v ->
        let* name = J.to_str v in
        objective_of_name name
    in
    let* budget_ms = opt_field "budget_ms" J.to_num j in
    (match budget_ms with
    | Some b when not (b >= 0.0 && b < infinity) ->
      Error (Printf.sprintf "request: budget_ms %g not in [0, inf)" b)
    | _ -> Ok (Get_schedule { objective; budget_ms }))
  | "health" -> Ok Health
  | "drain" -> Ok Drain
  | "crash" -> Ok Crash
  | other -> Error (Printf.sprintf "request: unknown op %S" other)

(* ------------------------------------------------------------------ *)
(* Schedule replies                                                    *)
(* ------------------------------------------------------------------ *)

type schedule_reply = {
  sr_seq : int;
  sr_objective : float;
  sr_rung : string;
  sr_degraded : bool;
  sr_breaker : string;
  sr_alpha : (int * int * float) list;
  sr_beta : (int * int * int) list;
}

let schedule_reply_to_json r =
  let triple k l v = J.Arr [ J.Num (float_of_int k); J.Num (float_of_int l); v ] in
  J.Obj
    [ ("seq", J.Num (float_of_int r.sr_seq));
      ("objective", J.Num r.sr_objective); ("rung", J.Str r.sr_rung);
      ("degraded", J.Bool r.sr_degraded); ("breaker", J.Str r.sr_breaker);
      ( "alpha",
        J.Arr (List.map (fun (k, l, v) -> triple k l (J.Num v)) r.sr_alpha) );
      ( "beta",
        J.Arr
          (List.map
             (fun (k, l, n) -> triple k l (J.Num (float_of_int n)))
             r.sr_beta) ) ]

let triple_of_json conv j =
  match j with
  | J.Arr [ k; l; v ] ->
    let* k = J.to_int k in
    let* l = J.to_int l in
    let* v = conv v in
    Ok (k, l, v)
  | _ -> Error "schedule: entry is not a [k, l, value] triple"

let schedule_reply_of_json j =
  (* [seq] joined the reply with the batching layer; default 0 keeps
     pre-batching frames decodable. *)
  let* sr_seq =
    match J.member "seq" j with
    | None | Some J.Null -> Ok 0
    | Some v -> J.to_int v
  in
  let* sr_objective = field "objective" J.to_num j in
  let* sr_rung = field "rung" J.to_str j in
  let* sr_degraded = field "degraded" J.to_bool j in
  let* sr_breaker = field "breaker" J.to_str j in
  let entries name conv =
    let* l = field name J.to_list j in
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* t = triple_of_json conv e in
        Ok (t :: acc))
      (Ok []) l
    |> Result.map List.rev
  in
  let* sr_alpha = entries "alpha" J.to_num in
  let* sr_beta = entries "beta" J.to_int in
  Ok { sr_seq; sr_objective; sr_rung; sr_degraded; sr_breaker; sr_alpha;
       sr_beta }

let equal_schedule a b =
  a.sr_seq = b.sr_seq
  && a.sr_objective = b.sr_objective
  && a.sr_rung = b.sr_rung
  && a.sr_degraded = b.sr_degraded
  && a.sr_alpha = b.sr_alpha
  && a.sr_beta = b.sr_beta

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let max_frame = 4 * 1024 * 1024

let frame payload = Printf.sprintf "%d\n%s" (String.length payload) payload

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let split_frame ?(max_frame = max_frame) s =
  match String.index_opt s '\n' with
  | None ->
    (* The longest legal header is the digits of [max_frame]: anything
       longer can never become a valid frame. *)
    if String.length s > String.length (string_of_int max_frame) then
      `Bad "frame header too long"
    else `Incomplete
  | Some nl -> (
    let hdr = String.sub s 0 nl in
    if not (is_digits hdr) then `Bad (Printf.sprintf "bad frame header %S" hdr)
    else
      match int_of_string_opt hdr with
      | None -> `Bad (Printf.sprintf "bad frame header %S" hdr)
      | Some len when len > max_frame ->
        `Bad (Printf.sprintf "frame of %d bytes exceeds cap %d" len max_frame)
      | Some len ->
        if String.length s >= nl + 1 + len then
          `Frame (String.sub s (nl + 1) len, nl + 1 + len)
        else `Incomplete)

(* ------------------------------------------------------------------ *)
(* Blocking client-side IO                                             *)
(* ------------------------------------------------------------------ *)

let write_frame fd payload =
  let msg = frame payload in
  let rec go pos =
    if pos < String.length msg then
      let n = Unix.write_substring fd msg pos (String.length msg - pos) in
      if n > 0 then go (pos + n)
  in
  go 0

let read_frame ?(timeout = 10.0) ~buf fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout
   with Unix.Unix_error _ -> ());
  let chunk = Bytes.create 4096 in
  let rec go () =
    match split_frame (Buffer.contents buf) with
    | `Frame (payload, consumed) ->
      let rest = Buffer.contents buf in
      Buffer.clear buf;
      Buffer.add_substring buf rest consumed (String.length rest - consumed);
      Ok payload
    | `Bad reason -> Error ("bad frame: " ^ reason)
    | `Incomplete -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Error "connection closed mid-frame"
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Error "timeout waiting for reply"
      | exception Unix.Unix_error (e, _, _) ->
        Error ("read: " ^ Unix.error_message e))
  in
  go ()
