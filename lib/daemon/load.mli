(** Deterministic load generator for the allocation daemon.

    Drives a running {!Server} with a population of client threads,
    each on a persistent connection with its own [Prng.derive] stream
    — so the {e request sequence} (objective mix, think times,
    mutation payloads) is a pure function of [seed] and the client
    index, and two runs against equivalently-configured servers issue
    identical request mixes.  Used by [bench --daemon-load] to compare
    server configurations at equal offered load, and by the soak tests
    to assert aggregate invariants (zero wedged connections, bounded
    tail latency).

    Client 0 optionally doubles as a {e mutator}, interleaving
    warm-path [platform_delta] mutations (cluster throttles) every
    [mutate_every]-th request — exercising the resident warm-LP edit
    path under concurrent solve load. *)

type mode =
  | Closed  (** issue the next request as soon as the reply lands *)
  | Open_loop of float
      (** sleep an exponential think time (given mean, seconds) after
          each reply — a memoryless open-loop arrival process *)

type stats = {
  sent : int;  (** requests issued *)
  ok : int;  (** ["ok"] replies *)
  overloaded : int;  (** shed by admission control *)
  errors : int;  (** error replies, IO failures, timeouts *)
  mutations : int;  (** mutator requests among [sent] *)
  wall_s : float;  (** wall-clock from first spawn to last join *)
  latencies : float array;
      (** per-[ok]-reply round-trip seconds, sorted ascending *)
}

val run :
  ?mode:mode ->
  ?budget_ms:float ->
  ?timeout:float ->
  ?mutate_every:int ->
  addr:Dls_obs.Publish.addr ->
  seed:int ->
  clients:int ->
  duration_s:float ->
  k:int ->
  unit ->
  stats
(** Run [clients] threads against [addr] for [duration_s] seconds and
    return the merged stats.  [budget_ms] (default 2000) is the
    per-request solve deadline; [timeout] (default 10 s) bounds each
    reply wait; [mutate_every = 0] (default) disables the mutator.
    [k] is the platform's cluster count (bounds the mutator's random
    cluster picks).  A transient IO failure costs one [errors] count
    and a reconnect, not the rest of that client's run. *)

val percentile : float array -> float -> float
(** [percentile sorted p] with [p] in [[0,1]] by nearest-rank on a
    sorted array; [nan] when empty. *)

val rps : stats -> float
(** Sustained throughput: [ok / wall_s]. *)

val shed_rate : stats -> float
(** Fraction of issued requests answered [overloaded]. *)

val p50 : stats -> float

val p99 : stats -> float
(** Median / 99th-percentile round-trip latency in seconds ([nan] when
    no request succeeded). *)

val to_json : ?extra:(string * Dls_util.Json.t) list -> stats -> Dls_util.Json.t
(** One JSON object with the derived figures ([rps], [shed_rate],
    [p50_ms], [p99_ms]) alongside the raw counters; [extra] fields are
    appended (the bench labels series points with mode/workers). *)
