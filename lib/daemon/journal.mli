(** Write-ahead journal of accepted daemon mutations.

    Built on {!Dls_util.Wal} (the same append-only JSONL +
    torn-tail-truncation + atomic-manifest machinery the campaign
    Engine uses), specialised to {!Protocol.mutation} records:

    - Each accepted mutation is appended as one JSON line
      [{"seq":N,...mutation...}] and flushed before the client sees its
      reply, so {e acknowledged implies journaled}: a [kill -9]
      anywhere afterwards replays to a state containing it.
    - Sequence numbers must be dense (0, 1, 2, ...); a gap or disorder
      means the file was damaged in the middle and the journal refuses
      to open rather than silently reconstructing a different state.
    - A manifest at [path ^ ".manifest"] pins the nominal platform's
      fingerprint; opening a journal against a different platform is
      refused (the WAL encodes deltas relative to that platform).
    - A torn final line (the kill landed mid-append) is dropped and the
      file truncated back to the valid prefix, exactly as the Engine
      does for campaign logs. *)

type t

val open_ :
  path:string ->
  platform:Dls_platform.Platform.t ->
  (State.t * t, string) result
(** Open (creating if absent) the journal at [path], replay every valid
    record into a fresh {!State.t} for [platform], truncate any torn
    tail, and return the recovered state plus the handle for appends.
    [Error] on a corrupt non-tail record, a sequence gap, a manifest
    fingerprint mismatch, or a mutation the state rejects on replay
    (all of which mean the journal does not belong to this daemon). *)

val append : t -> Protocol.mutation -> unit
(** Journal one {e already validated and applied} mutation: append the
    record, flush, and atomically refresh the manifest.  Call only
    after {!State.apply} returned [Ok]. *)

val entries : t -> int
(** Records journaled so far (replayed + appended). *)

val close : t -> unit

val manifest_path : string -> string
(** [path ^ ".manifest"]. *)
