module J = Dls_util.Json
module Allocation = Dls_core.Allocation
module M = Dls_obs.Metrics
module Olog = Dls_obs.Log
module Flight = Dls_obs.Flight

exception Crash_requested

type config = {
  addr : Dls_obs.Publish.addr;
  queue_cap : int;
  max_conns : int;
  conn_timeout : float;
  default_budget_s : float;
  max_requests_per_tick : int;
  breaker_threshold : int;
  breaker_base_backoff_s : float;
  seed : int;
  allow_crash : bool;
  workers : int;  (* solver domains; 0 = solve on the event loop *)
  resident : bool;  (* keep warm LP handles across requests *)
  coalesce : bool;  (* batch same-seq get_schedule requests *)
}

let default_config addr =
  {
    addr;
    queue_cap = 64;
    max_conns = 64;
    conn_timeout = 10.0;
    default_budget_s = 0.5;
    max_requests_per_tick = 8;
    breaker_threshold = 3;
    breaker_base_backoff_s = 1.0;
    seed = 0;
    allow_crash = false;
    workers = 0;
    resident = true;
    coalesce = true;
  }

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable out : string;  (* pending outbound bytes *)
  mutable last : float;  (* last successful read/write, for the reaper *)
  mutable closing : bool;  (* close once [out] is flushed *)
  mutable alive : bool;
}

type stats = {
  mutable requests : int;
  mutable mutations : int;
  mutable schedules : int;
  mutable shed : int;
  mutable degraded : int;
  mutable reaped : int;
  mutable errors : int;
  mutable conns_shed : int;
  mutable solves : int;  (* ladder solves actually executed *)
  mutable coalesced : int;  (* get_schedule requests that joined a batch *)
}

(* A batch is one solve serving every get_schedule request admitted at
   the same state seq (and objective).  The problem is snapshotted at
   batch creation so a delta arriving before the batch is dispatched
   cannot leak into it: the batch still answers for the state its
   waiters asked about, stamped with [b_seq]. *)
type batch = {
  b_seq : int;
  b_objective : Dls_core.Lp_relax.objective;
  b_problem : Dls_core.Problem.t;
  mutable b_budget_s : float;  (* max budget among waiters *)
  mutable b_waiters : (conn * float) list;  (* (conn, admit time), newest first *)
}

type job =
  | J_edit of State.capacity_edit list option
      (* resident update for one accepted mutation; pinned to worker 0 *)
  | J_solve of {
      batch : batch;
      warm : bool;  (* solve from the resident handle (pinned) *)
      budget_s : float;
      base : Allocation.t;
    }

type job_result =
  | R_edit
  | R_solve of batch * bool (* pinned *) * (Solver.outcome, string) result

(* Registry mirrors of [stats] — health replies read the local ints
   (always live), the registry exposes the same counts through
   --telemetry/--metrics when enabled. *)
let m_requests = M.counter "daemon.requests"
let m_mutations = M.counter "daemon.mutations"
let m_schedules = M.counter "daemon.schedules"
let m_shed = M.counter "daemon.shed"
let m_degraded = M.counter "daemon.degraded"
let m_reaped = M.counter "daemon.reaped"
let m_errors = M.counter "daemon.errors"
let m_conns_shed = M.counter "daemon.conns.shed"
let m_queue_depth = M.gauge "daemon.queue.depth"
let m_conns = M.gauge "daemon.conns"
let m_request_s = M.histogram "daemon.request.seconds"
let m_solves = M.counter "daemon.solves"
let m_coalesced = M.counter "daemon.coalesced"

let validate config =
  if config.queue_cap < 1 then Error "daemon: queue_cap must be >= 1"
  else if config.max_conns < 1 then Error "daemon: max_conns must be >= 1"
  else if not (config.conn_timeout > 0.0) then
    Error "daemon: conn_timeout must be > 0"
  else if not (config.default_budget_s >= 0.0) then
    Error "daemon: default_budget_s must be >= 0"
  else if config.max_requests_per_tick < 1 then
    Error "daemon: max_requests_per_tick must be >= 1"
  else if config.workers < 0 || config.workers > 128 then
    Error "daemon: workers must be in [0, 128]"
  else Ok ()

let bind_listen addr =
  match addr with
  | Dls_obs.Publish.Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
        | _ -> raise (Unix.Unix_error (Unix.EINVAL, "getaddrinfo", host)))
    in
    let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt s Unix.SO_REUSEADDR true;
    Unix.bind s (Unix.ADDR_INET (ip, port));
    (s, fun () -> ())
  | Dls_obs.Publish.Unix_sock path ->
    (* A previous crash leaves the socket file behind; rebinding over it
       is the restart path. *)
    if Sys.file_exists path then Sys.remove path;
    let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind s (Unix.ADDR_UNIX path);
    (s, fun () -> try Sys.remove path with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)
(* ------------------------------------------------------------------ *)

let send conn j =
  if conn.alive then conn.out <- conn.out ^ Protocol.frame (J.to_string j)

let ok_fields op fields = J.Obj (("status", J.Str "ok") :: ("op", J.Str op) :: fields)

let error_reply msg = J.Obj [ ("status", J.Str "error"); ("error", J.Str msg) ]

let overloaded_reply ~retry_after_ms =
  J.Obj
    [ ("status", J.Str "overloaded"); ("retry_after_ms", J.Num retry_after_ms) ]

let schedule_entries alloc =
  let kk = Array.length alloc.Allocation.alpha in
  let alpha = ref [] and beta = ref [] in
  for k = kk - 1 downto 0 do
    for l = kk - 1 downto 0 do
      if alloc.Allocation.alpha.(k).(l) > 0.0 then
        alpha := (k, l, alloc.Allocation.alpha.(k).(l)) :: !alpha;
      if alloc.Allocation.beta.(k).(l) > 0 then
        beta := (k, l, alloc.Allocation.beta.(k).(l)) :: !beta
    done
  done;
  (!alpha, !beta)

(* ------------------------------------------------------------------ *)
(* The loop                                                            *)
(* ------------------------------------------------------------------ *)

let serve ?(should_stop = fun () -> false) ?(on_ready = fun () -> ())
    ?(restarts = 0) config state journal =
  match validate config with
  | Error _ as e -> e
  | Ok () ->
    let listen_fd, cleanup =
      try
        let fd, cleanup = bind_listen config.addr in
        Unix.listen fd 16;
        Unix.set_nonblock fd;
        (fd, cleanup)
      with Unix.Unix_error (e, fn, arg) ->
        raise
          (Failure
             (Printf.sprintf "daemon: cannot listen on %s: %s(%s): %s"
                (Dls_obs.Publish.addr_to_string config.addr)
                fn arg (Unix.error_message e)))
    in
    let breaker =
      Solver.breaker ~threshold:config.breaker_threshold
        ~base_backoff_s:config.breaker_base_backoff_s ~seed:config.seed ()
    in
    let stats =
      { requests = 0; mutations = 0; schedules = 0; shed = 0; degraded = 0;
        reaped = 0; errors = 0; conns_shed = 0; solves = 0; coalesced = 0 }
    in
    let conns : conn list ref = ref [] in
    let queue : (conn * Protocol.request) Queue.t = Queue.create () in
    let t_start = Unix.gettimeofday () in
    let accepting = ref true in
    let draining = ref false in
    let running = ref true in
    (* Cached last-good allocation, stamped with the seq it was computed
       against: the warm base the rescale/refine rungs repair.  Kept
       across platform deltas (that is the repair scenario), dropped
       when the application set changes (the cached matrix may ship
       work for a retired application).  The stamp keeps a slow stale
       batch from clobbering a fresher result. *)
    let cached : (int * Allocation.t) option ref = ref None in
    (* Resident warm LP handles.  With workers, the resident is owned
       by worker 0 and every edit/warm-solve reaches it through the
       pool's pinned FIFO; inline, the event loop owns it. *)
    let resident =
      if config.resident then Some (Solver.resident ()) else None
    in
    (* Batching: one pending batch per (state seq, objective) collects
       every same-seq get_schedule until it is dispatched; its one
       solve fans out to all waiters.  A waiter can only join a batch
       that has not been dispatched yet — once a job is submitted, its
       batch record crosses a domain boundary and only the event loop
       keeps touching the waiter list, which the worker never reads. *)
    let pending : batch Queue.t = Queue.create () in
    let in_flight = ref 0 in
    let pinned_in_flight = ref 0 in
    let run ~worker:_ job =
      match job with
      | J_edit e ->
        (match resident with
        | Some r -> Solver.resident_apply r e
        | None -> ());
        R_edit
      | J_solve { batch; warm; budget_s; base } ->
        let res =
          try
            Solver.solve
              ?resident:(if warm then resident else None)
              ~breaker ~objective:batch.b_objective ~budget_s ~base
              batch.b_problem
          with exn -> Error ("solve: " ^ Printexc.to_string exn)
        in
        R_solve (batch, warm, res)
    in
    let pool =
      if config.workers > 0 then Some (Pool.create ~workers:config.workers ~run)
      else None
    in
    let close_conn c =
      if c.alive then begin
        c.alive <- false;
        conns := List.filter (fun c' -> c' != c) !conns;
        try Unix.close c.fd with Unix.Unix_error _ -> ()
      end
    in
    (* Deliver one finished batch solve to every still-live waiter. *)
    let complete_batch b result =
      let now = Unix.gettimeofday () in
      let waiters = List.rev b.b_waiters in
      stats.solves <- stats.solves + 1;
      M.incr m_solves;
      match result with
      | Ok outcome ->
        (match !cached with
        | Some (s, _) when s > b.b_seq -> ()
        | _ -> cached := Some (b.b_seq, outcome.Solver.allocation));
        let alpha, beta = schedule_entries outcome.Solver.allocation in
        let sr =
          {
            Protocol.sr_seq = b.b_seq;
            sr_objective = outcome.Solver.objective_value;
            sr_rung = Solver.rung_name outcome.Solver.rung;
            sr_degraded = outcome.Solver.degraded;
            sr_breaker =
              Solver.breaker_state_name (Solver.breaker_state breaker ~now);
            sr_alpha = alpha;
            sr_beta = beta;
          }
        in
        let attempts =
          J.Arr
            (List.map
               (fun (a : Solver.attempt) ->
                 J.Obj
                   [ ("rung", J.Str (Solver.rung_name a.Solver.a_rung));
                     ("seconds", J.Num a.Solver.a_seconds);
                     ("within_budget", J.Bool a.Solver.a_within_budget);
                     ("feasible", J.Bool a.Solver.a_feasible);
                     ("objective", J.Num a.Solver.a_objective) ])
               outcome.Solver.attempts)
        in
        let skipped =
          J.Arr
            (List.map
               (fun r -> J.Str (Solver.rung_name r))
               outcome.Solver.skipped)
        in
        let reply =
          match Protocol.schedule_reply_to_json sr with
          | J.Obj fields ->
            ok_fields "get_schedule"
              (fields @ [ ("attempts", attempts); ("skipped", skipped) ])
          | j -> j
        in
        List.iter
          (fun (c, t0) ->
            if c.alive then begin
              stats.schedules <- stats.schedules + 1;
              M.incr m_schedules;
              if outcome.Solver.degraded then begin
                stats.degraded <- stats.degraded + 1;
                M.incr m_degraded
              end;
              send c reply;
              M.observe m_request_s (now -. t0)
            end)
          waiters
      | Error msg ->
        List.iter
          (fun (c, t0) ->
            if c.alive then begin
              stats.errors <- stats.errors + 1;
              M.incr m_errors;
              send c (error_reply msg);
              M.observe m_request_s (now -. t0)
            end)
          waiters
    in
    let handle_request c req =
      let t0 = Unix.gettimeofday () in
      stats.requests <- stats.requests + 1;
      M.incr m_requests;
      (match req with
      | Protocol.Mutate m -> (
        match State.apply state m with
        | Ok () ->
          Option.iter (fun j -> Journal.append j m) journal;
          (match m with
          | Protocol.Register_app _ | Protocol.Retire_app _ -> cached := None
          | Protocol.Platform_delta _ -> ());
          (* Keep the resident handles in step with the state: capacity
             deltas become RHS edits, structural mutations invalidate.
             With workers this goes through the pinned FIFO, so edits
             and warm solves reach worker 0 in mutation order. *)
          (match resident with
          | None -> ()
          | Some r -> (
            let edits = State.warm_edits state m in
            match pool with
            | Some p -> Pool.submit ~pinned:true p (J_edit edits)
            | None -> Solver.resident_apply r edits));
          stats.mutations <- stats.mutations + 1;
          M.incr m_mutations;
          send c
            (ok_fields "mutate"
               [ ("seq", J.Num (float_of_int (State.seq state))) ])
        | Error msg ->
          stats.errors <- stats.errors + 1;
          M.incr m_errors;
          send c (error_reply msg))
      | Protocol.Get_schedule { objective; budget_ms } ->
        let budget_s =
          match budget_ms with
          | Some ms -> ms /. 1000.0
          | None -> config.default_budget_s
        in
        let seq = State.seq state in
        let joined =
          config.coalesce
          && Queue.fold
               (fun hit b ->
                 hit
                 ||
                 if b.b_seq = seq && b.b_objective = objective then begin
                   b.b_budget_s <- Float.max b.b_budget_s budget_s;
                   b.b_waiters <- (c, t0) :: b.b_waiters;
                   stats.coalesced <- stats.coalesced + 1;
                   M.incr m_coalesced;
                   true
                 end
                 else false)
               false pending
        in
        if not joined then
          Queue.push
            {
              b_seq = seq;
              b_objective = objective;
              b_problem = State.problem state;
              b_budget_s = budget_s;
              b_waiters = [ (c, t0) ];
            }
            pending
      | Protocol.Health ->
        send c
          (ok_fields "health"
             [ ("uptime_s", J.Num (Unix.gettimeofday () -. t_start));
               ("apps", J.Num (float_of_int (List.length (State.apps state))));
               ( "deltas",
                 J.Num (float_of_int (List.length (State.deltas state))) );
               ( "wal_entries",
                 J.Num
                   (float_of_int
                      (match journal with
                      | Some j -> Journal.entries j
                      | None -> 0)) );
               ("queue_depth", J.Num (float_of_int (Queue.length queue)));
               ("queue_cap", J.Num (float_of_int config.queue_cap));
               ("conns", J.Num (float_of_int (List.length !conns)));
               ("requests", J.Num (float_of_int stats.requests));
               ("mutations", J.Num (float_of_int stats.mutations));
               ("schedules", J.Num (float_of_int stats.schedules));
               ("shed", J.Num (float_of_int stats.shed));
               ("degraded", J.Num (float_of_int stats.degraded));
               ("reaped", J.Num (float_of_int stats.reaped));
               ("errors", J.Num (float_of_int stats.errors));
               ("conns_shed", J.Num (float_of_int stats.conns_shed));
               ("solves", J.Num (float_of_int stats.solves));
               ("coalesced", J.Num (float_of_int stats.coalesced));
               ("workers", J.Num (float_of_int config.workers));
               ("pending_batches", J.Num (float_of_int (Queue.length pending)));
               ("inflight_solves", J.Num (float_of_int !in_flight));
               ( "warm_hits",
                 J.Num
                   (float_of_int
                      (match resident with
                      | Some r ->
                        let w, _, _ = Solver.resident_stats r in
                        w
                      | None -> 0)) );
               ( "rebuilds",
                 J.Num
                   (float_of_int
                      (match resident with
                      | Some r ->
                        let _, rb, _ = Solver.resident_stats r in
                        rb
                      | None -> 0)) );
               ("restarts", J.Num (float_of_int restarts));
               ( "breaker",
                 J.Str
                   (Solver.breaker_state_name
                      (Solver.breaker_state breaker
                         ~now:(Unix.gettimeofday ()))) );
               ( "breaker_trips",
                 J.Num (float_of_int (Solver.breaker_trips breaker)) );
               ("draining", J.Bool !draining) ])
      | Protocol.Drain ->
        draining := true;
        if !accepting then begin
          accepting := false;
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          cleanup ()
        end;
        if Olog.enabled Olog.Info then Olog.info "daemon.drain" ~fields:[];
        send c (ok_fields "drain" [])
      | Protocol.Crash ->
        if config.allow_crash then begin
          Flight.record ~kind:"daemon" "crash requested";
          raise Crash_requested
        end
        else begin
          stats.errors <- stats.errors + 1;
          M.incr m_errors;
          send c (error_reply "crash: not enabled on this server")
        end);
      match req with
      | Protocol.Get_schedule _ -> ()  (* observed at batch completion *)
      | _ -> M.observe m_request_s (Unix.gettimeofday () -. t0)
    in
    let admit c req =
      if Queue.length queue >= config.queue_cap then begin
        stats.shed <- stats.shed + 1;
        M.incr m_shed;
        send c
          (overloaded_reply
             ~retry_after_ms:
               (20.0 *. float_of_int (Queue.length queue)))
      end
      else Queue.push (c, req) queue
    in
    let feed c =
      (* Extract every complete frame buffered on the connection. *)
      let continue = ref true in
      while !continue && c.alive do
        match Protocol.split_frame (Buffer.contents c.inbuf) with
        | `Incomplete -> continue := false
        | `Bad reason ->
          stats.errors <- stats.errors + 1;
          M.incr m_errors;
          send c (error_reply ("protocol: " ^ reason));
          c.closing <- true;
          continue := false
        | `Frame (payload, consumed) -> (
          let rest = Buffer.contents c.inbuf in
          Buffer.clear c.inbuf;
          Buffer.add_substring c.inbuf rest consumed
            (String.length rest - consumed);
          match
            Result.bind (J.of_string payload) Protocol.request_of_json
          with
          | Ok req -> admit c req
          | Error msg ->
            stats.errors <- stats.errors + 1;
            M.incr m_errors;
            send c (error_reply msg);
            c.closing <- true;
            continue := false)
      done
    in
    let read_chunk = Bytes.create 4096 in
    let do_read c =
      match Unix.read c.fd read_chunk 0 (Bytes.length read_chunk) with
      | 0 -> close_conn c  (* peer closed (possibly abandoning replies) *)
      | n ->
        Buffer.add_subbytes c.inbuf read_chunk 0 n;
        c.last <- Unix.gettimeofday ();
        feed c
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error _ -> close_conn c
    in
    let do_write c =
      if c.out <> "" then (
        match Unix.write_substring c.fd c.out 0 (String.length c.out) with
        | n ->
          c.out <- String.sub c.out n (String.length c.out - n);
          c.last <- Unix.gettimeofday ();
          if c.out = "" && c.closing then close_conn c
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
          ()
        | exception Unix.Unix_error _ -> close_conn c)
      else if c.closing then close_conn c
    in
    let do_accept () =
      let continue = ref true in
      while !continue do
        match Unix.accept listen_fd with
        | fd, _ ->
          if List.length !conns >= config.max_conns then begin
            stats.conns_shed <- stats.conns_shed + 1;
            M.incr m_conns_shed;
            (* Best-effort shed notice; the socket is closed either way. *)
            (try
               let notice =
                 Protocol.frame
                   (J.to_string (overloaded_reply ~retry_after_ms:200.0))
               in
               ignore
                 (Unix.write_substring fd notice 0 (String.length notice))
             with Unix.Unix_error _ -> ());
            try Unix.close fd with Unix.Unix_error _ -> ()
          end
          else begin
            Unix.set_nonblock fd;
            conns :=
              { fd; inbuf = Buffer.create 256; out = ""; closing = false;
                last = Unix.gettimeofday (); alive = true }
              :: !conns
          end
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
          continue := false
        | exception Unix.Unix_error _ -> continue := false
      done
    in
    let reap now =
      List.iter
        (fun c ->
          if now -. c.last > config.conn_timeout then begin
            stats.reaped <- stats.reaped + 1;
            M.incr m_reaped;
            if Olog.enabled Olog.Debug then
              Olog.debug "daemon.conn.reaped" ~fields:[];
            close_conn c
          end)
        !conns
    in
    on_ready ();
    if Olog.enabled Olog.Info then
      Olog.info "daemon.serving"
        ~fields:
          [ ("addr", Olog.Str (Dls_obs.Publish.addr_to_string config.addr));
            ("restarts", Olog.Int restarts) ];
    (* Dispatch pending batches: inline when there is no pool (the
       batch solves on the event loop, end of tick), otherwise submit
       up to the worker count and let completions come back through
       the self-pipe.  A batch is warm only if its seq is still
       current — a stale batch (delta arrived while it waited) solves
       cold against its problem snapshot, so it can never read resident
       state that is ahead of it. *)
    let base_for b =
      match !cached with
      | Some (_, a) -> Allocation.copy a
      | None ->
        Allocation.zero (Dls_core.Problem.num_clusters b.b_problem)
    in
    let dispatch () =
      match pool with
      | None ->
        while not (Queue.is_empty pending) do
          let b = Queue.pop pending in
          let warm = resident <> None && b.b_seq = State.seq state in
          match
            run ~worker:0
              (J_solve
                 { batch = b; warm; budget_s = b.b_budget_s;
                   base = base_for b })
          with
          | R_solve (b, _, r) -> complete_batch b r
          | R_edit -> ()
        done
      | Some p ->
        (* Warm solves serialize on worker 0's FIFO, so while one is in
           flight a later warm batch stays pending — and joinable — and
           every request arriving during the solve window coalesces
           into it instead of queueing behind the pin as a singleton.
           Cold (stale-seq) batches fan out to any free worker. *)
        let keep = Queue.create () in
        while not (Queue.is_empty pending) do
          let b = Queue.pop pending in
          let warm = resident <> None && b.b_seq = State.seq state in
          if !in_flight >= config.workers || (warm && !pinned_in_flight > 0)
          then Queue.push b keep
          else begin
            Pool.submit ~pinned:warm p
              (J_solve
                 { batch = b; warm; budget_s = b.b_budget_s;
                   base = base_for b });
            incr in_flight;
            if warm then incr pinned_in_flight
          end
        done;
        Queue.transfer keep pending
    in
    let drain_pool () =
      match pool with
      | None -> ()
      | Some p ->
        List.iter
          (function
            | R_edit -> ()
            | R_solve (b, pinned, r) ->
              decr in_flight;
              if pinned then decr pinned_in_flight;
              complete_batch b r)
          (Pool.drain p)
    in
    Fun.protect
      ~finally:(fun () ->
        (match pool with Some p -> Pool.shutdown p | None -> ());
        List.iter (fun c -> close_conn c) !conns;
        if !accepting then begin
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          cleanup ()
        end)
      (fun () ->
        while !running do
          let reads =
            (if !accepting then [ listen_fd ] else [])
            @ (match pool with Some p -> [ Pool.wake_fd p ] | None -> [])
            @ List.map (fun c -> c.fd) !conns
          in
          let writes =
            List.filter_map
              (fun c -> if c.out <> "" then Some c.fd else None)
              !conns
          in
          (match Unix.select reads writes [] 0.05 with
          | rs, ws, _ ->
            drain_pool ();
            if !accepting && List.memq listen_fd rs then do_accept ();
            List.iter
              (fun c -> if c.alive && List.memq c.fd rs then do_read c)
              !conns;
            let budget = ref config.max_requests_per_tick in
            while !budget > 0 && not (Queue.is_empty queue) do
              decr budget;
              let c, req = Queue.pop queue in
              if c.alive then handle_request c req
            done;
            dispatch ();
            List.iter
              (fun c -> if c.alive && (List.memq c.fd ws || c.out <> "") then do_write c)
              !conns
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          reap (Unix.gettimeofday ());
          M.set m_queue_depth (float_of_int (Queue.length queue));
          M.set m_conns (float_of_int (List.length !conns));
          if should_stop () then running := false;
          if
            !draining
            && Queue.is_empty queue
            && Queue.is_empty pending
            && !in_flight = 0
            && List.for_all (fun c -> c.out = "") !conns
          then running := false
        done);
    Ok ()
