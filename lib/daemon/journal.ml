module J = Dls_util.Json
module Wal = Dls_util.Wal

let ( let* ) = Result.bind

type t = {
  path : string;
  oc : out_channel;
  fingerprint : string;
  mutable seq : int;  (* next sequence number to append *)
}

let manifest_path path = path ^ ".manifest"

let record_to_line ~seq m =
  match Protocol.mutation_to_json m with
  | J.Obj fields ->
    J.to_string (J.Obj (("seq", J.Num (float_of_int seq)) :: fields))
  | j -> J.to_string j

let record_of_line line =
  let* j = J.of_string line in
  let* seq =
    match J.member "seq" j with
    | None -> Error "journal record: missing seq"
    | Some v -> J.to_int v
  in
  let* m = Protocol.mutation_of_json j in
  Ok (seq, m)

let manifest_to_string ~fingerprint ~entries =
  J.to_string
    (J.Obj
       [ ("daemon_wal", J.Num 1.0); ("platform", J.Str fingerprint);
         ("entries", J.Num (float_of_int entries)) ])
  ^ "\n"

let check_manifest ~path ~fingerprint =
  let mpath = manifest_path path in
  if not (Sys.file_exists mpath) then Ok ()
  else
    let content = In_channel.with_open_bin mpath In_channel.input_all in
    let* j =
      Result.map_error
        (fun e -> Printf.sprintf "%s: %s" mpath e)
        (J.of_string (String.trim content))
    in
    let* recorded =
      match J.member "platform" j with
      | None -> Error (mpath ^ ": missing platform fingerprint")
      | Some v -> J.to_str v
    in
    if recorded <> fingerprint then
      Error
        (Printf.sprintf
           "%s: journal belongs to a different platform (%s, expected %s)"
           mpath recorded fingerprint)
    else Ok ()

let write_manifest t =
  Wal.write_atomic ~path:(manifest_path t.path)
    (manifest_to_string ~fingerprint:t.fingerprint ~entries:t.seq)

let open_ ~path ~platform =
  let state = State.create platform in
  let fingerprint = State.fingerprint state in
  let* () = check_manifest ~path ~fingerprint in
  let* replayed =
    if Sys.file_exists path then begin
      let* entries, valid_len = Wal.load ~of_line:record_of_line ~path in
      let dropped = Wal.truncate_torn ~path ~valid_len in
      if dropped > 0 then
        Logs.warn (fun m ->
            m "daemon journal: dropping %d torn trailing bytes of %s" dropped
              path);
      Ok entries
    end
    else Ok []
  in
  let* () =
    List.fold_left
      (fun acc (seq, m) ->
        let* () = acc in
        if seq <> State.seq state then
          Error
            (Printf.sprintf
               "%s: journal sequence gap (record %d where %d expected)" path
               seq (State.seq state))
        else
          Result.map_error
            (fun e ->
              Printf.sprintf "%s: replayed mutation %d rejected: %s" path seq
                e)
            (State.apply state m))
      (Ok ()) replayed
  in
  let t = { path; oc = Wal.open_append ~path; fingerprint; seq = State.seq state } in
  write_manifest t;
  Ok (state, t)

let append t m =
  Wal.append_line t.oc (record_to_line ~seq:t.seq m);
  t.seq <- t.seq + 1;
  write_manifest t

let entries t = t.seq

let close t = close_out_noerr t.oc
