module Repair = Dls_core.Repair
module Heuristics = Dls_core.Heuristics
module Allocation = Dls_core.Allocation
module Problem = Dls_core.Problem
module Prng = Dls_util.Prng
module M = Dls_obs.Metrics
module Olog = Dls_obs.Log

type rung = Rescale | Refine | Resolve_lp | Resolve_greedy

let rung_name = function
  | Rescale -> "rescale"
  | Refine -> "refine"
  | Resolve_lp -> "resolve_lp"
  | Resolve_greedy -> "resolve_greedy"

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)
(* ------------------------------------------------------------------ *)

type breaker_state = Closed | Open | Half_open

let breaker_state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type breaker = {
  threshold : int;
  base_backoff : float;
  max_backoff : float;
  rng : Prng.t;
  lock : Mutex.t;
      (* solves may run on worker domains; every state transition holds
         the lock so the event loop's health reads and a worker's
         failure notes never race *)
  mutable failures : int;  (* consecutive Resolve-LP failures *)
  mutable reopens : int;  (* opens since the last close — backoff exponent *)
  mutable trips : int;  (* total opens, for metrics *)
  mutable open_until : float;
  mutable st : breaker_state;
}

let m_trips = M.counter "daemon.breaker.trips"

let breaker ?(threshold = 3) ?(base_backoff_s = 1.0) ?(max_backoff_s = 60.0)
    ?(seed = 0) () =
  if threshold < 1 then invalid_arg "Solver.breaker: threshold must be >= 1";
  if not (base_backoff_s > 0.0 && max_backoff_s >= base_backoff_s) then
    invalid_arg "Solver.breaker: backoffs must satisfy 0 < base <= max";
  {
    threshold;
    base_backoff = base_backoff_s;
    max_backoff = max_backoff_s;
    rng = Prng.derive ~seed ~index:0;
    lock = Mutex.create ();
    failures = 0;
    reopens = 0;
    trips = 0;
    open_until = 0.0;
    st = Closed;
  }

let locked b f =
  Mutex.lock b.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock b.lock) f

let breaker_state_unlocked b ~now =
  (match b.st with
  | Open when now >= b.open_until -> b.st <- Half_open
  | _ -> ());
  b.st

let breaker_state b ~now = locked b (fun () -> breaker_state_unlocked b ~now)

let breaker_trips b = locked b (fun () -> b.trips)

let trip b ~now =
  (* Exponential backoff with multiplicative jitter in [1, 1.5]: the
     jitter decorrelates probe times across daemons recovering from the
     same platform-wide incident. *)
  let backoff =
    Float.min b.max_backoff
      (b.base_backoff *. Float.pow 2.0 (float_of_int b.reopens))
    *. (1.0 +. Prng.float b.rng ~lo:0.0 ~hi:0.5)
  in
  b.open_until <- now +. backoff;
  b.reopens <- b.reopens + 1;
  b.trips <- b.trips + 1;
  b.st <- Open;
  M.incr m_trips;
  if Olog.enabled Olog.Warn then
    Olog.warn "daemon.breaker.open"
      ~fields:
        [ ("failures", Olog.Int b.failures); ("backoff_s", Olog.Float backoff) ]

let note_lp_failure b ~now =
  locked b (fun () ->
      b.failures <- b.failures + 1;
      match breaker_state_unlocked b ~now with
      | Half_open -> trip b ~now  (* failed probe: straight back open *)
      | Closed when b.failures >= b.threshold -> trip b ~now
      | Closed | Open -> ())

let note_lp_success b =
  locked b (fun () ->
      b.failures <- 0;
      b.reopens <- 0;
      b.st <- Closed)

(* ------------------------------------------------------------------ *)
(* Resident warm LP handle                                             *)
(* ------------------------------------------------------------------ *)

module Lp_relax = Dls_core.Lp_relax
module Lpr = Dls_core.Lpr
module Residual = Dls_core.Residual
module Greedy = Dls_core.Greedy

(* One warm simplex state per objective, kept alive across requests.
   The breaker deliberately lives *outside* this record: handle
   rebuilds (structural mutations, failed warm solves) must never
   reset the breaker's failure history or its open/half-open cycle.

   Not internally synchronized — the server confines each resident to
   a single owner (the event loop, or the pinned warm worker), and the
   FIFO edit/solve discipline there makes the handle's history a pure
   function of the mutation log. *)
type resident = {
  r_backend : Dls_lp.Backend.t option;
  mutable r_handles : (Lp_relax.objective * Lp_relax.Incremental.handle) list;
  mutable r_warm_hits : int;
  mutable r_rebuilds : int;
  mutable r_edits : int;
}

let m_warm_hits = M.counter "daemon.warm_hits"
let m_rebuilds = M.counter "daemon.rebuilds"

let resident ?backend () =
  { r_backend = backend; r_handles = []; r_warm_hits = 0; r_rebuilds = 0;
    r_edits = 0 }

let resident_invalidate r = r.r_handles <- []

let resident_edit r (edits : State.capacity_edit list) =
  List.iter
    (fun (_, h) ->
      List.iter
        (function
          | State.Set_speed (c, v) ->
            Lp_relax.Incremental.set_speed h ~cluster:c v
          | State.Set_local_bw (c, v) ->
            Lp_relax.Incremental.set_local_bw h ~cluster:c v
          | State.Set_link_cap (l, n) ->
            Lp_relax.Incremental.set_max_connect h ~link:l n)
        edits)
    r.r_handles;
  r.r_edits <- r.r_edits + List.length edits

let resident_apply r = function
  | Some edits -> resident_edit r edits
  | None -> resident_invalidate r

let resident_stats r = (r.r_warm_hits, r.r_rebuilds, r.r_edits)

let resident_pivots r =
  List.fold_left
    (fun acc (_, h) ->
      acc + (Lp_relax.Incremental.counters h).Dls_lp.Revised_simplex.pivots)
    0 r.r_handles

(* The warm Resolve-LP rung: the resident handle's relaxation solution
   fed through the same round-down + greedy-refine pipeline as the cold
   LPRG path.  A failed warm solve drops the handle (the carried basis
   may be poisoned) and falls back to the objective-free greedy, like
   the cold rung does. *)
let warm_resolve r ~objective problem =
  let h =
    match List.assoc_opt objective r.r_handles with
    | Some h ->
      r.r_warm_hits <- r.r_warm_hits + 1;
      M.incr m_warm_hits;
      h
    | None ->
      let h =
        Lp_relax.Incremental.create ~objective ?backend:r.r_backend problem
      in
      r.r_handles <- (objective, h) :: r.r_handles;
      r.r_rebuilds <- r.r_rebuilds + 1;
      M.incr m_rebuilds;
      h
  in
  match Lp_relax.Incremental.solve h with
  | Lp_relax.Solution sol ->
    let rounded = Lpr.round_down problem sol in
    let residual =
      Residual.of_allocation (Problem.platform problem) rounded
    in
    Ok (Greedy.refine problem residual rounded)
  | Lp_relax.Failed _ ->
    r.r_handles <- List.remove_assoc objective r.r_handles;
    Repair.run_stage ~objective ~heuristic:Heuristics.G Repair.Resolve
      problem (Allocation.zero (Problem.num_clusters problem))

(* ------------------------------------------------------------------ *)
(* The ladder                                                          *)
(* ------------------------------------------------------------------ *)

type attempt = {
  a_rung : rung;
  a_seconds : float;
  a_within_budget : bool;
  a_feasible : bool;
  a_objective : float;
}

type outcome = {
  allocation : Allocation.t;
  objective_value : float;
  rung : rung;
  degraded : bool;
  skipped : rung list;
  attempts : attempt list;
}

let total_throughput problem a =
  let kk = Problem.num_clusters problem in
  let s = ref 0.0 in
  for k = 0 to kk - 1 do
    s := !s +. Allocation.app_throughput a k
  done;
  !s

let m_solve_s = M.histogram "daemon.solve.seconds"
let m_blowouts = M.counter "daemon.solve.blowouts"

let solve ?(now = Unix.gettimeofday) ?resident ~breaker:b ~objective ~budget_s
    ~base problem =
  let obj_kind = match objective with Dls_core.Lp_relax.Sum -> `Sum | _ -> `Maxmin in
  let t0 = now () in
  let elapsed () = now () -. t0 in
  let attempts = ref [] in
  let skipped = ref [] in
  (* Best feasible so far, ranked by (objective, total throughput) with
     later rungs winning ties — the same ranking Repair uses, so a
     budget cut returns the strongest allocation already in hand. *)
  let best = ref None in
  let attempt rung f =
    let t = now () in
    let r = f () in
    let dt = now () -. t in
    M.observe m_solve_s dt;
    let feasible_alloc =
      match r with
      | Ok a when Allocation.is_feasible problem a -> Some a
      | Ok _ | Error _ -> None
    in
    let obj =
      match feasible_alloc with
      | Some a -> Allocation.objective obj_kind problem a
      | None -> 0.0
    in
    let within = elapsed () <= budget_s in
    attempts :=
      { a_rung = rung; a_seconds = dt; a_within_budget = within;
        a_feasible = feasible_alloc <> None; a_objective = obj }
      :: !attempts;
    (match feasible_alloc with
    | Some a ->
      let score = (obj, total_throughput problem a) in
      (match !best with
      | Some (_, _, s) when s > score -> ()
      | _ -> best := Some (rung, a, score))
    | None -> ());
    (feasible_alloc <> None, within)
  in
  let run_stage stage heuristic =
    Repair.run_stage ~objective ~heuristic stage problem base
  in
  let lp_ok = ref false in
  let lp_attempted = ref false in
  let try_lp resolve_lp =
    lp_attempted := true;
    let feasible, within = attempt Resolve_lp resolve_lp in
    lp_ok := feasible && within;
    if !lp_ok then note_lp_success b
    else begin
      M.incr m_blowouts;
      note_lp_failure b ~now:(now ())
    end
  in
  (* Rung 0 — the warm fast path.  With a live resident handle the LP
     rung is the *cheapest* rung (an incremental re-pivot, not a cold
     solve), so it runs first and a clean solve skips the heuristic
     prelude entirely.  Without a handle (first solve, or just after a
     structural rebuild) the cold ladder below keeps its PR-9 order:
     rescale floor first, LP only after the cheap rungs. *)
  (match resident with
  | Some r
    when List.mem_assoc objective r.r_handles
         && elapsed () < budget_s
         && breaker_state b ~now:(now ()) <> Open ->
    try_lp (fun () -> warm_resolve r ~objective problem)
  | _ -> ());
  if !lp_ok then
    (* Warm solve succeeded: the heuristic rungs were never needed.
       Rescale/Refine are reported as skipped (mirroring how a budget
       cut reports unreached rungs); Resolve_greedy is not, matching
       the cold path after a clean LP solve. *)
    skipped := [ Refine; Rescale ]
  else begin
    (* Rung 1: always — the zero-budget floor. *)
    ignore
      (attempt Rescale (fun () -> run_stage Repair.Rescale Heuristics.LPRG));
    (* Rung 2: greedy refinement, if budget remains. *)
    if elapsed () < budget_s then
      ignore
        (attempt Refine (fun () -> run_stage Repair.Refine Heuristics.LPRG))
    else skipped := Refine :: !skipped;
    (* Rung 3: the LP re-solve, gated by both budget and breaker.  A
       warm attempt that already failed above is not retried — its
       handle was dropped, so a second attempt would pay a cold
       rebuild on a budget that is already strained. *)
    if not !lp_attempted then begin
      let budget_left = elapsed () < budget_s in
      let breaker_allows = breaker_state b ~now:(now ()) <> Open in
      if budget_left && breaker_allows then
        try_lp (fun () ->
            match resident with
            | Some r -> warm_resolve r ~objective problem
            | None -> run_stage Repair.Resolve Heuristics.LPRG)
      else skipped := Resolve_lp :: !skipped
    end;
    (* Rung 4: the greedy full re-solve — the backstop when the LP rung
       was skipped or blew out, never needed after a clean LP solve. *)
    if (not !lp_ok) && elapsed () < budget_s then
      ignore
        (attempt Resolve_greedy (fun () ->
             run_stage Repair.Resolve Heuristics.G))
    else if not !lp_ok then skipped := Resolve_greedy :: !skipped
  end;
  let attempts = List.rev !attempts in
  let skipped = List.rev !skipped in
  match !best with
  | Some (rung, allocation, (objective_value, _)) ->
    Ok
      {
        allocation;
        objective_value;
        rung;
        degraded = skipped <> [] && rung <> Resolve_lp;
        skipped;
        attempts;
      }
  | None ->
    Olog.error "daemon.solve.failed"
      ~fields:[ ("attempts", Olog.Int (List.length attempts)) ];
    Error "solve: no ladder rung produced a feasible allocation"
