(** Deadline-budgeted repair-ladder solves with a circuit breaker.

    Every [get_schedule] request carries a time budget.  The solver
    climbs the PR-3/4 repair ladder one rung at a time — each rung
    strictly more expensive and (usually) better than the last — and
    stops escalating the moment the budget is exhausted, returning the
    best feasible allocation found so far with a [degraded] flag when a
    better rung was skipped:

    + {b Rescale} — λ-shrink the cached allocation onto the degraded
      capacities ({!Dls_core.Repair.rescale}); microseconds, feasible
      by construction, always attempted (it is the floor the daemon can
      serve even with a zero budget).
    + {b Refine} — greedy refinement on the residual capacities; from a
      zero base this is a full greedy solve, so even budget-starved
      first requests get greedy-quality schedules.
    + {b Resolve-LP} — full LP-based re-solve (LPRG).  The expensive
      rung, and the one the {e circuit breaker} protects: after
      [threshold] consecutive deadline blowouts (the LP finished past
      the request deadline, or failed) the breaker {e opens} and
      Resolve-LP is skipped entirely for an exponentially-backed-off,
      {!Dls_util.Prng}-jittered interval; then one {e half-open} probe
      is allowed — success re-closes the breaker, another blowout
      re-opens it with a doubled backoff.
    + {b Resolve-greedy} — full objective-free greedy re-solve, the
      fallback rung when Resolve-LP is skipped (breaker open) or
      errored.

    Rungs are never aborted mid-flight (budgets gate {e starting} a
    rung), so a single pathological LP can overrun once — that overrun
    is precisely what feeds the breaker.

    {b Warm fast path.}  When a resident handle is live for the
    requested objective, the ladder inverts: the Resolve-LP rung is an
    incremental re-pivot — the {e cheapest} rung — so it runs first,
    and a clean in-budget solve skips the heuristic prelude entirely
    (Rescale/Refine reported in [skipped]).  A failed warm attempt
    drops the handle and falls through to the cold ladder in its usual
    order, without retrying the LP rung on the strained budget. *)

type rung = Rescale | Refine | Resolve_lp | Resolve_greedy

val rung_name : rung -> string
(** ["rescale"], ["refine"], ["resolve_lp"], ["resolve_greedy"]. *)

(** {1 Circuit breaker} *)

type breaker

type breaker_state = Closed | Open | Half_open

val breaker_state_name : breaker_state -> string

val breaker :
  ?threshold:int ->
  ?base_backoff_s:float ->
  ?max_backoff_s:float ->
  ?seed:int ->
  unit ->
  breaker
(** Fresh closed breaker.  [threshold] consecutive Resolve-LP failures
    (default 3) trip it open for [base_backoff_s * 2^k] seconds
    (defaults 1.0 base, 60.0 cap, [k] = re-opens since last close),
    stretched by a jitter factor in [1, 1.5] drawn from a [seed]ed
    {!Dls_util.Prng} stream so restarted daemons do not probe in
    lockstep.
    @raise Invalid_argument on a non-positive threshold or backoff. *)

val breaker_state : breaker -> now:float -> breaker_state
(** Current state; an [Open] breaker whose backoff has elapsed reports
    (and becomes) [Half_open]. *)

val breaker_trips : breaker -> int
(** Times the breaker has transitioned to [Open]. *)

val note_lp_failure : breaker -> now:float -> unit
(** Record one Resolve-LP deadline blowout.  {!solve} calls this
    itself; exposed so the tests can drive the trip / half-open / close
    cycle with a fake clock. *)

val note_lp_success : breaker -> unit
(** Record a clean in-budget Resolve-LP; resets failures and closes the
    breaker. *)

(** {1 Resident warm LP}

    One {!Dls_core.Lp_relax.Incremental} handle per objective, kept
    alive across requests so a capacity delta followed by
    [get_schedule] pays an incremental pivot count instead of a cold
    re-encode + all-slack solve.  Accepted mutations classified by
    {!State.warm_edits} are applied with {!resident_apply}: capacity
    deltas become right-hand-side edits on every live handle;
    structural mutations invalidate the handles, which lazily rebuild
    on the next solve (counted in [daemon.rebuilds], vs
    [daemon.warm_hits] for solves served from a live handle).

    The breaker is intentionally {e not} part of a resident: a handle
    rebuild carries the breaker's failure count, backoff exponent and
    open/half-open state over unchanged.

    A resident is not internally synchronized.  The server confines
    each resident to one owner and funnels edits and solves through a
    single FIFO, which is what makes the warm path a pure function of
    the mutation log (the WAL determinism guarantee). *)

type resident

val resident : ?backend:Dls_lp.Backend.t -> unit -> resident
(** Fresh resident with no live handle.  [backend] picks the
    revised-simplex core for future handles (default
    [Dls_lp.Backend.default], i.e. the sparse Markowitz-LU core unless
    overridden process-wide). *)

val resident_apply :
  resident -> State.capacity_edit list option -> unit
(** Feed one accepted mutation's {!State.warm_edits} classification:
    [Some edits] updates every live handle in place (a no-op when none
    is live); [None] invalidates them all. *)

val resident_invalidate : resident -> unit
(** Drop every live handle; the next solve rebuilds. *)

val resident_stats : resident -> int * int * int
(** [(warm_hits, rebuilds, edits)] since creation. *)

val resident_pivots : resident -> int
(** Cumulative simplex pivots across the live handles (drops to 0 when
    the handles are invalidated). *)

(** {1 Solving} *)

type attempt = {
  a_rung : rung;
  a_seconds : float;  (** wall-clock cost of the rung *)
  a_within_budget : bool;  (** finished before the request deadline *)
  a_feasible : bool;
  a_objective : float;  (** 0 when infeasible *)
}

type outcome = {
  allocation : Dls_core.Allocation.t;  (** best feasible found *)
  objective_value : float;
  rung : rung;  (** rung that produced [allocation] *)
  degraded : bool;
      (** a better rung was skipped (budget exhausted or breaker open)
          and the winner is not the full LP re-solve *)
  skipped : rung list;  (** rungs not attempted, in ladder order *)
  attempts : attempt list;  (** rungs attempted, in ladder order *)
}

val solve :
  ?now:(unit -> float) ->
  ?resident:resident ->
  breaker:breaker ->
  objective:Dls_core.Lp_relax.objective ->
  budget_s:float ->
  base:Dls_core.Allocation.t ->
  Dls_core.Problem.t ->
  (outcome, string) result
(** Climb the ladder under [budget_s] seconds, starting from [base]
    (the daemon's cached last-good allocation, or zero).  With
    [resident], the Resolve-LP rung solves from the resident warm
    handle (building it from [problem] if necessary) and feeds the
    relaxation through the same round-down + refine pipeline as the
    cold LPRG path; a failed warm solve drops the handle and falls
    back to the objective-free greedy.  [now] overrides the clock
    (tests drive the breaker through its open/half-open cycle with a
    fake clock; default [Unix.gettimeofday]).  [Error] only if no rung
    produced a feasible allocation, which Rescale's totality rules out
    for well-formed problems. *)
