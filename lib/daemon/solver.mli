(** Deadline-budgeted repair-ladder solves with a circuit breaker.

    Every [get_schedule] request carries a time budget.  The solver
    climbs the PR-3/4 repair ladder one rung at a time — each rung
    strictly more expensive and (usually) better than the last — and
    stops escalating the moment the budget is exhausted, returning the
    best feasible allocation found so far with a [degraded] flag when a
    better rung was skipped:

    + {b Rescale} — λ-shrink the cached allocation onto the degraded
      capacities ({!Dls_core.Repair.rescale}); microseconds, feasible
      by construction, always attempted (it is the floor the daemon can
      serve even with a zero budget).
    + {b Refine} — greedy refinement on the residual capacities; from a
      zero base this is a full greedy solve, so even budget-starved
      first requests get greedy-quality schedules.
    + {b Resolve-LP} — full LP-based re-solve (LPRG).  The expensive
      rung, and the one the {e circuit breaker} protects: after
      [threshold] consecutive deadline blowouts (the LP finished past
      the request deadline, or failed) the breaker {e opens} and
      Resolve-LP is skipped entirely for an exponentially-backed-off,
      {!Dls_util.Prng}-jittered interval; then one {e half-open} probe
      is allowed — success re-closes the breaker, another blowout
      re-opens it with a doubled backoff.
    + {b Resolve-greedy} — full objective-free greedy re-solve, the
      fallback rung when Resolve-LP is skipped (breaker open) or
      errored.

    Rungs are never aborted mid-flight (budgets gate {e starting} a
    rung), so a single pathological LP can overrun once — that overrun
    is precisely what feeds the breaker. *)

type rung = Rescale | Refine | Resolve_lp | Resolve_greedy

val rung_name : rung -> string
(** ["rescale"], ["refine"], ["resolve_lp"], ["resolve_greedy"]. *)

(** {1 Circuit breaker} *)

type breaker

type breaker_state = Closed | Open | Half_open

val breaker_state_name : breaker_state -> string

val breaker :
  ?threshold:int ->
  ?base_backoff_s:float ->
  ?max_backoff_s:float ->
  ?seed:int ->
  unit ->
  breaker
(** Fresh closed breaker.  [threshold] consecutive Resolve-LP failures
    (default 3) trip it open for [base_backoff_s * 2^k] seconds
    (defaults 1.0 base, 60.0 cap, [k] = re-opens since last close),
    stretched by a jitter factor in [1, 1.5] drawn from a [seed]ed
    {!Dls_util.Prng} stream so restarted daemons do not probe in
    lockstep.
    @raise Invalid_argument on a non-positive threshold or backoff. *)

val breaker_state : breaker -> now:float -> breaker_state
(** Current state; an [Open] breaker whose backoff has elapsed reports
    (and becomes) [Half_open]. *)

val breaker_trips : breaker -> int
(** Times the breaker has transitioned to [Open]. *)

val note_lp_failure : breaker -> now:float -> unit
(** Record one Resolve-LP deadline blowout.  {!solve} calls this
    itself; exposed so the tests can drive the trip / half-open / close
    cycle with a fake clock. *)

val note_lp_success : breaker -> unit
(** Record a clean in-budget Resolve-LP; resets failures and closes the
    breaker. *)

(** {1 Solving} *)

type attempt = {
  a_rung : rung;
  a_seconds : float;  (** wall-clock cost of the rung *)
  a_within_budget : bool;  (** finished before the request deadline *)
  a_feasible : bool;
  a_objective : float;  (** 0 when infeasible *)
}

type outcome = {
  allocation : Dls_core.Allocation.t;  (** best feasible found *)
  objective_value : float;
  rung : rung;  (** rung that produced [allocation] *)
  degraded : bool;
      (** a better rung was skipped (budget exhausted or breaker open)
          and the winner is not the full LP re-solve *)
  skipped : rung list;  (** rungs not attempted, in ladder order *)
  attempts : attempt list;  (** rungs attempted, in ladder order *)
}

val solve :
  ?now:(unit -> float) ->
  breaker:breaker ->
  objective:Dls_core.Lp_relax.objective ->
  budget_s:float ->
  base:Dls_core.Allocation.t ->
  Dls_core.Problem.t ->
  (outcome, string) result
(** Climb the ladder under [budget_s] seconds, starting from [base]
    (the daemon's cached last-good allocation, or zero).  [now]
    overrides the clock (tests drive the breaker through its
    open/half-open cycle with a fake clock; default
    [Unix.gettimeofday]).  [Error] only if no rung produced a feasible
    allocation, which Rescale's totality rules out for well-formed
    problems. *)
