(** Wire protocol of the allocation daemon.

    Requests and replies are single {!Dls_util.Json} values, framed as
    [<decimal byte length>\n<payload>] — the length prefix lets the
    server accumulate a frame across arbitrary TCP segmentation, and
    the strict JSON codec guarantees one value per frame.  Frames are
    capped ({!max_frame}) so a hostile length header cannot make the
    server buffer unbounded input.

    The request set mirrors the daemon's state machine:
    {ul
    {- {e mutations} ([register_app] / [retire_app] / [platform_delta])
       change the registered-application set or apply platform fault
       deltas; accepted mutations are journaled to the WAL before they
       are applied, so a crash replays to the exact accepted state;}
    {- [get_schedule] runs the deadline-budgeted repair ladder and
       returns the best feasible allocation found in budget;}
    {- [health] reports liveness counters; [drain] stops accepting,
       finishes the queue and shuts the server down cleanly;}
    {- [crash] (only honoured when the server was started with
       [allow_crash], for tests and the CI supervisor smoke) raises in
       the serving loop to exercise the supervisor restart path.}} *)

type mutation =
  | Register_app of { app : string; cluster : int; payoff : float }
      (** register application [app] on its source cluster with the
          given (strictly positive) payoff *)
  | Retire_app of { app : string }
  | Platform_delta of Dls_flowsim.Faults.kind list
      (** apply platform fault events (encoded with
          {!Dls_flowsim.Faults.kind_to_json}) to the daemon's cursor *)

type request =
  | Mutate of mutation
  | Get_schedule of {
      objective : Dls_core.Lp_relax.objective;
      budget_ms : float option;  (** per-request deadline; [None] uses
                                     the server default *)
    }
  | Health
  | Drain
  | Crash

val mutation_to_json : mutation -> Dls_util.Json.t
val mutation_of_json : Dls_util.Json.t -> (mutation, string) result

val request_to_json : request -> Dls_util.Json.t
val request_of_json : Dls_util.Json.t -> (request, string) result

(** {1 Schedule replies}

    The subset of a [get_schedule] reply that defines the schedule —
    used by the crash-recovery equivalence tests, which must ignore
    wall-clock fields ([attempts] timings). *)

type schedule_reply = {
  sr_seq : int;
      (** state sequence number the solve was computed against — with
          request batching, the proof a reply is not stale: a delta
          arriving mid-batch bumps the state seq, and later requests
          land in a fresh batch carrying the new seq *)
  sr_objective : float;  (** objective value of the returned allocation *)
  sr_rung : string;  (** ladder rung that produced it *)
  sr_degraded : bool;  (** a better rung was skipped (budget/breaker) *)
  sr_breaker : string;  (** breaker state after the solve *)
  sr_alpha : (int * int * float) list;  (** non-zero work entries *)
  sr_beta : (int * int * int) list;  (** non-zero connection entries *)
}

val schedule_reply_to_json : schedule_reply -> Dls_util.Json.t
(** Encoded as part of the [get_schedule] reply object; the server adds
    [status]/[attempts] fields around it. *)

val schedule_reply_of_json :
  Dls_util.Json.t -> (schedule_reply, string) result
(** Decodes a full [get_schedule] reply object (extra fields ignored). *)

val equal_schedule : schedule_reply -> schedule_reply -> bool
(** Equality on the schedule-defining fields only (seq, objective,
    rung, degraded flag, alpha, beta — not breaker state), exact on
    floats — replayed solves are bit-deterministic. *)

(** {1 Framing} *)

val max_frame : int
(** Hard cap on a frame payload (4 MiB). *)

val frame : string -> string
(** [frame payload] is the wire encoding [<len>\n<payload>]. *)

val split_frame :
  ?max_frame:int ->
  string ->
  [ `Incomplete | `Frame of string * int | `Bad of string ]
(** Try to extract one frame from buffered bytes: [`Frame (payload,
    consumed)] on success, [`Incomplete] when more bytes are needed,
    [`Bad reason] on a malformed or oversized header (the connection
    should be dropped — resynchronisation is impossible). *)

(** {1 Blocking client-side IO}

    Used by the [dls_daemond client] subcommand and the tests; the
    server itself is non-blocking and uses {!split_frame} directly. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one framed payload, handling short writes. *)

val read_frame :
  ?timeout:float ->
  buf:Buffer.t ->
  Unix.file_descr ->
  (string, string) result
(** Read one frame, keeping any over-read bytes in [buf] for the next
    call (pipelined replies).  [timeout] (default 10 s) bounds the wait
    via [SO_RCVTIMEO]; [Error] on timeout, closed peer or bad frame. *)
