type ('job, 'res) t = {
  lock : Mutex.t;
  cond : Condition.t;
  pinned : 'job Queue.t;  (* consumed by worker 0 only, FIFO *)
  shared : 'job Queue.t;  (* consumed by any worker *)
  results : 'res Queue.t;
  mutable stop : bool;
  mutable outstanding : int;  (* submitted, result not yet drained *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable domains : unit Domain.t list;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let wake t =
  (* Best-effort: a full pipe already guarantees a pending wake-up. *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) -> ()

let worker_loop t ~run ~worker =
  let rec next () =
    if t.stop then None
    else if worker = 0 && not (Queue.is_empty t.pinned) then
      Some (Queue.pop t.pinned)
    else if not (Queue.is_empty t.shared) then Some (Queue.pop t.shared)
    else begin
      Condition.wait t.cond t.lock;
      next ()
    end
  in
  let rec loop () =
    Mutex.lock t.lock;
    let job = next () in
    Mutex.unlock t.lock;
    match job with
    | None -> ()
    | Some job ->
      let res = run ~worker job in
      locked t (fun () -> Queue.push res t.results);
      wake t;
      loop ()
  in
  loop ()

let create ~workers ~run =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      lock = Mutex.create ();
      cond = Condition.create ();
      pinned = Queue.create ();
      shared = Queue.create ();
      results = Queue.create ();
      stop = false;
      outstanding = 0;
      wake_r;
      wake_w;
      domains = [];
    }
  in
  t.domains <-
    List.init workers (fun worker ->
        Domain.spawn (fun () -> worker_loop t ~run ~worker));
  t

let submit ?(pinned = false) t job =
  locked t (fun () ->
      if t.stop then invalid_arg "Pool.submit: pool is shut down";
      Queue.push job (if pinned then t.pinned else t.shared);
      t.outstanding <- t.outstanding + 1;
      if pinned then Condition.broadcast t.cond else Condition.signal t.cond)

let wake_fd t = t.wake_r

let drain t =
  (* Swallow the pending wake-up bytes, then take every completed
     result.  Order within the drain follows completion order. *)
  let buf = Bytes.create 512 in
  (try
     while Unix.read t.wake_r buf 0 512 > 0 do
       ()
     done
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
  locked t (fun () ->
      let acc = ref [] in
      while not (Queue.is_empty t.results) do
        acc := Queue.pop t.results :: !acc
      done;
      let n = List.length !acc in
      t.outstanding <- t.outstanding - n;
      List.rev !acc)

let outstanding t = locked t (fun () -> t.outstanding)

let shutdown t =
  let domains =
    locked t (fun () ->
        if t.stop then []
        else begin
          t.stop <- true;
          Condition.broadcast t.cond;
          let d = t.domains in
          t.domains <- [];
          d
        end)
  in
  List.iter Domain.join domains;
  if domains <> [] then begin
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    try Unix.close t.wake_w with Unix.Unix_error _ -> ()
  end
