(** Bounded multi-domain worker pool behind the daemon's select loop.

    Solves are CPU-bound, so workers are {!Domain}s, not threads: the
    event loop keeps accepting, shedding and reaping while schedules
    are computed in parallel.  Two queues feed the workers:

    - the {e pinned} queue is consumed by worker 0 only, in strict FIFO
      order.  The server routes every resident-handle edit and every
      warm solve through it, which serializes the warm LP state's
      history — the property that keeps warm serving a pure function of
      the mutation log;
    - the {e shared} queue is consumed by any worker (worker 0 included
      when its pinned queue is empty) and carries cold solves, which
      touch no shared solver state.

    Completion is edge-triggered through a self-pipe: each finished job
    pushes its result and writes one byte to {!wake_fd}, which the
    event loop includes in its [select] read set; {!drain} then swallows
    the bytes and returns the completed results. *)

type ('job, 'res) t

val create : workers:int -> run:(worker:int -> 'job -> 'res) -> ('job, 'res) t
(** Spawn [workers] domains running [run].  [run] must not raise —
    wrap failures into ['res].
    @raise Invalid_argument when [workers < 1]. *)

val submit : ?pinned:bool -> ('job, 'res) t -> 'job -> unit
(** Enqueue a job ([pinned] routes it to worker 0's FIFO; default the
    shared queue).  @raise Invalid_argument after {!shutdown}. *)

val wake_fd : ('job, 'res) t -> Unix.file_descr
(** Read end of the completion self-pipe; becomes readable when at
    least one result is waiting.  Never read it directly — {!drain}
    does. *)

val drain : ('job, 'res) t -> 'res list
(** Collect every completed result (in completion order) and clear the
    wake-up bytes.  Non-blocking; returns [[]] when nothing finished. *)

val outstanding : ('job, 'res) t -> int
(** Jobs submitted whose results have not been drained yet (queued or
    running) — the server's drain handshake waits for 0. *)

val shutdown : ('job, 'res) t -> unit
(** Stop accepting work, let running jobs finish, drop queued unstarted
    jobs, join the domains and close the pipe.  Idempotent. *)
