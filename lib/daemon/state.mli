(** Registered-application state of the allocation daemon.

    The daemon owns one nominal platform (fixed at startup) plus two
    pieces of mutable state, both driven exclusively by accepted
    {!Protocol.mutation}s so that WAL replay reconstructs them exactly:

    - the {e application registry}: each application lives on its
      source cluster (the cluster that holds its input data, Section 3
      of the paper) with a strictly positive payoff; at most one
      application per cluster;
    - the {e platform delta log}: every fault kind accepted through
      [platform_delta], in arrival order.  The degraded platform is the
      nominal one with all deltas applied through
      {!Dls_flowsim.Faults.degraded_at}, so link recoveries and
      max-connect restorations compose exactly as in the simulator.

    Mutations are validated {e before} being journaled: an [Error] from
    {!apply} means the state is unchanged and nothing may be written to
    the WAL. *)

type t

type capacity_edit =
  | Set_speed of int * float  (** cluster, effective compute speed *)
  | Set_local_bw of int * float  (** cluster, effective local bandwidth *)
  | Set_link_cap of int * int  (** backbone link, effective cap *)
      (** A platform delta expressed as absolute capacities of the
          degraded platform — the right-hand-side edits
          {!Dls_core.Lp_relax.Incremental} applies to a resident warm
          handle. *)

val create : Dls_platform.Platform.t -> t
(** Fresh state: no applications, no deltas. *)

val platform : t -> Dls_platform.Platform.t
(** The nominal platform. *)

val apps : t -> (string * (int * float)) list
(** Registered applications as [(name, (cluster, payoff))], sorted by
    name. *)

val deltas : t -> Dls_flowsim.Faults.kind list
(** Accepted platform deltas, in arrival order. *)

val seq : t -> int
(** Number of mutations applied so far — the WAL sequence number of the
    next mutation. *)

val apply : t -> Protocol.mutation -> (unit, string) result
(** Validate and apply one mutation.  Rejections (unchanged state):
    empty/duplicate application name, cluster out of range or already
    owned by another application, non-positive or non-finite payoff,
    retiring an unknown application, an empty delta list, or a delta
    event rejected by {!Dls_flowsim.Faults.make} (bad entity id or
    factor). *)

val degraded_platform : t -> Dls_platform.Platform.t
(** The nominal platform with every accepted delta applied.  Served
    from a materialized fault cursor and cached between deltas, so the
    request hot path pays O(1) instead of refolding the delta log. *)

val problem : t -> Dls_core.Problem.t
(** The multi-application scheduling problem right now: degraded
    platform, payoff [p] at each registered application's cluster, 0
    elsewhere.  Cached between mutations. *)

val warm_edits : t -> Protocol.mutation -> capacity_edit list option
(** Classify an {e accepted} mutation (call after a successful
    {!apply}) for the resident LP handle: [Some edits] when every kind
    is a pure capacity change (throttle, crash, max-connect, link
    failure) — the edits carry post-apply absolute values — or [None]
    when the mutation is structural (registry change, bandwidth
    degradation, link recovery) and the handle must be rebuilt. *)

val fingerprint : t -> string
(** Hex digest of the nominal platform's canonical serialization; the
    WAL manifest pins it so a journal is never replayed against a
    different platform. *)

val equal : t -> t -> bool
(** Same platform fingerprint, application registry and delta log —
    the equivalence the WAL replay property checks. *)
