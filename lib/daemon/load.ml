(* Deterministic load generator for the allocation daemon.

   Each client is a thread with a persistent connection and its own
   [Prng.derive] stream, so the *sequence* of requests (objectives,
   think times, mutation payloads) is a pure function of the seed and
   client index — two runs against equivalent servers issue the same
   request mix, which is what lets the bench compare configurations
   and the tests assert invariants over the aggregate counters.  Only
   the wall-clock interleaving varies run to run. *)

module P = Protocol
module J = Dls_util.Json
module Prng = Dls_util.Prng

type mode = Closed | Open_loop of float

type stats = {
  sent : int;
  ok : int;
  overloaded : int;
  errors : int;
  mutations : int;
  wall_s : float;
  latencies : float array;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let p = Float.max 0.0 (Float.min 1.0 p) in
    let idx = int_of_float (Float.round (p *. float_of_int (n - 1))) in
    sorted.(idx)
  end

(* Per-client accumulator; merged under [agg_lock] at thread exit. *)
type client_acc = {
  mutable c_sent : int;
  mutable c_ok : int;
  mutable c_overloaded : int;
  mutable c_errors : int;
  mutable c_mutations : int;
  mutable c_lat : float list;
}

let connect addr =
  match addr with
  | Dls_obs.Publish.Unix_sock path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e -> Unix.close fd; raise e);
    fd
  | Dls_obs.Publish.Tcp (host, port) ->
    let ip =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_loopback
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (ip, port))
     with e -> Unix.close fd; raise e);
    fd

let status_of_reply reply =
  match J.of_string reply with
  | Ok j -> (
    match J.member "status" j with Some (J.Str s) -> s | _ -> "error")
  | Error _ -> "error"

(* One request/reply round trip on a persistent connection; [fd_ref]
   is re-established after an IO error (server reaped us, or a crash
   drill restarted it) so a transient failure costs one error count,
   not the rest of the client's run. *)
let round_trip ~timeout fd_ref buf addr req acc =
  let req_json = J.to_string (P.request_to_json req) in
  let attempt () =
    let fd =
      match !fd_ref with
      | Some fd -> fd
      | None ->
        let fd = connect addr in
        fd_ref := Some fd;
        Buffer.clear buf;
        fd
    in
    P.write_frame fd req_json;
    P.read_frame ~timeout ~buf fd
  in
  acc.c_sent <- acc.c_sent + 1;
  let t0 = Unix.gettimeofday () in
  match (try attempt () with _ -> Error "io") with
  | Ok reply -> (
    let dt = Unix.gettimeofday () -. t0 in
    match status_of_reply reply with
    | "ok" ->
      acc.c_ok <- acc.c_ok + 1;
      acc.c_lat <- dt :: acc.c_lat
    | "overloaded" -> acc.c_overloaded <- acc.c_overloaded + 1
    | _ -> acc.c_errors <- acc.c_errors + 1)
  | Error _ ->
    acc.c_errors <- acc.c_errors + 1;
    (match !fd_ref with
    | Some fd -> (try Unix.close fd with _ -> ())
    | None -> ());
    fd_ref := None

let run ?(mode = Closed) ?(budget_ms = 2000.0) ?(timeout = 10.0)
    ?(mutate_every = 0) ~addr ~seed ~clients ~duration_s ~k () =
  if clients < 1 then invalid_arg "Load.run: clients must be >= 1";
  if k < 1 then invalid_arg "Load.run: k must be >= 1";
  let deadline = Unix.gettimeofday () +. duration_s in
  let agg_lock = Mutex.create () in
  let accs = ref [] in
  let client idx () =
    let rng = Prng.derive ~seed ~index:idx in
    let acc =
      { c_sent = 0; c_ok = 0; c_overloaded = 0; c_errors = 0;
        c_mutations = 0; c_lat = [] }
    in
    let fd_ref = ref None in
    let buf = Buffer.create 4096 in
    let n = ref 0 in
    while Unix.gettimeofday () < deadline do
      incr n;
      let req =
        if mutate_every > 0 && idx = 0 && !n mod mutate_every = 0 then begin
          (* client 0 doubles as the mutator: warm-path deltas only,
             so the resident handle stays hot across the run *)
          acc.c_mutations <- acc.c_mutations + 1;
          let cluster = Prng.int rng ~lo:0 ~hi:(k - 1) in
          let factor = Prng.float rng ~lo:0.5 ~hi:1.0 in
          P.Mutate
            (P.Platform_delta
               [ Dls_flowsim.Faults.Cluster_throttle { cluster; factor } ])
        end
        else
          let objective =
            if Prng.bool rng ~p:0.5 then Dls_core.Lp_relax.Maxmin
            else Dls_core.Lp_relax.Sum
          in
          P.Get_schedule { objective; budget_ms = Some budget_ms }
      in
      round_trip ~timeout fd_ref buf addr req acc;
      match mode with
      | Closed -> ()
      | Open_loop think_s ->
        (* exponential think time: the memoryless arrival process of
           an open-loop client population *)
        let u = Prng.float rng ~lo:1e-9 ~hi:1.0 in
        let pause = -.think_s *. log u in
        let pause = Float.min pause (deadline -. Unix.gettimeofday ()) in
        if pause > 0.0 then Thread.delay pause
    done;
    (match !fd_ref with
    | Some fd -> (try Unix.close fd with _ -> ())
    | None -> ());
    Mutex.lock agg_lock;
    accs := acc :: !accs;
    Mutex.unlock agg_lock
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun i -> Thread.create (client i) ()) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let accs = !accs in
  let sum f = List.fold_left (fun a c -> a + f c) 0 accs in
  let latencies =
    Array.of_list (List.concat_map (fun c -> c.c_lat) accs)
  in
  Array.sort compare latencies;
  {
    sent = sum (fun c -> c.c_sent);
    ok = sum (fun c -> c.c_ok);
    overloaded = sum (fun c -> c.c_overloaded);
    errors = sum (fun c -> c.c_errors);
    mutations = sum (fun c -> c.c_mutations);
    wall_s;
    latencies;
  }

let rps t = if t.wall_s > 0.0 then float_of_int t.ok /. t.wall_s else 0.0

let shed_rate t =
  if t.sent = 0 then 0.0
  else float_of_int t.overloaded /. float_of_int t.sent

let p50 t = percentile t.latencies 0.50
let p99 t = percentile t.latencies 0.99

let to_json ?(extra = []) t =
  J.Obj
    ([ ("sent", J.Num (float_of_int t.sent));
       ("ok", J.Num (float_of_int t.ok));
       ("overloaded", J.Num (float_of_int t.overloaded));
       ("errors", J.Num (float_of_int t.errors));
       ("mutations", J.Num (float_of_int t.mutations));
       ("wall_s", J.Num t.wall_s);
       ("rps", J.Num (rps t));
       ("shed_rate", J.Num (shed_rate t));
       ("p50_ms", J.Num (p50 t *. 1e3));
       ("p99_ms", J.Num (p99 t *. 1e3));
     ]
    @ extra)
