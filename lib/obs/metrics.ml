module J = Dls_util.Json

(* ------------------------------------------------------------------ *)
(* Global switch                                                       *)
(* ------------------------------------------------------------------ *)

(* A single flag read on every hot-path operation: when off, [incr],
   [add], [set] and [observe] return after one atomic load and a branch
   — no allocation, no lock, no write.  The flag is flipped once at
   startup (CLI --metrics) or inside tests. *)
let on = Atomic.make false

let enable () = Atomic.set on true

let disable () = Atomic.set on false

let enabled () = Atomic.get on

(* ------------------------------------------------------------------ *)
(* Log-bucketed histogram geometry                                     *)
(* ------------------------------------------------------------------ *)

(* Geometric buckets with growth factor 2^(1/4) ≈ 1.19: bucket [i]
   covers [base^i, base^(i+1)), so any quantile read off a bucket edge
   is within a factor [base] of the true order statistic.  Indices are
   clamped to [-160, 159], covering ~1e-12 .. ~1e12 — microseconds to
   megaseconds when observations are in seconds, and unit counts up to
   a trillion.  Non-positive and non-finite observations go to a
   separate underflow cell (they have no logarithm). *)
let base = 2.0 ** 0.25

let lo_bucket = -160

let hi_bucket = 159

let num_buckets = hi_bucket - lo_bucket + 1

let bound i = base ** float_of_int i

(* Invariant (up to the clamp): bound i <= v < bound (i + 1), verified
   against the same [bound] used by quantile readers — the log is only
   a first guess, nudged to agree with [**] at bucket edges. *)
let bucket_of v =
  let i = int_of_float (Float.floor (Float.log v /. Float.log base)) in
  let i = if v < bound i then i - 1 else i in
  let i = if v >= bound (i + 1) then i + 1 else i in
  Stdlib.max lo_bucket (Stdlib.min hi_bucket i)

(* ------------------------------------------------------------------ *)
(* Live metric cells                                                   *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; c_cell : int Atomic.t }

type gval = { gv : float; gseq : int }

type gauge = { g_name : string; g_cell : gval Atomic.t }

type histogram = {
  h_name : string;
  h_buckets : int Atomic.t array;  (* length [num_buckets] *)
  h_under : int Atomic.t;
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_min : float Atomic.t;
  h_max : float Atomic.t;
}

(* One process-wide sequence for gauge writes: merge resolves a name
   collision by keeping the later write, and "later" must mean the same
   thing in every shard snapshot, so the order is explicit state, not
   wall-clock. *)
let gauge_seq = Atomic.make 0

let rec cas_update cell f =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (f old)) then cas_update cell f

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name wrap make unwrap =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
        match unwrap m with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name
               (kind_name m)))
      | None ->
        let v = make () in
        Hashtbl.replace registry name (wrap v);
        v)

let counter name =
  register name
    (fun c -> C c)
    (fun () -> { c_name = name; c_cell = Atomic.make 0 })
    (function C c -> Some c | _ -> None)

let gauge name =
  register name
    (fun g -> G g)
    (fun () -> { g_name = name; g_cell = Atomic.make { gv = 0.0; gseq = -1 } })
    (function G g -> Some g | _ -> None)

let histogram name =
  register name
    (fun h -> H h)
    (fun () ->
      { h_name = name;
        h_buckets = Array.init num_buckets (fun _ -> Atomic.make 0);
        h_under = Atomic.make 0;
        h_count = Atomic.make 0;
        h_sum = Atomic.make 0.0;
        h_min = Atomic.make infinity;
        h_max = Atomic.make neg_infinity })
    (function H h -> Some h | _ -> None)

(* ------------------------------------------------------------------ *)
(* Hot-path operations                                                 *)
(* ------------------------------------------------------------------ *)

let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.c_cell n)

let incr c = add c 1

let set g v =
  if Atomic.get on then
    Atomic.set g.g_cell { gv = v; gseq = Atomic.fetch_and_add gauge_seq 1 }

let observe h v =
  if Atomic.get on then begin
    ignore (Atomic.fetch_and_add h.h_count 1);
    if Float.is_finite v && v > 0.0 then
      ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v - lo_bucket) 1)
    else ignore (Atomic.fetch_and_add h.h_under 1);
    if Float.is_finite v then begin
      cas_update h.h_sum (fun s -> s +. v);
      cas_update h.h_min (fun m -> Float.min m v);
      cas_update h.h_max (fun m -> Float.max m v)
    end
  end

(* ------------------------------------------------------------------ *)
(* Snapshots: pure, mergeable state                                    *)
(* ------------------------------------------------------------------ *)

type hist_snapshot = {
  hs_buckets : (int * int) list;  (* (bucket index, count), ascending, > 0 *)
  hs_underflow : int;
  hs_count : int;  (* all observations, underflow included *)
  hs_sum : float;  (* finite observations only *)
  hs_min : float;  (* [infinity] when no finite observation *)
  hs_max : float;  (* [neg_infinity] likewise *)
}

type value =
  | Counter of int
  | Gauge of { value : float; seq : int }
  | Histogram of hist_snapshot

type snapshot = (string * value) list  (* sorted by metric name *)

let empty_hist =
  { hs_buckets = []; hs_underflow = 0; hs_count = 0; hs_sum = 0.0;
    hs_min = infinity; hs_max = neg_infinity }

let hist_observe hs v =
  let hs =
    if Float.is_finite v && v > 0.0 then begin
      let b = bucket_of v in
      let rec bump = function
        | [] -> [ (b, 1) ]
        | (i, c) :: rest when i = b -> (i, c + 1) :: rest
        | (i, c) :: rest when i > b -> (b, 1) :: (i, c) :: rest
        | pair :: rest -> pair :: bump rest
      in
      { hs with hs_buckets = bump hs.hs_buckets; hs_count = hs.hs_count + 1 }
    end
    else { hs with hs_underflow = hs.hs_underflow + 1; hs_count = hs.hs_count + 1 }
  in
  if Float.is_finite v then
    { hs with
      hs_sum = hs.hs_sum +. v;
      hs_min = Float.min hs.hs_min v;
      hs_max = Float.max hs.hs_max v }
  else hs

let hist_of_values values = List.fold_left hist_observe empty_hist values

(* Bucket-wise sum of two ascending sparse bucket lists. *)
let rec merge_buckets a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (i, c) :: ra, (j, d) :: rb ->
    if i = j then (i, c + d) :: merge_buckets ra rb
    else if i < j then (i, c) :: merge_buckets ra b
    else (j, d) :: merge_buckets a rb

let merge_hist a b =
  { hs_buckets = merge_buckets a.hs_buckets b.hs_buckets;
    hs_underflow = a.hs_underflow + b.hs_underflow;
    hs_count = a.hs_count + b.hs_count;
    hs_sum = a.hs_sum +. b.hs_sum;
    hs_min = Float.min a.hs_min b.hs_min;
    hs_max = Float.max a.hs_max b.hs_max }

let merge_value name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y ->
    (* Later write wins; ties (same seq, e.g. merging a snapshot with
       itself) resolve to the larger value so merge stays commutative. *)
    if x.seq > y.seq then Gauge x
    else if y.seq > x.seq then Gauge y
    else if Float.compare x.value y.value >= 0 then Gauge x
    else Gauge y
  | Histogram x, Histogram y -> Histogram (merge_hist x y)
  | _ ->
    invalid_arg
      (Printf.sprintf "Metrics.merge: %S has mismatched metric kinds" name)

(* Union of two sorted association lists, combining name collisions. *)
let rec merge a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (n1, v1) :: ra, (n2, v2) :: rb ->
    let c = String.compare n1 n2 in
    if c = 0 then (n1, merge_value n1 v1 v2) :: merge ra rb
    else if c < 0 then (n1, v1) :: merge ra b
    else (n2, v2) :: merge a rb

(* Bucket-wise subtraction: [a - b] where [b] is an earlier snapshot of
   the same growing histogram, so every count of [b] is <= its count in
   [a].  Zero-count buckets are dropped to keep the sparse invariant. *)
let rec diff_buckets a b =
  match (a, b) with
  | rest, [] -> rest
  | [], _ :: _ ->
    invalid_arg "Metrics.diff: since-snapshot has buckets the current lacks"
  | (i, c) :: ra, (j, d) :: rb ->
    if i = j then
      if c - d > 0 then (i, c - d) :: diff_buckets ra rb else diff_buckets ra rb
    else if i < j then (i, c) :: diff_buckets ra b
    else invalid_arg "Metrics.diff: since-snapshot has buckets the current lacks"

let diff_hist cur prev =
  { hs_buckets = diff_buckets cur.hs_buckets prev.hs_buckets;
    hs_underflow = cur.hs_underflow - prev.hs_underflow;
    hs_count = cur.hs_count - prev.hs_count;
    hs_sum = cur.hs_sum -. prev.hs_sum;
    (* Carry the cumulative edges: min/max are monotone, so merging this
       delta onto the previous cumulative state restores them exactly
       (merge takes min-of-mins / max-of-maxes). *)
    hs_min = cur.hs_min;
    hs_max = cur.hs_max }

let diff_value name cur prev =
  match (cur, prev) with
  | Counter x, Counter y -> Counter (x - y)
  | Gauge _, Gauge _ -> cur  (* last write wins on re-merge *)
  | Histogram x, Histogram y -> Histogram (diff_hist x y)
  | _ ->
    invalid_arg
      (Printf.sprintf "Metrics.diff: %S has mismatched metric kinds" name)

let rec diff cur ~since =
  match (cur, since) with
  | rest, [] -> rest
  | [], (n, _) :: _ ->
    invalid_arg
      (Printf.sprintf "Metrics.diff: %S present in since-snapshot only" n)
  | (n1, v1) :: rc, (n2, v2) :: rs ->
    let c = String.compare n1 n2 in
    if c = 0 then (n1, diff_value n1 v1 v2) :: diff rc ~since:rs
    else if c < 0 then (n1, v1) :: diff rc ~since
    else
      invalid_arg
        (Printf.sprintf "Metrics.diff: %S present in since-snapshot only" n2)

let snapshot () =
  with_lock (fun () ->
      Hashtbl.fold
        (fun name m acc ->
          let v =
            match m with
            | C c -> Counter (Atomic.get c.c_cell)
            | G g ->
              let { gv; gseq } = Atomic.get g.g_cell in
              Gauge { value = gv; seq = gseq }
            | H h ->
              let buckets = ref [] in
              for i = num_buckets - 1 downto 0 do
                let c = Atomic.get h.h_buckets.(i) in
                if c > 0 then buckets := (i + lo_bucket, c) :: !buckets
              done;
              Histogram
                { hs_buckets = !buckets;
                  hs_underflow = Atomic.get h.h_under;
                  hs_count = Atomic.get h.h_count;
                  hs_sum = Atomic.get h.h_sum;
                  hs_min = Atomic.get h.h_min;
                  hs_max = Atomic.get h.h_max }
          in
          (name, v) :: acc)
        registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | C c -> Atomic.set c.c_cell 0
          | G g -> Atomic.set g.g_cell { gv = 0.0; gseq = -1 }
          | H h ->
            Array.iter (fun cell -> Atomic.set cell 0) h.h_buckets;
            Atomic.set h.h_under 0;
            Atomic.set h.h_count 0;
            Atomic.set h.h_sum 0.0;
            Atomic.set h.h_min infinity;
            Atomic.set h.h_max neg_infinity)
        registry)

(* ------------------------------------------------------------------ *)
(* Quantiles                                                           *)
(* ------------------------------------------------------------------ *)

let hist_quantile hs ~q =
  if Float.is_nan q then invalid_arg "Metrics.hist_quantile: q is NaN";
  if hs.hs_count = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank =
      Stdlib.max 1
        (Stdlib.min hs.hs_count
           (int_of_float (Float.ceil (q *. float_of_int hs.hs_count))))
    in
    (* Underflow observations sort below every bucketed one; report the
       smallest finite observation for ranks landing there. *)
    if rank <= hs.hs_underflow then
      (if Float.is_finite hs.hs_min then hs.hs_min else Float.nan)
    else begin
      let rec walk cum = function
        | [] -> hs.hs_max  (* rank <= count, so only float dust lands here *)
        | (i, c) :: rest ->
          let cum = cum + c in
          if cum >= rank then
            (* The rank-th observation lies in [bound i, bound (i+1)):
               report the upper edge, clamped into the observed range. *)
            Float.max hs.hs_min (Float.min (bound (i + 1)) hs.hs_max)
          else walk cum rest
      in
      walk hs.hs_underflow hs.hs_buckets
    end
  end

(* ------------------------------------------------------------------ *)
(* JSON codec (JSONL: one metric per line)                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

(* The Json layer is deliberately strict (non-finite numbers have no
   JSON spelling), so sanitization happens here, at the encoding
   boundary: any non-finite value — a NaN gauge from a 0/0-derived
   rate, an untouched histogram's infinite min/max — encodes as [null]
   rather than crashing the [at_exit] flush after the real work
   succeeded.  The decoder maps [null] back to the matching sentinel
   (NaN for gauges, the empty-histogram edges for min/max). *)
let opt_edge v = if Float.is_finite v then J.Num v else J.Null

let value_to_json (name, v) =
  match v with
  | Counter n ->
    J.Obj
      [ ("metric", J.Str name); ("type", J.Str "counter");
        ("value", J.Num (float_of_int n)) ]
  | Gauge { value; seq } ->
    J.Obj
      [ ("metric", J.Str name); ("type", J.Str "gauge");
        ("value", opt_edge value);
        ("seq", J.Num (float_of_int seq)) ]
  | Histogram hs ->
    J.Obj
      [ ("metric", J.Str name); ("type", J.Str "histogram");
        ("count", J.Num (float_of_int hs.hs_count));
        ("underflow", J.Num (float_of_int hs.hs_underflow));
        ("sum", opt_edge hs.hs_sum);
        ("min", opt_edge hs.hs_min);
        ("max", opt_edge hs.hs_max);
        ("buckets",
         J.Arr
           (List.map
              (fun (i, c) ->
                J.Arr [ J.Num (float_of_int i); J.Num (float_of_int c) ])
              hs.hs_buckets)) ]

let field name json =
  match J.member name json with
  | Some v -> Ok v
  | None -> Error ("missing field \"" ^ name ^ "\"")

let int_field name json = Result.bind (field name json) J.to_int

let str_field name json = Result.bind (field name json) J.to_str

let edge_field name ~empty json =
  match J.member name json with
  | None -> Error ("missing field \"" ^ name ^ "\"")
  | Some J.Null -> Ok empty
  | Some v -> J.to_num v

let value_of_json json =
  let* name = str_field "metric" json in
  let* kind = str_field "type" json in
  match kind with
  | "counter" ->
    let* n = int_field "value" json in
    Ok (name, Counter n)
  | "gauge" ->
    let* value = edge_field "value" ~empty:Float.nan json in
    let* seq = int_field "seq" json in
    Ok (name, Gauge { value; seq })
  | "histogram" ->
    let* hs_count = int_field "count" json in
    let* hs_underflow = int_field "underflow" json in
    let* hs_sum = edge_field "sum" ~empty:0.0 json in
    let* hs_min = edge_field "min" ~empty:infinity json in
    let* hs_max = edge_field "max" ~empty:neg_infinity json in
    let* buckets_json = field "buckets" json in
    let* items = J.to_list buckets_json in
    let* hs_buckets =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* pair = J.to_list item in
          match pair with
          | [ i; c ] ->
            let* i = J.to_int i in
            let* c = J.to_int c in
            Ok ((i, c) :: acc)
          | _ -> Error "histogram bucket is not an [index, count] pair")
        (Ok []) items
    in
    Ok
      ( name,
        Histogram
          { hs_buckets = List.rev hs_buckets; hs_underflow; hs_count; hs_sum;
            hs_min; hs_max } )
  | other -> Error ("unknown metric type \"" ^ other ^ "\"")

let snapshot_to_jsonl snap =
  String.concat ""
    (List.map (fun entry -> J.to_string (value_to_json entry) ^ "\n") snap)

let snapshot_of_jsonl text =
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  let* entries =
    List.fold_left
      (fun acc line ->
        let* acc = acc in
        let* json = J.of_string line in
        let* entry = value_of_json json in
        Ok (entry :: acc))
      (Ok []) lines
  in
  Ok (List.sort (fun (a, _) (b, _) -> String.compare a b) (List.rev entries))

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition (format 0.0.4)                           *)
(* ------------------------------------------------------------------ *)

(* Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.  Our dotted names map dots
   (and anything else illegal) to underscores; a leading digit gets an
   underscore prefix. *)
let prom_name name =
  let b = Bytes.of_string name in
  for i = 0 to Bytes.length b - 1 do
    let c = Bytes.get b i in
    let ok =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
      || (i > 0 && c >= '0' && c <= '9')
    in
    if not ok then Bytes.set b i '_'
  done;
  let s = Bytes.to_string b in
  if s = "" then "_" else s

(* Prometheus floats: integral values print without an exponent (what
   every scraper emits for counts); the rest use %.17g round-trip
   precision.  Non-finite sums have no exposition spelling, so they
   degrade to 0 rather than corrupt the page. *)
let prom_num v =
  if not (Float.is_finite v) then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let to_prometheus snap =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (name, v) ->
      let p = prom_name name in
      match v with
      | Counter n ->
        line "# TYPE %s_total counter" p;
        line "%s_total %d" p n
      | Gauge { value; _ } ->
        line "# TYPE %s gauge" p;
        line "%s %s" p (prom_num value)
      | Histogram hs ->
        line "# TYPE %s histogram" p;
        (* Underflow observations are <= 0, hence <= every positive [le]
           edge: they enter the running total before the first bucket. *)
        let cum = ref hs.hs_underflow in
        List.iter
          (fun (i, c) ->
            cum := !cum + c;
            line "%s_bucket{le=\"%s\"} %d" p (prom_num (bound (i + 1))) !cum)
          hs.hs_buckets;
        line "%s_bucket{le=\"+Inf\"} %d" p hs.hs_count;
        line "%s_sum %s" p (prom_num hs.hs_sum);
        line "%s_count %d" p hs.hs_count)
    snap;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Human summary table                                                 *)
(* ------------------------------------------------------------------ *)

let cell v = if Float.is_nan v then "nan" else Printf.sprintf "%.4g" v

let summary_rows snap =
  List.map
    (fun (name, v) ->
      match v with
      | Counter n -> [ name; "counter"; string_of_int n; "-"; "-"; "-"; "-"; "-" ]
      | Gauge { value; _ } -> [ name; "gauge"; cell value; "-"; "-"; "-"; "-"; "-" ]
      | Histogram hs ->
        if hs.hs_count = 0 then
          [ name; "histogram"; "0"; "-"; "-"; "-"; "-"; "-" ]
        else
          [ name; "histogram"; string_of_int hs.hs_count;
            cell (hs.hs_sum /. float_of_int hs.hs_count);
            cell (hist_quantile hs ~q:0.5);
            cell (hist_quantile hs ~q:0.95);
            cell (hist_quantile hs ~q:0.99);
            cell (if Float.is_finite hs.hs_max then hs.hs_max else Float.nan) ])
    snap

let pp_summary fmt snap =
  (* "value" holds the counter/gauge value, or a histogram's count. *)
  let header = [ "metric"; "type"; "value"; "mean"; "p50"; "p95"; "p99"; "max" ] in
  let rows = summary_rows snap in
  let all = header :: rows in
  let ncols = List.length header in
  let width = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i c -> width.(i) <- Stdlib.max width.(i) (String.length c)))
    all;
  let pad i c = c ^ String.make (width.(i) - String.length c) ' ' in
  let rule =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') width))
    ^ "+"
  in
  let pp_row r =
    Format.fprintf fmt "| %s |@," (String.concat " | " (List.mapi pad r))
  in
  Format.fprintf fmt "@[<v>metrics summary@,%s@," rule;
  pp_row header;
  Format.fprintf fmt "%s@," rule;
  List.iter pp_row rows;
  Format.fprintf fmt "%s@]@." rule
