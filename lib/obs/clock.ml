(* Wall time in microseconds, clamped to be non-decreasing.

   The container has no monotonic-clock binding we are allowed to add
   (mtime is not baked into the image), so the span timer is
   gettimeofday plus a monotonicity clamp: a backwards NTP step can
   stretch one span, never produce a negative duration.  The clamp is
   per-process state shared across domains; an occasional lost race on
   [last] only weakens the clamp for one reading, it cannot move time
   backwards past a value some domain already observed being returned
   from this very cell. *)

let last = Atomic.make neg_infinity

let rec clamp t =
  let prev = Atomic.get last in
  if t <= prev then prev
  else if Atomic.compare_and_set last prev t then t
  else clamp t

let now_us () = clamp (Unix.gettimeofday () *. 1e6)

(* Test hook: substitute a deterministic clock so exporters can be
   golden-tested.  Not for production use. *)
let override : (unit -> float) option ref = ref None

let now () = match !override with None -> now_us () | Some f -> f ()

let set_override f = override := Some f

let clear_override () = override := None
