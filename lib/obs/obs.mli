(** Entry-point wiring for the observability sinks.

    [configure] is called once at startup from the CLI (--trace /
    --metrics flags) or the bench driver; omitted arguments leave the
    corresponding subsystem disabled, which is the allocation-free
    default.  [finalize] flushes the configured files once at exit. *)

val configure : ?trace:string -> ?metrics:string -> unit -> unit
(** [configure ?trace ?metrics ()] enables span recording when [trace]
    is given and the metrics registry when [metrics] is given,
    remembering the output paths for {!finalize}. *)

val finalize : unit -> unit
(** Write the Chrome trace and/or JSONL metrics dump to the paths given
    to {!configure}.  No-op for sinks that were never configured. *)
