(** Entry-point wiring for the observability sinks.

    [configure] is called once at startup from the CLI ([--trace] /
    [--metrics] / [--log] / [--flight] / [--telemetry] / [--publish])
    or the bench driver; omitted arguments leave the corresponding
    subsystem disabled, which is the allocation-free default.  A second
    call without an intervening [finalize] is a programming error and
    fails loudly rather than silently forgetting the first
    configuration; after [finalize] the process may configure again (a
    fresh epoch — the daemon supervisor restart path).  [finalize]
    flushes every configured sink and is idempotent, so it can be
    registered with [at_exit] and also called explicitly. *)

val configure :
  ?trace:string ->
  ?metrics:string ->
  ?log:string ->
  ?log_level:Log.level ->
  ?flight:string ->
  ?flight_capacity:int ->
  ?telemetry:Publish.addr ->
  ?publish:string ->
  ?publish_interval:float ->
  unit ->
  unit
(** Enable the requested sinks:
    - [trace]: span recording, Chrome trace written at {!finalize};
    - [metrics]: the registry, JSONL dump written at {!finalize};
    - [log]/[log_level]: structured JSONL logging to the file
      (default level [Info]);
    - [flight]/[flight_capacity]: the flight recorder; the ring is
      dumped to the path at {!finalize}, on [SIGUSR1] and by the
      uncaught-exception handler, so a crashed run leaves a post-mortem;
    - [telemetry]: Prometheus text exposition served live (implies the
      registry);
    - [publish]/[publish_interval]: periodic snapshot-delta JSONL
      appended live (implies the registry).
    @raise Invalid_argument when called a second time without an
    intervening {!finalize} (use {!reset_for_tests} between test runs).
    After {!finalize} a new [configure] is legal and starts a fresh
    epoch: the span buffer is cleared, sinks are reopened, and the
    metrics registry carries over (counters accumulate across epochs) —
    the daemon supervisor's restart path relies on this. *)

val configured : unit -> bool

val finalize : unit -> unit
(** Flush every configured sink: stop the live publishers (one final
    delta tick), write the Chrome trace, the metrics JSONL dump and the
    flight dump, and close the log.  Idempotent — calls after the first
    are no-ops.  No-op for sinks that were never configured. *)

val reset_for_tests : unit -> unit
(** Finalize if needed, then forget the configuration and disable every
    subsystem so a test harness can configure again.  Signal and
    exception handlers installed for the flight recorder are left in
    place (they become no-ops). *)
