(* Startup/shutdown glue for the CLI and bench entry points: pick the
   sinks once at startup (absent flags leave both subsystems in their
   free disabled state), flush files once at exit. *)

let trace_path : string option ref = ref None

let metrics_path : string option ref = ref None

let configure ?trace ?metrics () =
  (match trace with
  | Some path ->
    trace_path := Some path;
    Trace.enable ()
  | None -> ());
  match metrics with
  | Some path ->
    metrics_path := Some path;
    Metrics.enable ()
  | None -> ()

let finalize () =
  (match !trace_path with
  | Some path -> Trace.write path
  | None -> ());
  match !metrics_path with
  | Some path ->
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc
          (Metrics.snapshot_to_jsonl (Metrics.snapshot ())))
  | None -> ()
