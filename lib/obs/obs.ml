(* Startup/shutdown glue for the CLI and bench entry points: pick the
   sinks once at startup (absent flags leave every subsystem in its
   free disabled state), flush everything exactly once at shutdown.

   Configuration is deliberately once-per-epoch: the flight recorder
   installs process-global signal/exception handlers and the publisher
   owns background threads, so a silent second configure would leak the
   first run's paths.  [finalize] closes an epoch; after it, a new
   [configure] is legal (the supervisor restart path).  Tests use
   [reset_for_tests]. *)

type config = {
  trace : string option;
  metrics : string option;
  log : string option;
  flight : string option;
}

let state : config option ref = ref None

let finalized = ref false

let log_oc : out_channel option ref = ref None

(* The flight dump path, readable from the SIGUSR1 and uncaught-
   exception handlers.  Those handlers are installed once and never
   removed (reinstalling signal handlers from [reset_for_tests] would
   race a concurrently delivered signal); they no-op when unset. *)
let flight_path : string option ref = ref None

let handlers_installed = ref false

let dump_flight () =
  match !flight_path with
  | Some path when Flight.enabled () -> (
    try Flight.dump_to path with Sys_error _ -> ())
  | _ -> ()

let install_handlers () =
  if not !handlers_installed then begin
    handlers_installed := true;
    (* SIGUSR1: dump the ring on demand — the "what is that wedged
       campaign doing" probe.  Windows has no SIGUSR1; ignore EINVAL. *)
    (try
       ignore
         (Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> dump_flight ())))
     with Invalid_argument _ | Sys_error _ -> ());
    Printexc.set_uncaught_exception_handler (fun exn bt ->
        dump_flight ();
        Printexc.default_uncaught_exception_handler exn bt)
  end

let configured () = !state <> None

let configure ?trace ?metrics ?log ?(log_level = Log.Info) ?flight
    ?flight_capacity ?telemetry ?publish ?(publish_interval = 1.0) () =
  (match !state with
  | Some _ when not !finalized ->
    invalid_arg
      "Obs.configure: already configured (sinks are once-per-process)"
  | Some _ ->
    (* Finalized epoch: every sink was flushed and closed, so starting a
       fresh one is legal — the daemon supervisor reconfigures after
       each serving-loop restart.  The span buffer is cleared (the old
       epoch's spans were already written); the metrics registry
       deliberately survives, so counters like restarts accumulate
       across epochs. *)
    Trace.disable ();
    Trace.reset ();
    flight_path := None
  | None -> ());
  state := Some { trace; metrics; log; flight };
  finalized := false;
  (match trace with Some _ -> Trace.enable () | None -> ());
  (match (metrics, telemetry, publish) with
  | None, None, None -> ()
  | _ -> Metrics.enable ());
  (match log with
  | Some path ->
    let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
    log_oc := Some oc;
    Log.set_sink ~level:log_level oc
  | None -> ());
  (match flight with
  | Some path ->
    Flight.enable ?capacity:flight_capacity ();
    flight_path := Some path;
    install_handlers ()
  | None -> ());
  (match publish with
  | Some path -> Publish.start_snapshots ~interval:publish_interval ~path ()
  | None -> ());
  match telemetry with Some addr -> Publish.start_http addr | None -> ()

let finalize () =
  match !state with
  | None -> ()
  | Some _ when !finalized -> ()
  | Some { trace; metrics; log; flight } ->
    finalized := true;
    (* Live exporters first: the final delta tick must see every metric
       the run recorded, and the scrape socket should vanish before the
       files a watcher might switch to reading. *)
    Publish.stop ();
    (match trace with Some path -> Trace.write path | None -> ());
    (match metrics with
    | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (Metrics.snapshot_to_jsonl (Metrics.snapshot ())))
    | None -> ());
    (match flight with Some path -> Flight.dump_to path | None -> ());
    match log with
    | Some _ ->
      Log.close_sink ();
      (match !log_oc with Some oc -> close_out oc | None -> ());
      log_oc := None
    | None -> ()

let reset_for_tests () =
  finalize ();
  state := None;
  finalized := false;
  flight_path := None;
  Trace.disable ();
  Trace.reset ();
  Metrics.disable ();
  Flight.disable ();
  Log.close_sink ()
