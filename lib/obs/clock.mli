(** Non-decreasing wall clock in microseconds.

    [gettimeofday] with a monotonicity clamp shared across domains: a
    backwards clock step can stretch one timed region but never yield a
    negative span duration.  (A true monotonic clock needs a C binding
    or the [mtime] package; neither is available in this build.) *)

val now : unit -> float
(** Current time in microseconds, never less than a previously returned
    value.  Honours {!set_override}. *)

val set_override : (unit -> float) -> unit
(** Substitute a deterministic clock (golden tests of the exporters). *)

val clear_override : unit -> unit
