module J = Dls_util.Json

type entry = {
  fl_ts : float;
  fl_kind : string;
  fl_what : string;
  fl_fields : (string * string) list;
}

let default_capacity = 4096

(* Hot-path gate, same discipline as Metrics/Trace: one atomic load and
   a branch when the recorder is off. *)
let on = Atomic.make false

let lock = Mutex.create ()

(* Ring state, guarded by [lock].  [ring] slots hold [None] until first
   written; [head] is the next write position; [seen_] counts every
   record ever made, so [seen_ - kept] is the number overwritten. *)
let ring : entry option array ref = ref (Array.make default_capacity None)

let head = ref 0

let seen_ = ref 0

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let enabled () = Atomic.get on

let enable ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Flight.enable: capacity must be >= 1";
  with_lock (fun () ->
      ring := Array.make capacity None;
      head := 0;
      seen_ := 0);
  Atomic.set on true

let disable () = Atomic.set on false

let reset () =
  with_lock (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      head := 0;
      seen_ := 0)

let push e =
  with_lock (fun () ->
      let r = !ring in
      r.(!head) <- Some e;
      head := (!head + 1) mod Array.length r;
      incr seen_)

let record ?(fields = []) ~kind what =
  if Atomic.get on then
    push { fl_ts = Clock.now (); fl_kind = kind; fl_what = what;
           fl_fields = fields }

let note_log ~ts ~level ~msg ~fields =
  if Atomic.get on then
    push { fl_ts = ts; fl_kind = "log"; fl_what = msg;
           fl_fields = ("level", level) :: fields }

let note_span ~name ~dur_us =
  if Atomic.get on then
    push { fl_ts = Clock.now (); fl_kind = "span"; fl_what = name;
           fl_fields = [ ("dur_us", Printf.sprintf "%.17g" dur_us) ] }

let entries () =
  with_lock (fun () ->
      let r = !ring in
      let n = Array.length r in
      (* Oldest-first: slots [head .. head+n) modulo n, skipping the
         never-written ones of a ring that has not wrapped yet. *)
      let acc = ref [] in
      for i = n - 1 downto 0 do
        match r.((!head + i) mod n) with
        | Some e -> acc := e :: !acc
        | None -> ()
      done;
      !acc)

let seen () = with_lock (fun () -> !seen_)

let entry_to_json e =
  J.Obj
    (("ts", J.Num e.fl_ts)
    :: ("kind", J.Str e.fl_kind)
    :: ("what", J.Str e.fl_what)
    :: List.map (fun (k, v) -> (k, J.Str v)) e.fl_fields)

let dump () =
  let es = entries () in
  let header =
    J.Obj
      [ ("flight", J.Str "dump");
        ("seen", J.Num (float_of_int (seen ())));
        ("kept", J.Num (float_of_int (List.length es))) ]
  in
  String.concat ""
    (List.map (fun j -> J.to_string j ^ "\n") (header :: List.map entry_to_json es))

let dump_to path =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc (dump ()));
  Sys.rename tmp path
