(** Leveled structured logging: one JSON object per line.

    Records carry typed key/value fields and are rendered through
    {!Dls_util.Json}, so every line is one strict JSON value — the same
    invariant the campaign log relies on, and what makes the log
    greppable with [jq] while a run is live.

    Disabled-path discipline matches {!Metrics} and {!Trace}: {!enabled}
    is one atomic load and a compare, and the recording functions check
    it before touching their arguments.  Hot paths should guard field
    construction with [if Log.enabled Log.Debug then ...], exactly like
    [Trace.live]-guarded span args.

    Domain-safe: each record is rendered to one string and written with
    a single [output_string] under the sink mutex, then flushed, so
    concurrent domains never tear or interleave lines. *)

type level = Error | Warn | Info | Debug

val level_name : level -> string

val level_of_name : string -> level option
(** Case-insensitive; also accepts "warning". *)

type value = Str of string | Int of int | Float of float | Bool of bool

type field = string * value

(** {1 Switch and sink} *)

val set_sink : ?level:level -> out_channel -> unit
(** Route records at or above [level] (default [Info]) to the channel
    and enable recording.  The caller keeps ownership of the channel;
    {!close_sink} flushes but does not close it. *)

val set_level : level -> unit

val close_sink : unit -> unit
(** Flush, detach the sink and disable recording.  Idempotent. *)

val enabled : level -> bool
(** True when a sink is attached and [level] passes the threshold.
    One atomic load — safe on hot paths. *)

(** {1 Recording}

    Each emits one record with the current {!Clock} time.  No-ops
    (without evaluating nothing beyond the already-built arguments)
    when the level is filtered or no sink is attached. *)

val emit : level -> ?fields:field list -> string -> unit

val error : ?fields:field list -> string -> unit

val warn : ?fields:field list -> string -> unit

val info : ?fields:field list -> string -> unit

val debug : ?fields:field list -> string -> unit

(** {1 Rendering} *)

val record_to_json : ts:float -> level -> string -> field list -> Dls_util.Json.t
(** The line format: [{"ts":<µs>,"level":"info","msg":<msg>,<fields>}].
    Field keys colliding with the three reserved keys are prefixed with
    an underscore rather than dropped.  Non-finite [Float] fields encode
    as [null] (same sanitization boundary as the metrics codec). *)
