(** Hierarchical spans with a Chrome [trace_event] exporter.

    Timed regions nest per domain (parent/child from start/finish
    bracketing), carry string key/value attributes, and export as the
    JSON Object Format accepted by [chrome://tracing] and Perfetto.

    Disabled (the default), {!start} returns a shared constant and
    {!finish} is a branch on it — no allocation, no lock, no clock
    read.  The buffer mutex is only taken while tracing is on. *)

type span

val null_span : span
(** The inert span: {!finish} on it does nothing.  {!start} returns this
    exact value whenever tracing is off. *)

val live : span -> bool
(** [false] exactly for {!null_span}.  Guard attribute construction with
    this so the disabled path allocates nothing. *)

(** {1 Switch} *)

val enable : unit -> unit
(** Turn recording on; the first call anchors the trace clock origin. *)

val disable : unit -> unit

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded and dropped events and re-anchor the clock origin
    (tests). *)

(** {1 Buffer bound}

    The buffer keeps at most {!default_capacity} events (configurable);
    later events are dropped and counted — internally and, when the
    metrics registry is live, in the [obs.trace.dropped] counter — so a
    long dynsim run cannot grow the trace without bound. *)

val default_capacity : int
(** 1,000,000 events. *)

val set_capacity : int -> unit
(** @raise Invalid_argument on a capacity < 1. *)

val dropped : unit -> int
(** Events dropped at the cap since the last {!reset}. *)

(** {1 Recording} *)

val start : ?cat:string -> string -> span
(** Open a span named [name] in category [cat] on the current domain. *)

val finish : ?args:(string * string) list -> span -> unit
(** Close a span, recording one complete ("X") event with the given
    attributes.  No-op on {!null_span}. *)

val with_span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] brackets [f] in a span; the span closes even if
    [f] raises.  Convenience form — [args] are built eagerly, so prefer
    {!start}/{!live}/{!finish} on hot paths. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** Record a zero-duration instant event (e.g. a fault injection). *)

(** {1 Export} *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char;  (** ['X'] complete span, ['i'] instant. *)
  ev_ts : float;  (** µs since the trace origin. *)
  ev_dur : float;  (** µs; [0.] for instants. *)
  ev_tid : int;  (** Recording domain id. *)
  ev_depth : int;  (** Nesting depth within that domain. *)
  ev_args : (string * string) list;
}

val events : unit -> event list
(** Recorded events in completion order. *)

val to_chrome_json : ?normalize:bool -> unit -> string
(** The buffer as one [trace_event] JSON document.  [normalize] replaces
    timestamps with completion-order indices (golden tests); names,
    categories, nesting and args are untouched. *)

val write : string -> unit
(** {!to_chrome_json} (real timestamps) to a file. *)
