(** Live export of the metrics registry: a periodic snapshot-delta
    ticker and a minimal Prometheus scrape endpoint.

    Both sides read the same {!Metrics.snapshot}; neither perturbs the
    registry.  The ticker appends, every [interval] seconds, one JSONL
    line per metric holding the delta since the previous tick (see
    {!Metrics.diff}) stamped with the tick time and index — so a
    consumer can fold {!Metrics.merge} over a prefix of ticks and
    recover the cumulative registry state at that point in the run.

    The HTTP responder is deliberately minimal: one background thread,
    one connection at a time, answering every GET with the current
    registry as Prometheus text exposition ({!Metrics.to_prometheus}).
    It exists so a live campaign/dynsim run can be watched with
    [curl]/Prometheus, not to be a web server. *)

type addr = Tcp of string * int | Unix_sock of string

val addr_of_string : string -> (addr, string) result
(** ["unix:PATH"], ["HOST:PORT"] or bare ["PORT"] (binds 127.0.0.1). *)

val addr_to_string : addr -> string

(** {1 Ticker} *)

val start_snapshots : ?interval:float -> path:string -> unit -> unit
(** Append delta lines to [path] every [interval] seconds (default 1.0)
    from a background thread until {!stop}.  Tick lines are the
    {!Metrics} JSONL codec objects with two extra fields, ["ts"] (µs)
    and ["tick"] (1-based index); {!Metrics.value_of_json} ignores the
    extras, so each line still decodes as a metric.
    @raise Invalid_argument on a non-positive interval, or if a ticker
    is already running. *)

(** {1 Scrape endpoint} *)

val start_http :
  ?recv_timeout:float -> ?send_timeout:float -> ?conn_cap:int -> addr -> unit
(** Bind and serve Prometheus text exposition from a background thread
    until {!stop}.

    The responder is single-threaded by design, so its robustness
    budget is per-connection: a client that connects and never sends
    its request costs at most [recv_timeout] seconds (default 1.0), a
    client that stops reading the response at most [send_timeout]
    seconds (default 1.0) — after either, the connection is dropped and
    the next scraper is served.  [conn_cap] (default 8) bounds how many
    queued connections are drained per accept wake-up: the first
    [conn_cap] are served in turn, any further backlog is closed
    unserved (a real scraper retries), so a flood of stalled sockets
    cannot wedge the endpoint.

    @raise Invalid_argument if a responder is already running or a
    timeout/cap is non-positive; @raise Unix.Unix_error when the
    address cannot be bound. *)

val render : unit -> string
(** The exposition body the responder would serve right now. *)

(** {1 Shutdown} *)

val stop : unit -> unit
(** Stop both background threads (joining them), write one final delta
    tick so the log covers the whole run, close sockets and unlink a
    unix-domain socket path.  Idempotent; safe when nothing started. *)
