module J = Dls_util.Json

(* ------------------------------------------------------------------ *)
(* Event buffer                                                        *)
(* ------------------------------------------------------------------ *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char;  (* 'X' complete span, 'i' instant *)
  ev_ts : float;  (* µs since [t0] *)
  ev_dur : float;  (* µs; 0 for instants *)
  ev_tid : int;  (* recording domain *)
  ev_depth : int;  (* nesting depth within that domain *)
  ev_args : (string * string) list;
}

(* Same switch discipline as Metrics: one atomic load guards the hot
   path; the buffer mutex is only ever touched on the enabled path. *)
let on = Atomic.make false

let lock = Mutex.create ()

let events_rev : event list ref = ref []

let buffered = ref 0

(* The buffer is bounded: a multi-hour dynsim run records millions of
   spans, and an unbounded list would eat the heap long before the
   exit-time flush.  Events past the cap are dropped (the earliest ones
   are the interesting ones for a flame view anyway) and counted, both
   internally and — when the registry is live — in [obs.trace.dropped]. *)
let default_capacity = 1_000_000

let capacity = Atomic.make default_capacity

let dropped_ = Atomic.make 0

let m_dropped = Metrics.counter "obs.trace.dropped"

let t0 = ref 0.0

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let enabled () = Atomic.get on

let enable () =
  with_lock (fun () -> if !t0 = 0.0 then t0 := Clock.now ());
  Atomic.set on true

let disable () = Atomic.set on false

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: capacity must be >= 1";
  Atomic.set capacity n

let dropped () = Atomic.get dropped_

let reset () =
  with_lock (fun () ->
      events_rev := [];
      buffered := 0;
      Atomic.set dropped_ 0;
      t0 := Clock.now ())

let events () = with_lock (fun () -> List.rev !events_rev)

let push ev =
  with_lock (fun () ->
      if !buffered < Atomic.get capacity then begin
        events_rev := ev :: !events_rev;
        Stdlib.incr buffered
      end
      else begin
        Atomic.incr dropped_;
        Metrics.incr m_dropped
      end)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span = {
  s_name : string;
  s_cat : string;
  s_t0 : float;
  s_tid : int;
  s_depth : int;
  s_live : bool;
}

(* The one span value handed out while tracing is off: [start] returns
   this shared constant, so a disabled start/finish pair allocates
   nothing at all. *)
let null_span =
  { s_name = ""; s_cat = ""; s_t0 = 0.0; s_tid = 0; s_depth = 0; s_live = false }

let live sp = sp.s_live

(* Nesting depth is per-domain state: spans on different domains
   interleave freely, but within a domain start/finish bracket properly,
   which is all Chrome's flame view needs. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let start ?(cat = "") name =
  if not (Atomic.get on) then null_span
  else begin
    let d = Domain.DLS.get depth_key in
    let depth = !d in
    Stdlib.incr d;
    { s_name = name;
      s_cat = cat;
      s_t0 = Clock.now ();
      s_tid = (Domain.self () :> int);
      s_depth = depth;
      s_live = true }
  end

let finish ?(args = []) sp =
  if sp.s_live then begin
    let d = Domain.DLS.get depth_key in
    d := Stdlib.max 0 (!d - 1);
    let t1 = Clock.now () in
    Flight.note_span ~name:sp.s_name ~dur_us:(t1 -. sp.s_t0);
    push
      { ev_name = sp.s_name;
        ev_cat = sp.s_cat;
        ev_ph = 'X';
        ev_ts = sp.s_t0 -. !t0;
        ev_dur = t1 -. sp.s_t0;
        ev_tid = sp.s_tid;
        ev_depth = sp.s_depth;
        ev_args = args }
  end

let with_span ?cat ?(args = []) name f =
  let sp = start ?cat name in
  Fun.protect ~finally:(fun () -> finish ~args sp) f

let instant ?(cat = "") ?(args = []) name =
  if Atomic.get on then begin
    let depth = !(Domain.DLS.get depth_key) in
    push
      { ev_name = name;
        ev_cat = cat;
        ev_ph = 'i';
        ev_ts = Clock.now () -. !t0;
        ev_dur = 0.0;
        ev_tid = (Domain.self () :> int);
        ev_depth = depth;
        ev_args = args }
  end

(* ------------------------------------------------------------------ *)
(* Chrome trace_event exporter                                         *)
(* ------------------------------------------------------------------ *)

(* The JSON Object Format of the trace_event spec: a {"traceEvents":
   [...]} wrapper, "X" complete events carrying ts+dur and "i" instants
   with thread scope.  pid is fixed (single process); tid is the OCaml
   domain id, which Perfetto renders as one track per domain.

   [normalize] replaces timestamps with the event's position in
   completion order (ts = index, dur = 1) and renumbers domain ids by
   first appearance (raw ids are process-global spawn counters, so they
   depend on what ran earlier) so golden tests compare stable bytes;
   span names, categories, nesting and args are untouched. *)
let event_json ~normalize ~tid_of i ev =
  let ts = if normalize then float_of_int i else ev.ev_ts in
  let dur = if normalize then 1.0 else ev.ev_dur in
  let args =
    ("depth", J.Num (float_of_int ev.ev_depth))
    :: List.map (fun (k, v) -> (k, J.Str v)) ev.ev_args
  in
  let common =
    [ ("name", J.Str ev.ev_name);
      ("cat", J.Str (if ev.ev_cat = "" then "default" else ev.ev_cat));
      ("ph", J.Str (String.make 1 ev.ev_ph));
      ("ts", J.Num ts);
      ("pid", J.Num 0.0);
      ("tid", J.Num (float_of_int (tid_of ev.ev_tid)));
      ("args", J.Obj args) ]
  in
  match ev.ev_ph with
  | 'X' -> J.Obj (common @ [ ("dur", J.Num dur) ])
  | _ -> J.Obj (common @ [ ("s", J.Str "t") ])

let to_chrome_json ?(normalize = false) () =
  let evs = events () in
  let tid_of =
    if not normalize then Fun.id
    else begin
      let table = Hashtbl.create 8 in
      List.iter
        (fun ev ->
          if not (Hashtbl.mem table ev.ev_tid) then
            Hashtbl.replace table ev.ev_tid (Hashtbl.length table))
        evs;
      fun tid -> Hashtbl.find table tid
    end
  in
  J.to_string
    (J.Obj
       [ ("traceEvents", J.Arr (List.mapi (event_json ~normalize ~tid_of) evs));
         ("displayTimeUnit", J.Str "ms") ])

let write path =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (to_chrome_json ());
      Out_channel.output_char oc '\n')
