module J = Dls_util.Json

type level = Error | Warn | Info | Debug

let level_name = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_name s =
  match String.lowercase_ascii s with
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

type value = Str of string | Int of int | Float of float | Bool of bool

type field = string * value

(* One atomic guards the hot path; the encoded threshold is [-1] when no
   sink is attached, else the severity cut-off, so [enabled] is a single
   load and an integer compare — same discipline as [Metrics.on]. *)
let threshold = Atomic.make (-1)

let sink : out_channel option ref = ref None

let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let enabled lvl =
  let t = Atomic.get threshold in
  t >= 0 && severity lvl <= t

let set_level lvl =
  if Atomic.get threshold >= 0 then Atomic.set threshold (severity lvl)

let set_sink ?(level = Info) oc =
  with_lock (fun () -> sink := Some oc);
  Atomic.set threshold (severity level)

let close_sink () =
  Atomic.set threshold (-1);
  with_lock (fun () ->
      (match !sink with Some oc -> flush oc | None -> ());
      sink := None)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let value_to_json = function
  | Str s -> J.Str s
  | Int n -> J.Num (float_of_int n)
  | Float f -> if Float.is_finite f then J.Num f else J.Null
  | Bool b -> J.Bool b

let reserved k = k = "ts" || k = "level" || k = "msg"

let record_to_json ~ts lvl msg fields =
  J.Obj
    (("ts", J.Num ts)
    :: ("level", J.Str (level_name lvl))
    :: ("msg", J.Str msg)
    :: List.map
         (fun (k, v) ->
           ((if reserved k then "_" ^ k else k), value_to_json v))
         fields)

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let emit lvl ?(fields = []) msg =
  if enabled lvl then begin
    let ts = Clock.now () in
    (* Feed the flight recorder first: a crash between the ring push and
       the sink write still leaves the record in the post-mortem. *)
    Flight.note_log ~ts ~level:(level_name lvl) ~msg ~fields:(List.map
        (fun (k, v) ->
          ( k,
            match v with
            | Str s -> s
            | Int n -> string_of_int n
            | Float f -> Printf.sprintf "%.17g" f
            | Bool b -> string_of_bool b ))
        fields);
    let line = J.to_string (record_to_json ~ts lvl msg fields) in
    with_lock (fun () ->
        match !sink with
        | Some oc ->
          (* One write call per line + flush: no torn or interleaved
             lines across domains, and a live [tail -f] sees complete
             records only. *)
          output_string oc (line ^ "\n");
          flush oc
        | None -> ())
  end

let error ?fields msg = emit Error ?fields msg

let warn ?fields msg = emit Warn ?fields msg

let info ?fields msg = emit Info ?fields msg

let debug ?fields msg = emit Debug ?fields msg
