(** Process-wide metrics registry: counters, gauges and log-bucketed
    histograms with mergeable snapshots.

    Design constraints (see DESIGN.md):
    - {b Disabled path is free.}  Registration ({!counter} &c.) is done
      once at module init; the per-event operations ({!incr}, {!add},
      {!set}, {!observe}) check one atomic flag and return without
      allocating when the registry is off (the default).
    - {b Domain-safe.}  Cells are [Atomic.t]s; any domain may record
      events concurrently.  Histogram [sum] uses a CAS loop, so only
      bucket counts / count / min / max are exactly order-independent —
      float addition is not associative and the merge/property tests
      treat [sum] accordingly.
    - {b Mergeable.}  {!snapshot} is pure data; {!merge} combines
      snapshots from different shards/runs exactly (counter add,
      histogram bucket-wise add, gauge last-writer-wins by sequence
      number), so per-shard campaign results combine into a whole-run
      view without re-measuring. *)

type counter

type gauge

type histogram

(** {1 Global switch} *)

val enable : unit -> unit

val disable : unit -> unit

val enabled : unit -> bool

(** {1 Registration}

    Idempotent by name: registering the same name twice returns the same
    cell.  @raise Invalid_argument if the name is already registered as
    a different metric kind. *)

val counter : string -> counter

val gauge : string -> gauge

val histogram : string -> histogram

(** {1 Recording} *)

val incr : counter -> unit

val add : counter -> int -> unit

val set : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Positive finite values land in a geometric bucket (growth factor
    [2{^1/4}]); non-positive or non-finite values are tallied in a
    separate underflow cell.  Finite values also update sum/min/max. *)

(** {1 Bucket geometry} *)

val base : float
(** Bucket growth factor, [2{^1/4}]; quantile estimates are within this
    relative factor of the true order statistic. *)

val bound : int -> float
(** [bound i] is the lower edge of bucket [i]: [base ** i].  Bucket [i]
    covers [[bound i, bound (i + 1))]. *)

val bucket_of : float -> int
(** Bucket index of a positive finite value, consistent with {!bound}:
    [bound (bucket_of v) <= v < bound (bucket_of v + 1)] (up to the
    clamp at the extreme indices). *)

val lo_bucket : int

val hi_bucket : int

(** {1 Snapshots} *)

type hist_snapshot = {
  hs_buckets : (int * int) list;
      (** [(bucket index, count)], strictly ascending indices, counts > 0. *)
  hs_underflow : int;  (** Non-positive / non-finite observations. *)
  hs_count : int;  (** All observations, underflow included. *)
  hs_sum : float;  (** Sum of finite observations. *)
  hs_min : float;  (** [infinity] when no finite observation yet. *)
  hs_max : float;  (** [neg_infinity] likewise. *)
}

type value =
  | Counter of int
  | Gauge of { value : float; seq : int }
  | Histogram of hist_snapshot

type snapshot = (string * value) list
(** Sorted by metric name. *)

val snapshot : unit -> snapshot
(** Read every registered metric.  Concurrent recording during the read
    may tear across cells of one histogram, never within one cell; take
    snapshots at quiescent points (between shards, after a run). *)

val reset : unit -> unit
(** Zero every registered metric (registrations are kept). *)

val empty_hist : hist_snapshot

val hist_of_values : float list -> hist_snapshot
(** Pure fold of {!observe} semantics — the reference model used by the
    property tests. *)

val merge_hist : hist_snapshot -> hist_snapshot -> hist_snapshot

val merge : snapshot -> snapshot -> snapshot
(** Exact combination: counters add, histograms add bucket-wise, gauges
    keep the later write ([seq]).  Associative and commutative except
    for float rounding in histogram [hs_sum].
    @raise Invalid_argument when one name maps to two metric kinds. *)

val diff : snapshot -> since:snapshot -> snapshot
(** The per-interval delta the live publisher appends: counters and
    histogram buckets/counts subtract, gauges keep the current write,
    and histogram [min]/[max] carry the current cumulative edges (they
    are monotone, so re-merging deltas restores them exactly).  The
    defining law, QCheck-pinned: for cumulative snapshots [s0 ⊆ s1 ⊆
    ... ⊆ sn] of one growing registry, folding {!merge} over
    [diff s1 ~since:s0; diff s2 ~since:s1; ...] rebuilds [sn] exactly —
    up to float rounding in [hs_sum], as with {!merge} itself.
    Metrics absent from [since] pass through whole.
    @raise Invalid_argument on mismatched kinds. *)

val hist_quantile : hist_snapshot -> q:float -> float
(** Upper edge of the bucket holding the rank-[ceil q*n] observation,
    clamped into [[hs_min, hs_max]]; within a factor {!base} of the true
    quantile for positive observations.  [nan] on an empty histogram.
    @raise Invalid_argument on NaN [q]. *)

(** {1 Exporters} *)

val value_to_json : string * value -> Dls_util.Json.t
(** One metric as one JSON object (one JSONL line).  Non-finite floats
    have no JSON spelling, so they are sanitized here rather than left
    to crash the exit-time flush: a NaN/infinite gauge value, histogram
    [sum], or histogram [min]/[max] edge encodes as [null]. *)

val value_of_json : Dls_util.Json.t -> (string * value, string) result
(** Inverse of {!value_to_json}; a [null] gauge value decodes to NaN, a
    [null] histogram [sum] to 0, and [null] [min]/[max] to the
    empty-histogram edges ([+inf]/[-inf]). *)

val snapshot_to_jsonl : snapshot -> string
(** One metric per line, in snapshot (name) order. *)

val snapshot_of_jsonl : string -> (snapshot, string) result

val to_prometheus : snapshot -> string
(** The snapshot as Prometheus text exposition (format 0.0.4): counters
    as [<name>_total], gauges as-is, histograms as cumulative
    [<name>_bucket{le="..."}] series whose [le] edges are the {!bound}
    upper edges of the occupied buckets plus ["+Inf"], with [_sum] and
    [_count].  Underflow observations (non-positive values) count into
    every bucket.  Metric names are sanitized to the Prometheus charset
    ([.] becomes [_]); non-finite sums export as [0] (Prometheus has no
    null). *)

val pp_summary : Format.formatter -> snapshot -> unit
(** Fixed-width human table: one row per metric with count, mean and
    p50/p95/p99/max for histograms. *)
