(** Crash flight recorder: a bounded ring of recent telemetry.

    While enabled, the ring keeps the last [capacity] entries — log
    records, span completions and fault instants — overwriting the
    oldest.  A crashed or wedged run can then be dumped post mortem:
    {!Obs} arranges a dump on uncaught exception and on [SIGUSR1], and
    {!dump_to} works on demand.

    Lock-light: recording takes one small mutex for an array store and
    two index bumps; nothing is rendered or allocated beyond the entry
    itself until a dump is requested.  Disabled (the default), {!record}
    is one atomic load and a branch. *)

type entry = {
  fl_ts : float;  (** µs, from {!Clock.now} at record time. *)
  fl_kind : string;  (** ["log"], ["span"], ["fault"], ... *)
  fl_what : string;  (** Log message / span name / fault description. *)
  fl_fields : (string * string) list;
}

(** {1 Switch} *)

val enable : ?capacity:int -> unit -> unit
(** Start recording into a fresh ring of [capacity] entries (default
    {!default_capacity}).  @raise Invalid_argument on capacity < 1. *)

val default_capacity : int

val disable : unit -> unit

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all entries (capacity and switch state are kept). *)

(** {1 Recording} *)

val record : ?fields:(string * string) list -> kind:string -> string -> unit
(** Append one entry stamped with the current {!Clock} time. *)

val note_log :
  ts:float -> level:string -> msg:string -> fields:(string * string) list -> unit
(** Entry point used by {!Log} (kind ["log"], level as a field). *)

val note_span : name:string -> dur_us:float -> unit
(** Entry point used by {!Trace.finish} (kind ["span"]). *)

(** {1 Dumping} *)

val entries : unit -> entry list
(** Chronological (oldest first); at most [capacity] entries. *)

val seen : unit -> int
(** Total entries ever recorded, including overwritten ones. *)

val dump : unit -> string
(** The ring as JSONL: a header line
    [{"flight":"dump","seen":N,"kept":K}] followed by one line per entry
    [{"ts":...,"kind":...,"what":...,<fields>}].  Deterministic under
    {!Clock.set_override}. *)

val dump_to : string -> unit
(** {!dump} to a file, atomically (write-then-rename), so a dump racing
    a reader never shows a torn file. *)
