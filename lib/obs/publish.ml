module J = Dls_util.Json

type addr = Tcp of string * int | Unix_sock of string

let addr_of_string s =
  match String.index_opt s ':' with
  | None -> (
    match int_of_string_opt s with
    | Some port when port >= 0 && port < 65536 -> Ok (Tcp ("127.0.0.1", port))
    | _ -> Error (Printf.sprintf "telemetry address %S: not a port number" s))
  | Some i ->
    let head = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    if head = "unix" then
      if rest = "" then Error "telemetry address: empty unix socket path"
      else Ok (Unix_sock rest)
    else (
      match int_of_string_opt rest with
      | Some port when port >= 0 && port < 65536 ->
        Ok (Tcp ((if head = "" then "127.0.0.1" else head), port))
      | _ -> Error (Printf.sprintf "telemetry address %S: bad port" s))

let addr_to_string = function
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port
  | Unix_sock path -> "unix:" ^ path

let render () = Metrics.to_prometheus (Metrics.snapshot ())

(* ------------------------------------------------------------------ *)
(* Shared thread plumbing                                              *)
(* ------------------------------------------------------------------ *)

(* Both exporters are plain [Thread]s, not domains: they spend their
   lives blocked in sleep/select, and a thread shares the runtime lock
   politely with the single-domain CLI main loop.  [stopping] is the
   one shutdown signal; loops poll it between short waits so [stop]
   returns promptly. *)
let stopping = Atomic.make false

let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

type ticker = {
  t_thread : Thread.t;
  t_final : unit -> unit;  (* last delta + close, run by [stop] *)
}

let ticker_state : ticker option ref = ref None

type responder = { r_thread : Thread.t; r_cleanup : unit -> unit }

let responder_state : responder option ref = ref None

(* ------------------------------------------------------------------ *)
(* Snapshot-delta ticker                                               *)
(* ------------------------------------------------------------------ *)

let tick_lines ~ts ~tick delta =
  String.concat ""
    (List.map
       (fun entry ->
         let j =
           match Metrics.value_to_json entry with
           | J.Obj fields ->
             J.Obj (("ts", J.Num ts) :: ("tick", J.Num (float_of_int tick)) :: fields)
           | j -> j
         in
         J.to_string j ^ "\n")
       delta)

let start_snapshots ?(interval = 1.0) ~path () =
  if not (interval > 0.0) then
    invalid_arg "Publish.start_snapshots: interval must be > 0";
  with_lock (fun () ->
      if !ticker_state <> None then
        invalid_arg "Publish.start_snapshots: ticker already running");
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
  (* [prev] starts empty, so the first tick's delta is the whole
     registry state — folding merge over all ticks needs no seed. *)
  let prev = ref [] in
  let tick = ref 0 in
  let oc_lock = Mutex.create () in
  let emit_tick () =
    let snap = Metrics.snapshot () in
    let delta = Metrics.diff snap ~since:!prev in
    prev := snap;
    Stdlib.incr tick;
    let lines = tick_lines ~ts:(Clock.now ()) ~tick:!tick delta in
    Mutex.lock oc_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock oc_lock)
      (fun () ->
        output_string oc lines;
        flush oc)
  in
  let thread =
    Thread.create
      (fun () ->
        let rec wait remaining =
          if (not (Atomic.get stopping)) && remaining > 0.0 then begin
            let step = Float.min 0.05 remaining in
            Thread.delay step;
            wait (remaining -. step)
          end
        in
        while not (Atomic.get stopping) do
          wait interval;
          if not (Atomic.get stopping) then emit_tick ()
        done)
      ()
  in
  let final () =
    (* One closing delta so the tick log always sums to the final
       registry state, however the interval and the run length align. *)
    emit_tick ();
    close_out oc
  in
  with_lock (fun () ->
      ticker_state := Some { t_thread = thread; t_final = final })

(* ------------------------------------------------------------------ *)
(* Prometheus scrape endpoint                                          *)
(* ------------------------------------------------------------------ *)

let http_response body =
  Printf.sprintf
    "HTTP/1.1 200 OK\r\n\
     Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    (String.length body) body

(* One connection at a time, read-some-then-answer: every HTTP/1.x GET
   a scraper sends fits this, and a misbehaving client costs at most
   one recv timeout (never sends) plus one send timeout (never reads),
   never a wedged exporter.  SO_SNDTIMEO matters as much as SO_RCVTIMEO:
   without it a scraper that stops draining its socket parks the
   responder in [write] forever once the exposition outgrows the kernel
   buffer. *)
let serve_client ~recv_timeout ~send_timeout fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO recv_timeout;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO send_timeout
       with Unix.Unix_error _ -> ());
      let buf = Bytes.create 2048 in
      (try ignore (Unix.read fd buf 0 (Bytes.length buf))
       with Unix.Unix_error _ -> ());
      let resp = http_response (render ()) in
      let rec write_all pos =
        if pos < String.length resp then
          match
            Unix.write_substring fd resp pos (String.length resp - pos)
          with
          | 0 -> ()
          | n -> write_all (pos + n)
          | exception Unix.Unix_error _ -> ()
          (* a timed-out send raises EAGAIN: drop the connection *)
      in
      write_all 0)

let start_http ?(recv_timeout = 1.0) ?(send_timeout = 1.0) ?(conn_cap = 8)
    addr =
  if not (recv_timeout > 0.0 && send_timeout > 0.0) then
    invalid_arg "Publish.start_http: timeouts must be > 0";
  if conn_cap < 1 then invalid_arg "Publish.start_http: conn_cap must be >= 1";
  with_lock (fun () ->
      if !responder_state <> None then
        invalid_arg "Publish.start_http: responder already running");
  let sock, cleanup_sock =
    match addr with
    | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
          | _ -> raise (Unix.Unix_error (Unix.EINVAL, "getaddrinfo", host)))
      in
      let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt s Unix.SO_REUSEADDR true;
      Unix.bind s (Unix.ADDR_INET (ip, port));
      (s, fun () -> ())
    | Unix_sock path ->
      if Sys.file_exists path then Sys.remove path;
      let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind s (Unix.ADDR_UNIX path);
      (s, fun () -> try Sys.remove path with Sys_error _ -> ())
  in
  Unix.listen sock 8;
  Unix.set_nonblock sock;
  let thread =
    Thread.create
      (fun () ->
        let continue = ref true in
        (* Drain one select wake-up's backlog: serve the first
           [conn_cap] connections, close the rest unserved so a pile of
           stalled scrapers bounds this wake at
           conn_cap * (recv_timeout + send_timeout). *)
        let rec drain served =
          match Unix.accept sock with
          | fd, _ ->
            if served < conn_cap then begin
              serve_client ~recv_timeout ~send_timeout fd;
              drain (served + 1)
            end
            else begin
              (try Unix.close fd with Unix.Unix_error _ -> ());
              drain served
            end
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
            ()
          | exception Unix.Unix_error _ -> continue := false
        in
        while !continue && not (Atomic.get stopping) do
          (* Select with a short timeout so the stop flag is honoured
             even when no scraper ever connects. *)
          match Unix.select [ sock ] [] [] 0.2 with
          | [], _, _ -> ()
          | _ :: _, _, _ -> drain 0
          | exception Unix.Unix_error _ -> continue := false
        done)
      ()
  in
  let cleanup () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    cleanup_sock ()
  in
  with_lock (fun () ->
      responder_state := Some { r_thread = thread; r_cleanup = cleanup })

(* ------------------------------------------------------------------ *)
(* Shutdown                                                            *)
(* ------------------------------------------------------------------ *)

let stop () =
  Atomic.set stopping true;
  let t, r =
    with_lock (fun () ->
        let t = !ticker_state and r = !responder_state in
        ticker_state := None;
        responder_state := None;
        (t, r))
  in
  Option.iter
    (fun { t_thread; t_final } ->
      Thread.join t_thread;
      t_final ())
    t;
  Option.iter
    (fun { r_thread; r_cleanup } ->
      Thread.join r_thread;
      r_cleanup ())
    r;
  Atomic.set stopping false
