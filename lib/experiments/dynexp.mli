(** Dynamic-workload experiment: online re-planning versus batch
    baselines on the same traces.

    For each sampled platform and each admission {!Dls_dynsim.Dynamic.policy},
    the same workload — synthetic Poisson/heavy-tailed, or an SWF trace
    replayed deterministically — is driven through the event-driven
    simulator.  The policies differ only in which queue heads they admit
    (the LP plans whatever set it is given), so the comparison isolates
    the value of joint steady-state planning over FCFS serialization and
    EASY backfilling.

    Runs on the generic {!Engine}: JSONL logging, checkpoint manifests,
    sharding and crash-safe resume all inherited.  Each record carries
    an MD5 digest of the run's event log, which the determinism tests
    compare across domain counts and across kill/resume. *)

type config = {
  seed : int;
  k : int;  (** clusters per platform *)
  platforms : int;
  jobs : int;  (** synthetic workload length (ignored with [swf]) *)
  rate : float;  (** synthetic arrival rate (ignored with [swf]) *)
  heavy : bool;  (** Pareto job sizes instead of uniform *)
  swf : string option;
      (** replay this SWF trace instead of synthesizing a workload *)
  work_scale : float;  (** SWF work multiplier ({!Dls_dynsim.Workload.of_swf}) *)
  fault_rate : float;  (** link fault rate; 0 disables fault injection *)
  policies : Dls_dynsim.Dynamic.policy list;
  measure_time : bool;
      (** [false] records re-plan wall-clock as 0 for byte-reproducible
          logs, as in {!Campaign.config} *)
}

val default_config : config
(** seed 33, K = 4, 3 platforms, 40 jobs at rate 0.4, uniform sizes,
    no SWF, work scale 1, no faults, all three policies, timings on. *)

val total : config -> int
(** [platforms * length policies]; index [i] runs platform
    [i / length policies] under policy [i mod length policies]. *)

val platform_of_index : config -> int -> int
val policy_of_index : config -> int -> Dls_dynsim.Dynamic.policy

(** {2 Records} *)

type record = {
  index : int;
  platform : int;
  policy : Dls_dynsim.Dynamic.policy;
  jobs : int;  (** workload length *)
  completed : int;
  unfinished : int;
  makespan : float;
  completed_work : float;
  throughput : float;
  mean_response : float;
  events : int;
  replans : int;
  replan_seconds : float;  (** summed ladder wall-clock; out-of-band *)
  log_digest : string;  (** MD5 of the event log, hex *)
  guard_exhausted : bool;
}

type entry = Record of record | Skipped of { index : int; reason : string }

val entry_index : entry -> int

val replay : config -> index:int -> (int * Dls_dynsim.Dynamic.result, string) result
(** Re-run one index outside the Engine, returning the workload length
    and the full {!Dls_dynsim.Dynamic.result} — including the event log
    that {!record.log_digest} summarizes.  Used by the CLI's
    [--events] dump and by the determinism tests. *)

val evaluate_index : config -> int -> entry
(** Pure function of [(config, index)] up to wall-clock fields — and of
    the SWF file's contents, which must not change across a resume. *)

val entry_to_line : entry -> string
val entry_of_line : string -> (entry, string) result

val run :
  ?domains:int ->
  ?chunk:int ->
  ?checkpoint_every:int ->
  ?shards:int ->
  ?shard:int ->
  ?resume:bool ->
  ?out:string ->
  ?on_entry:(entry -> unit) ->
  config ->
  (Engine.summary, string) result
(** {!Engine.run} under this experiment's spec — the same checkpoint,
    resume and sharding contract as {!Campaign.run}. *)

val collect : ?domains:int -> config -> record list
(** In-memory run; records in index order.
    @raise Invalid_argument on an invalid config. *)

val table : config -> record list -> Report.table
(** Per policy: platforms evaluated, mean completions, mean makespan,
    mean throughput, mean response time, mean re-plans and mean ladder
    seconds — throughput is the headline LP-repair-vs-FCFS column. *)
