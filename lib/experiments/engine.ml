module Parallel = Dls_util.Parallel
module M = Dls_obs.Metrics
module Trace = Dls_obs.Trace
module Olog = Dls_obs.Log
module Flight = Dls_obs.Flight

type 'e spec = {
  log_label : string;
  total : int;
  index_of : 'e -> int;
  to_line : 'e -> string;
  of_line : string -> ('e, string) result;
  evaluate : int -> 'e;
  skip_reason : 'e -> string option;
  entry_times : 'e -> (string * float) list;
  time_labels : string list;
  log_time_stats : bool;
  write_manifest : out:string -> completed:int -> unit;
  check_manifest : path:string -> (unit, string) result;
}

type summary = {
  s_total : int;
  s_completed : int;
  s_skipped : int;
  s_evaluated : int;
  s_replayed : int;
  s_wall : float;
  s_times : (string * float array) list;
}

let ( let* ) = Result.bind

(* The JSONL/torn-tail/atomic-manifest machinery lives in
   {!Dls_util.Wal} (the daemon journals through the same code); these
   aliases keep the Engine API stable for the experiment specs. *)
let load_log ~of_line ~path = Dls_util.Wal.load ~of_line ~path

let write_atomic ~path content = Dls_util.Wal.write_atomic ~path content

let validate spec ~shards ~shard =
  if spec.total < 0 then Error (spec.log_label ^ ": negative total")
  else if shards < 1 then Error (spec.log_label ^ ": shards must be >= 1")
  else
    match shard with
    | Some s when s < 0 || s >= shards ->
      Error
        (Printf.sprintf "%s: shard %d outside [0, %d)" spec.log_label s shards)
    | _ -> Ok ()

let run ?domains ?chunk ?(checkpoint_every = 256) ?(shards = 1) ?shard
    ?(resume = false) ?out ?(on_entry = fun _ -> ()) spec =
  let* () = validate spec ~shards ~shard in
  let n = spec.total in
  (* `Pending / `Record / `Skipped per index; replay flips entries out
     of `Pending so only the frontier is evaluated. *)
  let status = Array.make (Stdlib.max n 1) `Pending in
  let* replayed =
    match out with
    | Some path when resume && Sys.file_exists path ->
      let* () = spec.check_manifest ~path in
      let* entries, valid_len = load_log ~of_line:spec.of_line ~path in
      let dropped = Dls_util.Wal.truncate_torn ~path ~valid_len in
      if dropped > 0 then
        Logs.warn (fun m ->
            m "%s: dropping %d torn trailing bytes of %s" spec.log_label
              dropped path);
      let* entries =
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            let i = spec.index_of e in
            if i < 0 || i >= n then
              Error
                (Printf.sprintf
                   "%s: entry index %d outside experiment of %d entries; log \
                    belongs to a different config"
                   path i n)
            else if status.(i) <> `Pending then Ok acc (* duplicate *)
            else begin
              status.(i) <-
                (match spec.skip_reason e with
                | None -> `Record
                | Some _ -> `Skipped);
              Ok (e :: acc)
            end)
          (Ok []) entries
      in
      Ok (List.rev entries)
    | Some path ->
      (* Fresh start: clear stale artifacts of a previous run. *)
      if Sys.file_exists path then Sys.remove path;
      let mpath = path ^ ".manifest" in
      if Sys.file_exists mpath then Sys.remove mpath;
      Ok []
    | None -> Ok []
  in
  let replayed_n = List.length replayed in
  List.iter on_entry replayed;
  let shards_to_run =
    match shard with Some s -> [ s ] | None -> List.init shards Fun.id
  in
  let pending_of s =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if i mod shards = s && status.(i) = `Pending then acc := i :: !acc
    done;
    Array.of_list !acc
  in
  let pending_total =
    List.fold_left (fun acc s -> acc + Array.length (pending_of s)) 0
      shards_to_run
  in
  let oc = Option.map (fun path -> Dls_util.Wal.open_append ~path) out in
  let logged_total = ref replayed_n in
  let checkpoint () =
    match out with
    | Some path ->
      spec.write_manifest ~out:path ~completed:!logged_total;
      if Olog.enabled Olog.Debug then
        Olog.debug "engine.checkpoint"
          ~fields:
            [ ("experiment", Olog.Str spec.log_label);
              ("completed", Olog.Int !logged_total) ];
      Flight.record ~kind:"checkpoint" spec.log_label
        ~fields:[ ("completed", string_of_int !logged_total) ]
    | None -> ()
  in
  let t0 = Unix.gettimeofday () in
  let evaluated = ref 0 in
  let since_checkpoint = ref 0 in
  let last_progress = ref t0 in
  let time_samples = List.map (fun label -> (label, ref [])) spec.time_labels in
  (* Registry mirrors of the per-label samples: log-bucketed histograms
     whose mergeable snapshots let per-shard runs combine exactly
     (registration is idempotent, so re-runs reuse the same cells). *)
  let time_hists =
    List.map
      (fun label -> (label, M.histogram (spec.log_label ^ ".time." ^ label)))
      spec.time_labels
  in
  let m_entries = M.counter (spec.log_label ^ ".entries") in
  let m_skipped = M.counter (spec.log_label ^ ".skipped") in
  let handle_entry e =
    (match oc with
    | Some oc ->
      output_string oc (spec.to_line e);
      output_char oc '\n'
    | None -> ());
    (match spec.skip_reason e with
    | None ->
      status.(spec.index_of e) <- `Record;
      M.incr m_entries;
      List.iter
        (fun (label, t) ->
          (match List.assoc_opt label time_samples with
          | Some samples -> samples := t :: !samples
          | None -> ());
          match List.assoc_opt label time_hists with
          | Some h -> M.observe h t
          | None -> ())
        (spec.entry_times e)
    | Some reason ->
      status.(spec.index_of e) <- `Skipped;
      M.incr m_skipped;
      if Olog.enabled Olog.Warn then
        Olog.warn "engine.entry.skipped"
          ~fields:
            [ ("experiment", Olog.Str spec.log_label);
              ("index", Olog.Int (spec.index_of e));
              ("reason", Olog.Str reason) ];
      Logs.warn (fun m ->
          m "%s: index %d skipped: %s" spec.log_label (spec.index_of e) reason));
    incr evaluated;
    incr since_checkpoint;
    incr logged_total;
    on_entry e
  in
  let progress () =
    let now = Unix.gettimeofday () in
    if now -. !last_progress >= 2.0 && !evaluated > 0 then begin
      last_progress := now;
      let rate = float_of_int !evaluated /. (now -. t0) in
      let remaining = pending_total - !evaluated in
      Logs.info (fun m ->
          m "%s: %d/%d evaluated (%.2f records/s, ETA %.0fs)" spec.log_label
            !evaluated pending_total rate
            (float_of_int remaining /. Stdlib.max 1e-9 rate))
    end
  in
  Fun.protect
    ~finally:(fun () -> Option.iter close_out oc)
    (fun () ->
      checkpoint ();
      List.iter
        (fun s ->
          let sp = Trace.start ~cat:"campaign" (spec.log_label ^ ".shard") in
          let before = !evaluated in
          if Olog.enabled Olog.Info then
            Olog.info "engine.shard.start"
              ~fields:
                [ ("experiment", Olog.Str spec.log_label);
                  ("shard", Olog.Int s);
                  ("pending", Olog.Int (Array.length (pending_of s))) ];
          Parallel.map_chunked ?domains ?chunk spec.evaluate (pending_of s)
            ~on_chunk:(fun ~offset:_ results ->
              Array.iter handle_entry results;
              Option.iter flush oc;
              if !since_checkpoint >= checkpoint_every then begin
                since_checkpoint := 0;
                checkpoint ()
              end;
              progress ());
          if Olog.enabled Olog.Info then
            Olog.info "engine.shard.finish"
              ~fields:
                [ ("experiment", Olog.Str spec.log_label);
                  ("shard", Olog.Int s);
                  ("entries", Olog.Int (!evaluated - before)) ];
          if Flight.enabled () then
            Flight.record ~kind:"shard" (spec.log_label ^ ".shard")
              ~fields:
                [ ("shard", string_of_int s);
                  ("entries", string_of_int (!evaluated - before)) ];
          if Trace.live sp then
            Trace.finish sp
              ~args:
                [ ("shard", string_of_int s);
                  ("entries", string_of_int (!evaluated - before)) ])
        shards_to_run;
      checkpoint ());
  let wall = Unix.gettimeofday () -. t0 in
  let completed = ref 0 and skipped = ref 0 in
  Array.iteri
    (fun i st ->
      if i < n then
        match st with
        | `Record -> incr completed
        | `Skipped -> incr skipped
        | `Pending -> ())
    status;
  (* Per-label wall-clock digest for long runs. *)
  let times =
    List.map
      (fun (label, samples) -> (label, Array.of_list (List.rev !samples)))
      time_samples
  in
  if spec.log_time_stats && !evaluated > 0 then
    List.iter
      (fun (label, samples) ->
        if Array.length samples > 0 then
          Logs.info (fun m ->
              m "%s: %s wall-clock mean %.4fs median %.4fs p95 %.4fs over %d \
                 records"
                spec.log_label label
                (Dls_util.Stats.mean samples)
                (Dls_util.Stats.median samples)
                (Dls_util.Stats.percentile samples ~p:95.0)
                (Array.length samples)))
      times;
  Ok
    { s_total = n;
      s_completed = !completed;
      s_skipped = !skipped;
      s_evaluated = !evaluated;
      s_replayed = replayed_n;
      s_wall = wall;
      s_times = times }
