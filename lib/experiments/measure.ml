module Gen = Dls_platform.Generator
module Prng = Dls_util.Prng
open Dls_core

type values = {
  lp_sum : float;
  lp_maxmin : float;
  g_sum : float;
  g_maxmin : float;
  lpr_sum : float;
  lpr_maxmin : float;
  lprg_sum : float;
  lprg_maxmin : float;
  lprr_sum : float option;
  lprr_maxmin : float option;
  lprr_counters : Dls_lp.Revised_simplex.counters option;
  time_lp : float;
  time_g : float;
  time_lpr : float;
  time_lprg : float;
  time_lprr : float option;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let table1_choice rng values = Prng.pick rng (Array.of_list values)

let sample_params rng ~k =
  { Gen.k;
    topology_model = Gen.Erdos_renyi;
    connectivity = table1_choice rng (List.init 8 (fun i -> 0.1 *. float_of_int (i + 1)));
    heterogeneity = table1_choice rng [ 0.2; 0.4; 0.6; 0.8 ];
    mean_g = table1_choice rng [ 50.0; 250.0; 350.0; 450.0 ];
    mean_bw = table1_choice rng (List.init 9 (fun i -> 10.0 *. float_of_int (i + 1)));
    mean_maxcon = table1_choice rng (List.init 10 (fun i -> float_of_int (5 + (10 * i))));
    speed = 100.0;
    speed_heterogeneity = 0.0 }

let assign_workload ?(app_fraction = 0.5) ?(source_speed_factor = 0.0) rng platform
    =
  let module P = Dls_platform.Platform in
  let k = P.num_clusters platform in
  let payoffs =
    Array.init k (fun _ -> if Prng.bool rng ~p:app_fraction then 1.0 else 0.0)
  in
  if Array.for_all (fun pi -> pi = 0.0) payoffs then
    payoffs.(Prng.int rng ~lo:0 ~hi:(k - 1)) <- 1.0;
  let platform =
    if source_speed_factor >= 1.0 then platform
    else begin
      let clusters =
        Array.init k (fun c ->
            let cl = P.cluster platform c in
            if payoffs.(c) > 0.0 then
              { cl with P.speed = cl.P.speed *. source_speed_factor }
            else cl)
      in
      P.make ~clusters ~topology:(P.topology platform)
        ~backbones:(Array.init (P.num_backbones platform) (P.backbone platform))
    end
  in
  Problem.make platform ~payoffs

let sample_problem ?app_fraction ?source_speed_factor rng ~k =
  let platform = Gen.generate rng (sample_params rng ~k) in
  assign_workload ?app_fraction ?source_speed_factor rng platform

let checked problem name alloc =
  if Allocation.is_feasible problem alloc then Ok alloc
  else Error (name ^ " produced an infeasible allocation")

let ( let* ) = Result.bind

let evaluate ?(with_lprr = false) ?rng problem =
  let rng = match rng with Some r -> r | None -> Prng.create ~seed:0x5EED in
  let value obj alloc = Allocation.objective obj problem alloc in
  let* lp_maxmin, time_lp =
    match time (fun () -> Heuristics.lp_bound ~objective:Lp_relax.Maxmin problem) with
    | Ok v, t -> Ok (v, t)
    | Error msg, _ -> Error ("LP maxmin: " ^ msg)
  in
  let* lp_sum =
    Result.map_error (fun m -> "LP sum: " ^ m)
      (Heuristics.lp_bound ~objective:Lp_relax.Sum problem)
  in
  let g_alloc, time_g = time (fun () -> Greedy.solve problem) in
  let* g_alloc = checked problem "G" g_alloc in
  let run_lp_based name solve =
    let* maxmin_alloc, t =
      match time (fun () -> solve ~objective:Lp_relax.Maxmin problem) with
      | Ok a, t -> Ok (a, t)
      | Error msg, _ -> Error (name ^ " maxmin: " ^ msg)
    in
    let* maxmin_alloc = checked problem name maxmin_alloc in
    let* sum_alloc =
      Result.map_error (fun m -> name ^ " sum: " ^ m)
        (solve ~objective:Lp_relax.Sum problem)
    in
    let* sum_alloc = checked problem name sum_alloc in
    Ok (value `Maxmin maxmin_alloc, value `Sum sum_alloc, t)
  in
  let* lpr_maxmin, lpr_sum, time_lpr =
    run_lp_based "LPR" (fun ~objective pr -> Lpr.solve ~objective pr)
  in
  let* lprg_maxmin, lprg_sum, time_lprg =
    run_lp_based "LPRG" (fun ~objective pr -> Lprg.solve ~objective pr)
  in
  let* lprr_maxmin, lprr_sum, lprr_counters, time_lprr =
    if not with_lprr then Ok (None, None, None, None)
    else begin
      (* Capture solver counters from the MAXMIN run (the timed one). *)
      let counters = ref None in
      let* mm, s, t =
        run_lp_based "LPRR" (fun ~objective pr ->
            Result.map
              (fun st ->
                if objective = Lp_relax.Maxmin then counters := st.Lprr.counters;
                st.Lprr.allocation)
              (Lprr.solve ~objective ~rng pr))
      in
      Ok (Some mm, Some s, !counters, Some t)
    end
  in
  Ok
    { lp_sum; lp_maxmin;
      g_sum = value `Sum g_alloc;
      g_maxmin = value `Maxmin g_alloc;
      lpr_sum; lpr_maxmin; lprg_sum; lprg_maxmin; lprr_sum; lprr_maxmin;
      lprr_counters;
      time_lp; time_g; time_lpr; time_lprg; time_lprr }
