module Gen = Dls_platform.Generator
module Stats = Dls_util.Stats

type row = {
  k : int;
  platforms : int;
  maxmin_lprg : float;
  sum_lprg : float;
  maxmin_g : float;
  sum_g : float;
  maxmin_lprg_sd : float;  (** std. deviation across platforms *)
  maxmin_g_sd : float;
}

let eps = 1e-9

let run ?(seed = 1) ?(ks = [ 5; 15; 25; 35; 45; 55 ]) ?(per_k = 4) () =
  (* One resumable-runner campaign; rows group its records by K. *)
  let records =
    Campaign.collect
      { Campaign.default_config with Campaign.seed; ks; per_k }
  in
  List.map
    (fun k ->
      let maxmin_lprg = ref [] and sum_lprg = ref [] in
      let maxmin_g = ref [] and sum_g = ref [] in
      let used = ref 0 in
      List.iter
        (fun (r : Campaign.record) ->
          let v = r.Campaign.values in
          if r.Campaign.params.Gen.k = k
             && v.Measure.lp_maxmin > eps && v.Measure.lp_sum > eps
          then begin
            incr used;
            maxmin_lprg :=
              (v.Measure.lprg_maxmin /. v.Measure.lp_maxmin) :: !maxmin_lprg;
            sum_lprg := (v.Measure.lprg_sum /. v.Measure.lp_sum) :: !sum_lprg;
            maxmin_g := (v.Measure.g_maxmin /. v.Measure.lp_maxmin) :: !maxmin_g;
            sum_g := (v.Measure.g_sum /. v.Measure.lp_sum) :: !sum_g
          end)
        records;
      let mean l = Stats.mean (Array.of_list l) in
      let sd l = Stats.stddev (Array.of_list l) in
      { k; platforms = !used;
        maxmin_lprg = mean !maxmin_lprg;
        sum_lprg = mean !sum_lprg;
        maxmin_g = mean !maxmin_g;
        sum_g = mean !sum_g;
        maxmin_lprg_sd = sd !maxmin_lprg;
        maxmin_g_sd = sd !maxmin_g })
    ks

let table rows =
  { Report.title = "Figure 5: LPRG and G relative to the LP upper bound, by K";
    header =
      [ "K"; "platforms"; "MAXMIN(LPRG)/LP"; "sd"; "SUM(LPRG)/LP"; "MAXMIN(G)/LP";
        "sd"; "SUM(G)/LP" ];
    rows =
      List.map
        (fun r ->
          [ string_of_int r.k; string_of_int r.platforms;
            Report.cell_float r.maxmin_lprg; Report.cell_float r.maxmin_lprg_sd;
            Report.cell_float r.sum_lprg; Report.cell_float r.maxmin_g;
            Report.cell_float r.maxmin_g_sd; Report.cell_float r.sum_g ])
        rows }
