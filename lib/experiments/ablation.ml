module Prng = Dls_util.Prng
module Stats = Dls_util.Stats
module Gen = Dls_platform.Generator
open Dls_core

let eps = 1e-9

let mean l = Stats.mean (Array.of_list l)

(* ------------------------------------------------------------------ *)
(* Rounding policy: LPRR vs the equal-probability variant              *)
(* ------------------------------------------------------------------ *)

type rounding_row = {
  k : int;
  platforms : int;
  maxmin_lprr : float;
  maxmin_equal : float;
}

let rounding_policy ?(seed = 6) ?(ks = [ 8; 12 ]) ?(per_k = 4) () =
  let rng = Prng.create ~seed in
  List.map
    (fun k ->
      let lprr = ref [] and equal = ref [] in
      let used = ref 0 in
      for _ = 1 to per_k do
        let problem = Measure.sample_problem rng ~k in
        match Heuristics.lp_bound ~objective:Lp_relax.Maxmin problem with
        | Error _ -> ()
        | Ok bound when bound <= eps -> ()
        | Ok bound ->
          let run solve =
            match
              solve ?warm:None ?objective:(Some Lp_relax.Maxmin) ?backend:None
                ~rng:(Prng.split rng) problem
            with
            | Ok stats ->
              Some (Allocation.maxmin_objective problem stats.Lprr.allocation /. bound)
            | Error _ -> None
          in
          (match (run Lprr.solve, run Lprr.solve_equal_probability) with
           | Some a, Some b ->
             incr used;
             lprr := a :: !lprr;
             equal := b :: !equal
           | _ -> ())
      done;
      { k; platforms = !used; maxmin_lprr = mean !lprr; maxmin_equal = mean !equal })
    ks

let rounding_table rows =
  { Report.title =
      "Ablation: LPRR rounding policy (paper: equal-probability is much worse)";
    header = [ "K"; "platforms"; "MAXMIN(LPRR)/LP"; "MAXMIN(equal-prob)/LP" ];
    rows =
      List.map
        (fun r ->
          [ string_of_int r.k; string_of_int r.platforms;
            Report.cell_float r.maxmin_lprr; Report.cell_float r.maxmin_equal ])
        rows }

(* ------------------------------------------------------------------ *)
(* Network-tight regime: SUM stops being trivially saturated           *)
(* ------------------------------------------------------------------ *)

type tight_row = {
  k : int;
  platforms : int;
  sum_g : float;
  sum_lpr : float;
  sum_lprg : float;
  maxmin_g : float;
  maxmin_lprg : float;
}

let tight_params k =
  { Gen.k; topology_model = Gen.Erdos_renyi; connectivity = 0.2;
    heterogeneity = 0.2; mean_g = 450.0; mean_bw = 10.0; mean_maxcon = 5.0;
    speed = 100.0; speed_heterogeneity = 0.0 }

let network_tight ?(seed = 7) ?(ks = [ 5; 10; 15; 20 ]) ?(per_k = 5) () =
  let rng = Prng.create ~seed in
  List.map
    (fun k ->
      let acc = Array.make 5 [] in
      let push i v = acc.(i) <- v :: acc.(i) in
      let used = ref 0 in
      for _ = 1 to per_k do
        let platform = Gen.generate rng (tight_params k) in
        let problem = Measure.assign_workload rng platform in
        match Measure.evaluate problem with
        | Error msg -> Logs.warn (fun m -> m "ablation: skipping platform: %s" msg)
        | Ok v ->
          if v.Measure.lp_sum > eps && v.Measure.lp_maxmin > eps then begin
            incr used;
            push 0 (v.Measure.g_sum /. v.Measure.lp_sum);
            push 1 (v.Measure.lpr_sum /. v.Measure.lp_sum);
            push 2 (v.Measure.lprg_sum /. v.Measure.lp_sum);
            push 3 (v.Measure.g_maxmin /. v.Measure.lp_maxmin);
            push 4 (v.Measure.lprg_maxmin /. v.Measure.lp_maxmin)
          end
      done;
      { k; platforms = !used;
        sum_g = mean acc.(0); sum_lpr = mean acc.(1); sum_lprg = mean acc.(2);
        maxmin_g = mean acc.(3); maxmin_lprg = mean acc.(4) })
    ks

let tight_table rows =
  { Report.title =
      "Ablation: network-tight regime (bw = 10, maxcon = 5, g = 450)";
    header =
      [ "K"; "platforms"; "SUM(G)/LP"; "SUM(LPR)/LP"; "SUM(LPRG)/LP";
        "MAXMIN(G)/LP"; "MAXMIN(LPRG)/LP" ];
    rows =
      List.map
        (fun r ->
          [ string_of_int r.k; string_of_int r.platforms;
            Report.cell_float r.sum_g; Report.cell_float r.sum_lpr;
            Report.cell_float r.sum_lprg; Report.cell_float r.maxmin_g;
            Report.cell_float r.maxmin_lprg ])
        rows }

(* ------------------------------------------------------------------ *)
(* Unbounded-connection baseline                                       *)
(* ------------------------------------------------------------------ *)

type baseline_row = {
  k : int;
  platforms : int;
  idealized_over_realistic : float;
  repaired_over_realistic : float;
}

let unbounded_baseline ?(seed = 11) ?(ks = [ 5; 10; 15 ]) ?(per_k = 4) () =
  let rng = Prng.create ~seed in
  List.map
    (fun k ->
      let over = ref [] and under = ref [] in
      let used = ref 0 in
      for _ = 1 to per_k do
        let platform = Gen.generate rng (tight_params k) in
        let problem = Measure.assign_workload rng platform in
        match Unbounded_baseline.compare problem with
        | Ok c when c.Unbounded_baseline.realistic > eps ->
          incr used;
          over :=
            (c.Unbounded_baseline.idealized /. c.Unbounded_baseline.realistic)
            :: !over;
          under :=
            (c.Unbounded_baseline.repaired /. c.Unbounded_baseline.realistic)
            :: !under
        | Ok _ | Error _ -> ()
      done;
      { k; platforms = !used;
        idealized_over_realistic = mean !over;
        repaired_over_realistic = mean !under })
    ks

let baseline_table rows =
  { Report.title =
      "Ablation: unlimited-connection model ([34]) vs the paper's model \
       (MAXMIN, tight network)";
    header =
      [ "K"; "platforms"; "idealized / realistic LP"; "repaired / realistic LP" ];
    rows =
      List.map
        (fun r ->
          [ string_of_int r.k; string_of_int r.platforms;
            Report.cell_float r.idealized_over_realistic;
            Report.cell_float r.repaired_over_realistic ])
        rows }

(* ------------------------------------------------------------------ *)
(* Topology models                                                     *)
(* ------------------------------------------------------------------ *)

type topology_row = {
  model : string;
  platforms : int;
  mean_backbones : float;
  maxmin_g : float;
  maxmin_lprg : float;
}

let topology_models ?(seed = 10) ?(k = 15) ?(per_model = 4) () =
  let rng = Prng.create ~seed in
  let models =
    [ ("Erdos-Renyi p=0.3", Gen.Erdos_renyi);
      ("Waxman a=0.9 b=0.3", Gen.Waxman { alpha = 0.9; beta = 0.3 });
      ("Barabasi-Albert m=2", Gen.Barabasi_albert { m = 2 }) ]
  in
  List.map
    (fun (model, topology_model) ->
      let g_ratios = ref [] and lprg_ratios = ref [] and backbones = ref [] in
      let used = ref 0 in
      for _ = 1 to per_model do
        let params =
          { Gen.default_params with Gen.k; topology_model; connectivity = 0.3 }
        in
        let platform = Gen.generate rng params in
        let problem = Measure.assign_workload rng platform in
        backbones :=
          float_of_int (Dls_platform.Platform.num_backbones platform) :: !backbones;
        match
          ( Heuristics.lp_bound ~objective:Lp_relax.Maxmin problem,
            Lprg.solve ~objective:Lp_relax.Maxmin problem )
        with
        | Ok bound, Ok lprg when bound > eps ->
          incr used;
          let g = Greedy.solve problem in
          g_ratios := (Allocation.maxmin_objective problem g /. bound) :: !g_ratios;
          lprg_ratios :=
            (Allocation.maxmin_objective problem lprg /. bound) :: !lprg_ratios
        | _ -> ()
      done;
      { model; platforms = !used;
        mean_backbones = mean !backbones;
        maxmin_g = mean !g_ratios;
        maxmin_lprg = mean !lprg_ratios })
    models

let topology_table rows =
  { Report.title = "Ablation: topology models (MAXMIN ratios, K = 15)";
    header =
      [ "model"; "platforms"; "mean backbones"; "MAXMIN(G)/LP"; "MAXMIN(LPRG)/LP" ];
    rows =
      List.map
        (fun r ->
          [ r.model; string_of_int r.platforms;
            Report.cell_float r.mean_backbones; Report.cell_float r.maxmin_g;
            Report.cell_float r.maxmin_lprg ])
        rows }

(* ------------------------------------------------------------------ *)
(* Workload sensitivity (DESIGN.md 2.2)                                *)
(* ------------------------------------------------------------------ *)

type workload_row = {
  app_fraction : float;
  source_speed_factor : float;
  platforms : int;
  maxmin_g_ratio : float;
  maxmin_lprg_ratio : float;
}

let workload ?(seed = 8) ?(k = 15) ?(per_setting = 4) () =
  let rng = Prng.create ~seed in
  let settings =
    [ (1.0, 1.0);  (* the literal reading: trivially flat *)
      (0.5, 1.0);  (* sparse apps, full-speed sources *)
      (0.5, 0.5); (0.5, 0.0);  (* the default: pure data sources *)
      (0.25, 0.0) ]
  in
  List.map
    (fun (app_fraction, source_speed_factor) ->
      let g_ratios = ref [] and lprg_ratios = ref [] in
      let used = ref 0 in
      for _ = 1 to per_setting do
        let problem =
          Measure.sample_problem ~app_fraction ~source_speed_factor rng ~k
        in
        match
          ( Heuristics.lp_bound ~objective:Lp_relax.Maxmin problem,
            Lprg.solve ~objective:Lp_relax.Maxmin problem )
        with
        | Ok bound, Ok lprg when bound > eps ->
          incr used;
          let g = Greedy.solve problem in
          g_ratios := (Allocation.maxmin_objective problem g /. bound) :: !g_ratios;
          lprg_ratios :=
            (Allocation.maxmin_objective problem lprg /. bound) :: !lprg_ratios
        | _ -> ()
      done;
      { app_fraction; source_speed_factor; platforms = !used;
        maxmin_g_ratio = mean !g_ratios;
        maxmin_lprg_ratio = mean !lprg_ratios })
    settings

let workload_table rows =
  { Report.title = "Ablation: workload sensitivity (MAXMIN ratios, K = 15)";
    header =
      [ "app fraction"; "source speed factor"; "platforms"; "MAXMIN(G)/LP";
        "MAXMIN(LPRG)/LP" ];
    rows =
      List.map
        (fun r ->
          [ Report.cell_float r.app_fraction;
            Report.cell_float r.source_speed_factor; string_of_int r.platforms;
            Report.cell_float r.maxmin_g_ratio;
            Report.cell_float r.maxmin_lprg_ratio ])
        rows }
