module Gen = Dls_platform.Generator
module P = Dls_platform.Platform
module Prng = Dls_util.Prng
module J = Dls_util.Json
module Faults = Dls_flowsim.Faults
module Workload = Dls_dynsim.Workload
module Dynamic = Dls_dynsim.Dynamic

type config = {
  seed : int;
  k : int;
  platforms : int;
  jobs : int;
  rate : float;
  heavy : bool;
  swf : string option;
  work_scale : float;
  fault_rate : float;
  policies : Dynamic.policy list;
  measure_time : bool;
}

let default_config =
  { seed = 33;
    k = 4;
    platforms = 3;
    jobs = 40;
    rate = 0.4;
    heavy = false;
    swf = None;
    work_scale = 1.0;
    fault_rate = 0.0;
    policies = Dynamic.all_policies;
    measure_time = true }

let total config = config.platforms * List.length config.policies

let platform_of_index config index = index / List.length config.policies

let policy_of_index config index =
  List.nth config.policies (index mod List.length config.policies)

type record = {
  index : int;
  platform : int;
  policy : Dynamic.policy;
  jobs : int;
  completed : int;
  unfinished : int;
  makespan : float;
  completed_work : float;
  throughput : float;
  mean_response : float;
  events : int;
  replans : int;
  replan_seconds : float;
  log_digest : string;
  guard_exhausted : bool;
}

type entry = Record of record | Skipped of { index : int; reason : string }

let entry_index = function
  | Record r -> r.index
  | Skipped { index; _ } -> index

(* ------------------------------------------------------------------ *)
(* Evaluation of one index                                             *)
(* ------------------------------------------------------------------ *)

(* The fault plan's seed is its own derived function of (seed, platform)
   so the plan never depends on how many draws platform generation
   consumed — and is shared by every policy on that platform. *)
let fault_seed config p = config.seed + ((p + 1) * 1_000_003)

let workload config =
  match config.swf with
  | Some path ->
    Workload.load_swf ~clusters:config.k ~work_scale:config.work_scale ~path ()
  | None ->
    Ok
      (Workload.synthetic ~seed:config.seed ~jobs:config.jobs ~rate:config.rate
         ~heavy:config.heavy ~clusters:config.k ())

let replay config ~index =
  let p = platform_of_index config index in
  let policy = policy_of_index config index in
  let rng = Prng.derive ~seed:config.seed ~index:p in
  let params = Measure.sample_params rng ~k:config.k in
  let platform = Gen.generate rng params in
  match workload config with
  | Error reason -> Error reason
  | Ok wl -> (
    let faults =
      if config.fault_rate <= 0.0 then None
      else begin
        let horizon = 2.0 *. Workload.makespan_lower_bound platform wl in
        if Float.is_finite horizon && horizon > 0.0 then
          Some
            (Faults.random ~seed:(fault_seed config p) ~horizon
               ~link_rate:config.fault_rate
               ~cluster_rate:(config.fault_rate *. 0.5) platform)
        else None
      end
    in
    match Dynamic.run ~policy ?faults platform wl with
    | exception Invalid_argument reason -> Error reason
    | r -> Ok (List.length wl, r))

let evaluate_index config index =
  let p = platform_of_index config index in
  let policy = policy_of_index config index in
  match replay config ~index with
  | Error reason -> Skipped { index; reason }
  | Ok (jobs, r) ->
    Record
      { index;
        platform = p;
        policy;
        jobs;
        completed = List.length r.Dynamic.completed;
        unfinished = r.Dynamic.unfinished;
        makespan = r.Dynamic.makespan;
        completed_work = r.Dynamic.completed_work;
        throughput = r.Dynamic.throughput;
        mean_response = r.Dynamic.mean_response;
        events = r.Dynamic.events;
        replans = r.Dynamic.replans;
        replan_seconds =
          (if not config.measure_time then 0.0
           else Array.fold_left ( +. ) 0.0 r.Dynamic.replan_seconds);
        log_digest = Digest.to_hex (Digest.string r.Dynamic.event_log);
        guard_exhausted = r.Dynamic.guard_exhausted }

(* ------------------------------------------------------------------ *)
(* JSONL codec                                                         *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field name json =
  match J.member name json with
  | Some v -> Ok v
  | None -> Error ("missing field \"" ^ name ^ "\"")

let num_field name json =
  let* v = field name json in
  J.to_num v

let int_field name json =
  let* v = field name json in
  J.to_int v

let str_field name json =
  let* v = field name json in
  J.to_str v

let bool_field name json =
  let* v = field name json in
  J.to_bool v

let policy_of_name_res s =
  match Dynamic.policy_of_name s with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "unknown policy %S" s)

let entry_to_line = function
  | Record r ->
    J.to_string
      (J.Obj
         [ ("type", J.Str "record");
           ("index", J.Num (float_of_int r.index));
           ("platform", J.Num (float_of_int r.platform));
           ("policy", J.Str (Dynamic.policy_name r.policy));
           ("jobs", J.Num (float_of_int r.jobs));
           ("completed", J.Num (float_of_int r.completed));
           ("unfinished", J.Num (float_of_int r.unfinished));
           ("makespan", J.Num r.makespan);
           ("completed_work", J.Num r.completed_work);
           ("throughput", J.Num r.throughput);
           ("mean_response", J.Num r.mean_response);
           ("events", J.Num (float_of_int r.events));
           ("replans", J.Num (float_of_int r.replans));
           ("replan_seconds", J.Num r.replan_seconds);
           ("log_digest", J.Str r.log_digest);
           ("guard_exhausted", J.Bool r.guard_exhausted) ])
  | Skipped { index; reason } ->
    J.to_string
      (J.Obj
         [ ("type", J.Str "skipped");
           ("index", J.Num (float_of_int index));
           ("reason", J.Str reason) ])

let entry_of_line line =
  let* json = J.of_string line in
  let* kind = str_field "type" json in
  let* index = int_field "index" json in
  match kind with
  | "record" ->
    let* platform = int_field "platform" json in
    let* policy_str = str_field "policy" json in
    let* policy = policy_of_name_res policy_str in
    let* jobs = int_field "jobs" json in
    let* completed = int_field "completed" json in
    let* unfinished = int_field "unfinished" json in
    let* makespan = num_field "makespan" json in
    let* completed_work = num_field "completed_work" json in
    let* throughput = num_field "throughput" json in
    let* mean_response = num_field "mean_response" json in
    let* events = int_field "events" json in
    let* replans = int_field "replans" json in
    let* replan_seconds = num_field "replan_seconds" json in
    let* log_digest = str_field "log_digest" json in
    let* guard_exhausted = bool_field "guard_exhausted" json in
    Ok
      (Record
         { index; platform; policy; jobs; completed; unfinished; makespan;
           completed_work; throughput; mean_response; events; replans;
           replan_seconds; log_digest; guard_exhausted })
  | "skipped" ->
    let* reason = str_field "reason" json in
    Ok (Skipped { index; reason })
  | other -> Error ("unknown entry type \"" ^ other ^ "\"")

(* ------------------------------------------------------------------ *)
(* Manifest                                                            *)
(* ------------------------------------------------------------------ *)

let manifest_to_string config ~completed =
  J.to_string
    (J.Obj
       [ ("version", J.Num 1.0);
         ("experiment", J.Str "dynamic");
         ("seed", J.Num (float_of_int config.seed));
         ("k", J.Num (float_of_int config.k));
         ("platforms", J.Num (float_of_int config.platforms));
         ("jobs", J.Num (float_of_int config.jobs));
         ("rate", J.Num config.rate);
         ("heavy", J.Bool config.heavy);
         ( "swf",
           match config.swf with None -> J.Null | Some path -> J.Str path );
         ("work_scale", J.Num config.work_scale);
         ("fault_rate", J.Num config.fault_rate);
         ( "policies",
           J.Arr
             (List.map
                (fun p -> J.Str (Dynamic.policy_name p))
                config.policies) );
         ("measure_time", J.Bool config.measure_time);
         ("total", J.Num (float_of_int (total config)));
         ("completed", J.Num (float_of_int completed)) ])

let config_of_manifest s =
  let* json = J.of_string s in
  let* version = int_field "version" json in
  if version <> 1 then
    Error (Printf.sprintf "unsupported manifest version %d" version)
  else
    let* experiment = str_field "experiment" json in
    if experiment <> "dynamic" then
      Error (Printf.sprintf "manifest belongs to experiment %S" experiment)
    else
      let* seed = int_field "seed" json in
      let* k = int_field "k" json in
      let* platforms = int_field "platforms" json in
      let* jobs = int_field "jobs" json in
      let* rate = num_field "rate" json in
      let* heavy = bool_field "heavy" json in
      let* swf_json = field "swf" json in
      let* swf =
        match swf_json with
        | J.Null -> Ok None
        | j ->
          let* s = J.to_str j in
          Ok (Some s)
      in
      let* work_scale = num_field "work_scale" json in
      let* fault_rate = num_field "fault_rate" json in
      let* policies_json = field "policies" json in
      let* policy_items = J.to_list policies_json in
      let* policies =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* s = J.to_str item in
            let* p = policy_of_name_res s in
            Ok (p :: acc))
          (Ok []) policy_items
      in
      let policies = List.rev policies in
      let* measure_time = bool_field "measure_time" json in
      Ok
        { seed; k; platforms; jobs; rate; heavy; swf; work_scale; fault_rate;
          policies; measure_time }

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

let validate config =
  if config.policies = [] then Error "dynamic: policies must be non-empty"
  else if config.platforms < 0 then Error "dynamic: platforms must be >= 0"
  else if config.jobs < 0 then Error "dynamic: jobs must be >= 0"
  else if not (config.rate > 0.0 && Float.is_finite config.rate) then
    Error "dynamic: rate must be positive"
  else if config.fault_rate < 0.0 then Error "dynamic: fault_rate must be >= 0"
  else if not (config.work_scale > 0.0 && Float.is_finite config.work_scale)
  then Error "dynamic: work_scale must be positive"
  else Ok ()

let spec config =
  { Engine.log_label = "dynamic";
    total = total config;
    index_of = entry_index;
    to_line = entry_to_line;
    of_line = entry_of_line;
    evaluate = evaluate_index config;
    skip_reason =
      (function Record _ -> None | Skipped { reason; _ } -> Some reason);
    entry_times =
      (function
      | Skipped _ -> []
      | Record r -> [ ("replan", r.replan_seconds) ]);
    time_labels = [ "replan" ];
    log_time_stats = config.measure_time;
    write_manifest =
      (fun ~out ~completed ->
        Engine.write_atomic ~path:(out ^ ".manifest")
          (manifest_to_string config ~completed ^ "\n"));
    check_manifest =
      (fun ~path ->
        let mpath = path ^ ".manifest" in
        if not (Sys.file_exists mpath) then Ok ()
        else
          let* c =
            config_of_manifest
              (In_channel.with_open_bin mpath In_channel.input_all)
          in
          if c <> config then
            Error
              (mpath
               ^ ": checkpoint belongs to a different dynamic config; \
                  refusing to resume")
          else Ok ()) }

let run ?domains ?chunk ?checkpoint_every ?shards ?shard ?resume ?out ?on_entry
    config =
  let* () = validate config in
  Engine.run ?domains ?chunk ?checkpoint_every ?shards ?shard ?resume ?out
    ?on_entry (spec config)

let collect ?domains config =
  let records = ref [] in
  match
    run ?domains
      ~on_entry:(function Record r -> records := r :: !records | Skipped _ -> ())
      config
  with
  | Ok _ -> List.sort (fun a b -> Stdlib.compare a.index b.index) !records
  | Error msg -> invalid_arg ("Dynexp.collect: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let table config records =
  let rows =
    List.filter_map
      (fun policy ->
        let rs = List.filter (fun r -> r.policy = policy) records in
        match rs with
        | [] -> None
        | rs ->
          let n = float_of_int (List.length rs) in
          let mean f = List.fold_left (fun a r -> a +. f r) 0.0 rs /. n in
          Some
            [ Dynamic.policy_name policy;
              string_of_int (List.length rs);
              Report.cell_float (mean (fun r -> float_of_int r.completed));
              Report.cell_float (mean (fun r -> float_of_int r.unfinished));
              Report.cell_float (mean (fun r -> r.makespan));
              Report.cell_float (mean (fun r -> r.throughput));
              Report.cell_float (mean (fun r -> r.mean_response));
              Report.cell_float (mean (fun r -> float_of_int r.replans));
              Report.cell_float (mean (fun r -> r.replan_seconds)) ])
      config.policies
  in
  { Report.title =
      Printf.sprintf
        "Dynamic workload: online re-planning vs batch baselines (K=%d, %d \
         platforms, %s)"
        config.k config.platforms
        (match config.swf with
        | Some path -> "SWF " ^ path
        | None ->
          Printf.sprintf "%d synthetic jobs, rate %g%s" config.jobs config.rate
            (if config.heavy then ", heavy-tailed" else ""));
    header =
      [ "policy"; "n"; "completed"; "unfinished"; "makespan"; "throughput";
        "response"; "replans"; "replan_s" ];
    rows }
