(** Per-platform measurement: every heuristic's objective values, the LP
    upper bounds for both objectives, and wall-clock timings.

    This is the unit of work of every figure: the paper evaluates each
    random platform by normalizing heuristic objective values against
    the rational-LP bound ("LP"), separately for SUM and MAXMIN. *)

type values = {
  lp_sum : float;
  lp_maxmin : float;
  g_sum : float;
  g_maxmin : float;
  lpr_sum : float;
  lpr_maxmin : float;
  lprg_sum : float;
  lprg_maxmin : float;
  lprr_sum : float option;  (** [None] unless [with_lprr] *)
  lprr_maxmin : float option;
  lprr_counters : Dls_lp.Revised_simplex.counters option;
  (** Solver instrumentation of the MAXMIN LPRR run (pivots, warm/cold
      starts, reinversions, wall-clock); [None] unless [with_lprr]. *)
  time_lp : float;  (** seconds, one relaxation solve (MAXMIN) *)
  time_g : float;
  time_lpr : float;
  time_lprg : float;
  time_lprr : float option;
}

val evaluate :
  ?with_lprr:bool ->
  ?rng:Dls_util.Prng.t ->
  Dls_core.Problem.t ->
  (values, string) result
(** Runs everything on one problem.  The LP-based heuristics are solved
    under each objective they are reported against (as in the paper,
    where the LP objective matches the reported metric); G produces a
    single allocation evaluated under both.  All outputs are checked
    against the feasibility checker — an infeasible heuristic output is
    an internal error and yields [Error]. *)

val sample_params :
  Dls_util.Prng.t -> k:int -> Dls_platform.Generator.params
(** Uniform draw from the Table 1 marginals (connectivity, heterogeneity,
    mean g / bw / maxcon) with the cluster count pinned to [k]. *)

val assign_workload :
  ?app_fraction:float ->
  ?source_speed_factor:float ->
  Dls_util.Prng.t ->
  Dls_platform.Platform.t ->
  Dls_core.Problem.t
(** Draw the application placement and payoffs for an existing platform
    (the workload half of {!sample_problem}); used by the ablations to
    combine custom platform parameters with the standard workload. *)

val sample_problem :
  ?app_fraction:float ->
  ?source_speed_factor:float ->
  Dls_util.Prng.t ->
  k:int ->
  Dls_core.Problem.t
(** Platform from {!sample_params}; each cluster hosts an application
    (payoff 1) with probability [app_fraction] (default 0.5), at least
    one overall — the rest contribute compute and network capacity only
    (payoff 0).  Application clusters keep [source_speed_factor] of
    their compute speed (default 0: pure data sources, as in the
    paper's NP-hardness gadget and the data-intensive grid scenario of
    its reference [34]) — with full-speed sources the network never
    binds and every ratio collapses to 1.

    Why not one application per cluster, as a literal reading of the
    paper suggests?  With every cluster active, all speeds fixed at 100
    and unit payoffs, computing everything locally is optimal for both
    objectives (MAXMIN = 100, SUM = 100K, no network term), every
    method reaches it, and all the paper's ratio plots would be the
    constant 1 — so the published curves are only reproducible with
    demand/capacity asymmetry.  Making some clusters application-less is
    the asymmetry the paper itself uses (payoff 0 "for clusters that do
    not wish to execute a divisible load application", and its
    NP-hardness gadget); [~app_fraction:1.0] restores the trivial
    setting.  See EXPERIMENTS.md for the measured flat-line check. *)

val time : (unit -> 'a) -> 'a * float
(** Wall-clock seconds of one call. *)
