module Gen = Dls_platform.Generator
module Prng = Dls_util.Prng
module J = Dls_util.Json
module Parallel = Dls_util.Parallel
open Dls_core

type config = {
  seed : int;
  ks : int list;
  per_k : int;
  with_lprr : bool;
  lprr_max_k : int option;
  measure_time : bool;
}

let default_config =
  { seed = 12;
    ks = [ 5; 15; 25; 35; 45; 55 ];
    per_k = 5;
    with_lprr = false;
    lprr_max_k = None;
    measure_time = true }

let total config = config.per_k * List.length config.ks

let k_of_index config index = List.nth config.ks (index / config.per_k)

type record = {
  index : int;
  params : Gen.params;
  active_apps : int;
  values : Measure.values;
}

type entry =
  | Record of record
  | Skipped of { index : int; reason : string }

let entry_index = function
  | Record r -> r.index
  | Skipped { index; _ } -> index

(* ------------------------------------------------------------------ *)
(* Evaluation of one index                                             *)
(* ------------------------------------------------------------------ *)

let zero_counters (c : Dls_lp.Revised_simplex.counters) =
  { c with Dls_lp.Revised_simplex.wall_clock = 0.0 }

let zero_times (v : Measure.values) =
  { v with
    Measure.time_lp = 0.0;
    time_g = 0.0;
    time_lpr = 0.0;
    time_lprg = 0.0;
    time_lprr = Option.map (fun _ -> 0.0) v.Measure.time_lprr;
    lprr_counters = Option.map zero_counters v.Measure.lprr_counters }

let evaluate_index config index =
  let sp = Dls_obs.Trace.start ~cat:"campaign" "campaign.task" in
  let k = k_of_index config index in
  (* The whole point: this index's draws come from its own O(1)-derived
     stream, so neither evaluation order nor partitioning can change
     them. *)
  let rng = Prng.derive ~seed:config.seed ~index in
  let params = Measure.sample_params rng ~k in
  let platform = Gen.generate rng params in
  let problem = Measure.assign_workload rng platform in
  let with_lprr =
    config.with_lprr
    && (match config.lprr_max_k with None -> true | Some m -> k <= m)
  in
  let entry =
    match Measure.evaluate ~with_lprr ~rng:(Prng.split rng) problem with
    | Error reason -> Skipped { index; reason }
    | Ok values ->
      let values = if config.measure_time then values else zero_times values in
      Record
        { index; params;
          active_apps = List.length (Problem.active problem);
          values }
  in
  if Dls_obs.Trace.live sp then
    Dls_obs.Trace.finish sp
      ~args:
        [ ("index", string_of_int index);
          ("k", string_of_int k);
          ("outcome",
           match entry with Record _ -> "record" | Skipped _ -> "skipped") ];
  entry

(* ------------------------------------------------------------------ *)
(* JSONL codec                                                         *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let topology_to_json = function
  | Gen.Erdos_renyi -> J.Str "erdos_renyi"
  | Gen.Waxman { alpha; beta } ->
    J.Obj [ ("waxman", J.Obj [ ("alpha", J.Num alpha); ("beta", J.Num beta) ]) ]
  | Gen.Barabasi_albert { m } ->
    J.Obj [ ("barabasi_albert", J.Obj [ ("m", J.Num (float_of_int m)) ]) ]

let params_to_json (p : Gen.params) =
  J.Obj
    [ ("k", J.Num (float_of_int p.Gen.k));
      ("topology", topology_to_json p.Gen.topology_model);
      ("connectivity", J.Num p.Gen.connectivity);
      ("heterogeneity", J.Num p.Gen.heterogeneity);
      ("mean_g", J.Num p.Gen.mean_g);
      ("mean_bw", J.Num p.Gen.mean_bw);
      ("mean_maxcon", J.Num p.Gen.mean_maxcon);
      ("speed", J.Num p.Gen.speed);
      ("speed_heterogeneity", J.Num p.Gen.speed_heterogeneity) ]

let counters_to_json (c : Dls_lp.Revised_simplex.counters) =
  let open Dls_lp.Revised_simplex in
  J.Obj
    [ ("solves", J.Num (float_of_int c.solves));
      ("warm_starts", J.Num (float_of_int c.warm_starts));
      ("cold_starts", J.Num (float_of_int c.cold_starts));
      ("pivots", J.Num (float_of_int c.pivots));
      ("reinversions", J.Num (float_of_int c.reinversions));
      ("bland_activations", J.Num (float_of_int c.bland_activations));
      ("wall_clock", J.Num c.wall_clock) ]

let opt_num = function Some v -> J.Num v | None -> J.Null

let values_to_json (v : Measure.values) =
  J.Obj
    [ ("lp_sum", J.Num v.Measure.lp_sum);
      ("lp_maxmin", J.Num v.Measure.lp_maxmin);
      ("g_sum", J.Num v.Measure.g_sum);
      ("g_maxmin", J.Num v.Measure.g_maxmin);
      ("lpr_sum", J.Num v.Measure.lpr_sum);
      ("lpr_maxmin", J.Num v.Measure.lpr_maxmin);
      ("lprg_sum", J.Num v.Measure.lprg_sum);
      ("lprg_maxmin", J.Num v.Measure.lprg_maxmin);
      ("lprr_sum", opt_num v.Measure.lprr_sum);
      ("lprr_maxmin", opt_num v.Measure.lprr_maxmin);
      ("lprr_counters",
       (match v.Measure.lprr_counters with
        | Some c -> counters_to_json c
        | None -> J.Null));
      ("time_lp", J.Num v.Measure.time_lp);
      ("time_g", J.Num v.Measure.time_g);
      ("time_lpr", J.Num v.Measure.time_lpr);
      ("time_lprg", J.Num v.Measure.time_lprg);
      ("time_lprr", opt_num v.Measure.time_lprr) ]

let entry_to_line = function
  | Record r ->
    J.to_string
      (J.Obj
         [ ("type", J.Str "record");
           ("index", J.Num (float_of_int r.index));
           ("params", params_to_json r.params);
           ("active_apps", J.Num (float_of_int r.active_apps));
           ("values", values_to_json r.values) ])
  | Skipped { index; reason } ->
    J.to_string
      (J.Obj
         [ ("type", J.Str "skipped");
           ("index", J.Num (float_of_int index));
           ("reason", J.Str reason) ])

let field name json =
  match J.member name json with
  | Some v -> Ok v
  | None -> Error ("missing field \"" ^ name ^ "\"")

let num_field name json =
  let* v = field name json in
  J.to_num v

let int_field name json =
  let* v = field name json in
  J.to_int v

let str_field name json =
  let* v = field name json in
  J.to_str v

let opt_num_field name json =
  match J.member name json with
  | None | Some J.Null -> Ok None
  | Some v -> Result.map Option.some (J.to_num v)

let topology_of_json = function
  | J.Str "erdos_renyi" -> Ok Gen.Erdos_renyi
  | J.Obj _ as obj when J.member "waxman" obj <> None ->
    let* w = field "waxman" obj in
    let* alpha = num_field "alpha" w in
    let* beta = num_field "beta" w in
    Ok (Gen.Waxman { alpha; beta })
  | J.Obj _ as obj when J.member "barabasi_albert" obj <> None ->
    let* b = field "barabasi_albert" obj in
    let* m = int_field "m" b in
    Ok (Gen.Barabasi_albert { m })
  | _ -> Error "unknown topology model"

let params_of_json json =
  let* k = int_field "k" json in
  let* topology = field "topology" json in
  let* topology_model = topology_of_json topology in
  let* connectivity = num_field "connectivity" json in
  let* heterogeneity = num_field "heterogeneity" json in
  let* mean_g = num_field "mean_g" json in
  let* mean_bw = num_field "mean_bw" json in
  let* mean_maxcon = num_field "mean_maxcon" json in
  let* speed = num_field "speed" json in
  let* speed_heterogeneity = num_field "speed_heterogeneity" json in
  Ok
    { Gen.k; topology_model; connectivity; heterogeneity; mean_g; mean_bw;
      mean_maxcon; speed; speed_heterogeneity }

let counters_of_json json =
  match json with
  | J.Null -> Ok None
  | _ ->
    let* solves = int_field "solves" json in
    let* warm_starts = int_field "warm_starts" json in
    let* cold_starts = int_field "cold_starts" json in
    let* pivots = int_field "pivots" json in
    let* reinversions = int_field "reinversions" json in
    (* Absent in logs written before the anti-cycling counter existed. *)
    let* bland_activations =
      match J.member "bland_activations" json with
      | None -> Ok 0
      | Some v -> J.to_int v
    in
    let* wall_clock = num_field "wall_clock" json in
    Ok
      (Some
         { Dls_lp.Revised_simplex.solves; warm_starts; cold_starts; pivots;
           reinversions; bland_activations; wall_clock })

let values_of_json json =
  let* lp_sum = num_field "lp_sum" json in
  let* lp_maxmin = num_field "lp_maxmin" json in
  let* g_sum = num_field "g_sum" json in
  let* g_maxmin = num_field "g_maxmin" json in
  let* lpr_sum = num_field "lpr_sum" json in
  let* lpr_maxmin = num_field "lpr_maxmin" json in
  let* lprg_sum = num_field "lprg_sum" json in
  let* lprg_maxmin = num_field "lprg_maxmin" json in
  let* lprr_sum = opt_num_field "lprr_sum" json in
  let* lprr_maxmin = opt_num_field "lprr_maxmin" json in
  let* counters_json = field "lprr_counters" json in
  let* lprr_counters = counters_of_json counters_json in
  let* time_lp = num_field "time_lp" json in
  let* time_g = num_field "time_g" json in
  let* time_lpr = num_field "time_lpr" json in
  let* time_lprg = num_field "time_lprg" json in
  let* time_lprr = opt_num_field "time_lprr" json in
  Ok
    { Measure.lp_sum; lp_maxmin; g_sum; g_maxmin; lpr_sum; lpr_maxmin;
      lprg_sum; lprg_maxmin; lprr_sum; lprr_maxmin; lprr_counters; time_lp;
      time_g; time_lpr; time_lprg; time_lprr }

let entry_of_line line =
  let* json = J.of_string line in
  let* kind = str_field "type" json in
  let* index = int_field "index" json in
  match kind with
  | "record" ->
    let* params_json = field "params" json in
    let* params = params_of_json params_json in
    let* active_apps = int_field "active_apps" json in
    let* values_json = field "values" json in
    let* values = values_of_json values_json in
    Ok (Record { index; params; active_apps; values })
  | "skipped" ->
    let* reason = str_field "reason" json in
    Ok (Skipped { index; reason })
  | other -> Error ("unknown entry type \"" ^ other ^ "\"")

(* ------------------------------------------------------------------ *)
(* Checkpoint manifest                                                 *)
(* ------------------------------------------------------------------ *)

type manifest = {
  m_config : config;
  m_total : int;
  m_completed : int;
}

let manifest_to_string m =
  let c = m.m_config in
  J.to_string
    (J.Obj
       [ ("version", J.Num 1.0);
         ("seed", J.Num (float_of_int c.seed));
         ("ks", J.Arr (List.map (fun k -> J.Num (float_of_int k)) c.ks));
         ("per_k", J.Num (float_of_int c.per_k));
         ("with_lprr", J.Bool c.with_lprr);
         ("lprr_max_k",
          (match c.lprr_max_k with
           | Some m -> J.Num (float_of_int m)
           | None -> J.Null));
         ("measure_time", J.Bool c.measure_time);
         ("total", J.Num (float_of_int m.m_total));
         ("completed", J.Num (float_of_int m.m_completed)) ])

let manifest_of_string s =
  let* json = J.of_string s in
  let* version = int_field "version" json in
  if version <> 1 then Error (Printf.sprintf "unsupported manifest version %d" version)
  else
    let* seed = int_field "seed" json in
    let* ks_json = field "ks" json in
    let* ks_items = J.to_list ks_json in
    let* ks =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* k = J.to_int item in
          Ok (k :: acc))
        (Ok []) ks_items
    in
    let ks = List.rev ks in
    let* per_k = int_field "per_k" json in
    let* with_lprr_json = field "with_lprr" json in
    let* with_lprr = J.to_bool with_lprr_json in
    let* lprr_max_k =
      match J.member "lprr_max_k" json with
      | None | Some J.Null -> Ok None
      | Some v -> Result.map Option.some (J.to_int v)
    in
    let* measure_time_json = field "measure_time" json in
    let* measure_time = J.to_bool measure_time_json in
    let* m_total = int_field "total" json in
    let* m_completed = int_field "completed" json in
    Ok
      { m_config = { seed; ks; per_k; with_lprr; lprr_max_k; measure_time };
        m_total;
        m_completed }

let manifest_path out = out ^ ".manifest"

let write_manifest ~out m =
  (* Atomic replace: a crash mid-write can only lose the update, never
     produce a torn manifest. *)
  Engine.write_atomic ~path:(manifest_path out) (manifest_to_string m ^ "\n")

(* ------------------------------------------------------------------ *)
(* Log replay                                                          *)
(* ------------------------------------------------------------------ *)

let load_log ~path = Engine.load_log ~of_line:entry_of_line ~path

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

type summary = Engine.summary = {
  s_total : int;
  s_completed : int;
  s_skipped : int;
  s_evaluated : int;
  s_replayed : int;
  s_wall : float;
  s_times : (string * float array) list;
}

let heuristic_labels = [ "LP"; "G"; "LPR"; "LPRG"; "LPRR" ]

let times_of_values (v : Measure.values) =
  [ Some v.Measure.time_lp; Some v.Measure.time_g; Some v.Measure.time_lpr;
    Some v.Measure.time_lprg; v.Measure.time_lprr ]

let validate config =
  if config.ks = [] then Error "campaign: ks must be non-empty"
  else if config.per_k < 0 then Error "campaign: per_k must be >= 0"
  else Ok ()

let spec config =
  let n = total config in
  { Engine.log_label = "campaign";
    total = n;
    index_of = entry_index;
    to_line = entry_to_line;
    of_line = entry_of_line;
    evaluate = evaluate_index config;
    skip_reason =
      (function Record _ -> None | Skipped { reason; _ } -> Some reason);
    entry_times =
      (function
      | Skipped _ -> []
      | Record r ->
        List.concat
          (List.map2
             (fun label t ->
               match t with Some t -> [ (label, t) ] | None -> [])
             heuristic_labels
             (times_of_values r.values)));
    time_labels = heuristic_labels;
    log_time_stats = config.measure_time;
    write_manifest =
      (fun ~out ~completed ->
        write_manifest ~out
          { m_config = config; m_total = n; m_completed = completed });
    check_manifest =
      (fun ~path ->
        let mpath = manifest_path path in
        if not (Sys.file_exists mpath) then Ok ()
        else
          let* m =
            manifest_of_string
              (In_channel.with_open_bin mpath In_channel.input_all)
          in
          if m.m_config <> config then
            Error
              (mpath
               ^ ": checkpoint belongs to a different campaign config; \
                  refusing to resume")
          else Ok ()) }

let run ?domains ?chunk ?checkpoint_every ?shards ?shard ?resume ?out ?on_entry
    config =
  let* () = validate config in
  Engine.run ?domains ?chunk ?checkpoint_every ?shards ?shard ?resume ?out
    ?on_entry (spec config)

let summary_table s =
  { Report.title = "Campaign summary";
    header = [ "statistic"; "value" ];
    rows =
      [ [ "total indices"; string_of_int s.s_total ];
        [ "completed records"; string_of_int s.s_completed ];
        [ "skipped"; string_of_int s.s_skipped ];
        [ "evaluated this run"; string_of_int s.s_evaluated ];
        [ "replayed from log"; string_of_int s.s_replayed ];
        [ "wall-clock (s)"; Report.cell_float s.s_wall ];
        [ "records/s";
          Report.cell_float
            (float_of_int s.s_evaluated /. Stdlib.max 1e-9 s.s_wall) ] ] }

let times_table s =
  let module Stats = Dls_util.Stats in
  { Report.title = "Per-heuristic wall-clock (seconds, this run)";
    header = [ "heuristic"; "records"; "mean"; "median"; "p95"; "max" ];
    rows =
      List.filter_map
        (fun (label, samples) ->
          if Array.length samples = 0 then None
          else
            Some
              [ label; string_of_int (Array.length samples);
                Report.cell_float (Stats.mean samples);
                Report.cell_float (Stats.median samples);
                Report.cell_float (Stats.percentile samples ~p:95.0);
                Report.cell_float (snd (Stats.min_max samples)) ])
        s.s_times }

let collect ?domains config =
  let records = ref [] in
  match
    run ?domains
      ~on_entry:(function Record r -> records := r :: !records | Skipped _ -> ())
      config
  with
  | Ok _ ->
    List.sort (fun a b -> Stdlib.compare a.index b.index) !records
  | Error msg -> invalid_arg ("Campaign.collect: " ^ msg)
