(** Fault-rate sweep: throughput retained under platform degradation.

    For each sampled platform and each fault rate, every heuristic's
    allocation is (1) simulated fault-free, (2) simulated under a
    seed-derived {!Dls_flowsim.Faults} plan, and (3) repaired against
    the end-of-run degraded platform with the {!Dls_core.Repair} ladder.
    The report compares, per heuristic and rate, the throughput the
    schedule retains while degraded and the throughput a repair wins
    back — the robustness counterpart to the paper's steady-state
    ratios, probing the conclusion's call for adaptiveness to
    wide-area variability.

    Runs on the generic {!Engine}, so fault sweeps inherit the campaign
    runner's JSONL logging, checkpoint manifests, sharding and
    crash-safe resume unchanged. *)

type config = {
  seed : int;
  k : int;  (** clusters per platform *)
  rates : float list;
      (** fault event rates (per entity per period); index [i] runs
          [rates.(i / per_rate)] *)
  per_rate : int;  (** platforms per rate *)
  periods : int;  (** simulated periods ({!Dls_flowsim.Simulator.run}) *)
  policy : Dls_flowsim.Faults.policy;  (** what happens to wedged transfers *)
  measure_time : bool;
      (** [false] records repair wall-clock as 0 for byte-reproducible
          logs, as in {!Campaign.config} *)
}

val default_config : config
(** seed 21, K = 12, rates 0.02 / 0.05 / 0.1, 4 platforms per rate,
    20 periods, [Stall], timings on. *)

val total : config -> int
val rate_of_index : config -> int -> float

(** {2 Records} *)

type hres = {
  predicted : float;  (** total throughput promised by the allocation *)
  baseline : float;  (** simulated fault-free total throughput *)
  faulted : float;  (** simulated total throughput under the fault plan *)
  repaired : float;
      (** total throughput of the repaired allocation on the degraded
          platform — what a reactive scheduler would promise next *)
  stage : Dls_core.Repair.stage;  (** ladder rung that won *)
  repair_seconds : float;  (** summed over all attempted rungs *)
  killed : int;
  stalled : int;
}

type record = {
  index : int;
  rate : float;
  fault_events : int;  (** plan events inside the horizon *)
  downtime : float;  (** time with at least one fault active *)
  results : (Dls_core.Heuristics.t * hres option) list;
      (** one slot per heuristic, [None] when it (or its repair)
          failed *)
}

type entry = Record of record | Skipped of { index : int; reason : string }

val entry_index : entry -> int

val evaluate_index : config -> int -> entry
(** Pure function of [(config, index)] up to wall-clock fields: the
    platform, workload, and fault plan all come from streams derived
    from the config seed and the index. *)

val entry_to_line : entry -> string
val entry_of_line : string -> (entry, string) result

val run :
  ?domains:int ->
  ?chunk:int ->
  ?checkpoint_every:int ->
  ?shards:int ->
  ?shard:int ->
  ?resume:bool ->
  ?out:string ->
  ?on_entry:(entry -> unit) ->
  config ->
  (Engine.summary, string) result
(** {!Engine.run} under this experiment's spec — the same checkpoint,
    resume and sharding contract as {!Campaign.run}. *)

val collect : ?domains:int -> config -> record list
(** In-memory run; records in index order.
    @raise Invalid_argument on an invalid config. *)

val table : config -> record list -> Report.table
(** Per (rate, heuristic): platforms evaluated, mean retained ratio
    while degraded ([faulted/baseline]), mean repaired ratio
    ([repaired/predicted]), modal repair stage, mean repair seconds. *)
