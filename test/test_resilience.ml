(* Tests for the robustness layer: Faults plans (determinism, empty-plan
   identity), the simulator under fault injection (stall/kill policies,
   all-stalled short-circuit), the Repair ladder (per-stage feasibility
   on the residual platform) and the resilience experiment's codec and
   engine integration. *)

module G = Dls_graph.Graph
module P = Dls_platform.Platform
module Gen = Dls_platform.Generator
module Prng = Dls_util.Prng
module Parallel = Dls_util.Parallel
module Faults = Dls_flowsim.Faults
module Sim = Dls_flowsim.Simulator
module E = Dls_experiments
open Dls_core

let line3_platform () =
  let topology = G.path_graph 3 in
  let clusters =
    Array.init 3 (fun k -> { P.speed = 10.0; local_bw = 10.0; router = k })
  in
  let backbones = Array.make 2 { P.bw = 5.0; max_connect = 4 } in
  P.make ~clusters ~topology ~backbones

let random_problem seed =
  let rng = Prng.create ~seed in
  let k = Prng.int rng ~lo:3 ~hi:7 in
  Problem.uniform
    (Gen.generate rng
       { Gen.default_params with k; connectivity = 0.5; heterogeneity = 0.4 })

(* ------------------------------------------------------------------ *)
(* Faults: plans and cursor                                            *)
(* ------------------------------------------------------------------ *)

let test_faults_validation () =
  let p = line3_platform () in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Faults.make: event time -1 not in [0, inf)") (fun () ->
      ignore (Faults.make p [ { Faults.time = -1.0; kind = Faults.Link_down 0 } ]));
  Alcotest.check_raises "bad link"
    (Invalid_argument "Faults.make: backbone link 7 out of range") (fun () ->
      ignore (Faults.make p [ { Faults.time = 0.5; kind = Faults.Link_down 7 } ]));
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Faults.make: degradation factor 1.5 outside (0, 1]")
    (fun () ->
      ignore
        (Faults.make p
           [ { Faults.time = 0.5;
               kind = Faults.Link_degrade { link = 0; factor = 1.5 } } ]))

let test_faults_zero_rates_empty () =
  let p = line3_platform () in
  let plan = Faults.random ~seed:3 ~horizon:10.0 p in
  Alcotest.(check bool) "empty" true (Faults.is_empty plan);
  Alcotest.(check string) "empty trace" "" (Faults.trace plan)

let test_faults_trace_deterministic_across_domains () =
  (* The campaign contract, applied to fault streams: entity draws come
     from Prng.derive, so a trace depends only on (seed, platform,
     horizon, rates) — never on which domain generated it first. *)
  let p = line3_platform () in
  let trace i =
    Faults.trace
      (Faults.random ~seed:(1000 + i) ~horizon:8.0 ~link_rate:0.4
         ~cluster_rate:0.3 p)
  in
  let seq = Array.init 16 trace in
  let par = Parallel.map ~domains:8 trace (Array.init 16 Fun.id) in
  Array.iteri
    (fun i t ->
      Alcotest.(check string) (Printf.sprintf "trace %d" i) seq.(i) t)
    par;
  (* And twice under the same seed: byte-identical. *)
  Alcotest.(check string) "same seed, same bytes" (trace 3) (trace 3)

let test_faults_cursor_and_degraded_platform () =
  let p = line3_platform () in
  let plan =
    Faults.make p
      [ { Faults.time = 1.0; kind = Faults.Link_down 0 };
        { Faults.time = 2.0;
          kind = Faults.Link_degrade { link = 1; factor = 0.5 } };
        { Faults.time = 3.0; kind = Faults.Cluster_crash 2 };
        { Faults.time = 4.0; kind = Faults.Link_up 0 } ]
  in
  let st = Faults.start p plan in
  Alcotest.(check bool) "healthy at 0" false (Faults.any_fault_active st);
  ignore (Faults.advance st ~now:3.5);
  Alcotest.(check (float 1e-9)) "link 0 down" 0.0 (Faults.link_factor st 0);
  Alcotest.(check int) "no connection" 0 (Faults.link_max_connect st 0);
  Alcotest.(check (float 1e-9)) "link 1 degraded" 0.5 (Faults.link_factor st 1);
  Alcotest.(check bool) "cluster 2 crashed" true (Faults.crashed st 2);
  let d = Faults.degraded_platform st in
  Alcotest.(check int) "down = max_connect 0" 0 (P.backbone d 0).P.max_connect;
  Alcotest.(check (float 1e-9)) "down keeps nominal bw" 5.0 (P.backbone d 0).P.bw;
  Alcotest.(check (float 1e-9)) "degraded bw" 2.5 (P.backbone d 1).P.bw;
  Alcotest.(check (float 1e-9)) "crash kills speed" 0.0 (P.cluster d 2).P.speed;
  Alcotest.(check (float 1e-9)) "crash kills local link" 0.0
    (P.cluster d 2).P.local_bw;
  (* Routing table survives degradation. *)
  Alcotest.(check bool) "routes preserved" true (P.route d 0 2 <> None);
  ignore (Faults.advance st ~now:4.5);
  Alcotest.(check (float 1e-9)) "link 0 recovered" 1.0 (Faults.link_factor st 0);
  Alcotest.(check bool) "crash is terminal" true (Faults.crashed st 2);
  let dt = Faults.downtime p plan ~horizon:10.0 in
  (* Something is broken continuously from t=1 (link down, then crash). *)
  Alcotest.(check (float 1e-9)) "downtime" 9.0 dt

(* ------------------------------------------------------------------ *)
(* Simulator under faults                                              *)
(* ------------------------------------------------------------------ *)

let stats_equal name (a : Sim.stats) (b : Sim.stats) =
  let check_farr what x y =
    Array.iteri
      (fun i v ->
        Alcotest.(check (float 0.0)) (Printf.sprintf "%s %s.(%d)" name what i) v
          y.(i))
      x
  in
  check_farr "predicted" a.Sim.predicted b.Sim.predicted;
  check_farr "achieved" a.Sim.achieved b.Sim.achieved;
  Alcotest.(check int) (name ^ " late") a.Sim.late_transfers b.Sim.late_transfers;
  Alcotest.(check int) (name ^ " stalled") a.Sim.stalled_transfers
    b.Sim.stalled_transfers;
  Alcotest.(check int) (name ^ " killed") a.Sim.killed_transfers
    b.Sim.killed_transfers;
  Alcotest.(check int) (name ^ " events") a.Sim.fault_events b.Sim.fault_events;
  Alcotest.(check (float 0.0)) (name ^ " downtime") a.Sim.downtime b.Sim.downtime;
  Alcotest.(check bool) (name ^ " guard") a.Sim.guard_exhausted
    b.Sim.guard_exhausted;
  (* The guard is a truncation alarm; none of the suite's runs should
     ever trip it. *)
  Alcotest.(check bool) (name ^ " guard healthy") false a.Sim.guard_exhausted

let test_empty_plan_stat_identity () =
  (* ?faults:Faults.empty must be bit-identical to no faults at all —
     including on infeasible inputs that stall and on late transfers. *)
  for seed = 0 to 7 do
    let pr = random_problem (400 + seed) in
    let a = Greedy.solve pr in
    let plain = Sim.run ~periods:12 ~warmup:2 pr a in
    let empty = Sim.run ~periods:12 ~warmup:2 ~faults:Faults.empty pr a in
    stats_equal (Printf.sprintf "seed %d" seed) plain empty
  done

let remote_allocation () =
  (* Cluster 0 ships work to clusters 1 and 2 across the line. *)
  let p = line3_platform () in
  let pr = Problem.make p ~payoffs:[| 1.0; 0.0; 0.0 |] in
  let a = Allocation.zero 3 in
  a.Allocation.alpha.(0).(0) <- 2.0;
  a.Allocation.alpha.(0).(1) <- 4.0;
  a.Allocation.beta.(0).(1) <- 1;
  a.Allocation.alpha.(0).(2) <- 4.0;
  a.Allocation.beta.(0).(2) <- 1;
  Alcotest.(check bool) "precondition feasible" true (Allocation.is_feasible pr a);
  (pr, a)

let test_midrun_backbone_failure_stall () =
  let pr, a = remote_allocation () in
  let p = Problem.platform pr in
  let baseline = Sim.run ~periods:20 ~warmup:2 pr a in
  (* Link 0 carries both remote routes; fail it for good mid-run. *)
  let plan = Faults.make p [ { Faults.time = 5.5; kind = Faults.Link_down 0 } ] in
  let faulted = Sim.run ~periods:20 ~warmup:2 ~faults:plan pr a in
  Alcotest.(check int) "one event fired" 1 faulted.Sim.fault_events;
  Alcotest.(check bool) "transfers wedged" true
    (faulted.Sim.stalled_transfers > 0);
  Alcotest.(check int) "stall policy kills nothing" 0
    faulted.Sim.killed_transfers;
  Alcotest.(check bool) "throughput lost" true
    (faulted.Sim.achieved.(0) < baseline.Sim.achieved.(0));
  Alcotest.(check (float 1e-9)) "downtime = horizon - failure time" 14.5
    faulted.Sim.downtime

let test_midrun_backbone_failure_kill () =
  let pr, a = remote_allocation () in
  let p = Problem.platform pr in
  let plan = Faults.make p [ { Faults.time = 5.5; kind = Faults.Link_down 0 } ] in
  let faulted =
    Sim.run ~periods:20 ~warmup:2 ~faults:plan ~fault_policy:Faults.Kill pr a
  in
  Alcotest.(check bool) "in-flight transfers dropped" true
    (faulted.Sim.killed_transfers > 0)

let test_failure_with_recovery_restores_throughput () =
  let pr, a = remote_allocation () in
  let p = Problem.platform pr in
  let outage =
    Faults.make p
      [ { Faults.time = 4.25; kind = Faults.Link_down 0 };
        { Faults.time = 6.25; kind = Faults.Link_up 0 } ]
  in
  let healed = Sim.run ~periods:40 ~warmup:2 ~faults:outage pr a in
  let baseline = Sim.run ~periods:40 ~warmup:2 pr a in
  Alcotest.(check (float 1e-9)) "downtime is the outage" 2.0 healed.Sim.downtime;
  (* A 2-unit outage in a 38-unit window costs at most ~3 periods of
     cluster-1/2 work; most of the throughput must survive. *)
  Alcotest.(check bool) "stalled transfers resumed" true
    (healed.Sim.achieved.(0) >= 0.75 *. baseline.Sim.achieved.(0));
  Alcotest.(check bool) "recovery beats permanent failure" true
    (healed.Sim.achieved.(0)
     > (Sim.run ~periods:40 ~warmup:2
          ~faults:
            (Faults.make p [ { Faults.time = 4.25; kind = Faults.Link_down 0 } ])
          pr a)
        .Sim.achieved
        .(0))

let test_all_stalled_short_circuit_counts () =
  (* Zero connections for remote work: every period's transfer is dead
     on arrival, and the short-circuit must report exactly the count the
     period loop would have. *)
  let p = line3_platform () in
  let pr = Problem.make p ~payoffs:[| 1.0; 0.0; 0.0 |] in
  let a = Allocation.zero 3 in
  a.Allocation.alpha.(0).(1) <- 1.0;
  a.Allocation.alpha.(0).(2) <- 1.0;
  let stats = Sim.run ~periods:9 ~warmup:1 pr a in
  Alcotest.(check int) "stalled = periods * pattern" (9 * 2)
    stats.Sim.stalled_transfers;
  Alcotest.(check (float 1e-9)) "nothing achieved" 0.0 stats.Sim.achieved.(0)

let test_throttle_slows_compute () =
  let p = line3_platform () in
  let pr = Problem.make p ~payoffs:[| 1.0; 0.0; 0.0 |] in
  let a = Allocation.zero 3 in
  a.Allocation.alpha.(0).(0) <- 8.0;
  let plan =
    Faults.make p
      [ { Faults.time = 2.0;
          kind = Faults.Cluster_throttle { cluster = 0; factor = 0.25 } } ]
  in
  let slow = Sim.run ~periods:16 ~warmup:2 ~faults:plan pr a in
  let fast = Sim.run ~periods:16 ~warmup:2 pr a in
  Alcotest.(check bool) "throttle hurts" true
    (slow.Sim.achieved.(0) < fast.Sim.achieved.(0));
  (* Speed 10 -> 2.5 against a demand of 8/period: roughly a quarter. *)
  Alcotest.(check bool) "roughly quartered" true
    (slow.Sim.achieved.(0) < 0.5 *. fast.Sim.achieved.(0))

(* ------------------------------------------------------------------ *)
(* Repair                                                              *)
(* ------------------------------------------------------------------ *)

let degraded_pair seed ~link_rate ~cluster_rate =
  (* A random healthy problem, its greedy allocation, and the problem on
     the end-of-horizon degraded platform. *)
  let pr = random_problem seed in
  let p = Problem.platform pr in
  let a = Greedy.solve pr in
  let plan = Faults.random ~seed ~horizon:10.0 ~link_rate ~cluster_rate p in
  let d = Faults.degraded_at p plan ~time:10.0 in
  let payoffs =
    Array.init (Problem.num_clusters pr) (fun k -> Problem.payoff pr k)
  in
  (Problem.make d ~payoffs, a, plan)

let test_repair_stages_feasible_after_backbone_failure () =
  let pr, a = remote_allocation () in
  let p = Problem.platform pr in
  let plan = Faults.make p [ { Faults.time = 5.5; kind = Faults.Link_down 0 } ] in
  let d = Faults.degraded_at p plan ~time:10.0 in
  let dpr = Problem.make d ~payoffs:[| 1.0; 0.0; 0.0 |] in
  Alcotest.(check bool) "old allocation now infeasible" false
    (Allocation.is_feasible dpr a);
  List.iter
    (fun stage ->
      match Repair.run_stage stage dpr a with
      | Error msg ->
        Alcotest.failf "%s failed: %s" (Repair.stage_name stage) msg
      | Ok repaired ->
        Alcotest.(check bool)
          (Repair.stage_name stage ^ " output feasible")
          true
          (Allocation.is_feasible dpr repaired))
    [ Repair.Rescale; Repair.Refine; Repair.Resolve ];
  match Repair.repair dpr a with
  | Error msg -> Alcotest.failf "repair failed: %s" msg
  | Ok o ->
    Alcotest.(check bool) "ladder output feasible" true
      (Allocation.is_feasible dpr o.Repair.allocation);
    (* Local work on cluster 0 survives the cut link. *)
    Alcotest.(check bool) "positive objective" true
      (Allocation.objective `Maxmin dpr o.Repair.allocation > 0.0);
    Alcotest.(check bool) "attempts recorded" true
      (List.length o.Repair.attempts >= 1)

let prop_rescale_feasible_on_degraded =
  QCheck2.Test.make
    ~name:"Repair.rescale output is feasible on the degraded problem" ~count:40
    (QCheck2.Gen.int_range 0 10_000)
    (fun seed ->
      let dpr, a, _ = degraded_pair seed ~link_rate:0.3 ~cluster_rate:0.2 in
      Allocation.is_feasible dpr (Repair.rescale dpr a))

let prop_repair_ladder_feasible =
  QCheck2.Test.make
    ~name:"Repair.repair returns a feasible allocation and ordered attempts"
    ~count:15
    (QCheck2.Gen.int_range 0 10_000)
    (fun seed ->
      let dpr, a, _ = degraded_pair (seed + 31) ~link_rate:0.4 ~cluster_rate:0.3 in
      match Repair.repair dpr a with
      | Error _ -> false
      | Ok o ->
        Allocation.is_feasible dpr o.Repair.allocation
        && List.for_all (fun at -> at.Repair.seconds >= 0.0) o.Repair.attempts
        &&
        (* Attempts come in ladder order: rescale, then refine, ... *)
        let order = function
          | Repair.Rescale -> 0 | Repair.Refine -> 1 | Repair.Resolve -> 2
        in
        let ranks =
          List.map (fun (at : Repair.attempt) -> order at.Repair.stage)
            o.Repair.attempts
        in
        List.sort compare ranks = ranks)

(* ------------------------------------------------------------------ *)
(* Resilience experiment                                               *)
(* ------------------------------------------------------------------ *)

let tiny_config =
  { E.Resilience.default_config with
    E.Resilience.seed = 5; k = 6; rates = [ 0.05; 0.2 ]; per_rate = 2;
    periods = 8; measure_time = false }

let test_resilience_codec_roundtrip () =
  for index = 0 to E.Resilience.total tiny_config - 1 do
    let entry = E.Resilience.evaluate_index tiny_config index in
    let line = E.Resilience.entry_to_line entry in
    match E.Resilience.entry_of_line line with
    | Error msg -> Alcotest.failf "decode %d: %s" index msg
    | Ok back ->
      Alcotest.(check string)
        (Printf.sprintf "roundtrip %d" index)
        line
        (E.Resilience.entry_to_line back)
  done

let test_resilience_collect_smoke () =
  let records = E.Resilience.collect ~domains:2 tiny_config in
  Alcotest.(check bool) "some records" true (List.length records > 0);
  List.iter
    (fun r ->
      Alcotest.(check int) "all heuristics reported" 4
        (List.length r.E.Resilience.results);
      List.iter
        (fun (_, hres) ->
          match hres with
          | None -> ()
          | Some h ->
            Alcotest.(check bool) "baseline sane" true
              (h.E.Resilience.baseline >= 0.0);
            Alcotest.(check bool) "faulted bounded by prediction" true
              (h.E.Resilience.faulted <= h.E.Resilience.predicted +. 1e-6);
            Alcotest.(check bool) "repair time non-negative" true
              (h.E.Resilience.repair_seconds >= 0.0))
        r.E.Resilience.results)
    records;
  let table = E.Resilience.table tiny_config records in
  Alcotest.(check bool) "table renders" true
    (String.length (Format.asprintf "%a" E.Report.pp_table table) > 0)

let test_resilience_resume_replays () =
  let out = Filename.temp_file "dls_resilience" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove out with Sys_error _ -> ());
      try Sys.remove (out ^ ".manifest") with Sys_error _ -> ())
    (fun () ->
      (match E.Resilience.run ~domains:2 ~out tiny_config with
       | Error msg -> Alcotest.failf "fresh run: %s" msg
       | Ok s ->
         Alcotest.(check int) "all evaluated" (E.Resilience.total tiny_config)
           s.E.Engine.s_evaluated);
      match E.Resilience.run ~domains:2 ~out ~resume:true tiny_config with
      | Error msg -> Alcotest.failf "resume: %s" msg
      | Ok s ->
        Alcotest.(check int) "nothing re-evaluated" 0 s.E.Engine.s_evaluated;
        Alcotest.(check int) "everything replayed"
          (E.Resilience.total tiny_config)
          s.E.Engine.s_replayed)

let test_resilience_determinism_across_domains () =
  (* measure_time = false makes entries byte-reproducible; the per-index
     PRNG streams make them domain-count independent. *)
  let lines domains =
    E.Resilience.collect ~domains tiny_config
    |> List.map (fun r -> E.Resilience.entry_to_line (E.Resilience.Record r))
  in
  let one = lines 1 and eight = lines 8 in
  Alcotest.(check int) "same count" (List.length one) (List.length eight);
  List.iter2 (fun a b -> Alcotest.(check string) "same bytes" a b) one eight

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dls_resilience"
    [ ( "faults",
        [ Alcotest.test_case "validation" `Quick test_faults_validation;
          Alcotest.test_case "zero rates = empty" `Quick
            test_faults_zero_rates_empty;
          Alcotest.test_case "trace deterministic across domains" `Quick
            test_faults_trace_deterministic_across_domains;
          Alcotest.test_case "cursor and degraded platform" `Quick
            test_faults_cursor_and_degraded_platform ] );
      ( "simulator-faults",
        [ Alcotest.test_case "empty plan stat identity" `Quick
            test_empty_plan_stat_identity;
          Alcotest.test_case "mid-run backbone failure (stall)" `Quick
            test_midrun_backbone_failure_stall;
          Alcotest.test_case "mid-run backbone failure (kill)" `Quick
            test_midrun_backbone_failure_kill;
          Alcotest.test_case "failure with recovery" `Quick
            test_failure_with_recovery_restores_throughput;
          Alcotest.test_case "all-stalled short-circuit counts" `Quick
            test_all_stalled_short_circuit_counts;
          Alcotest.test_case "throttle slows compute" `Quick
            test_throttle_slows_compute ] );
      ( "repair",
        [ Alcotest.test_case "stages feasible after backbone failure" `Quick
            test_repair_stages_feasible_after_backbone_failure ] );
      qsuite "repair-prop"
        [ prop_rescale_feasible_on_degraded; prop_repair_ladder_feasible ];
      ( "resilience",
        [ Alcotest.test_case "codec roundtrip" `Quick
            test_resilience_codec_roundtrip;
          Alcotest.test_case "collect smoke" `Quick test_resilience_collect_smoke;
          Alcotest.test_case "resume replays" `Quick test_resilience_resume_replays;
          Alcotest.test_case "deterministic across domains" `Quick
            test_resilience_determinism_across_domains ] ) ]
