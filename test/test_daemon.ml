(* Tests for the allocation daemon: wire protocol, state machine, WAL
   journal (crash-recovery replay properties), the deadline-budgeted
   solver ladder with its circuit breaker, and the event-loop server
   end-to-end over a unix socket — including the misbehaving clients
   (malformed, slowloris, flooding, abandoning) the robustness
   machinery exists for. *)

module D = Dls_daemon
module P = D.Protocol
module J = Dls_util.Json
module Faults = Dls_flowsim.Faults
module Prng = Dls_util.Prng

let contains sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let platform ?(k = 6) ?(seed = 42) () =
  Dls_platform.Generator.generate (Prng.create ~seed)
    { Dls_platform.Generator.default_params with k }

let temp_dir () =
  let dir = Filename.temp_file "dls_daemon" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let test_frame_roundtrip () =
  let payload = {|{"op":"health"}|} in
  let wire = P.frame payload in
  (match P.split_frame wire with
  | `Frame (p, consumed) ->
    Alcotest.(check string) "payload" payload p;
    Alcotest.(check int) "consumed everything" (String.length wire) consumed
  | `Incomplete -> Alcotest.fail "incomplete"
  | `Bad r -> Alcotest.failf "bad: %s" r);
  (* Two pipelined frames: the first split leaves the second intact. *)
  let wire2 = P.frame "abc" ^ P.frame "defg" in
  match P.split_frame wire2 with
  | `Frame ("abc", consumed) -> (
    match
      P.split_frame (String.sub wire2 consumed (String.length wire2 - consumed))
    with
    | `Frame ("defg", _) -> ()
    | _ -> Alcotest.fail "second frame lost")
  | _ -> Alcotest.fail "first frame"

let test_frame_incomplete_and_bad () =
  (match P.split_frame "12" with
  | `Incomplete -> ()
  | _ -> Alcotest.fail "header fragment should be incomplete");
  (match P.split_frame "5\nab" with
  | `Incomplete -> ()
  | _ -> Alcotest.fail "short payload should be incomplete");
  (match P.split_frame "nan\n{}" with
  | `Bad _ -> ()
  | _ -> Alcotest.fail "non-digit header accepted");
  (match P.split_frame "\n{}" with
  | `Bad _ -> ()
  | _ -> Alcotest.fail "empty header accepted");
  match P.split_frame (string_of_int (P.max_frame + 1) ^ "\nx") with
  | `Bad _ -> ()
  | _ -> Alcotest.fail "oversized frame accepted"

let prop_frame_roundtrip =
  QCheck2.Test.make ~name:"split_frame inverts frame" ~count:300
    QCheck2.Gen.(string_size (int_range 0 200))
    (fun payload ->
      match P.split_frame (P.frame payload) with
      | `Frame (p, c) -> p = payload && c = String.length (P.frame payload)
      | _ -> false)

let prop_frame_prefix_incomplete =
  QCheck2.Test.make ~name:"no proper frame prefix parses" ~count:300
    QCheck2.Gen.(
      pair (string_size (int_range 1 100)) (float_range 0.0 1.0))
    (fun (payload, frac) ->
      let wire = P.frame payload in
      let cut = int_of_float (frac *. float_of_int (String.length wire)) in
      let cut = min cut (String.length wire - 1) in
      match P.split_frame (String.sub wire 0 cut) with
      | `Incomplete -> true
      | `Frame _ | `Bad _ -> false)

(* ------------------------------------------------------------------ *)
(* Codecs                                                              *)
(* ------------------------------------------------------------------ *)

let sample_requests =
  [ P.Mutate (P.Register_app { app = "a"; cluster = 3; payoff = 2.5 });
    P.Mutate (P.Retire_app { app = "a" });
    P.Mutate
      (P.Platform_delta
         [ Faults.Link_down 2; Faults.Link_up 2;
           Faults.Link_degrade { link = 1; factor = 0.5 };
           Faults.Max_connect { link = 0; limit = 3 };
           Faults.Cluster_throttle { cluster = 1; factor = 0.25 };
           Faults.Cluster_crash 4 ]);
    P.Get_schedule { objective = Dls_core.Lp_relax.Maxmin; budget_ms = None };
    P.Get_schedule
      { objective = Dls_core.Lp_relax.Sum; budget_ms = Some 120.0 };
    P.Health; P.Drain; P.Crash ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      let j = P.request_to_json req in
      match P.request_of_json j with
      | Ok req' ->
        if req <> req' then
          Alcotest.failf "request changed through codec: %s" (J.to_string j)
      | Error msg -> Alcotest.failf "decode failed: %s" msg)
    sample_requests;
  (* The wire form survives reserialization too. *)
  List.iter
    (fun req ->
      let s = J.to_string (P.request_to_json req) in
      match Result.bind (J.of_string s) P.request_of_json with
      | Ok req' -> Alcotest.(check bool) "string roundtrip" true (req = req')
      | Error msg -> Alcotest.failf "string decode failed: %s" msg)
    sample_requests

let test_request_rejects_junk () =
  let bad =
    [ {|{"no_op":1}|}; {|{"op":"frobnicate"}|};
      {|{"op":"register_app","app":"x"}|};
      {|{"op":"register_app","app":"x","cluster":1,"payoff":"lots"}|};
      {|{"op":"get_schedule","budget_ms":-5}|};
      {|{"op":"get_schedule","objective":"median"}|};
      {|{"op":"platform_delta","events":[{"fault":"meteor"}]}|} ]
  in
  List.iter
    (fun s ->
      match Result.bind (J.of_string s) P.request_of_json with
      | Ok _ -> Alcotest.failf "accepted junk: %s" s
      | Error _ -> ())
    bad

let test_schedule_reply_roundtrip () =
  let sr =
    { P.sr_seq = 7; sr_objective = 12.5; sr_rung = "refine";
      sr_degraded = true; sr_breaker = "open";
      sr_alpha = [ (0, 1, 2.5); (2, 2, 0.125) ]; sr_beta = [ (0, 1, 3) ] }
  in
  match P.schedule_reply_of_json (P.schedule_reply_to_json sr) with
  | Ok sr' ->
    Alcotest.(check bool) "roundtrip equal" true (P.equal_schedule sr sr');
    Alcotest.(check bool) "seq differences detected" false
      (P.equal_schedule sr { sr' with P.sr_seq = 8 });
    Alcotest.(check bool) "breaker ignored by equal_schedule" true
      (P.equal_schedule sr { sr' with P.sr_breaker = "closed" });
    Alcotest.(check bool) "alpha differences detected" false
      (P.equal_schedule sr { sr' with P.sr_alpha = [ (0, 1, 2.6) ] })
  | Error msg -> Alcotest.failf "decode failed: %s" msg

(* ------------------------------------------------------------------ *)
(* State machine                                                       *)
(* ------------------------------------------------------------------ *)

let test_state_apply_validation () =
  let st = D.State.create (platform ()) in
  let ok m =
    match D.State.apply st m with
    | Ok () -> ()
    | Error e -> Alcotest.failf "unexpected rejection: %s" e
  in
  let rejected m =
    match D.State.apply st m with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "mutation should have been rejected"
  in
  let seq_before = D.State.seq st in
  rejected (P.Register_app { app = ""; cluster = 0; payoff = 1.0 });
  rejected (P.Register_app { app = "a"; cluster = -1; payoff = 1.0 });
  rejected (P.Register_app { app = "a"; cluster = 99; payoff = 1.0 });
  rejected (P.Register_app { app = "a"; cluster = 0; payoff = 0.0 });
  rejected (P.Register_app { app = "a"; cluster = 0; payoff = infinity });
  rejected (P.Retire_app { app = "ghost" });
  rejected (P.Platform_delta []);
  rejected (P.Platform_delta [ Faults.Link_down 9999 ]);
  rejected
    (P.Platform_delta [ Faults.Link_degrade { link = 0; factor = 2.0 } ]);
  Alcotest.(check int) "rejections do not bump seq" seq_before
    (D.State.seq st);
  ok (P.Register_app { app = "a"; cluster = 0; payoff = 1.0 });
  rejected (P.Register_app { app = "a"; cluster = 1; payoff = 1.0 });
  rejected (P.Register_app { app = "b"; cluster = 0; payoff = 1.0 });
  ok (P.Register_app { app = "b"; cluster = 1; payoff = 2.0 });
  ok (P.Retire_app { app = "a" });
  ok (P.Register_app { app = "c"; cluster = 0; payoff = 3.0 });
  ok (P.Platform_delta [ Faults.Link_degrade { link = 0; factor = 0.5 } ]);
  Alcotest.(check int) "five accepted" (seq_before + 5) (D.State.seq st);
  Alcotest.(check (list string)) "registry sorted" [ "b"; "c" ]
    (List.map fst (D.State.apps st))

let test_state_problem_payoffs () =
  let pf = platform () in
  let st = D.State.create pf in
  (match D.State.apply st (P.Register_app { app = "x"; cluster = 2; payoff = 4.0 }) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let pb = D.State.problem st in
  let kk = Dls_core.Problem.num_clusters pb in
  Alcotest.(check int) "problem covers the platform" kk
    (Dls_platform.Platform.num_clusters pf);
  for k = 0 to kk - 1 do
    let expected = if k = 2 then 4.0 else 0.0 in
    Alcotest.(check (float 0.0)) "payoff placement" expected
      (Dls_core.Problem.payoff pb k)
  done

(* ------------------------------------------------------------------ *)
(* Journal: WAL replay                                                 *)
(* ------------------------------------------------------------------ *)

(* A deterministic stream of valid mutations driven against a model of
   the registry, so any prefix is itself a valid history. *)
let gen_mutations pf rng n =
  let num_clusters = Dls_platform.Platform.num_clusters pf in
  let registered = Hashtbl.create 8 in
  let owned = Hashtbl.create 8 in
  let fresh = ref 0 in
  let rec mutation () =
    match Prng.int rng ~lo:0 ~hi:9 with
    | 0 | 1 | 2 | 3 ->
      let cluster = Prng.int rng ~lo:0 ~hi:(num_clusters - 1) in
      if Hashtbl.mem owned cluster then mutation ()
      else begin
        incr fresh;
        let app = Printf.sprintf "app%d" !fresh in
        Hashtbl.replace registered app cluster;
        Hashtbl.replace owned cluster ();
        P.Register_app
          { app; cluster; payoff = Prng.float rng ~lo:0.5 ~hi:4.0 }
      end
    | 4 ->
      let apps = Hashtbl.fold (fun a _ acc -> a :: acc) registered [] in
      (match apps with
      | [] -> mutation ()
      | _ ->
        let app = List.nth apps (Prng.int rng ~lo:0 ~hi:(List.length apps - 1)) in
        Hashtbl.remove owned (Hashtbl.find registered app);
        Hashtbl.remove registered app;
        P.Retire_app { app })
    | _ ->
      let link () = Prng.int rng ~lo:0 ~hi:(num_clusters - 1) in
      let kinds =
        List.init
          (Prng.int rng ~lo:1 ~hi:3)
          (fun _ ->
            match Prng.int rng ~lo:0 ~hi:10 with
            | 0 | 1 -> Faults.Link_down (link ())
            | 2 | 3 -> Faults.Link_up (link ())
            | 4 | 5 ->
              Faults.Link_degrade
                { link = link (); factor = Prng.float rng ~lo:0.1 ~hi:0.9 }
            | 6 | 7 ->
              Faults.Max_connect
                { link = link (); limit = Prng.int rng ~lo:0 ~hi:5 }
            | 8 ->
              (* rare: permanent, so too many leave a trivial platform *)
              Faults.Cluster_crash (Prng.int rng ~lo:0 ~hi:(num_clusters - 1))
            | _ ->
              Faults.Cluster_throttle
                { cluster = Prng.int rng ~lo:0 ~hi:(num_clusters - 1);
                  factor = Prng.float rng ~lo:0.1 ~hi:0.9 })
      in
      P.Platform_delta kinds
  in
  List.init n (fun _ -> mutation ())

let write_journal dir pf mutations =
  let path = Filename.concat dir "wal.jsonl" in
  match D.Journal.open_ ~path ~platform:pf with
  | Error e -> Alcotest.failf "journal open: %s" e
  | Ok (state, journal) ->
    List.iter
      (fun m ->
        match D.State.apply state m with
        | Ok () -> D.Journal.append journal m
        | Error e -> Alcotest.failf "generated mutation rejected: %s" e)
      mutations;
    D.Journal.close journal;
    (path, state)

let test_journal_reopen_restores_state () =
  with_dir @@ fun dir ->
  let pf = platform () in
  let mutations = gen_mutations pf (Prng.create ~seed:11) 20 in
  let path, state = write_journal dir pf mutations in
  match D.Journal.open_ ~path ~platform:pf with
  | Error e -> Alcotest.failf "reopen: %s" e
  | Ok (state', journal) ->
    D.Journal.close journal;
    Alcotest.(check bool) "replayed state equals original" true
      (D.State.equal state state');
    Alcotest.(check int) "sequence preserved" (D.State.seq state)
      (D.State.seq state')

let test_journal_rejects_foreign_platform () =
  with_dir @@ fun dir ->
  let pf = platform () in
  let path, _ = write_journal dir pf (gen_mutations pf (Prng.create ~seed:3) 5) in
  match D.Journal.open_ ~path ~platform:(platform ~seed:43 ()) with
  | Error msg ->
    Alcotest.(check bool) "error names the platform mismatch" true
      (contains "different platform" msg)
  | Ok _ -> Alcotest.fail "foreign journal accepted"

let test_journal_rejects_corrupt_middle () =
  with_dir @@ fun dir ->
  let pf = platform () in
  let path, _ =
    write_journal dir pf (gen_mutations pf (Prng.create ~seed:4) 6)
  in
  let lines =
    String.split_on_char '\n' (In_channel.with_open_bin path In_channel.input_all)
  in
  let mangled =
    List.mapi (fun i l -> if i = 2 then "{\"seq\":oops" else l) lines
  in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.concat "\n" mangled));
  match D.Journal.open_ ~path ~platform:pf with
  | Error msg ->
    Alcotest.(check bool) "error pinpoints the line" true
      (contains "line 3" msg)
  | Ok _ -> Alcotest.fail "corrupt journal accepted"

(* The crash-recovery property (issue satellite): {e any} prefix of the
   WAL — including one ending in a torn, partially-written line —
   replays to a valid state equal to applying that prefix of mutations
   in memory. *)
let prop_wal_prefix_replays =
  QCheck2.Test.make ~name:"any WAL prefix (even torn) replays to a valid state"
    ~count:30
    QCheck2.Gen.(triple (int_bound 1000) (int_range 0 15) (int_range 0 60))
    (fun (seed, prefix_len, torn_bytes) ->
      with_dir @@ fun dir ->
      let pf = platform () in
      let mutations = gen_mutations pf (Prng.create ~seed) 15 in
      let path, _ = write_journal dir pf mutations in
      let content = In_channel.with_open_bin path In_channel.input_all in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' content)
      in
      let p = min prefix_len (List.length lines) in
      let prefix = List.filteri (fun i _ -> i < p) lines in
      (* Torn tail: the first bytes of the record the crash cut short. *)
      let torn =
        if p >= List.length lines then ""
        else
          let next = List.nth lines p in
          String.sub next 0 (min torn_bytes (String.length next - 1))
      in
      let path2 = Filename.concat dir "prefix.jsonl" in
      Out_channel.with_open_bin path2 (fun oc ->
          List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) prefix;
          Out_channel.output_string oc torn);
      let expected = D.State.create pf in
      List.iteri
        (fun i m ->
          if i < p then
            match D.State.apply expected m with
            | Ok () -> ()
            | Error e -> Alcotest.failf "model apply: %s" e)
        mutations;
      match D.Journal.open_ ~path:path2 ~platform:pf with
      | Error e -> Alcotest.failf "prefix replay failed: %s" e
      | Ok (state, journal) ->
        D.Journal.close journal;
        D.State.equal expected state && D.State.seq state = p)

(* Kill -9 equivalence, in-process: state rebuilt from the WAL produces
   the same schedule as the state that wrote it. *)
let test_journal_schedule_equivalence () =
  with_dir @@ fun dir ->
  let pf = platform () in
  let mutations =
    [ P.Register_app { app = "a"; cluster = 0; payoff = 1.0 };
      P.Register_app { app = "b"; cluster = 2; payoff = 2.0 };
      P.Platform_delta [ Faults.Link_degrade { link = 0; factor = 0.5 } ] ]
  in
  let path, state = write_journal dir pf mutations in
  let solve st =
    let breaker = D.Solver.breaker () in
    match
      D.Solver.solve ~breaker ~objective:Dls_core.Lp_relax.Maxmin
        ~budget_s:30.0
        ~base:(Dls_core.Allocation.zero (Dls_platform.Platform.num_clusters pf))
        (D.State.problem st)
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "solve: %s" e
  in
  let before = solve state in
  match D.Journal.open_ ~path ~platform:pf with
  | Error e -> Alcotest.failf "reopen: %s" e
  | Ok (state', journal) ->
    D.Journal.close journal;
    let after = solve state' in
    Alcotest.(check (float 1e-12)) "same objective"
      before.D.Solver.objective_value after.D.Solver.objective_value;
    Alcotest.(check bool) "same allocation" true
      (before.D.Solver.allocation.Dls_core.Allocation.alpha
       = after.D.Solver.allocation.Dls_core.Allocation.alpha
      && before.D.Solver.allocation.Dls_core.Allocation.beta
         = after.D.Solver.allocation.Dls_core.Allocation.beta)

(* ------------------------------------------------------------------ *)
(* Solver ladder + breaker                                             *)
(* ------------------------------------------------------------------ *)

let small_problem () =
  let st = D.State.create (platform ()) in
  List.iter
    (fun m ->
      match D.State.apply st m with Ok () -> () | Error e -> Alcotest.fail e)
    [ P.Register_app { app = "a"; cluster = 0; payoff = 1.0 };
      P.Register_app { app = "b"; cluster = 3; payoff = 2.0 } ];
  D.State.problem st

let test_solver_zero_budget_degrades () =
  let pb = small_problem () in
  let breaker = D.Solver.breaker () in
  let base = Dls_core.Allocation.zero (Dls_core.Problem.num_clusters pb) in
  match
    D.Solver.solve ~breaker ~objective:Dls_core.Lp_relax.Maxmin ~budget_s:0.0
      ~base pb
  with
  | Error e -> Alcotest.failf "zero budget must still answer: %s" e
  | Ok o ->
    Alcotest.(check string) "floor rung" "rescale"
      (D.Solver.rung_name o.D.Solver.rung);
    Alcotest.(check bool) "flagged degraded" true o.D.Solver.degraded;
    Alcotest.(check int) "one attempt" 1 (List.length o.D.Solver.attempts);
    Alcotest.(check int) "three rungs skipped" 3
      (List.length o.D.Solver.skipped);
    Alcotest.(check bool) "feasible even so" true
      (Dls_core.Allocation.is_feasible pb o.D.Solver.allocation)

let test_solver_full_budget_resolves () =
  let pb = small_problem () in
  let breaker = D.Solver.breaker () in
  let base = Dls_core.Allocation.zero (Dls_core.Problem.num_clusters pb) in
  match
    D.Solver.solve ~breaker ~objective:Dls_core.Lp_relax.Maxmin ~budget_s:30.0
      ~base pb
  with
  | Error e -> Alcotest.failf "solve: %s" e
  | Ok o ->
    Alcotest.(check string) "LP rung wins" "resolve_lp"
      (D.Solver.rung_name o.D.Solver.rung);
    Alcotest.(check bool) "not degraded" false o.D.Solver.degraded;
    Alcotest.(check bool) "objective positive" true
      (o.D.Solver.objective_value > 0.0);
    Alcotest.(check bool) "feasible" true
      (Dls_core.Allocation.is_feasible pb o.D.Solver.allocation)

let test_solver_breaker_open_skips_lp () =
  let pb = small_problem () in
  let b = D.Solver.breaker ~threshold:1 ~base_backoff_s:60.0 ~max_backoff_s:120.0 () in
  (* One failure trips a threshold-1 breaker open, on the real clock so
     the minute-long backoff comfortably covers the solve below. *)
  let now = Unix.gettimeofday () in
  D.Solver.note_lp_failure b ~now;
  Alcotest.(check string) "open" "open"
    (D.Solver.breaker_state_name (D.Solver.breaker_state b ~now));
  let base = Dls_core.Allocation.zero (Dls_core.Problem.num_clusters pb) in
  match
    D.Solver.solve ~breaker:b ~objective:Dls_core.Lp_relax.Maxmin
      ~budget_s:30.0 ~base pb
  with
  | Error e -> Alcotest.failf "solve: %s" e
  | Ok o ->
    Alcotest.(check bool) "LP rung skipped" true
      (List.mem D.Solver.Resolve_lp o.D.Solver.skipped);
    Alcotest.(check bool) "greedy backstop attempted" true
      (List.exists
         (fun (a : D.Solver.attempt) -> a.D.Solver.a_rung = D.Solver.Resolve_greedy)
         o.D.Solver.attempts);
    Alcotest.(check bool) "degraded" true o.D.Solver.degraded

let test_breaker_cycle () =
  let b = D.Solver.breaker ~threshold:3 ~base_backoff_s:1.0 ~max_backoff_s:60.0 () in
  let state now = D.Solver.breaker_state_name (D.Solver.breaker_state b ~now) in
  Alcotest.(check string) "starts closed" "closed" (state 0.0);
  D.Solver.note_lp_failure b ~now:0.0;
  D.Solver.note_lp_failure b ~now:0.0;
  Alcotest.(check string) "below threshold stays closed" "closed" (state 0.0);
  D.Solver.note_lp_failure b ~now:0.0;
  Alcotest.(check string) "third failure trips" "open" (state 0.0);
  Alcotest.(check int) "one trip" 1 (D.Solver.breaker_trips b);
  (* Backoff is 1.0 * 2^0 stretched by jitter in [1, 1.5]: still open
     before 1 s, half-open after 1.5 s. *)
  Alcotest.(check string) "still open inside backoff" "open" (state 0.5);
  Alcotest.(check string) "half-open after backoff" "half_open" (state 2.0);
  (* A failed probe goes straight back open with doubled backoff. *)
  D.Solver.note_lp_failure b ~now:2.0;
  Alcotest.(check string) "probe failure re-opens" "open" (state 2.0);
  Alcotest.(check int) "second trip" 2 (D.Solver.breaker_trips b);
  Alcotest.(check string) "doubled backoff still open" "open" (state 3.5);
  Alcotest.(check string) "eventually half-open" "half_open" (state 6.0);
  (* A clean probe closes the breaker and resets the exponent. *)
  D.Solver.note_lp_success b;
  Alcotest.(check string) "success closes" "closed" (state 6.0);
  D.Solver.note_lp_failure b ~now:6.0;
  Alcotest.(check string) "failure count was reset" "closed" (state 6.0)

(* ------------------------------------------------------------------ *)
(* Server end-to-end                                                   *)
(* ------------------------------------------------------------------ *)

type server_handle = {
  h_addr : Dls_obs.Publish.addr;
  h_stop : bool Atomic.t;
  h_thread : Thread.t;
  h_result : (unit, string) result option Atomic.t;
}

let start_server ?(configure = Fun.id) dir state journal =
  let sock = Filename.concat dir "daemon.sock" in
  let addr = Dls_obs.Publish.Unix_sock sock in
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  let result = Atomic.make None in
  let config =
    configure
      { (D.Server.default_config addr) with
        D.Server.conn_timeout = 5.0; allow_crash = true }
  in
  let thread =
    Thread.create
      (fun () ->
        let r =
          try
            D.Server.serve
              ~should_stop:(fun () -> Atomic.get stop)
              ~on_ready:(fun () -> Atomic.set ready true)
              config state journal
          with exn -> Error (Printexc.to_string exn)
        in
        Atomic.set result (Some r))
      ()
  in
  let t0 = Unix.gettimeofday () in
  while (not (Atomic.get ready)) && Unix.gettimeofday () -. t0 < 5.0 do
    Thread.yield ()
  done;
  if not (Atomic.get ready) then Alcotest.fail "server did not come up";
  { h_addr = addr; h_stop = stop; h_thread = thread; h_result = result }

let stop_server h =
  Atomic.set h.h_stop true;
  Thread.join h.h_thread

let connect h =
  let path =
    match h.h_addr with
    | Dls_obs.Publish.Unix_sock p -> p
    | _ -> Alcotest.fail "test server is unix-domain"
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let request fd req =
  P.write_frame fd (J.to_string (P.request_to_json req));
  let buf = Buffer.create 256 in
  match P.read_frame ~timeout:10.0 ~buf fd with
  | Ok reply -> (
    match J.of_string reply with
    | Ok j -> j
    | Error e -> Alcotest.failf "unparseable reply: %s" e)
  | Error e -> Alcotest.failf "no reply: %s" e

let status j =
  match J.member "status" j with Some (J.Str s) -> s | _ -> "?"

let num_field name j =
  match J.member name j with
  | Some (J.Num v) -> v
  | _ -> Alcotest.failf "missing numeric field %s" name

let test_server_end_to_end () =
  with_dir @@ fun dir ->
  let pf = platform () in
  let wal = Filename.concat dir "wal.jsonl" in
  match D.Journal.open_ ~path:wal ~platform:pf with
  | Error e -> Alcotest.fail e
  | Ok (state, journal) ->
    let h = start_server dir state (Some journal) in
    Fun.protect ~finally:(fun () -> stop_server h; D.Journal.close journal)
    @@ fun () ->
    let fd = connect h in
    Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
    let r =
      request fd (P.Mutate (P.Register_app { app = "a"; cluster = 0; payoff = 1.0 }))
    in
    Alcotest.(check string) "register ok" "ok" (status r);
    let r =
      request fd (P.Mutate (P.Register_app { app = "a"; cluster = 1; payoff = 1.0 }))
    in
    Alcotest.(check string) "duplicate rejected" "error" (status r);
    let r =
      request fd
        (P.Mutate
           (P.Platform_delta
              [ Faults.Link_degrade { link = 0; factor = 0.5 } ]))
    in
    Alcotest.(check string) "delta ok" "ok" (status r);
    let r =
      request fd
        (P.Get_schedule
           { objective = Dls_core.Lp_relax.Maxmin; budget_ms = Some 5000.0 })
    in
    Alcotest.(check string) "schedule ok" "ok" (status r);
    (match P.schedule_reply_of_json r with
    | Ok sr ->
      Alcotest.(check bool) "some work allocated" true (sr.P.sr_alpha <> [])
    | Error e -> Alcotest.failf "schedule reply: %s" e);
    let r = request fd P.Health in
    Alcotest.(check string) "health ok" "ok" (status r);
    Alcotest.(check (float 0.0)) "two mutations accepted" 2.0
      (num_field "mutations" r);
    Alcotest.(check (float 0.0)) "one rejection counted" 1.0
      (num_field "errors" r);
    Alcotest.(check (float 0.0)) "journal has both" 2.0
      (num_field "wal_entries" r)

let test_server_malformed_input () =
  with_dir @@ fun dir ->
  let state = D.State.create (platform ()) in
  let h = start_server dir state None in
  Fun.protect ~finally:(fun () -> stop_server h) @@ fun () ->
  (* Garbage header: error reply, then the connection is closed. *)
  let fd = connect h in
  let junk = "not-a-length\n{}" in
  ignore (Unix.write_substring fd junk 0 (String.length junk));
  let buf = Buffer.create 64 in
  (match P.read_frame ~timeout:5.0 ~buf fd with
  | Ok reply ->
    Alcotest.(check bool) "error reply" true
      (contains "error" reply)
  | Error e -> Alcotest.failf "expected an error reply, got: %s" e);
  (match P.read_frame ~timeout:5.0 ~buf fd with
  | Error _ -> ()  (* closed *)
  | Ok r -> Alcotest.failf "connection survived garbage: %s" r);
  Unix.close fd;
  (* Valid frame, invalid JSON inside. *)
  let fd = connect h in
  P.write_frame fd "{\"op\":";
  let buf = Buffer.create 64 in
  (match P.read_frame ~timeout:5.0 ~buf fd with
  | Ok reply ->
    Alcotest.(check bool) "error reply" true
      (contains "error" reply)
  | Error e -> Alcotest.failf "expected an error reply, got: %s" e);
  Unix.close fd;
  (* And the server still serves honest clients. *)
  let fd = connect h in
  let r = request fd P.Health in
  Alcotest.(check string) "still alive" "ok" (status r);
  Unix.close fd

let test_server_backpressure_sheds () =
  with_dir @@ fun dir ->
  let state = D.State.create (platform ()) in
  let h =
    start_server
      ~configure:(fun c ->
        { c with D.Server.queue_cap = 2; max_requests_per_tick = 1 })
      dir state None
  in
  Fun.protect ~finally:(fun () -> stop_server h) @@ fun () ->
  let fd = connect h in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  (* Pipeline a burst bigger than the queue in one write: the server
     reads them all in one wake-up, so at most [queue_cap] can be
     admitted and the rest must be shed with a retry hint. *)
  let n = 10 in
  let burst =
    String.concat ""
      (List.init n (fun _ ->
           P.frame (J.to_string (P.request_to_json P.Health))))
  in
  ignore (Unix.write_substring fd burst 0 (String.length burst));
  let buf = Buffer.create 256 in
  let ok = ref 0 and overloaded = ref 0 in
  for _ = 1 to n do
    match P.read_frame ~timeout:10.0 ~buf fd with
    | Ok reply -> (
      match Result.map status (J.of_string reply) with
      | Ok "ok" -> incr ok
      | Ok "overloaded" -> incr overloaded
      | Ok s -> Alcotest.failf "unexpected status %s" s
      | Error e -> Alcotest.fail e)
    | Error e -> Alcotest.failf "burst reply %s" e
  done;
  Alcotest.(check int) "every request answered" n (!ok + !overloaded);
  Alcotest.(check bool) "some shed" true (!overloaded > 0);
  Alcotest.(check bool) "queue depth honoured" true (!ok <= 2 + n - !overloaded);
  (* Shed is load shedding, not rejection of the client: the same
     connection still works afterwards. *)
  let r = request fd P.Health in
  Alcotest.(check string) "connection survives shedding" "ok" (status r);
  Alcotest.(check bool) "shed counter matches" true
    (num_field "shed" r = float_of_int !overloaded)

let test_server_reaps_slow_clients () =
  with_dir @@ fun dir ->
  let state = D.State.create (platform ()) in
  let h =
    start_server
      ~configure:(fun c -> { c with D.Server.conn_timeout = 0.3 })
      dir state None
  in
  Fun.protect ~finally:(fun () -> stop_server h) @@ fun () ->
  (* A slowloris: half a frame, then silence. *)
  let fd = connect h in
  let partial = "999\n{\"op\"" in
  ignore (Unix.write_substring fd partial 0 (String.length partial));
  Unix.sleepf 1.0;
  (* The server must have closed it... *)
  let buf = Bytes.create 16 in
  (match Unix.read fd buf 0 16 with
  | 0 -> ()
  | n -> Alcotest.failf "expected EOF from reaped connection, got %d bytes" n
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ());
  Unix.close fd;
  (* ...and still answer a live client, which reports the reap. *)
  let fd = connect h in
  let r = request fd P.Health in
  Alcotest.(check string) "alive after slowloris" "ok" (status r);
  Alcotest.(check bool) "reap accounted" true (num_field "reaped" r >= 1.0);
  Unix.close fd

let test_server_drain_returns () =
  with_dir @@ fun dir ->
  let state = D.State.create (platform ()) in
  let h = start_server dir state None in
  let fd = connect h in
  let r = request fd P.Drain in
  Alcotest.(check string) "drain acknowledged" "ok" (status r);
  Unix.close fd;
  Thread.join h.h_thread;
  match Atomic.get h.h_result with
  | Some (Ok ()) -> ()
  | Some (Error e) -> Alcotest.failf "drain exit: %s" e
  | None -> Alcotest.fail "no exit result"

let test_server_crash_propagates () =
  with_dir @@ fun dir ->
  let state = D.State.create (platform ()) in
  let h = start_server dir state None in
  let fd = connect h in
  (* No reply is owed: the serving loop dies with Crash_requested, and
     the exception must escape serve (containment is the supervisor's
     contract, not the server's). *)
  P.write_frame fd (J.to_string (P.request_to_json P.Crash));
  Thread.join h.h_thread;
  Unix.close fd;
  match Atomic.get h.h_result with
  | Some (Error e) ->
    Alcotest.(check bool) "crash escaped the loop" true
      (contains "Crash_requested" e)
  | Some (Ok ()) -> Alcotest.fail "crash swallowed"
  | None -> Alcotest.fail "no exit result"

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

let test_supervisor_restarts_from_wal () =
  with_dir @@ fun dir ->
  let pf = platform () in
  let wal = Filename.concat dir "wal.jsonl" in
  let sock = Filename.concat dir "daemon.sock" in
  let addr = Dls_obs.Publish.Unix_sock sock in
  let config =
    { (D.Server.default_config addr) with D.Server.allow_crash = true }
  in
  let loads = ref 0 in
  let load () =
    incr loads;
    Result.map
      (fun (s, j) -> (s, Some j))
      (D.Journal.open_ ~path:wal ~platform:pf)
  in
  let restarts = ref [] in
  let stop = Atomic.make false in
  let result = Atomic.make None in
  let thread =
    Thread.create
      (fun () ->
        Atomic.set result
          (Some
             (D.Supervisor.run
                ~should_stop:(fun () -> Atomic.get stop)
                ~on_restart:(fun _exn n -> restarts := n :: !restarts)
                ~backoff_base_s:0.01 ~sleep:Unix.sleepf config ~load)))
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join thread)
  @@ fun () ->
  let rec wait_up tries =
    if tries = 0 then Alcotest.fail "daemon never came up";
    match connect { h_addr = addr; h_stop = stop; h_thread = thread; h_result = result } with
    | fd -> fd
    | exception Unix.Unix_error _ ->
      Unix.sleepf 0.05;
      wait_up (tries - 1)
  in
  let fd = wait_up 100 in
  let r =
    request fd (P.Mutate (P.Register_app { app = "a"; cluster = 0; payoff = 1.0 }))
  in
  Alcotest.(check string) "mutation accepted" "ok" (status r);
  (* Crash the serving loop; the supervisor must reload from the WAL
     and come back with the mutation intact. *)
  P.write_frame fd (J.to_string (P.request_to_json P.Crash));
  Unix.close fd;
  let rec wait_back tries =
    if tries = 0 then Alcotest.fail "daemon never came back";
    match
      let fd = wait_up 100 in
      let r = request fd P.Health in
      (fd, r)
    with
    | fd, r ->
      if status r = "ok" && num_field "restarts" r >= 1.0 then (fd, r)
      else begin
        Unix.close fd;
        Unix.sleepf 0.05;
        wait_back (tries - 1)
      end
    | exception _ ->
      Unix.sleepf 0.05;
      wait_back (tries - 1)
  in
  let fd, r = wait_back 100 in
  Alcotest.(check (float 0.0)) "state survived the crash" 1.0
    (num_field "apps" r);
  Alcotest.(check bool) "load ran once per serve epoch" true (!loads >= 2);
  Alcotest.(check bool) "restart callback fired" true (!restarts <> []);
  let r = request fd P.Drain in
  Alcotest.(check string) "drain after restart" "ok" (status r);
  Unix.close fd;
  Thread.join thread;
  match Atomic.get result with
  | Some (Ok ()) -> ()
  | Some (Error e) -> Alcotest.failf "supervisor exit: %s" e
  | None -> Alcotest.fail "no supervisor result"

let test_supervisor_gives_up () =
  with_dir @@ fun dir ->
  let sock = Filename.concat dir "daemon.sock" in
  let addr = Dls_obs.Publish.Unix_sock sock in
  let config =
    { (D.Server.default_config addr) with D.Server.allow_crash = true }
  in
  (* A load that always succeeds into a server we immediately crash:
     cap the restarts and check the supervisor reports giving up. *)
  let state = D.State.create (platform ()) in
  let crasher = Atomic.make true in
  let stop = Atomic.make false in
  let load () = Ok (state, None) in
  let result = Atomic.make None in
  let thread =
    Thread.create
      (fun () ->
        Atomic.set result
          (Some
             (D.Supervisor.run
                ~should_stop:(fun () -> Atomic.get stop)
                ~max_restarts:2 ~backoff_base_s:0.01 ~sleep:Unix.sleepf config
                ~load)))
      ()
  in
  (* Crash it every time it comes up. *)
  let rec crash_loop tries =
    if tries > 0 && Atomic.get crasher then begin
      (match
         let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         Unix.connect fd (Unix.ADDR_UNIX sock);
         P.write_frame fd (J.to_string (P.request_to_json P.Crash));
         Unix.close fd
       with
      | () -> ()
      | exception Unix.Unix_error _ -> Unix.sleepf 0.05);
      if Atomic.get result = None then crash_loop (tries - 1)
    end
  in
  crash_loop 200;
  Thread.join thread;
  match Atomic.get result with
  | Some (Error msg) ->
    Alcotest.(check bool) "gave up after the cap" true
      (contains "giving up" msg)
  | Some (Ok ()) -> Alcotest.fail "supervisor should have given up"
  | None -> Alcotest.fail "no supervisor result"

(* ------------------------------------------------------------------ *)
(* Soak: mixed honest/hostile clients against a live server            *)
(* ------------------------------------------------------------------ *)

let test_soak_mixed_clients () =
  with_dir @@ fun dir ->
  let pf = platform () in
  let wal = Filename.concat dir "wal.jsonl" in
  match D.Journal.open_ ~path:wal ~platform:pf with
  | Error e -> Alcotest.fail e
  | Ok (state, journal) ->
    let h =
      start_server
        ~configure:(fun c ->
          { c with D.Server.queue_cap = 8; conn_timeout = 0.4;
            default_budget_s = 0.25 })
        dir state (Some journal)
    in
    Fun.protect ~finally:(fun () -> stop_server h; D.Journal.close journal)
    @@ fun () ->
    let rng = Prng.create ~seed:99 in
    let num_clusters = Dls_platform.Platform.num_clusters pf in
    let latencies = ref [] in
    let sent_mutations = ref 0 in
    let registered = ref [] in
    let fresh = ref 0 in
    for _round = 1 to 60 do
      match Prng.int rng ~lo:0 ~hi:9 with
      | 0 | 1 ->
        (* Honest mutation: register on a random cluster (may be
           rejected if owned — both outcomes are fine, the server must
           just answer). *)
        let fd = connect h in
        incr fresh;
        let app = Printf.sprintf "soak%d" !fresh in
        let cluster = Prng.int rng ~lo:0 ~hi:(num_clusters - 1) in
        let t0 = Unix.gettimeofday () in
        let r =
          request fd
            (P.Mutate
               (P.Register_app
                  { app; cluster; payoff = Prng.float rng ~lo:0.5 ~hi:2.0 }))
        in
        latencies := (Unix.gettimeofday () -. t0) :: !latencies;
        if status r = "ok" then begin
          incr sent_mutations;
          registered := app :: !registered
        end;
        Unix.close fd
      | 2 -> (
        match !registered with
        | [] -> ()
        | app :: rest ->
          let fd = connect h in
          let t0 = Unix.gettimeofday () in
          let r = request fd (P.Mutate (P.Retire_app { app })) in
          latencies := (Unix.gettimeofday () -. t0) :: !latencies;
          if status r = "ok" then begin
            incr sent_mutations;
            registered := rest
          end;
          Unix.close fd)
      | 3 | 4 ->
        (* Fault plan delta riding along with the client mix. *)
        let fd = connect h in
        let t0 = Unix.gettimeofday () in
        let r =
          request fd
            (P.Mutate
               (P.Platform_delta
                  [ Faults.Link_degrade
                      { link = Prng.int rng ~lo:0 ~hi:(num_clusters - 1);
                        factor = Prng.float rng ~lo:0.2 ~hi:0.9 } ]))
        in
        latencies := (Unix.gettimeofday () -. t0) :: !latencies;
        if status r = "ok" then incr sent_mutations;
        Unix.close fd
      | 5 | 6 ->
        let fd = connect h in
        let t0 = Unix.gettimeofday () in
        let r =
          request fd
            (P.Get_schedule
               { objective = Dls_core.Lp_relax.Maxmin;
                 budget_ms = Some (Prng.float rng ~lo:1.0 ~hi:200.0) })
        in
        latencies := (Unix.gettimeofday () -. t0) :: !latencies;
        Alcotest.(check bool) "schedule answered" true
          (status r = "ok" || status r = "overloaded");
        Unix.close fd
      | 7 ->
        (* Malformed client. *)
        let fd = connect h in
        let junk = "@@@@\n" in
        ignore (Unix.write_substring fd junk 0 (String.length junk));
        let buf = Buffer.create 64 in
        ignore (P.read_frame ~timeout:5.0 ~buf fd);
        Unix.close fd
      | 8 ->
        (* Abandoning client: connects and walks away. *)
        let fd = connect h in
        Unix.close fd
      | _ ->
        (* Slowloris: half a frame and silence; reaped in background. *)
        let fd = connect h in
        let partial = "57\n{\"op\":" in
        ignore (Unix.write_substring fd partial 0 (String.length partial));
        Unix.close fd
    done;
    (* Give the reaper a chance to account for the stragglers. *)
    Unix.sleepf 0.6;
    let fd = connect h in
    let r = request fd P.Health in
    Unix.close fd;
    Alcotest.(check string) "alive after the soak" "ok" (status r);
    Alcotest.(check (float 0.0)) "every accepted mutation journaled"
      (float_of_int !sent_mutations)
      (num_field "wal_entries" r);
    Alcotest.(check (float 0.0)) "no queue residue" 0.0
      (num_field "queue_depth" r);
    let lat = Array.of_list !latencies in
    Array.sort compare lat;
    let p99 = lat.(min (Array.length lat - 1)
                     (int_of_float (0.99 *. float_of_int (Array.length lat)))) in
    Alcotest.(check bool) "p99 latency bounded" true (p99 < 5.0);
    (* Liveness after everything: the journal replays cleanly. *)
    match D.Journal.open_ ~path:wal ~platform:pf with
    | Error e -> Alcotest.failf "post-soak replay: %s" e
    | Ok (state', journal') ->
      D.Journal.close journal';
      Alcotest.(check bool) "post-soak state replays equal" true
        (D.State.equal state state')

(* ------------------------------------------------------------------ *)
(* Resident warm LP: warm-vs-cold equivalence, pivots, breaker carry   *)
(* ------------------------------------------------------------------ *)

module Lp_relax = Dls_core.Lp_relax

let apply_edits h edits =
  List.iter
    (function
      | D.State.Set_speed (c, v) ->
        Lp_relax.Incremental.set_speed h ~cluster:c v
      | D.State.Set_local_bw (c, v) ->
        Lp_relax.Incremental.set_local_bw h ~cluster:c v
      | D.State.Set_link_cap (l, n) ->
        Lp_relax.Incremental.set_max_connect h ~link:l n)
    edits

(* The daemon's resident-handle lifecycle modelled directly against
   Lp_relax: one handle kept across a random mutation-log prefix
   (capacity deltas applied as RHS edits via State.warm_edits,
   structural mutations dropping the handle), checked after EVERY
   mutation against a cold re-solve of the current problem.  The
   relaxation optima must agree to float tolerance on both LP
   backends. *)
let prop_warm_equals_cold backend =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "warm-incremental equals cold re-solve (%s)"
         (Dls_lp.Backend.to_string backend))
    ~count:12
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 12))
    (fun (seed, n) ->
      let pf = platform () in
      let st = D.State.create pf in
      let handle = ref None in
      let solve_warm () =
        let h =
          match !handle with
          | Some h -> h
          | None ->
            let h =
              Lp_relax.Incremental.create ~objective:Lp_relax.Maxmin ~backend
                (D.State.problem st)
            in
            handle := Some h;
            h
        in
        match Lp_relax.Incremental.solve h with
        | Lp_relax.Solution s -> s.Lp_relax.objective_value
        | Lp_relax.Failed m -> Alcotest.failf "warm solve failed: %s" m
      in
      let solve_cold () =
        match
          Lp_relax.solve ~objective:Lp_relax.Maxmin ~backend
            (D.State.problem st)
        with
        | Lp_relax.Solution s -> s.Lp_relax.objective_value
        | Lp_relax.Failed m -> Alcotest.failf "cold solve failed: %s" m
      in
      let close a b =
        Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs b)
      in
      ignore (solve_warm ());
      let mutations = gen_mutations pf (Prng.create ~seed) n in
      List.for_all
        (fun m ->
          (match D.State.apply st m with
          | Ok () -> ()
          | Error e -> Alcotest.failf "generated mutation rejected: %s" e);
          (match D.State.warm_edits st m with
          | Some edits -> (
            match !handle with Some h -> apply_edits h edits | None -> ())
          | None -> handle := None);
          close (solve_warm ()) (solve_cold ()))
        mutations)

(* Warm re-solves after capacity edits must pay fewer simplex pivots
   than cold solves of the same problems — the whole point of keeping
   the handle resident.  Aggregated over a run of throttle edits so a
   single degenerate case cannot flip the comparison. *)
let test_resident_pivots_warm_lt_cold () =
  let pf = platform ~k:10 () in
  let st = D.State.create pf in
  List.iter
    (fun (app, cluster) ->
      match
        D.State.apply st (P.Register_app { app; cluster; payoff = 1.0 })
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ ("a", 0); ("b", 3); ("c", 6) ];
  let h =
    Lp_relax.Incremental.create ~objective:Lp_relax.Maxmin
      (D.State.problem st)
  in
  (match Lp_relax.Incremental.solve h with
  | Lp_relax.Solution _ -> ()
  | Lp_relax.Failed m -> Alcotest.failf "initial solve: %s" m);
  let sum_warm = ref 0 and sum_cold = ref 0 in
  for i = 1 to 6 do
    let cluster = i mod 10 in
    let m =
      P.Platform_delta
        [ Faults.Cluster_throttle { cluster; factor = 0.8 } ]
    in
    (match D.State.apply st m with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    (match D.State.warm_edits st m with
    | Some edits -> apply_edits h edits
    | None -> Alcotest.fail "throttle must be a warm edit");
    let before = (Lp_relax.Incremental.counters h).Dls_lp.Revised_simplex.pivots in
    (match Lp_relax.Incremental.solve h with
    | Lp_relax.Solution _ -> ()
    | Lp_relax.Failed m -> Alcotest.failf "warm solve: %s" m);
    sum_warm :=
      !sum_warm
      + (Lp_relax.Incremental.counters h).Dls_lp.Revised_simplex.pivots
      - before;
    match Lp_relax.solve ~objective:Lp_relax.Maxmin (D.State.problem st) with
    | Lp_relax.Solution s -> sum_cold := !sum_cold + s.Lp_relax.iterations
    | Lp_relax.Failed m -> Alcotest.failf "cold solve: %s" m
  done;
  Alcotest.(check bool)
    (Printf.sprintf "warm pivots (%d) < cold pivots (%d)" !sum_warm !sum_cold)
    true
    (!sum_warm < !sum_cold)

(* The resident lifecycle through Solver.solve: first solve is a
   rebuild on the cold ladder, later solves take the warm fast path
   (single Resolve-LP attempt, heuristic prelude skipped), capacity
   deltas keep the handle warm and agree with a cold outcome, and
   structural deltas force a rebuild. *)
let test_resident_solver_warm_path () =
  let pf = platform () in
  let st = D.State.create pf in
  List.iter
    (fun m ->
      match D.State.apply st m with Ok () -> () | Error e -> Alcotest.fail e)
    [ P.Register_app { app = "a"; cluster = 0; payoff = 1.0 };
      P.Register_app { app = "b"; cluster = 3; payoff = 2.0 } ];
  let r = D.Solver.resident () in
  let breaker = D.Solver.breaker () in
  let base =
    Dls_core.Allocation.zero (Dls_platform.Platform.num_clusters pf)
  in
  let solve ?resident () =
    match
      D.Solver.solve ?resident ~breaker ~objective:Dls_core.Lp_relax.Maxmin
        ~budget_s:30.0 ~base (D.State.problem st)
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "solve: %s" e
  in
  (* First resident solve: no handle yet, so the cold ladder runs in
     its usual order and the LP rung builds the handle (a rebuild). *)
  let o1 = solve ~resident:r () in
  Alcotest.(check string) "first solve won by LP" "resolve_lp"
    (D.Solver.rung_name o1.D.Solver.rung);
  (match o1.D.Solver.attempts with
  | { D.Solver.a_rung = D.Solver.Rescale; _ } :: _ -> ()
  | _ -> Alcotest.fail "first solve must start at the rescale floor");
  let w, rb, _ = D.Solver.resident_stats r in
  Alcotest.(check (pair int int)) "first solve is a rebuild" (0, 1) (w, rb);
  (* Second solve: the warm fast path — one attempt, prelude skipped,
     not degraded. *)
  let o2 = solve ~resident:r () in
  Alcotest.(check int) "warm fast path: single attempt" 1
    (List.length o2.D.Solver.attempts);
  (match o2.D.Solver.attempts with
  | [ { D.Solver.a_rung = D.Solver.Resolve_lp; _ } ] -> ()
  | _ -> Alcotest.fail "warm fast path must attempt only Resolve_lp");
  Alcotest.(check bool) "prelude reported skipped" true
    (List.mem D.Solver.Rescale o2.D.Solver.skipped
    && List.mem D.Solver.Refine o2.D.Solver.skipped);
  Alcotest.(check bool) "warm fast path not degraded" false
    o2.D.Solver.degraded;
  let w, rb, _ = D.Solver.resident_stats r in
  Alcotest.(check (pair int int)) "second solve is a warm hit" (1, 1) (w, rb);
  (* Capacity deltas (throttle, then a crash) stay warm and match the
     cold solve on the mutated problem. *)
  List.iter
    (fun kinds ->
      let m = P.Platform_delta kinds in
      (match D.State.apply st m with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      (match D.State.warm_edits st m with
      | Some _ as edits -> D.Solver.resident_apply r edits
      | None -> Alcotest.fail "capacity delta must be warm");
      let ow = solve ~resident:r () in
      let oc = solve () in
      Alcotest.(check bool) "warm allocation feasible" true
        (Dls_core.Allocation.is_feasible (D.State.problem st)
           ow.D.Solver.allocation);
      (* The warm fast path rounds the LP rung only, while the cold
         ladder keeps the best across all rungs — final outcomes agree
         to rounding noise, not bit-exactly (the exact warm=cold claim
         holds at the relaxation level, see the QCheck property). *)
      Alcotest.(check bool)
        (Printf.sprintf "warm objective within 5%% of cold (%g vs %g)"
           ow.D.Solver.objective_value oc.D.Solver.objective_value)
        true
        (Float.abs
           (ow.D.Solver.objective_value -. oc.D.Solver.objective_value)
        <= 0.05 *. Float.max 1.0 oc.D.Solver.objective_value))
    [ [ Faults.Cluster_throttle { cluster = 0; factor = 0.5 } ];
      [ Faults.Cluster_crash 5 ] ];
  let _, rb, edits = D.Solver.resident_stats r in
  Alcotest.(check int) "still one rebuild" 1 rb;
  Alcotest.(check bool) "edits accounted" true (edits >= 3);
  (* A structural delta invalidates; the next solve rebuilds. *)
  let m =
    P.Platform_delta [ Faults.Link_degrade { link = 1; factor = 0.5 } ]
  in
  (match D.State.apply st m with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match D.State.warm_edits st m with
  | None -> D.Solver.resident_apply r None
  | Some _ -> Alcotest.fail "degradation must be structural");
  ignore (solve ~resident:r ());
  let _, rb, _ = D.Solver.resident_stats r in
  Alcotest.(check int) "structural delta forces a rebuild" 2 rb

(* Satellite regression: the circuit breaker's state must carry over a
   resident-handle rebuild.  Drive the breaker Half_open with a fake
   clock, invalidate the resident (the structural-delta path), and
   check the breaker is still Half_open with its trip count intact —
   then let the rebuilt handle's solve act as the half-open probe. *)
let test_breaker_half_open_across_rebuild () =
  let pf = platform () in
  let st = D.State.create pf in
  (match
     D.State.apply st (P.Register_app { app = "a"; cluster = 0; payoff = 1.0 })
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let b =
    D.Solver.breaker ~threshold:1 ~base_backoff_s:1.0 ~max_backoff_s:60.0 ()
  in
  let r = D.Solver.resident () in
  let now = ref 0.0 in
  let clock () = !now in
  let base =
    Dls_core.Allocation.zero (Dls_platform.Platform.num_clusters pf)
  in
  let solve () =
    match
      D.Solver.solve ~now:clock ~resident:r ~breaker:b
        ~objective:Dls_core.Lp_relax.Maxmin ~budget_s:30.0 ~base
        (D.State.problem st)
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "solve: %s" e
  in
  ignore (solve ());  (* builds the handle, closes the breaker *)
  D.Solver.note_lp_failure b ~now:!now;  (* threshold 1: trips open *)
  Alcotest.(check string) "tripped open" "open"
    (D.Solver.breaker_state_name (D.Solver.breaker_state b ~now:!now));
  (* While open, even a live warm handle must not be solved. *)
  let o = solve () in
  Alcotest.(check bool) "open breaker skips the warm fast path" true
    (List.mem D.Solver.Resolve_lp o.D.Solver.skipped);
  Alcotest.(check bool) "degraded while open" true o.D.Solver.degraded;
  (* Backoff is 1.0 stretched by jitter in [1, 1.5]: half-open by 2 s. *)
  now := 2.0;
  Alcotest.(check string) "half-open after backoff" "half_open"
    (D.Solver.breaker_state_name (D.Solver.breaker_state b ~now:!now));
  let trips = D.Solver.breaker_trips b in
  (* THE regression: a resident rebuild must not reset the breaker. *)
  D.Solver.resident_invalidate r;
  Alcotest.(check string) "still half-open across the rebuild" "half_open"
    (D.Solver.breaker_state_name (D.Solver.breaker_state b ~now:!now));
  Alcotest.(check int) "trip count carried over" trips
    (D.Solver.breaker_trips b);
  (* The rebuilt handle's solve is the half-open probe; success closes. *)
  let o = solve () in
  Alcotest.(check string) "probe solved by LP" "resolve_lp"
    (D.Solver.rung_name o.D.Solver.rung);
  Alcotest.(check string) "probe success re-closes" "closed"
    (D.Solver.breaker_state_name (D.Solver.breaker_state b ~now:!now));
  Alcotest.(check int) "no extra trip" trips (D.Solver.breaker_trips b)

(* ------------------------------------------------------------------ *)
(* Batching: same-seq coalescing and stale-seq isolation               *)
(* ------------------------------------------------------------------ *)

let send_burst fd reqs =
  let wire =
    String.concat ""
      (List.map (fun r -> P.frame (J.to_string (P.request_to_json r))) reqs)
  in
  ignore (Unix.write_substring fd wire 0 (String.length wire))

let read_replies fd n =
  let buf = Buffer.create 1024 in
  List.init n (fun i ->
      match P.read_frame ~timeout:10.0 ~buf fd with
      | Ok reply -> (
        match J.of_string reply with
        | Ok j -> j
        | Error e -> Alcotest.failf "unparseable reply %d: %s" i e)
      | Error e -> Alcotest.failf "missing reply %d: %s" i e)

let op_of j = match J.member "op" j with Some (J.Str s) -> s | _ -> "?"

let schedule_of j =
  match P.schedule_reply_of_json j with
  | Ok sr -> sr
  | Error e -> Alcotest.failf "schedule reply: %s" e

let registered_state pf =
  let st = D.State.create pf in
  List.iter
    (fun m ->
      match D.State.apply st m with Ok () -> () | Error e -> Alcotest.fail e)
    [ P.Register_app { app = "a"; cluster = 0; payoff = 1.0 };
      P.Register_app { app = "b"; cluster = 3; payoff = 2.0 } ];
  st

(* N gets pipelined in ONE write land in one tick, form one batch and
   are served by ONE solve whose reply fans out to every waiter. *)
let test_batching_coalesces () =
  List.iter
    (fun workers ->
      with_dir @@ fun dir ->
      let state = registered_state (platform ()) in
      let h =
        start_server
          ~configure:(fun c ->
            { c with D.Server.workers; max_requests_per_tick = 16 })
          dir state None
      in
      Fun.protect ~finally:(fun () -> stop_server h) @@ fun () ->
      let fd = connect h in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      let get =
        P.Get_schedule
          { objective = Dls_core.Lp_relax.Maxmin; budget_ms = Some 5000.0 }
      in
      send_burst fd [ get; get; get; get ];
      let replies = read_replies fd 4 in
      let schedules = List.map schedule_of replies in
      (match schedules with
      | first :: rest ->
        List.iteri
          (fun i sr ->
            Alcotest.(check bool)
              (Printf.sprintf "reply %d equals the first (workers=%d)"
                 (i + 1) workers)
              true
              (P.equal_schedule first sr))
          rest
      | [] -> Alcotest.fail "no replies");
      let r = request fd P.Health in
      Alcotest.(check (float 0.0)) "one solve served the batch" 1.0
        (num_field "solves" r);
      Alcotest.(check (float 0.0)) "three requests coalesced" 3.0
        (num_field "coalesced" r);
      Alcotest.(check (float 0.0)) "four schedules delivered" 4.0
        (num_field "schedules" r))
    [ 0; 1 ]

(* A delta arriving mid-burst splits the batch: requests admitted
   before it answer for the old seq (solved against the snapshot taken
   at batch creation), the request after it for the new seq — no
   stale-seq reply ever leaks across. *)
let test_batching_stale_seq_isolation () =
  List.iter
    (fun workers ->
      with_dir @@ fun dir ->
      let state = registered_state (platform ()) in
      let seq0 = D.State.seq state in
      let h =
        start_server
          ~configure:(fun c ->
            { c with D.Server.workers; max_requests_per_tick = 16 })
          dir state None
      in
      Fun.protect ~finally:(fun () -> stop_server h) @@ fun () ->
      let fd = connect h in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      let get =
        P.Get_schedule
          { objective = Dls_core.Lp_relax.Maxmin; budget_ms = Some 5000.0 }
      in
      let delta =
        P.Mutate
          (P.Platform_delta
             [ Faults.Cluster_throttle { cluster = 0; factor = 0.5 } ])
      in
      send_burst fd [ get; get; delta; get ];
      let replies = read_replies fd 4 in
      let mutates, scheds =
        List.partition (fun j -> op_of j = "mutate") replies
      in
      Alcotest.(check int) "one mutate reply" 1 (List.length mutates);
      let srs = List.map schedule_of scheds in
      let old_seq, new_seq =
        List.partition (fun sr -> sr.P.sr_seq = seq0) srs
      in
      Alcotest.(check int)
        (Printf.sprintf "two replies at the admit seq (workers=%d)" workers)
        2 (List.length old_seq);
      Alcotest.(check int) "one reply at the post-delta seq" 1
        (List.length new_seq);
      List.iter
        (fun sr ->
          Alcotest.(check int) "post-delta seq value" (seq0 + 1) sr.P.sr_seq)
        new_seq;
      (match old_seq with
      | [ a; b ] ->
        Alcotest.(check bool) "same-batch replies equal" true
          (P.equal_schedule a b)
      | _ -> ());
      let r = request fd P.Health in
      Alcotest.(check (float 0.0)) "two solves: one per seq" 2.0
        (num_field "solves" r);
      Alcotest.(check (float 0.0)) "one coalesced join" 1.0
        (num_field "coalesced" r))
    [ 0; 1 ]

(* With coalescing off, every get pays its own solve. *)
let test_batching_disabled () =
  with_dir @@ fun dir ->
  let state = registered_state (platform ()) in
  let h =
    start_server
      ~configure:(fun c ->
        { c with D.Server.coalesce = false; max_requests_per_tick = 16 })
      dir state None
  in
  Fun.protect ~finally:(fun () -> stop_server h) @@ fun () ->
  let fd = connect h in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let get =
    P.Get_schedule
      { objective = Dls_core.Lp_relax.Maxmin; budget_ms = Some 5000.0 }
  in
  send_burst fd [ get; get ];
  ignore (read_replies fd 2);
  let r = request fd P.Health in
  Alcotest.(check (float 0.0)) "two solves without coalescing" 2.0
    (num_field "solves" r);
  Alcotest.(check (float 0.0)) "nothing coalesced" 0.0
    (num_field "coalesced" r)

(* ------------------------------------------------------------------ *)
(* Worker pool: soak + crash drill at workers in {1, 4}                *)
(* ------------------------------------------------------------------ *)

(* Deterministic client population against a live multi-domain server:
   zero failed requests (no wedged connections), bounded tail latency,
   the warm path actually exercised, and a clean post-load server. *)
let test_worker_soak () =
  List.iter
    (fun workers ->
      with_dir @@ fun dir ->
      let pf = platform () in
      let state = registered_state pf in
      let h =
        start_server
          ~configure:(fun c -> { c with D.Server.workers })
          dir state None
      in
      Fun.protect ~finally:(fun () -> stop_server h) @@ fun () ->
      let stats =
        D.Load.run ~mutate_every:8 ~addr:h.h_addr ~seed:21 ~clients:6
          ~duration_s:1.2
          ~k:(Dls_platform.Platform.num_clusters pf)
          ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "progress under load (workers=%d)" workers)
        true (stats.D.Load.ok > 0);
      Alcotest.(check int) "zero failed requests" 0 stats.D.Load.errors;
      Alcotest.(check bool) "p99 bounded" true (D.Load.p99 stats < 5.0);
      (* Load clients closed their connections; the loop notices on its
         next tick and the server is left quiescent. *)
      Unix.sleepf 0.3;
      let fd = connect h in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      let r = request fd P.Health in
      Alcotest.(check (float 0.0)) "no wedged connections" 1.0
        (num_field "conns" r);
      Alcotest.(check (float 0.0)) "queue drained" 0.0
        (num_field "queue_depth" r);
      Alcotest.(check (float 0.0)) "no pending batches" 0.0
        (num_field "pending_batches" r);
      Alcotest.(check (float 0.0)) "no in-flight solves" 0.0
        (num_field "inflight_solves" r);
      Alcotest.(check bool) "warm path exercised" true
        (num_field "warm_hits" r > 0.0);
      Alcotest.(check bool) "solves batched below request count" true
        (num_field "solves" r <= num_field "schedules" r))
    [ 1; 4 ]

(* Crash drill: kill the serving loop mid-load, then prove the WAL
   determinism guarantee survived the worker pool — the journal
   replays to the live state, twice-replayed states agree, and the
   single-threaded cold solve over the replay is byte-identical. *)
let test_worker_crash_drill () =
  List.iter
    (fun workers ->
      with_dir @@ fun dir ->
      let pf = platform () in
      let wal = Filename.concat dir "wal.jsonl" in
      match D.Journal.open_ ~path:wal ~platform:pf with
      | Error e -> Alcotest.fail e
      | Ok (state, journal) ->
        List.iter
          (fun m ->
            match D.State.apply state m with
            | Ok () -> D.Journal.append journal m
            | Error e -> Alcotest.fail e)
          [ P.Register_app { app = "a"; cluster = 0; payoff = 1.0 };
            P.Register_app { app = "b"; cluster = 3; payoff = 2.0 } ];
        let h =
          start_server
            ~configure:(fun c -> { c with D.Server.workers })
            dir state (Some journal)
        in
        let crasher =
          Thread.create
            (fun () ->
              Thread.delay 0.7;
              match connect h with
              | fd ->
                (try
                   P.write_frame fd (J.to_string (P.request_to_json P.Crash))
                 with _ -> ());
                (try Unix.close fd with _ -> ())
              | exception _ -> ())
            ()
        in
        let _stats =
          D.Load.run ~mutate_every:4 ~addr:h.h_addr ~seed:7 ~clients:4
            ~duration_s:1.0
            ~k:(Dls_platform.Platform.num_clusters pf)
            ()
        in
        Thread.join crasher;
        Thread.join h.h_thread;
        (match Atomic.get h.h_result with
        | Some (Error e) ->
          Alcotest.(check bool) "died by crash request" true
            (contains "Crash_requested" e)
        | _ -> Alcotest.fail "server should have crashed");
        D.Journal.close journal;
        let reopen () =
          match D.Journal.open_ ~path:wal ~platform:pf with
          | Error e -> Alcotest.failf "replay: %s" e
          | Ok (st, j) ->
            D.Journal.close j;
            st
        in
        let st1 = reopen () in
        let st2 = reopen () in
        Alcotest.(check bool) "replay equals the live state" true
          (D.State.equal state st1);
        Alcotest.(check bool) "replay is deterministic" true
          (D.State.equal st1 st2);
        (* Single-threaded cold path over the replayed log: same
           mutation log => byte-identical schedules. *)
        let solve st =
          let breaker = D.Solver.breaker () in
          match
            D.Solver.solve ~breaker ~objective:Dls_core.Lp_relax.Maxmin
              ~budget_s:30.0
              ~base:
                (Dls_core.Allocation.zero
                   (Dls_platform.Platform.num_clusters pf))
              (D.State.problem st)
          with
          | Ok o -> o
          | Error e -> Alcotest.failf "solve: %s" e
        in
        let o1 = solve st1 and o2 = solve st2 in
        Alcotest.(check (float 0.0))
          (Printf.sprintf "identical objective (workers=%d)" workers)
          o1.D.Solver.objective_value o2.D.Solver.objective_value;
        Alcotest.(check bool) "identical allocation" true
          (o1.D.Solver.allocation.Dls_core.Allocation.alpha
           = o2.D.Solver.allocation.Dls_core.Allocation.alpha
          && o1.D.Solver.allocation.Dls_core.Allocation.beta
             = o2.D.Solver.allocation.Dls_core.Allocation.beta))
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "dls_daemon"
    [ ( "framing",
        [ Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "incomplete and bad" `Quick
            test_frame_incomplete_and_bad ] );
      qsuite "framing-prop" [ prop_frame_roundtrip; prop_frame_prefix_incomplete ];
      ( "codec",
        [ Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "rejects junk" `Quick test_request_rejects_junk;
          Alcotest.test_case "schedule reply roundtrip" `Quick
            test_schedule_reply_roundtrip ] );
      ( "state",
        [ Alcotest.test_case "apply validation" `Quick
            test_state_apply_validation;
          Alcotest.test_case "problem payoffs" `Quick test_state_problem_payoffs ] );
      ( "journal",
        [ Alcotest.test_case "reopen restores state" `Quick
            test_journal_reopen_restores_state;
          Alcotest.test_case "foreign platform rejected" `Quick
            test_journal_rejects_foreign_platform;
          Alcotest.test_case "corrupt middle rejected" `Quick
            test_journal_rejects_corrupt_middle;
          Alcotest.test_case "schedule equivalence across reopen" `Slow
            test_journal_schedule_equivalence ] );
      qsuite "journal-prop" [ prop_wal_prefix_replays ];
      ( "solver",
        [ Alcotest.test_case "zero budget degrades" `Quick
            test_solver_zero_budget_degrades;
          Alcotest.test_case "full budget resolves" `Slow
            test_solver_full_budget_resolves;
          Alcotest.test_case "open breaker skips LP" `Slow
            test_solver_breaker_open_skips_lp;
          Alcotest.test_case "breaker cycle" `Quick test_breaker_cycle ] );
      ( "server",
        [ Alcotest.test_case "end to end" `Slow test_server_end_to_end;
          Alcotest.test_case "malformed input" `Quick test_server_malformed_input;
          Alcotest.test_case "backpressure sheds" `Quick
            test_server_backpressure_sheds;
          Alcotest.test_case "reaps slow clients" `Quick
            test_server_reaps_slow_clients;
          Alcotest.test_case "drain returns" `Quick test_server_drain_returns;
          Alcotest.test_case "crash propagates" `Quick
            test_server_crash_propagates ] );
      ( "supervisor",
        [ Alcotest.test_case "restarts from WAL" `Slow
            test_supervisor_restarts_from_wal;
          Alcotest.test_case "gives up at the cap" `Quick
            test_supervisor_gives_up ] );
      ("soak", [ Alcotest.test_case "mixed clients" `Slow test_soak_mixed_clients ]);
      qsuite "resident-prop"
        [ prop_warm_equals_cold Dls_lp.Backend.Dense;
          prop_warm_equals_cold Dls_lp.Backend.Sparse ];
      ( "resident",
        [ Alcotest.test_case "warm pivots below cold" `Slow
            test_resident_pivots_warm_lt_cold;
          Alcotest.test_case "solver warm fast path" `Slow
            test_resident_solver_warm_path;
          Alcotest.test_case "breaker half-open across rebuild" `Slow
            test_breaker_half_open_across_rebuild ] );
      ( "batching",
        [ Alcotest.test_case "same-seq burst coalesces" `Slow
            test_batching_coalesces;
          Alcotest.test_case "mid-batch delta isolates seqs" `Slow
            test_batching_stale_seq_isolation;
          Alcotest.test_case "disabled coalescing solves per request" `Slow
            test_batching_disabled ] );
      ( "workers",
        [ Alcotest.test_case "soak at 1 and 4 workers" `Slow test_worker_soak;
          Alcotest.test_case "crash drill replays deterministically" `Slow
            test_worker_crash_drill ] ) ]
