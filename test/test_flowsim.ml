(* Tests for Dls_flowsim: max-min fairness known answers and simulator
   convergence to the steady-state throughput predicted by feasible
   allocations. *)

module G = Dls_graph.Graph
module P = Dls_platform.Platform
module Gen = Dls_platform.Generator
module Prng = Dls_util.Prng
module Sharing = Dls_flowsim.Sharing
module Sim = Dls_flowsim.Simulator
module Faults = Dls_flowsim.Faults
open Dls_core

let feps = 1e-9

(* ------------------------------------------------------------------ *)
(* Sharing                                                             *)
(* ------------------------------------------------------------------ *)

let test_sharing_equal_split () =
  let r =
    Sharing.rates ~capacities:[| 9.0 |]
      [ Sharing.flow [ 0 ];
        Sharing.flow [ 0 ];
        Sharing.flow [ 0 ] ]
  in
  Array.iter (fun v -> Alcotest.(check (float feps)) "third" 3.0 v) r

let test_sharing_cap_redistributes () =
  (* One flow capped at 1 on a capacity-9 link: the others split 8. *)
  let r =
    Sharing.rates ~capacities:[| 9.0 |]
      [ Sharing.flow ~cap:1.0 [ 0 ];
        Sharing.flow [ 0 ];
        Sharing.flow [ 0 ] ]
  in
  Alcotest.(check (float feps)) "capped" 1.0 r.(0);
  Alcotest.(check (float feps)) "fair rest" 4.0 r.(1);
  Alcotest.(check (float feps)) "fair rest 2" 4.0 r.(2)

let test_sharing_two_resources () =
  (* Classic max-min: flow A crosses both links, B only link 0, C only
     link 1; capacities 2 and 4: A and B get 1 each on link 0; C gets 3. *)
  let r =
    Sharing.rates ~capacities:[| 2.0; 4.0 |]
      [ Sharing.flow [ 0; 1 ];
        Sharing.flow [ 0 ];
        Sharing.flow [ 1 ] ]
  in
  Alcotest.(check (float feps)) "A" 1.0 r.(0);
  Alcotest.(check (float feps)) "B" 1.0 r.(1);
  Alcotest.(check (float feps)) "C" 3.0 r.(2)

let test_sharing_no_resource_takes_cap () =
  let r =
    Sharing.rates ~capacities:[||] [ Sharing.flow ~cap:7.5 [] ]
  in
  Alcotest.(check (float feps)) "cap" 7.5 r.(0)

let test_sharing_zero_capacity_pins () =
  let r =
    Sharing.rates ~capacities:[| 0.0 |]
      [ Sharing.flow [ 0 ] ]
  in
  Alcotest.(check (float feps)) "pinned" 0.0 r.(0)

let test_sharing_rejects_bad_input () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Sharing.rates: negative capacity") (fun () ->
      ignore (Sharing.rates ~capacities:[| -1.0 |] []));
  Alcotest.check_raises "unknown resource"
    (Invalid_argument "Sharing.rates: unknown resource") (fun () ->
      ignore
        (Sharing.rates ~capacities:[||] [ Sharing.flow ~cap:1.0 [ 0 ] ]))

let prop_sharing_respects_capacities =
  QCheck2.Test.make ~name:"max-min rates never exceed capacities or caps" ~count:200
    QCheck2.Gen.(
      pair
        (array_size (int_range 1 4) (float_range 0.5 20.0))
        (list_size (int_range 1 8)
           (pair (list_size (int_range 0 3) (int_range 0 3)) (float_range 0.1 30.0))))
    (fun (capacities, flow_specs) ->
      let nres = Array.length capacities in
      let flows =
        List.map
          (fun (rs, cap) ->
            Sharing.flow ~cap (List.filter (fun r -> r < nres) rs))
          flow_specs
      in
      let rates = Sharing.rates ~capacities flows in
      let used = Array.make nres 0.0 in
      List.iteri
        (fun i f ->
          List.iter (fun r -> used.(r) <- used.(r) +. rates.(i)) f.Sharing.resources)
        flows;
      Array.for_all2 (fun u c -> u <= c +. 1e-6) used capacities
      && List.for_all2
           (fun f i -> rates.(i) <= f.Sharing.cap +. 1e-6)
           flows
           (List.init (List.length flows) Fun.id))

let prop_sharing_work_conserving =
  QCheck2.Test.make
    ~name:"single shared link is fully used unless all flows are capped" ~count:200
    QCheck2.Gen.(
      pair (float_range 1.0 20.0)
        (list_size (int_range 1 6) (float_range 0.1 30.0)))
    (fun (capacity, caps) ->
      let flows = List.map (fun cap -> Sharing.flow ~cap [ 0 ]) caps in
      let rates = Sharing.rates ~capacities:[| capacity |] flows in
      let total = Array.fold_left ( +. ) 0.0 rates in
      let cap_sum = List.fold_left ( +. ) 0.0 caps in
      Float.abs (total -. Float.min capacity cap_sum) < 1e-6)

let test_sharing_weighted_split () =
  (* Weights 3:1 on a capacity-8 link: rates 6 and 2. *)
  let r =
    Sharing.rates ~capacities:[| 8.0 |]
      [ Sharing.flow ~weight:3.0 [ 0 ]; Sharing.flow ~weight:1.0 [ 0 ] ]
  in
  Alcotest.(check (float feps)) "heavy" 6.0 r.(0);
  Alcotest.(check (float feps)) "light" 2.0 r.(1)

let test_sharing_weighted_with_cap () =
  (* The heavy flow is capped below its weighted share: the remainder
     goes to the light one. *)
  let r =
    Sharing.rates ~capacities:[| 8.0 |]
      [ Sharing.flow ~weight:3.0 ~cap:3.0 [ 0 ]; Sharing.flow ~weight:1.0 [ 0 ] ]
  in
  Alcotest.(check (float feps)) "capped heavy" 3.0 r.(0);
  Alcotest.(check (float feps)) "light takes rest" 5.0 r.(1)

let test_sharing_rejects_bad_weight () =
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Sharing.rates: non-positive weight") (fun () ->
      ignore
        (Sharing.rates ~capacities:[| 1.0 |] [ Sharing.flow ~weight:0.0 [ 0 ] ]))

(* ------------------------------------------------------------------ *)
(* Latency                                                             *)
(* ------------------------------------------------------------------ *)

module Lat = Dls_flowsim.Latency

let line3_platform () =
  let topology = G.path_graph 3 in
  let clusters =
    Array.init 3 (fun k -> { P.speed = 10.0; local_bw = 10.0; router = k })
  in
  let backbones = Array.make 2 { P.bw = 5.0; max_connect = 4 } in
  P.make ~clusters ~topology ~backbones

let test_latency_one_way () =
  let p = line3_platform () in
  let lat = Lat.of_arrays p ~link:[| 0.1; 0.2 |] ~local:[| 0.01; 0.02; 0.03 |] in
  Alcotest.(check (float 1e-9)) "self" 0.0 (Lat.one_way p lat 1 1);
  (* 0 -> 2: local 0 + local 2 + links 0 and 1. *)
  Alcotest.(check (float 1e-9)) "path" (0.01 +. 0.03 +. 0.1 +. 0.2)
    (Lat.one_way p lat 0 2);
  Alcotest.(check (float 1e-9)) "rtt doubles" (2.0 *. Lat.one_way p lat 0 2)
    (Lat.rtt p lat 0 2);
  Alcotest.(check bool) "short route heavier weight" true
    (Lat.tcp_weight p lat 0 1 > Lat.tcp_weight p lat 0 2)

let test_latency_validation () =
  let p = line3_platform () in
  Alcotest.check_raises "negative" (Invalid_argument "Latency: negative latency")
    (fun () -> ignore (Lat.uniform p ~backbone:(-1.0) ~local:0.0));
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Latency.of_arrays: one latency per backbone link required")
    (fun () -> ignore (Lat.of_arrays p ~link:[| 0.0 |] ~local:[| 0.0; 0.0; 0.0 |]))

let test_simulator_with_latency () =
  (* Latency delays arrivals but steady-state throughput survives; zero
     latency must match the plain run exactly. *)
  let p = line3_platform () in
  let pr = Problem.make p ~payoffs:[| 1.0; 0.0; 0.0 |] in
  let a = Allocation.zero 3 in
  a.Allocation.alpha.(0).(1) <- 4.0;
  a.Allocation.beta.(0).(1) <- 1;
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible pr a);
  let plain = Sim.run ~periods:30 ~warmup:5 pr a in
  let zero_lat = Sim.run ~periods:30 ~warmup:5 ~latency:(Lat.none p) pr a in
  Alcotest.(check (float 1e-9)) "zero latency = plain" plain.Sim.achieved.(0)
    zero_lat.Sim.achieved.(0);
  let lat = Lat.uniform p ~backbone:0.05 ~local:0.01 in
  let delayed = Sim.run ~periods:30 ~warmup:5 ~latency:lat pr a in
  Alcotest.(check bool) "latency does not destroy throughput" true
    (delayed.Sim.achieved.(0) >= 0.9 *. plain.Sim.achieved.(0));
  Alcotest.(check bool) "throughput still bounded" true
    (delayed.Sim.achieved.(0) <= plain.Sim.predicted.(0) +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Simulator                                                           *)
(* ------------------------------------------------------------------ *)

let two_cluster_problem () =
  let topology = G.path_graph 2 in
  let clusters =
    Array.init 2 (fun k -> { P.speed = 10.0; local_bw = 4.0; router = k })
  in
  let backbones = [| { P.bw = 2.0; max_connect = 2 } |] in
  Problem.uniform (P.make ~clusters ~topology ~backbones)

let test_simulator_local_only () =
  let pr = two_cluster_problem () in
  let a = Allocation.zero 2 in
  a.Allocation.alpha.(0).(0) <- 7.0;
  a.Allocation.alpha.(1).(1) <- 3.0;
  let stats = Sim.run ~periods:10 ~warmup:1 pr a in
  Alcotest.(check (float 1e-6)) "app0" 7.0 stats.Sim.achieved.(0);
  Alcotest.(check (float 1e-6)) "app1" 3.0 stats.Sim.achieved.(1);
  Alcotest.(check int) "no late" 0 stats.Sim.late_transfers;
  Alcotest.(check (float 1e-9)) "efficiency" 1.0 (Sim.efficiency stats)

let test_simulator_remote_transfer () =
  let pr = two_cluster_problem () in
  let a = Allocation.zero 2 in
  a.Allocation.alpha.(0).(0) <- 6.0;
  a.Allocation.alpha.(0).(1) <- 4.0;
  a.Allocation.beta.(0).(1) <- 2;
  Alcotest.(check bool) "precondition feasible" true (Allocation.is_feasible pr a);
  let stats = Sim.run ~periods:30 ~warmup:3 pr a in
  Alcotest.(check bool) "app0 near predicted" true
    (stats.Sim.achieved.(0) >= 9.5 && stats.Sim.achieved.(0) <= 10.0 +. 1e-6);
  Alcotest.(check int) "no stalls" 0 stats.Sim.stalled_transfers

let test_simulator_stalled_when_no_connection () =
  let pr = two_cluster_problem () in
  let a = Allocation.zero 2 in
  (* Positive remote work but zero connections: rate cap 0. *)
  a.Allocation.alpha.(0).(1) <- 1.0;
  let stats = Sim.run ~periods:5 ~warmup:1 pr a in
  Alcotest.(check bool) "stalled detected" true (stats.Sim.stalled_transfers > 0);
  Alcotest.(check (float 1e-6)) "nothing achieved" 0.0 stats.Sim.achieved.(0)

let test_simulator_rejects_bad_window () =
  Alcotest.check_raises "bad window"
    (Invalid_argument "Simulator.run: need 0 <= warmup < periods") (fun () ->
      ignore (Sim.run ~periods:2 ~warmup:2 (two_cluster_problem ()) (Allocation.zero 2)))

(* --- Scale invariance (relative-tolerance regression) -------------- *)

(* Same shape as [two_cluster_problem], uniformly rescaled: speeds,
   bandwidths and workloads all multiplied by [s].  Under the scaled
   comparisons every rate and amount scales by [s] while times are
   untouched, so the run must behave identically at 1e-10 and 1e+10 —
   the absolute [eps = 1e-9] cutoffs this regression pins down used to
   classify the whole 1e-10 pattern as stalled dust. *)
let scaled_problem s =
  let topology = G.path_graph 2 in
  let clusters =
    Array.init 2 (fun k -> { P.speed = 10.0 *. s; local_bw = 4.0 *. s; router = k })
  in
  let backbones = [| { P.bw = 2.0 *. s; max_connect = 2 } |] in
  Problem.uniform (P.make ~clusters ~topology ~backbones)

let scaled_alloc s =
  let a = Allocation.zero 2 in
  a.Allocation.alpha.(0).(0) <- 6.0 *. s;
  a.Allocation.alpha.(0).(1) <- 4.0 *. s;
  a.Allocation.beta.(0).(1) <- 2;
  a

let test_simulator_scale_invariant () =
  let base = Sim.run ~periods:30 ~warmup:3 (scaled_problem 1.0) (scaled_alloc 1.0) in
  Alcotest.(check bool) "baseline guard healthy" false base.Sim.guard_exhausted;
  List.iter
    (fun s ->
      let st = Sim.run ~periods:30 ~warmup:3 (scaled_problem s) (scaled_alloc s) in
      let label fmt_s = Printf.sprintf "%s at scale %g" fmt_s s in
      Alcotest.(check int) (label "no stalls") 0 st.Sim.stalled_transfers;
      Alcotest.(check bool) (label "guard healthy") false st.Sim.guard_exhausted;
      Alcotest.(check (float 1e-9)) (label "efficiency invariant")
        (Sim.efficiency base) (Sim.efficiency st);
      Array.iteri
        (fun i v ->
          let expect = base.Sim.achieved.(i) in
          if Float.abs ((v /. s) -. expect) > 1e-9 *. Float.max 1.0 expect then
            Alcotest.failf "achieved.(%d) at scale %g: %.17g, want %.17g * %g"
              i s v expect s)
        st.Sim.achieved)
    [ 1e-10; 1e-5; 1e5; 1e10 ]

let test_simulator_scale_invariant_with_faults () =
  (* A link-down episode mid-run must degrade throughput by the same
     fraction at any platform scale (fault times live on the unscaled
     period axis). *)
  let mk_plan s =
    Faults.make
      (Problem.platform (scaled_problem s))
      [ { Faults.time = 5.0; kind = Faults.Link_down 0 };
        { Faults.time = 12.0; kind = Faults.Link_up 0 } ]
  in
  let run s =
    Sim.run ~periods:30 ~warmup:3 ~faults:(mk_plan s) (scaled_problem s)
      (scaled_alloc s)
  in
  let base = run 1.0 in
  Alcotest.(check bool) "faulted baseline sees the episode" true
    (base.Sim.downtime > 0.0);
  List.iter
    (fun s ->
      let st = run s in
      Alcotest.(check bool)
        (Printf.sprintf "guard healthy at scale %g" s)
        false st.Sim.guard_exhausted;
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "downtime invariant at scale %g" s)
        base.Sim.downtime st.Sim.downtime;
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "efficiency invariant at scale %g" s)
        (Sim.efficiency base) (Sim.efficiency st))
    [ 1e-10; 1e10 ]

(* --- Faults boundary conventions ----------------------------------- *)

let test_faults_advance_closed_at_now () =
  let p = Problem.platform (two_cluster_problem ()) in
  let plan = Faults.make p [ { Faults.time = 2.0; kind = Faults.Link_down 0 } ] in
  let st = Faults.start p plan in
  Alcotest.(check int) "strictly before: not applied" 0
    (List.length (Faults.advance st ~now:1.9999999999));
  (* Closed at [now]: the event exactly on the boundary is applied. *)
  Alcotest.(check int) "exactly at now: applied" 1
    (List.length (Faults.advance st ~now:2.0));
  Alcotest.(check (float 0.0)) "link is down" 0.0 (Faults.link_factor st 0);
  (* Exactly once: replaying the same instant returns nothing. *)
  Alcotest.(check int) "second advance to same now is empty" 0
    (List.length (Faults.advance st ~now:2.0))

let test_faults_downtime_half_open_horizon () =
  let p = Problem.platform (two_cluster_problem ()) in
  let ev t kind = { Faults.time = t; kind } in
  (* An event landing exactly on the horizon is outside [0, horizon). *)
  let starts_at_horizon = Faults.make p [ ev 5.0 (Faults.Link_down 0) ] in
  Alcotest.(check (float 0.0)) "fault starting at horizon adds nothing" 0.0
    (Faults.downtime p starts_at_horizon ~horizon:5.0);
  (* A recovery exactly at the horizon does not clip the episode: down
     over [2, 5) charges 3 time units. *)
  let recovers_at_horizon =
    Faults.make p [ ev 2.0 (Faults.Link_down 0); ev 5.0 (Faults.Link_up 0) ]
  in
  Alcotest.(check (float 1e-12)) "recovery at horizon does not clip" 3.0
    (Faults.downtime p recovers_at_horizon ~horizon:5.0);
  (* Unrecovered fault is charged up to the horizon, from t = 0. *)
  let from_zero = Faults.make p [ ev 0.0 (Faults.Cluster_crash 1) ] in
  Alcotest.(check (float 1e-12)) "whole window" 4.0
    (Faults.downtime p from_zero ~horizon:4.0)

let test_faults_downtime_never_double_counts () =
  let p = Problem.platform (two_cluster_problem ()) in
  let ev t kind = { Faults.time = t; kind } in
  (* Abutting episodes — recovery and next failure at the same instant —
     cover [1, 3) exactly once. *)
  let abutting =
    Faults.make p
      [ ev 1.0 (Faults.Link_down 0); ev 2.0 (Faults.Link_up 0);
        ev 2.0 (Faults.Link_down 0); ev 3.0 (Faults.Link_up 0) ]
  in
  Alcotest.(check (float 1e-12)) "abutting episodes count once" 2.0
    (Faults.downtime p abutting ~horizon:10.0);
  (* Overlapping faults on different entities: downtime is the measure
     of the union, not the sum. *)
  let overlapping =
    Faults.make p
      [ ev 1.0 (Faults.Link_down 0);
        ev 2.0 (Faults.Cluster_throttle { cluster = 0; factor = 0.5 });
        ev 3.0 (Faults.Cluster_throttle { cluster = 0; factor = 1.0 });
        ev 4.0 (Faults.Link_up 0) ]
  in
  Alcotest.(check (float 1e-12)) "union, not sum" 3.0
    (Faults.downtime p overlapping ~horizon:10.0)

let random_problem seed =
  let rng = Prng.create ~seed in
  let k = Prng.int rng ~lo:2 ~hi:6 in
  Problem.uniform
    (Gen.generate rng
       { Gen.default_params with k; connectivity = 0.5; heterogeneity = 0.4 })

let prop_simulator_close_to_prediction =
  QCheck2.Test.make
    ~name:"simulated throughput within 15% of prediction for greedy allocations"
    ~count:15
    (QCheck2.Gen.int_range 0 10_000)
    (fun seed ->
      let pr = random_problem seed in
      let a = Greedy.solve pr in
      let stats = Sim.run ~periods:30 ~warmup:5 pr a in
      stats.Sim.stalled_transfers = 0
      && (not stats.Sim.guard_exhausted)
      && Sim.efficiency stats >= 0.85
      && Sim.efficiency stats <= 1.0 +. 1e-6)

let prop_simulator_never_exceeds_prediction =
  QCheck2.Test.make ~name:"simulated throughput never exceeds prediction" ~count:15
    (QCheck2.Gen.int_range 0 10_000)
    (fun seed ->
      let pr = random_problem (seed + 77) in
      let a = Greedy.solve pr in
      let stats = Sim.run ~periods:20 ~warmup:4 pr a in
      (not stats.Sim.guard_exhausted)
      && Array.for_all2
           (fun ach pre -> ach <= pre +. 1e-6)
           stats.Sim.achieved stats.Sim.predicted)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dls_flowsim"
    [ ( "sharing",
        [ Alcotest.test_case "equal split" `Quick test_sharing_equal_split;
          Alcotest.test_case "cap redistributes" `Quick test_sharing_cap_redistributes;
          Alcotest.test_case "two resources" `Quick test_sharing_two_resources;
          Alcotest.test_case "no resource" `Quick test_sharing_no_resource_takes_cap;
          Alcotest.test_case "zero capacity" `Quick test_sharing_zero_capacity_pins;
          Alcotest.test_case "bad input" `Quick test_sharing_rejects_bad_input;
          Alcotest.test_case "weighted split" `Quick test_sharing_weighted_split;
          Alcotest.test_case "weighted with cap" `Quick test_sharing_weighted_with_cap;
          Alcotest.test_case "bad weight" `Quick test_sharing_rejects_bad_weight ] );
      qsuite "sharing-prop"
        [ prop_sharing_respects_capacities; prop_sharing_work_conserving ];
      ( "latency",
        [ Alcotest.test_case "one way" `Quick test_latency_one_way;
          Alcotest.test_case "validation" `Quick test_latency_validation;
          Alcotest.test_case "simulator with latency" `Quick
            test_simulator_with_latency ] );
      ( "simulator",
        [ Alcotest.test_case "local only" `Quick test_simulator_local_only;
          Alcotest.test_case "remote transfer" `Quick test_simulator_remote_transfer;
          Alcotest.test_case "stalled transfer" `Quick
            test_simulator_stalled_when_no_connection;
          Alcotest.test_case "bad window" `Quick test_simulator_rejects_bad_window;
          Alcotest.test_case "scale invariant" `Quick test_simulator_scale_invariant;
          Alcotest.test_case "scale invariant with faults" `Quick
            test_simulator_scale_invariant_with_faults ] );
      ( "faults-boundary",
        [ Alcotest.test_case "advance closed at now" `Quick
            test_faults_advance_closed_at_now;
          Alcotest.test_case "downtime half-open at horizon" `Quick
            test_faults_downtime_half_open_horizon;
          Alcotest.test_case "downtime never double-counts" `Quick
            test_faults_downtime_never_double_counts ] );
      qsuite "simulator-prop"
        [ prop_simulator_close_to_prediction; prop_simulator_never_exceeds_prediction ] ]
