(* Differential test harness for the LP backends.

   The PR-1 eta-file revised simplex (Backend.Dense) is the trusted
   oracle; the sparse core (Csc + Sparse_lu + Presolve + Sparse_simplex,
   Backend.Sparse) is the device under test.  Random packed LPs
   (feasible, degenerate, unbounded-leaning) and Table-1 platform
   relaxations run through both; statuses must match, objectives must
   agree within relative tolerance, and both solutions must be primal
   feasible.  The numerics under the sparse core get their own
   properties: CSC round-trips against a dense reference, LU
   factor-solve residuals, product-form updates vs refactorization, and
   presolve objective invariance.

   The DLS_LP_DIFF environment variable scales the run: "smoke" shrinks
   the QCheck counts and the grid for the CI timeout, "full" expands
   both (the complete Table-1 axis sweep), unset is the default tier
   (>= 500 differential QCheck instances). *)

module Rs = Dls_lp.Revised_simplex
module Sp = Dls_lp.Sparse_simplex
module Csc = Dls_lp.Csc
module Lu = Dls_lp.Sparse_lu
module Ps = Dls_lp.Presolve
module Backend = Dls_lp.Backend
module M = Dls_lp.Model.Float
module Gen_p = Dls_platform.Generator
module P = Dls_platform.Platform
module Problem = Dls_core.Problem
module Lp_relax = Dls_core.Lp_relax
module Prng = Dls_util.Prng
module Obs = Dls_obs.Metrics

type mode = Smoke | Default | Full

let mode =
  match Sys.getenv_opt "DLS_LP_DIFF" with
  | Some "smoke" -> Smoke
  | Some "full" -> Full
  | _ -> Default

let count n =
  match mode with Smoke -> max 10 (n / 5) | Default -> n | Full -> 2 * n

(* ------------------------------------------------------------------ *)
(* Random packed LPs                                                   *)
(* ------------------------------------------------------------------ *)

(* Half-integer coefficients exercise non-trivial floats while staying
   exactly representable, so oracle/sparse disagreements are real
   solver divergences, not input rounding. *)
let general_lp_gen =
  let open QCheck2.Gen in
  let* nv = int_range 1 8 in
  let* nrows = int_range 1 10 in
  let coeff = map (fun c -> float_of_int c /. 2.0) (int_range (-6) 12) in
  let row =
    let* terms =
      list_size (int_range 1 (2 * nv)) (pair (int_range 0 (nv - 1)) coeff)
    in
    let* rhs = map (fun r -> float_of_int r /. 2.0) (int_range 0 40) in
    return { Rs.coeffs = terms; rhs }
  in
  let* obj =
    list_repeat nv
      (pair (int_range 0 (nv - 1))
         (map (fun c -> float_of_int c /. 2.0) (int_range (-6) 10)))
  in
  let* rows = list_repeat nrows row in
  return { Rs.num_vars = nv; maximize = obj; rows }

(* Degenerate: many zero right-hand sides and duplicated rows — the
   shape that historically provokes cycling and ties in the ratio
   test. *)
let degenerate_lp_gen =
  let open QCheck2.Gen in
  let* p = general_lp_gen in
  let* zeroed =
    flatten_l
      (List.map
         (fun (r : Rs.constr) ->
           let* z = bool in
           return (if z then { r with Rs.rhs = 0.0 } else r))
         p.Rs.rows)
  in
  let* dup = bool in
  let rows =
    if dup && zeroed <> [] then List.hd zeroed :: zeroed else zeroed
  in
  return { p with Rs.rows = rows }

(* Unbounded-leaning: positive objective on every variable but rows
   constraining only a prefix of them, so the tail often rides free. *)
let unbounded_lp_gen =
  let open QCheck2.Gen in
  let* nv = int_range 2 6 in
  let* covered = int_range 0 (nv - 1) in
  let* nrows = int_range 0 4 in
  let coeff = map (fun c -> float_of_int c /. 2.0) (int_range 0 8) in
  let row =
    let* terms =
      if covered = 0 then return []
      else list_size (int_range 1 covered) (pair (int_range 0 (covered - 1)) coeff)
    in
    let* rhs = map float_of_int (int_range 0 20) in
    return { Rs.coeffs = terms; rhs }
  in
  let* rows = list_repeat nrows row in
  let obj = List.init nv (fun j -> (j, 1.0)) in
  return { Rs.num_vars = nv; maximize = obj; rows }

let feasible (p : Rs.problem) (sol : Rs.solution) =
  Array.for_all (fun v -> v >= -1e-7) sol.Rs.values
  && List.for_all
       (fun (r : Rs.constr) ->
         let lhs =
           List.fold_left
             (fun acc (v, c) -> acc +. (c *. sol.Rs.values.(v)))
             0.0 r.Rs.coeffs
         in
         lhs <= r.Rs.rhs +. (1e-6 *. Float.max 1.0 (Float.abs r.Rs.rhs)))
       p.Rs.rows

let close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs a)

(* The differential contract.  Budget exhaustion on either side is
   inconclusive (the two cores pivot differently), everything else must
   agree. *)
let diff_ok (p : Rs.problem) =
  let oracle = Rs.solve p in
  let sparse = Sp.solve p in
  match (oracle.Rs.status, sparse.Rs.status) with
  | Rs.Optimal, Rs.Optimal ->
    close oracle.Rs.objective sparse.Rs.objective
    && feasible p oracle && feasible p sparse
  | Rs.Unbounded, Rs.Unbounded -> true
  | (Rs.Iteration_limit | Rs.Cycling), _ | _, (Rs.Iteration_limit | Rs.Cycling)
    ->
    true
  | _ -> false

let prop_diff_general =
  QCheck2.Test.make ~name:"dense and sparse backends agree (general)"
    ~count:(count 300) general_lp_gen diff_ok

let prop_diff_degenerate =
  QCheck2.Test.make ~name:"dense and sparse backends agree (degenerate)"
    ~count:(count 150) degenerate_lp_gen diff_ok

let prop_diff_unbounded =
  QCheck2.Test.make ~name:"dense and sparse backends agree (unbounded)"
    ~count:(count 120) unbounded_lp_gen diff_ok

let prop_sparse_strong_duality =
  QCheck2.Test.make ~name:"sparse backend satisfies strong duality"
    ~count:(count 200) general_lp_gen (fun p ->
      let sol = Sp.solve p in
      sol.Rs.status <> Rs.Optimal
      || begin
        let dual_obj =
          List.fold_left2
            (fun acc (r : Rs.constr) d -> acc +. (d *. r.Rs.rhs))
            0.0 p.Rs.rows
            (Array.to_list sol.Rs.duals)
        in
        Float.abs (dual_obj -. sol.Rs.objective)
        <= 1e-5 *. Float.max 1.0 (Float.abs sol.Rs.objective)
        && Array.for_all (fun d -> d >= -1e-7) sol.Rs.duals
      end)

(* ------------------------------------------------------------------ *)
(* CSC numerics vs a dense reference                                   *)
(* ------------------------------------------------------------------ *)

let dense_case_gen =
  let open QCheck2.Gen in
  let* nrows = int_range 0 7 in
  let* ncols = int_range 0 7 in
  let* entries =
    list_size (int_range 0 (3 * max 1 (nrows * ncols / 2)))
      (triple
         (int_range 0 (max 0 (nrows - 1)))
         (int_range 0 (max 0 (ncols - 1)))
         (map (fun v -> float_of_int v /. 2.0) (int_range (-9) 9)))
  in
  let* x = list_repeat ncols (map float_of_int (int_range (-5) 5)) in
  let* y = list_repeat nrows (map float_of_int (int_range (-5) 5)) in
  return (nrows, ncols, entries, Array.of_list x, Array.of_list y)

let build_dense nrows ncols entries =
  let d = Array.make_matrix nrows ncols 0.0 in
  if nrows > 0 && ncols > 0 then
    List.iter (fun (i, j, v) -> d.(i).(j) <- d.(i).(j) +. v) entries;
  d

let build_adj nrows ncols entries =
  let adj = Array.make nrows [] in
  if nrows > 0 && ncols > 0 then
    List.iter (fun (i, j, v) -> adj.(i) <- (j, v) :: adj.(i)) entries;
  adj

let prop_csc_roundtrip =
  QCheck2.Test.make ~name:"CSC of_rows/to_dense round-trips" ~count:(count 300)
    dense_case_gen (fun (nrows, ncols, entries, _, _) ->
      let d = build_dense nrows ncols entries in
      let c = Csc.of_rows ~nrows ~ncols (build_adj nrows ncols entries) in
      Csc.to_dense c = d
      && (* no explicit zeros stored *)
      Array.for_all (fun v -> v <> 0.0) c.Csc.values)

let prop_csc_transpose =
  QCheck2.Test.make ~name:"CSC transpose matches dense transpose"
    ~count:(count 300) dense_case_gen (fun (nrows, ncols, entries, _, _) ->
      let d = build_dense nrows ncols entries in
      let c = Csc.of_rows ~nrows ~ncols (build_adj nrows ncols entries) in
      let tr = Csc.to_dense (Csc.transpose c) in
      let expected =
        Array.init ncols (fun j -> Array.init nrows (fun i -> d.(i).(j)))
      in
      tr = expected
      && Csc.to_dense (Csc.transpose (Csc.transpose c)) = d)

let prop_csc_matvec =
  QCheck2.Test.make ~name:"CSC mat_vec/mat_tvec match dense products"
    ~count:(count 300) dense_case_gen (fun (nrows, ncols, entries, x, y) ->
      let d = build_dense nrows ncols entries in
      let c = Csc.of_rows ~nrows ~ncols (build_adj nrows ncols entries) in
      let ax =
        Array.init nrows (fun i ->
            let acc = ref 0.0 in
            for j = 0 to ncols - 1 do
              acc := !acc +. (d.(i).(j) *. x.(j))
            done;
            !acc)
      in
      let aty =
        Array.init ncols (fun j ->
            let acc = ref 0.0 in
            for i = 0 to nrows - 1 do
              acc := !acc +. (d.(i).(j) *. y.(i))
            done;
            !acc)
      in
      let eq a b =
        Array.length a = Array.length b
        && Array.for_all2 (fun u v -> Float.abs (u -. v) <= 1e-9) a b
      in
      eq (Csc.mat_vec c x) ax && eq (Csc.mat_tvec c y) aty)

(* ------------------------------------------------------------------ *)
(* Sparse LU                                                           *)
(* ------------------------------------------------------------------ *)

(* Strictly diagonally dominant matrices: always nonsingular, so
   [factor] must succeed and the solve residual is well conditioned. *)
let lu_case_gen =
  let open QCheck2.Gen in
  let* m = int_range 1 12 in
  let* entries =
    list_size (int_range 0 (3 * m))
      (triple (int_range 0 (m - 1)) (int_range 0 (m - 1))
         (map (fun v -> float_of_int v /. 2.0) (int_range (-9) 9)))
  in
  let* b = list_repeat m (map float_of_int (int_range (-20) 20)) in
  return (m, entries, Array.of_list b)

let dominant_dense m entries =
  let d = Array.make_matrix m m 0.0 in
  List.iter (fun (i, j, v) -> if i <> j then d.(i).(j) <- d.(i).(j) +. v) entries;
  for i = 0 to m - 1 do
    let s = ref 1.0 in
    for j = 0 to m - 1 do
      s := !s +. Float.abs d.(i).(j)
    done;
    d.(i).(i) <- !s
  done;
  d

let cols_of_dense d =
  let m = Array.length d in
  fun k ->
    let rows = ref [] and vals = ref [] in
    for i = m - 1 downto 0 do
      if d.(i).(k) <> 0.0 then begin
        rows := i :: !rows;
        vals := d.(i).(k) :: !vals
      end
    done;
    (Array.of_list !rows, Array.of_list !vals)

let max_abs v = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 v

let prop_lu_ftran_residual =
  QCheck2.Test.make ~name:"LU ftran residual ||Bx - b|| bounded"
    ~count:(count 300) lu_case_gen (fun (m, entries, b) ->
      let d = dominant_dense m entries in
      match Lu.factor ~m ~col:(cols_of_dense d) with
      | None -> false
      | Some lu ->
        let x = Array.copy b in
        Lu.ftran lu x;
        (* residual of B x = b with B's column k = d.(.)(k) *)
        let r = Array.copy b in
        for k = 0 to m - 1 do
          for i = 0 to m - 1 do
            r.(i) <- r.(i) -. (d.(i).(k) *. x.(k))
          done
        done;
        max_abs r <= 1e-7 *. (1.0 +. max_abs b))

let prop_lu_btran_residual =
  QCheck2.Test.make ~name:"LU btran residual ||B'y - c|| bounded"
    ~count:(count 300) lu_case_gen (fun (m, entries, c) ->
      let d = dominant_dense m entries in
      match Lu.factor ~m ~col:(cols_of_dense d) with
      | None -> false
      | Some lu ->
        let y = Array.copy c in
        Lu.btran lu y;
        let r = Array.copy c in
        for k = 0 to m - 1 do
          for i = 0 to m - 1 do
            r.(k) <- r.(k) -. (d.(i).(k) *. y.(i))
          done;
          r.(k) <- r.(k) +. 0.0
        done;
        max_abs r <= 1e-7 *. (1.0 +. max_abs c))

(* Product-form updates must track a from-scratch refactorization of
   the updated basis: after k column replacements both paths solve the
   same systems. *)
let update_case_gen =
  let open QCheck2.Gen in
  let* m = int_range 2 10 in
  let* entries =
    list_size (int_range 0 (3 * m))
      (triple (int_range 0 (m - 1)) (int_range 0 (m - 1))
         (map (fun v -> float_of_int v /. 2.0) (int_range (-9) 9)))
  in
  let* swaps =
    list_size (int_range 1 8) (pair (int_range 0 (m - 1)) (int_range 0 (m - 1)))
  in
  let* b = list_repeat m (map float_of_int (int_range (-20) 20)) in
  return (m, entries, swaps, Array.of_list b)

let prop_lu_update_matches_refactor =
  QCheck2.Test.make ~name:"eta updates equivalent to refactorization"
    ~count:(count 300) update_case_gen (fun (m, entries, swaps, b) ->
      let d = dominant_dense m entries in
      let acol = cols_of_dense d in
      (* slot k holds column basis.(k); -1 = unit slack column e_k *)
      let basis = Array.make m (-1) in
      let basis_col k =
        if basis.(k) < 0 then ([| k |], [| 1.0 |]) else acol basis.(k)
      in
      match Lu.factor ~m ~col:basis_col with
      | None -> false
      | Some lu ->
        List.iter
          (fun (slot, c) ->
            if not (Array.exists (fun j -> j = c) basis) then begin
              let w = Array.make m 0.0 in
              let ri, rv = acol c in
              Array.iteri (fun p i -> w.(i) <- rv.(p)) ri;
              Lu.ftran lu w;
              if Float.abs w.(slot) > 1e-6 then begin
                Lu.update lu ~slot w;
                basis.(slot) <- c
              end
            end)
          swaps;
        (match Lu.factor ~m ~col:basis_col with
         | None -> false
         | Some fresh ->
           let x1 = Array.copy b and x2 = Array.copy b in
           Lu.ftran lu x1;
           Lu.ftran fresh x2;
           let y1 = Array.copy b and y2 = Array.copy b in
           Lu.btran lu y1;
           Lu.btran fresh y2;
           let near u v =
             let scale = 1.0 +. max_abs v in
             Array.for_all2
               (fun a b -> Float.abs (a -. b) <= 1e-6 *. scale)
               u v
           in
           near x1 x2 && near y1 y2))

let test_lu_singular () =
  (* A structurally singular basis (duplicate column) must be refused,
     not mis-factorized. *)
  let col _ = ([| 0; 1 |], [| 1.0; 2.0 |]) in
  Alcotest.(check bool)
    "singular detected" true
    (Lu.factor ~m:2 ~col = None)

(* ------------------------------------------------------------------ *)
(* Presolve                                                            *)
(* ------------------------------------------------------------------ *)

let prop_presolve_invariant =
  QCheck2.Test.make ~name:"presolve never changes status or objective"
    ~count:(count 250) general_lp_gen (fun p ->
      let plain = Sp.solve ~presolve:false p in
      let pre = Sp.solve ~presolve:true p in
      match (plain.Rs.status, pre.Rs.status) with
      | Rs.Optimal, Rs.Optimal ->
        close plain.Rs.objective pre.Rs.objective && feasible p pre
      | Rs.Unbounded, Rs.Unbounded -> true
      | (Rs.Iteration_limit | Rs.Cycling), _
      | _, (Rs.Iteration_limit | Rs.Cycling) ->
        true
      | _ -> false)

let prop_presolve_unbounded_agrees =
  QCheck2.Test.make ~name:"presolve unbounded detection agrees with oracle"
    ~count:(count 150) unbounded_lp_gen (fun p ->
      let oracle = Rs.solve p in
      match Ps.reduce p with
      | Ps.Unbounded _ -> oracle.Rs.status = Rs.Unbounded
      | Ps.Reduced (rp, map) ->
        (* Postsolve of an optimal reduced solution must be feasible
           for the original program. *)
        let sol = Sp.solve ~presolve:false rp in
        (match (sol.Rs.status, oracle.Rs.status) with
         | Rs.Optimal, Rs.Optimal ->
           let values = Ps.restore_values map sol.Rs.values in
           feasible p { sol with Rs.values }
           && close oracle.Rs.objective
                (List.fold_left
                   (fun acc (j, c) -> acc +. (c *. values.(j)))
                   0.0 p.Rs.maximize)
         | Rs.Unbounded, Rs.Unbounded -> true
         | (Rs.Iteration_limit | Rs.Cycling), _
         | _, (Rs.Iteration_limit | Rs.Cycling) ->
           true
         | _ -> false))

let test_presolve_reductions () =
  (* Empty row, all-nonpositive row, dominated singleton, empty column,
     and a never-helpful column all disappear; the objective stands. *)
  let p =
    {
      Rs.num_vars = 4;
      (* x1 never appears; x3 has obj 0 and only positive coeffs. *)
      maximize = [ (0, 2.0); (2, 1.0) ];
      rows =
        [
          { Rs.coeffs = []; rhs = 5.0 };
          { Rs.coeffs = [ (0, -1.0); (2, -2.0) ]; rhs = 1.0 };
          { Rs.coeffs = [ (0, 1.0) ]; rhs = 3.0 };
          { Rs.coeffs = [ (0, 2.0) ]; rhs = 10.0 };
          (* dominated: 10/2 > 3 *)
          { Rs.coeffs = [ (2, 1.0); (3, 1.0) ]; rhs = 4.0 };
        ];
    }
  in
  match Ps.reduce p with
  | Ps.Unbounded _ -> Alcotest.fail "not unbounded"
  | Ps.Reduced (rp, map) ->
    Alcotest.(check int) "kept rows" 2 (Ps.kept_rows map);
    Alcotest.(check int) "kept cols" 2 (Ps.kept_cols map);
    Alcotest.(check int) "reduced vars" 2 rp.Rs.num_vars;
    let sol = Sp.solve p in
    let oracle = Rs.solve p in
    Alcotest.(check bool) "optimal" true (sol.Rs.status = Rs.Optimal);
    Alcotest.(check (float 1e-6)) "objective" oracle.Rs.objective
      sol.Rs.objective

let test_presolve_unbounded_column () =
  let p =
    {
      Rs.num_vars = 2;
      maximize = [ (1, 1.0) ];
      rows = [ { Rs.coeffs = [ (0, 1.0) ]; rhs = 1.0 } ];
    }
  in
  Alcotest.(check bool)
    "unbounded" true
    ((Sp.solve p).Rs.status = Rs.Unbounded);
  Alcotest.(check bool)
    "oracle agrees" true
    ((Rs.solve p).Rs.status = Rs.Unbounded)

(* ------------------------------------------------------------------ *)
(* Table-1 platform relaxations                                        *)
(* ------------------------------------------------------------------ *)

(* One value per axis step with every other parameter at its Table-1
   default — the full cross product (115,200 settings) is out of reach
   for a test suite, the axes are what the paper varies. *)
let table1_axes =
  let ks, conns, hets, gs, bws, maxcons =
    match mode with
    | Smoke ->
      ([ 5; 15 ], [ 0.1; 0.8 ], [ 0.2; 0.8 ], [ 50.0; 450.0 ],
       [ 10.0; 90.0 ], [ 5.0; 95.0 ])
    | Default ->
      ( [ 5; 15; 25; 35 ],
        [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8 ],
        [ 0.2; 0.4; 0.6; 0.8 ],
        [ 50.0; 250.0; 350.0; 450.0 ],
        [ 10.0; 30.0; 50.0; 70.0; 90.0 ],
        [ 5.0; 25.0; 45.0; 65.0; 95.0 ] )
    | Full ->
      ( [ 5; 15; 25; 35; 45; 55; 65; 75; 85; 95 ],
        [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8 ],
        [ 0.2; 0.4; 0.6; 0.8 ],
        [ 50.0; 250.0; 350.0; 450.0 ],
        List.init 9 (fun i -> float_of_int (10 * (i + 1))),
        List.init 10 (fun i -> float_of_int ((10 * i) + 5)) )
  in
  let d = Gen_p.default_params in
  List.concat
    [
      List.map (fun k -> ("k", float_of_int k, { d with Gen_p.k })) ks;
      List.map
        (fun connectivity ->
          ("connectivity", connectivity, { d with Gen_p.connectivity }))
        conns;
      List.map
        (fun heterogeneity ->
          ("heterogeneity", heterogeneity, { d with Gen_p.heterogeneity }))
        hets;
      List.map (fun mean_g -> ("g", mean_g, { d with Gen_p.mean_g })) gs;
      List.map (fun mean_bw -> ("bw", mean_bw, { d with Gen_p.mean_bw })) bws;
      List.map
        (fun mean_maxcon -> ("maxcon", mean_maxcon, { d with Gen_p.mean_maxcon }))
        maxcons;
    ]

(* Feasibility of a relaxation solution against the platform's rows
   (7b compute, 7c local links, 7d backbone slots). *)
let relax_feasible platform (sol : float Lp_relax.solution) =
  let kk = P.num_clusters platform in
  let tol cap = 1e-6 *. Float.max 1.0 cap in
  let ok = ref true in
  for l = 0 to kk - 1 do
    let load = ref 0.0 in
    for k = 0 to kk - 1 do
      load := !load +. sol.Lp_relax.alpha.(k).(l)
    done;
    if !load > P.speed platform l +. tol (P.speed platform l) then ok := false
  done;
  for k = 0 to kk - 1 do
    let traffic = ref 0.0 in
    for l = 0 to kk - 1 do
      if l <> k then
        traffic :=
          !traffic +. sol.Lp_relax.alpha.(k).(l) +. sol.Lp_relax.alpha.(l).(k)
    done;
    if !traffic > P.local_bw platform k +. tol (P.local_bw platform k) then
      ok := false
  done;
  for link = 0 to P.num_backbones platform - 1 do
    let slots = ref 0.0 in
    List.iter
      (fun (k, l) -> slots := !slots +. sol.Lp_relax.beta.(k).(l))
      (P.routes_through platform link);
    let cap = float_of_int (P.backbone platform link).P.max_connect in
    if !slots > cap +. tol cap then ok := false
  done;
  !ok

let test_table1_grid () =
  List.iteri
    (fun idx (axis, v, params) ->
      let rng = Prng.create ~seed:(0x7D1F + idx) in
      let platform = Gen_p.generate rng params in
      let payoffs = Array.make (P.num_clusters platform) 1.0 in
      let problem = Problem.make platform ~payoffs in
      List.iter
        (fun objective ->
          let name =
            Printf.sprintf "%s=%g %s" axis v
              (match objective with
               | Lp_relax.Maxmin -> "maxmin"
               | Lp_relax.Sum -> "sum")
          in
          let dense =
            Lp_relax.solve ~backend:Backend.Dense ~objective problem
          in
          let sparse =
            Lp_relax.solve ~backend:Backend.Sparse ~objective problem
          in
          match (dense, sparse) with
          | Lp_relax.Solution d, Lp_relax.Solution s ->
            if not (close d.Lp_relax.objective_value s.Lp_relax.objective_value)
            then
              Alcotest.failf "%s: dense %.9g vs sparse %.9g" name
                d.Lp_relax.objective_value s.Lp_relax.objective_value;
            if not (relax_feasible platform s) then
              Alcotest.failf "%s: sparse solution infeasible" name;
            if not (relax_feasible platform d) then
              Alcotest.failf "%s: dense solution infeasible" name
          | Lp_relax.Failed a, Lp_relax.Failed b ->
            if a <> b then Alcotest.failf "%s: %s vs %s" name a b
          | Lp_relax.Solution _, Lp_relax.Failed msg ->
            Alcotest.failf "%s: sparse failed (%s), dense solved" name msg
          | Lp_relax.Failed msg, Lp_relax.Solution _ ->
            Alcotest.failf "%s: dense failed (%s), sparse solved" name msg)
        (Lp_relax.Maxmin :: (if axis = "k" then [ Lp_relax.Sum ] else [])))
    table1_axes

(* ------------------------------------------------------------------ *)
(* Warm starts on the sparse backend                                   *)
(* ------------------------------------------------------------------ *)

let textbook rhs1 rhs2 rhs3 =
  {
    Rs.num_vars = 2;
    maximize = [ (0, 3.0); (1, 5.0) ];
    rows =
      [
        { Rs.coeffs = [ (0, 1.0) ]; rhs = rhs1 };
        { Rs.coeffs = [ (1, 2.0) ]; rhs = rhs2 };
        { Rs.coeffs = [ (0, 3.0); (1, 2.0) ]; rhs = rhs3 };
      ];
  }

let test_sparse_warm_counters () =
  let st = Sp.create (textbook 4.0 12.0 18.0) in
  let s1 = Sp.solve_state st in
  Alcotest.(check (float 1e-6)) "first solve" 36.0 s1.Rs.objective;
  Alcotest.(check (float 1e-6)) "rhs read-back" 4.0 (Sp.rhs st ~row:0);
  Sp.set_rhs st ~row:0 5.0;
  let s2 = Sp.solve_state st in
  Alcotest.(check (float 1e-6)) "re-solve" 36.0 s2.Rs.objective;
  let c = Sp.counters st in
  Alcotest.(check int) "solves" 2 c.Rs.solves;
  Alcotest.(check int) "cold starts" 1 c.Rs.cold_starts;
  Alcotest.(check int) "warm starts" 1 c.Rs.warm_starts;
  Alcotest.(check bool) "wall clock advances" true (c.Rs.wall_clock > 0.0);
  match Sp.factor_stats st with
  | None -> Alcotest.fail "no factorization after solving"
  | Some (nnz, fill, _) ->
    Alcotest.(check bool) "factor nnz positive" true (nnz > 0);
    Alcotest.(check bool) "fill-in non-negative" true (fill >= 0)

let chain_problem n =
  {
    Rs.num_vars = n;
    maximize = List.init n (fun i -> (i, 1.0));
    rows =
      List.init n (fun i ->
          {
            Rs.coeffs = ((i, 1.0) :: if i > 0 then [ (i - 1, 0.5) ] else []);
            rhs = 10.0;
          });
  }

let test_sparse_warm_fewer_pivots () =
  (* The PR-1 dense assertion, mirrored: resuming from the previous
     optimal basis after a small relaxation must beat the cold pivot
     count on a many-pivot chain. *)
  let n = 60 in
  let st = Sp.create (chain_problem n) in
  let cold = Sp.solve_state st in
  Alcotest.(check bool) "cold optimal" true (cold.Rs.status = Rs.Optimal);
  Alcotest.(check bool) "cold pivots" true (cold.Rs.iterations > 0);
  Sp.set_rhs st ~row:0 10.5;
  let warm = Sp.solve_state st in
  Alcotest.(check bool) "warm optimal" true (warm.Rs.status = Rs.Optimal);
  let c = Sp.counters st in
  Alcotest.(check int) "warm starts" 1 c.Rs.warm_starts;
  Alcotest.(check bool)
    (Printf.sprintf "warm pivots (%d) < cold pivots (%d)" warm.Rs.iterations
       cold.Rs.iterations)
    true
    (warm.Rs.iterations < cold.Rs.iterations);
  (* And the warm optimum matches a from-scratch solve. *)
  let scratch =
    Sp.solve
      { (chain_problem n) with
        Rs.rows =
          (match (chain_problem n).Rs.rows with
           | r0 :: rest -> { r0 with Rs.rhs = 10.5 } :: rest
           | [] -> assert false);
      }
  in
  Alcotest.(check (float 1e-6)) "matches cold re-solve" scratch.Rs.objective
    warm.Rs.objective

let prop_sparse_warm_matches_oracle =
  QCheck2.Test.make
    ~name:"sparse warm re-solve after tightening matches the oracle"
    ~count:(count 100)
    QCheck2.Gen.(
      let* lp = general_lp_gen in
      let* row_frac = float_range 0.0 1.0 in
      let* shrink = float_range 0.3 1.0 in
      return (lp, row_frac, shrink))
    (fun (p, row_frac, shrink) ->
      let nrows = List.length p.Rs.rows in
      if nrows = 0 then true
      else begin
        let row =
          min (nrows - 1) (int_of_float (row_frac *. float_of_int nrows))
        in
        let st = Sp.create p in
        let s1 = Sp.solve_state st in
        if s1.Rs.status <> Rs.Optimal then true
        else begin
          let old = Sp.rhs st ~row in
          Sp.set_rhs st ~row (old *. shrink);
          let s2 = Sp.solve_state st in
          let tightened =
            {
              p with
              Rs.rows =
                List.mapi
                  (fun i (r : Rs.constr) ->
                    if i = row then { r with Rs.rhs = r.Rs.rhs *. shrink }
                    else r)
                  p.Rs.rows;
            }
          in
          let oracle = Rs.solve tightened in
          match (s2.Rs.status, oracle.Rs.status) with
          | Rs.Optimal, Rs.Optimal ->
            close s2.Rs.objective oracle.Rs.objective
          | Rs.Unbounded, Rs.Unbounded -> true
          | (Rs.Iteration_limit | Rs.Cycling), _
          | _, (Rs.Iteration_limit | Rs.Cycling) ->
            true
          | _ -> false
        end
      end)

(* Registry counters flow identically through the Model incremental
   path under the sparse backend (shared lp.* metric names plus the
   lp.factor.* family). *)
let test_model_incremental_sparse () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
  @@ fun () ->
  let m = M.create () in
  let x = M.add_var ~name:"x" m in
  let y = M.add_var ~name:"y" m in
  M.add_le m [ (x, 1.0) ] 4.0;
  M.add_le m [ (y, 2.0) ] 12.0;
  M.add_le m [ (x, 3.0); (y, 2.0) ] 18.0;
  M.set_objective m [ (x, 3.0); (y, 5.0) ];
  let h = M.incremental ~backend:Backend.Sparse m in
  let r1 = M.inc_solve h in
  Alcotest.(check (float 1e-6)) "first objective" 36.0 r1.M.objective;
  M.inc_set_rhs h ~row:1 6.0;
  let r2 = M.inc_solve h in
  Alcotest.(check bool) "re-solve optimal" true (r2.M.status = M.Solver.Optimal);
  let counter name =
    match List.assoc_opt name (Obs.snapshot ()) with
    | Some (Obs.Counter n) -> n
    | _ -> Alcotest.failf "metric %s not a registered counter" name
  in
  Alcotest.(check int) "solves" 2 (counter "lp.solves");
  Alcotest.(check int) "solve starts" 2
    (counter "lp.warm_starts" + counter "lp.cold_starts");
  Alcotest.(check bool) "refactors counted" true
    (counter "lp.factor.refactors" > 0);
  (match List.assoc_opt "lp.factor.nnz" (Obs.snapshot ()) with
   | Some (Obs.Histogram h) ->
     Alcotest.(check bool) "factor nnz observed" true (h.Obs.hs_count > 0)
   | _ -> Alcotest.fail "lp.factor.nnz not registered");
  let c = M.inc_counters h in
  Alcotest.(check int) "state solves" 2 c.Rs.solves

(* The budget/optimality off-by-one pinned from the sparse side too: a
   solve that needs exactly its budget of pivots is Optimal. *)
let test_sparse_budget_boundary () =
  let p = chain_problem 20 in
  let full = Sp.solve ~presolve:false p in
  Alcotest.(check bool) "full optimal" true (full.Rs.status = Rs.Optimal);
  Alcotest.(check bool) "needs pivots" true (full.Rs.iterations > 0);
  let exact = Sp.solve ~presolve:false ~max_iterations:full.Rs.iterations p in
  Alcotest.(check bool) "exact budget still optimal" true
    (exact.Rs.status = Rs.Optimal)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dls_lp_diff"
    [
      ( "differential",
        qsuite
          [
            prop_diff_general;
            prop_diff_degenerate;
            prop_diff_unbounded;
            prop_sparse_strong_duality;
          ] );
      ( "csc",
        qsuite [ prop_csc_roundtrip; prop_csc_transpose; prop_csc_matvec ] );
      ( "sparse-lu",
        Alcotest.test_case "singular basis refused" `Quick test_lu_singular
        :: qsuite
             [
               prop_lu_ftran_residual;
               prop_lu_btran_residual;
               prop_lu_update_matches_refactor;
             ] );
      ( "presolve",
        Alcotest.test_case "structural reductions" `Quick
          test_presolve_reductions
        :: Alcotest.test_case "unbounded column" `Quick
             test_presolve_unbounded_column
        :: qsuite [ prop_presolve_invariant; prop_presolve_unbounded_agrees ] );
      ( "table1-grid",
        [ Alcotest.test_case "axes sweep, both backends" `Slow test_table1_grid ]
      );
      ( "warm-start",
        Alcotest.test_case "counters and re-solve" `Quick
          test_sparse_warm_counters
        :: Alcotest.test_case "fewer pivots than cold" `Quick
             test_sparse_warm_fewer_pivots
        :: Alcotest.test_case "model incremental, sparse backend" `Quick
             test_model_incremental_sparse
        :: Alcotest.test_case "budget boundary is optimal" `Quick
             test_sparse_budget_boundary
        :: qsuite [ prop_sparse_warm_matches_oracle ] );
    ]
