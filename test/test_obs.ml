(* Tests for lib/obs: histogram merge algebra and quantile error bounds
   (QCheck), the snapshot JSON codec, span recording and the Chrome
   trace_event exporter (golden), and the load-bearing invariant that
   enabling observability never perturbs a numeric result — campaign
   JSONL bytes, simulator stats, domain counts and shard merges. *)

module M = Dls_obs.Metrics
module Trace = Dls_obs.Trace
module Clock = Dls_obs.Clock
module Olog = Dls_obs.Log
module Flight = Dls_obs.Flight
module Publish = Dls_obs.Publish
module Obs = Dls_obs.Obs
module J = Dls_util.Json
module Prng = Dls_util.Prng
module G = Dls_graph.Graph
module P = Dls_platform.Platform
module Gen = Dls_platform.Generator
module Faults = Dls_flowsim.Faults
module Sim = Dls_flowsim.Simulator
module E = Dls_experiments
module C = E.Campaign
open Dls_core

let read_file path = In_channel.with_open_bin path In_channel.input_all

let contains sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let jsonl_lines text =
  String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")

(* Same convention as test_experiments.ml: set DLS_UPDATE_GOLDEN=<abs
   dir> to rewrite the expected files instead of comparing. *)
let golden_check name actual =
  match Sys.getenv_opt "DLS_UPDATE_GOLDEN" with
  | Some dir ->
    Out_channel.with_open_bin (Filename.concat dir name) (fun oc ->
        Out_channel.output_string oc actual)
  | None ->
    Alcotest.(check string) name (read_file (Filename.concat "golden" name))
      actual

(* Every test leaves the global registry and trace buffer the way it
   found them: off and empty.  [quiesce] is also run first thing so a
   crashed earlier test cannot leak state into this one. *)
let quiesce () =
  M.disable ();
  M.reset ();
  Trace.disable ();
  Trace.reset ()

let with_obs_on f =
  quiesce ();
  M.enable ();
  Trace.enable ();
  Fun.protect ~finally:quiesce f

(* ------------------------------------------------------------------ *)
(* Bucket geometry                                                     *)
(* ------------------------------------------------------------------ *)

let test_bucket_invariant () =
  let rng = Prng.create ~seed:5 in
  let tricky =
    [ 1.0; M.base; M.base ** 2.0; 1.0 /. M.base; 0.9999999999; 1.0000000001;
      1e-9; 1e-6; 0.5; 2.0; 3.14159; 1e6; 1e9 ]
  in
  let sampled =
    List.init 500 (fun _ -> Prng.float rng ~lo:1e-9 ~hi:1e9)
  in
  List.iter
    (fun v ->
      let b = M.bucket_of v in
      Alcotest.(check bool)
        (Printf.sprintf "bound %d <= %.17g" b v)
        true
        (M.bound b <= v);
      Alcotest.(check bool)
        (Printf.sprintf "%.17g < bound %d" v (b + 1))
        true
        (v < M.bound (b + 1)))
    (tricky @ sampled)

(* ------------------------------------------------------------------ *)
(* QCheck: merge algebra, quantile bounds, codec round-trip            *)
(* ------------------------------------------------------------------ *)

let gen_observation =
  QCheck2.Gen.(
    oneof
      [ float_range 1e-9 1e9;  (* bucketed *)
        float_range (-5.0) 0.0;  (* underflow *)
        return 0.0 ])

let gen_values = QCheck2.Gen.(list_size (int_range 0 40) gen_observation)

(* Everything except [hs_sum], which float addition reorders. *)
let hist_shape (h : M.hist_snapshot) =
  (h.M.hs_buckets, h.M.hs_underflow, h.M.hs_count, h.M.hs_min, h.M.hs_max)

let sums_close a b =
  Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a +. Float.abs b)

let prop_merge_commutative =
  QCheck2.Test.make ~name:"histogram merge is commutative" ~count:300
    QCheck2.Gen.(pair gen_values gen_values)
    (fun (xs, ys) ->
      let a = M.hist_of_values xs and b = M.hist_of_values ys in
      M.merge_hist a b = M.merge_hist b a)

let prop_merge_associative =
  QCheck2.Test.make ~name:"histogram merge is associative" ~count:300
    QCheck2.Gen.(triple gen_values gen_values gen_values)
    (fun (xs, ys, zs) ->
      let a = M.hist_of_values xs
      and b = M.hist_of_values ys
      and c = M.hist_of_values zs in
      let l = M.merge_hist (M.merge_hist a b) c in
      let r = M.merge_hist a (M.merge_hist b c) in
      hist_shape l = hist_shape r && sums_close l.M.hs_sum r.M.hs_sum)

let prop_merge_models_concat =
  QCheck2.Test.make ~name:"merge of two folds = fold of the concatenation"
    ~count:300
    QCheck2.Gen.(pair gen_values gen_values)
    (fun (xs, ys) ->
      let merged = M.merge_hist (M.hist_of_values xs) (M.hist_of_values ys) in
      let whole = M.hist_of_values (xs @ ys) in
      hist_shape merged = hist_shape whole
      && sums_close merged.M.hs_sum whole.M.hs_sum)

let prop_quantile_bucket_bound =
  QCheck2.Test.make
    ~name:"quantile estimate within one bucket factor of the true order \
           statistic"
    ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 60) (float_range 1e-9 1e9))
        (float_range 0.0 1.0))
    (fun (values, q) ->
      let hs = M.hist_of_values values in
      let sorted = List.sort Float.compare values in
      let n = List.length values in
      let rank =
        Stdlib.max 1
          (Stdlib.min n (int_of_float (Float.ceil (q *. float_of_int n))))
      in
      let truth = List.nth sorted (rank - 1) in
      let estimate = M.hist_quantile hs ~q in
      truth <= estimate && estimate <= truth *. M.base *. (1.0 +. 1e-12))

let gen_name = QCheck2.Gen.(map (Printf.sprintf "m%d") (int_range 0 9))

let gen_metric_value =
  QCheck2.Gen.(
    oneof
      [ map (fun n -> M.Counter n) (int_range 0 1_000_000);
        map2
          (fun value seq -> M.Gauge { value; seq })
          (float_range (-1e6) 1e6) (int_range (-1) 1000);
        map (fun vs -> M.Histogram (M.hist_of_values vs)) gen_values ])

(* Distinct sorted names, as [M.snapshot] produces. *)
let gen_snapshot =
  QCheck2.Gen.(
    map
      (fun pairs ->
        List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) pairs)
      (list_size (int_range 0 8) (pair gen_name gen_metric_value)))

let prop_codec_round_trip =
  QCheck2.Test.make ~name:"snapshot JSONL codec round-trips exactly" ~count:300
    gen_snapshot
    (fun snap ->
      match M.snapshot_of_jsonl (M.snapshot_to_jsonl snap) with
      | Ok decoded -> decoded = snap
      | Error _ -> false)

let test_non_finite_values_encode_as_null () =
  (* A NaN/inf gauge (e.g. a 0-duration-derived rate) must not crash the
     exit-time flush: the encoder emits null and the decoder restores a
     NaN sentinel.  Structural equality cannot express NaN = NaN, so
     this is pinned by hand rather than folded into the round-trip
     property. *)
  List.iter
    (fun bad ->
      let snap = [ ("test.codec.bad_gauge", M.Gauge { value = bad; seq = 3 }) ] in
      let line = M.snapshot_to_jsonl snap in
      Alcotest.(check bool) "value encoded as null" true
        (let has sub s =
           let n = String.length sub in
           let rec go i = i + n <= String.length s
                          && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         has "\"value\":null" line);
      match M.snapshot_of_jsonl line with
      | Ok [ (name, M.Gauge { value; seq }) ] ->
        Alcotest.(check string) "name" "test.codec.bad_gauge" name;
        Alcotest.(check int) "seq survives" 3 seq;
        Alcotest.(check bool) "null decodes to NaN" true (Float.is_nan value)
      | Ok _ -> Alcotest.fail "unexpected snapshot shape"
      | Error e -> Alcotest.failf "decode failed: %s" e)
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  (* A histogram whose sum overflowed to inf also flushes cleanly. *)
  let hs = { M.empty_hist with M.hs_sum = Float.infinity } in
  let line = M.snapshot_to_jsonl [ ("test.codec.bad_hist", M.Histogram hs) ] in
  match M.snapshot_of_jsonl line with
  | Ok [ (_, M.Histogram hs') ] ->
    Alcotest.(check (float 0.0)) "null sum decodes to 0" 0.0 hs'.M.hs_sum
  | Ok _ -> Alcotest.fail "unexpected snapshot shape"
  | Error e -> Alcotest.failf "decode failed: %s" e

let same_kind a b =
  match (a, b) with
  | M.Counter _, M.Counter _ | M.Gauge _, M.Gauge _ | M.Histogram _, M.Histogram _
    -> true
  | _ -> false

(* Avoid the (intentional) Invalid_argument on one name mapping to two
   metric kinds — the live registry can never produce that. *)
let kind_compatible a b =
  List.for_all
    (fun (n, v) ->
      match List.assoc_opt n b with None -> true | Some w -> same_kind v w)
    a

let prop_merge_round_trips_codec =
  QCheck2.Test.make
    ~name:"merged counter/gauge snapshots round-trip through the codec"
    ~count:300
    QCheck2.Gen.(pair gen_snapshot gen_snapshot)
    (fun (a, b) ->
      QCheck2.assume (kind_compatible a b);
      let merged = M.merge a b in
      match M.snapshot_of_jsonl (M.snapshot_to_jsonl merged) with
      | Ok decoded ->
        (* Exact equality: sums here come from one fixed merge order. *)
        decoded = merged
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Registry semantics                                                  *)
(* ------------------------------------------------------------------ *)

let find name snap =
  match List.assoc_opt name snap with
  | Some v -> v
  | None -> Alcotest.failf "metric %s missing from snapshot" name

let test_disabled_path_records_nothing () =
  quiesce ();
  let c = M.counter "test.off.counter" in
  let g = M.gauge "test.off.gauge" in
  let h = M.histogram "test.off.hist" in
  M.incr c;
  M.add c 41;
  M.set g 3.5;
  M.observe h 1.0;
  (match find "test.off.counter" (M.snapshot ()) with
  | M.Counter 0 -> ()
  | _ -> Alcotest.fail "disabled counter moved");
  (match find "test.off.hist" (M.snapshot ()) with
  | M.Histogram hs -> Alcotest.(check int) "no observations" 0 hs.M.hs_count
  | _ -> Alcotest.fail "wrong kind");
  Alcotest.(check bool) "disabled span is null" false
    (Trace.live (Trace.start "test.off.span"));
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()))

let test_enabled_records_and_resets () =
  with_obs_on @@ fun () ->
  let c = M.counter "test.on.counter" in
  let g = M.gauge "test.on.gauge" in
  let h = M.histogram "test.on.hist" in
  M.incr c;
  M.add c 9;
  M.set g 2.0;
  M.set g 7.5;
  List.iter (M.observe h) [ 0.5; 1.5; 0.0 ];
  let snap = M.snapshot () in
  (match find "test.on.counter" snap with
  | M.Counter n -> Alcotest.(check int) "counter" 10 n
  | _ -> Alcotest.fail "wrong kind");
  (match find "test.on.gauge" snap with
  | M.Gauge { value; _ } -> Alcotest.(check (float 0.0)) "last write" 7.5 value
  | _ -> Alcotest.fail "wrong kind");
  (match find "test.on.hist" snap with
  | M.Histogram hs ->
    Alcotest.(check int) "count" 3 hs.M.hs_count;
    Alcotest.(check int) "underflow" 1 hs.M.hs_underflow;
    Alcotest.(check (float 1e-12)) "sum" 2.0 hs.M.hs_sum;
    Alcotest.(check (float 0.0)) "min" 0.0 hs.M.hs_min;
    Alcotest.(check (float 0.0)) "max" 1.5 hs.M.hs_max
  | _ -> Alcotest.fail "wrong kind");
  M.reset ();
  match find "test.on.counter" (M.snapshot ()) with
  | M.Counter 0 -> ()
  | _ -> Alcotest.fail "reset did not zero the counter"

let test_registration_idempotent_and_kind_checked () =
  quiesce ();
  let c1 = M.counter "test.reg.c" in
  let c2 = M.counter "test.reg.c" in
  Alcotest.(check bool) "same cell" true (c1 == c2);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: \"test.reg.c\" already registered as a counter")
    (fun () -> ignore (M.histogram "test.reg.c"))

let test_gauge_merge_last_writer_wins () =
  let a = [ ("g", M.Gauge { value = 1.0; seq = 4 }) ] in
  let b = [ ("g", M.Gauge { value = 9.0; seq = 2 }) ] in
  (match M.merge a b with
  | [ ("g", M.Gauge { value; seq }) ] ->
    Alcotest.(check (float 0.0)) "later write kept" 1.0 value;
    Alcotest.(check int) "seq kept" 4 seq
  | _ -> Alcotest.fail "unexpected merge shape");
  Alcotest.(check bool) "commutative" true (M.merge a b = M.merge b a)

let test_quantile_empty_and_underflow () =
  Alcotest.(check bool) "empty -> nan" true
    (Float.is_nan (M.hist_quantile M.empty_hist ~q:0.5));
  let hs = M.hist_of_values [ 0.0; 0.0; 5.0 ] in
  (* Ranks 1-2 are underflow observations; report the smallest finite
     observation. *)
  Alcotest.(check (float 0.0)) "underflow rank" 0.0
    (M.hist_quantile hs ~q:0.3);
  let p100 = M.hist_quantile hs ~q:1.0 in
  Alcotest.(check bool) "p100 within a bucket of max" true
    (5.0 <= p100 && p100 <= 5.0 *. M.base)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting_and_instants () =
  with_obs_on @@ fun () ->
  let outer = Trace.start ~cat:"t" "outer" in
  let inner = Trace.start ~cat:"t" "inner" in
  Trace.instant ~cat:"t" "tick";
  Trace.finish inner ~args:[ ("x", "1") ];
  Trace.finish outer;
  match Trace.events () with
  | [ tick; inner_ev; outer_ev ] ->
    Alcotest.(check char) "instant" 'i' tick.Trace.ev_ph;
    Alcotest.(check int) "instant depth" 2 tick.Trace.ev_depth;
    Alcotest.(check string) "inner first (completion order)" "inner"
      inner_ev.Trace.ev_name;
    Alcotest.(check int) "inner depth" 1 inner_ev.Trace.ev_depth;
    Alcotest.(check (list (pair string string))) "args" [ ("x", "1") ]
      inner_ev.Trace.ev_args;
    Alcotest.(check int) "outer depth" 0 outer_ev.Trace.ev_depth;
    Alcotest.(check bool) "durations non-negative" true
      (inner_ev.Trace.ev_dur >= 0.0 && outer_ev.Trace.ev_dur >= 0.0)
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let test_with_span_closes_on_raise () =
  with_obs_on @@ fun () ->
  (try Trace.with_span "doomed" (fun () -> failwith "boom") with
  | Failure _ -> ());
  match Trace.events () with
  | [ ev ] -> Alcotest.(check string) "span recorded" "doomed" ev.Trace.ev_name
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* Determinism: observability never perturbs results                   *)
(* ------------------------------------------------------------------ *)

(* Mirrors test_experiments.ml: measure_time = false zeroes every
   wall-clock field, so log lines are byte-reproducible. *)
let small_config =
  { C.default_config with
    C.seed = 71; ks = [ 4; 6 ]; per_k = 3; measure_time = false }

let run_to_file ?domains ?shards ?shard config =
  let path = Filename.temp_file "dls_obs_campaign" ".jsonl" in
  (match C.run ?domains ?shards ?shard ~out:path config with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "campaign run failed: %s" msg);
  let bytes = read_file path in
  Sys.remove path;
  let manifest = path ^ ".manifest" in
  if Sys.file_exists manifest then Sys.remove manifest;
  bytes

let test_campaign_bytes_tracing_off_vs_on () =
  quiesce ();
  let baseline = run_to_file ~domains:1 small_config in
  let traced =
    with_obs_on (fun () -> run_to_file ~domains:1 small_config)
  in
  Alcotest.(check string) "byte-identical JSONL with tracing on" baseline
    traced

let line3_platform () =
  let topology = G.path_graph 3 in
  let clusters =
    Array.init 3 (fun k -> { P.speed = 10.0; local_bw = 10.0; router = k })
  in
  let backbones = Array.make 2 { P.bw = 5.0; max_connect = 4 } in
  P.make ~clusters ~topology ~backbones

let sim_fixture () =
  (* A remote allocation under a mid-run outage: exercises spawning,
     fault application and recovery — every instrumented simulator
     path. *)
  let p = line3_platform () in
  let pr = Problem.make p ~payoffs:[| 1.0; 0.0; 0.0 |] in
  let a = Allocation.zero 3 in
  a.Allocation.alpha.(0).(0) <- 2.0;
  a.Allocation.alpha.(0).(1) <- 4.0;
  a.Allocation.beta.(0).(1) <- 1;
  a.Allocation.alpha.(0).(2) <- 4.0;
  a.Allocation.beta.(0).(2) <- 1;
  let plan =
    Faults.make p
      [ { Faults.time = 4.25; kind = Faults.Link_down 0 };
        { Faults.time = 6.25; kind = Faults.Link_up 0 } ]
  in
  (pr, a, plan)

let stats_equal name (a : Sim.stats) (b : Sim.stats) =
  let check_farr what x y =
    Array.iteri
      (fun i v ->
        Alcotest.(check (float 0.0)) (Printf.sprintf "%s %s.(%d)" name what i) v
          y.(i))
      x
  in
  check_farr "predicted" a.Sim.predicted b.Sim.predicted;
  check_farr "achieved" a.Sim.achieved b.Sim.achieved;
  Alcotest.(check int) (name ^ " late") a.Sim.late_transfers b.Sim.late_transfers;
  Alcotest.(check int) (name ^ " stalled") a.Sim.stalled_transfers
    b.Sim.stalled_transfers;
  Alcotest.(check int) (name ^ " killed") a.Sim.killed_transfers
    b.Sim.killed_transfers;
  Alcotest.(check int) (name ^ " events") a.Sim.fault_events b.Sim.fault_events;
  Alcotest.(check (float 0.0)) (name ^ " downtime") a.Sim.downtime b.Sim.downtime;
  Alcotest.(check bool) (name ^ " guard healthy") false a.Sim.guard_exhausted;
  Alcotest.(check bool) (name ^ " guard") a.Sim.guard_exhausted
    b.Sim.guard_exhausted

let test_simulator_stats_tracing_off_vs_on () =
  quiesce ();
  let pr, a, plan = sim_fixture () in
  let plain = Sim.run ~periods:20 ~warmup:2 ~faults:plan pr a in
  let traced =
    with_obs_on (fun () -> Sim.run ~periods:20 ~warmup:2 ~faults:plan pr a)
  in
  stats_equal "off vs on" plain traced;
  (* And the instrumentation did actually fire while it was on. *)
  quiesce ()

let test_simulator_counters_fire () =
  with_obs_on @@ fun () ->
  let pr, a, plan = sim_fixture () in
  ignore (Sim.run ~periods:20 ~warmup:2 ~faults:plan pr a : Sim.stats);
  let snap = M.snapshot () in
  (match find "sim.runs" snap with
  | M.Counter n -> Alcotest.(check int) "one run" 1 n
  | _ -> Alcotest.fail "wrong kind");
  (match find "sim.fault_events_applied" snap with
  | M.Counter n -> Alcotest.(check int) "both events applied" 2 n
  | _ -> Alcotest.fail "wrong kind");
  match find "sim.rounds" snap with
  | M.Counter n -> Alcotest.(check bool) "rounds counted" true (n > 0)
  | _ -> Alcotest.fail "wrong kind"

(* The wall-clock-valued histogram is the one nondeterministic metric;
   everything else — counters and the zeroed campaign time histograms —
   must be exactly reproducible across domain counts and shardings. *)
let deterministic_part snap =
  List.filter (fun (name, _) -> name <> "lp.solve_seconds") snap

let test_registry_deterministic_across_domains () =
  quiesce ();
  M.enable ();
  Fun.protect ~finally:quiesce @@ fun () ->
  let one = run_to_file ~domains:1 small_config in
  let snap_one = deterministic_part (M.snapshot ()) in
  M.reset ();
  let eight = run_to_file ~domains:8 small_config in
  let snap_eight = deterministic_part (M.snapshot ()) in
  Alcotest.(check string) "JSONL bytes equal across domain counts" one eight;
  Alcotest.(check bool) "registry equal across domain counts" true
    (snap_one = snap_eight)

let test_shard_snapshots_merge_exactly () =
  quiesce ();
  M.enable ();
  Fun.protect ~finally:quiesce @@ fun () ->
  let _ = run_to_file ~domains:2 ~shards:2 ~shard:0 small_config in
  let snap0 = M.snapshot () in
  M.reset ();
  let _ = run_to_file ~domains:2 ~shards:2 ~shard:1 small_config in
  let snap1 = M.snapshot () in
  M.reset ();
  let _ = run_to_file ~domains:2 ~shards:2 small_config in
  let whole = deterministic_part (M.snapshot ()) in
  let merged = deterministic_part (M.merge snap0 snap1) in
  Alcotest.(check bool) "merge of per-shard snapshots = whole-run snapshot"
    true (merged = whole)

(* ------------------------------------------------------------------ *)
(* Snapshot deltas: diff is the inverse of merge                       *)
(* ------------------------------------------------------------------ *)

(* One tick's worth of activity against a model registry holding one
   counter, one gauge and one histogram. *)
type batch = { b_add : int; b_obs : float list; b_set : float option }

let gen_batch =
  QCheck2.Gen.(
    map3
      (fun b_add b_obs b_set -> { b_add; b_obs; b_set })
      (int_range 0 1000) gen_values
      (opt (float_range (-1e6) 1e6)))

(* The cumulative snapshot after the given batches, mirroring what the
   live registry would hold: counters accumulate, observations fold,
   and the gauge keeps the last write (seq = batch index, increasing
   like the registry's global write sequence). *)
let cumulative batches =
  let add = List.fold_left (fun s b -> s + b.b_add) 0 batches in
  let obs = List.concat_map (fun b -> b.b_obs) batches in
  let _, set =
    List.fold_left
      (fun (i, acc) b ->
        (i + 1, match b.b_set with Some v -> Some (v, i) | None -> acc))
      (0, None) batches
  in
  let gauge =
    match set with
    | Some (value, seq) -> M.Gauge { value; seq }
    | None -> M.Gauge { value = 0.0; seq = -1 }
  in
  [ ("c", M.Counter add); ("g", gauge);
    ("h", M.Histogram (M.hist_of_values obs)) ]

(* Everything except hs_sum, which telescopes through float addition in
   a different order, compares exactly. *)
let snapshots_agree a b =
  List.length a = List.length b
  && List.for_all2
       (fun (na, va) (nb, vb) ->
         na = nb
         &&
         match (va, vb) with
         | M.Histogram x, M.Histogram y ->
           hist_shape x = hist_shape y && sums_close x.M.hs_sum y.M.hs_sum
         | _ -> va = vb)
       a b

let prop_deltas_remerge =
  QCheck2.Test.make
    ~name:"fold of merge over per-tick diffs = final cumulative snapshot"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 8) gen_batch)
    (fun batches ->
      let n = List.length batches in
      let prefix i = cumulative (List.filteri (fun j _ -> j < i) batches) in
      let deltas =
        List.init n (fun i -> M.diff (prefix (i + 1)) ~since:(prefix i))
      in
      let merged = List.fold_left M.merge (prefix 0) deltas in
      snapshots_agree merged (prefix n))

(* ------------------------------------------------------------------ *)
(* Trace buffer cap                                                    *)
(* ------------------------------------------------------------------ *)

let test_trace_cap_and_dropped_counter () =
  quiesce ();
  M.enable ();
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_capacity Trace.default_capacity;
      quiesce ())
  @@ fun () ->
  Trace.set_capacity 10;
  for i = 1 to 25 do
    Trace.instant (Printf.sprintf "tick%d" i)
  done;
  Alcotest.(check int) "buffer capped" 10 (List.length (Trace.events ()));
  Alcotest.(check int) "overflow counted" 15 (Trace.dropped ());
  (match find "obs.trace.dropped" (M.snapshot ()) with
  | M.Counter n -> Alcotest.(check int) "registry counter follows" 15 n
  | _ -> Alcotest.fail "wrong kind");
  Trace.reset ();
  Alcotest.(check int) "reset clears the drop count" 0 (Trace.dropped ());
  Alcotest.check_raises "capacity < 1 rejected"
    (Invalid_argument "Trace.set_capacity: capacity must be >= 1") (fun () ->
      Trace.set_capacity 0)

(* ------------------------------------------------------------------ *)
(* Structured log                                                      *)
(* ------------------------------------------------------------------ *)

let with_log_file f =
  let path = Filename.temp_file "dls_obs_log" ".jsonl" in
  let oc = Out_channel.open_bin path in
  Fun.protect
    ~finally:(fun () ->
      Olog.close_sink ();
      Out_channel.close oc;
      Sys.remove path)
  @@ fun () -> f path oc

let test_log_levels_filter_and_lines_parse () =
  with_log_file @@ fun path oc ->
  Alcotest.(check bool) "disabled by default" false (Olog.enabled Olog.Error);
  Olog.set_sink ~level:Olog.Warn oc;
  Alcotest.(check bool) "warn passes" true (Olog.enabled Olog.Warn);
  Alcotest.(check bool) "info filtered" false (Olog.enabled Olog.Info);
  Olog.info "dropped";
  Olog.warn "kept"
    ~fields:
      [ ("k", Olog.Str "v"); ("n", Olog.Int 3); ("x", Olog.Float 1.5);
        ("b", Olog.Bool true) ];
  Olog.error "also kept";
  Olog.set_level Olog.Debug;
  Olog.debug "kept after set_level";
  Olog.close_sink ();
  Olog.warn "after close must be a no-op";
  let lines = jsonl_lines (read_file path) in
  Alcotest.(check int) "exactly the unfiltered records" 3 (List.length lines);
  List.iter
    (fun l ->
      match J.of_string l with
      | Ok j ->
        (match J.member "level" j with
        | Some _ -> ()
        | None -> Alcotest.failf "record lacks level: %s" l);
        (match J.member "msg" j with
        | Some _ -> ()
        | None -> Alcotest.failf "record lacks msg: %s" l)
      | Error e -> Alcotest.failf "log line is not strict JSON (%s): %s" e l)
    lines;
  Alcotest.(check bool) "typed fields rendered" true
    (contains "\"n\":3" (List.nth lines 0))

let test_log_reserved_keys_and_non_finite () =
  let j =
    Olog.record_to_json ~ts:12.0 Olog.Info "m"
      [ ("msg", Olog.Str "clash"); ("bad", Olog.Float Float.nan) ]
  in
  let s = J.to_string j in
  Alcotest.(check bool) "reserved key prefixed, not dropped" true
    (contains "\"_msg\":\"clash\"" s);
  Alcotest.(check bool) "record msg survives" true (contains "\"msg\":\"m\"" s);
  Alcotest.(check bool) "non-finite field encodes as null" true
    (contains "\"bad\":null" s);
  match J.of_string s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "rendered record is not strict JSON: %s" e

let test_log_multi_domain_no_torn_lines () =
  with_log_file @@ fun path oc ->
  Olog.set_sink ~level:Olog.Debug oc;
  let per_domain = 200 and n_domains = 4 in
  let worker d () =
    for i = 1 to per_domain do
      Olog.info "concurrent"
        ~fields:
          [ ("domain", Olog.Int d); ("i", Olog.Int i);
            ("pad", Olog.Str (String.make 64 (Char.chr (65 + d)))) ]
    done
  in
  let domains = List.init n_domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  Olog.close_sink ();
  let lines = jsonl_lines (read_file path) in
  Alcotest.(check int) "every record present" (n_domains * per_domain)
    (List.length lines);
  List.iter
    (fun l ->
      match J.of_string l with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "torn/interleaved line (%s): %S" e l)
    lines

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_flight_ring_overwrites_oldest () =
  Fun.protect ~finally:Flight.disable @@ fun () ->
  Flight.enable ~capacity:3 ();
  for i = 1 to 7 do
    Flight.record ~kind:"test" (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "seen counts overwritten entries" 7 (Flight.seen ());
  let whats = List.map (fun e -> e.Flight.fl_what) (Flight.entries ()) in
  Alcotest.(check (list string)) "oldest-first, newest kept"
    [ "e5"; "e6"; "e7" ] whats;
  Alcotest.check_raises "capacity < 1 rejected"
    (Invalid_argument "Flight.enable: capacity must be >= 1") (fun () ->
      Flight.enable ~capacity:0 ())

let test_flight_disabled_records_nothing () =
  Flight.disable ();
  Flight.reset ();
  Flight.record ~kind:"test" "ignored";
  Flight.note_span ~name:"ignored" ~dur_us:1.0;
  Alcotest.(check int) "no entries" 0 (List.length (Flight.entries ()))

(* ------------------------------------------------------------------ *)
(* Publish: ticker and scrape endpoint                                 *)
(* ------------------------------------------------------------------ *)

let tick_index j =
  match J.member "tick" j with
  | Some t -> (
    match J.to_int t with
    | Ok n -> n
    | Error e -> Alcotest.failf "tick is not an int: %s" e)
  | None -> Alcotest.fail "tick line lacks a tick field"

let test_publish_ticker_deltas_remerge () =
  quiesce ();
  M.enable ();
  let path = Filename.temp_file "dls_obs_ticks" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Publish.stop ();
      Sys.remove path;
      quiesce ())
  @@ fun () ->
  let c = M.counter "test.pub.ticker" in
  let h = M.histogram "test.pub.hist" in
  Publish.start_snapshots ~interval:0.02 ~path ();
  for i = 1 to 5 do
    M.add c i;
    M.observe h (float_of_int i);
    Thread.delay 0.03
  done;
  Publish.stop ();
  let final = M.snapshot () in
  (* Decode every line (the ts/tick extras must not break the metric
     codec), group into per-tick delta snapshots, and re-merge. *)
  let entries =
    List.map
      (fun l ->
        match J.of_string l with
        | Error e -> Alcotest.failf "tick line is not JSON (%s): %s" e l
        | Ok j -> (
          match M.value_of_json j with
          | Ok kv -> (tick_index j, kv)
          | Error e -> Alcotest.failf "tick line is not a metric (%s): %s" e l))
      (jsonl_lines (read_file path))
  in
  let max_tick = List.fold_left (fun m (t, _) -> Stdlib.max m t) 0 entries in
  Alcotest.(check bool) "at least two ticks recorded" true (max_tick >= 2);
  let tick t = List.filter_map (fun (u, kv) -> if u = t then Some kv else None)
      entries in
  let merged =
    List.fold_left (fun acc t -> M.merge acc (tick t)) []
      (List.init max_tick (fun i -> i + 1))
  in
  Alcotest.(check bool) "merged ticks = final cumulative registry" true
    (snapshots_agree merged final);
  (match find "test.pub.ticker" merged with
  | M.Counter n -> Alcotest.(check int) "counter total" 15 n
  | _ -> Alcotest.fail "wrong kind");
  match find "test.pub.hist" merged with
  | M.Histogram hs -> Alcotest.(check int) "observation count" 5 hs.M.hs_count
  | _ -> Alcotest.fail "wrong kind"

let recv_all fd =
  let buf = Bytes.create 4096 in
  let b = Buffer.create 256 in
  let rec go () =
    let n = Unix.read fd buf 0 (Bytes.length buf) in
    if n > 0 then begin
      Buffer.add_subbytes b buf 0 n;
      go ()
    end
  in
  (try go () with Unix.Unix_error _ -> ());
  Buffer.contents b

let test_publish_http_scrape () =
  quiesce ();
  M.enable ();
  let sock_path = Filename.temp_file "dls_obs_http" ".sock" in
  Sys.remove sock_path;
  Fun.protect
    ~finally:(fun () ->
      Publish.stop ();
      quiesce ())
  @@ fun () ->
  let c = M.counter "test.pub.scrape" in
  M.add c 7;
  let h = M.histogram "test.pub.lat" in
  M.observe h 0.5;
  Publish.start_http (Publish.Unix_sock sock_path);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let resp =
    Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
    Unix.connect fd (Unix.ADDR_UNIX sock_path);
    let req = "GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n" in
    ignore (Unix.write_substring fd req 0 (String.length req) : int);
    recv_all fd
  in
  Alcotest.(check bool) "200" true (contains "HTTP/1.1 200 OK" resp);
  Alcotest.(check bool) "exposition content type" true
    (contains "text/plain; version=0.0.4" resp);
  Alcotest.(check bool) "counter exposed" true
    (contains "test_pub_scrape_total 7" resp);
  Alcotest.(check bool) "histogram count exposed" true
    (contains "test_pub_lat_count 1" resp);
  Alcotest.(check bool) "+Inf bucket exposed" true
    (contains "test_pub_lat_bucket{le=\"+Inf\"} 1" resp)

let test_publish_addr_parsing () =
  (match Publish.addr_of_string "unix:/tmp/m.sock" with
  | Ok (Publish.Unix_sock p) -> Alcotest.(check string) "path" "/tmp/m.sock" p
  | _ -> Alcotest.fail "unix addr");
  (match Publish.addr_of_string "0.0.0.0:9100" with
  | Ok (Publish.Tcp (h, p)) ->
    Alcotest.(check string) "host" "0.0.0.0" h;
    Alcotest.(check int) "port" 9100 p
  | _ -> Alcotest.fail "host:port addr");
  (match Publish.addr_of_string "9100" with
  | Ok (Publish.Tcp (h, p)) ->
    Alcotest.(check string) "loopback default" "127.0.0.1" h;
    Alcotest.(check int) "port" 9100 p
  | _ -> Alcotest.fail "bare port addr");
  match Publish.addr_of_string "no-port" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk accepted"

(* ------------------------------------------------------------------ *)
(* Obs lifecycle                                                       *)
(* ------------------------------------------------------------------ *)

let test_obs_configure_once_finalize_idempotent () =
  quiesce ();
  Obs.reset_for_tests ();
  let dir = Filename.temp_file "dls_obs_cfg" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let p name = Filename.concat dir name in
  Fun.protect
    ~finally:(fun () ->
      Obs.reset_for_tests ();
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir;
      quiesce ())
  @@ fun () ->
  Alcotest.(check bool) "not configured yet" false (Obs.configured ());
  Obs.configure ~metrics:(p "metrics.jsonl") ~log:(p "log.jsonl")
    ~log_level:Olog.Debug ~flight:(p "flight.jsonl") ();
  Alcotest.(check bool) "configured" true (Obs.configured ());
  Alcotest.check_raises "second configure fails loudly"
    (Invalid_argument
       "Obs.configure: already configured (sinks are once-per-process)")
    (fun () -> Obs.configure ());
  Olog.info "one line" ~fields:[ ("k", Olog.Int 1) ];
  M.incr (M.counter "test.obs.cfg");
  Flight.record ~kind:"test" "entry";
  Obs.finalize ();
  let metrics1 = read_file (p "metrics.jsonl") in
  let flight1 = read_file (p "flight.jsonl") in
  Alcotest.(check bool) "log flushed" true
    (List.length (jsonl_lines (read_file (p "log.jsonl"))) = 1);
  Alcotest.(check bool) "metrics dump holds the counter" true
    (contains "test.obs.cfg" metrics1);
  Alcotest.(check bool) "flight dump holds the entry" true
    (contains "\"entry\"" flight1);
  (* Mutate after finalize: a second finalize must be a no-op, not a
     rewrite. *)
  Flight.record ~kind:"test" "late entry";
  Obs.finalize ();
  Alcotest.(check string) "metrics dump unchanged" metrics1
    (read_file (p "metrics.jsonl"));
  Alcotest.(check string) "flight dump unchanged" flight1
    (read_file (p "flight.jsonl"))

(* A scraper that connects and never sends its request must cost at
   most [recv_timeout], not wedge the single-threaded responder: the
   honest scraper queued behind it still gets served.  Regression for
   the unbounded-blocking responder. *)
let test_publish_http_slow_scraper () =
  quiesce ();
  M.enable ();
  let sock_path = Filename.temp_file "dls_obs_slow" ".sock" in
  Sys.remove sock_path;
  Fun.protect
    ~finally:(fun () ->
      Publish.stop ();
      quiesce ())
  @@ fun () ->
  M.add (M.counter "test.pub.slow") 3;
  Publish.start_http ~recv_timeout:0.2 ~send_timeout:0.2
    (Publish.Unix_sock sock_path);
  (* The slowloris: connect, send nothing, keep the socket open. *)
  let stalled = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect stalled (Unix.ADDR_UNIX sock_path);
  Fun.protect ~finally:(fun () -> Unix.close stalled) @@ fun () ->
  (* An honest scrape right behind it must still be answered (the
     responder spends at most recv_timeout on the stalled one). *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let resp =
    Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
    Unix.connect fd (Unix.ADDR_UNIX sock_path);
    let req = "GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n" in
    ignore (Unix.write_substring fd req 0 (String.length req) : int);
    recv_all fd
  in
  Alcotest.(check bool) "served despite the stalled peer" true
    (contains "test_pub_slow_total 3" resp)

(* The daemon supervisor path: [finalize] closes an epoch, after which
   a fresh [configure] is legal; within an epoch double-configure still
   fails loudly.  The metrics registry survives epochs so counters like
   restarts accumulate. *)
let test_obs_epoch_reconfigure () =
  quiesce ();
  Obs.reset_for_tests ();
  let dir = Filename.temp_file "dls_obs_epoch" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let p name = Filename.concat dir name in
  Fun.protect
    ~finally:(fun () ->
      Obs.reset_for_tests ();
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir;
      quiesce ())
  @@ fun () ->
  Obs.configure ~metrics:(p "m1.jsonl") ();
  let c = M.counter "test.obs.epoch" in
  M.incr c;
  Obs.finalize ();
  (* New epoch after finalize: legal, and the registry carried over. *)
  Obs.configure ~metrics:(p "m2.jsonl") ();
  M.incr c;
  (* Within the new epoch, configure-without-finalize still raises. *)
  Alcotest.check_raises "double configure still fails"
    (Invalid_argument
       "Obs.configure: already configured (sinks are once-per-process)")
    (fun () -> Obs.configure ());
  Obs.finalize ();
  Alcotest.(check bool) "first epoch saw one increment" true
    (contains "\"value\":1" (read_file (p "m1.jsonl")));
  Alcotest.(check bool) "second epoch accumulated across epochs" true
    (contains "\"value\":2" (read_file (p "m2.jsonl")))

(* ------------------------------------------------------------------ *)
(* Goldens                                                             *)
(* ------------------------------------------------------------------ *)

let test_golden_chrome_trace () =
  quiesce ();
  Trace.enable ();
  Fun.protect ~finally:quiesce @@ fun () ->
  let config = { small_config with C.per_k = 1 } in
  (match C.run ~domains:1 config with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "campaign run failed: %s" msg);
  let trace = Trace.to_chrome_json ~normalize:true () in
  (* Sanity: the exporter's output is strict JSON by our own codec. *)
  (match J.of_string trace with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "trace is not valid JSON: %s" msg);
  golden_check "obs_trace.expected" (trace ^ "\n")

(* Shared by the summary-table and Prometheus goldens: one counter pair,
   a gauge, a populated histogram (with underflow) and an empty one. *)
let table_fixture =
  [ ("campaign.entries", M.Counter 6);
    ("campaign.time.LP",
     M.Histogram (M.hist_of_values [ 0.001; 0.002; 0.004; 0.008; 0.0; 0.0 ]));
    ("engine.load", M.Gauge { value = 0.75; seq = 3 });
    ("lp.pivots", M.Counter 294);
    ("sim.empty", M.Histogram M.empty_hist) ]

let test_golden_pp_summary () =
  golden_check "obs_summary.expected"
    (Format.asprintf "%a" M.pp_summary table_fixture)

let test_golden_prometheus () =
  let body = M.to_prometheus table_fixture in
  golden_check "obs_prometheus.expected" body;
  (* Cumulative-bucket sanity independent of the golden bytes: the +Inf
     bucket equals the count, and underflow observations are included
     from the first bucket on. *)
  Alcotest.(check bool) "+Inf equals count" true
    (contains "campaign_time_LP_bucket{le=\"+Inf\"} 6" body);
  Alcotest.(check bool) "count line" true
    (contains "campaign_time_LP_count 6" body)

let test_golden_flight_dump () =
  quiesce ();
  let t = ref 0.0 in
  Clock.set_override (fun () ->
      t := !t +. 250.0;
      !t);
  Fun.protect
    ~finally:(fun () ->
      Clock.clear_override ();
      Flight.disable ();
      quiesce ())
  @@ fun () ->
  Flight.enable ~capacity:4 ();
  Flight.record ~kind:"fault" "link 0 down" ~fields:[ ("sim_t", "4.25") ];
  Flight.note_span ~name:"sim.run" ~dur_us:1234.5;
  Flight.note_log ~ts:(Clock.now ()) ~level:"warn" ~msg:"guard low"
    ~fields:[ ("left", "2") ];
  Flight.record ~kind:"checkpoint" "engine checkpoint";
  Flight.record ~kind:"replan" "fault outage" (* overwrites the oldest *);
  Alcotest.(check int) "seen counts the overwritten entry" 5 (Flight.seen ());
  Alcotest.(check int) "ring keeps capacity entries" 4
    (List.length (Flight.entries ()));
  let dump = Flight.dump () in
  List.iter
    (fun l ->
      match J.of_string l with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "dump line is not strict JSON (%s): %S" e l)
    (jsonl_lines dump);
  golden_check "obs_flight.expected" dump

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "dls_obs"
    [ ( "buckets",
        [ Alcotest.test_case "bound/bucket_of invariant" `Quick
            test_bucket_invariant ] );
      ( "merge",
        [ qc prop_merge_commutative;
          qc prop_merge_associative;
          qc prop_merge_models_concat;
          qc prop_quantile_bucket_bound;
          qc prop_codec_round_trip;
          qc prop_merge_round_trips_codec;
          Alcotest.test_case "gauge last-writer-wins" `Quick
            test_gauge_merge_last_writer_wins;
          Alcotest.test_case "non-finite values encode as null" `Quick
            test_non_finite_values_encode_as_null;
          Alcotest.test_case "quantile edge cases" `Quick
            test_quantile_empty_and_underflow ] );
      ( "registry",
        [ Alcotest.test_case "disabled path records nothing" `Quick
            test_disabled_path_records_nothing;
          Alcotest.test_case "enabled records and resets" `Quick
            test_enabled_records_and_resets;
          Alcotest.test_case "registration idempotent, kind-checked" `Quick
            test_registration_idempotent_and_kind_checked ] );
      ( "spans",
        [ Alcotest.test_case "nesting and instants" `Quick
            test_span_nesting_and_instants;
          Alcotest.test_case "with_span closes on raise" `Quick
            test_with_span_closes_on_raise ] );
      ( "determinism",
        [ Alcotest.test_case "campaign bytes, tracing off vs on" `Quick
            test_campaign_bytes_tracing_off_vs_on;
          Alcotest.test_case "simulator stats, tracing off vs on" `Quick
            test_simulator_stats_tracing_off_vs_on;
          Alcotest.test_case "simulator counters fire" `Quick
            test_simulator_counters_fire;
          Alcotest.test_case "registry equal, 1 vs 8 domains" `Quick
            test_registry_deterministic_across_domains;
          Alcotest.test_case "shard snapshots merge exactly" `Quick
            test_shard_snapshots_merge_exactly ] );
      ( "deltas",
        [ qc prop_deltas_remerge;
          Alcotest.test_case "ticker deltas re-merge to the registry" `Quick
            test_publish_ticker_deltas_remerge ] );
      ( "log",
        [ Alcotest.test_case "levels filter, lines parse" `Quick
            test_log_levels_filter_and_lines_parse;
          Alcotest.test_case "reserved keys and non-finite fields" `Quick
            test_log_reserved_keys_and_non_finite;
          Alcotest.test_case "multi-domain sink, no torn lines" `Quick
            test_log_multi_domain_no_torn_lines ] );
      ( "flight",
        [ Alcotest.test_case "ring overwrites oldest" `Quick
            test_flight_ring_overwrites_oldest;
          Alcotest.test_case "disabled records nothing" `Quick
            test_flight_disabled_records_nothing ] );
      ( "publish",
        [ Alcotest.test_case "addr parsing" `Quick test_publish_addr_parsing;
          Alcotest.test_case "http scrape endpoint" `Quick
            test_publish_http_scrape;
          Alcotest.test_case "slow scraper cannot wedge" `Quick
            test_publish_http_slow_scraper ] );
      ( "lifecycle",
        [ Alcotest.test_case "trace cap and dropped counter" `Quick
            test_trace_cap_and_dropped_counter;
          Alcotest.test_case "configure once, finalize idempotent" `Quick
            test_obs_configure_once_finalize_idempotent;
          Alcotest.test_case "finalize opens a new epoch" `Quick
            test_obs_epoch_reconfigure ] );
      ( "golden",
        [ Alcotest.test_case "chrome trace exporter" `Quick
            test_golden_chrome_trace;
          Alcotest.test_case "pp summary table" `Quick test_golden_pp_summary;
          Alcotest.test_case "prometheus exposition" `Quick
            test_golden_prometheus;
          Alcotest.test_case "flight recorder dump" `Quick
            test_golden_flight_dump ] ) ]
