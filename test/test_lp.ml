(* Tests for Dls_lp: known-answer LPs, status classification, and a
   cross-validation property pitting the float solver against the exact
   rational solver on random programs. *)

module Sf = Dls_lp.Simplex.Make (Dls_lp.Field.Float)
module Se = Dls_lp.Simplex.Make (Dls_lp.Field.Exact)
module Mf = Dls_lp.Model.Float
module Q = Dls_num.Rat

let feps = 1e-6

let check_float = Alcotest.(check (float feps))

(* ------------------------------------------------------------------ *)
(* Known-answer float LPs                                              *)
(* ------------------------------------------------------------------ *)

let solve_f num_vars maximize rows =
  Sf.solve { Sf.num_vars; maximize; rows }

let test_textbook_max () =
  (* max 3x + 5y  s.t.  x <= 4, 2y <= 12, 3x + 2y <= 18  ->  36 at (2,6) *)
  let sol =
    solve_f 2
      [ (0, 3.0); (1, 5.0) ]
      [ { Sf.coeffs = [ (0, 1.0) ]; cmp = Sf.Le; rhs = 4.0 };
        { Sf.coeffs = [ (1, 2.0) ]; cmp = Sf.Le; rhs = 12.0 };
        { Sf.coeffs = [ (0, 3.0); (1, 2.0) ]; cmp = Sf.Le; rhs = 18.0 } ]
  in
  Alcotest.(check bool) "optimal" true (sol.Sf.status = Sf.Optimal);
  check_float "objective" 36.0 sol.Sf.objective;
  check_float "x" 2.0 sol.Sf.values.(0);
  check_float "y" 6.0 sol.Sf.values.(1)

let test_equality_constraint () =
  (* max x + y  s.t.  x + y = 5, x <= 3  ->  5 *)
  let sol =
    solve_f 2
      [ (0, 1.0); (1, 1.0) ]
      [ { Sf.coeffs = [ (0, 1.0); (1, 1.0) ]; cmp = Sf.Eq; rhs = 5.0 };
        { Sf.coeffs = [ (0, 1.0) ]; cmp = Sf.Le; rhs = 3.0 } ]
  in
  Alcotest.(check bool) "optimal" true (sol.Sf.status = Sf.Optimal);
  check_float "objective" 5.0 sol.Sf.objective

let test_ge_constraint () =
  (* max -x  s.t.  x >= 2, x <= 5  ->  -2 *)
  let sol =
    solve_f 1
      [ (0, -1.0) ]
      [ { Sf.coeffs = [ (0, 1.0) ]; cmp = Sf.Ge; rhs = 2.0 };
        { Sf.coeffs = [ (0, 1.0) ]; cmp = Sf.Le; rhs = 5.0 } ]
  in
  Alcotest.(check bool) "optimal" true (sol.Sf.status = Sf.Optimal);
  check_float "objective" (-2.0) sol.Sf.objective

let test_negative_rhs_normalization () =
  (* max -x  s.t.  -x <= -2  (x >= 2)  ->  -2 *)
  let sol =
    solve_f 1
      [ (0, -1.0) ]
      [ { Sf.coeffs = [ (0, -1.0) ]; cmp = Sf.Le; rhs = -2.0 } ]
  in
  Alcotest.(check bool) "optimal" true (sol.Sf.status = Sf.Optimal);
  check_float "objective" (-2.0) sol.Sf.objective

let test_unbounded () =
  let sol = solve_f 1 [ (0, 1.0) ] [] in
  Alcotest.(check bool) "unbounded" true (sol.Sf.status = Sf.Unbounded)

let test_unbounded_with_rows () =
  (* max y  s.t. x <= 1: y unconstrained above. *)
  let sol =
    solve_f 2 [ (1, 1.0) ] [ { Sf.coeffs = [ (0, 1.0) ]; cmp = Sf.Le; rhs = 1.0 } ]
  in
  Alcotest.(check bool) "unbounded" true (sol.Sf.status = Sf.Unbounded)

let test_infeasible () =
  let sol =
    solve_f 1 [ (0, 1.0) ]
      [ { Sf.coeffs = [ (0, 1.0) ]; cmp = Sf.Le; rhs = 1.0 };
        { Sf.coeffs = [ (0, 1.0) ]; cmp = Sf.Ge; rhs = 2.0 } ]
  in
  Alcotest.(check bool) "infeasible" true (sol.Sf.status = Sf.Infeasible)

let test_degenerate () =
  (* Beale-style degenerate corner; Dantzig + stall-triggered Bland must
     still terminate at the optimum (value 0.05). *)
  let sol =
    solve_f 4
      [ (0, 0.75); (1, -150.0); (2, 0.02); (3, -6.0) ]
      [ { Sf.coeffs = [ (0, 0.25); (1, -60.0); (2, -0.04); (3, 9.0) ]; cmp = Sf.Le; rhs = 0.0 };
        { Sf.coeffs = [ (0, 0.5); (1, -90.0); (2, -0.02); (3, 3.0) ]; cmp = Sf.Le; rhs = 0.0 };
        { Sf.coeffs = [ (2, 1.0) ]; cmp = Sf.Le; rhs = 1.0 } ]
  in
  Alcotest.(check bool) "optimal" true (sol.Sf.status = Sf.Optimal);
  check_float "objective" 0.05 sol.Sf.objective

let test_duplicate_coeffs_summed () =
  (* max x  s.t.  x + x <= 4  ->  2 *)
  let sol =
    solve_f 1 [ (0, 1.0) ]
      [ { Sf.coeffs = [ (0, 1.0); (0, 1.0) ]; cmp = Sf.Le; rhs = 4.0 } ]
  in
  check_float "objective" 2.0 sol.Sf.objective

let test_klee_minty () =
  (* Klee-Minty cube, n = 8: Dantzig's rule famously visits up to 2^n
     vertices; both engines must still reach the optimum 5^8. *)
  let n = 8 in
  let pow5 i = Float.of_int (int_of_float (5.0 ** float_of_int i)) in
  let rows =
    List.init n (fun i ->
        let i = i + 1 in
        let coeffs =
          (i - 1, 1.0)
          :: List.init (i - 1) (fun j -> (j, 2.0 *. (2.0 ** float_of_int (i - 1 - j))))
        in
        { Sf.coeffs; cmp = Sf.Le; rhs = pow5 i })
  in
  let maximize = List.init n (fun j -> (j, 2.0 ** float_of_int (n - 1 - j))) in
  let dense = solve_f n maximize rows in
  Alcotest.(check bool) "dense optimal" true (dense.Sf.status = Sf.Optimal);
  Alcotest.(check (float 1.0)) "dense value" (pow5 n) dense.Sf.objective;
  let sparse =
    Dls_lp.Revised_simplex.solve
      { Dls_lp.Revised_simplex.num_vars = n;
        maximize;
        rows =
          List.map
            (fun r ->
              { Dls_lp.Revised_simplex.coeffs = r.Sf.coeffs; rhs = r.Sf.rhs })
            rows }
  in
  Alcotest.(check bool) "sparse optimal" true
    (sparse.Dls_lp.Revised_simplex.status = Dls_lp.Revised_simplex.Optimal);
  Alcotest.(check (float 1.0)) "sparse value" (pow5 n)
    sparse.Dls_lp.Revised_simplex.objective

let test_wide_coefficient_range () =
  (* Mixed magnitudes (1e-5 .. 1e5): the optimum is still found and
     matches the exact solver. *)
  let rows_f =
    [ { Sf.coeffs = [ (0, 1e5); (1, 1.0) ]; cmp = Sf.Le; rhs = 2e5 };
      { Sf.coeffs = [ (0, 1e-5); (1, 1e-5) ]; cmp = Sf.Le; rhs = 3e-5 } ]
  in
  let sol = solve_f 2 [ (0, 1.0); (1, 1.0) ] rows_f in
  let q = Q.of_float in
  let exact =
    Se.solve
      { Se.num_vars = 2;
        maximize = [ (0, q 1.0); (1, q 1.0) ];
        rows =
          [ { Se.coeffs = [ (0, q 1e5); (1, q 1.0) ]; cmp = Se.Le; rhs = q 2e5 };
            { Se.coeffs = [ (0, q 1e-5); (1, q 1e-5) ]; cmp = Se.Le; rhs = q 3e-5 } ] }
  in
  Alcotest.(check bool) "both optimal" true
    (sol.Sf.status = Sf.Optimal && exact.Se.status = Se.Optimal);
  Alcotest.(check (float 1e-4)) "float = exact"
    (Q.to_float exact.Se.objective)
    sol.Sf.objective

let test_bad_index_rejected () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Simplex.solve: variable index 3 out of range")
    (fun () ->
      ignore
        (solve_f 2 [ (0, 1.0) ]
           [ { Sf.coeffs = [ (3, 1.0) ]; cmp = Sf.Le; rhs = 1.0 } ]))

(* ------------------------------------------------------------------ *)
(* Exact solver                                                        *)
(* ------------------------------------------------------------------ *)

let test_exact_textbook () =
  let q = Q.of_int in
  let sol =
    Se.solve
      { Se.num_vars = 2;
        maximize = [ (0, q 3); (1, q 5) ];
        rows =
          [ { Se.coeffs = [ (0, q 1) ]; cmp = Se.Le; rhs = q 4 };
            { Se.coeffs = [ (1, q 2) ]; cmp = Se.Le; rhs = q 12 };
            { Se.coeffs = [ (0, q 3); (1, q 2) ]; cmp = Se.Le; rhs = q 18 } ] }
  in
  Alcotest.(check bool) "optimal" true (sol.Se.status = Se.Optimal);
  Alcotest.(check bool) "objective exactly 36" true (Q.equal (q 36) sol.Se.objective)

let test_exact_fractional_optimum () =
  (* max x + y  s.t.  2x + y <= 3, x + 3y <= 5  ->  (4/5, 7/5), obj 11/5 *)
  let q = Q.of_int in
  let sol =
    Se.solve
      { Se.num_vars = 2;
        maximize = [ (0, q 1); (1, q 1) ];
        rows =
          [ { Se.coeffs = [ (0, q 2); (1, q 1) ]; cmp = Se.Le; rhs = q 3 };
            { Se.coeffs = [ (0, q 1); (1, q 3) ]; cmp = Se.Le; rhs = q 5 } ] }
  in
  Alcotest.(check bool) "obj 11/5" true (Q.equal (Q.of_ints 11 5) sol.Se.objective);
  Alcotest.(check bool) "x 4/5" true (Q.equal (Q.of_ints 4 5) sol.Se.values.(0));
  Alcotest.(check bool) "y 7/5" true (Q.equal (Q.of_ints 7 5) sol.Se.values.(1))

(* ------------------------------------------------------------------ *)
(* Model layer                                                         *)
(* ------------------------------------------------------------------ *)

let test_model_basic () =
  let m = Mf.create () in
  let x = Mf.add_var ~name:"x" m in
  let y = Mf.add_var ~name:"y" ~ub:6.0 m in
  Mf.add_le m [ (x, 1.0); (y, 1.0) ] 10.0;
  Mf.set_objective m [ (x, 1.0); (y, 2.0) ];
  let r = Mf.solve m in
  Alcotest.(check bool) "optimal" true (r.Mf.status = Mf.Solver.Optimal);
  check_float "objective" 16.0 r.Mf.objective;
  check_float "x" 4.0 (r.Mf.value x);
  check_float "y" 6.0 (r.Mf.value y)

let test_model_resolve_with_new_constraint () =
  let m = Mf.create () in
  let x = Mf.add_var ~name:"x" m in
  Mf.add_le m [ (x, 1.0) ] 10.0;
  Mf.set_objective m [ (x, 1.0) ];
  let r1 = Mf.solve m in
  check_float "first solve" 10.0 r1.Mf.objective;
  Mf.add_le m [ (x, 1.0) ] 4.0;
  let r2 = Mf.solve m in
  check_float "second solve" 4.0 r2.Mf.objective

let test_model_tightest_bound_wins () =
  let m = Mf.create () in
  let x = Mf.add_var ~name:"x" ~ub:9.0 m in
  Mf.set_upper_bound m x 3.0;
  Mf.set_upper_bound m x 7.0;
  Mf.set_objective m [ (x, 1.0) ];
  let r = Mf.solve m in
  check_float "bound 3 wins" 3.0 r.Mf.objective

(* ------------------------------------------------------------------ *)
(* Property: float and exact agree on random programs                  *)
(* ------------------------------------------------------------------ *)

type rand_lp = {
  nv : int;
  obj : (int * int) list;
  lrows : (int * int) list list;  (* coefficients; one row per list *)
  cmps : int list;  (* 0 = Le, 1 = Ge, 2 = Eq *)
  rhss : int list;
}

let rand_lp_gen =
  let open QCheck2.Gen in
  let* nv = int_range 1 4 in
  let* nrows = int_range 1 5 in
  let coeff = int_range (-4) 4 in
  let row = list_repeat nv (pair (int_range 0 (nv - 1)) coeff) in
  let* obj = row in
  let* lrows = list_repeat nrows row in
  let* cmps = list_repeat nrows (int_range 0 2) in
  let* rhss = list_repeat nrows (int_range 0 15) in
  return { nv; obj; lrows; cmps; rhss }

let to_float_problem r =
  let cmp_of = function 0 -> Sf.Le | 1 -> Sf.Ge | _ -> Sf.Eq in
  { Sf.num_vars = r.nv;
    maximize = List.map (fun (v, c) -> (v, float_of_int c)) r.obj;
    rows =
      List.map2
        (fun (coeffs, cmp) rhs ->
          { Sf.coeffs = List.map (fun (v, c) -> (v, float_of_int c)) coeffs;
            cmp = cmp_of cmp;
            rhs = float_of_int rhs })
        (List.combine r.lrows r.cmps)
        r.rhss }

let to_exact_problem r =
  let cmp_of = function 0 -> Se.Le | 1 -> Se.Ge | _ -> Se.Eq in
  { Se.num_vars = r.nv;
    maximize = List.map (fun (v, c) -> (v, Q.of_int c)) r.obj;
    rows =
      List.map2
        (fun (coeffs, cmp) rhs ->
          { Se.coeffs = List.map (fun (v, c) -> (v, Q.of_int c)) coeffs;
            cmp = cmp_of cmp;
            rhs = Q.of_int rhs })
        (List.combine r.lrows r.cmps)
        r.rhss }

let status_tag_f = function
  | Sf.Optimal -> 0 | Sf.Infeasible -> 1 | Sf.Unbounded -> 2 | Sf.Iteration_limit -> 3

let status_tag_e = function
  | Se.Optimal -> 0 | Se.Infeasible -> 1 | Se.Unbounded -> 2 | Se.Iteration_limit -> 3

let prop_float_matches_exact =
  QCheck2.Test.make ~name:"float simplex agrees with exact simplex" ~count:300
    rand_lp_gen (fun r ->
      let sf = Sf.solve (to_float_problem r) in
      let se = Se.solve (to_exact_problem r) in
      status_tag_f sf.Sf.status = status_tag_e se.Se.status
      && (sf.Sf.status <> Sf.Optimal
          || Float.abs (sf.Sf.objective -. Q.to_float se.Se.objective) < 1e-6))

let prop_optimal_point_is_feasible =
  QCheck2.Test.make ~name:"optimal point satisfies all constraints" ~count:300
    rand_lp_gen (fun r ->
      let p = to_float_problem r in
      let sf = Sf.solve p in
      if sf.Sf.status <> Sf.Optimal then true
      else begin
        let ok_row row =
          let lhs =
            List.fold_left
              (fun acc (v, c) -> acc +. (c *. sf.Sf.values.(v)))
              0.0 row.Sf.coeffs
          in
          match row.Sf.cmp with
          | Sf.Le -> lhs <= row.Sf.rhs +. 1e-6
          | Sf.Ge -> lhs >= row.Sf.rhs -. 1e-6
          | Sf.Eq -> Float.abs (lhs -. row.Sf.rhs) < 1e-6
        in
        List.for_all ok_row p.Sf.rows
        && Array.for_all (fun v -> v >= -1e-9) sf.Sf.values
      end)

(* ------------------------------------------------------------------ *)
(* Duals                                                               *)
(* ------------------------------------------------------------------ *)

let test_dense_duals_textbook () =
  (* max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18: the first row is
     slack at the optimum (dual 0); known duals 0, 3/2, 1. *)
  let sol =
    solve_f 2
      [ (0, 3.0); (1, 5.0) ]
      [ { Sf.coeffs = [ (0, 1.0) ]; cmp = Sf.Le; rhs = 4.0 };
        { Sf.coeffs = [ (1, 2.0) ]; cmp = Sf.Le; rhs = 12.0 };
        { Sf.coeffs = [ (0, 3.0); (1, 2.0) ]; cmp = Sf.Le; rhs = 18.0 } ]
  in
  check_float "y1" 0.0 sol.Sf.duals.(0);
  check_float "y2" 1.5 sol.Sf.duals.(1);
  check_float "y3" 1.0 sol.Sf.duals.(2)

let dual_objective_f rows (sol : Sf.solution) =
  List.fold_left ( +. ) 0.0
    (List.mapi (fun i r -> sol.Sf.duals.(i) *. r.Sf.rhs) rows)

let prop_exact_strong_duality =
  (* Strong duality over the exact rational field: primal and dual
     objectives are EQUAL, not merely close. *)
  QCheck2.Test.make ~name:"exact engine satisfies strong duality exactly" ~count:150
    rand_lp_gen (fun r ->
      let p = to_exact_problem r in
      let sol = Se.solve p in
      sol.Se.status <> Se.Optimal
      || begin
        let dual_obj =
          List.fold_left
            (fun acc (i, row) -> Q.add acc (Q.mul sol.Se.duals.(i) row.Se.rhs))
            Q.zero
            (List.mapi (fun i row -> (i, row)) p.Se.rows)
        in
        Q.equal dual_obj sol.Se.objective
      end)

let prop_dense_strong_duality =
  QCheck2.Test.make ~name:"dense engine satisfies strong duality" ~count:300
    rand_lp_gen (fun r ->
      let p = to_float_problem r in
      let sol = Sf.solve p in
      sol.Sf.status <> Sf.Optimal
      || Float.abs (dual_objective_f p.Sf.rows sol -. sol.Sf.objective) < 1e-5)

let prop_dense_dual_signs =
  QCheck2.Test.make ~name:"dense duals have the right signs" ~count:300 rand_lp_gen
    (fun r ->
      let p = to_float_problem r in
      let sol = Sf.solve p in
      sol.Sf.status <> Sf.Optimal
      || List.for_all2
           (fun row d ->
             match row.Sf.cmp with
             | Sf.Le -> d >= -1e-7
             | Sf.Ge -> d <= 1e-7
             | Sf.Eq -> true)
           p.Sf.rows
           (Array.to_list sol.Sf.duals))

(* ------------------------------------------------------------------ *)
(* Sparse revised simplex                                              *)
(* ------------------------------------------------------------------ *)

module Rs = Dls_lp.Revised_simplex
module Obs = Dls_obs.Metrics

(* Run [f] with the metrics registry on and freshly zeroed, then return
   the named solver counters from the final snapshot.  The registry is
   global, so each reader scopes its own window — PR-1's per-state
   counter assertions live here now, reading the cross-state registry
   totals instead of the state record. *)
let with_registry f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let registry_counter name =
  match List.assoc_opt name (Obs.snapshot ()) with
  | Some (Obs.Counter n) -> n
  | Some _ -> Alcotest.failf "metric %s is not a counter" name
  | None -> Alcotest.failf "metric %s not registered" name

let registry_hist name =
  match List.assoc_opt name (Obs.snapshot ()) with
  | Some (Obs.Histogram h) -> h
  | _ -> Alcotest.failf "metric %s is not a histogram" name

let test_revised_textbook () =
  let sol =
    Rs.solve
      { Rs.num_vars = 2;
        maximize = [ (0, 3.0); (1, 5.0) ];
        rows =
          [ { Rs.coeffs = [ (0, 1.0) ]; rhs = 4.0 };
            { Rs.coeffs = [ (1, 2.0) ]; rhs = 12.0 };
            { Rs.coeffs = [ (0, 3.0); (1, 2.0) ]; rhs = 18.0 } ] }
  in
  Alcotest.(check bool) "optimal" true (sol.Rs.status = Rs.Optimal);
  check_float "objective" 36.0 sol.Rs.objective;
  check_float "x" 2.0 sol.Rs.values.(0);
  check_float "y" 6.0 sol.Rs.values.(1)

let test_revised_unbounded () =
  let sol = Rs.solve { Rs.num_vars = 1; maximize = [ (0, 1.0) ]; rows = [] } in
  Alcotest.(check bool) "unbounded" true (sol.Rs.status = Rs.Unbounded)

let test_revised_rejects_negative_rhs () =
  Alcotest.check_raises "negative rhs"
    (Invalid_argument "Revised_simplex.solve: negative right-hand side") (fun () ->
      ignore
        (Rs.solve
           { Rs.num_vars = 1;
             maximize = [ (0, 1.0) ];
             rows = [ { Rs.coeffs = [ (0, 1.0) ]; rhs = -1.0 } ] }))

let test_revised_many_pivots_refactor () =
  (* More pivots than the refactorization interval: a long chain of
     coupled rows forces enough iterations to cross it at least once. *)
  let n = 180 in
  let rows =
    List.init n (fun i ->
        { Rs.coeffs = ((i, 1.0) :: if i > 0 then [ (i - 1, 0.5) ] else []);
          rhs = 10.0 })
  in
  let sol =
    Rs.solve
      { Rs.num_vars = n; maximize = List.init n (fun i -> (i, 1.0)); rows }
  in
  Alcotest.(check bool) "optimal" true (sol.Rs.status = Rs.Optimal);
  (* Compare against the dense engine on the identical program. *)
  let dense =
    solve_f n
      (List.init n (fun i -> (i, 1.0)))
      (List.map (fun (r : Rs.constr) -> { Sf.coeffs = r.Rs.coeffs; cmp = Sf.Le; rhs = r.Rs.rhs }) rows)
  in
  check_float "matches dense" dense.Sf.objective sol.Rs.objective

let test_revised_pivot_limit () =
  (* A tiny pivot budget on an LP that needs several iterations: the
     solver must stop with a termination status instead of spinning —
     Iteration_limit when the objective was still moving, Cycling when
     the stall detector had already switched to Bland's rule. *)
  let n = 40 in
  let rows =
    List.init n (fun i ->
        { Rs.coeffs = ((i, 1.0) :: if i > 0 then [ (i - 1, 0.5) ] else []);
          rhs = 10.0 })
  in
  let p = { Rs.num_vars = n; maximize = List.init n (fun i -> (i, 1.0)); rows } in
  let sol = Rs.solve ~max_iterations:3 p in
  Alcotest.(check bool) "budget respected" true (sol.Rs.iterations <= 3);
  Alcotest.(check bool) "terminates non-optimal" true
    (match sol.Rs.status with
     | Rs.Iteration_limit | Rs.Cycling -> true
     | Rs.Optimal | Rs.Unbounded -> false);
  (* The same LP with the default budget still reaches the optimum. *)
  Alcotest.(check bool) "full budget optimal" true
    ((Rs.solve p).Rs.status = Rs.Optimal)

let test_revised_budget_boundary () =
  (* Pinned regression for the budget/optimality off-by-one found while
     wiring the sparse backend: the budget used to be checked before
     pricing, so a solve that reached the optimum in exactly [budget]
     pivots was misreported as Iteration_limit.  Optimality proved at
     the boundary must win. *)
  let n = 20 in
  let rows =
    List.init n (fun i ->
        { Rs.coeffs = ((i, 1.0) :: if i > 0 then [ (i - 1, 0.5) ] else []);
          rhs = 10.0 })
  in
  let p = { Rs.num_vars = n; maximize = List.init n (fun i -> (i, 1.0)); rows } in
  let full = Rs.solve p in
  Alcotest.(check bool) "reference optimal" true (full.Rs.status = Rs.Optimal);
  Alcotest.(check bool) "needs pivots" true (full.Rs.iterations > 0);
  let exact = Rs.solve ~max_iterations:full.Rs.iterations p in
  Alcotest.(check bool) "exact budget is optimal" true
    (exact.Rs.status = Rs.Optimal);
  Alcotest.(check int) "same pivot count" full.Rs.iterations
    exact.Rs.iterations;
  let short = Rs.solve ~max_iterations:(full.Rs.iterations - 1) p in
  Alcotest.(check bool) "one pivot short is not optimal" true
    (match short.Rs.status with
     | Rs.Iteration_limit | Rs.Cycling -> true
     | Rs.Optimal | Rs.Unbounded -> false)

let test_revised_bland_counter () =
  (* A clean non-degenerate solve never needs the anti-cycling rule. *)
  let st =
    Rs.create
      { Rs.num_vars = 2;
        maximize = [ (0, 3.0); (1, 5.0) ];
        rows =
          [ { Rs.coeffs = [ (0, 1.0) ]; rhs = 4.0 };
            { Rs.coeffs = [ (1, 2.0) ]; rhs = 12.0 };
            { Rs.coeffs = [ (0, 3.0); (1, 2.0) ]; rhs = 18.0 } ] }
  in
  with_registry (fun () ->
      ignore (Rs.solve_state st);
      Alcotest.(check int) "no bland switches" 0
        (registry_counter "lp.bland_activations"))

(* Random packed-form LPs (all <=, rhs >= 0): both engines must agree. *)
let packed_lp_gen =
  let open QCheck2.Gen in
  let* nv = int_range 1 6 in
  let* nrows = int_range 1 8 in
  let coeff = int_range 0 5 in
  let row =
    let* terms = list_size (int_range 1 nv) (pair (int_range 0 (nv - 1)) coeff) in
    let* rhs = int_range 0 20 in
    return (terms, rhs)
  in
  let* obj = list_repeat nv (pair (int_range 0 (nv - 1)) (int_range (-3) 5)) in
  let* rows = list_repeat nrows row in
  return (nv, obj, rows)

let prop_revised_matches_dense =
  QCheck2.Test.make ~name:"sparse and dense engines agree on packed LPs" ~count:300
    packed_lp_gen (fun (nv, obj, rows) ->
      let objf = List.map (fun (v, c) -> (v, float_of_int c)) obj in
      let rowsf =
        List.map
          (fun (terms, rhs) ->
            ( List.map (fun (v, c) -> (v, float_of_int c)) terms,
              float_of_int rhs ))
          rows
      in
      let sparse =
        Rs.solve
          { Rs.num_vars = nv;
            maximize = objf;
            rows = List.map (fun (coeffs, rhs) -> { Rs.coeffs; rhs }) rowsf }
      in
      let dense =
        solve_f nv objf
          (List.map
             (fun (coeffs, rhs) -> { Sf.coeffs; cmp = Sf.Le; rhs })
             rowsf)
      in
      match (sparse.Rs.status, dense.Sf.status) with
      | Rs.Optimal, Sf.Optimal ->
        Float.abs (sparse.Rs.objective -. dense.Sf.objective) < 1e-6
      | Rs.Unbounded, Sf.Unbounded -> true
      | _ -> false)

let prop_revised_solution_feasible =
  QCheck2.Test.make ~name:"sparse engine solutions satisfy all rows" ~count:300
    packed_lp_gen (fun (nv, obj, rows) ->
      let objf = List.map (fun (v, c) -> (v, float_of_int c)) obj in
      let rowsf =
        List.map
          (fun (terms, rhs) ->
            { Rs.coeffs = List.map (fun (v, c) -> (v, float_of_int c)) terms;
              rhs = float_of_int rhs })
          rows
      in
      let sol = Rs.solve { Rs.num_vars = nv; maximize = objf; rows = rowsf } in
      sol.Rs.status <> Rs.Optimal
      || (Array.for_all (fun v -> v >= -1e-7) sol.Rs.values
          && List.for_all
               (fun r ->
                 let lhs =
                   List.fold_left
                     (fun acc (v, c) -> acc +. (c *. sol.Rs.values.(v)))
                     0.0 r.Rs.coeffs
                 in
                 lhs <= r.Rs.rhs +. 1e-6)
               rowsf))

let prop_revised_strong_duality =
  QCheck2.Test.make ~name:"sparse engine satisfies strong duality" ~count:300
    packed_lp_gen (fun (nv, obj, rows) ->
      let objf = List.map (fun (v, c) -> (v, float_of_int c)) obj in
      let rowsf =
        List.map
          (fun (terms, rhs) ->
            { Dls_lp.Revised_simplex.coeffs =
                List.map (fun (v, c) -> (v, float_of_int c)) terms;
              rhs = float_of_int rhs })
          rows
      in
      let sol =
        Dls_lp.Revised_simplex.solve
          { Dls_lp.Revised_simplex.num_vars = nv; maximize = objf; rows = rowsf }
      in
      sol.Dls_lp.Revised_simplex.status <> Dls_lp.Revised_simplex.Optimal
      || begin
        let dual_obj =
          List.fold_left ( +. ) 0.0
            (List.mapi
               (fun i (r : Dls_lp.Revised_simplex.constr) ->
                 sol.Dls_lp.Revised_simplex.duals.(i) *. r.Dls_lp.Revised_simplex.rhs)
               rowsf)
        in
        Float.abs (dual_obj -. sol.Dls_lp.Revised_simplex.objective) < 1e-5
        && Array.for_all (fun d -> d >= -1e-7) sol.Dls_lp.Revised_simplex.duals
      end)

(* ------------------------------------------------------------------ *)
(* Resumable solves (warm starts)                                      *)
(* ------------------------------------------------------------------ *)

let textbook_rows rhs1 rhs2 rhs3 =
  [ { Rs.coeffs = [ (0, 1.0) ]; rhs = rhs1 };
    { Rs.coeffs = [ (1, 2.0) ]; rhs = rhs2 };
    { Rs.coeffs = [ (0, 3.0); (1, 2.0) ]; rhs = rhs3 } ]

let textbook_problem rhs1 rhs2 rhs3 =
  { Rs.num_vars = 2;
    maximize = [ (0, 3.0); (1, 5.0) ];
    rows = textbook_rows rhs1 rhs2 rhs3 }

let test_warm_relax_nonbinding () =
  (* Relaxing a row that is slack at the optimum keeps the carried
     basis primal-feasible: the re-solve must be a warm start and reach
     the same optimum. *)
  with_registry @@ fun () ->
  let st = Rs.create (textbook_problem 4.0 12.0 18.0) in
  let s1 = Rs.solve_state st in
  check_float "first solve" 36.0 s1.Rs.objective;
  check_float "rhs read-back" 4.0 (Rs.rhs st ~row:0);
  Rs.set_rhs st ~row:0 5.0;
  let s2 = Rs.solve_state st in
  check_float "re-solve" 36.0 s2.Rs.objective;
  Alcotest.(check int) "solves" 2 (registry_counter "lp.solves");
  Alcotest.(check int) "cold starts" 1 (registry_counter "lp.cold_starts");
  Alcotest.(check int) "warm starts" 1 (registry_counter "lp.warm_starts");
  let seconds = registry_hist "lp.solve_seconds" in
  Alcotest.(check int) "both solves timed" 2 seconds.Obs.hs_count;
  Alcotest.(check bool) "wall clock advances" true (seconds.Obs.hs_sum > 0.0)

let test_warm_tighten_rhs () =
  (* Tightening may invalidate the carried basis (automatic cold
     fallback) — either way the optimum must match a from-scratch
     solve of the updated program. *)
  with_registry @@ fun () ->
  let st = Rs.create (textbook_problem 4.0 12.0 18.0) in
  ignore (Rs.solve_state st);
  Rs.set_rhs st ~row:1 6.0;
  let s2 = Rs.solve_state st in
  (* Two state solves so far; the from-scratch control below adds a
     third, so read the registry window here. *)
  Alcotest.(check int) "solves" 2 (registry_counter "lp.solves");
  Alcotest.(check int) "every solve tagged" 2
    (registry_counter "lp.warm_starts" + registry_counter "lp.cold_starts");
  let cold = Rs.solve (textbook_problem 4.0 6.0 18.0) in
  check_float "warm matches cold" cold.Rs.objective s2.Rs.objective;
  check_float "objective" 27.0 s2.Rs.objective;
  Alcotest.(check int) "control solve also counted" 3
    (registry_counter "lp.solves")

let test_warm_zero_coeff () =
  let st = Rs.create (textbook_problem 4.0 12.0 18.0) in
  ignore (Rs.solve_state st);
  (* Drop x from the third row: rows become x <= 4, 2y <= 12, 2y <= 18. *)
  Rs.zero_coeff st ~row:2 ~var:0;
  let s2 = Rs.solve_state st in
  let cold =
    Rs.solve
      { Rs.num_vars = 2;
        maximize = [ (0, 3.0); (1, 5.0) ];
        rows =
          [ { Rs.coeffs = [ (0, 1.0) ]; rhs = 4.0 };
            { Rs.coeffs = [ (1, 2.0) ]; rhs = 12.0 };
            { Rs.coeffs = [ (1, 2.0) ]; rhs = 18.0 } ] }
  in
  check_float "matches rebuilt LP" cold.Rs.objective s2.Rs.objective;
  check_float "objective" 42.0 s2.Rs.objective

let test_registry_reset_between_warm_resolves () =
  (* Backfilled edge case: a registry reset between the cold solve and
     the warm re-solve leaves a clean per-solve window — the second
     window sees exactly one solve, tagged warm — and must not disturb
     the state's own cumulative counters, which the campaign codec
     records. *)
  with_registry @@ fun () ->
  let st = Rs.create (textbook_problem 4.0 12.0 18.0) in
  ignore (Rs.solve_state st);
  Alcotest.(check int) "window 1: one cold solve" 1
    (registry_counter "lp.cold_starts");
  Obs.reset ();
  Alcotest.(check int) "reset zeroes solves" 0 (registry_counter "lp.solves");
  Alcotest.(check int) "reset empties the timing histogram" 0
    (registry_hist "lp.solve_seconds").Obs.hs_count;
  Rs.set_rhs st ~row:0 5.0;
  ignore (Rs.solve_state st);
  Alcotest.(check int) "window 2: one solve" 1 (registry_counter "lp.solves");
  Alcotest.(check int) "window 2: warm" 1 (registry_counter "lp.warm_starts");
  Alcotest.(check int) "window 2: no cold" 0
    (registry_counter "lp.cold_starts");
  Alcotest.(check int) "window 2: one timed solve" 1
    (registry_hist "lp.solve_seconds").Obs.hs_count;
  let c = Rs.counters st in
  Alcotest.(check int) "state record unaffected: solves" 2 c.Rs.solves;
  Alcotest.(check int) "state record unaffected: warm" 1 c.Rs.warm_starts;
  Alcotest.(check int) "state record unaffected: cold" 1 c.Rs.cold_starts

let test_state_update_validation () =
  let st = Rs.create (textbook_problem 4.0 12.0 18.0) in
  Alcotest.check_raises "negative rhs"
    (Invalid_argument "Revised_simplex.set_rhs: negative right-hand side")
    (fun () -> Rs.set_rhs st ~row:0 (-1.0));
  Alcotest.check_raises "row out of range"
    (Invalid_argument "Revised_simplex.set_rhs: row out of range") (fun () ->
      Rs.set_rhs st ~row:3 1.0);
  Alcotest.check_raises "var out of range"
    (Invalid_argument "Revised_simplex.zero_coeff: variable out of range")
    (fun () -> Rs.zero_coeff st ~row:0 ~var:2)

let test_model_incremental_handle () =
  with_registry @@ fun () ->
  let m = Mf.create () in
  let x = Mf.add_var ~name:"x" m in
  let y = Mf.add_var ~name:"y" m in
  Mf.add_le m [ (x, 1.0) ] 4.0;
  Mf.add_le m [ (y, 2.0) ] 12.0;
  Mf.add_le m [ (x, 3.0); (y, 2.0) ] 18.0;
  Mf.set_objective m [ (x, 3.0); (y, 5.0) ];
  let h = Mf.incremental m in
  let r1 = Mf.inc_solve h in
  Alcotest.(check bool) "optimal" true (r1.Mf.status = Mf.Solver.Optimal);
  check_float "first objective" 36.0 r1.Mf.objective;
  Mf.inc_set_rhs h ~row:1 6.0;
  check_float "rhs read-back" 6.0 (Mf.inc_rhs h ~row:1);
  let r2 = Mf.inc_solve h in
  check_float "tightened objective" 27.0 r2.Mf.objective;
  check_float "x" 4.0 (r2.Mf.value x);
  check_float "y" 3.0 (r2.Mf.value y);
  Mf.inc_zero_coeff h ~row:2 x;
  let r3 = Mf.inc_solve h in
  check_float "zeroed objective" 27.0 r3.Mf.objective;
  Alcotest.(check int) "solves counted" 3 (registry_counter "lp.solves")

let test_model_incremental_both_backends () =
  (* The same incremental script through each revised-simplex core:
     identical optima, and each core feeds the shared lp.* registry
     cells (the sparse one additionally counts factorizations). *)
  List.iter
    (fun backend ->
      with_registry @@ fun () ->
      let m = Mf.create () in
      let x = Mf.add_var ~name:"x" m in
      let y = Mf.add_var ~name:"y" m in
      Mf.add_le m [ (x, 1.0) ] 4.0;
      Mf.add_le m [ (y, 2.0) ] 12.0;
      Mf.add_le m [ (x, 3.0); (y, 2.0) ] 18.0;
      Mf.set_objective m [ (x, 3.0); (y, 5.0) ];
      let h = Mf.incremental ~backend m in
      let tag = Dls_lp.Backend.to_string backend in
      let r1 = Mf.inc_solve h in
      check_float (tag ^ ": first objective") 36.0 r1.Mf.objective;
      Mf.inc_set_rhs h ~row:1 6.0;
      let r2 = Mf.inc_solve h in
      check_float (tag ^ ": tightened objective") 27.0 r2.Mf.objective;
      Alcotest.(check int) (tag ^ ": solves") 2 (registry_counter "lp.solves");
      Alcotest.(check int)
        (tag ^ ": every solve tagged")
        2
        (registry_counter "lp.warm_starts" + registry_counter "lp.cold_starts");
      let c = Mf.inc_counters h in
      Alcotest.(check int) (tag ^ ": state solves") 2 c.Rs.solves;
      if backend = Dls_lp.Backend.Sparse then
        Alcotest.(check bool)
          (tag ^ ": refactors counted")
          true
          (registry_counter "lp.factor.refactors" > 0))
    [ Dls_lp.Backend.Dense; Dls_lp.Backend.Sparse ]

let prop_warm_matches_cold_after_tightening =
  (* The tentpole's correctness property in miniature: solve, scale
     every rhs down, re-solve the same state — the warm (or fallen-back)
     result must equal a from-scratch solve of the updated program. *)
  let gen =
    let open QCheck2.Gen in
    let* lp = packed_lp_gen in
    let* nums = list_repeat 8 (int_range 0 10) in
    return (lp, nums)
  in
  QCheck2.Test.make
    ~name:"warm re-solve equals cold solve after rhs tightening" ~count:300 gen
    (fun ((nv, obj, rows), nums) ->
      let objf = List.map (fun (v, c) -> (v, float_of_int c)) obj in
      let scale i rhs =
        float_of_int rhs *. (float_of_int (List.nth nums (i mod 8)) /. 10.0)
      in
      let rowsf =
        List.map
          (fun (terms, rhs) ->
            { Rs.coeffs = List.map (fun (v, c) -> (v, float_of_int c)) terms;
              rhs = float_of_int rhs })
          rows
      in
      let st = Rs.create { Rs.num_vars = nv; maximize = objf; rows = rowsf } in
      ignore (Rs.solve_state st);
      List.iteri (fun i (_, rhs) -> Rs.set_rhs st ~row:i (scale i rhs)) rows;
      let warm = Rs.solve_state st in
      let cold =
        Rs.solve
          { Rs.num_vars = nv;
            maximize = objf;
            rows =
              List.mapi
                (fun i r -> { r with Rs.rhs = scale i (int_of_float r.Rs.rhs) })
                rowsf }
      in
      match (warm.Rs.status, cold.Rs.status) with
      | Rs.Optimal, Rs.Optimal ->
        Float.abs (warm.Rs.objective -. cold.Rs.objective) < 1e-6
      | Rs.Unbounded, Rs.Unbounded -> true
      | _ -> false)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dls_lp"
    [ ( "simplex-float",
        [ Alcotest.test_case "textbook max" `Quick test_textbook_max;
          Alcotest.test_case "equality row" `Quick test_equality_constraint;
          Alcotest.test_case "ge row" `Quick test_ge_constraint;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs_normalization;
          Alcotest.test_case "unbounded (no rows)" `Quick test_unbounded;
          Alcotest.test_case "unbounded (rows)" `Quick test_unbounded_with_rows;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          Alcotest.test_case "klee-minty" `Quick test_klee_minty;
          Alcotest.test_case "wide coefficient range" `Quick test_wide_coefficient_range;
          Alcotest.test_case "duplicate coeffs" `Quick test_duplicate_coeffs_summed;
          Alcotest.test_case "bad index" `Quick test_bad_index_rejected ] );
      ( "simplex-exact",
        [ Alcotest.test_case "textbook exact" `Quick test_exact_textbook;
          Alcotest.test_case "fractional optimum" `Quick test_exact_fractional_optimum ] );
      ( "model",
        [ Alcotest.test_case "basic" `Quick test_model_basic;
          Alcotest.test_case "incremental resolve" `Quick test_model_resolve_with_new_constraint;
          Alcotest.test_case "tightest bound" `Quick test_model_tightest_bound_wins ] );
      ( "revised-simplex",
        [ Alcotest.test_case "textbook" `Quick test_revised_textbook;
          Alcotest.test_case "unbounded" `Quick test_revised_unbounded;
          Alcotest.test_case "negative rhs rejected" `Quick
            test_revised_rejects_negative_rhs;
          Alcotest.test_case "refactorization path" `Quick
            test_revised_many_pivots_refactor;
          Alcotest.test_case "pivot limit terminates" `Quick
            test_revised_pivot_limit;
          Alcotest.test_case "budget boundary is optimal" `Quick
            test_revised_budget_boundary;
          Alcotest.test_case "bland counter stays zero" `Quick
            test_revised_bland_counter ] );
      ( "warm-start",
        [ Alcotest.test_case "relax non-binding row" `Quick
            test_warm_relax_nonbinding;
          Alcotest.test_case "tighten rhs" `Quick test_warm_tighten_rhs;
          Alcotest.test_case "zero coefficient" `Quick test_warm_zero_coeff;
          Alcotest.test_case "registry reset between warm re-solves" `Quick
            test_registry_reset_between_warm_resolves;
          Alcotest.test_case "update validation" `Quick
            test_state_update_validation;
          Alcotest.test_case "model incremental handle" `Quick
            test_model_incremental_handle;
          Alcotest.test_case "model incremental, both backends" `Quick
            test_model_incremental_both_backends ] );
      ( "duals",
        [ Alcotest.test_case "textbook duals" `Quick test_dense_duals_textbook ] );
      qsuite "simplex-prop"
        [ prop_float_matches_exact; prop_optimal_point_is_feasible;
          prop_revised_matches_dense; prop_revised_solution_feasible;
          prop_dense_strong_duality; prop_dense_dual_signs;
          prop_exact_strong_duality; prop_revised_strong_duality;
          prop_warm_matches_cold_after_tightening ] ]
