(* Tests for Dls_util: PRNG determinism and distribution sanity, plus
   the descriptive-statistics helpers. *)

module Prng = Dls_util.Prng
module Stats = Dls_util.Stats

let feps = 1e-9

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different streams" true (Prng.bits64 a <> Prng.bits64 b)

let test_prng_copy_independent () =
  let a = Prng.create ~seed:3 in
  let b = Prng.copy a in
  let va = Prng.bits64 a in
  let vb = Prng.bits64 b in
  Alcotest.(check int64) "copy starts at same point" va vb;
  ignore (Prng.bits64 a);
  ignore (Prng.bits64 a);
  Alcotest.(check bool) "advancing a does not advance b" true
    (Prng.bits64 b <> Prng.bits64 a)

let test_prng_split_diverges () =
  let a = Prng.create ~seed:4 in
  let c = Prng.split a in
  Alcotest.(check bool) "split stream differs" true (Prng.bits64 c <> Prng.bits64 a)

let test_prng_int_range () =
  let rng = Prng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng ~lo:(-3) ~hi:7 in
    if v < -3 || v > 7 then Alcotest.failf "out of range: %d" v
  done;
  Alcotest.check_raises "lo > hi" (Invalid_argument "Prng.int: lo > hi") (fun () ->
      ignore (Prng.int rng ~lo:1 ~hi:0))

let test_prng_int_covers_range () =
  let rng = Prng.create ~seed:6 in
  let seen = Array.make 4 false in
  for _ = 1 to 1000 do
    seen.(Prng.int rng ~lo:0 ~hi:3) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_prng_float_range () =
  let rng = Prng.create ~seed:8 in
  for _ = 1 to 10_000 do
    let v = Prng.float rng ~lo:2.0 ~hi:5.0 in
    if v < 2.0 || v >= 5.0 then Alcotest.failf "out of range: %f" v
  done

let test_prng_bool_bias () =
  let rng = Prng.create ~seed:9 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Prng.bool rng ~p:0.25 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "frequency ~ 0.25" true (Float.abs (freq -. 0.25) < 0.02)

let test_prng_mean_uniform () =
  let rng = Prng.create ~seed:10 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.float rng ~lo:0.0 ~hi:1.0
  done;
  Alcotest.(check bool) "mean ~ 0.5" true
    (Float.abs ((!acc /. float_of_int n) -. 0.5) < 0.01)

let test_prng_shuffle_permutation () =
  let rng = Prng.create ~seed:11 in
  let a = Array.init 20 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_prng_pick () =
  let rng = Prng.create ~seed:12 in
  Alcotest.(check int) "singleton" 42 (Prng.pick rng [| 42 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty array") (fun () ->
      ignore (Prng.pick rng [||]))

let test_prng_derive_deterministic () =
  let a = Prng.derive ~seed:9 ~index:1234 in
  let b = Prng.derive ~seed:9 ~index:1234 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_derive_independent () =
  (* Different indices (and different seeds) give different streams, and
     deriving is order-free: stream 7 is the same whether or not other
     indices were derived first. *)
  let s0 = Prng.bits64 (Prng.derive ~seed:1 ~index:0) in
  let s1 = Prng.bits64 (Prng.derive ~seed:1 ~index:1) in
  let other_seed = Prng.bits64 (Prng.derive ~seed:2 ~index:0) in
  Alcotest.(check bool) "indices differ" true (s0 <> s1);
  Alcotest.(check bool) "seeds differ" true (s0 <> other_seed);
  let direct = Prng.bits64 (Prng.derive ~seed:1 ~index:7) in
  List.iter (fun i -> ignore (Prng.derive ~seed:1 ~index:i)) [ 0; 3; 5 ];
  Alcotest.(check int64) "order-free" direct
    (Prng.bits64 (Prng.derive ~seed:1 ~index:7));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Prng.derive: negative index") (fun () ->
      ignore (Prng.derive ~seed:1 ~index:(-1)))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_mean_stddev () =
  Alcotest.(check (float feps)) "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.(check (float feps)) "mean empty" 0.0 (Stats.mean [||]);
  (* Sample standard deviation (Bessel's correction): SS = 5, n - 1 = 3. *)
  Alcotest.(check (float 1e-9)) "stddev" (sqrt (5.0 /. 3.0))
    (Stats.stddev [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.(check (float feps)) "stddev singleton" 0.0 (Stats.stddev [| 5.0 |])

let test_stats_stddev_pinned () =
  (* Hand-computed references: mean 5, SS = 32, sample variance 32/7. *)
  Alcotest.(check (float 1e-12)) "textbook sample"
    (sqrt (32.0 /. 7.0))
    (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |]);
  (* Pair {a, b}: sample stddev is |a - b| / sqrt 2. *)
  Alcotest.(check (float 1e-12)) "pair" (3.0 /. sqrt 2.0)
    (Stats.stddev [| 1.0; 4.0 |]);
  Alcotest.(check (float feps)) "constant series" 0.0
    (Stats.stddev [| 6.0; 6.0; 6.0; 6.0 |]);
  (* Translation invariance at an awkward magnitude. *)
  Alcotest.(check (float 1e-6)) "shift invariant"
    (Stats.stddev [| 1.0; 2.0; 3.0; 4.0 |])
    (Stats.stddev [| 1.0e6 +. 1.0; 1.0e6 +. 2.0; 1.0e6 +. 3.0; 1.0e6 +. 4.0 |]);
  Alcotest.(check bool) "NaN element propagates" true
    (Float.is_nan (Stats.stddev [| 1.0; Float.nan; 3.0 |]))

let test_stats_percentile_pinned () =
  (* Linear interpolation between closest ranks on [|1..5|]:
     rank(p) = p/100 * 4. *)
  let a = [| 5.0; 3.0; 1.0; 4.0; 2.0 |] in
  Alcotest.(check (float 1e-12)) "p25 exact rank" 2.0 (Stats.percentile a ~p:25.0);
  Alcotest.(check (float 1e-12)) "p10 interpolates" 1.4 (Stats.percentile a ~p:10.0);
  Alcotest.(check (float 1e-12)) "p90 interpolates" 4.6 (Stats.percentile a ~p:90.0);
  Alcotest.(check (float 1e-12)) "p50 median" 3.0 (Stats.percentile a ~p:50.0);
  (* NaNs sort first (Float.compare), so they occupy the low ranks and
     high percentiles stay finite. *)
  let with_nan = [| 5.0; Float.nan; 1.0; 4.0 |] in
  Alcotest.(check (float 1e-12)) "p100 ignores the NaN rank" 5.0
    (Stats.percentile with_nan ~p:100.0);
  Alcotest.(check bool) "p0 lands on the NaN" true
    (Float.is_nan (Stats.percentile with_nan ~p:0.0))

let test_stats_median_percentile () =
  Alcotest.(check (float feps)) "odd median" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  Alcotest.(check (float feps)) "even median" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float feps)) "p0" 1.0 (Stats.percentile [| 3.0; 1.0; 2.0 |] ~p:0.0);
  Alcotest.(check (float feps)) "p100" 3.0 (Stats.percentile [| 3.0; 1.0; 2.0 |] ~p:100.0);
  Alcotest.(check (float feps)) "p50 = median" 2.0
    (Stats.percentile [| 3.0; 1.0; 2.0 |] ~p:50.0)

let test_stats_percentile_clamped () =
  (* p outside [0, 100] clamps to the edges instead of indexing out of
     bounds. *)
  let a = [| 3.0; 1.0; 2.0 |] in
  Alcotest.(check (float feps)) "p < 0 -> minimum" 1.0
    (Stats.percentile a ~p:(-5.0));
  Alcotest.(check (float feps)) "p > 100 -> maximum" 3.0
    (Stats.percentile a ~p:150.0);
  Alcotest.(check (float feps)) "p = -infinity -> minimum" 1.0
    (Stats.percentile a ~p:Float.neg_infinity);
  Alcotest.check_raises "NaN p rejected"
    (Invalid_argument "Stats.percentile: p is NaN") (fun () ->
      ignore (Stats.percentile a ~p:Float.nan))

let test_stats_nan_ordering () =
  (* Float.compare sorts NaNs first, so order statistics on
     NaN-containing series are deterministic (NaNs take the low ranks). *)
  let a = [| 2.0; Float.nan; 1.0 |] in
  Alcotest.(check (float feps)) "median skips past the NaN" 1.0
    (Stats.median a);
  Alcotest.(check (float feps)) "p100 is the true maximum" 2.0
    (Stats.percentile a ~p:100.0);
  Alcotest.(check bool) "p0 is the NaN" true
    (Float.is_nan (Stats.percentile a ~p:0.0))

let test_stats_geomean_edge_cases () =
  Alcotest.(check (float feps)) "zero element -> 0" 0.0
    (Stats.geometric_mean [| 1.0; 0.0; 4.0 |]);
  Alcotest.(check (float feps)) "empty -> 0" 0.0 (Stats.geometric_mean [||]);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Stats.geometric_mean: negative or NaN input") (fun () ->
      ignore (Stats.geometric_mean [| 1.0; -2.0 |]));
  Alcotest.check_raises "NaN rejected"
    (Invalid_argument "Stats.geometric_mean: negative or NaN input") (fun () ->
      ignore (Stats.geometric_mean [| 1.0; Float.nan |]))

let test_stats_min_max_geomean () =
  Alcotest.(check (pair (float feps) (float feps))) "min max" (1.0, 9.0)
    (Stats.min_max [| 3.0; 9.0; 1.0 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.min_max: empty array")
    (fun () -> ignore (Stats.min_max [||]));
  Alcotest.(check (float 1e-9)) "geometric mean" 2.0
    (Stats.geometric_mean [| 1.0; 2.0; 4.0 |])

let prop_median_between_min_max =
  QCheck2.Test.make ~name:"median lies between min and max" ~count:200
    QCheck2.Gen.(array_size (int_range 1 20) (float_range (-100.0) 100.0))
    (fun a ->
      let mn, mx = Stats.min_max a in
      let med = Stats.median a in
      mn -. 1e-9 <= med && med <= mx +. 1e-9)

let prop_stddev_nonneg =
  QCheck2.Test.make ~name:"stddev non-negative" ~count:200
    QCheck2.Gen.(array_size (int_range 0 20) (float_range (-50.0) 50.0))
    (fun a -> Stats.stddev a >= 0.0)

(* ------------------------------------------------------------------ *)
(* Parallel                                                            *)
(* ------------------------------------------------------------------ *)

module Par = Dls_util.Parallel

let test_parallel_preserves_order () =
  let inputs = Array.init 100 Fun.id in
  let doubled = Par.map (fun x -> 2 * x) inputs in
  Alcotest.(check (array int)) "order kept" (Array.init 100 (fun i -> 2 * i)) doubled

let test_parallel_matches_sequential () =
  let inputs = Array.init 50 (fun i -> i * 7) in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int)) "same as domains:1"
    (Par.map ~domains:1 f inputs)
    (Par.map ~domains:4 f inputs)

let test_parallel_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Par.map (fun x -> x) [||]);
  Alcotest.(check (array int)) "singleton" [| 9 |] (Par.map (fun x -> x + 4) [| 5 |])

let test_parallel_propagates_exception () =
  Alcotest.check_raises "worker exception" (Failure "boom") (fun () ->
      ignore
        (Par.map ~domains:3
           (fun x -> if x = 17 then failwith "boom" else x)
           (Array.init 40 Fun.id)))

let test_parallel_map_list () =
  Alcotest.(check (list int)) "list wrapper" [ 2; 4; 6 ]
    (Par.map_list (fun x -> 2 * x) [ 1; 2; 3 ])

let prop_parallel_equals_map =
  QCheck2.Test.make ~name:"Parallel.map is Array.map" ~count:50
    QCheck2.Gen.(array_size (int_range 0 200) int)
    (fun a -> Par.map (fun x -> x lxor 42) a = Array.map (fun x -> x lxor 42) a)

(* ------------------------------------------------------------------ *)
(* Parallel.map_chunked                                                *)
(* ------------------------------------------------------------------ *)

let chunked_collect ?domains ?chunk f inputs =
  let offsets = ref [] and out = ref [] in
  Par.map_chunked ?domains ?chunk f inputs ~on_chunk:(fun ~offset results ->
      offsets := offset :: !offsets;
      out := results :: !out);
  (List.rev !offsets, Array.concat (List.rev !out))

let test_chunked_matches_map () =
  let inputs = Array.init 53 (fun i -> i * 3) in
  let f x = (x * x) - 1 in
  let expected = Array.map f inputs in
  List.iter
    (fun chunk ->
      let offsets, out = chunked_collect ~domains:3 ~chunk f inputs in
      Alcotest.(check (array int))
        (Printf.sprintf "chunk=%d concatenates to Array.map" chunk)
        expected out;
      (* Offsets are the exact chunk starts, strictly increasing. *)
      let rec starts at acc =
        if at >= Array.length inputs then List.rev acc
        else starts (at + chunk) (at :: acc)
      in
      Alcotest.(check (list int)) "offsets partition the input"
        (starts 0 []) offsets)
    [ 1; 7; 53; 1000 ]

let test_chunked_empty_input () =
  let fired = ref false in
  Par.map_chunked (fun x -> x) [||] ~on_chunk:(fun ~offset:_ _ -> fired := true);
  Alcotest.(check bool) "no callback on empty input" false !fired

let test_chunked_exception_propagates () =
  (* A worker raising mid-stream re-raises the first failure; chunks
     already completed were reported; the pool leaves no orphan domain
     behind, so parallel work afterwards still functions. *)
  let seen = ref 0 in
  Alcotest.check_raises "worker failure surfaces" (Failure "mid-stream") (fun () ->
      Par.map_chunked ~domains:3 ~chunk:10
        (fun x -> if x = 25 then failwith "mid-stream" else x)
        (Array.init 40 Fun.id)
        ~on_chunk:(fun ~offset:_ results -> seen := !seen + Array.length results));
  Alcotest.(check int) "completed chunks were reported" 20 !seen;
  let again = Par.map ~domains:3 (fun x -> x + 1) (Array.init 64 Fun.id) in
  Alcotest.(check (array int)) "pool still usable afterwards"
    (Array.init 64 (fun i -> i + 1)) again

let test_chunked_callback_exception () =
  (* on_chunk itself raising must also surface after the pool joins. *)
  Alcotest.check_raises "callback failure surfaces" (Failure "sink") (fun () ->
      Par.map_chunked ~domains:2 ~chunk:4 Fun.id (Array.init 9 Fun.id)
        ~on_chunk:(fun ~offset _ -> if offset = 4 then failwith "sink"))

let prop_chunked_equals_map =
  QCheck2.Test.make ~name:"Parallel.map_chunked concatenates to Array.map"
    ~count:50
    QCheck2.Gen.(
      pair (array_size (int_range 0 120) int) (int_range 1 17))
    (fun (a, chunk) ->
      let _, out = chunked_collect ~domains:4 ~chunk (fun x -> x * 2 + 1) a in
      out = Array.map (fun x -> (x * 2) + 1) a)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

module Json = Dls_util.Json

let json_testable =
  Alcotest.testable
    (fun fmt j -> Format.pp_print_string fmt (Json.to_string j))
    ( = )

let test_json_basics () =
  let check input expected =
    match Json.of_string input with
    | Ok v -> Alcotest.check json_testable input expected v
    | Error msg -> Alcotest.failf "%s: %s" input msg
  in
  check "null" Json.Null;
  check " true " (Json.Bool true);
  check "-12.5e2" (Json.Num (-1250.0));
  check "\"a\\nb\\u0041\"" (Json.Str "a\nbA");
  check "[1,[],{}]" (Json.Arr [ Json.Num 1.0; Json.Arr []; Json.Obj [] ]);
  check "{\"x\":1,\"y\":[true,null]}"
    (Json.Obj
       [ ("x", Json.Num 1.0); ("y", Json.Arr [ Json.Bool true; Json.Null ]) ])

let test_json_rejects_malformed () =
  let rejected input =
    match Json.of_string input with
    | Ok _ -> Alcotest.failf "accepted malformed %S" input
    | Error _ -> ()
  in
  List.iter rejected
    [ ""; "{"; "{\"a\":1"; "[1,2"; "\"unterminated"; "tru"; "1 2"; "{\"a\" 1}";
      "{\"a\":1}garbage"; "nan"; "[1,]"; "\"bad\\q\"" ];
  Alcotest.check_raises "non-finite unprintable"
    (Invalid_argument "Json.to_string: non-finite number") (fun () ->
      ignore (Json.to_string (Json.Num Float.nan)))

let test_json_number_roundtrip () =
  List.iter
    (fun v ->
      let s = Json.to_string (Json.Num v) in
      match Json.of_string s with
      | Ok (Json.Num v') ->
        Alcotest.(check bool)
          (Printf.sprintf "%s roundtrips" s)
          true
          (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float v'))
      | _ -> Alcotest.failf "%s did not parse back to a number" s)
    [ 0.0; -0.0; 1.0; 0.1; 1.0 /. 3.0; 1e-300; -2.5e300; 4503599627370496.0 ]

let gen_json =
  (* Obj-rooted values, like every campaign log line. *)
  QCheck2.Gen.(
    let scalar =
      oneof
        [ return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun v -> Json.Num v) (float_range (-1e9) 1e9);
          map (fun s -> Json.Str s) (string_size ~gen:printable (int_range 0 12)) ]
    in
    let value =
      oneof
        [ scalar;
          map (fun l -> Json.Arr l) (list_size (int_range 0 4) scalar) ]
    in
    map
      (fun fields -> Json.Obj fields)
      (list_size (int_range 0 5)
         (pair (string_size ~gen:printable (int_range 1 8)) value)))

let prop_json_roundtrip =
  QCheck2.Test.make ~name:"Json decode inverts encode" ~count:300 gen_json
    (fun j -> Json.of_string (Json.to_string j) = Ok j)

let prop_json_rejects_prefix =
  (* Strict parsing: no proper prefix of an object line is accepted, so
     a torn log line can never decode as a shorter valid entry. *)
  QCheck2.Test.make ~name:"Json rejects torn prefixes" ~count:300
    QCheck2.Gen.(pair gen_json (float_range 0.0 1.0))
    (fun (j, frac) ->
      let line = Json.to_string j in
      let cut = int_of_float (frac *. float_of_int (String.length line)) in
      let cut = Stdlib.min cut (String.length line - 1) in
      match Json.of_string (String.sub line 0 cut) with
      | Error _ -> true
      | Ok _ -> false)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

(* ------------------------------------------------------------------ *)
(* Wal                                                                 *)
(* ------------------------------------------------------------------ *)

let wal_tmp () =
  let path = Filename.temp_file "dls_wal" ".jsonl" in
  Sys.remove path;
  path

let int_line s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error "not an int"

let test_wal_append_load_roundtrip () =
  let path = wal_tmp () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let oc = Dls_util.Wal.open_append ~path in
  List.iter (fun n -> Dls_util.Wal.append_line oc (string_of_int n)) [ 1; 2; 3 ];
  close_out oc;
  (* Append mode continues after the valid prefix. *)
  let oc = Dls_util.Wal.open_append ~path in
  Dls_util.Wal.append_line oc "4";
  close_out oc;
  (match Dls_util.Wal.load ~of_line:int_line ~path with
  | Ok (entries, valid_len) ->
    Alcotest.(check (list int)) "entries in order" [ 1; 2; 3; 4 ] entries;
    Alcotest.(check int) "valid prefix is the whole file" valid_len
      (let st = Unix.stat path in
       st.Unix.st_size);
    Alcotest.(check int) "nothing to truncate" 0
      (Dls_util.Wal.truncate_torn ~path ~valid_len)
  | Error e -> Alcotest.fail e);
  Alcotest.check_raises "embedded newline rejected"
    (Invalid_argument "Wal.append_line: record contains a newline")
    (fun () ->
      let oc = Dls_util.Wal.open_append ~path in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
      Dls_util.Wal.append_line oc "a\nb")

let test_wal_torn_tail_dropped () =
  let path = wal_tmp () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "1\n2\n99");
  (match Dls_util.Wal.load ~of_line:int_line ~path with
  | Ok (entries, valid_len) ->
    Alcotest.(check (list int)) "torn final line dropped" [ 1; 2 ] entries;
    Alcotest.(check int) "valid prefix excludes the tail" 4 valid_len;
    Alcotest.(check int) "truncation drops the torn bytes" 2
      (Dls_util.Wal.truncate_torn ~path ~valid_len);
    let st = Unix.stat path in
    Alcotest.(check int) "file shrunk" 4 st.Unix.st_size
  | Error e -> Alcotest.fail e);
  (* A newline-terminated but unparseable final line is also torn. *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "1\n2\nxx\n");
  match Dls_util.Wal.load ~of_line:int_line ~path with
  | Ok (entries, valid_len) ->
    Alcotest.(check (list int)) "unparseable final line dropped" [ 1; 2 ] entries;
    Alcotest.(check int) "prefix length" 4 valid_len
  | Error e -> Alcotest.fail e

let test_wal_corrupt_middle_is_error () =
  let path = wal_tmp () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "1\nxx\n3\n");
  match Dls_util.Wal.load ~of_line:int_line ~path with
  | Error msg ->
    Alcotest.(check bool) "names the line" true
      (let sub = "line 2" in
       let n = String.length sub in
       let rec go i =
         i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
       in
       go 0)
  | Ok _ -> Alcotest.fail "mid-file corruption accepted"

let test_wal_write_atomic () =
  let path = wal_tmp () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  Dls_util.Wal.write_atomic ~path "first";
  Dls_util.Wal.write_atomic ~path "second";
  Alcotest.(check string) "replaced atomically" "second"
    (In_channel.with_open_bin path In_channel.input_all);
  (* No temp droppings left beside the target. *)
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  let stragglers =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> f <> base && String.length f >= String.length base
                             && String.sub f 0 (String.length base) = base)
  in
  Alcotest.(check (list string)) "no temp files left" [] stragglers

let () =
  Alcotest.run "dls_util"
    [ ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "copy" `Quick test_prng_copy_independent;
          Alcotest.test_case "split" `Quick test_prng_split_diverges;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "int coverage" `Quick test_prng_int_covers_range;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "bool bias" `Quick test_prng_bool_bias;
          Alcotest.test_case "uniform mean" `Quick test_prng_mean_uniform;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "pick" `Quick test_prng_pick;
          Alcotest.test_case "derive deterministic" `Quick
            test_prng_derive_deterministic;
          Alcotest.test_case "derive independent" `Quick
            test_prng_derive_independent ] );
      ( "stats",
        [ Alcotest.test_case "mean stddev" `Quick test_stats_mean_stddev;
          Alcotest.test_case "stddev pinned" `Quick test_stats_stddev_pinned;
          Alcotest.test_case "percentile pinned" `Quick test_stats_percentile_pinned;
          Alcotest.test_case "median percentile" `Quick test_stats_median_percentile;
          Alcotest.test_case "min max geomean" `Quick test_stats_min_max_geomean;
          Alcotest.test_case "percentile clamping" `Quick
            test_stats_percentile_clamped;
          Alcotest.test_case "NaN ordering" `Quick test_stats_nan_ordering;
          Alcotest.test_case "geometric mean edge cases" `Quick
            test_stats_geomean_edge_cases ] );
      ( "parallel",
        [ Alcotest.test_case "order preserved" `Quick test_parallel_preserves_order;
          Alcotest.test_case "matches sequential" `Quick test_parallel_matches_sequential;
          Alcotest.test_case "empty and singleton" `Quick test_parallel_empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick
            test_parallel_propagates_exception;
          Alcotest.test_case "list wrapper" `Quick test_parallel_map_list ] );
      ( "parallel-chunked",
        [ Alcotest.test_case "matches map" `Quick test_chunked_matches_map;
          Alcotest.test_case "empty input" `Quick test_chunked_empty_input;
          Alcotest.test_case "worker exception" `Quick
            test_chunked_exception_propagates;
          Alcotest.test_case "callback exception" `Quick
            test_chunked_callback_exception ] );
      ( "wal",
        [ Alcotest.test_case "append/load roundtrip" `Quick
            test_wal_append_load_roundtrip;
          Alcotest.test_case "torn tail dropped" `Quick test_wal_torn_tail_dropped;
          Alcotest.test_case "corrupt middle is an error" `Quick
            test_wal_corrupt_middle_is_error;
          Alcotest.test_case "write_atomic" `Quick test_wal_write_atomic ] );
      ( "json",
        [ Alcotest.test_case "basics" `Quick test_json_basics;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects_malformed;
          Alcotest.test_case "number roundtrip" `Quick test_json_number_roundtrip ] );
      qsuite "stats-prop"
        [ prop_median_between_min_max; prop_stddev_nonneg; prop_parallel_equals_map ];
      qsuite "chunked-json-prop"
        [ prop_chunked_equals_map; prop_json_roundtrip; prop_json_rejects_prefix ] ]
