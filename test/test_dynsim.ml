(* Tests for Dls_dynsim: event-heap ordering, workload generation and
   SWF round-trips, the event-driven simulator's determinism contract
   (byte-identical event logs across runs, domain counts and
   kill/resume) and the policy comparison on the bundled trace. *)

module G = Dls_graph.Graph
module P = Dls_platform.Platform
module Heap = Dls_dynsim.Event_heap
module W = Dls_dynsim.Workload
module D = Dls_dynsim.Dynamic
module Faults = Dls_flowsim.Faults
module E = Dls_experiments

let sample_swf = "../examples/traces/sample.swf"

let line3_platform () =
  let topology = G.path_graph 3 in
  let clusters =
    Array.init 3 (fun k -> { P.speed = 10.0; local_bw = 10.0; router = k })
  in
  let backbones = Array.make 2 { P.bw = 5.0; max_connect = 4 } in
  P.make ~clusters ~topology ~backbones

(* ------------------------------------------------------------------ *)
(* Event heap                                                          *)
(* ------------------------------------------------------------------ *)

let test_heap_basics () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option (float 0.0))) "no peek" None (Heap.peek_time h);
  Heap.push h ~time:2.0 "b";
  Heap.push h ~time:1.0 "a";
  Heap.push h ~time:3.0 "c";
  Alcotest.(check int) "length" 3 (Heap.length h);
  Alcotest.(check (option (float 0.0))) "peek min" (Some 1.0) (Heap.peek_time h);
  Alcotest.(check (option (pair (float 0.0) string)))
    "pop a" (Some (1.0, "a")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string)))
    "pop b" (Some (2.0, "b")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string)))
    "pop c" (Some (3.0, "c")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "drained" None (Heap.pop h)

let test_heap_fifo_on_ties () =
  let h = Heap.create () in
  List.iteri (fun i s -> Heap.push h ~time:(float_of_int (i mod 2)) s)
    [ "a"; "b"; "c"; "d"; "e"; "f" ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, s) ->
      order := s :: !order;
      drain ()
  in
  drain ();
  (* times 0: a c e (insertion order); times 1: b d f *)
  Alcotest.(check (list string)) "stable ties"
    [ "a"; "c"; "e"; "b"; "d"; "f" ]
    (List.rev !order)

let test_heap_rejects_nan () =
  let h = Heap.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_heap.push: NaN time")
    (fun () -> Heap.push h ~time:Float.nan ())

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in nondecreasing time order" ~count:100
    QCheck.(list (float_bound_exclusive 1e6))
    (fun times ->
      let h = Heap.create () in
      List.iteri (fun i t -> Heap.push h ~time:t i) times;
      let rec drain prev =
        match Heap.pop h with
        | None -> true
        | Some (t, _) -> prev <= t && drain t
      in
      drain neg_infinity)

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let test_synthetic_deterministic_and_sane () =
  let mk () = W.synthetic ~seed:5 ~jobs:50 ~rate:0.3 ~clusters:4 () in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "reproducible" true (a = b);
  Alcotest.(check int) "count" 50 (List.length a);
  let prev = ref neg_infinity in
  List.iteri
    (fun i j ->
      Alcotest.(check int) "dense ids" i j.W.id;
      Alcotest.(check bool) "sorted arrivals" true (j.W.arrival >= !prev);
      prev := j.W.arrival;
      Alcotest.(check bool) "cluster in range" true
        (j.W.cluster >= 0 && j.W.cluster < 4);
      Alcotest.(check bool) "work in band" true
        (j.W.work >= 100.0 && j.W.work <= 300.0))
    a

let test_synthetic_heavy_truncated () =
  let wl = W.synthetic ~seed:11 ~jobs:200 ~rate:1.0 ~heavy:true ~clusters:2 () in
  List.iter
    (fun j ->
      Alcotest.(check bool) "positive" true (j.W.work > 0.0);
      Alcotest.(check bool) "truncated" true (j.W.work <= 100.0 *. 200.0))
    wl

let test_synthetic_validates () =
  Alcotest.check_raises "rate"
    (Invalid_argument "Workload.synthetic: rate must be positive") (fun () ->
      ignore (W.synthetic ~seed:1 ~jobs:1 ~rate:0.0 ~clusters:1 ()))

let test_swf_round_trip () =
  let wl = W.synthetic ~seed:3 ~jobs:20 ~rate:0.5 ~clusters:3 () in
  match W.of_swf ~clusters:3 (W.to_swf wl) with
  | Error e -> Alcotest.failf "parse back: %s" e
  | Ok back ->
    Alcotest.(check int) "count" (List.length wl) (List.length back);
    let t0 = (List.hd wl).W.arrival in
    List.iter2
      (fun j b ->
        Alcotest.(check int) "id" j.W.id b.W.id;
        (* of_swf shifts arrivals so the earliest lands at 0 *)
        Alcotest.(check (float 0.0)) "arrival" (j.W.arrival -. t0) b.W.arrival;
        Alcotest.(check int) "cluster" j.W.cluster b.W.cluster;
        Alcotest.(check (float 0.0)) "work" j.W.work b.W.work)
      wl back

let test_swf_sample_trace_loads () =
  match W.load_swf ~clusters:4 ~path:sample_swf () with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok wl ->
    (* 26 data lines, 2 of them cancelled (run_time -1 / 0) *)
    Alcotest.(check int) "jobs" 24 (List.length wl);
    Alcotest.(check (float 0.0)) "shifted to 0" 0.0 (List.hd wl).W.arrival;
    List.iter
      (fun j ->
        Alcotest.(check bool) "cluster in range" true
          (j.W.cluster >= 0 && j.W.cluster < 4);
        Alcotest.(check bool) "work positive" true (j.W.work > 0.0))
      wl

let test_swf_rejects_garbage () =
  (match W.of_swf ~clusters:2 "1 0 x 100 1" with
  | Ok _ -> Alcotest.fail "accepted non-numeric field"
  | Error e ->
    Alcotest.(check bool) "names the line" true
      (String.length e > 0 && String.sub e 0 4 = "line"));
  match W.of_swf ~clusters:2 "1 0 -1" with
  | Ok _ -> Alcotest.fail "accepted short line"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Dynamic                                                             *)
(* ------------------------------------------------------------------ *)

let saturated_workload () = W.synthetic ~seed:7 ~jobs:24 ~rate:0.6 ~clusters:3 ()

let test_dynamic_completes_everything () =
  let p = line3_platform () in
  let wl = saturated_workload () in
  let r = D.run p wl in
  Alcotest.(check int) "all complete" (List.length wl)
    (List.length r.D.completed);
  Alcotest.(check int) "none left" 0 r.D.unfinished;
  Alcotest.(check bool) "guard healthy" false r.D.guard_exhausted;
  Alcotest.(check (float 1e-9)) "completed work" (W.total_work wl)
    r.D.completed_work;
  let last =
    List.fold_left (fun acc jr -> Float.max acc jr.D.finished) 0.0 r.D.completed
  in
  Alcotest.(check (float 0.0)) "makespan is last completion" last r.D.makespan;
  Alcotest.(check bool) "lower bound respected" true
    (r.D.makespan >= W.makespan_lower_bound p wl -. 1e-6);
  List.iter
    (fun jr ->
      Alcotest.(check bool) "started after arrival" true
        (jr.D.started >= jr.D.job.W.arrival);
      Alcotest.(check bool) "finished after start" true
        (jr.D.finished >= jr.D.started))
    r.D.completed

let test_dynamic_event_log_deterministic () =
  let p = line3_platform () in
  let wl = saturated_workload () in
  let a = D.run p wl and b = D.run p wl in
  Alcotest.(check bool) "byte-identical" true
    (String.equal a.D.event_log b.D.event_log);
  Alcotest.(check bool) "log ends with end line" true
    (let lines = String.split_on_char '\n' a.D.event_log in
     match List.filter (fun l -> l <> "") lines with
     | [] -> false
     | l ->
       let last = List.nth l (List.length l - 1) in
       String.length last > 0
       &&
       (match String.index_opt last ' ' with
       | Some i -> String.sub last (i + 1) 3 = "end"
       | None -> false))

let test_dynamic_lp_beats_fcfs_when_saturated () =
  let p = line3_platform () in
  let wl = saturated_workload () in
  let lp = D.run ~policy:D.Lp_repair p wl in
  let fcfs = D.run ~policy:D.Fcfs p wl in
  Alcotest.(check bool) "higher throughput" true
    (lp.D.throughput > fcfs.D.throughput);
  Alcotest.(check bool) "lower mean response" true
    (lp.D.mean_response < fcfs.D.mean_response)

let test_dynamic_lp_beats_fcfs_on_bundled_trace () =
  let p = line3_platform () in
  match W.load_swf ~clusters:3 ~work_scale:4.0 ~path:sample_swf () with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok wl ->
    let lp = D.run ~policy:D.Lp_repair p wl in
    let fcfs = D.run ~policy:D.Fcfs p wl in
    Alcotest.(check int) "lp completes all" (List.length wl)
      (List.length lp.D.completed);
    Alcotest.(check int) "fcfs completes all" (List.length wl)
      (List.length fcfs.D.completed);
    Alcotest.(check bool) "lp-repair beats fcfs throughput" true
      (lp.D.throughput > fcfs.D.throughput)

let test_dynamic_faults_replan_and_recover () =
  let p = line3_platform () in
  let wl = saturated_workload () in
  let plan =
    Faults.make p
      [ { Faults.time = 20.0; kind = Faults.Link_down 0 };
        { Faults.time = 60.0; kind = Faults.Link_up 0 } ]
  in
  let r = D.run ~faults:plan p wl in
  Alcotest.(check int) "still completes" (List.length wl)
    (List.length r.D.completed);
  Alcotest.(check bool) "guard healthy" false r.D.guard_exhausted;
  let has_fault_line =
    List.exists
      (fun l ->
        match String.index_opt l ' ' with
        | Some i ->
          String.length l >= i + 6 && String.sub l (i + 1) 5 = "fault"
        | None -> false)
      (String.split_on_char '\n' r.D.event_log)
  in
  Alcotest.(check bool) "fault logged" true has_fault_line;
  (* the outage must cost wall-clock against the fault-free replay *)
  let base = D.run p wl in
  Alcotest.(check bool) "slower than fault-free" true
    (r.D.makespan >= base.D.makespan)

let test_dynamic_until_truncates () =
  let p = line3_platform () in
  let wl = saturated_workload () in
  let r = D.run ~until:0.0 p wl in
  Alcotest.(check int) "nothing completed" 0 (List.length r.D.completed);
  Alcotest.(check int) "everything unfinished" (List.length wl) r.D.unfinished

let test_dynamic_validates () =
  let p = line3_platform () in
  Alcotest.check_raises "until" (Invalid_argument "Dynamic.run: until must be >= 0")
    (fun () -> ignore (D.run ~until:(-1.0) p []));
  Alcotest.check_raises "flow"
    (Invalid_argument "Dynamic.run: Flow fidelity needs >= 2 periods")
    (fun () -> ignore (D.run ~fidelity:(D.Flow 1) p []))

let test_dynamic_flow_fidelity_runs () =
  let p = line3_platform () in
  let wl = W.synthetic ~seed:2 ~jobs:6 ~rate:0.2 ~clusters:3 () in
  let r = D.run ~fidelity:(D.Flow 6) p wl in
  Alcotest.(check int) "completes" 6 (List.length r.D.completed);
  Alcotest.(check bool) "guard healthy" false r.D.guard_exhausted;
  let a = D.run ~fidelity:(D.Flow 6) p wl in
  Alcotest.(check bool) "flow fidelity deterministic" true
    (String.equal a.D.event_log r.D.event_log)

(* ------------------------------------------------------------------ *)
(* Dynexp: codec, engine integration, determinism                      *)
(* ------------------------------------------------------------------ *)

(* measure_time = false keeps entries byte-reproducible for the
   determinism and resume comparisons. *)
let tiny_config =
  { E.Dynexp.default_config with
    E.Dynexp.k = 3;
    platforms = 2;
    jobs = 8;
    rate = 0.5;
    measure_time = false }

let test_dynexp_codec_round_trip () =
  for index = 0 to E.Dynexp.total tiny_config - 1 do
    let entry = E.Dynexp.evaluate_index tiny_config index in
    let line = E.Dynexp.entry_to_line entry in
    match E.Dynexp.entry_of_line line with
    | Error msg -> Alcotest.failf "decode: %s" msg
    | Ok back ->
      Alcotest.(check string) "round trip" line (E.Dynexp.entry_to_line back)
  done

let test_dynexp_skip_codec () =
  let entry = E.Dynexp.Skipped { index = 3; reason = "no such trace" } in
  match E.Dynexp.entry_of_line (E.Dynexp.entry_to_line entry) with
  | Ok (E.Dynexp.Skipped { index = 3; reason = "no such trace" }) -> ()
  | Ok _ -> Alcotest.fail "wrong entry"
  | Error msg -> Alcotest.failf "decode: %s" msg

let test_dynexp_records_healthy () =
  let records = E.Dynexp.collect ~domains:2 tiny_config in
  Alcotest.(check int) "all indices" (E.Dynexp.total tiny_config)
    (List.length records);
  List.iter
    (fun r ->
      Alcotest.(check bool) "guard healthy" false r.E.Dynexp.guard_exhausted;
      Alcotest.(check bool) "digest is hex md5" true
        (String.length r.E.Dynexp.log_digest = 32);
      Alcotest.(check int) "all jobs complete" r.E.Dynexp.jobs
        r.E.Dynexp.completed)
    records;
  let table = E.Dynexp.table tiny_config records in
  Alcotest.(check bool) "table renders" true
    (String.length (Format.asprintf "%a" E.Report.pp_table table) > 0)

let test_dynexp_deterministic_across_domains () =
  let lines domains =
    E.Dynexp.collect ~domains tiny_config
    |> List.map (fun r -> E.Dynexp.entry_to_line (E.Dynexp.Record r))
  in
  let one = lines 1 and eight = lines 8 in
  Alcotest.(check int) "same count" (List.length one) (List.length eight);
  List.iter2 (fun a b -> Alcotest.(check string) "same bytes" a b) one eight

let test_dynexp_resume_replays () =
  let out = Filename.temp_file "dls_dynexp" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove out with Sys_error _ -> ());
      try Sys.remove (out ^ ".manifest") with Sys_error _ -> ())
    (fun () ->
      (match E.Dynexp.run ~domains:2 ~out tiny_config with
      | Error msg -> Alcotest.failf "fresh run: %s" msg
      | Ok s ->
        Alcotest.(check int) "all evaluated" (E.Dynexp.total tiny_config)
          s.E.Engine.s_evaluated);
      match E.Dynexp.run ~domains:2 ~out ~resume:true tiny_config with
      | Error msg -> Alcotest.failf "resume: %s" msg
      | Ok s ->
        Alcotest.(check int) "nothing re-evaluated" 0 s.E.Engine.s_evaluated;
        Alcotest.(check int) "everything replayed" (E.Dynexp.total tiny_config)
          s.E.Engine.s_replayed)

(* Kill + resume: truncate the JSONL log mid-run and resume; the final
   record set — including each run's event-log digest — must be
   byte-identical to the uninterrupted run's. *)
let test_dynexp_kill_resume_identical () =
  let read_lines path =
    In_channel.with_open_bin path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  let sorted_records out =
    match E.Engine.load_log ~of_line:E.Dynexp.entry_of_line ~path:out with
    | Error msg -> Alcotest.failf "load_log: %s" msg
    | Ok (entries, _) ->
      List.sort
        (fun a b ->
          Stdlib.compare (E.Dynexp.entry_index a) (E.Dynexp.entry_index b))
        entries
      |> List.map E.Dynexp.entry_to_line
  in
  let out1 = Filename.temp_file "dls_dynexp_full" ".jsonl" in
  let out2 = Filename.temp_file "dls_dynexp_cut" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p ->
          (try Sys.remove p with Sys_error _ -> ());
          try Sys.remove (p ^ ".manifest") with Sys_error _ -> ())
        [ out1; out2 ])
    (fun () ->
      (match E.Dynexp.run ~domains:1 ~out:out1 tiny_config with
      | Error msg -> Alcotest.failf "uninterrupted: %s" msg
      | Ok _ -> ());
      (* simulate a kill after two completed records *)
      let prefix =
        match read_lines out1 with
        | a :: b :: _ -> a ^ "\n" ^ b ^ "\n"
        | _ -> Alcotest.fail "expected at least two records"
      in
      Out_channel.with_open_bin out2 (fun oc ->
          Out_channel.output_string oc prefix);
      (match E.Dynexp.run ~domains:1 ~out:out2 ~resume:true tiny_config with
      | Error msg -> Alcotest.failf "resumed: %s" msg
      | Ok s ->
        Alcotest.(check int) "replayed the prefix" 2 s.E.Engine.s_replayed;
        Alcotest.(check int) "evaluated the rest"
          (E.Dynexp.total tiny_config - 2)
          s.E.Engine.s_evaluated);
      List.iter2
        (fun a b -> Alcotest.(check string) "same bytes" a b)
        (sorted_records out1) (sorted_records out2))

let test_dynexp_replay_exposes_event_log () =
  match E.Dynexp.replay tiny_config ~index:0 with
  | Error msg -> Alcotest.failf "replay: %s" msg
  | Ok (jobs, r) ->
    Alcotest.(check int) "workload length" tiny_config.E.Dynexp.jobs jobs;
    Alcotest.(check bool) "log non-empty" true
      (String.length r.D.event_log > 0);
    let digest = Digest.to_hex (Digest.string r.D.event_log) in
    let records = E.Dynexp.collect ~domains:1 tiny_config in
    let r0 = List.hd records in
    Alcotest.(check string) "digest matches engine record" digest
      r0.E.Dynexp.log_digest

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dls_dynsim"
    [ ( "event-heap",
        [ Alcotest.test_case "basics" `Quick test_heap_basics;
          Alcotest.test_case "fifo on ties" `Quick test_heap_fifo_on_ties;
          Alcotest.test_case "rejects nan" `Quick test_heap_rejects_nan ] );
      qsuite "event-heap-props" [ prop_heap_sorts ];
      ( "workload",
        [ Alcotest.test_case "synthetic deterministic" `Quick
            test_synthetic_deterministic_and_sane;
          Alcotest.test_case "heavy tail truncated" `Quick
            test_synthetic_heavy_truncated;
          Alcotest.test_case "validates" `Quick test_synthetic_validates;
          Alcotest.test_case "swf round trip" `Quick test_swf_round_trip;
          Alcotest.test_case "sample trace loads" `Quick
            test_swf_sample_trace_loads;
          Alcotest.test_case "rejects garbage" `Quick test_swf_rejects_garbage ] );
      ( "dynamic",
        [ Alcotest.test_case "completes everything" `Quick
            test_dynamic_completes_everything;
          Alcotest.test_case "event log deterministic" `Quick
            test_dynamic_event_log_deterministic;
          Alcotest.test_case "lp beats fcfs when saturated" `Quick
            test_dynamic_lp_beats_fcfs_when_saturated;
          Alcotest.test_case "lp beats fcfs on bundled trace" `Quick
            test_dynamic_lp_beats_fcfs_on_bundled_trace;
          Alcotest.test_case "faults replan and recover" `Quick
            test_dynamic_faults_replan_and_recover;
          Alcotest.test_case "until truncates" `Quick test_dynamic_until_truncates;
          Alcotest.test_case "validates" `Quick test_dynamic_validates;
          Alcotest.test_case "flow fidelity" `Quick test_dynamic_flow_fidelity_runs ] );
      ( "dynexp",
        [ Alcotest.test_case "codec round trip" `Quick test_dynexp_codec_round_trip;
          Alcotest.test_case "skip codec" `Quick test_dynexp_skip_codec;
          Alcotest.test_case "records healthy" `Quick test_dynexp_records_healthy;
          Alcotest.test_case "deterministic across domains" `Quick
            test_dynexp_deterministic_across_domains;
          Alcotest.test_case "resume replays" `Quick test_dynexp_resume_replays;
          Alcotest.test_case "kill+resume identical" `Quick
            test_dynexp_kill_resume_identical;
          Alcotest.test_case "replay exposes event log" `Quick
            test_dynexp_replay_exposes_event_log ] ) ]
