examples/fault_repair_demo.mli:
