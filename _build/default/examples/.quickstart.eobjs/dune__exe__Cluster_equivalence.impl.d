examples/cluster_equivalence.ml: Allocation Dls_core Dls_graph Dls_platform Format List Lprg Problem
