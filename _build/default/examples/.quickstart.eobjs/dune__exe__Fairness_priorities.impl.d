examples/fairness_priorities.ml: Allocation Dls_core Dls_graph Dls_platform Format Lp_relax Lprg Problem
