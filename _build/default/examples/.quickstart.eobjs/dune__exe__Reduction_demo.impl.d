examples/reduction_demo.ml: Allocation Dls_core Dls_graph Dls_num Dls_platform Format Heuristics List Lp_relax Problem Reduction String
