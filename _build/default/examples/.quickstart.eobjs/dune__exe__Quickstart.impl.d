examples/quickstart.ml: Allocation Dls_core Dls_graph Dls_platform Format Heuristics Lp_relax Lprg Problem
