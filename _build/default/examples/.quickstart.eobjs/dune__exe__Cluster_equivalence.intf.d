examples/cluster_equivalence.mli:
