examples/pipeline_demo.ml: Array Dls_core Dls_graph Dls_platform Format Heuristics List Lp_relax Pipeline Problem
