examples/quickstart.mli:
