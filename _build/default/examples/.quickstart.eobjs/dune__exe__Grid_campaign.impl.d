examples/grid_campaign.ml: Allocation Dls_core Dls_experiments Dls_flowsim Dls_util Format Heuristics List Lp_relax Problem Schedule
