examples/finite_campaign.ml: Array Dls_core Dls_graph Dls_num Dls_platform Format List Lp_relax Lprg Makespan Problem Schedule Timeline
