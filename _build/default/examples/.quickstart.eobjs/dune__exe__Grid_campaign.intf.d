examples/grid_campaign.mli:
