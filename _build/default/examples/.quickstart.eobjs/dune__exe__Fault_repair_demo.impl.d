examples/fault_repair_demo.ml: Allocation Array Dls_core Dls_flowsim Dls_graph Dls_platform Format List Lp_relax Lprg Problem Repair
