examples/finite_campaign.mli:
