examples/fairness_priorities.mli:
