examples/reduction_demo.mli:
