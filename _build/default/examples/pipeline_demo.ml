(* Pipelined applications: the paper's future-work extension, running.

   A satellite-imagery campaign: raw scenes live at an acquisition
   station; stage 1 (decode, light, doubles the data volume) and stage 2
   (deep analysis, 8x costlier per data unit) can each run anywhere the
   steady-state optimizer likes.  A second, single-stage application
   competes for the same platform.  The solver places stage fractions
   and inter-stage flows; we print the resulting placement.

   Run with: dune exec examples/pipeline_demo.exe *)

module G = Dls_graph.Graph
module P = Dls_platform.Platform
open Dls_core

let () =
  (* Star of an acquisition station (cluster 0, no compute), a mid-size
     site and a large site. *)
  let topology = G.star 3 in
  let backbones =
    [| { P.bw = 15.0; max_connect = 3 }; { P.bw = 20.0; max_connect = 4 } |]
  in
  let clusters =
    [| { P.speed = 4.0; local_bw = 30.0; router = 0 };
       { P.speed = 40.0; local_bw = 60.0; router = 1 };
       { P.speed = 90.0; local_bw = 80.0; router = 2 } |]
  in
  let platform = P.make ~clusters ~topology ~backbones in

  let imaging =
    { Pipeline.source = 0; payoff = 1.0;
      stages =
        [ { Pipeline.work = 1.0; expansion = 2.0 };  (* decode *)
          { Pipeline.work = 8.0; expansion = 0.0 } ] }  (* analyze *)
  in
  let survey =
    { Pipeline.source = 1; payoff = 1.0;
      stages = [ { Pipeline.work = 1.0; expansion = 0.0 } ] }
  in

  match Pipeline.solve ~objective:Lp_relax.Maxmin platform [ imaging; survey ] with
  | Error msg -> Format.eprintf "pipeline solve failed: %s@." msg
  | Ok sol ->
    Format.printf "steady-state rates: imaging %.3f scenes/s, survey %.3f units/s@."
      sol.Pipeline.rates.(0) sol.Pipeline.rates.(1);
    Format.printf "MAXMIN objective: %.3f (pivots: %d)@.@."
      sol.Pipeline.objective_value sol.Pipeline.iterations;
    Format.printf "placement (stage input rates):@.";
    List.iter
      (fun (a, s, c, y) ->
        let name = if a = 0 then "imaging" else "survey" in
        Format.printf "  %s stage %d on cluster %d: %.3f data units/s@." name s c y)
      sol.Pipeline.placement;
    (* Single-stage sanity anchor: survey alone is the base model. *)
    let base =
      Heuristics.lp_bound ~objective:Lp_relax.Maxmin
        (Problem.make platform ~payoffs:[| 0.0; 1.0; 0.0 |])
    in
    match base with
    | Ok v ->
      Format.printf "@.(survey alone would reach %.3f — competition costs it %.1f%%)@."
        v
        (100.0 *. (1.0 -. (sol.Pipeline.rates.(1) /. v)))
    | Error msg -> Format.eprintf "base LP failed: %s@." msg
