(* Fairness and priorities: how the payoff factors pi_k steer MAX-MIN
   resource sharing.

   Two data-source clusters compete for one compute farm.  Under MAXMIN
   the solver equalizes pi_k * alpha_k, so an application with payoff 2
   receives *half* the load units of a payoff-1 application ("computing
   one unit of load for an application with payoff factor 2 is twice as
   worthwhile", Section 3.1).  Under SUM, the whole farm goes to
   whichever route is cheapest, payoffs merely scale the total.

   Run with: dune exec examples/fairness_priorities.exe *)

module G = Dls_graph.Graph
module P = Dls_platform.Platform
open Dls_core

let platform () =
  (* Routers: 0 (farm) - 1 (source A) and 0 - 2 (source B). *)
  let topology = G.star 3 in
  let backbones =
    [| { P.bw = 25.0; max_connect = 4 }; { P.bw = 25.0; max_connect = 4 } |]
  in
  let clusters =
    [| { P.speed = 60.0; local_bw = 80.0; router = 0 };  (* farm *)
       { P.speed = 0.0; local_bw = 50.0; router = 1 };  (* source A *)
       { P.speed = 0.0; local_bw = 50.0; router = 2 } |]  (* source B *)
  in
  P.make ~clusters ~topology ~backbones

let describe problem label =
  match Lprg.solve ~objective:Lp_relax.Maxmin problem with
  | Error msg -> Format.eprintf "%s: LPRG failed: %s@." label msg
  | Ok alloc ->
    assert (Allocation.is_feasible problem alloc);
    let a1 = Allocation.app_throughput alloc 1 in
    let a2 = Allocation.app_throughput alloc 2 in
    Format.printf
      "%s:@.  A1 gets %.2f load/unit time (payoff %.1f, weighted %.2f)@.  A2 gets %.2f load/unit time (payoff %.1f, weighted %.2f)@."
      label a1 (Problem.payoff problem 1)
      (a1 *. Problem.payoff problem 1)
      a2 (Problem.payoff problem 2)
      (a2 *. Problem.payoff problem 2)

let () =
  let p = platform () in
  (* Equal priorities: the farm splits evenly. *)
  describe (Problem.make p ~payoffs:[| 0.0; 1.0; 1.0 |]) "equal payoffs (1, 1)";
  Format.printf "@.";
  (* A2 is twice as worthwhile per unit: MAX-MIN equalizes the weighted
     throughputs, so A2 receives half the raw load of A1. *)
  describe (Problem.make p ~payoffs:[| 0.0; 1.0; 2.0 |]) "weighted payoffs (1, 2)";
  Format.printf "@.";
  (* SUM with the same weights: fairness is gone; the farm's capacity
     goes wherever it pays the most. *)
  let problem = Problem.make p ~payoffs:[| 0.0; 1.0; 2.0 |] in
  match Lprg.solve ~objective:Lp_relax.Sum problem with
  | Error msg -> Format.eprintf "SUM LPRG failed: %s@." msg
  | Ok alloc ->
    Format.printf
      "SUM objective with payoffs (1, 2): A1 = %.2f, A2 = %.2f (total payoff %.2f)@."
      (Allocation.app_throughput alloc 1)
      (Allocation.app_throughput alloc 2)
      (Allocation.sum_objective problem alloc)
