(* From steady state to a finished campaign.

   The paper optimizes the steady-state regime; real campaigns are
   finite.  This example takes the quickstart platform, reconstructs the
   periodic schedule (Section 3.2), and runs two finite workloads
   through it: the makespan estimate, its asymptotic optimality as loads
   grow, the explicit Gantt timeline of the first few periods, and the
   sequential-baseline comparison.

   Run with: dune exec examples/finite_campaign.exe *)

module G = Dls_graph.Graph
module P = Dls_platform.Platform
module Q = Dls_num.Rat
open Dls_core

let () =
  let topology = G.path_graph 3 in
  let backbones =
    [| { P.bw = 10.0; max_connect = 2 }; { P.bw = 6.0; max_connect = 4 } |]
  in
  let clusters =
    [| { P.speed = 20.0; local_bw = 30.0; router = 0 };
       { P.speed = 80.0; local_bw = 40.0; router = 1 };
       { P.speed = 15.0; local_bw = 25.0; router = 2 } |]
  in
  let problem =
    Problem.make (P.make ~clusters ~topology ~backbones) ~payoffs:[| 1.0; 0.0; 1.0 |]
  in
  match Lprg.solve ~objective:Lp_relax.Maxmin problem with
  | Error msg -> Format.eprintf "LPRG failed: %s@." msg
  | Ok alloc ->
    let schedule = Schedule.build (Schedule.exact_of_float ~approx_max_den:100 alloc) in
    assert (Schedule.validate problem schedule = Ok ());
    Format.printf "steady state: A0 at %s, A2 at %s load/unit time@.@."
      (Q.to_string (Schedule.app_throughput schedule 0))
      (Q.to_string (Schedule.app_throughput schedule 2));

    let workloads = [| Q.of_int 600; Q.zero; Q.of_int 450 |] in
    (match Makespan.periodic schedule ~workloads with
     | Error msg -> Format.eprintf "makespan failed: %s@." msg
     | Ok e ->
       Format.printf
         "campaign of %s + %s load units: %s periods, makespan %.2f (lower bound %.2f, efficiency %.1f%%)@."
         (Q.to_string workloads.(0)) (Q.to_string workloads.(2))
         (Dls_num.Bigint.to_string e.Makespan.periods)
         (Q.to_float e.Makespan.makespan)
         (Q.to_float e.Makespan.lower_bound)
         (100.0 *. e.Makespan.efficiency));
    Format.printf "asymptotic optimality (efficiency as loads scale):@.";
    List.iter
      (fun scale ->
        Format.printf "  x%-6d -> %.4f@." scale
          (Makespan.asymptotic_efficiency schedule ~workloads ~scale))
      [ 1; 10; 100; 1000 ];

    (match Makespan.sequential_baseline problem ~workloads with
     | Ok total ->
       Format.printf
         "@.sequential baseline (one application at a time): %.2f time units@."
         (Q.to_float total)
     | Error msg -> Format.eprintf "baseline failed: %s@." msg);

    (* A small campaign so the Gantt stays readable. *)
    let small = [| Q.of_int 60; Q.zero; Q.of_int 45 |] in
    match Timeline.build problem schedule ~workloads:small with
    | Error msg -> Format.eprintf "timeline failed: %s@." msg
    | Ok tl ->
      assert (Timeline.validate tl = Ok ());
      Format.printf "@.explicit timeline for a small campaign (60 + 45 units):@.%a@."
        Timeline.pp tl
