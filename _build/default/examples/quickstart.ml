(* Quickstart: two university clusters and one idle compute farm.

   Builds a platform by hand, schedules two competing divisible-load
   applications with the LPRG heuristic, and prints the steady-state
   allocation next to the LP upper bound.

   Run with: dune exec examples/quickstart.exe *)

module G = Dls_graph.Graph
module P = Dls_platform.Platform
open Dls_core

let () =
  (* Topology: three routers in a line; backbone links with the paper's
     two parameters — per-connection bandwidth and a connection cap. *)
  let topology = G.path_graph 3 in
  let backbones =
    [| { P.bw = 10.0; max_connect = 2 };  (* l0: router 0 -- router 1 *)
       { P.bw = 6.0; max_connect = 4 } |]  (* l1: router 1 -- router 2 *)
  in
  (* Clusters: C0 and C2 hold application data and modest compute; C1 is
     a fast farm with no application of its own. *)
  let clusters =
    [| { P.speed = 20.0; local_bw = 30.0; router = 0 };
       { P.speed = 80.0; local_bw = 40.0; router = 1 };
       { P.speed = 15.0; local_bw = 25.0; router = 2 } |]
  in
  let platform = P.make ~clusters ~topology ~backbones in
  let problem = Problem.make platform ~payoffs:[| 1.0; 0.0; 1.0 |] in

  Format.printf "%a@.@." Problem.pp problem;

  match Lprg.solve ~objective:Lp_relax.Maxmin problem with
  | Error msg -> Format.eprintf "LPRG failed: %s@." msg
  | Ok alloc ->
    assert (Allocation.is_feasible problem alloc);
    Format.printf "LPRG allocation (MAXMIN objective):@.%a@." Allocation.pp alloc;
    Format.printf "application throughputs: A0 = %.2f, A2 = %.2f@."
      (Allocation.app_throughput alloc 0)
      (Allocation.app_throughput alloc 2);
    Format.printf "MAXMIN = %.2f   SUM = %.2f@."
      (Allocation.maxmin_objective problem alloc)
      (Allocation.sum_objective problem alloc);
    (match Heuristics.lp_bound ~objective:Lp_relax.Maxmin problem with
     | Ok bound -> Format.printf "LP upper bound on MAXMIN = %.2f@." bound
     | Error msg -> Format.eprintf "LP bound failed: %s@." msg)
