(* The NP-completeness gadget, made concrete (Section 4 of the paper).

   Takes the Petersen graph, builds the STEADY-STATE-DIVISIBLE-LOAD
   instance of Theorem 1, and demonstrates the equivalence:

   - the exact maximum independent set (size 4) maps to a feasible
     allocation with MAXMIN throughput exactly 4;
   - every heuristic's (integral) allocation maps back to an independent
     set, so no heuristic can beat 4;
   - the rational LP relaxation exceeds 4 — integrality is exactly where
     the hardness lives.

   Run with: dune exec examples/reduction_demo.exe *)

module G = Dls_graph.Graph
module Mis = Dls_graph.Mis
open Dls_core

let () =
  let graph = G.petersen () in
  Format.printf "graph: Petersen (10 vertices, 15 edges)@.";
  let mis = Mis.max_independent_set graph in
  Format.printf "maximum independent set: {%s} (size %d)@.@."
    (String.concat ", " (List.map string_of_int mis))
    (List.length mis);

  let problem = Reduction.build graph in
  let platform = Problem.platform problem in
  Format.printf
    "gadget platform: %d clusters, %d routers, %d backbone links (all bw = maxcon = 1)@.@."
    (Dls_platform.Platform.num_clusters platform)
    (Dls_platform.Platform.num_routers platform)
    (Dls_platform.Platform.num_backbones platform);

  (* Forward direction: the MIS allocation is feasible and achieves |MIS|. *)
  let witness = Reduction.allocation_of_independent_set problem mis in
  assert (Allocation.is_feasible problem witness);
  Format.printf "MIS witness allocation: feasible, MAXMIN = %.1f@."
    (Allocation.maxmin_objective problem witness);

  (* Backward direction: heuristics produce integral allocations, whose
     served vertices always form an independent set. *)
  List.iter
    (fun h ->
      match Heuristics.run h problem with
      | Error msg -> Format.printf "%s failed: %s@." (Heuristics.name h) msg
      | Ok alloc ->
        let set = Reduction.independent_set_of_allocation alloc in
        Format.printf "%-4s achieves %.3f; served vertices {%s} independent: %b@."
          (Heuristics.name h)
          (Allocation.sum_objective problem alloc)
          (String.concat ", " (List.map string_of_int set))
          (Mis.is_independent graph set))
    Heuristics.all;

  (* The rational relaxation is allowed to split connections and beats
     the integral optimum. *)
  match Lp_relax.solve_exact ~objective:Lp_relax.Maxmin problem with
  | Lp_relax.Solution s ->
    Format.printf "@.rational LP relaxation: %s (> %d: fractional connections)@."
      (Dls_num.Rat.to_string s.Lp_relax.objective_value)
      (List.length mis)
  | Lp_relax.Failed msg -> Format.printf "exact LP failed: %s@." msg
