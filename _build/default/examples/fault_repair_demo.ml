(* Fault injection and schedule repair, end to end.

   Schedules two applications with LPRG, runs the flow simulator while a
   backbone link fails mid-execution, then repairs the broken allocation
   against the degraded platform with the Repair ladder.  Exits nonzero
   if any step yields an infeasible allocation — the CI resilience smoke
   drives this binary.

   Run with: dune exec examples/fault_repair_demo.exe *)

module G = Dls_graph.Graph
module P = Dls_platform.Platform
module Faults = Dls_flowsim.Faults
module Sim = Dls_flowsim.Simulator
open Dls_core

let die fmt = Format.kasprintf (fun msg -> Format.eprintf "%s@." msg; exit 1) fmt

let () =
  (* The quickstart platform: two application clusters around a fast
     farm, three routers in a line. *)
  let topology = G.path_graph 3 in
  let backbones =
    [| { P.bw = 10.0; max_connect = 2 };  (* l0: router 0 -- router 1 *)
       { P.bw = 6.0; max_connect = 4 } |]  (* l1: router 1 -- router 2 *)
  in
  let clusters =
    [| { P.speed = 20.0; local_bw = 30.0; router = 0 };
       { P.speed = 80.0; local_bw = 40.0; router = 1 };
       { P.speed = 15.0; local_bw = 25.0; router = 2 } |]
  in
  let platform = P.make ~clusters ~topology ~backbones in
  let payoffs = [| 1.0; 0.0; 1.0 |] in
  let problem = Problem.make platform ~payoffs in

  let alloc =
    match Lprg.solve ~objective:Lp_relax.Maxmin problem with
    | Ok a -> a
    | Error msg -> die "LPRG failed: %s" msg
  in
  if not (Allocation.is_feasible problem alloc) then
    die "LPRG allocation infeasible on the healthy platform";
  Format.printf "healthy MAXMIN = %.3f@."
    (Allocation.maxmin_objective problem alloc);

  (* Fail l0 — the only path between C0 and the farm — at t = 6. *)
  let plan =
    Faults.make platform [ { Faults.time = 6.0; kind = Faults.Link_down 0 } ]
  in
  let horizon = 20.0 in
  let healthy = Sim.run ~periods:20 ~warmup:2 problem alloc in
  let faulted = Sim.run ~periods:20 ~warmup:2 ~faults:plan problem alloc in
  Format.printf
    "simulated throughput: healthy %.3f, under failure %.3f (%d stalled, \
     downtime %.1f/%.1f)@."
    (Array.fold_left ( +. ) 0.0 healthy.Sim.achieved)
    (Array.fold_left ( +. ) 0.0 faulted.Sim.achieved)
    faulted.Sim.stalled_transfers faulted.Sim.downtime horizon;

  (* Repair against the end-of-run degraded platform. *)
  let degraded = Faults.degraded_at platform plan ~time:horizon in
  let dproblem = Problem.make degraded ~payoffs in
  if Allocation.is_feasible dproblem alloc then
    die "old allocation unexpectedly still feasible after the link failure";
  match Repair.repair dproblem alloc with
  | Error msg -> die "repair failed: %s" msg
  | Ok o ->
    if not (Allocation.is_feasible dproblem o.Repair.allocation) then
      die "repaired allocation infeasible on the degraded platform";
    List.iter
      (fun (at : Repair.attempt) ->
        Format.printf "  %-8s %8.3f ms  feasible=%b  objective=%.3f@."
          (Repair.stage_name at.Repair.stage)
          (at.Repair.seconds *. 1e3) at.Repair.feasible at.Repair.objective)
      o.Repair.attempts;
    Format.printf "repaired by %s: MAXMIN %.3f -> %.3f@."
      (Repair.stage_name o.Repair.stage)
      (Allocation.maxmin_objective problem alloc)
      (Allocation.maxmin_objective dproblem o.Repair.allocation)
