(* A multi-site Grid campaign, end to end.

   Generates a realistic 12-cluster platform from the paper's Table 1
   distributions, runs all four heuristics under both objectives,
   reconstructs the periodic schedule of the best MAXMIN allocation
   (Section 3.2), and validates it with the flow-level simulator.

   Run with: dune exec examples/grid_campaign.exe *)

module Prng = Dls_util.Prng
module E = Dls_experiments
open Dls_core

let () =
  let rng = Prng.create ~seed:2005 in
  let problem = E.Measure.sample_problem ~app_fraction:0.4 rng ~k:12 in
  Format.printf "%a@.@." Problem.pp problem;

  let lp_maxmin =
    match Heuristics.lp_bound ~objective:Lp_relax.Maxmin problem with
    | Ok v -> v
    | Error msg -> Format.eprintf "LP failed: %s@." msg; exit 1
  in
  let lp_sum =
    match Heuristics.lp_bound ~objective:Lp_relax.Sum problem with
    | Ok v -> v
    | Error msg -> Format.eprintf "LP failed: %s@." msg; exit 1
  in
  Format.printf "LP upper bounds: MAXMIN = %.2f, SUM = %.2f@.@." lp_maxmin lp_sum;

  Format.printf "%-6s %10s %10s %12s %12s@." "method" "MAXMIN" "SUM" "MAXMIN/LP"
    "SUM/LP";
  let best = ref None in
  List.iter
    (fun h ->
      match Heuristics.run ~objective:Lp_relax.Maxmin ~rng h problem with
      | Error msg -> Format.printf "%-6s failed: %s@." (Heuristics.name h) msg
      | Ok alloc ->
        assert (Allocation.is_feasible problem alloc);
        let mm = Allocation.maxmin_objective problem alloc in
        let sum = Allocation.sum_objective problem alloc in
        Format.printf "%-6s %10.2f %10.2f %12.3f %12.3f@." (Heuristics.name h) mm
          sum (mm /. lp_maxmin) (sum /. lp_sum);
        (match !best with
         | Some (bmm, _) when bmm >= mm -> ()
         | _ -> best := Some (mm, alloc)))
    Heuristics.all;

  match !best with
  | None -> ()
  | Some (_, alloc) ->
    Format.printf "@.Periodic schedule of the best MAXMIN allocation:@.";
    let exact = Schedule.exact_of_float ~approx_max_den:1000 alloc in
    let schedule =
      match Schedule.validate problem (Schedule.build exact) with
      | Ok () -> Schedule.build exact
      | Error _ ->
        (* The human-friendly approximation overshot a capacity; the
           exact lift is always valid. *)
        Schedule.build (Schedule.exact_of_float alloc)
    in
    Format.printf "%a@." Schedule.pp schedule;
    let stats = Dls_flowsim.Simulator.run ~periods:40 ~warmup:5 problem alloc in
    Format.printf
      "flow-level check: %.1f%% of the predicted steady-state throughput (late transfers: %d)@."
      (100.0 *. Dls_flowsim.Simulator.efficiency stats)
      stats.Dls_flowsim.Simulator.late_transfers
