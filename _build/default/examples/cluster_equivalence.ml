(* From machine rooms to the two-parameter cluster model.

   Section 2 of the paper reduces each institution's internal network to
   a single equivalent speed s_k using classical divisible-load-theory
   formulas.  This example derives the s_k of three differently shaped
   sites (a flat star, a two-level tree, a one-port legacy cluster),
   assembles the Grid platform from them, and schedules two applications
   across the result.

   Run with: dune exec examples/cluster_equivalence.exe *)

module G = Dls_graph.Graph
module P = Dls_platform.Platform
module Eq = Dls_platform.Equivalence
open Dls_core

let () =
  (* Site 1: front-end (10 units/s) + 8 identical workers behind
     gigabit-ish links; bounded multiport egress. *)
  let site1 =
    Eq.star ~root:10.0 ~workers:(List.init 8 (fun _ -> (12.0, 9.0)))
  in
  let s1 = Eq.multiport_speed ~egress_cap:60.0 site1 in

  (* Site 2: two racks behind the front-end, each rack head feeding four
     nodes — a depth-2 tree. *)
  let rack () =
    { Eq.compute = 2.0;
      children = List.init 4 (fun _ -> (8.0, Eq.leaf 6.0)) }
  in
  let site2 = { Eq.compute = 5.0; children = [ (30.0, rack ()); (30.0, rack ()) ] } in
  let s2 = Eq.multiport_speed site2 in

  (* Site 3: an old bus cluster — the front-end serves one node at a
     time (one-port). *)
  let site3 = Eq.star ~root:4.0 ~workers:[ (20.0, 10.0); (20.0, 10.0); (5.0, 30.0) ] in
  let s3 = Eq.one_port_speed site3 in

  Format.printf "equivalent speeds: site1 = %.1f, site2 = %.1f, site3 = %.1f@.@."
    s1 s2 s3;

  (* Assemble the Grid: the three sites in a triangle. *)
  let topology = G.cycle 3 in
  let backbones =
    [| { P.bw = 8.0; max_connect = 3 }; { P.bw = 5.0; max_connect = 2 };
       { P.bw = 12.0; max_connect = 4 } |]
  in
  let clusters =
    [| { P.speed = s1; local_bw = 25.0; router = 0 };
       { P.speed = s2; local_bw = 20.0; router = 1 };
       { P.speed = s3; local_bw = 15.0; router = 2 } |]
  in
  let problem =
    Problem.make (P.make ~clusters ~topology ~backbones) ~payoffs:[| 1.0; 1.0; 0.0 |]
  in
  match Lprg.solve problem with
  | Error msg -> Format.eprintf "LPRG failed: %s@." msg
  | Ok alloc ->
    assert (Allocation.is_feasible problem alloc);
    Format.printf "%a@." Allocation.pp alloc;
    Format.printf "MAXMIN = %.2f, SUM = %.2f@."
      (Allocation.maxmin_objective problem alloc)
      (Allocation.sum_objective problem alloc)
