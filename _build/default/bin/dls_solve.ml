(* Solve one random platform with a chosen heuristic and print the full
   story: allocation, objective values vs the LP bound, the reconstructed
   periodic schedule, and a flow-level simulation check. *)

open Cmdliner
module E = Dls_experiments
module Prng = Dls_util.Prng
open Dls_core

let run seed k app_fraction heuristic objective show_schedule periods
    platform_file dump_platform dot_file =
  let rng = Prng.create ~seed in
  let problem =
    match platform_file with
    | Some path -> begin
      match Dls_platform.Platform_io.load ~path with
      | Ok platform -> E.Measure.assign_workload ~app_fraction rng platform
      | Error msg ->
        Format.eprintf "cannot load %s: %s@." path msg;
        exit 2
    end
    | None -> E.Measure.sample_problem ~app_fraction rng ~k
  in
  (match dump_platform with
   | Some path ->
     Dls_platform.Platform_io.save ~path (Problem.platform problem);
     Format.printf "platform written to %s@." path
   | None -> ());
  let objective =
    match objective with "sum" -> Lp_relax.Sum | _ -> Lp_relax.Maxmin
  in
  match Heuristics.of_name heuristic with
  | None ->
    Format.eprintf "unknown heuristic %S (expected g, lpr, lprg or lprr)@." heuristic;
    exit 2
  | Some h -> begin
    Format.printf "%a@." Problem.pp problem;
    match Heuristics.run ~objective ~rng h problem with
    | Error msg ->
      Format.eprintf "%s failed: %s@." (Heuristics.name h) msg;
      exit 1
    | Ok alloc ->
      Format.printf "%a@." Allocation.pp alloc;
      let violations = Allocation.check problem alloc in
      if violations <> [] then begin
        Format.printf "INFEASIBLE:@.";
        List.iter (Format.printf "  %a@." Allocation.pp_violation) violations;
        exit 1
      end;
      Format.printf "feasible: yes@.";
      Format.printf "SUM    = %.4f@." (Allocation.sum_objective problem alloc);
      Format.printf "MAXMIN = %.4f@." (Allocation.maxmin_objective problem alloc);
      Format.printf "fairness: Jain %.3f, min/max %.3f@."
        (Fairness.jain_index problem alloc)
        (Fairness.min_over_max problem alloc);
      (match Heuristics.lp_bound ~objective problem with
       | Ok bound -> Format.printf "LP bound (%s) = %.4f@."
                       (match objective with Lp_relax.Sum -> "SUM" | _ -> "MAXMIN")
                       bound
       | Error msg -> Format.printf "LP bound unavailable: %s@." msg);
      if show_schedule then begin
        let exact = Schedule.exact_of_float ~approx_max_den:1000 alloc in
        let sched = Schedule.build exact in
        match Schedule.validate problem sched with
        | Ok () -> Format.printf "%a@." Schedule.pp sched
        | Error msg ->
          (* The bounded-denominator approximation overshot a capacity:
             fall back to the exact lift, whose schedule is provably
             valid (at the cost of a huge period). *)
          Format.printf
            "(approximate schedule rejected: %s; using exact rates)@." msg;
          let sched = Schedule.build (Schedule.exact_of_float alloc) in
          Format.printf "%a@." Schedule.pp sched
      end;
      let top_usages =
        let all = Analysis.utilization problem alloc in
        List.filteri (fun i _ -> i < 5) all
      in
      Format.printf "top resource utilizations:@.";
      List.iter (fun u -> Format.printf "  %a@." Analysis.pp_usage u) top_usages;
      (match dot_file with
       | Some path ->
         Viz.save ~path problem alloc;
         Format.printf "allocation graph written to %s (render with: dot -Tsvg)@."
           path
       | None -> ());
      let stats = Dls_flowsim.Simulator.run ~periods problem alloc in
      Format.printf
        "flow-level simulation over %d periods: efficiency %.4f (late: %d, stalled: %d)@."
        periods
        (Dls_flowsim.Simulator.efficiency stats)
        stats.Dls_flowsim.Simulator.late_transfers
        stats.Dls_flowsim.Simulator.stalled_transfers
  end

let () =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let k =
    Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc:"Number of clusters.")
  in
  let app_fraction =
    Arg.(value & opt float 0.5
         & info [ "app-fraction" ] ~docv:"F"
             ~doc:"Probability that a cluster hosts an application.")
  in
  let heuristic =
    Arg.(value & opt string "lprg"
         & info [ "heuristic" ] ~docv:"H" ~doc:"One of g, lpr, lprg, lprr.")
  in
  let objective =
    Arg.(value & opt string "maxmin"
         & info [ "objective" ] ~docv:"OBJ" ~doc:"maxmin or sum.")
  in
  let show_schedule =
    Arg.(value & flag
         & info [ "schedule" ] ~doc:"Print the reconstructed periodic schedule.")
  in
  let periods =
    Arg.(value & opt int 20
         & info [ "periods" ] ~docv:"N" ~doc:"Simulated periods for the check.")
  in
  let platform_file =
    Arg.(value & opt (some string) None
         & info [ "platform" ] ~docv:"FILE"
             ~doc:"Load the platform from a dls-platform file instead of generating one.")
  in
  let dump_platform =
    Arg.(value & opt (some string) None
         & info [ "dump-platform" ] ~docv:"FILE"
             ~doc:"Write the platform in dls-platform format before solving.")
  in
  let dot_file =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"FILE"
             ~doc:"Write the allocation as a Graphviz digraph.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "dls_solve" ~version:"1.0.0"
         ~doc:"Solve one divisible-load platform and inspect the result.")
      Term.(const run $ seed $ k $ app_fraction $ heuristic $ objective
            $ show_schedule $ periods $ platform_file $ dump_platform $ dot_file)
  in
  exit (Cmd.eval cmd)
