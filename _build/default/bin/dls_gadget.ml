(* Explore the NP-completeness reduction of Section 4 on any graph.

   Takes a named graph (petersen, cycle N, path N, complete N, gnp N P)
   or an edge-list file (one "u v" pair per line, 0-based), builds the
   STEADY-STATE-DIVISIBLE-LOAD gadget, and reports: the exact maximum
   independent set, every heuristic's throughput with its extracted
   independent set, the exact MIP optimum when affordable, and the
   fractional LP bound. *)

open Cmdliner
module G = Dls_graph.Graph
module Mis = Dls_graph.Mis
module Prng = Dls_util.Prng
open Dls_core

let parse_edge_list path =
  let ic = open_in path in
  let edges = ref [] in
  let max_node = ref (-1) in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = String.trim (input_line ic) in
          if line <> "" && line.[0] <> '#' then begin
            match
              String.split_on_char ' ' line |> List.filter (( <> ) "")
              |> List.map int_of_string_opt
            with
            | [ Some u; Some v ] ->
              edges := (u, v) :: !edges;
              max_node := Stdlib.max !max_node (Stdlib.max u v)
            | _ -> failwith ("bad edge line: " ^ line)
          end
        done;
        assert false
      with
      | End_of_file -> G.create ~n:(!max_node + 1) ~edges:(List.rev !edges))

let parse_graph_spec spec seed =
  match String.split_on_char ' ' spec |> List.filter (( <> ) "") with
  | [ "petersen" ] -> G.petersen ()
  | [ "cycle"; n ] -> G.cycle (int_of_string n)
  | [ "path"; n ] -> G.path_graph (int_of_string n)
  | [ "complete"; n ] -> G.complete (int_of_string n)
  | [ "star"; n ] -> G.star (int_of_string n)
  | [ "gnp"; n; p ] ->
    let rng = Prng.create ~seed in
    G.gnp rng ~n:(int_of_string n) ~p:(float_of_string p)
  | _ -> failwith ("unknown graph spec: " ^ spec)

let run graph_spec edge_file seed with_mip =
  let graph =
    match edge_file with
    | Some path -> parse_edge_list path
    | None -> parse_graph_spec graph_spec seed
  in
  let n = G.num_nodes graph in
  Format.printf "graph: %d vertices, %d edges@." n (G.num_edges graph);
  if n > 62 then begin
    Format.eprintf "graphs above 62 vertices exceed the exact MIS solver@.";
    exit 2
  end;
  let mis = Mis.max_independent_set graph in
  Format.printf "maximum independent set: {%s} (size %d)@.@."
    (String.concat ", " (List.map string_of_int mis))
    (List.length mis);
  let problem = Reduction.build graph in
  Format.printf "gadget: %d clusters, %d routers, %d unit backbones@.@."
    (Problem.num_clusters problem)
    (Dls_platform.Platform.num_routers (Problem.platform problem))
    (Dls_platform.Platform.num_backbones (Problem.platform problem));
  List.iter
    (fun h ->
      match Heuristics.run ~rng:(Prng.create ~seed) h problem with
      | Error msg -> Format.printf "%-5s failed: %s@." (Heuristics.name h) msg
      | Ok alloc ->
        let set = Reduction.independent_set_of_allocation alloc in
        Format.printf "%-5s throughput %.3f  vertices {%s}  independent: %b@."
          (Heuristics.name h)
          (Allocation.sum_objective problem alloc)
          (String.concat ", " (List.map string_of_int set))
          (Mis.is_independent graph set))
    Heuristics.all;
  (match Heuristics.lp_bound ~objective:Lp_relax.Maxmin problem with
   | Ok v -> Format.printf "%-5s %.3f (fractional connections)@." "LP" v
   | Error msg -> Format.printf "LP failed: %s@." msg);
  if with_mip then begin
    match Mip.solve ~objective:Lp_relax.Maxmin problem with
    | Ok stats ->
      Format.printf "%-5s %.3f in %d nodes (must equal the MIS size: %b)@." "MIP"
        stats.Mip.objective_value stats.Mip.nodes
        (Float.abs (stats.Mip.objective_value -. float_of_int (List.length mis))
         < 1e-6)
    | Error msg -> Format.printf "MIP: %s@." msg
  end

let () =
  let graph_spec =
    Arg.(value & opt string "petersen"
         & info [ "graph" ] ~docv:"SPEC"
             ~doc:
               "Named graph: petersen | cycle N | path N | complete N | star N \
                | gnp N P.")
  in
  let edge_file =
    Arg.(value & opt (some string) None
         & info [ "edges" ] ~docv:"FILE"
             ~doc:"Edge-list file (one 'u v' pair per line) instead of a named graph.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let with_mip =
    Arg.(value & flag
         & info [ "mip" ]
             ~doc:"Also compute the exact MIP optimum (exponential; small graphs only).")
  in
  let cmd =
    Cmd.v
      (Cmd.info "dls_gadget" ~version:"1.0.0"
         ~doc:"Explore the Section 4 NP-completeness gadget on a graph.")
      Term.(const run $ graph_spec $ edge_file $ seed $ with_mip)
  in
  exit (Cmd.eval cmd)
