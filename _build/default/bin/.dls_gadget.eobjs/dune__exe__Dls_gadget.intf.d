bin/dls_gadget.mli:
