bin/dls_gadget.ml: Allocation Arg Cmd Cmdliner Dls_core Dls_graph Dls_platform Dls_util Float Format Fun Heuristics List Lp_relax Mip Problem Reduction Stdlib String Term
