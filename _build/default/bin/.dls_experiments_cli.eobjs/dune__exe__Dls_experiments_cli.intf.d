bin/dls_experiments_cli.mli:
