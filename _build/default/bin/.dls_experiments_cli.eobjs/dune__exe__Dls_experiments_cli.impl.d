bin/dls_experiments_cli.ml: Arg Cmd Cmdliner Dls_experiments Dls_flowsim Format List Logs Logs_fmt Option Stdlib Term
