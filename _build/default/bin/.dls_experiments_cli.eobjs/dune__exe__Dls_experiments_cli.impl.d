bin/dls_experiments_cli.ml: Arg Cmd Cmdliner Dls_experiments Format Logs Logs_fmt Option Term
