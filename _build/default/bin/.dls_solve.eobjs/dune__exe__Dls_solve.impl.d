bin/dls_solve.ml: Allocation Analysis Arg Cmd Cmdliner Dls_core Dls_experiments Dls_flowsim Dls_platform Dls_util Fairness Format Heuristics List Lp_relax Problem Schedule Term Viz
