bin/dls_solve.mli:
