(* Tests for Dls_experiments: report rendering, the measurement unit,
   and tiny smoke runs of every figure/table generator. *)

module E = Dls_experiments
module Prng = Dls_util.Prng

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let sample_table =
  { E.Report.title = "t";
    header = [ "a"; "b" ];
    rows = [ [ "1"; "x,y" ]; [ "22"; "quo\"te" ] ] }

let test_report_csv () =
  let csv = E.Report.to_csv sample_table in
  Alcotest.(check string) "csv escaping" "a,b\n1,\"x,y\"\n22,\"quo\"\"te\"\n" csv

let test_report_pp_aligned () =
  let rendered = Format.asprintf "%a" E.Report.pp_table sample_table in
  Alcotest.(check bool) "contains title" true
    (String.length rendered > 0 && String.sub rendered 0 1 = "t");
  (* All data rows must share the same width. *)
  let lines =
    List.filter (fun l -> String.length l > 0 && l.[0] = '|')
      (String.split_on_char '\n' rendered)
  in
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (match widths with [] -> false | w :: rest -> List.for_all (( = ) w) rest)

let test_report_write_csv () =
  let path = Filename.temp_file "dls_report" ".csv" in
  E.Report.write_csv ~path sample_table;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header row" "a,b" line

let test_cell_float () =
  Alcotest.(check string) "4 digits" "0.3333" (E.Report.cell_float (1.0 /. 3.0));
  Alcotest.(check string) "nan" "nan" (E.Report.cell_float Float.nan)

(* ------------------------------------------------------------------ *)
(* Measure                                                             *)
(* ------------------------------------------------------------------ *)

let test_sample_problem_properties () =
  let rng = Prng.create ~seed:21 in
  for _ = 1 to 10 do
    let pr = E.Measure.sample_problem rng ~k:9 in
    Alcotest.(check int) "k clusters" 9 (Dls_core.Problem.num_clusters pr);
    let active = Dls_core.Problem.active pr in
    Alcotest.(check bool) "at least one app" true (List.length active >= 1);
    (* Default workload: sources are pure data holders (speed 0). *)
    List.iter
      (fun k ->
        Alcotest.(check (float 0.0)) "source speed 0" 0.0
          (Dls_platform.Platform.speed (Dls_core.Problem.platform pr) k))
      active
  done

let test_sample_problem_literal_setting () =
  let rng = Prng.create ~seed:22 in
  let pr =
    E.Measure.sample_problem ~app_fraction:1.0 ~source_speed_factor:1.0 rng ~k:6
  in
  Alcotest.(check int) "all active" 6 (List.length (Dls_core.Problem.active pr));
  (* The flat-line check of DESIGN.md section 2.2: all-local is optimal,
     and G reaches the LP bound exactly. *)
  match Dls_core.Heuristics.lp_bound ~objective:Dls_core.Lp_relax.Maxmin pr with
  | Error msg -> Alcotest.failf "LP failed: %s" msg
  | Ok bound ->
    Alcotest.(check (float 1e-6)) "trivial optimum" 100.0 bound;
    let g = Dls_core.Greedy.solve pr in
    Alcotest.(check (float 1e-6)) "G reaches it" 100.0
      (Dls_core.Allocation.maxmin_objective pr g)

let test_evaluate_consistency () =
  let rng = Prng.create ~seed:23 in
  let pr = E.Measure.sample_problem rng ~k:6 in
  match E.Measure.evaluate ~with_lprr:true ~rng pr with
  | Error msg -> Alcotest.failf "evaluate failed: %s" msg
  | Ok v ->
    Alcotest.(check bool) "LP sum >= LP maxmin" true
      (v.E.Measure.lp_sum >= v.E.Measure.lp_maxmin -. 1e-6);
    Alcotest.(check bool) "bounds dominate" true
      (v.E.Measure.g_maxmin <= v.E.Measure.lp_maxmin +. 1e-6
       && v.E.Measure.lprg_sum <= v.E.Measure.lp_sum *. (1.0 +. 1e-9) +. 1e-6
       && v.E.Measure.lpr_sum <= v.E.Measure.lprg_sum +. 1e-6);
    Alcotest.(check bool) "lprr present" true
      (v.E.Measure.lprr_sum <> None && v.E.Measure.time_lprr <> None);
    Alcotest.(check bool) "timings non-negative" true
      (v.E.Measure.time_lp >= 0.0 && v.E.Measure.time_g >= 0.0)

let test_time_measures () =
  let (), t = E.Measure.time (fun () -> Unix.sleepf 0.02) in
  Alcotest.(check bool) "time ~ 20ms" true (t >= 0.015 && t < 1.0)

(* ------------------------------------------------------------------ *)
(* Figure generators (tiny smoke runs)                                 *)
(* ------------------------------------------------------------------ *)

let test_fig5_smoke () =
  let rows = E.Fig5.run ~seed:31 ~ks:[ 4; 6 ] ~per_k:2 () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "ratios in [0, 1+eps]" true
        (r.E.Fig5.maxmin_lprg >= 0.0 && r.E.Fig5.maxmin_lprg <= 1.0 +. 1e-6
         && r.E.Fig5.sum_g >= 0.0 && r.E.Fig5.sum_g <= 1.0 +. 1e-6))
    rows;
  let table = E.Fig5.table rows in
  Alcotest.(check int) "table rows" 2 (List.length table.E.Report.rows)

let test_fig6_smoke () =
  let rows = E.Fig6.run ~seed:32 ~ks:[ 5 ] ~per_k:2 () in
  Alcotest.(check int) "one row" 1 (List.length rows);
  let r = List.hd rows in
  Alcotest.(check bool) "lprr ratio sane" true
    (r.E.Fig6.maxmin_lprr >= 0.0 && r.E.Fig6.maxmin_lprr <= 1.0 +. 1e-6)

let test_fig7_smoke () =
  let rows = E.Fig7.run ~seed:33 ~ks:[ 4; 6 ] ~per_k:1 ~lprr_max_k:4 () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let r4 = List.nth rows 0 and r6 = List.nth rows 1 in
  Alcotest.(check bool) "lprr only for small k" true
    (r4.E.Fig7.time_lprr <> None && r6.E.Fig7.time_lprr = None)

let test_aggregate_smoke () =
  let s = E.Aggregate.run ~seed:34 ~ks:[ 5 ] ~per_k:3 () in
  Alcotest.(check bool) "platforms counted" true (s.E.Aggregate.platforms > 0);
  Alcotest.(check bool) "LPRG >= LPR vs LP" true
    (s.E.Aggregate.lprg_over_lp_sum >= s.E.Aggregate.lpr_over_lp_sum -. 1e-9)

let test_table1_smoke () =
  let t = E.Table1.grid_table () in
  Alcotest.(check int) "seven parameters" 7 (List.length t.E.Report.rows);
  let stats = E.Table1.sample_stats ~seed:35 ~ks:[ 5 ] ~per_k:2 () in
  Alcotest.(check int) "one row" 1 (List.length stats);
  Alcotest.(check bool) "connected platforms have >= k-1 backbones" true
    ((List.hd stats).E.Table1.mean_backbones >= 4.0)

(* ------------------------------------------------------------------ *)
(* Ablations and adaptivity (smoke)                                    *)
(* ------------------------------------------------------------------ *)

let test_ablation_network_tight_smoke () =
  let rows = E.Ablation.network_tight ~seed:41 ~ks:[ 5 ] ~per_k:3 () in
  Alcotest.(check int) "one row" 1 (List.length rows);
  let r = List.hd rows in
  Alcotest.(check bool) "LPRG SUM >= LPR SUM" true
    (r.E.Ablation.sum_lprg >= r.E.Ablation.sum_lpr -. 1e-6);
  Alcotest.(check bool) "ratios bounded" true
    (r.E.Ablation.sum_g <= 1.0 +. 1e-6 && r.E.Ablation.maxmin_g <= 1.0 +. 1e-6)

let test_ablation_workload_smoke () =
  let rows = E.Ablation.workload ~seed:42 ~k:6 ~per_setting:2 () in
  Alcotest.(check int) "five settings" 5 (List.length rows);
  (* The literal reading (first row) is the trivial flat line. *)
  let literal = List.hd rows in
  Alcotest.(check (float 1e-6)) "flat line" 1.0 literal.E.Ablation.maxmin_g_ratio

let test_adaptivity_smoke () =
  match E.Adaptivity.run ~seed:9 ~k:8 ~periods:6 () with
  | Error msg -> Alcotest.failf "adaptivity failed: %s" msg
  | Ok trace ->
    Alcotest.(check int) "six periods" 6 (List.length trace);
    List.iter
      (fun tp ->
        Alcotest.(check bool)
          (Printf.sprintf "adaptive >= static at period %d" tp.E.Adaptivity.period)
          true
          (tp.E.Adaptivity.adaptive_value >= tp.E.Adaptivity.static_value -. 1e-6))
      trace

let test_sweep_streaming () =
  let rows = ref [] in
  let completed, skipped =
    E.Sweep.run ~seed:51 ~ks:[ 4; 6 ] ~per_k:2
      ~on_record:(fun r -> rows := r :: !rows)
      ()
  in
  Alcotest.(check int) "all evaluated" 4 completed;
  Alcotest.(check int) "none skipped" 0 skipped;
  Alcotest.(check int) "callback saw all" 4 (List.length !rows);
  (* Records arrive in campaign order. *)
  let indices = List.rev_map (fun r -> r.E.Sweep.index) !rows in
  Alcotest.(check (list int)) "ordered" [ 0; 1; 2; 3 ] indices;
  (* CSV rows have as many fields as the header. *)
  let fields s = List.length (String.split_on_char ',' s) in
  List.iter
    (fun r ->
      Alcotest.(check int) "csv arity" (fields E.Sweep.csv_header)
        (fields (E.Sweep.to_csv_row r)))
    !rows

let test_sweep_deterministic () =
  (* Drop the five trailing wall-clock columns: everything else must be
     bit-identical across runs with the same seed. *)
  let strip_timings row =
    let fields = String.split_on_char ',' row in
    let n = List.length fields in
    List.filteri (fun i _ -> i < n - 5) fields |> String.concat ","
  in
  let capture () =
    let rows = ref [] in
    ignore
      (E.Sweep.run ~seed:52 ~ks:[ 5 ] ~per_k:3
         ~on_record:(fun r -> rows := strip_timings (E.Sweep.to_csv_row r) :: !rows)
         ());
    List.rev !rows
  in
  Alcotest.(check (list string)) "same seed, same rows" (capture ()) (capture ())

let test_deliverable_fraction () =
  let rng = Prng.create ~seed:43 in
  let pr = E.Measure.sample_problem rng ~k:5 in
  let a = Dls_core.Greedy.solve pr in
  Alcotest.(check (float 1e-9)) "feasible plan delivers fully" 1.0
    (E.Adaptivity.deliverable_fraction pr a);
  (* Degrade every speed and bandwidth to 30%: at most 30% deliverable. *)
  let p = Dls_core.Problem.platform pr in
  let module P = Dls_platform.Platform in
  let clusters =
    Array.init (P.num_clusters p) (fun k ->
        let c = P.cluster p k in
        { c with P.speed = c.P.speed *. 0.3 })
  in
  let backbones =
    Array.init (P.num_backbones p) (fun i ->
        let b = P.backbone p i in
        { b with P.bw = b.P.bw *. 0.3 })
  in
  let degraded =
    Dls_core.Problem.make
      (P.make ~clusters ~topology:(P.topology p) ~backbones)
      ~payoffs:(Array.init (P.num_clusters p) (Dls_core.Problem.payoff pr))
  in
  let f = E.Adaptivity.deliverable_fraction degraded a in
  Alcotest.(check bool) "fraction shrinks to <= 0.3" true (f <= 0.3 +. 1e-6);
  Alcotest.(check bool) "fraction positive" true (f > 0.0)

(* ------------------------------------------------------------------ *)
(* Campaign: determinism, crash/resume, codecs, goldens                *)
(* ------------------------------------------------------------------ *)

module C = E.Campaign
module G = Dls_platform.Generator

(* measure_time = false zeroes every wall-clock field, so log lines are
   byte-reproducible — the only nondeterministic inputs are gone. *)
let small_config =
  { C.default_config with
    C.seed = 71; ks = [ 4; 6 ]; per_k = 3; measure_time = false }

let run_lines ?domains ?chunk ?shards ?shard ?resume ?out config =
  let lines = ref [] in
  match
    C.run ?domains ?chunk ?shards ?shard ?resume ?out
      ~on_entry:(fun e -> lines := C.entry_to_line e :: !lines)
      config
  with
  | Ok s -> (s, List.rev !lines)
  | Error msg -> Alcotest.failf "campaign run failed: %s" msg

let sort_by_index lines =
  List.map snd
    (List.sort compare
       (List.map
          (fun line ->
            match C.entry_of_line line with
            | Ok e -> (C.entry_index e, line)
            | Error msg -> Alcotest.failf "unparseable log line: %s" msg)
          lines))

let read_file path = In_channel.with_open_bin path In_channel.input_all

let file_lines path =
  List.filter (fun l -> l <> "") (String.split_on_char '\n' (read_file path))

let test_campaign_deterministic_across_domains () =
  let _, one = run_lines ~domains:1 small_config in
  let _, eight = run_lines ~domains:8 ~chunk:2 small_config in
  Alcotest.(check int) "all evaluated" (C.total small_config) (List.length one);
  (* Single shard: both runs deliver in index order — the streams must
     already be byte-identical line for line. *)
  Alcotest.(check (list string)) "1 vs 8 domains byte-identical" one eight

let test_campaign_deterministic_across_shards () =
  let out1 = Filename.temp_file "dls_campaign" ".jsonl" in
  let out4 = Filename.temp_file "dls_campaign" ".jsonl" in
  let s1, _ = run_lines ~shards:1 ~out:out1 small_config in
  let s4, _ = run_lines ~shards:4 ~chunk:2 ~out:out4 small_config in
  Alcotest.(check int) "shards=1 completes" (C.total small_config) s1.C.s_completed;
  Alcotest.(check int) "shards=4 completes" (C.total small_config) s4.C.s_completed;
  let l1 = sort_by_index (file_lines out1) in
  let l4 = sort_by_index (file_lines out4) in
  Alcotest.(check (list string)) "1 vs 4 shards byte-identical after sort" l1 l4;
  List.iter Sys.remove
    [ out1; out4; C.manifest_path out1; C.manifest_path out4 ]

let test_campaign_single_shard_runs_its_slice () =
  let _, lines = run_lines ~shards:3 ~shard:1 small_config in
  let indices =
    List.map
      (fun l ->
        match C.entry_of_line l with
        | Ok e -> C.entry_index e
        | Error msg -> Alcotest.failf "bad line: %s" msg)
      lines
  in
  Alcotest.(check (list int)) "only indices = 1 mod 3" [ 1; 4 ] indices

let test_campaign_crash_resume () =
  let _, baseline = run_lines small_config in
  let baseline = sort_by_index baseline in
  let out = Filename.temp_file "dls_campaign" ".jsonl" in
  (* Crash mid-campaign: the sink raises after the third durable entry
     (each line is already written when on_entry fires). *)
  let exception Simulated_crash in
  let count = ref 0 in
  (try
     ignore
       (C.run ~domains:2 ~chunk:2 ~out
          ~on_entry:(fun _ ->
            incr count;
            if !count = 3 then raise Simulated_crash)
          small_config)
   with Simulated_crash -> ());
  (* And the final append was torn mid-line by the dying process. *)
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 out in
  output_string oc "{\"type\":\"record\",\"index\":4,\"par";
  close_out oc;
  let s, _ = run_lines ~resume:true ~out small_config in
  Alcotest.(check bool) "some entries replayed" true (s.C.s_replayed >= 3);
  Alcotest.(check bool) "frontier re-evaluated" true (s.C.s_evaluated >= 1);
  Alcotest.(check int) "campaign complete" (C.total small_config) s.C.s_completed;
  let merged = sort_by_index (file_lines out) in
  Alcotest.(check (list string)) "merged log equals uninterrupted run"
    baseline merged;
  List.iter Sys.remove [ out; C.manifest_path out ]

let test_campaign_resume_rejects_mismatch () =
  let out = Filename.temp_file "dls_campaign" ".jsonl" in
  let _ = run_lines ~out small_config in
  (match
     C.run ~resume:true ~out { small_config with C.seed = 72 }
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "resume accepted a different campaign config");
  List.iter Sys.remove [ out; C.manifest_path out ]

let test_campaign_corrupt_middle_rejected () =
  let out = Filename.temp_file "dls_campaign" ".jsonl" in
  let _ = run_lines ~out small_config in
  (* Smash a line in the middle of the log: resume must refuse rather
     than silently drop completed work. *)
  let lines = file_lines out in
  let oc = open_out out in
  List.iteri
    (fun i l ->
      output_string oc (if i = 2 then "{\"type\":zzz}" else l);
      output_char oc '\n')
    lines;
  close_out oc;
  (match C.run ~resume:true ~out small_config with
   | Error msg ->
     Alcotest.(check bool) "mentions corruption" true
       (String.length msg > 0)
   | Ok _ -> Alcotest.fail "resume accepted a corrupt mid-log entry");
  List.iter Sys.remove [ out; C.manifest_path out ]

(* --- QCheck codecs ------------------------------------------------- *)

let gen_finite = QCheck2.Gen.float_range (-1e9) 1e9

let gen_topology =
  QCheck2.Gen.(
    oneof
      [ return G.Erdos_renyi;
        map2
          (fun alpha beta -> G.Waxman { alpha; beta })
          (float_range 0.0 1.0) (float_range 0.0 1.0);
        map (fun m -> G.Barabasi_albert { m }) (int_range 1 10) ])

let gen_params =
  QCheck2.Gen.(
    let* k = int_range 1 99 in
    let* topology_model = gen_topology in
    let* connectivity = float_range 0.0 1.0 in
    let* heterogeneity = float_range 0.0 0.99 in
    let* mean_g = gen_finite in
    let* mean_bw = gen_finite in
    let* mean_maxcon = gen_finite in
    let* speed = gen_finite in
    let* speed_heterogeneity = float_range 0.0 0.99 in
    return
      { G.k; topology_model; connectivity; heterogeneity; mean_g; mean_bw;
        mean_maxcon; speed; speed_heterogeneity })

let gen_counters =
  QCheck2.Gen.(
    let* solves = int_range 0 1_000_000 in
    let* warm_starts = int_range 0 1_000_000 in
    let* cold_starts = int_range 0 1_000_000 in
    let* pivots = int_range 0 1_000_000 in
    let* reinversions = int_range 0 1_000_000 in
    let* bland_activations = int_range 0 1_000_000 in
    let* wall_clock = float_range 0.0 1e6 in
    return
      { Dls_lp.Revised_simplex.solves; warm_starts; cold_starts; pivots;
        reinversions; bland_activations; wall_clock })

let gen_values =
  QCheck2.Gen.(
    let* lp_sum = gen_finite in
    let* lp_maxmin = gen_finite in
    let* g_sum = gen_finite in
    let* g_maxmin = gen_finite in
    let* lpr_sum = gen_finite in
    let* lpr_maxmin = gen_finite in
    let* lprg_sum = gen_finite in
    let* lprg_maxmin = gen_finite in
    let* lprr_sum = option gen_finite in
    let* lprr_maxmin = option gen_finite in
    let* lprr_counters = option gen_counters in
    let* time_lp = float_range 0.0 1e4 in
    let* time_g = float_range 0.0 1e4 in
    let* time_lpr = float_range 0.0 1e4 in
    let* time_lprg = float_range 0.0 1e4 in
    let* time_lprr = option (float_range 0.0 1e4) in
    return
      { E.Measure.lp_sum; lp_maxmin; g_sum; g_maxmin; lpr_sum; lpr_maxmin;
        lprg_sum; lprg_maxmin; lprr_sum; lprr_maxmin; lprr_counters; time_lp;
        time_g; time_lpr; time_lprg; time_lprr })

let gen_entry =
  QCheck2.Gen.(
    let record =
      let* index = int_range 0 1_000_000 in
      let* params = gen_params in
      let* active_apps = int_range 0 99 in
      let* values = gen_values in
      return (C.Record { C.index; params; active_apps; values })
    in
    let skipped =
      let* index = int_range 0 1_000_000 in
      let* reason = string_size ~gen:printable (int_range 0 40) in
      return (C.Skipped { index; reason })
    in
    oneof [ record; skipped ])

let prop_entry_roundtrip =
  QCheck2.Test.make ~name:"JSONL entry decode inverts encode" ~count:300
    gen_entry
    (fun e -> C.entry_of_line (C.entry_to_line e) = Ok e)

let prop_entry_rejects_torn =
  QCheck2.Test.make ~name:"JSONL decoder rejects torn lines" ~count:300
    QCheck2.Gen.(pair gen_entry (float_range 0.0 1.0))
    (fun (e, frac) ->
      let line = C.entry_to_line e in
      let cut = int_of_float (frac *. float_of_int (String.length line)) in
      let cut = Stdlib.min cut (String.length line - 1) in
      match C.entry_of_line (String.sub line 0 cut) with
      | Error _ -> true
      | Ok _ -> false)

let gen_config =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    let* ks = list_size (int_range 1 6) (int_range 1 99) in
    let* per_k = int_range 0 50 in
    let* with_lprr = bool in
    let* lprr_max_k = option (int_range 1 99) in
    let* measure_time = bool in
    return { C.seed; ks; per_k; with_lprr; lprr_max_k; measure_time })

let prop_manifest_roundtrip =
  QCheck2.Test.make ~name:"manifest decode inverts encode" ~count:300
    QCheck2.Gen.(
      let* m_config = gen_config in
      let* m_total = int_range 0 1_000_000 in
      let* m_completed = int_range 0 1_000_000 in
      return { C.m_config; m_total; m_completed })
    (fun m -> C.manifest_of_string (C.manifest_to_string m) = Ok m)

let prop_manifest_rejects_torn =
  QCheck2.Test.make ~name:"manifest decoder rejects torn input" ~count:100
    QCheck2.Gen.(pair gen_config (float_range 0.0 1.0))
    (fun (config, frac) ->
      let s =
        C.manifest_to_string
          { C.m_config = config; m_total = 10; m_completed = 3 }
      in
      let cut = int_of_float (frac *. float_of_int (String.length s)) in
      let cut = Stdlib.min cut (String.length s - 1) in
      match C.manifest_of_string (String.sub s 0 cut) with
      | Error _ -> true
      | Ok _ -> false)

(* --- Golden outputs ------------------------------------------------ *)

(* Set DLS_UPDATE_GOLDEN=<abs dir> to rewrite the expected files instead
   of comparing (e.g. DLS_UPDATE_GOLDEN=$PWD/test/golden dune runtest). *)
let golden_check name actual =
  match Sys.getenv_opt "DLS_UPDATE_GOLDEN" with
  | Some dir ->
    Out_channel.with_open_bin (Filename.concat dir name) (fun oc ->
        Out_channel.output_string oc actual)
  | None ->
    Alcotest.(check string) name (read_file (Filename.concat "golden" name))
      actual

let fig5_golden_table =
  lazy (E.Fig5.table (E.Fig5.run ~seed:31 ~ks:[ 4; 6 ] ~per_k:2 ()))

let test_golden_table1_pp () =
  golden_check "table1_grid.expected"
    (Format.asprintf "%a" E.Report.pp_table (E.Table1.grid_table ()))

let test_golden_table1_csv () =
  let path = Filename.temp_file "dls_golden" ".csv" in
  E.Report.write_csv ~path (E.Table1.grid_table ());
  let written = read_file path in
  Sys.remove path;
  golden_check "table1_grid_csv.expected" written

let test_golden_fig5_pp () =
  golden_check "fig5_small.expected"
    (Format.asprintf "%a" E.Report.pp_table (Lazy.force fig5_golden_table))

let test_golden_fig5_csv () =
  let path = Filename.temp_file "dls_golden" ".csv" in
  E.Report.write_csv ~path (Lazy.force fig5_golden_table);
  let written = read_file path in
  Sys.remove path;
  golden_check "fig5_small_csv.expected" written

let () =
  Alcotest.run "dls_experiments"
    [ ( "report",
        [ Alcotest.test_case "csv" `Quick test_report_csv;
          Alcotest.test_case "aligned" `Quick test_report_pp_aligned;
          Alcotest.test_case "write csv" `Quick test_report_write_csv;
          Alcotest.test_case "cell float" `Quick test_cell_float ] );
      ( "measure",
        [ Alcotest.test_case "sampled problems" `Quick test_sample_problem_properties;
          Alcotest.test_case "literal setting is trivial" `Quick
            test_sample_problem_literal_setting;
          Alcotest.test_case "evaluate" `Quick test_evaluate_consistency;
          Alcotest.test_case "time" `Quick test_time_measures ] );
      ( "figures",
        [ Alcotest.test_case "fig5" `Quick test_fig5_smoke;
          Alcotest.test_case "fig6" `Quick test_fig6_smoke;
          Alcotest.test_case "fig7" `Quick test_fig7_smoke;
          Alcotest.test_case "aggregate" `Quick test_aggregate_smoke;
          Alcotest.test_case "table1" `Quick test_table1_smoke ] );
      ( "ablation-adaptivity",
        [ Alcotest.test_case "network tight" `Quick test_ablation_network_tight_smoke;
          Alcotest.test_case "workload" `Quick test_ablation_workload_smoke;
          Alcotest.test_case "adaptivity" `Quick test_adaptivity_smoke;
          Alcotest.test_case "deliverable fraction" `Quick test_deliverable_fraction ] );
      ( "sweep",
        [ Alcotest.test_case "streaming" `Quick test_sweep_streaming;
          Alcotest.test_case "deterministic" `Quick test_sweep_deterministic ] );
      ( "campaign",
        [ Alcotest.test_case "deterministic across domains" `Quick
            test_campaign_deterministic_across_domains;
          Alcotest.test_case "deterministic across shards" `Quick
            test_campaign_deterministic_across_shards;
          Alcotest.test_case "single shard slice" `Quick
            test_campaign_single_shard_runs_its_slice;
          Alcotest.test_case "crash and resume" `Quick test_campaign_crash_resume;
          Alcotest.test_case "resume rejects config mismatch" `Quick
            test_campaign_resume_rejects_mismatch;
          Alcotest.test_case "corrupt mid-log rejected" `Quick
            test_campaign_corrupt_middle_rejected ] );
      ( "campaign-codec-prop",
        List.map QCheck_alcotest.to_alcotest
          [ prop_entry_roundtrip; prop_entry_rejects_torn;
            prop_manifest_roundtrip; prop_manifest_rejects_torn ] );
      ( "golden",
        [ Alcotest.test_case "table1 pp" `Quick test_golden_table1_pp;
          Alcotest.test_case "table1 csv" `Quick test_golden_table1_csv;
          Alcotest.test_case "fig5 pp" `Quick test_golden_fig5_pp;
          Alcotest.test_case "fig5 csv" `Quick test_golden_fig5_csv ] ) ]
