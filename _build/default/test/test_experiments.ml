(* Tests for Dls_experiments: report rendering, the measurement unit,
   and tiny smoke runs of every figure/table generator. *)

module E = Dls_experiments
module Prng = Dls_util.Prng

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let sample_table =
  { E.Report.title = "t";
    header = [ "a"; "b" ];
    rows = [ [ "1"; "x,y" ]; [ "22"; "quo\"te" ] ] }

let test_report_csv () =
  let csv = E.Report.to_csv sample_table in
  Alcotest.(check string) "csv escaping" "a,b\n1,\"x,y\"\n22,\"quo\"\"te\"\n" csv

let test_report_pp_aligned () =
  let rendered = Format.asprintf "%a" E.Report.pp_table sample_table in
  Alcotest.(check bool) "contains title" true
    (String.length rendered > 0 && String.sub rendered 0 1 = "t");
  (* All data rows must share the same width. *)
  let lines =
    List.filter (fun l -> String.length l > 0 && l.[0] = '|')
      (String.split_on_char '\n' rendered)
  in
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (match widths with [] -> false | w :: rest -> List.for_all (( = ) w) rest)

let test_report_write_csv () =
  let path = Filename.temp_file "dls_report" ".csv" in
  E.Report.write_csv ~path sample_table;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header row" "a,b" line

let test_cell_float () =
  Alcotest.(check string) "4 digits" "0.3333" (E.Report.cell_float (1.0 /. 3.0));
  Alcotest.(check string) "nan" "nan" (E.Report.cell_float Float.nan)

(* ------------------------------------------------------------------ *)
(* Measure                                                             *)
(* ------------------------------------------------------------------ *)

let test_sample_problem_properties () =
  let rng = Prng.create ~seed:21 in
  for _ = 1 to 10 do
    let pr = E.Measure.sample_problem rng ~k:9 in
    Alcotest.(check int) "k clusters" 9 (Dls_core.Problem.num_clusters pr);
    let active = Dls_core.Problem.active pr in
    Alcotest.(check bool) "at least one app" true (List.length active >= 1);
    (* Default workload: sources are pure data holders (speed 0). *)
    List.iter
      (fun k ->
        Alcotest.(check (float 0.0)) "source speed 0" 0.0
          (Dls_platform.Platform.speed (Dls_core.Problem.platform pr) k))
      active
  done

let test_sample_problem_literal_setting () =
  let rng = Prng.create ~seed:22 in
  let pr =
    E.Measure.sample_problem ~app_fraction:1.0 ~source_speed_factor:1.0 rng ~k:6
  in
  Alcotest.(check int) "all active" 6 (List.length (Dls_core.Problem.active pr));
  (* The flat-line check of DESIGN.md section 2.2: all-local is optimal,
     and G reaches the LP bound exactly. *)
  match Dls_core.Heuristics.lp_bound ~objective:Dls_core.Lp_relax.Maxmin pr with
  | Error msg -> Alcotest.failf "LP failed: %s" msg
  | Ok bound ->
    Alcotest.(check (float 1e-6)) "trivial optimum" 100.0 bound;
    let g = Dls_core.Greedy.solve pr in
    Alcotest.(check (float 1e-6)) "G reaches it" 100.0
      (Dls_core.Allocation.maxmin_objective pr g)

let test_evaluate_consistency () =
  let rng = Prng.create ~seed:23 in
  let pr = E.Measure.sample_problem rng ~k:6 in
  match E.Measure.evaluate ~with_lprr:true ~rng pr with
  | Error msg -> Alcotest.failf "evaluate failed: %s" msg
  | Ok v ->
    Alcotest.(check bool) "LP sum >= LP maxmin" true
      (v.E.Measure.lp_sum >= v.E.Measure.lp_maxmin -. 1e-6);
    Alcotest.(check bool) "bounds dominate" true
      (v.E.Measure.g_maxmin <= v.E.Measure.lp_maxmin +. 1e-6
       && v.E.Measure.lprg_sum <= v.E.Measure.lp_sum *. (1.0 +. 1e-9) +. 1e-6
       && v.E.Measure.lpr_sum <= v.E.Measure.lprg_sum +. 1e-6);
    Alcotest.(check bool) "lprr present" true
      (v.E.Measure.lprr_sum <> None && v.E.Measure.time_lprr <> None);
    Alcotest.(check bool) "timings non-negative" true
      (v.E.Measure.time_lp >= 0.0 && v.E.Measure.time_g >= 0.0)

let test_time_measures () =
  let (), t = E.Measure.time (fun () -> Unix.sleepf 0.02) in
  Alcotest.(check bool) "time ~ 20ms" true (t >= 0.015 && t < 1.0)

(* ------------------------------------------------------------------ *)
(* Figure generators (tiny smoke runs)                                 *)
(* ------------------------------------------------------------------ *)

let test_fig5_smoke () =
  let rows = E.Fig5.run ~seed:31 ~ks:[ 4; 6 ] ~per_k:2 () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "ratios in [0, 1+eps]" true
        (r.E.Fig5.maxmin_lprg >= 0.0 && r.E.Fig5.maxmin_lprg <= 1.0 +. 1e-6
         && r.E.Fig5.sum_g >= 0.0 && r.E.Fig5.sum_g <= 1.0 +. 1e-6))
    rows;
  let table = E.Fig5.table rows in
  Alcotest.(check int) "table rows" 2 (List.length table.E.Report.rows)

let test_fig6_smoke () =
  let rows = E.Fig6.run ~seed:32 ~ks:[ 5 ] ~per_k:2 () in
  Alcotest.(check int) "one row" 1 (List.length rows);
  let r = List.hd rows in
  Alcotest.(check bool) "lprr ratio sane" true
    (r.E.Fig6.maxmin_lprr >= 0.0 && r.E.Fig6.maxmin_lprr <= 1.0 +. 1e-6)

let test_fig7_smoke () =
  let rows = E.Fig7.run ~seed:33 ~ks:[ 4; 6 ] ~per_k:1 ~lprr_max_k:4 () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let r4 = List.nth rows 0 and r6 = List.nth rows 1 in
  Alcotest.(check bool) "lprr only for small k" true
    (r4.E.Fig7.time_lprr <> None && r6.E.Fig7.time_lprr = None)

let test_aggregate_smoke () =
  let s = E.Aggregate.run ~seed:34 ~ks:[ 5 ] ~per_k:3 () in
  Alcotest.(check bool) "platforms counted" true (s.E.Aggregate.platforms > 0);
  Alcotest.(check bool) "LPRG >= LPR vs LP" true
    (s.E.Aggregate.lprg_over_lp_sum >= s.E.Aggregate.lpr_over_lp_sum -. 1e-9)

let test_table1_smoke () =
  let t = E.Table1.grid_table () in
  Alcotest.(check int) "seven parameters" 7 (List.length t.E.Report.rows);
  let stats = E.Table1.sample_stats ~seed:35 ~ks:[ 5 ] ~per_k:2 () in
  Alcotest.(check int) "one row" 1 (List.length stats);
  Alcotest.(check bool) "connected platforms have >= k-1 backbones" true
    ((List.hd stats).E.Table1.mean_backbones >= 4.0)

(* ------------------------------------------------------------------ *)
(* Ablations and adaptivity (smoke)                                    *)
(* ------------------------------------------------------------------ *)

let test_ablation_network_tight_smoke () =
  let rows = E.Ablation.network_tight ~seed:41 ~ks:[ 5 ] ~per_k:3 () in
  Alcotest.(check int) "one row" 1 (List.length rows);
  let r = List.hd rows in
  Alcotest.(check bool) "LPRG SUM >= LPR SUM" true
    (r.E.Ablation.sum_lprg >= r.E.Ablation.sum_lpr -. 1e-6);
  Alcotest.(check bool) "ratios bounded" true
    (r.E.Ablation.sum_g <= 1.0 +. 1e-6 && r.E.Ablation.maxmin_g <= 1.0 +. 1e-6)

let test_ablation_workload_smoke () =
  let rows = E.Ablation.workload ~seed:42 ~k:6 ~per_setting:2 () in
  Alcotest.(check int) "five settings" 5 (List.length rows);
  (* The literal reading (first row) is the trivial flat line. *)
  let literal = List.hd rows in
  Alcotest.(check (float 1e-6)) "flat line" 1.0 literal.E.Ablation.maxmin_g_ratio

let test_adaptivity_smoke () =
  match E.Adaptivity.run ~seed:9 ~k:8 ~periods:6 () with
  | Error msg -> Alcotest.failf "adaptivity failed: %s" msg
  | Ok trace ->
    Alcotest.(check int) "six periods" 6 (List.length trace);
    List.iter
      (fun tp ->
        Alcotest.(check bool)
          (Printf.sprintf "adaptive >= static at period %d" tp.E.Adaptivity.period)
          true
          (tp.E.Adaptivity.adaptive_value >= tp.E.Adaptivity.static_value -. 1e-6))
      trace

let test_sweep_streaming () =
  let rows = ref [] in
  let completed, skipped =
    E.Sweep.run ~seed:51 ~ks:[ 4; 6 ] ~per_k:2
      ~on_record:(fun r -> rows := r :: !rows)
      ()
  in
  Alcotest.(check int) "all evaluated" 4 completed;
  Alcotest.(check int) "none skipped" 0 skipped;
  Alcotest.(check int) "callback saw all" 4 (List.length !rows);
  (* Records arrive in campaign order. *)
  let indices = List.rev_map (fun r -> r.E.Sweep.index) !rows in
  Alcotest.(check (list int)) "ordered" [ 0; 1; 2; 3 ] indices;
  (* CSV rows have as many fields as the header. *)
  let fields s = List.length (String.split_on_char ',' s) in
  List.iter
    (fun r ->
      Alcotest.(check int) "csv arity" (fields E.Sweep.csv_header)
        (fields (E.Sweep.to_csv_row r)))
    !rows

let test_sweep_deterministic () =
  (* Drop the five trailing wall-clock columns: everything else must be
     bit-identical across runs with the same seed. *)
  let strip_timings row =
    let fields = String.split_on_char ',' row in
    let n = List.length fields in
    List.filteri (fun i _ -> i < n - 5) fields |> String.concat ","
  in
  let capture () =
    let rows = ref [] in
    ignore
      (E.Sweep.run ~seed:52 ~ks:[ 5 ] ~per_k:3
         ~on_record:(fun r -> rows := strip_timings (E.Sweep.to_csv_row r) :: !rows)
         ());
    List.rev !rows
  in
  Alcotest.(check (list string)) "same seed, same rows" (capture ()) (capture ())

let test_deliverable_fraction () =
  let rng = Prng.create ~seed:43 in
  let pr = E.Measure.sample_problem rng ~k:5 in
  let a = Dls_core.Greedy.solve pr in
  Alcotest.(check (float 1e-9)) "feasible plan delivers fully" 1.0
    (E.Adaptivity.deliverable_fraction pr a);
  (* Degrade every speed and bandwidth to 30%: at most 30% deliverable. *)
  let p = Dls_core.Problem.platform pr in
  let module P = Dls_platform.Platform in
  let clusters =
    Array.init (P.num_clusters p) (fun k ->
        let c = P.cluster p k in
        { c with P.speed = c.P.speed *. 0.3 })
  in
  let backbones =
    Array.init (P.num_backbones p) (fun i ->
        let b = P.backbone p i in
        { b with P.bw = b.P.bw *. 0.3 })
  in
  let degraded =
    Dls_core.Problem.make
      (P.make ~clusters ~topology:(P.topology p) ~backbones)
      ~payoffs:(Array.init (P.num_clusters p) (Dls_core.Problem.payoff pr))
  in
  let f = E.Adaptivity.deliverable_fraction degraded a in
  Alcotest.(check bool) "fraction shrinks to <= 0.3" true (f <= 0.3 +. 1e-6);
  Alcotest.(check bool) "fraction positive" true (f > 0.0)

let () =
  Alcotest.run "dls_experiments"
    [ ( "report",
        [ Alcotest.test_case "csv" `Quick test_report_csv;
          Alcotest.test_case "aligned" `Quick test_report_pp_aligned;
          Alcotest.test_case "write csv" `Quick test_report_write_csv;
          Alcotest.test_case "cell float" `Quick test_cell_float ] );
      ( "measure",
        [ Alcotest.test_case "sampled problems" `Quick test_sample_problem_properties;
          Alcotest.test_case "literal setting is trivial" `Quick
            test_sample_problem_literal_setting;
          Alcotest.test_case "evaluate" `Quick test_evaluate_consistency;
          Alcotest.test_case "time" `Quick test_time_measures ] );
      ( "figures",
        [ Alcotest.test_case "fig5" `Quick test_fig5_smoke;
          Alcotest.test_case "fig6" `Quick test_fig6_smoke;
          Alcotest.test_case "fig7" `Quick test_fig7_smoke;
          Alcotest.test_case "aggregate" `Quick test_aggregate_smoke;
          Alcotest.test_case "table1" `Quick test_table1_smoke ] );
      ( "ablation-adaptivity",
        [ Alcotest.test_case "network tight" `Quick test_ablation_network_tight_smoke;
          Alcotest.test_case "workload" `Quick test_ablation_workload_smoke;
          Alcotest.test_case "adaptivity" `Quick test_adaptivity_smoke;
          Alcotest.test_case "deliverable fraction" `Quick test_deliverable_fraction ] );
      ( "sweep",
        [ Alcotest.test_case "streaming" `Quick test_sweep_streaming;
          Alcotest.test_case "deterministic" `Quick test_sweep_deterministic ] ) ]
