test/test_graph.ml: Alcotest Array Dls_graph Dls_util Fun List Printf QCheck2 QCheck_alcotest Stdlib
