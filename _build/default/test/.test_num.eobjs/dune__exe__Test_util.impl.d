test/test_util.ml: Alcotest Array Dls_util Float Format Fun Int64 List Printf QCheck2 QCheck_alcotest Stdlib String
