test/test_util.ml: Alcotest Array Dls_util Float Fun List QCheck2 QCheck_alcotest
