test/test_flowsim.ml: Alcotest Allocation Array Dls_core Dls_flowsim Dls_graph Dls_platform Dls_util Float Fun Greedy List Problem QCheck2 QCheck_alcotest
