test/test_platform.ml: Alcotest Array Dls_graph Dls_platform Dls_util Filename Float Format Fun List Printf QCheck2 QCheck_alcotest String Sys
