test/test_experiments.ml: Alcotest Array Dls_core Dls_experiments Dls_platform Dls_util Filename Float Format List Printf String Sys Unix
