test/test_num.ml: Alcotest Dls_num Float List Printf QCheck2 QCheck_alcotest String
