test/test_lp.ml: Alcotest Array Dls_lp Dls_num Float List QCheck2 QCheck_alcotest
