(* Tests for Dls_num.Bigint and Dls_num.Rat: known-answer unit tests plus
   property tests checking agreement with native int arithmetic in range
   and the algebraic laws that the exact simplex relies on. *)

module B = Dls_num.Bigint
module Q = Dls_num.Rat

let bigint = Alcotest.testable B.pp B.equal
let rat = Alcotest.testable Q.pp Q.equal

(* ------------------------------------------------------------------ *)
(* Bigint unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let test_of_int_roundtrip () =
  List.iter
    (fun n ->
      Alcotest.(check (option int)) (string_of_int n) (Some n) (B.to_int (B.of_int n)))
    [ 0; 1; -1; 42; -42; max_int; min_int; 1 lsl 31; -(1 lsl 31); (1 lsl 62) - 1 ]

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (B.of_string s)))
    [ "0"; "1"; "-1"; "123456789012345678901234567890";
      "-98765432109876543210987654321098765432109876543210";
      "2147483648"; "4611686018427387904"; "1000000000000000000000000000" ]

let test_add_known () =
  let a = B.of_string "99999999999999999999999999999999" in
  let b = B.of_string "1" in
  Alcotest.check bigint "carry chain"
    (B.of_string "100000000000000000000000000000000")
    (B.add a b)

let test_mul_known () =
  let a = B.of_string "123456789123456789" in
  let b = B.of_string "987654321987654321" in
  Alcotest.check bigint "product"
    (B.of_string "121932631356500531347203169112635269")
    (B.mul a b)

let test_divmod_known () =
  let a = B.of_string "121932631356500531347203169112635270" in
  let b = B.of_string "987654321987654321" in
  let q, r = B.divmod a b in
  Alcotest.check bigint "quotient" (B.of_string "123456789123456789") q;
  Alcotest.check bigint "remainder" B.one r

let test_divmod_signs () =
  let check a b eq er =
    let q, r = B.divmod (B.of_int a) (B.of_int b) in
    Alcotest.check bigint (Printf.sprintf "%d /%% %d q" a b) (B.of_int eq) q;
    Alcotest.check bigint (Printf.sprintf "%d /%% %d r" a b) (B.of_int er) r
  in
  (* Truncated division semantics, like OCaml's / and mod. *)
  check 7 2 3 1;
  check (-7) 2 (-3) (-1);
  check 7 (-2) (-3) 1;
  check (-7) (-2) 3 (-1)

let test_ediv () =
  let check a b eq er =
    let q, r = B.ediv (B.of_int a) (B.of_int b) in
    Alcotest.check bigint (Printf.sprintf "ediv %d %d q" a b) (B.of_int eq) q;
    Alcotest.check bigint (Printf.sprintf "ediv %d %d r" a b) (B.of_int er) r
  in
  check 7 2 3 1;
  check (-7) 2 (-4) 1;
  check 7 (-2) (-3) 1;
  check (-7) (-2) 4 1

let test_div_by_zero () =
  Alcotest.check_raises "divmod by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_gcd_lcm () =
  Alcotest.check bigint "gcd" (B.of_int 6) (B.gcd (B.of_int 54) (B.of_int (-24)));
  Alcotest.check bigint "gcd 0" (B.of_int 5) (B.gcd B.zero (B.of_int 5));
  Alcotest.check bigint "lcm" (B.of_int 36) (B.lcm (B.of_int 12) (B.of_int 18));
  Alcotest.check bigint "lcm 0" B.zero (B.lcm B.zero (B.of_int 7));
  let huge = B.of_string "123456789012345678901234567890" in
  Alcotest.check bigint "gcd self" (B.abs huge) (B.gcd huge huge)

let test_pow () =
  Alcotest.check bigint "2^100"
    (B.of_string "1267650600228229401496703205376")
    (B.pow (B.of_int 2) 100);
  Alcotest.check bigint "x^0" B.one (B.pow (B.of_int 12345) 0);
  Alcotest.check bigint "(-3)^3" (B.of_int (-27)) (B.pow (B.of_int (-3)) 3)

let test_shift_left () =
  Alcotest.check bigint "1 << 100"
    (B.pow (B.of_int 2) 100)
    (B.shift_left B.one 100);
  Alcotest.check bigint "5 << 31" (B.of_int (5 * (1 lsl 31))) (B.shift_left (B.of_int 5) 31)

let test_compare_ordering () =
  let vals =
    List.map B.of_string
      [ "-100000000000000000000"; "-5"; "-1"; "0"; "1"; "5"; "100000000000000000000" ]
  in
  let rec pairs = function
    | [] -> ()
    | x :: rest ->
      List.iter (fun y -> Alcotest.(check bool) "lt" true (B.compare x y < 0)) rest;
      pairs rest
  in
  pairs vals

let test_to_float () =
  Alcotest.(check (float 0.0)) "small" 42.0 (B.to_float (B.of_int 42));
  Alcotest.(check (float 1e6)) "2^70" (Float.ldexp 1.0 70) (B.to_float (B.pow (B.of_int 2) 70))

let test_num_bits () =
  Alcotest.(check int) "0" 0 (B.num_bits B.zero);
  Alcotest.(check int) "1" 1 (B.num_bits B.one);
  Alcotest.(check int) "255" 8 (B.num_bits (B.of_int 255));
  Alcotest.(check int) "256" 9 (B.num_bits (B.of_int 256));
  Alcotest.(check int) "2^100" 101 (B.num_bits (B.pow (B.of_int 2) 100))

(* ------------------------------------------------------------------ *)
(* Bigint property tests                                               *)
(* ------------------------------------------------------------------ *)

let int_gen = QCheck2.Gen.int_range (-1_000_000_000) 1_000_000_000

(* Pairs of big operands built from strings of random digits, so that
   multi-limb paths (carry chains, Knuth D) are exercised. *)
let big_gen =
  let open QCheck2.Gen in
  let* ndigits = int_range 1 60 in
  let* digits = list_repeat ndigits (int_range 0 9) in
  let* negative = bool in
  let s = String.concat "" (List.map string_of_int digits) in
  let s = if negative then "-" ^ s else s in
  return (B.of_string s)

let prop_add_matches_int =
  QCheck2.Test.make ~name:"bigint add matches int" ~count:500
    QCheck2.Gen.(pair int_gen int_gen)
    (fun (a, b) -> B.to_int (B.add (B.of_int a) (B.of_int b)) = Some (a + b))

let prop_mul_matches_int =
  QCheck2.Test.make ~name:"bigint mul matches int" ~count:500
    QCheck2.Gen.(pair int_gen int_gen)
    (fun (a, b) -> B.to_int (B.mul (B.of_int a) (B.of_int b)) = Some (a * b))

let prop_divmod_invariant =
  QCheck2.Test.make ~name:"bigint a = q*b + r, |r| < |b|" ~count:300
    QCheck2.Gen.(pair big_gen big_gen)
    (fun (a, b) ->
      if B.is_zero b then true
      else begin
        let q, r = B.divmod a b in
        B.equal a (B.add (B.mul q b) r)
        && B.compare (B.abs r) (B.abs b) < 0
        && (B.is_zero r || B.sign r = B.sign a)
      end)

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"bigint string roundtrip" ~count:300 big_gen
    (fun a -> B.equal a (B.of_string (B.to_string a)))

let prop_add_commutative =
  QCheck2.Test.make ~name:"bigint add commutative" ~count:300
    QCheck2.Gen.(pair big_gen big_gen)
    (fun (a, b) -> B.equal (B.add a b) (B.add b a))

let prop_mul_distributes =
  QCheck2.Test.make ~name:"bigint mul distributes over add" ~count:200
    QCheck2.Gen.(triple big_gen big_gen big_gen)
    (fun (a, b, c) ->
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_gcd_divides =
  QCheck2.Test.make ~name:"bigint gcd divides both" ~count:200
    QCheck2.Gen.(pair big_gen big_gen)
    (fun (a, b) ->
      let g = B.gcd a b in
      if B.is_zero g then B.is_zero a && B.is_zero b
      else B.is_zero (B.rem a g) && B.is_zero (B.rem b g))

(* Adversarial limb patterns: powers of two and their neighbours stress
   the Knuth-D normalization, qhat estimation, and add-back paths far
   harder than uniform decimal digits. *)
let test_divmod_adversarial_patterns () =
  let specials =
    let pow2 k = B.shift_left B.one k in
    List.concat_map
      (fun k ->
        [ pow2 k; B.pred (pow2 k); B.succ (pow2 k);
          B.sub (pow2 k) (pow2 (k / 2)); B.add (pow2 k) (pow2 (k / 2)) ])
      [ 1; 30; 31; 32; 61; 62; 63; 64; 93; 124 ]
  in
  let specials = specials @ List.map B.neg specials in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (B.is_zero b) then begin
            let q, r = B.divmod a b in
            if not (B.equal a (B.add (B.mul q b) r)) then
              Alcotest.failf "a = qb + r broken for %s / %s" (B.to_string a)
                (B.to_string b);
            if B.compare (B.abs r) (B.abs b) >= 0 then
              Alcotest.failf "remainder too large for %s / %s" (B.to_string a)
                (B.to_string b)
          end)
        specials)
    specials

let prop_sub_add_cancel =
  QCheck2.Test.make ~name:"bigint (a+b)-b = a" ~count:300
    QCheck2.Gen.(pair big_gen big_gen)
    (fun (a, b) -> B.equal a (B.sub (B.add a b) b))

(* ------------------------------------------------------------------ *)
(* Rat unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let test_rat_normalization () =
  Alcotest.check rat "6/4 = 3/2" (Q.of_ints 3 2) (Q.of_ints 6 4);
  Alcotest.check rat "-6/-4 = 3/2" (Q.of_ints 3 2) (Q.of_ints (-6) (-4));
  Alcotest.check rat "6/-4 = -3/2" (Q.of_ints (-3) 2) (Q.of_ints 6 (-4));
  Alcotest.check rat "0/7 = 0" Q.zero (Q.of_ints 0 7);
  Alcotest.(check string) "den positive" "1" (B.to_string (Q.den (Q.of_ints 0 (-7))))

let test_rat_arith () =
  Alcotest.check rat "1/2 + 1/3" (Q.of_ints 5 6) (Q.add (Q.of_ints 1 2) (Q.of_ints 1 3));
  Alcotest.check rat "1/2 - 1/3" (Q.of_ints 1 6) (Q.sub (Q.of_ints 1 2) (Q.of_ints 1 3));
  Alcotest.check rat "2/3 * 3/4" (Q.of_ints 1 2) (Q.mul (Q.of_ints 2 3) (Q.of_ints 3 4));
  Alcotest.check rat "(2/3) / (4/3)" (Q.of_ints 1 2) (Q.div (Q.of_ints 2 3) (Q.of_ints 4 3))

let test_rat_floor_ceil () =
  let check s ef ec =
    let v = Q.of_string s in
    Alcotest.check bigint (s ^ " floor") (B.of_int ef) (Q.floor v);
    Alcotest.check bigint (s ^ " ceil") (B.of_int ec) (Q.ceil v)
  in
  check "7/2" 3 4;
  check "-7/2" (-4) (-3);
  check "4" 4 4;
  check "-4" (-4) (-4);
  check "1/3" 0 1;
  check "-1/3" (-1) 0

let test_rat_of_float_exact () =
  List.iter
    (fun f ->
      Alcotest.(check (float 0.0)) (string_of_float f) f (Q.to_float (Q.of_float f)))
    [ 0.5; 0.1; -0.75; 3.141592653589793; 1e-10; 123456.789; -0.0; 2.0 ** 40.0 ]

let test_rat_approx_of_float () =
  Alcotest.check rat "pi ~ 22/7" (Q.of_ints 22 7)
    (Q.approx_of_float Float.pi ~max_den:10);
  Alcotest.check rat "pi ~ 355/113" (Q.of_ints 355 113)
    (Q.approx_of_float Float.pi ~max_den:500);
  Alcotest.check rat "exact half" (Q.of_ints 1 2) (Q.approx_of_float 0.5 ~max_den:100);
  Alcotest.check rat "negative" (Q.of_ints (-1) 3)
    (Q.approx_of_float (-1.0 /. 3.0) ~max_den:10);
  Alcotest.check rat "integer" (Q.of_int 7) (Q.approx_of_float 7.0 ~max_den:10)

let test_rat_approx_directed () =
  (* pi from below with den <= 10: 25/8; from above: 22/7. *)
  Alcotest.check rat "pi below" (Q.of_ints 25 8)
    (Q.approx_of_float_below Float.pi ~max_den:10);
  Alcotest.check rat "pi above" (Q.of_ints 22 7)
    (Q.approx_of_float_above Float.pi ~max_den:10);
  (* Exactly representable values are returned unchanged. *)
  Alcotest.check rat "exact below" (Q.of_ints 1 2)
    (Q.approx_of_float_below 0.5 ~max_den:10);
  Alcotest.check rat "exact above" (Q.of_ints 1 2)
    (Q.approx_of_float_above 0.5 ~max_den:10);
  Alcotest.check rat "integer" (Q.of_int (-3)) (Q.approx_of_float_below (-3.0) ~max_den:7);
  (* Negative values: below means more negative. *)
  Alcotest.(check bool) "negative below <= x" true
    (Q.to_float (Q.approx_of_float_below (-0.3) ~max_den:7) <= -0.3);
  Alcotest.(check bool) "negative above >= x" true
    (Q.to_float (Q.approx_of_float_above (-0.3) ~max_den:7) >= -0.3)

let prop_rat_approx_below_is_lower_bound =
  QCheck2.Test.make ~name:"approx_of_float_below <= x <= approx_of_float_above"
    ~count:300
    QCheck2.Gen.(pair (float_range (-100.0) 100.0) (int_range 1 10_000))
    (fun (f, max_den) ->
      let below = Q.approx_of_float_below f ~max_den in
      let above = Q.approx_of_float_above f ~max_den in
      let x = Q.of_float f in
      Q.compare below x <= 0 && Q.compare x above <= 0
      && B.compare (Q.den below) (B.of_int max_den) <= 0
      && B.compare (Q.den above) (B.of_int max_den) <= 0)

let prop_rat_approx_below_is_best =
  (* No fraction with the same denominator bound fits strictly between
     the lower approximation and x (checked by brute force for tiny
     denominators). *)
  QCheck2.Test.make ~name:"approx_of_float_below is the best lower bound" ~count:100
    QCheck2.Gen.(pair (float_range 0.0 3.0) (int_range 1 12))
    (fun (f, max_den) ->
      let below = Q.approx_of_float_below f ~max_den in
      let x = Q.of_float f in
      let better = ref false in
      for q = 1 to max_den do
        for p = 0 to 3 * q + 1 do
          let cand = Q.of_ints p q in
          if Q.compare cand x <= 0 && Q.compare cand below > 0 then better := true
        done
      done;
      not !better)

let test_rat_string () =
  Alcotest.(check string) "3/2" "3/2" (Q.to_string (Q.of_ints 3 2));
  Alcotest.(check string) "int" "-5" (Q.to_string (Q.of_int (-5)));
  Alcotest.check rat "parse" (Q.of_ints (-5) 3) (Q.of_string "-5/3")

(* ------------------------------------------------------------------ *)
(* Rat property tests                                                  *)
(* ------------------------------------------------------------------ *)

let rat_gen =
  let open QCheck2.Gen in
  let* n = int_range (-10_000) 10_000 in
  let* d = int_range 1 10_000 in
  return (Q.of_ints n d)

let prop_rat_field_add_assoc =
  QCheck2.Test.make ~name:"rat add associative" ~count:300
    QCheck2.Gen.(triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) -> Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c)))

let prop_rat_mul_inverse =
  QCheck2.Test.make ~name:"rat x * 1/x = 1" ~count:300 rat_gen (fun a ->
      Q.is_zero a || Q.equal Q.one (Q.mul a (Q.inv a)))

let prop_rat_compare_consistent_with_float =
  QCheck2.Test.make ~name:"rat compare agrees with float compare" ~count:300
    QCheck2.Gen.(pair rat_gen rat_gen)
    (fun (a, b) ->
      let c = Q.compare a b in
      let fa = Q.to_float a and fb = Q.to_float b in
      if Float.abs (fa -. fb) < 1e-12 then true
      else (c < 0) = (fa < fb) && (c > 0) = (fa > fb))

let prop_rat_floor_bound =
  QCheck2.Test.make ~name:"rat floor <= x < floor+1" ~count:300 rat_gen (fun a ->
      let f = Q.of_bigint (Q.floor a) in
      Q.compare f a <= 0 && Q.compare a (Q.add f Q.one) < 0)

let prop_rat_approx_within_tolerance =
  QCheck2.Test.make ~name:"rat approx_of_float close to input" ~count:300
    QCheck2.Gen.(float_range (-1000.0) 1000.0)
    (fun f ->
      let r = Q.approx_of_float f ~max_den:1_000_000 in
      Float.abs (Q.to_float r -. f) < 1e-4)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dls_num"
    [ ( "bigint-unit",
        [ Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "add carry" `Quick test_add_known;
          Alcotest.test_case "mul known" `Quick test_mul_known;
          Alcotest.test_case "divmod known" `Quick test_divmod_known;
          Alcotest.test_case "divmod signs" `Quick test_divmod_signs;
          Alcotest.test_case "ediv" `Quick test_ediv;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero;
          Alcotest.test_case "gcd lcm" `Quick test_gcd_lcm;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "shift_left" `Quick test_shift_left;
          Alcotest.test_case "ordering" `Quick test_compare_ordering;
          Alcotest.test_case "to_float" `Quick test_to_float;
          Alcotest.test_case "num_bits" `Quick test_num_bits;
          Alcotest.test_case "divmod adversarial patterns" `Quick
            test_divmod_adversarial_patterns ] );
      qsuite "bigint-prop"
        [ prop_add_matches_int; prop_mul_matches_int; prop_divmod_invariant;
          prop_string_roundtrip; prop_add_commutative; prop_mul_distributes;
          prop_gcd_divides; prop_sub_add_cancel ];
      ( "rat-unit",
        [ Alcotest.test_case "normalization" `Quick test_rat_normalization;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
          Alcotest.test_case "floor ceil" `Quick test_rat_floor_ceil;
          Alcotest.test_case "of_float exact" `Quick test_rat_of_float_exact;
          Alcotest.test_case "approx_of_float" `Quick test_rat_approx_of_float;
          Alcotest.test_case "approx directed" `Quick test_rat_approx_directed;
          Alcotest.test_case "strings" `Quick test_rat_string ] );
      qsuite "rat-prop"
        [ prop_rat_field_add_assoc; prop_rat_mul_inverse;
          prop_rat_compare_consistent_with_float; prop_rat_floor_bound;
          prop_rat_approx_within_tolerance; prop_rat_approx_below_is_lower_bound;
          prop_rat_approx_below_is_best ] ]
