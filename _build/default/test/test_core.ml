(* Tests for Dls_core: the steady-state problem, the feasibility checker
   (Equations 7a-7g), the LP relaxation (float vs exact), the four
   heuristics, the periodic-schedule reconstruction, and the Section 4
   NP-hardness gadget checked against ground-truth MIS. *)

module G = Dls_graph.Graph
module Mis = Dls_graph.Mis
module P = Dls_platform.Platform
module Gen = Dls_platform.Generator
module Prng = Dls_util.Prng
module Q = Dls_num.Rat
module B = Dls_num.Bigint
open Dls_core

let feps = 1e-6

(* Star platform: one source cluster plus [n] workers hanging off a hub
   router; every parameter explicit for hand-computable optima. *)
let star_platform ~src_speed ~src_g ~worker_speed ~worker_g ~bw ~maxcon n =
  let topology = G.star (n + 1) in
  let clusters =
    Array.init (n + 1) (fun k ->
        if k = 0 then { P.speed = src_speed; local_bw = src_g; router = 0 }
        else { P.speed = worker_speed; local_bw = worker_g; router = k })
  in
  let backbones = Array.make n { P.bw; max_connect = maxcon } in
  P.make ~clusters ~topology ~backbones

let random_problem ?(kmin = 2) ?(kmax = 8) seed =
  let rng = Prng.create ~seed in
  let k = Prng.int rng ~lo:kmin ~hi:kmax in
  let params =
    { Gen.default_params with
      k;
      connectivity = Prng.float rng ~lo:0.1 ~hi:0.8;
      heterogeneity = Prng.float rng ~lo:0.2 ~hi:0.8;
      mean_g = Prng.float rng ~lo:50.0 ~hi:450.0;
      mean_bw = Prng.float rng ~lo:10.0 ~hi:90.0;
      mean_maxcon = Prng.float rng ~lo:5.0 ~hi:95.0 }
  in
  Problem.uniform (Gen.generate rng params)

(* ------------------------------------------------------------------ *)
(* Problem                                                             *)
(* ------------------------------------------------------------------ *)

let test_problem_basics () =
  let p = star_platform ~src_speed:0.0 ~src_g:10.0 ~worker_speed:5.0
      ~worker_g:10.0 ~bw:2.0 ~maxcon:3 2 in
  let pr = Problem.make p ~payoffs:[| 1.0; 0.0; 2.0 |] in
  Alcotest.(check (list int)) "active" [ 0; 2 ] (Problem.active pr);
  Alcotest.(check bool) "inactive" false (Problem.is_active pr 1);
  Alcotest.check_raises "payoff count"
    (Invalid_argument "Problem.make: one payoff per cluster required") (fun () ->
      ignore (Problem.make p ~payoffs:[| 1.0 |]));
  Alcotest.check_raises "negative payoff"
    (Invalid_argument "Problem.make: payoff 1 must be finite and >= 0") (fun () ->
      ignore (Problem.make p ~payoffs:[| 1.0; -2.0; 0.0 |]))

(* ------------------------------------------------------------------ *)
(* Feasibility checker                                                 *)
(* ------------------------------------------------------------------ *)

let two_cluster_problem () =
  (* C0 --l0-- C1, bw 2, maxcon 2; s = 10 each, g = 4 each. *)
  let topology = G.path_graph 2 in
  let clusters =
    Array.init 2 (fun k -> { P.speed = 10.0; local_bw = 4.0; router = k })
  in
  let backbones = [| { P.bw = 2.0; max_connect = 2 } |] in
  Problem.uniform (P.make ~clusters ~topology ~backbones)

let test_check_feasible () =
  let pr = two_cluster_problem () in
  let a = Allocation.zero 2 in
  a.Allocation.alpha.(0).(0) <- 6.0;
  a.Allocation.alpha.(0).(1) <- 4.0;
  a.Allocation.beta.(0).(1) <- 2;
  Alcotest.(check (list string)) "no violations" []
    (List.map (Format.asprintf "%a" Allocation.pp_violation) (Allocation.check pr a));
  Alcotest.(check (float feps)) "throughput" 10.0 (Allocation.app_throughput a 0);
  Alcotest.(check (float feps)) "sum" 10.0 (Allocation.sum_objective pr a);
  Alcotest.(check (float feps)) "maxmin is min" 0.0 (Allocation.maxmin_objective pr a)

let test_check_violations () =
  let pr = two_cluster_problem () in
  let has pred a = List.exists pred (Allocation.check pr a) in
  let base () = Allocation.zero 2 in
  (* CPU. *)
  let a = base () in
  a.Allocation.alpha.(0).(0) <- 11.0;
  Alcotest.(check bool) "cpu" true
    (has (function Allocation.Cpu_exceeded 0 -> true | _ -> false) a);
  (* Local link. *)
  let a = base () in
  a.Allocation.alpha.(0).(1) <- 4.5;
  a.Allocation.beta.(0).(1) <- 3;
  Alcotest.(check bool) "local link" true
    (has (function Allocation.Local_link_exceeded _ -> true | _ -> false) a);
  (* Connections. *)
  let a = base () in
  a.Allocation.alpha.(0).(1) <- 1.0;
  a.Allocation.beta.(0).(1) <- 3;
  Alcotest.(check bool) "connections" true
    (has (function Allocation.Connections_exceeded 0 -> true | _ -> false) a);
  (* Bandwidth: 3 units over 1 connection of bw 2. *)
  let a = base () in
  a.Allocation.alpha.(0).(1) <- 3.0;
  a.Allocation.beta.(0).(1) <- 1;
  Alcotest.(check bool) "bandwidth" true
    (has (function Allocation.Bandwidth_exceeded (0, 1) -> true | _ -> false) a);
  (* Negative alpha. *)
  let a = base () in
  a.Allocation.alpha.(1).(0) <- -1.0;
  Alcotest.(check bool) "negative" true
    (has (function Allocation.Negative_alpha (1, 0) -> true | _ -> false) a)

let test_check_inactive_sender () =
  let p = Problem.platform (two_cluster_problem ()) in
  let pr = Problem.make p ~payoffs:[| 1.0; 0.0 |] in
  let a = Allocation.zero 2 in
  a.Allocation.alpha.(1).(1) <- 1.0;
  Alcotest.(check bool) "inactive sender flagged" true
    (List.exists
       (function Allocation.Inactive_sender 1 -> true | _ -> false)
       (Allocation.check pr a))

(* ------------------------------------------------------------------ *)
(* LP relaxation                                                       *)
(* ------------------------------------------------------------------ *)

let lp_value ?objective pr =
  match Lp_relax.solve ?objective pr with
  | Lp_relax.Solution s -> s.Lp_relax.objective_value
  | Lp_relax.Failed msg -> Alcotest.failf "LP failed: %s" msg

let test_lp_single_cluster () =
  let topology = G.create ~n:1 ~edges:[] in
  let clusters = [| { P.speed = 100.0; local_bw = 50.0; router = 0 } |] in
  let pr = Problem.uniform (P.make ~clusters ~topology ~backbones:[||]) in
  Alcotest.(check (float feps)) "local only" 100.0 (lp_value ~objective:Lp_relax.Sum pr);
  Alcotest.(check (float feps)) "maxmin same" 100.0
    (lp_value ~objective:Lp_relax.Maxmin pr)

let test_lp_star_bottlenecks () =
  let mk ~src_g ~bw ~maxcon ~worker_speed =
    let p =
      star_platform ~src_speed:0.0 ~src_g ~worker_speed ~worker_g:100.0 ~bw
        ~maxcon 1
    in
    Problem.make p ~payoffs:[| 1.0; 0.0 |]
  in
  (* Worker-speed-bound: min(10, 5, 2*3=6) = 5. *)
  Alcotest.(check (float feps)) "speed bound" 5.0
    (lp_value (mk ~src_g:10.0 ~bw:2.0 ~maxcon:3 ~worker_speed:5.0));
  (* Connection-bound: min(10, 50, 2*1) = 2. *)
  Alcotest.(check (float feps)) "connection bound" 2.0
    (lp_value (mk ~src_g:10.0 ~bw:2.0 ~maxcon:1 ~worker_speed:50.0));
  (* Local-link-bound: min(3, 50, 2*9) = 3. *)
  Alcotest.(check (float feps)) "local link bound" 3.0
    (lp_value (mk ~src_g:3.0 ~bw:2.0 ~maxcon:9 ~worker_speed:50.0))

let test_lp_maxmin_vs_sum () =
  (* Two active apps, one worker each, asymmetric speeds: SUM piles on
     the fast side, MAXMIN equalizes. *)
  let topology = G.path_graph 2 in
  let clusters =
    [| { P.speed = 10.0; local_bw = 100.0; router = 0 };
       { P.speed = 2.0; local_bw = 100.0; router = 1 } |]
  in
  let backbones = [| { P.bw = 100.0; max_connect = 10 } |] in
  let pr = Problem.uniform (P.make ~clusters ~topology ~backbones) in
  (* Total capacity 12, SUM = 12; MAXMIN: each app can get 6. *)
  Alcotest.(check (float feps)) "sum" 12.0 (lp_value ~objective:Lp_relax.Sum pr);
  Alcotest.(check (float feps)) "maxmin" 6.0 (lp_value ~objective:Lp_relax.Maxmin pr)

let test_lp_payoff_weighting () =
  (* One cluster, two payoff levels: SUM scales by pi. *)
  let topology = G.create ~n:1 ~edges:[] in
  let clusters = [| { P.speed = 10.0; local_bw = 1.0; router = 0 } |] in
  let p = P.make ~clusters ~topology ~backbones:[||] in
  let pr = Problem.make p ~payoffs:[| 3.0 |] in
  Alcotest.(check (float feps)) "sum weighted" 30.0
    (lp_value ~objective:Lp_relax.Sum pr);
  Alcotest.(check (float feps)) "maxmin weighted" 30.0
    (lp_value ~objective:Lp_relax.Maxmin pr)

let test_lp_no_active_apps () =
  let topology = G.create ~n:1 ~edges:[] in
  let clusters = [| { P.speed = 10.0; local_bw = 1.0; router = 0 } |] in
  let pr = Problem.make (P.make ~clusters ~topology ~backbones:[||]) ~payoffs:[| 0.0 |] in
  Alcotest.(check (float feps)) "zero" 0.0 (lp_value pr)

let test_lp_exact_matches_float () =
  let pr = random_problem 123 in
  let f = lp_value ~objective:Lp_relax.Maxmin pr in
  match Lp_relax.solve_exact ~objective:Lp_relax.Maxmin pr with
  | Lp_relax.Solution s ->
    Alcotest.(check (float 1e-6)) "exact = float" (Q.to_float s.Lp_relax.objective_value) f
  | Lp_relax.Failed msg -> Alcotest.failf "exact LP failed: %s" msg

let test_lp_fixed_beta_zero_kills_route () =
  let p =
    star_platform ~src_speed:0.0 ~src_g:10.0 ~worker_speed:5.0 ~worker_g:10.0
      ~bw:2.0 ~maxcon:3 1
  in
  let pr = Problem.make p ~payoffs:[| 1.0; 0.0 |] in
  match Lp_relax.solve ~fixed:[ ((0, 1), 0) ] pr with
  | Lp_relax.Solution s ->
    Alcotest.(check (float feps)) "no work through dead route" 0.0
      s.Lp_relax.objective_value
  | Lp_relax.Failed msg -> Alcotest.failf "LP failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Heuristics: unit behaviour                                          *)
(* ------------------------------------------------------------------ *)

let test_greedy_isolated_clusters_run_locally () =
  let topology = G.create ~n:3 ~edges:[] in
  let clusters =
    Array.init 3 (fun k ->
        { P.speed = float_of_int (10 * (k + 1)); local_bw = 5.0; router = k })
  in
  let pr = Problem.uniform (P.make ~clusters ~topology ~backbones:[||]) in
  let a = Greedy.solve pr in
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible pr a);
  Alcotest.(check (float feps)) "app0 local" 10.0 a.Allocation.alpha.(0).(0);
  Alcotest.(check (float feps)) "app2 local" 30.0 a.Allocation.alpha.(2).(2);
  Alcotest.(check (float feps)) "maxmin" 10.0 (Allocation.maxmin_objective pr a)

let test_greedy_single_active_app_uses_network () =
  (* Source with no speed must delegate through the star. *)
  let p =
    star_platform ~src_speed:0.0 ~src_g:100.0 ~worker_speed:5.0 ~worker_g:10.0
      ~bw:4.0 ~maxcon:2 3
  in
  let pr = Problem.make p ~payoffs:[| 1.0; 0.0; 0.0; 0.0 |] in
  let a = Greedy.solve pr in
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible pr a);
  (* Each worker: min(g0, bw 4, g 10, s 5) = 4 per connection; two
     connections allowed but worker speed caps at 5. *)
  Alcotest.(check bool) "delegates substantially" true
    (Allocation.app_throughput a 0 >= 12.0 -. feps)

let test_greedy_skips_zero_payoff () =
  let pr =
    Problem.make
      (Problem.platform (two_cluster_problem ()))
      ~payoffs:[| 0.0; 0.0 |]
  in
  let a = Greedy.solve pr in
  Alcotest.(check (float feps)) "no work at all" 0.0 (Allocation.sum_objective pr a)

let test_lpr_rounds_down_to_zero () =
  (* beta~ = alpha/bw < 1 on every route => LPR kills all remote work.
     Star: source s=0, one worker s=1, bw=10: alpha~=1, beta~=0.1. *)
  let p =
    star_platform ~src_speed:0.0 ~src_g:10.0 ~worker_speed:1.0 ~worker_g:10.0
      ~bw:10.0 ~maxcon:5 1
  in
  let pr = Problem.make p ~payoffs:[| 1.0; 0.0 |] in
  (match Lpr.solve pr with
   | Ok a ->
     Alcotest.(check (float feps)) "LPR zero" 0.0 (Allocation.sum_objective pr a);
     Alcotest.(check bool) "feasible" true (Allocation.is_feasible pr a)
   | Error msg -> Alcotest.failf "LPR failed: %s" msg);
  (* LPRG reclaims the wasted route. *)
  match Lprg.solve pr with
  | Ok a ->
    Alcotest.(check bool) "LPRG feasible" true (Allocation.is_feasible pr a);
    Alcotest.(check (float feps)) "LPRG reclaims" 1.0 (Allocation.sum_objective pr a)
  | Error msg -> Alcotest.failf "LPRG failed: %s" msg

let test_lprr_stats_bounds () =
  let pr = random_problem ~kmin:3 ~kmax:5 7 in
  let rng = Prng.create ~seed:99 in
  match Lprr.solve ~rng pr with
  | Ok stats ->
    let pairs = List.length (Lp_relax.remote_pairs pr) in
    Alcotest.(check bool) "lp_solves <= pairs + 2" true
      (stats.Lprr.lp_solves <= pairs + 2);
    Alcotest.(check bool) "feasible" true
      (Allocation.is_feasible pr stats.Lprr.allocation)
  | Error msg -> Alcotest.failf "LPRR failed: %s" msg

let prop_lprr_slots_match_recompute =
  (* S4: the incremental used-slots table agrees with the brute-force
     rescan after every pin of a random pin sequence. *)
  QCheck2.Test.make ~name:"incremental slot table matches recomputed slack"
    ~count:50 (QCheck2.Gen.int_range 0 100_000) (fun seed ->
      let pr = random_problem ~kmin:3 ~kmax:7 seed in
      let rng = Prng.create ~seed:(seed + 17) in
      let pairs = Array.of_list (Lp_relax.remote_pairs pr) in
      Prng.shuffle rng pairs;
      let slots = Lprr.Slots.create pr in
      let pins = ref [] in
      Array.for_all
        (fun pair ->
          let slack = Lprr.Slots.route_slack slots pair in
          let reference = Lprr.recompute_route_slack pr !pins pair in
          let v = Prng.int rng ~lo:0 ~hi:(Stdlib.max 0 slack) in
          Lprr.Slots.pin slots pair v;
          pins := (pair, v) :: !pins;
          slack = reference
          && Lprr.Slots.route_slack slots pair
             = Lprr.recompute_route_slack pr !pins pair)
        pairs)

let prop_lprr_warm_matches_cold_lps =
  (* S5: a warm-started LPRR run must (i) produce a feasible
     allocation, and (ii) have seen, at every iteration, the same LP
     optimum a from-scratch solve under the same pin prefix finds —
     solver state carried across pins never changes the math.  (The
     full warm and cold trajectories may differ: MAXMIN optima are
     degenerate, and the two paths can land on different vertices.) *)
  QCheck2.Test.make ~name:"warm LPRR objectives match cold solves per pin prefix"
    ~count:10 (QCheck2.Gen.int_range 0 100_000) (fun seed ->
      let pr = random_problem ~kmin:3 ~kmax:5 seed in
      let rng = Prng.create ~seed:(seed + 23) in
      match Lprr.solve ~warm:true ~rng pr with
      | Error _ -> true (* platforms where the relaxation fails are not the point *)
      | Ok st ->
        let trace = Array.of_list st.Lprr.pin_trace in
        let npins = Array.length trace in
        let prefix n = Array.to_list (Array.sub trace 0 n) in
        let close a b =
          Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))
        in
        Allocation.is_feasible pr st.Lprr.allocation
        && (match st.Lprr.counters with
            | Some c ->
              c.Dls_lp.Revised_simplex.solves = st.Lprr.lp_solves
              && c.Dls_lp.Revised_simplex.warm_starts
                 + c.Dls_lp.Revised_simplex.cold_starts
                 = c.Dls_lp.Revised_simplex.solves
            | None -> false)
        && List.for_all Fun.id
             (List.mapi
                (fun i obj ->
                  (* Solve i of the loop ran under the first i pins; the
                     final solve under all of them. *)
                  let fixed = prefix (Stdlib.min i npins) in
                  match Lp_relax.solve ~fixed pr with
                  | Lp_relax.Solution cold ->
                    close obj cold.Lp_relax.objective_value
                  | Lp_relax.Failed _ -> false)
                st.Lprr.lp_objectives))

let test_lprr_warm_cold_same_coins () =
  (* Smoke parity check on one platform: warm and cold runs on copied
     coin streams both succeed and both stay feasible. *)
  let pr = random_problem ~kmin:3 ~kmax:5 11 in
  let coins = Prng.create ~seed:77 in
  let warm = Lprr.solve ~warm:true ~rng:(Prng.copy coins) pr in
  let cold = Lprr.solve ~warm:false ~rng:(Prng.copy coins) pr in
  match (warm, cold) with
  | Ok w, Ok c ->
    Alcotest.(check bool) "warm feasible" true
      (Allocation.is_feasible pr w.Lprr.allocation);
    Alcotest.(check bool) "cold feasible" true
      (Allocation.is_feasible pr c.Lprr.allocation);
    Alcotest.(check bool) "warm has counters" true (w.Lprr.counters <> None);
    Alcotest.(check bool) "cold has no counters" true (c.Lprr.counters = None)
  | Error msg, _ | _, Error msg -> Alcotest.failf "LPRR failed: %s" msg

let test_heuristics_names () =
  List.iter
    (fun h ->
      Alcotest.(check (option string))
        (Heuristics.name h)
        (Some (Heuristics.name h))
        (Option.map Heuristics.name (Heuristics.of_name (Heuristics.name h))))
    Heuristics.all;
  Alcotest.(check bool) "unknown" true (Heuristics.of_name "nope" = None)

(* ------------------------------------------------------------------ *)
(* Heuristics: properties on random platforms                          *)
(* ------------------------------------------------------------------ *)

let seed_gen = QCheck2.Gen.int_range 0 100_000

let prop_heuristics_feasible =
  QCheck2.Test.make ~name:"every heuristic output satisfies Eqs 7a-7g" ~count:25
    seed_gen (fun seed ->
      let pr = random_problem seed in
      List.for_all
        (fun h ->
          match Heuristics.run ~rng:(Prng.create ~seed) h pr with
          | Ok a -> Allocation.is_feasible pr a
          | Error _ -> false)
        Heuristics.all)

let prop_lp_upper_bounds_heuristics =
  QCheck2.Test.make ~name:"LP bound dominates every heuristic" ~count:20 seed_gen
    (fun seed ->
      let pr = random_problem seed in
      let tol v = (1.0 +. 1e-6) *. Float.max v 1e-9 in
      List.for_all
        (fun obj ->
          let bound =
            match Heuristics.lp_bound ~objective:obj pr with
            | Ok v -> v
            | Error _ -> -1.0
          in
          bound >= 0.0
          && List.for_all
               (fun h ->
                 match Heuristics.run ~objective:obj ~rng:(Prng.create ~seed) h pr with
                 | Ok a ->
                   let v =
                     match obj with
                     | Lp_relax.Sum -> Allocation.sum_objective pr a
                     | Lp_relax.Maxmin -> Allocation.maxmin_objective pr a
                   in
                   v <= tol bound
                 | Error _ -> false)
               Heuristics.all)
        [ Lp_relax.Sum; Lp_relax.Maxmin ])

let prop_lprg_dominates_lpr =
  QCheck2.Test.make ~name:"LPRG >= LPR on both objectives" ~count:20 seed_gen
    (fun seed ->
      let pr = random_problem seed in
      List.for_all
        (fun obj ->
          match (Lpr.solve ~objective:obj pr, Lprg.solve ~objective:obj pr) with
          | Ok lpr, Ok lprg ->
            let value a =
              match obj with
              | Lp_relax.Sum -> Allocation.sum_objective pr a
              | Lp_relax.Maxmin -> Allocation.maxmin_objective pr a
            in
            value lprg >= value lpr -. 1e-6
          | _ -> false)
        [ Lp_relax.Sum; Lp_relax.Maxmin ])

(* ------------------------------------------------------------------ *)
(* Schedule reconstruction                                             *)
(* ------------------------------------------------------------------ *)

let test_schedule_from_exact_lp () =
  let pr = two_cluster_problem () in
  match Lp_relax.solve_exact ~objective:Lp_relax.Maxmin pr with
  | Lp_relax.Failed msg -> Alcotest.failf "exact LP failed: %s" msg
  | Lp_relax.Solution sol ->
    (* Round betas up to integers (ceil alpha/g is feasible here because
       maxcon is generous), then build and validate the schedule. *)
    let kk = 2 in
    let exact =
      { Schedule.alpha = sol.Lp_relax.alpha;
        beta =
          Array.init kk (fun k ->
              Array.init kk (fun l ->
                  B.to_int_exn (Q.ceil sol.Lp_relax.beta.(k).(l)))) }
    in
    let sched = Schedule.build exact in
    (match Schedule.validate pr sched with
     | Ok () -> ()
     | Error msg -> Alcotest.failf "schedule invalid: %s" msg);
    (* Throughput of the schedule equals the allocation's throughput. *)
    let a0 =
      Array.fold_left (fun acc v -> Q.add acc v) Q.zero sol.Lp_relax.alpha.(0)
    in
    Alcotest.(check bool) "throughput preserved" true
      (Q.equal a0 (Schedule.app_throughput sched 0))

let test_schedule_period_is_lcm () =
  let alpha = Array.make_matrix 2 2 Q.zero in
  alpha.(0).(0) <- Q.of_ints 1 6;
  alpha.(1).(1) <- Q.of_ints 3 4;
  let sched = Schedule.build { Schedule.alpha; beta = Array.make_matrix 2 2 0 } in
  Alcotest.(check string) "lcm(6,4)" "12" (B.to_string sched.Schedule.period);
  let amounts =
    List.map
      (fun c -> (c.Schedule.cluster, B.to_string c.Schedule.amount))
      sched.Schedule.computes
  in
  Alcotest.(check bool) "integral amounts" true
    (List.mem (0, "2") amounts && List.mem (1, "9") amounts)

let test_schedule_float_roundtrip () =
  let pr = two_cluster_problem () in
  let a = Greedy.solve pr in
  let exact = Schedule.exact_of_float a in
  let sched = Schedule.build exact in
  (match Schedule.validate pr sched with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "exact lift invalid: %s" msg);
  let t0 = Q.to_float (Schedule.app_throughput sched 0) in
  Alcotest.(check (float 1e-9)) "same throughput" (Allocation.app_throughput a 0) t0

let prop_schedule_approx_always_valid =
  (* Downward rational rounding means every approximate schedule built
     from a feasible allocation must validate, with human-scale periods. *)
  QCheck2.Test.make ~name:"approximate schedules of feasible allocations validate"
    ~count:15 (QCheck2.Gen.int_range 0 10_000)
    (fun seed ->
      let pr = random_problem seed in
      let a = Greedy.solve pr in
      let sched = Schedule.build (Schedule.exact_of_float ~approx_max_den:1000 a) in
      Schedule.validate pr sched = Ok ()
      (* lcm of <= K^2 denominators each <= 1000 stays far below the
         2^53-denominator blowup of the exact lift *)
      && B.num_bits sched.Schedule.period <= 10 * Problem.num_clusters pr * Problem.num_clusters pr)

let test_schedule_approx_and_scale () =
  let alpha = Array.make_matrix 1 1 Q.zero in
  alpha.(0).(0) <- Q.of_float 0.333333333333333;
  let e = { Schedule.alpha; beta = Array.make_matrix 1 1 0 } in
  let lifted = Schedule.exact_of_float ~approx_max_den:100 (Allocation.zero 1) in
  ignore lifted;
  let scaled = Schedule.scale_down e ~factor:(Q.of_ints 1 2) in
  Alcotest.(check bool) "halved" true
    (Q.equal scaled.Schedule.alpha.(0).(0) (Q.div_int e.Schedule.alpha.(0).(0) 2));
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Schedule.scale_down: factor must be in (0, 1]") (fun () ->
      ignore (Schedule.scale_down e ~factor:(Q.of_int 2)))

(* ------------------------------------------------------------------ *)
(* NP-hardness gadget                                                  *)
(* ------------------------------------------------------------------ *)

let gadget_graphs () =
  [ ("petersen", G.petersen ()); ("cycle5", G.cycle 5); ("path4", G.path_graph 4);
    ("complete4", G.complete 4); ("star5", G.star 5) ]

let test_reduction_platform_valid () =
  List.iter
    (fun (name, g) ->
      let pr = Reduction.build g in
      match P.validate (Problem.platform pr) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s gadget invalid: %s" name msg)
    (gadget_graphs ())

let test_reduction_mis_allocation_feasible () =
  List.iter
    (fun (name, g) ->
      let pr = Reduction.build g in
      let mis = Mis.max_independent_set g in
      let a = Reduction.allocation_of_independent_set pr mis in
      Alcotest.(check bool) (name ^ " feasible") true (Allocation.is_feasible pr a);
      Alcotest.(check (float feps)) (name ^ " throughput = MIS")
        (float_of_int (List.length mis))
        (Allocation.maxmin_objective pr a))
    (gadget_graphs ())

let test_reduction_adjacent_vertices_infeasible () =
  (* Shipping to two adjacent vertices needs two connections on the
     shared lcommon link, which has max_connect = 1. *)
  let g = G.path_graph 2 in
  let pr = Reduction.build g in
  let a = Reduction.allocation_of_independent_set pr [ 0; 1 ] in
  Alcotest.(check bool) "infeasible" false (Allocation.is_feasible pr a);
  Alcotest.(check bool) "connection violation" true
    (List.exists
       (function Allocation.Connections_exceeded _ -> true | _ -> false)
       (Allocation.check pr a))

let test_reduction_heuristics_bounded_by_mis () =
  List.iter
    (fun (name, g) ->
      let pr = Reduction.build g in
      let mis_size = float_of_int (Mis.independence_number g) in
      List.iter
        (fun h ->
          match Heuristics.run ~rng:(Prng.create ~seed:5) h pr with
          | Ok a ->
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s feasible" name (Heuristics.name h))
              true (Allocation.is_feasible pr a);
            let v = Allocation.sum_objective pr a in
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s <= MIS" name (Heuristics.name h))
              true
              (v <= mis_size +. feps);
            let set = Reduction.independent_set_of_allocation a in
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s extracts IS" name (Heuristics.name h))
              true (Mis.is_independent g set)
          | Error msg -> Alcotest.failf "%s/%s failed: %s" name (Heuristics.name h) msg)
        Heuristics.all)
    [ ("cycle5", G.cycle 5); ("path4", G.path_graph 4) ]

let test_reduction_triangle_fractional_lp () =
  (* On the triangle the integral optimum is 1 (= MIS) but the rational
     relaxation reaches 3/2 by splitting connections: exact check. *)
  let pr = Reduction.build (G.cycle 3) in
  match Lp_relax.solve_exact ~objective:Lp_relax.Maxmin pr with
  | Lp_relax.Solution s ->
    Alcotest.(check bool) "exact 3/2" true
      (Q.equal (Q.of_ints 3 2) s.Lp_relax.objective_value)
  | Lp_relax.Failed msg -> Alcotest.failf "exact LP failed: %s" msg

let prop_reduction_equivalence_small_graphs =
  QCheck2.Test.make
    ~name:"gadget: canonical IS allocation feasible iff set independent" ~count:30
    QCheck2.Gen.(pair (int_range 2 7) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Prng.create ~seed in
      let g = G.gnp rng ~n ~p:0.4 in
      let pr = Reduction.build g in
      (* Random vertex subset. *)
      let subset =
        List.filter (fun _ -> Prng.bool rng ~p:0.5) (List.init n Fun.id)
      in
      let a = Reduction.allocation_of_independent_set pr subset in
      Allocation.is_feasible pr a = Mis.is_independent g subset)

(* ------------------------------------------------------------------ *)
(* Makespan layer                                                      *)
(* ------------------------------------------------------------------ *)

let test_makespan_periodic () =
  let pr = two_cluster_problem () in
  let a = Greedy.solve pr in
  let sched = Schedule.build (Schedule.exact_of_float ~approx_max_den:100 a) in
  let w = Array.map Q.of_int [| 100; 50 |] in
  match Makespan.periodic sched ~workloads:w with
  | Error msg -> Alcotest.failf "periodic failed: %s" msg
  | Ok e ->
    Alcotest.(check bool) "efficiency in (0,1]" true
      (e.Makespan.efficiency > 0.0 && e.Makespan.efficiency <= 1.0);
    Alcotest.(check bool) "makespan >= lower bound" true
      (Q.compare e.Makespan.lower_bound e.Makespan.makespan <= 0);
    (* Every application's load fits in the scheduled periods. *)
    let period = Q.of_bigint sched.Schedule.period in
    Array.iteri
      (fun k wk ->
        let done_ =
          Q.mul (Schedule.app_throughput sched k)
            (Q.mul (Q.of_bigint e.Makespan.periods) period)
        in
        Alcotest.(check bool)
          (Printf.sprintf "app %d completes" k)
          true
          (Q.compare wk done_ <= 0))
      w

let test_makespan_zero_throughput_rejected () =
  let a = Allocation.zero 2 in
  a.Allocation.alpha.(0).(0) <- 5.0;
  let sched = Schedule.build (Schedule.exact_of_float a) in
  match Makespan.periodic sched ~workloads:[| Q.of_int 1; Q.of_int 1 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for starved application"

let test_makespan_asymptotic_optimality () =
  let pr = two_cluster_problem () in
  let a = Greedy.solve pr in
  let sched = Schedule.build (Schedule.exact_of_float ~approx_max_den:100 a) in
  let w = Array.map Q.of_int [| 7; 3 |] in
  let e1 = Makespan.asymptotic_efficiency sched ~workloads:w ~scale:1 in
  let e100 = Makespan.asymptotic_efficiency sched ~workloads:w ~scale:100 in
  let e10000 = Makespan.asymptotic_efficiency sched ~workloads:w ~scale:10_000 in
  Alcotest.(check bool) "efficiency grows" true (e100 >= e1 -. 1e-9);
  Alcotest.(check bool) "tends to 1" true (e10000 > 0.99)

let test_makespan_sequential_baseline () =
  let pr = two_cluster_problem () in
  let w = Array.map Q.of_int [| 100; 50 |] in
  match Makespan.sequential_baseline pr ~workloads:w with
  | Error msg -> Alcotest.failf "baseline failed: %s" msg
  | Ok total ->
    (* Each app alone reaches at most total speed 20; the sum of solo
       times is at least (100 + 50) / 20. *)
    Alcotest.(check bool) "sane lower limit" true
      (Q.compare (Q.of_ints 150 20) total <= 0)

(* ------------------------------------------------------------------ *)
(* Fairness metrics                                                    *)
(* ------------------------------------------------------------------ *)

let test_fairness_metrics () =
  let pr = two_cluster_problem () in
  (* Perfectly even: both apps at 5. *)
  let even = Allocation.zero 2 in
  even.Allocation.alpha.(0).(0) <- 5.0;
  even.Allocation.alpha.(1).(1) <- 5.0;
  Alcotest.(check (float 1e-9)) "jain even" 1.0 (Fairness.jain_index pr even);
  Alcotest.(check (float 1e-9)) "ratio even" 1.0 (Fairness.min_over_max pr even);
  (* One-sided: app 0 gets everything. *)
  let skewed = Allocation.zero 2 in
  skewed.Allocation.alpha.(0).(0) <- 10.0;
  Alcotest.(check (float 1e-9)) "jain skewed" 0.5 (Fairness.jain_index pr skewed);
  Alcotest.(check (float 1e-9)) "ratio skewed" 0.0 (Fairness.min_over_max pr skewed);
  (* Empty allocation: neutral by convention. *)
  Alcotest.(check (float 1e-9)) "jain empty" 1.0
    (Fairness.jain_index pr (Allocation.zero 2));
  (* Payoff weighting: pi = (1, 2) with throughputs (2, 1) is even. *)
  let p = Problem.platform pr in
  let weighted = Problem.make p ~payoffs:[| 1.0; 2.0 |] in
  let a = Allocation.zero 2 in
  a.Allocation.alpha.(0).(0) <- 2.0;
  a.Allocation.alpha.(1).(1) <- 1.0;
  Alcotest.(check (float 1e-9)) "weighted even" 1.0 (Fairness.jain_index weighted a)

let prop_fairness_lprr_at_least_as_fair_as_g =
  (* LPRR optimizes MAXMIN nearly exactly; on average its Jain index
     should not trail G's by much.  We assert the weak per-instance
     bound that both metrics stay in range. *)
  QCheck2.Test.make ~name:"fairness metrics stay in range" ~count:15 seed_gen
    (fun seed ->
      let pr = random_problem seed in
      List.for_all
        (fun h ->
          match Heuristics.run ~rng:(Prng.create ~seed) h pr with
          | Ok a ->
            let j = Fairness.jain_index pr a in
            let r = Fairness.min_over_max pr a in
            j >= 0.0 && j <= 1.0 +. 1e-9 && r >= 0.0 && r <= 1.0 +. 1e-9
          | Error _ -> false)
        Heuristics.all)

(* ------------------------------------------------------------------ *)
(* Unbounded-connection baseline ([34]-style producer/consumer)        *)
(* ------------------------------------------------------------------ *)

let test_unbounded_baseline_gap () =
  (* Connection-starved platform: one route, bw 2, maxcon 1.  The
     realistic optimum is 2; the idealized model (parallel messages
     unlimited) promises min(g, s) = 5. *)
  let p =
    star_platform ~src_speed:0.0 ~src_g:10.0 ~worker_speed:5.0 ~worker_g:10.0
      ~bw:2.0 ~maxcon:1 1
  in
  let pr = Problem.make p ~payoffs:[| 1.0; 0.0 |] in
  match Unbounded_baseline.compare pr with
  | Error msg -> Alcotest.failf "baseline failed: %s" msg
  | Ok c ->
    Alcotest.(check (float feps)) "idealized" 5.0 c.Unbounded_baseline.idealized;
    Alcotest.(check (float feps)) "realistic" 2.0 c.Unbounded_baseline.realistic;
    Alcotest.(check bool) "repair within realistic" true
      (c.Unbounded_baseline.repaired <= c.Unbounded_baseline.realistic +. feps)

let prop_unbounded_baseline_ordering =
  QCheck2.Test.make
    ~name:"idealized >= realistic >= repaired, and repairs are feasible" ~count:15
    seed_gen (fun seed ->
      let pr = random_problem seed in
      match
        (Unbounded_baseline.compare pr, Unbounded_baseline.solve pr)
      with
      | Ok c, Ok sol ->
        let repaired_alloc = Unbounded_baseline.repair pr sol in
        Allocation.is_feasible pr repaired_alloc
        && c.Unbounded_baseline.idealized >= c.Unbounded_baseline.realistic -. 1e-6
        && c.Unbounded_baseline.realistic
           >= c.Unbounded_baseline.repaired -. 1e-6
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Timeline                                                            *)
(* ------------------------------------------------------------------ *)

let timeline_fixture () =
  let pr = two_cluster_problem () in
  let a = Greedy.solve pr in
  let sched = Schedule.build (Schedule.exact_of_float ~approx_max_den:100 a) in
  (pr, sched)

let test_timeline_build_and_validate () =
  let pr, sched = timeline_fixture () in
  let w = Array.map Q.of_int [| 37; 13 |] in
  match Timeline.build pr sched ~workloads:w with
  | Error msg -> Alcotest.failf "timeline failed: %s" msg
  | Ok tl ->
    (match Timeline.validate tl with
     | Ok () -> ()
     | Error msg -> Alcotest.failf "invalid timeline: %s" msg);
    (* Every application's full workload is computed, exactly. *)
    Array.iteri
      (fun k wk ->
        Alcotest.(check bool)
          (Printf.sprintf "app %d total" k)
          true
          (Q.equal wk (Timeline.total_computed tl k)))
      w;
    (* Makespan is bounded by the estimate's (periods + 1) * T_p. *)
    (match Makespan.periodic sched ~workloads:w with
     | Ok e ->
       Alcotest.(check bool) "within makespan bound" true
         (Q.compare tl.Timeline.makespan e.Makespan.makespan <= 0)
     | Error msg -> Alcotest.failf "makespan failed: %s" msg)

let test_timeline_rejects_starved_app () =
  let pr, sched = timeline_fixture () in
  (* App 1 computes nothing in this schedule? If it does, starve an
     artificial third app id by giving workload where throughput is 0 is
     impossible here, so instead check negative workload rejection. *)
  match Timeline.build pr sched ~workloads:[| Q.of_int (-1); Q.zero |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let prop_timeline_valid_on_random_platforms =
  QCheck2.Test.make ~name:"timelines validate and conserve work" ~count:12
    (QCheck2.Gen.int_range 0 10_000)
    (fun seed ->
      let pr = random_problem ~kmin:2 ~kmax:5 seed in
      let a = Greedy.solve pr in
      let sched = Schedule.build (Schedule.exact_of_float ~approx_max_den:64 a) in
      let kk = Problem.num_clusters pr in
      let w =
        Array.init kk (fun k ->
            if Allocation.app_throughput a k > 1e-6 then Q.of_int ((seed mod 20) + 5)
            else Q.zero)
      in
      match Timeline.build pr sched ~workloads:w with
      | Error _ -> false
      | Ok tl ->
        Timeline.validate tl = Ok ()
        && Array.for_all
             (fun k -> Q.equal w.(k) (Timeline.total_computed tl k))
             (Array.init kk Fun.id))

(* ------------------------------------------------------------------ *)
(* Exact MIP (branch and bound)                                        *)
(* ------------------------------------------------------------------ *)

let test_mip_equals_mis_on_gadgets () =
  (* Theorem 1, verified exactly: the optimal integral MAXMIN throughput
     of the gadget equals the graph's independence number. *)
  List.iter
    (fun (name, g) ->
      let pr = Reduction.build g in
      match Mip.solve ~objective:Lp_relax.Maxmin pr with
      | Error msg -> Alcotest.failf "%s: MIP failed: %s" name msg
      | Ok stats ->
        Alcotest.(check bool) (name ^ " feasible") true
          (Allocation.is_feasible pr stats.Mip.allocation);
        Alcotest.(check (float 1e-6))
          (name ^ " optimum = MIS")
          (float_of_int (Mis.independence_number g))
          stats.Mip.objective_value)
    [ ("path2", G.path_graph 2); ("path3", G.path_graph 3);
      ("triangle", G.cycle 3); ("cycle4", G.cycle 4); ("cycle5", G.cycle 5) ]

let test_mip_equals_mis_exhaustive_n4 () =
  (* Theorem 1, exhaustively: over EVERY graph on 4 vertices (64 edge
     subsets), the exact integral MAXMIN optimum of the gadget equals
     the independence number. *)
  let all_pairs = [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
  for mask = 0 to 63 do
    let edges = List.filteri (fun i _ -> mask land (1 lsl i) <> 0) all_pairs in
    let g = G.create ~n:4 ~edges in
    let pr = Reduction.build g in
    match Mip.solve ~objective:Lp_relax.Maxmin pr with
    | Error msg -> Alcotest.failf "mask %d: MIP failed: %s" mask msg
    | Ok stats ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "mask %d optimum = MIS" mask)
        (float_of_int (Mis.independence_number g))
        stats.Mip.objective_value
  done

let tiny_mip_problem seed =
  (* Small caps keep the branch-and-bound domain enumerable. *)
  let rng = Prng.create ~seed in
  let k = Prng.int rng ~lo:2 ~hi:4 in
  let params =
    { Gen.default_params with
      k;
      connectivity = 0.6;
      heterogeneity = 0.2;
      mean_g = 60.0;
      mean_bw = 25.0;
      mean_maxcon = 2.0 }
  in
  Problem.uniform (Gen.generate rng params)

let prop_mip_between_heuristics_and_lp =
  QCheck2.Test.make
    ~name:"heuristics <= exact MIP optimum <= LP bound (tiny instances)" ~count:10
    (QCheck2.Gen.int_range 0 10_000)
    (fun seed ->
      let pr = tiny_mip_problem seed in
      match
        ( Mip.solve ~objective:Lp_relax.Maxmin pr,
          Heuristics.lp_bound ~objective:Lp_relax.Maxmin pr )
      with
      | Ok mip, Ok lp ->
        Allocation.is_feasible pr mip.Mip.allocation
        && mip.Mip.objective_value <= lp +. 1e-5
        && List.for_all
             (fun h ->
               match
                 Heuristics.run ~objective:Lp_relax.Maxmin ~rng:(Prng.create ~seed)
                   h pr
               with
               | Ok a ->
                 Allocation.maxmin_objective pr a
                 <= mip.Mip.objective_value +. 1e-5
               | Error _ -> false)
             Heuristics.all
      | _ -> false)

let test_analysis_utilization () =
  let pr = two_cluster_problem () in
  let a = Allocation.zero 2 in
  a.Allocation.alpha.(0).(0) <- 10.0;  (* saturates C0's cpu (s = 10) *)
  a.Allocation.alpha.(0).(1) <- 4.0;  (* saturates both local links (g = 4) *)
  a.Allocation.beta.(0).(1) <- 2;  (* saturates l0's cap and beta*bw = 4 *)
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible pr a);
  let bn = Analysis.bottlenecks pr a in
  let has r = List.exists (fun u -> u.Analysis.resource = r) bn in
  Alcotest.(check bool) "cpu 0 binding" true (has (Analysis.Cpu 0));
  Alcotest.(check bool) "local links binding" true
    (has (Analysis.Local_link 0) && has (Analysis.Local_link 1));
  Alcotest.(check bool) "connections binding" true (has (Analysis.Connections 0));
  Alcotest.(check bool) "route bw binding" true
    (has (Analysis.Route_bandwidth (0, 1)));
  Alcotest.(check bool) "cpu 1 not binding" false (has (Analysis.Cpu 1));
  (* Utilization list is sorted non-increasing. *)
  let all = Analysis.utilization pr a in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Analysis.utilization >= b.Analysis.utilization && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted all)

let test_viz_dot () =
  let pr = two_cluster_problem () in
  let a = Allocation.zero 2 in
  a.Allocation.alpha.(0).(0) <- 6.0;
  a.Allocation.alpha.(0).(1) <- 4.0;
  a.Allocation.beta.(0).(1) <- 2;
  let dot = Viz.allocation_dot pr a in
  let has_sub msg fragment =
    let n = String.length msg and m = String.length fragment in
    let rec go i = i + m <= n && (String.sub msg i m = fragment || go (i + 1)) in
    m = 0 || go 0
  in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true (has_sub dot fragment))
    [ "digraph allocation {"; "c0 -> c1 [label=\"4 (beta=2)\"";
      "local=6" ]

(* ------------------------------------------------------------------ *)
(* Pipelined applications (future-work extension)                      *)
(* ------------------------------------------------------------------ *)

let test_pipeline_single_stage_equals_base_model () =
  (* A one-stage unit-work pipeline is exactly the base steady-state
     model: objective values must coincide. *)
  List.iter
    (fun seed ->
      let pr = random_problem ~kmin:3 ~kmax:6 seed in
      let platform = Problem.platform pr in
      let apps =
        List.map
          (fun k ->
            { Pipeline.source = k; payoff = Problem.payoff pr k;
              stages = [ { Pipeline.work = 1.0; expansion = 0.0 } ] })
          (Problem.active pr)
      in
      match
        (Pipeline.solve ~objective:Lp_relax.Maxmin platform apps,
         Heuristics.lp_bound ~objective:Lp_relax.Maxmin pr)
      with
      | Ok pl, Ok base ->
        Alcotest.(check (float 1e-4))
          (Printf.sprintf "seed %d" seed)
          base pl.Pipeline.objective_value
      | Error msg, _ -> Alcotest.failf "pipeline failed: %s" msg
      | _, Error msg -> Alcotest.failf "base LP failed: %s" msg)
    [ 3; 17; 42 ]

let test_pipeline_two_stage_hand_instance () =
  (* Source A (no compute) feeds worker B: stage 1 costs 1 and doubles
     the data, stage 2 costs 2 per data unit.  All compute lands on B:
     alpha * (1 + 2*2) <= 12 => alpha = 2.4. *)
  let topology = G.path_graph 2 in
  let clusters =
    [| { P.speed = 0.0; local_bw = 10.0; router = 0 };
       { P.speed = 12.0; local_bw = 100.0; router = 1 } |]
  in
  let backbones = [| { P.bw = 100.0; max_connect = 10 } |] in
  let platform = P.make ~clusters ~topology ~backbones in
  let app =
    { Pipeline.source = 0; payoff = 1.0;
      stages =
        [ { Pipeline.work = 1.0; expansion = 2.0 };
          { Pipeline.work = 2.0; expansion = 0.0 } ] }
  in
  match Pipeline.solve platform [ app ] with
  | Error msg -> Alcotest.failf "pipeline failed: %s" msg
  | Ok sol ->
    Alcotest.(check (float 1e-6)) "rate" 2.4 sol.Pipeline.rates.(0);
    (* Placement totals match the rate at the last stage. *)
    let last_stage_total =
      List.fold_left
        (fun acc (a, s, _, y) -> if a = 0 && s = 2 then acc +. y else acc)
        0.0 sol.Pipeline.placement
    in
    Alcotest.(check (float 1e-6)) "placement consistent" 4.8 last_stage_total
    (* last stage input is 2 * alpha data units *)

let test_pipeline_network_bound_expansion () =
  (* Two clusters; stage 1 must run at the source (only the source has
     speed for it? no — source has all the speed; worker runs stage 2).
     Expansion 3 makes the inter-stage traffic the bottleneck. *)
  let topology = G.path_graph 2 in
  let clusters =
    [| { P.speed = 5.0; local_bw = 6.0; router = 0 };
       { P.speed = 50.0; local_bw = 100.0; router = 1 } |]
  in
  let backbones = [| { P.bw = 100.0; max_connect = 4 } |] in
  let platform = P.make ~clusters ~topology ~backbones in
  let app =
    { Pipeline.source = 0; payoff = 1.0;
      stages =
        [ { Pipeline.work = 1.0; expansion = 3.0 };
          { Pipeline.work = 10.0; expansion = 0.0 } ] }
  in
  match Pipeline.solve platform [ app ] with
  | Error msg -> Alcotest.failf "pipeline failed: %s" msg
  | Ok sol ->
    (* The optimum mixes placements: stage 1 entirely at the source
       (alpha <= 5), a sliver b of stage 2 pulled back to the source to
       relieve the worker.  Binding system: alpha + 10 b = 5 (source
       compute), 30 alpha - 10 b = 50 (worker compute) => alpha = 55/31;
       traffic 3 alpha - b < 6 is slack. *)
    Alcotest.(check (float 1e-6)) "rate" (55.0 /. 31.0) sol.Pipeline.rates.(0)

let test_pipeline_no_active_apps () =
  let pr = two_cluster_problem () in
  let app = { Pipeline.source = 0; payoff = 0.0;
              stages = [ { Pipeline.work = 1.0; expansion = 0.0 } ] } in
  match Pipeline.solve (Problem.platform pr) [ app ] with
  | Ok sol ->
    Alcotest.(check (float 0.0)) "zero" 0.0 sol.Pipeline.objective_value
  | Error msg -> Alcotest.failf "pipeline failed: %s" msg

let test_pipeline_multiple_apps_per_cluster () =
  (* "Our method is easily extensible to the case in which more than one
     application originate from the same cluster" (Section 3.1): two
     single-stage applications share source 0 and the MAXMIN objective
     splits the downstream capacity between them. *)
  let topology = G.path_graph 2 in
  let clusters =
    [| { P.speed = 0.0; local_bw = 50.0; router = 0 };
       { P.speed = 12.0; local_bw = 50.0; router = 1 } |]
  in
  let backbones = [| { P.bw = 30.0; max_connect = 4 } |] in
  let platform = P.make ~clusters ~topology ~backbones in
  let app payoff =
    { Pipeline.source = 0; payoff;
      stages = [ { Pipeline.work = 1.0; expansion = 0.0 } ] }
  in
  match Pipeline.solve platform [ app 1.0; app 1.0 ] with
  | Error msg -> Alcotest.failf "pipeline failed: %s" msg
  | Ok sol ->
    Alcotest.(check (float 1e-6)) "even split" 6.0 sol.Pipeline.rates.(0);
    Alcotest.(check (float 1e-6)) "even split 2" 6.0 sol.Pipeline.rates.(1);
    (* Weighted: payoff 2 gets half the raw rate of payoff 1. *)
    (match Pipeline.solve platform [ app 1.0; app 2.0 ] with
     | Ok sol ->
       Alcotest.(check (float 1e-6)) "weighted" 8.0 sol.Pipeline.rates.(0);
       Alcotest.(check (float 1e-6)) "weighted 2" 4.0 sol.Pipeline.rates.(1)
     | Error msg -> Alcotest.failf "weighted pipeline failed: %s" msg)

let test_pipeline_validation () =
  let platform = Problem.platform (two_cluster_problem ()) in
  Alcotest.check_raises "no stages"
    (Invalid_argument "Pipeline.solve: app 0 has no stages") (fun () ->
      ignore (Pipeline.solve platform [ { Pipeline.source = 0; payoff = 1.0; stages = [] } ]));
  Alcotest.check_raises "bad source"
    (Invalid_argument "Pipeline.solve: app 0 has a bad source") (fun () ->
      ignore
        (Pipeline.solve platform
           [ { Pipeline.source = 9; payoff = 1.0;
               stages = [ { Pipeline.work = 1.0; expansion = 0.0 } ] } ]))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dls_core"
    [ ( "problem",
        [ Alcotest.test_case "basics" `Quick test_problem_basics ] );
      ( "feasibility",
        [ Alcotest.test_case "feasible case" `Quick test_check_feasible;
          Alcotest.test_case "violations" `Quick test_check_violations;
          Alcotest.test_case "inactive sender" `Quick test_check_inactive_sender ] );
      ( "lp",
        [ Alcotest.test_case "single cluster" `Quick test_lp_single_cluster;
          Alcotest.test_case "star bottlenecks" `Quick test_lp_star_bottlenecks;
          Alcotest.test_case "maxmin vs sum" `Quick test_lp_maxmin_vs_sum;
          Alcotest.test_case "payoff weighting" `Quick test_lp_payoff_weighting;
          Alcotest.test_case "no active apps" `Quick test_lp_no_active_apps;
          Alcotest.test_case "exact matches float" `Quick test_lp_exact_matches_float;
          Alcotest.test_case "fixed beta 0" `Quick test_lp_fixed_beta_zero_kills_route ] );
      ( "heuristics",
        [ Alcotest.test_case "greedy isolated" `Quick
            test_greedy_isolated_clusters_run_locally;
          Alcotest.test_case "greedy delegates" `Quick
            test_greedy_single_active_app_uses_network;
          Alcotest.test_case "greedy zero payoff" `Quick test_greedy_skips_zero_payoff;
          Alcotest.test_case "LPR poor, LPRG reclaims" `Quick
            test_lpr_rounds_down_to_zero;
          Alcotest.test_case "LPRR stats" `Quick test_lprr_stats_bounds;
          Alcotest.test_case "LPRR warm vs cold smoke" `Quick
            test_lprr_warm_cold_same_coins;
          Alcotest.test_case "names" `Quick test_heuristics_names ] );
      qsuite "heuristics-prop"
        [ prop_heuristics_feasible; prop_lp_upper_bounds_heuristics;
          prop_lprg_dominates_lpr ];
      qsuite "lprr-warm-prop"
        [ prop_lprr_slots_match_recompute; prop_lprr_warm_matches_cold_lps ];
      qsuite "schedule-prop" [ prop_schedule_approx_always_valid ];
      ( "schedule",
        [ Alcotest.test_case "from exact LP" `Quick test_schedule_from_exact_lp;
          Alcotest.test_case "period lcm" `Quick test_schedule_period_is_lcm;
          Alcotest.test_case "float roundtrip" `Quick test_schedule_float_roundtrip;
          Alcotest.test_case "approx + scale" `Quick test_schedule_approx_and_scale ] );
      ( "reduction",
        [ Alcotest.test_case "platform valid" `Quick test_reduction_platform_valid;
          Alcotest.test_case "MIS allocation" `Quick
            test_reduction_mis_allocation_feasible;
          Alcotest.test_case "adjacent infeasible" `Quick
            test_reduction_adjacent_vertices_infeasible;
          Alcotest.test_case "heuristics bounded by MIS" `Quick
            test_reduction_heuristics_bounded_by_mis;
          Alcotest.test_case "triangle fractional LP" `Quick
            test_reduction_triangle_fractional_lp ] );
      qsuite "reduction-prop" [ prop_reduction_equivalence_small_graphs ];
      ( "makespan",
        [ Alcotest.test_case "periodic estimate" `Quick test_makespan_periodic;
          Alcotest.test_case "starved app rejected" `Quick
            test_makespan_zero_throughput_rejected;
          Alcotest.test_case "asymptotic optimality" `Quick
            test_makespan_asymptotic_optimality;
          Alcotest.test_case "sequential baseline" `Quick
            test_makespan_sequential_baseline ] );
      ( "fairness",
        [ Alcotest.test_case "metrics" `Quick test_fairness_metrics ] );
      qsuite "fairness-prop" [ prop_fairness_lprr_at_least_as_fair_as_g ];
      ( "unbounded-baseline",
        [ Alcotest.test_case "gap on starved platform" `Quick
            test_unbounded_baseline_gap ] );
      qsuite "unbounded-baseline-prop" [ prop_unbounded_baseline_ordering ];
      ( "timeline",
        [ Alcotest.test_case "build and validate" `Quick test_timeline_build_and_validate;
          Alcotest.test_case "rejects bad workloads" `Quick
            test_timeline_rejects_starved_app ] );
      qsuite "timeline-prop" [ prop_timeline_valid_on_random_platforms ];
      ( "mip",
        [ Alcotest.test_case "optimum = MIS on gadgets" `Slow
            test_mip_equals_mis_on_gadgets;
          Alcotest.test_case "Theorem 1 exhaustive on 4 vertices" `Slow
            test_mip_equals_mis_exhaustive_n4 ] );
      qsuite "mip-prop" [ prop_mip_between_heuristics_and_lp ];
      ( "viz",
        [ Alcotest.test_case "allocation dot" `Quick test_viz_dot;
          Alcotest.test_case "utilization analysis" `Quick test_analysis_utilization ] );
      ( "pipeline",
        [ Alcotest.test_case "single stage = base model" `Quick
            test_pipeline_single_stage_equals_base_model;
          Alcotest.test_case "two-stage hand instance" `Quick
            test_pipeline_two_stage_hand_instance;
          Alcotest.test_case "expansion binds network" `Quick
            test_pipeline_network_bound_expansion;
          Alcotest.test_case "no active apps" `Quick test_pipeline_no_active_apps;
          Alcotest.test_case "multiple apps per cluster" `Quick
            test_pipeline_multiple_apps_per_cluster;
          Alcotest.test_case "validation" `Quick test_pipeline_validation ] ) ]
