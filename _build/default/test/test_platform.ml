(* Tests for Dls_platform: model invariants, routing, the Table 1
   generator, and the cluster-equivalence formulas. *)

module G = Dls_graph.Graph
module P = Dls_platform.Platform
module Gen = Dls_platform.Generator
module Equiv = Dls_platform.Equivalence
module Prng = Dls_util.Prng

(* A 3-cluster line platform: C0 -r0- l0 -r1(C1)- l1 -r2- C2. *)
let line3 () =
  let topology = G.path_graph 3 in
  let clusters =
    [| { P.speed = 100.0; local_bw = 40.0; router = 0 };
       { P.speed = 50.0; local_bw = 30.0; router = 1 };
       { P.speed = 80.0; local_bw = 20.0; router = 2 } |]
  in
  let backbones =
    [| { P.bw = 10.0; max_connect = 2 }; { P.bw = 5.0; max_connect = 3 } |]
  in
  P.make ~clusters ~topology ~backbones

let test_accessors () =
  let p = line3 () in
  Alcotest.(check int) "clusters" 3 (P.num_clusters p);
  Alcotest.(check int) "routers" 3 (P.num_routers p);
  Alcotest.(check int) "backbones" 2 (P.num_backbones p);
  Alcotest.(check (float 0.0)) "speed" 50.0 (P.speed p 1);
  Alcotest.(check (float 0.0)) "local bw" 20.0 (P.local_bw p 2);
  Alcotest.(check (float 0.0)) "total speed" 230.0 (P.total_speed p)

let test_routes () =
  let p = line3 () in
  Alcotest.(check (option (list int))) "0->1" (Some [ 0 ]) (P.route p 0 1);
  Alcotest.(check (option (list int))) "0->2" (Some [ 0; 1 ]) (P.route p 0 2);
  Alcotest.(check (option (list int))) "2->0" (Some [ 1; 0 ]) (P.route p 2 0);
  Alcotest.(check (option (list int))) "self" (Some []) (P.route p 1 1)

let test_route_bottleneck () =
  let p = line3 () in
  (match P.route_bottleneck p 0 2 with
   | Some b -> Alcotest.(check (float 0.0)) "min bw on path" 5.0 b
   | None -> Alcotest.fail "expected route");
  match P.route_bottleneck p 0 0 with
  | Some b -> Alcotest.(check bool) "self infinite" true (b = infinity)
  | None -> Alcotest.fail "expected self route"

let test_routes_through () =
  let p = line3 () in
  let through0 = P.routes_through p 0 in
  Alcotest.(check int) "pairs through l0" 4 (List.length through0);
  Alcotest.(check bool) "0->1 uses l0" true (List.mem (0, 1) through0);
  Alcotest.(check bool) "0->2 uses l0" true (List.mem (0, 2) through0);
  Alcotest.(check bool) "1->2 not via l0" false (List.mem (1, 2) through0)

let test_same_router_clusters () =
  let topology = G.path_graph 2 in
  let clusters =
    [| { P.speed = 1.0; local_bw = 1.0; router = 0 };
       { P.speed = 1.0; local_bw = 1.0; router = 0 };
       { P.speed = 1.0; local_bw = 1.0; router = 1 } |]
  in
  let backbones = [| { P.bw = 2.0; max_connect = 1 } |] in
  let p = P.make ~clusters ~topology ~backbones in
  Alcotest.(check (option (list int))) "co-located empty route" (Some [])
    (P.route p 0 1);
  match P.route_bottleneck p 0 1 with
  | Some b -> Alcotest.(check bool) "no backbone constraint" true (b = infinity)
  | None -> Alcotest.fail "expected route"

let test_disconnected_platform () =
  let topology = G.create ~n:2 ~edges:[] in
  let clusters =
    [| { P.speed = 1.0; local_bw = 1.0; router = 0 };
       { P.speed = 1.0; local_bw = 1.0; router = 1 } |]
  in
  let p = P.make ~clusters ~topology ~backbones:[||] in
  Alcotest.(check (option (list int))) "unreachable" None (P.route p 0 1);
  Alcotest.(check bool) "no bottleneck" true (P.route_bottleneck p 0 1 = None)

let test_route_overrides () =
  (* Force 0->2 through the long way in a triangle. *)
  let topology = G.cycle 3 in
  (* cycle 3 edges: e0=(0,1) e1=(1,2) e2=(2,0) *)
  let clusters =
    Array.init 3 (fun k -> { P.speed = 1.0; local_bw = 1.0; router = k })
  in
  let backbones = Array.make 3 { P.bw = 1.0; max_connect = 1 } in
  let p =
    P.make_with_routes ~clusters ~topology ~backbones ~routes:[ (0, 2, [ 0; 1 ]) ]
  in
  Alcotest.(check (option (list int))) "override used" (Some [ 0; 1 ]) (P.route p 0 2);
  Alcotest.(check (option (list int))) "others default" (Some [ 0 ]) (P.route p 0 1);
  Alcotest.check_raises "broken override rejected"
    (Invalid_argument "Platform: route does not reach the destination router")
    (fun () ->
      ignore
        (P.make_with_routes ~clusters ~topology ~backbones ~routes:[ (0, 2, [ 0 ]) ]))

let test_make_validation () =
  let topology = G.path_graph 2 in
  let backbones = [| { P.bw = 1.0; max_connect = 1 } |] in
  Alcotest.check_raises "negative speed"
    (Invalid_argument "Platform.make: cluster 0 has negative speed") (fun () ->
      ignore
        (P.make
           ~clusters:[| { P.speed = -1.0; local_bw = 1.0; router = 0 } |]
           ~topology ~backbones));
  Alcotest.check_raises "bad router"
    (Invalid_argument "Platform.make: cluster 0 references bad router") (fun () ->
      ignore
        (P.make
           ~clusters:[| { P.speed = 1.0; local_bw = 1.0; router = 5 } |]
           ~topology ~backbones));
  Alcotest.check_raises "bw/edge mismatch"
    (Invalid_argument "Platform.make: one backbone descriptor per topology edge required")
    (fun () ->
      ignore
        (P.make
           ~clusters:[| { P.speed = 1.0; local_bw = 1.0; router = 0 } |]
           ~topology ~backbones:[||]))

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let test_generator_deterministic () =
  let gen seed =
    let rng = Prng.create ~seed in
    Gen.generate rng Gen.default_params
  in
  let p1 = gen 42 and p2 = gen 42 in
  Alcotest.(check int) "same backbone count" (P.num_backbones p1) (P.num_backbones p2);
  Alcotest.(check (float 0.0)) "same g_0" (P.local_bw p1 0) (P.local_bw p2 0);
  if P.num_backbones p1 > 0 then
    Alcotest.(check (float 0.0)) "same bw_0" (P.backbone p1 0).P.bw
      (P.backbone p2 0).P.bw

let test_table1_grid_size () =
  (* 10 * 8 * 4 * 4 * 9 * 10 = 115,200 settings. *)
  Alcotest.(check int) "grid size" 115_200 (List.length (Gen.table1_grid ()))

let prop_generated_platform_valid =
  QCheck2.Test.make ~name:"generated platforms pass validation" ~count:60
    QCheck2.Gen.(pair (int_range 1 30) (int_range 0 1_000_000))
    (fun (k, seed) ->
      let rng = Prng.create ~seed in
      let p =
        Gen.generate rng
          { Gen.default_params with k; connectivity = 0.3; heterogeneity = 0.6 }
      in
      P.validate p = Ok ())

let prop_generated_params_in_range =
  QCheck2.Test.make ~name:"sampled parameters stay within heterogeneity band"
    ~count:40
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let pr = { Gen.default_params with k = 12; heterogeneity = 0.4 } in
      let p = Gen.generate rng pr in
      let in_band v mean = v >= mean *. 0.6 -. 1e-9 && v <= mean *. 1.4 +. 1e-9 in
      let clusters_ok =
        List.for_all
          (fun k -> in_band (P.local_bw p k) pr.Gen.mean_g && P.speed p k = 100.0)
          (List.init (P.num_clusters p) Fun.id)
      in
      let backbones_ok =
        List.for_all
          (fun i ->
            let b = P.backbone p i in
            in_band b.P.bw pr.Gen.mean_bw
            && b.P.max_connect >= 1
            && float_of_int b.P.max_connect <= (pr.Gen.mean_maxcon *. 1.4) +. 1.0)
          (List.init (P.num_backbones p) Fun.id)
      in
      clusters_ok && backbones_ok)

let prop_generated_all_pairs_routed =
  QCheck2.Test.make ~name:"every cluster pair is routed after generation" ~count:40
    QCheck2.Gen.(pair (int_range 2 25) (int_range 0 1_000_000))
    (fun (k, seed) ->
      let rng = Prng.create ~seed in
      let p =
        Gen.generate rng { Gen.default_params with k; connectivity = 0.1 }
      in
      let ok = ref true in
      for a = 0 to k - 1 do
        for b = 0 to k - 1 do
          if P.route p a b = None then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

module Pio = Dls_platform.Platform_io

let platforms_equal a b =
  P.num_clusters a = P.num_clusters b
  && P.num_routers a = P.num_routers b
  && P.num_backbones a = P.num_backbones b
  && List.for_all
       (fun k ->
         P.cluster a k = P.cluster b k
         && List.for_all (fun l -> P.route a k l = P.route b k l)
              (List.init (P.num_clusters a) Fun.id))
       (List.init (P.num_clusters a) Fun.id)
  && List.for_all
       (fun i ->
         P.backbone a i = P.backbone b i
         && G.endpoints (P.topology a) i = G.endpoints (P.topology b) i)
       (List.init (P.num_backbones a) Fun.id)

let test_io_roundtrip_line3 () =
  let p = line3 () in
  match Pio.of_string (Pio.to_string p) with
  | Ok p' -> Alcotest.(check bool) "roundtrip" true (platforms_equal p p')
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_io_preserves_route_overrides () =
  let topology = G.cycle 3 in
  let clusters =
    Array.init 3 (fun k -> { P.speed = 1.0; local_bw = 1.0; router = k })
  in
  let backbones = Array.make 3 { P.bw = 1.0; max_connect = 1 } in
  let p =
    P.make_with_routes ~clusters ~topology ~backbones ~routes:[ (0, 2, [ 0; 1 ]) ]
  in
  match Pio.of_string (Pio.to_string p) with
  | Ok p' ->
    Alcotest.(check (option (list int))) "override preserved" (Some [ 0; 1 ])
      (P.route p' 0 2)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_io_parse_errors () =
  let has_sub msg fragment =
    let n = String.length msg and m = String.length fragment in
    let rec go i = i + m <= n && (String.sub msg i m = fragment || go (i + 1)) in
    m = 0 || go 0
  in
  let check text fragment =
    match Pio.of_string text with
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
    | Error msg ->
      Alcotest.(check bool) (text ^ " -> " ^ msg) true (has_sub msg fragment)
  in
  check "nonsense 1\n" "unknown directive";
  check "dls-platform 2\n" "unsupported";
  check "dls-platform 1\ncluster a b c\n" "bad cluster";
  check "dls-platform 1\ncluster 1 1 0\n" "routers"

let test_io_parse_error_positions () =
  (* Semantic errors — previously bare [Invalid_argument]s escaping from
     Platform.make_with_routes — must now name the offending line. *)
  let check_line text line fragment =
    match Pio.parse text with
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
    | Error e ->
      Alcotest.(check int) (fragment ^ ": line") line e.Pio.line;
      let msg = Format.asprintf "%a" Pio.pp_parse_error e in
      let has_sub =
        let n = String.length msg and m = String.length fragment in
        let rec go i = i + m <= n && (String.sub msg i m = fragment || go (i + 1)) in
        m = 0 || go 0
      in
      Alcotest.(check bool) (text ^ " -> " ^ msg) true has_sub
  in
  (* Cluster pointing at a router that does not exist: line 3. *)
  check_line "dls-platform 1\nrouters 1\ncluster 1 1 5\n" 3 "router 5";
  (* Backbone with an out-of-range endpoint: line 4. *)
  check_line
    "dls-platform 1\nrouters 2\ncluster 1 1 0\ncluster 1 1 9\n"
    4 "router 9";
  check_line
    "dls-platform 1\nrouters 2\ncluster 1 1 0\ncluster 1 1 1\nbackbone 0 7 1 1\n"
    5 "endpoints";
  check_line
    "dls-platform 1\nrouters 2\ncluster 1 1 0\ncluster 1 1 1\nbackbone 0 1 0 1\n"
    5 "positive";
  (* A route whose links do not reach the destination router: line 6. *)
  check_line
    "dls-platform 1\nrouters 3\ncluster 1 1 0\ncluster 1 1 2\nbackbone 0 1 1 1\nroute 0 1 0\n"
    6 "route";
  (* Lexical errors still carry their line. *)
  check_line "dls-platform 1\nrouters 1\ncluster a b c\n" 3 "bad cluster";
  (* Errors with no single source line report line 0, and the renderer
     drops the "line" prefix. *)
  (match Pio.parse "dls-platform 1\ncluster 1 1 0\n" with
   | Ok _ -> Alcotest.fail "expected missing-routers error"
   | Error e ->
     Alcotest.(check int) "no line" 0 e.Pio.line;
     let msg = Format.asprintf "%a" Pio.pp_parse_error e in
     Alcotest.(check bool) "no line prefix" false
       (String.length msg >= 4 && String.sub msg 0 4 = "line"));
  (* of_string renders errors through the same pretty-printer. *)
  match Pio.of_string "dls-platform 1\nrouters 1\ncluster 1 1 5\n" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error msg ->
    Alcotest.(check bool) "string form has the line" true
      (String.length msg >= 7 && String.sub msg 0 7 = "line 3:")

let test_io_comments_and_blanks () =
  let text =
    "# a comment\n\ndls-platform 1\nrouters 1\n# another\ncluster 5 6 0\n"
  in
  match Pio.of_string text with
  | Ok p ->
    Alcotest.(check int) "one cluster" 1 (P.num_clusters p);
    Alcotest.(check (float 0.0)) "speed" 5.0 (P.speed p 0)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_io_file_roundtrip () =
  let p = line3 () in
  let path = Filename.temp_file "dls_platform" ".txt" in
  Pio.save ~path p;
  let result = Pio.load ~path in
  Sys.remove path;
  match result with
  | Ok p' -> Alcotest.(check bool) "file roundtrip" true (platforms_equal p p')
  | Error msg -> Alcotest.failf "load failed: %s" msg

let test_io_shipped_assets_parse () =
  (* The .dls files shipped under examples/platforms must stay loadable. *)
  let dir = "../examples/platforms" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".dls")
  in
  Alcotest.(check bool) "at least one asset" true (List.length files >= 1);
  List.iter
    (fun f ->
      match Pio.load ~path:(Filename.concat dir f) with
      | Ok p -> begin
        match P.validate p with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "%s invalid: %s" f msg
      end
      | Error msg -> Alcotest.failf "%s unparseable: %s" f msg)
    files

let prop_io_roundtrip_generated =
  QCheck2.Test.make ~name:"serialization roundtrips generated platforms" ~count:40
    QCheck2.Gen.(pair (int_range 1 15) (int_range 0 100_000))
    (fun (k, seed) ->
      let rng = Prng.create ~seed in
      let p = Gen.generate rng { Gen.default_params with k } in
      match Pio.of_string (Pio.to_string p) with
      | Ok p' -> platforms_equal p p'
      | Error _ -> false)

let has_sub msg fragment =
  let n = String.length msg and m = String.length fragment in
  let rec go i = i + m <= n && (String.sub msg i m = fragment || go (i + 1)) in
  m = 0 || go 0

let test_dot_export () =
  let dot = Dls_platform.Platform_dot.to_dot (line3 ()) in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true (has_sub dot fragment))
    [ "graph platform {"; "c0 [shape=box"; "r2 [shape=circle";
      "r0 -- r1 [label=\"l0 bw=10 cap=2\"]"; "c2 -- r2 [style=dashed]" ]

let test_speed_heterogeneity () =
  let rng = Prng.create ~seed:77 in
  let p =
    Gen.generate rng { Gen.default_params with k = 10; speed_heterogeneity = 0.5 }
  in
  let speeds = List.init 10 (P.speed p) in
  Alcotest.(check bool) "speeds vary" true
    (List.exists (fun s -> Float.abs (s -. 100.0) > 1.0) speeds);
  Alcotest.(check bool) "within band" true
    (List.for_all (fun s -> s >= 50.0 -. 1e-9 && s <= 150.0 +. 1e-9) speeds);
  Alcotest.check_raises "bad band"
    (Invalid_argument "Generator.generate: speed_heterogeneity must be in [0, 1)")
    (fun () ->
      ignore
        (Gen.generate rng { Gen.default_params with speed_heterogeneity = 1.0 }))

(* ------------------------------------------------------------------ *)
(* Single-round divisible-load distribution                            *)
(* ------------------------------------------------------------------ *)

module SR = Dls_platform.Single_round

let sr_workers () =
  [| { SR.bandwidth = 10.0; speed = 3.0 };
     { SR.bandwidth = 4.0; speed = 5.0 };
     { SR.bandwidth = 2.0; speed = 2.0 } |]

let test_single_round_equal_finish () =
  let plan = SR.distribute ~load:100.0 (sr_workers ()) in
  Array.iter
    (fun f -> Alcotest.(check (float 1e-9)) "equal finish" plan.SR.makespan f)
    plan.SR.finish_times;
  (* The whole load is distributed. *)
  let total = List.fold_left (fun acc (_, a) -> acc +. a) 0.0 plan.SR.chunks in
  Alcotest.(check (float 1e-9)) "total load" 100.0 total

let test_single_round_single_worker_closed_form () =
  (* One worker: makespan = load * (1/bw + 1/s). *)
  let plan = SR.distribute ~load:10.0 [| { SR.bandwidth = 5.0; speed = 2.0 } |] in
  Alcotest.(check (float 1e-9)) "closed form" (10.0 *. ((1.0 /. 5.0) +. 0.5))
    plan.SR.makespan

let test_single_round_master_helps () =
  let workers = sr_workers () in
  let without = SR.distribute ~load:100.0 workers in
  let with_master = SR.distribute ~master_speed:4.0 ~load:100.0 workers in
  Alcotest.(check bool) "master participation shortens" true
    (with_master.SR.makespan < without.SR.makespan)

let test_multi_installment_improves () =
  let workers = sr_workers () in
  let single = SR.distribute ~load:100.0 workers in
  let prev = ref single.SR.makespan in
  List.iter
    (fun rounds ->
      let plan = SR.multi_installment ~load:100.0 ~rounds workers in
      Alcotest.(check bool)
        (Printf.sprintf "rounds %d no worse" rounds)
        true
        (plan.SR.makespan <= !prev +. 1e-9);
      prev := plan.SR.makespan)
    [ 1; 2; 4; 8 ]

let test_single_round_validation () =
  Alcotest.check_raises "no workers" (Invalid_argument "Single_round: no workers")
    (fun () -> ignore (SR.distribute ~load:1.0 [||]));
  Alcotest.check_raises "bad load"
    (Invalid_argument "Single_round.distribute: non-positive load") (fun () ->
      ignore (SR.distribute ~load:0.0 (sr_workers ())));
  Alcotest.check_raises "master chunk needs speed"
    (Invalid_argument "Single_round.simulate: master chunk without master speed")
    (fun () -> ignore (SR.simulate (sr_workers ()) [ (-1, 1.0) ]))

let prop_single_round_simulate_consistent =
  QCheck2.Test.make ~name:"single-round plans re-simulate to the same makespan"
    ~count:100
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 6)
           (pair (float_range 0.5 20.0) (float_range 0.5 20.0)))
        (float_range 1.0 500.0))
    (fun (specs, load) ->
      let workers =
        Array.of_list (List.map (fun (bw, s) -> { SR.bandwidth = bw; speed = s }) specs)
      in
      let plan = SR.distribute ~load workers in
      let again = SR.simulate workers plan.SR.chunks in
      Float.abs (plan.SR.makespan -. again.SR.makespan) < 1e-9
      && Array.for_all2
           (fun a b -> Float.abs (a -. b) < 1e-6 *. Float.max 1.0 plan.SR.makespan)
           plan.SR.finish_times again.SR.finish_times
      && Array.for_all
           (fun f -> Float.abs (f -. plan.SR.makespan) < 1e-6 *. plan.SR.makespan)
           plan.SR.finish_times)

(* ------------------------------------------------------------------ *)
(* Equivalence                                                         *)
(* ------------------------------------------------------------------ *)

let test_multiport_star () =
  (* Root 10, workers: (bw 5, speed 3) -> 3; (bw 2, speed 9) -> 2. *)
  let n = Equiv.star ~root:10.0 ~workers:[ (5.0, 3.0); (2.0, 9.0) ] in
  Alcotest.(check (float 1e-9)) "uncapped" 15.0 (Equiv.multiport_speed n);
  Alcotest.(check (float 1e-9)) "egress capped" 14.0
    (Equiv.multiport_speed ~egress_cap:4.0 n)

let test_multiport_tree () =
  (* Two-level tree: root 1; child (bw 10, compute 2) with its own leaf
     (bw 1, speed 100) -> child capacity 2 + 1 = 3; total 1 + min(10,3). *)
  let child = { Equiv.compute = 2.0; children = [ (1.0, Equiv.leaf 100.0) ] } in
  let root = { Equiv.compute = 1.0; children = [ (10.0, child) ] } in
  Alcotest.(check (float 1e-9)) "tree" 4.0 (Equiv.multiport_speed root)

let test_one_port_star () =
  (* Two fast links, slow workers: both saturate within the period.
     Root 0; workers (bw 10, s 1) x2: t_i = 0.1 each -> total 2. *)
  let n = Equiv.star ~root:0.0 ~workers:[ (10.0, 1.0); (10.0, 1.0) ] in
  Alcotest.(check (float 1e-9)) "both saturated" 2.0 (Equiv.one_port_speed n);
  (* Port-bound: one worker with bw 2 and huge speed -> 2. *)
  let n2 = Equiv.star ~root:1.0 ~workers:[ (2.0, 1000.0) ] in
  Alcotest.(check (float 1e-9)) "port bound" 3.0 (Equiv.one_port_speed n2);
  (* Greedy order matters: (bw 4, s 2) then (bw 1, s 10):
     t1 = 0.5 gives 2; remaining 0.5 at bw 1 gives 0.5 -> 2.5. *)
  let n3 = Equiv.star ~root:0.0 ~workers:[ (1.0, 10.0); (4.0, 2.0) ] in
  Alcotest.(check (float 1e-9)) "greedy order" 2.5 (Equiv.one_port_speed n3)

let test_one_port_leq_multiport () =
  let n =
    Equiv.star ~root:2.0 ~workers:[ (3.0, 4.0); (5.0, 1.0); (2.0, 2.0) ]
  in
  Alcotest.(check bool) "one-port <= multiport" true
    (Equiv.one_port_speed n <= Equiv.multiport_speed n +. 1e-9)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dls_platform"
    [ ( "model",
        [ Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "routes" `Quick test_routes;
          Alcotest.test_case "route bottleneck" `Quick test_route_bottleneck;
          Alcotest.test_case "routes through link" `Quick test_routes_through;
          Alcotest.test_case "same-router clusters" `Quick test_same_router_clusters;
          Alcotest.test_case "disconnected" `Quick test_disconnected_platform;
          Alcotest.test_case "route overrides" `Quick test_route_overrides;
          Alcotest.test_case "validation" `Quick test_make_validation ] );
      ( "generator",
        [ Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "table1 grid size" `Quick test_table1_grid_size ] );
      qsuite "generator-prop"
        [ prop_generated_platform_valid; prop_generated_params_in_range;
          prop_generated_all_pairs_routed ];
      ( "serialization",
        [ Alcotest.test_case "roundtrip line3" `Quick test_io_roundtrip_line3;
          Alcotest.test_case "route overrides" `Quick test_io_preserves_route_overrides;
          Alcotest.test_case "parse errors" `Quick test_io_parse_errors;
          Alcotest.test_case "parse error positions" `Quick
            test_io_parse_error_positions;
          Alcotest.test_case "comments and blanks" `Quick test_io_comments_and_blanks;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          Alcotest.test_case "shipped assets parse" `Quick
            test_io_shipped_assets_parse ] );
      qsuite "serialization-prop" [ prop_io_roundtrip_generated ];
      ( "rendering",
        [ Alcotest.test_case "dot export" `Quick test_dot_export;
          Alcotest.test_case "speed heterogeneity" `Quick test_speed_heterogeneity ] );
      ( "single-round",
        [ Alcotest.test_case "equal finish" `Quick test_single_round_equal_finish;
          Alcotest.test_case "closed form" `Quick
            test_single_round_single_worker_closed_form;
          Alcotest.test_case "master helps" `Quick test_single_round_master_helps;
          Alcotest.test_case "multi-installment improves" `Quick
            test_multi_installment_improves;
          Alcotest.test_case "validation" `Quick test_single_round_validation ] );
      qsuite "single-round-prop" [ prop_single_round_simulate_consistent ];
      ( "equivalence",
        [ Alcotest.test_case "multiport star" `Quick test_multiport_star;
          Alcotest.test_case "multiport tree" `Quick test_multiport_tree;
          Alcotest.test_case "one-port star" `Quick test_one_port_star;
          Alcotest.test_case "one-port <= multiport" `Quick test_one_port_leq_multiport ] ) ]
