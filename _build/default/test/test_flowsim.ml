(* Tests for Dls_flowsim: max-min fairness known answers and simulator
   convergence to the steady-state throughput predicted by feasible
   allocations. *)

module G = Dls_graph.Graph
module P = Dls_platform.Platform
module Gen = Dls_platform.Generator
module Prng = Dls_util.Prng
module Sharing = Dls_flowsim.Sharing
module Sim = Dls_flowsim.Simulator
open Dls_core

let feps = 1e-9

(* ------------------------------------------------------------------ *)
(* Sharing                                                             *)
(* ------------------------------------------------------------------ *)

let test_sharing_equal_split () =
  let r =
    Sharing.rates ~capacities:[| 9.0 |]
      [ Sharing.flow [ 0 ];
        Sharing.flow [ 0 ];
        Sharing.flow [ 0 ] ]
  in
  Array.iter (fun v -> Alcotest.(check (float feps)) "third" 3.0 v) r

let test_sharing_cap_redistributes () =
  (* One flow capped at 1 on a capacity-9 link: the others split 8. *)
  let r =
    Sharing.rates ~capacities:[| 9.0 |]
      [ Sharing.flow ~cap:1.0 [ 0 ];
        Sharing.flow [ 0 ];
        Sharing.flow [ 0 ] ]
  in
  Alcotest.(check (float feps)) "capped" 1.0 r.(0);
  Alcotest.(check (float feps)) "fair rest" 4.0 r.(1);
  Alcotest.(check (float feps)) "fair rest 2" 4.0 r.(2)

let test_sharing_two_resources () =
  (* Classic max-min: flow A crosses both links, B only link 0, C only
     link 1; capacities 2 and 4: A and B get 1 each on link 0; C gets 3. *)
  let r =
    Sharing.rates ~capacities:[| 2.0; 4.0 |]
      [ Sharing.flow [ 0; 1 ];
        Sharing.flow [ 0 ];
        Sharing.flow [ 1 ] ]
  in
  Alcotest.(check (float feps)) "A" 1.0 r.(0);
  Alcotest.(check (float feps)) "B" 1.0 r.(1);
  Alcotest.(check (float feps)) "C" 3.0 r.(2)

let test_sharing_no_resource_takes_cap () =
  let r =
    Sharing.rates ~capacities:[||] [ Sharing.flow ~cap:7.5 [] ]
  in
  Alcotest.(check (float feps)) "cap" 7.5 r.(0)

let test_sharing_zero_capacity_pins () =
  let r =
    Sharing.rates ~capacities:[| 0.0 |]
      [ Sharing.flow [ 0 ] ]
  in
  Alcotest.(check (float feps)) "pinned" 0.0 r.(0)

let test_sharing_rejects_bad_input () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Sharing.rates: negative capacity") (fun () ->
      ignore (Sharing.rates ~capacities:[| -1.0 |] []));
  Alcotest.check_raises "unknown resource"
    (Invalid_argument "Sharing.rates: unknown resource") (fun () ->
      ignore
        (Sharing.rates ~capacities:[||] [ Sharing.flow ~cap:1.0 [ 0 ] ]))

let prop_sharing_respects_capacities =
  QCheck2.Test.make ~name:"max-min rates never exceed capacities or caps" ~count:200
    QCheck2.Gen.(
      pair
        (array_size (int_range 1 4) (float_range 0.5 20.0))
        (list_size (int_range 1 8)
           (pair (list_size (int_range 0 3) (int_range 0 3)) (float_range 0.1 30.0))))
    (fun (capacities, flow_specs) ->
      let nres = Array.length capacities in
      let flows =
        List.map
          (fun (rs, cap) ->
            Sharing.flow ~cap (List.filter (fun r -> r < nres) rs))
          flow_specs
      in
      let rates = Sharing.rates ~capacities flows in
      let used = Array.make nres 0.0 in
      List.iteri
        (fun i f ->
          List.iter (fun r -> used.(r) <- used.(r) +. rates.(i)) f.Sharing.resources)
        flows;
      Array.for_all2 (fun u c -> u <= c +. 1e-6) used capacities
      && List.for_all2
           (fun f i -> rates.(i) <= f.Sharing.cap +. 1e-6)
           flows
           (List.init (List.length flows) Fun.id))

let prop_sharing_work_conserving =
  QCheck2.Test.make
    ~name:"single shared link is fully used unless all flows are capped" ~count:200
    QCheck2.Gen.(
      pair (float_range 1.0 20.0)
        (list_size (int_range 1 6) (float_range 0.1 30.0)))
    (fun (capacity, caps) ->
      let flows = List.map (fun cap -> Sharing.flow ~cap [ 0 ]) caps in
      let rates = Sharing.rates ~capacities:[| capacity |] flows in
      let total = Array.fold_left ( +. ) 0.0 rates in
      let cap_sum = List.fold_left ( +. ) 0.0 caps in
      Float.abs (total -. Float.min capacity cap_sum) < 1e-6)

let test_sharing_weighted_split () =
  (* Weights 3:1 on a capacity-8 link: rates 6 and 2. *)
  let r =
    Sharing.rates ~capacities:[| 8.0 |]
      [ Sharing.flow ~weight:3.0 [ 0 ]; Sharing.flow ~weight:1.0 [ 0 ] ]
  in
  Alcotest.(check (float feps)) "heavy" 6.0 r.(0);
  Alcotest.(check (float feps)) "light" 2.0 r.(1)

let test_sharing_weighted_with_cap () =
  (* The heavy flow is capped below its weighted share: the remainder
     goes to the light one. *)
  let r =
    Sharing.rates ~capacities:[| 8.0 |]
      [ Sharing.flow ~weight:3.0 ~cap:3.0 [ 0 ]; Sharing.flow ~weight:1.0 [ 0 ] ]
  in
  Alcotest.(check (float feps)) "capped heavy" 3.0 r.(0);
  Alcotest.(check (float feps)) "light takes rest" 5.0 r.(1)

let test_sharing_rejects_bad_weight () =
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Sharing.rates: non-positive weight") (fun () ->
      ignore
        (Sharing.rates ~capacities:[| 1.0 |] [ Sharing.flow ~weight:0.0 [ 0 ] ]))

(* ------------------------------------------------------------------ *)
(* Latency                                                             *)
(* ------------------------------------------------------------------ *)

module Lat = Dls_flowsim.Latency

let line3_platform () =
  let topology = G.path_graph 3 in
  let clusters =
    Array.init 3 (fun k -> { P.speed = 10.0; local_bw = 10.0; router = k })
  in
  let backbones = Array.make 2 { P.bw = 5.0; max_connect = 4 } in
  P.make ~clusters ~topology ~backbones

let test_latency_one_way () =
  let p = line3_platform () in
  let lat = Lat.of_arrays p ~link:[| 0.1; 0.2 |] ~local:[| 0.01; 0.02; 0.03 |] in
  Alcotest.(check (float 1e-9)) "self" 0.0 (Lat.one_way p lat 1 1);
  (* 0 -> 2: local 0 + local 2 + links 0 and 1. *)
  Alcotest.(check (float 1e-9)) "path" (0.01 +. 0.03 +. 0.1 +. 0.2)
    (Lat.one_way p lat 0 2);
  Alcotest.(check (float 1e-9)) "rtt doubles" (2.0 *. Lat.one_way p lat 0 2)
    (Lat.rtt p lat 0 2);
  Alcotest.(check bool) "short route heavier weight" true
    (Lat.tcp_weight p lat 0 1 > Lat.tcp_weight p lat 0 2)

let test_latency_validation () =
  let p = line3_platform () in
  Alcotest.check_raises "negative" (Invalid_argument "Latency: negative latency")
    (fun () -> ignore (Lat.uniform p ~backbone:(-1.0) ~local:0.0));
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Latency.of_arrays: one latency per backbone link required")
    (fun () -> ignore (Lat.of_arrays p ~link:[| 0.0 |] ~local:[| 0.0; 0.0; 0.0 |]))

let test_simulator_with_latency () =
  (* Latency delays arrivals but steady-state throughput survives; zero
     latency must match the plain run exactly. *)
  let p = line3_platform () in
  let pr = Problem.make p ~payoffs:[| 1.0; 0.0; 0.0 |] in
  let a = Allocation.zero 3 in
  a.Allocation.alpha.(0).(1) <- 4.0;
  a.Allocation.beta.(0).(1) <- 1;
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible pr a);
  let plain = Sim.run ~periods:30 ~warmup:5 pr a in
  let zero_lat = Sim.run ~periods:30 ~warmup:5 ~latency:(Lat.none p) pr a in
  Alcotest.(check (float 1e-9)) "zero latency = plain" plain.Sim.achieved.(0)
    zero_lat.Sim.achieved.(0);
  let lat = Lat.uniform p ~backbone:0.05 ~local:0.01 in
  let delayed = Sim.run ~periods:30 ~warmup:5 ~latency:lat pr a in
  Alcotest.(check bool) "latency does not destroy throughput" true
    (delayed.Sim.achieved.(0) >= 0.9 *. plain.Sim.achieved.(0));
  Alcotest.(check bool) "throughput still bounded" true
    (delayed.Sim.achieved.(0) <= plain.Sim.predicted.(0) +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Simulator                                                           *)
(* ------------------------------------------------------------------ *)

let two_cluster_problem () =
  let topology = G.path_graph 2 in
  let clusters =
    Array.init 2 (fun k -> { P.speed = 10.0; local_bw = 4.0; router = k })
  in
  let backbones = [| { P.bw = 2.0; max_connect = 2 } |] in
  Problem.uniform (P.make ~clusters ~topology ~backbones)

let test_simulator_local_only () =
  let pr = two_cluster_problem () in
  let a = Allocation.zero 2 in
  a.Allocation.alpha.(0).(0) <- 7.0;
  a.Allocation.alpha.(1).(1) <- 3.0;
  let stats = Sim.run ~periods:10 ~warmup:1 pr a in
  Alcotest.(check (float 1e-6)) "app0" 7.0 stats.Sim.achieved.(0);
  Alcotest.(check (float 1e-6)) "app1" 3.0 stats.Sim.achieved.(1);
  Alcotest.(check int) "no late" 0 stats.Sim.late_transfers;
  Alcotest.(check (float 1e-9)) "efficiency" 1.0 (Sim.efficiency stats)

let test_simulator_remote_transfer () =
  let pr = two_cluster_problem () in
  let a = Allocation.zero 2 in
  a.Allocation.alpha.(0).(0) <- 6.0;
  a.Allocation.alpha.(0).(1) <- 4.0;
  a.Allocation.beta.(0).(1) <- 2;
  Alcotest.(check bool) "precondition feasible" true (Allocation.is_feasible pr a);
  let stats = Sim.run ~periods:30 ~warmup:3 pr a in
  Alcotest.(check bool) "app0 near predicted" true
    (stats.Sim.achieved.(0) >= 9.5 && stats.Sim.achieved.(0) <= 10.0 +. 1e-6);
  Alcotest.(check int) "no stalls" 0 stats.Sim.stalled_transfers

let test_simulator_stalled_when_no_connection () =
  let pr = two_cluster_problem () in
  let a = Allocation.zero 2 in
  (* Positive remote work but zero connections: rate cap 0. *)
  a.Allocation.alpha.(0).(1) <- 1.0;
  let stats = Sim.run ~periods:5 ~warmup:1 pr a in
  Alcotest.(check bool) "stalled detected" true (stats.Sim.stalled_transfers > 0);
  Alcotest.(check (float 1e-6)) "nothing achieved" 0.0 stats.Sim.achieved.(0)

let test_simulator_rejects_bad_window () =
  Alcotest.check_raises "bad window"
    (Invalid_argument "Simulator.run: need 0 <= warmup < periods") (fun () ->
      ignore (Sim.run ~periods:2 ~warmup:2 (two_cluster_problem ()) (Allocation.zero 2)))

let random_problem seed =
  let rng = Prng.create ~seed in
  let k = Prng.int rng ~lo:2 ~hi:6 in
  Problem.uniform
    (Gen.generate rng
       { Gen.default_params with k; connectivity = 0.5; heterogeneity = 0.4 })

let prop_simulator_close_to_prediction =
  QCheck2.Test.make
    ~name:"simulated throughput within 15% of prediction for greedy allocations"
    ~count:15
    (QCheck2.Gen.int_range 0 10_000)
    (fun seed ->
      let pr = random_problem seed in
      let a = Greedy.solve pr in
      let stats = Sim.run ~periods:30 ~warmup:5 pr a in
      stats.Sim.stalled_transfers = 0 && Sim.efficiency stats >= 0.85
      && Sim.efficiency stats <= 1.0 +. 1e-6)

let prop_simulator_never_exceeds_prediction =
  QCheck2.Test.make ~name:"simulated throughput never exceeds prediction" ~count:15
    (QCheck2.Gen.int_range 0 10_000)
    (fun seed ->
      let pr = random_problem (seed + 77) in
      let a = Greedy.solve pr in
      let stats = Sim.run ~periods:20 ~warmup:4 pr a in
      Array.for_all2
        (fun ach pre -> ach <= pre +. 1e-6)
        stats.Sim.achieved stats.Sim.predicted)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dls_flowsim"
    [ ( "sharing",
        [ Alcotest.test_case "equal split" `Quick test_sharing_equal_split;
          Alcotest.test_case "cap redistributes" `Quick test_sharing_cap_redistributes;
          Alcotest.test_case "two resources" `Quick test_sharing_two_resources;
          Alcotest.test_case "no resource" `Quick test_sharing_no_resource_takes_cap;
          Alcotest.test_case "zero capacity" `Quick test_sharing_zero_capacity_pins;
          Alcotest.test_case "bad input" `Quick test_sharing_rejects_bad_input;
          Alcotest.test_case "weighted split" `Quick test_sharing_weighted_split;
          Alcotest.test_case "weighted with cap" `Quick test_sharing_weighted_with_cap;
          Alcotest.test_case "bad weight" `Quick test_sharing_rejects_bad_weight ] );
      qsuite "sharing-prop"
        [ prop_sharing_respects_capacities; prop_sharing_work_conserving ];
      ( "latency",
        [ Alcotest.test_case "one way" `Quick test_latency_one_way;
          Alcotest.test_case "validation" `Quick test_latency_validation;
          Alcotest.test_case "simulator with latency" `Quick
            test_simulator_with_latency ] );
      ( "simulator",
        [ Alcotest.test_case "local only" `Quick test_simulator_local_only;
          Alcotest.test_case "remote transfer" `Quick test_simulator_remote_transfer;
          Alcotest.test_case "stalled transfer" `Quick
            test_simulator_stalled_when_no_connection;
          Alcotest.test_case "bad window" `Quick test_simulator_rejects_bad_window ] );
      qsuite "simulator-prop"
        [ prop_simulator_close_to_prediction; prop_simulator_never_exceeds_prediction ] ]
