(* Tests for Dls_graph: structural invariants, shortest paths (BFS and
   Dijkstra cross-checked on unit weights), random generation, and exact
   MIS against brute force. *)

module G = Dls_graph.Graph
module Dij = Dls_graph.Dijkstra
module Mis = Dls_graph.Mis
module Prng = Dls_util.Prng

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let test_create_basic () =
  let g = G.create ~n:3 ~edges:[ (0, 1); (1, 2) ] in
  Alcotest.(check int) "nodes" 3 (G.num_nodes g);
  Alcotest.(check int) "edges" 2 (G.num_edges g);
  Alcotest.(check (pair int int)) "e0" (0, 1) (G.endpoints g 0);
  Alcotest.(check bool) "mem 0-1" true (G.mem_edge g 0 1);
  Alcotest.(check bool) "mem 0-2" false (G.mem_edge g 0 2);
  Alcotest.(check int) "deg 1" 2 (G.degree g 1)

let test_create_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.create: self-loop")
    (fun () -> ignore (G.create ~n:2 ~edges:[ (1, 1) ]))

let test_create_rejects_out_of_range () =
  Alcotest.check_raises "bad endpoint"
    (Invalid_argument "Graph.create: endpoint out of range") (fun () ->
      ignore (G.create ~n:2 ~edges:[ (0, 2) ]))

let test_parallel_edges_allowed () =
  let g = G.create ~n:2 ~edges:[ (0, 1); (0, 1) ] in
  Alcotest.(check int) "two parallel edges" 2 (G.num_edges g);
  Alcotest.(check int) "degree counts both" 2 (G.degree g 0)

let test_constructors () =
  Alcotest.(check int) "complete 5 edges" 10 (G.num_edges (G.complete 5));
  Alcotest.(check int) "path 5 edges" 4 (G.num_edges (G.path_graph 5));
  Alcotest.(check int) "cycle 5 edges" 5 (G.num_edges (G.cycle 5));
  Alcotest.(check int) "star 5 edges" 4 (G.num_edges (G.star 5));
  let p = G.petersen () in
  Alcotest.(check int) "petersen nodes" 10 (G.num_nodes p);
  Alcotest.(check int) "petersen edges" 15 (G.num_edges p);
  Alcotest.(check bool) "petersen 3-regular" true
    (List.for_all (fun v -> G.degree p v = 3) (List.init 10 Fun.id))

(* ------------------------------------------------------------------ *)
(* Connectivity and paths                                              *)
(* ------------------------------------------------------------------ *)

let test_connectivity () =
  Alcotest.(check bool) "path connected" true (G.is_connected (G.path_graph 6));
  Alcotest.(check bool) "empty-edge graph" false
    (G.is_connected (G.create ~n:3 ~edges:[]));
  Alcotest.(check bool) "single node" true (G.is_connected (G.create ~n:1 ~edges:[]));
  Alcotest.(check bool) "empty graph" true (G.is_connected (G.create ~n:0 ~edges:[]))

let test_components () =
  let g = G.create ~n:5 ~edges:[ (0, 1); (2, 3) ] in
  let c = G.components g in
  Alcotest.(check bool) "0~1" true (c.(0) = c.(1));
  Alcotest.(check bool) "2~3" true (c.(2) = c.(3));
  Alcotest.(check bool) "0!~2" true (c.(0) <> c.(2));
  Alcotest.(check bool) "4 alone" true (c.(4) <> c.(0) && c.(4) <> c.(2))

let test_bfs_distances () =
  let g = G.path_graph 5 in
  let d = G.bfs_distances g ~src:0 in
  Alcotest.(check (array int)) "line distances" [| 0; 1; 2; 3; 4 |] d;
  let g2 = G.create ~n:3 ~edges:[ (0, 1) ] in
  let d2 = G.bfs_distances g2 ~src:0 in
  Alcotest.(check int) "unreachable" max_int d2.(2)

let test_shortest_path () =
  let g = G.cycle 6 in
  (match G.shortest_path g ~src:0 ~dst:2 with
   | Some (nodes, edge_ids) ->
     Alcotest.(check (list int)) "nodes" [ 0; 1; 2 ] nodes;
     Alcotest.(check int) "two hops" 2 (List.length edge_ids)
   | None -> Alcotest.fail "expected path");
  (match G.shortest_path g ~src:3 ~dst:3 with
   | Some (nodes, edge_ids) ->
     Alcotest.(check (list int)) "trivial path" [ 3 ] nodes;
     Alcotest.(check (list int)) "no edges" [] edge_ids
   | None -> Alcotest.fail "expected trivial path");
  let disconnected = G.create ~n:4 ~edges:[ (0, 1) ] in
  Alcotest.(check bool) "no path" true
    (G.shortest_path disconnected ~src:0 ~dst:3 = None)

let test_path_edges_consistent () =
  (* Every consecutive node pair on a reported path must be the endpoints
     of the reported edge id. *)
  let rng = Prng.create ~seed:7 in
  let g = G.connect_components rng (G.gnp rng ~n:20 ~p:0.15) in
  let ok = ref true in
  for dst = 1 to 19 do
    match G.shortest_path g ~src:0 ~dst with
    | None -> ok := false
    | Some (nodes, edge_ids) ->
      let rec check nodes edge_ids =
        match (nodes, edge_ids) with
        | [ _ ], [] -> true
        | u :: (v :: _ as rest), e :: es ->
          let a, b = G.endpoints g e in
          ((a = u && b = v) || (a = v && b = u)) && check rest es
        | _ -> false
      in
      if not (check nodes edge_ids) then ok := false
  done;
  Alcotest.(check bool) "paths consistent" true !ok

let test_dijkstra_matches_bfs_on_unit_weights () =
  let rng = Prng.create ~seed:11 in
  let g = G.connect_components rng (G.gnp rng ~n:30 ~p:0.1) in
  let bfs = G.bfs_distances g ~src:0 in
  let dij = Dij.distances g ~weight:(fun _ -> 1.0) ~src:0 in
  Array.iteri
    (fun v d ->
      let expected = if d = max_int then infinity else float_of_int d in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "node %d" v) expected dij.(v))
    bfs

let test_dijkstra_weighted () =
  (* Triangle with a cheap two-hop detour: 0-1 cost 10, 0-2-1 cost 3. *)
  let g = G.create ~n:3 ~edges:[ (0, 1); (0, 2); (2, 1) ] in
  let weight = function 0 -> 10.0 | 1 -> 1.0 | _ -> 2.0 in
  match Dij.shortest_path g ~weight ~src:0 ~dst:1 with
  | Some (nodes, _) -> Alcotest.(check (list int)) "detour" [ 0; 2; 1 ] nodes
  | None -> Alcotest.fail "expected path"

let test_connect_components () =
  let rng = Prng.create ~seed:3 in
  let g = G.create ~n:8 ~edges:[ (0, 1); (2, 3); (4, 5) ] in
  let g' = G.connect_components rng g in
  Alcotest.(check bool) "connected" true (G.is_connected g');
  Alcotest.(check (pair int int)) "original ids kept" (0, 1) (G.endpoints g' 0);
  (* 4 components need exactly 3 extra edges (nodes 6 and 7 are isolated,
     forming singleton components, so 5 components and 4 extra edges). *)
  Alcotest.(check int) "extra edges" (3 + 4) (G.num_edges g')

(* ------------------------------------------------------------------ *)
(* MIS                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mis_known () =
  Alcotest.(check int) "petersen" 4 (Mis.independence_number (G.petersen ()));
  Alcotest.(check int) "complete 6" 1 (Mis.independence_number (G.complete 6));
  Alcotest.(check int) "path 5" 3 (Mis.independence_number (G.path_graph 5));
  Alcotest.(check int) "cycle 5" 2 (Mis.independence_number (G.cycle 5));
  Alcotest.(check int) "cycle 6" 3 (Mis.independence_number (G.cycle 6));
  Alcotest.(check int) "star 7" 6 (Mis.independence_number (G.star 7));
  Alcotest.(check int) "empty edges" 4
    (Mis.independence_number (G.create ~n:4 ~edges:[]))

let test_mis_set_is_independent () =
  let g = G.petersen () in
  let s = Mis.max_independent_set g in
  Alcotest.(check bool) "independent" true (Mis.is_independent g s);
  Alcotest.(check int) "size" 4 (List.length s)

let brute_force_mis g =
  let n = G.num_nodes g in
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let nodes = List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id) in
    if Mis.is_independent g nodes then best := Stdlib.max !best (List.length nodes)
  done;
  !best

let prop_mis_matches_brute_force =
  QCheck2.Test.make ~name:"MIS matches brute force on random graphs" ~count:60
    QCheck2.Gen.(pair (int_range 1 10) (float_range 0.0 0.9))
    (fun (n, p) ->
      let rng = Prng.create ~seed:(n + int_of_float (p *. 1000.0)) in
      let g = G.gnp rng ~n ~p in
      Mis.independence_number g = brute_force_mis g)

let prop_gnp_connected_after_repair =
  QCheck2.Test.make ~name:"connect_components always yields connected graph"
    ~count:100
    QCheck2.Gen.(pair (int_range 1 25) (float_range 0.0 0.3))
    (fun (n, p) ->
      let rng = Prng.create ~seed:(n * 37) in
      G.is_connected (G.connect_components rng (G.gnp rng ~n ~p)))

let prop_bfs_triangle_inequality =
  QCheck2.Test.make ~name:"BFS distances satisfy edge relaxation" ~count:60
    (QCheck2.Gen.int_range 2 30)
    (fun n ->
      let rng = Prng.create ~seed:n in
      let g = G.connect_components rng (G.gnp rng ~n ~p:0.2) in
      let d = G.bfs_distances g ~src:0 in
      G.fold_edges
        (fun _ (u, v) ok -> ok && abs (d.(u) - d.(v)) <= 1)
        g true)

(* ------------------------------------------------------------------ *)
(* Topology models                                                     *)
(* ------------------------------------------------------------------ *)

module Topo = Dls_graph.Topologies

let test_waxman_parameters_checked () =
  let rng = Prng.create ~seed:1 in
  Alcotest.check_raises "alpha range"
    (Invalid_argument "Topologies.waxman: alpha and beta must be in (0, 1]")
    (fun () -> ignore (Topo.waxman rng ~n:5 ~alpha:0.0 ~beta:0.5))

let test_waxman_prefers_short_links () =
  (* With a small beta, long links are rare: denser alpha with tiny beta
     must produce fewer edges than the same alpha with beta = 1. *)
  let edges ~beta =
    let rng = Prng.create ~seed:5 in
    let total = ref 0 in
    for _ = 1 to 10 do
      total := !total + G.num_edges (Topo.waxman rng ~n:30 ~alpha:0.9 ~beta)
    done;
    !total
  in
  Alcotest.(check bool) "short-bias" true (edges ~beta:0.05 < edges ~beta:1.0)

let test_barabasi_albert_shape () =
  let rng = Prng.create ~seed:6 in
  let g = Topo.barabasi_albert rng ~n:50 ~m:2 in
  Alcotest.(check int) "nodes" 50 (G.num_nodes g);
  (* Seed clique of 3 edges + 2 per arriving node. *)
  Alcotest.(check int) "edges" (3 + (2 * 47)) (G.num_edges g);
  Alcotest.(check bool) "connected" true (G.is_connected g);
  (* Preferential attachment produces at least one well-connected hub. *)
  let max_degree =
    List.fold_left (fun acc v -> Stdlib.max acc (G.degree g v)) 0
      (List.init 50 Fun.id)
  in
  Alcotest.(check bool) "hub exists" true (max_degree >= 8)

let prop_topologies_valid_graphs =
  QCheck2.Test.make ~name:"topology models produce valid simple-ish graphs"
    ~count:60
    QCheck2.Gen.(pair (int_range 1 40) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Prng.create ~seed in
      let w = Topo.waxman rng ~n ~alpha:0.7 ~beta:0.4 in
      let b = Topo.barabasi_albert rng ~n ~m:2 in
      G.num_nodes w = n && G.num_nodes b = n
      && G.fold_edges (fun _ (u, v) ok -> ok && u <> v) w true
      && G.fold_edges (fun _ (u, v) ok -> ok && u <> v) b true)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dls_graph"
    [ ( "construction",
        [ Alcotest.test_case "basic" `Quick test_create_basic;
          Alcotest.test_case "self loop rejected" `Quick test_create_rejects_self_loop;
          Alcotest.test_case "range checked" `Quick test_create_rejects_out_of_range;
          Alcotest.test_case "parallel edges" `Quick test_parallel_edges_allowed;
          Alcotest.test_case "constructors" `Quick test_constructors ] );
      ( "paths",
        [ Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
          Alcotest.test_case "path/edge consistency" `Quick test_path_edges_consistent;
          Alcotest.test_case "dijkstra = bfs on unit weights" `Quick
            test_dijkstra_matches_bfs_on_unit_weights;
          Alcotest.test_case "dijkstra weighted" `Quick test_dijkstra_weighted;
          Alcotest.test_case "connect components" `Quick test_connect_components ] );
      ( "mis",
        [ Alcotest.test_case "known values" `Quick test_mis_known;
          Alcotest.test_case "set independent" `Quick test_mis_set_is_independent ] );
      ( "topologies",
        [ Alcotest.test_case "waxman validation" `Quick test_waxman_parameters_checked;
          Alcotest.test_case "waxman short bias" `Quick test_waxman_prefers_short_links;
          Alcotest.test_case "barabasi-albert shape" `Quick test_barabasi_albert_shape ] );
      qsuite "graph-prop"
        [ prop_mis_matches_brute_force; prop_gnp_connected_after_repair;
          prop_bfs_triangle_inequality; prop_topologies_valid_graphs ] ]
