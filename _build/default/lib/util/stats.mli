(** Small descriptive-statistics helpers used by the experiment harness
    to aggregate per-platform results into the series reported in the
    paper's figures. *)

val mean : float array -> float
(** Arithmetic mean; 0 on an empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 on arrays of length < 2. *)

val median : float array -> float
(** Median (average of the two middle elements for even lengths); 0 on
    an empty array.  Does not mutate its argument. *)

val percentile : float array -> p:float -> float
(** [percentile a ~p] for [p] in [\[0,100\]], linear interpolation between
    closest ranks; 0 on an empty array. *)

val min_max : float array -> float * float
(** Minimum and maximum.
    @raise Invalid_argument on an empty array. *)

val geometric_mean : float array -> float
(** Geometric mean of strictly positive values; 0 on an empty array. *)
