(** Fixed-pool data parallelism over OCaml 5 domains.

    The experiment sweeps evaluate hundreds of independent platforms;
    each evaluation is pure CPU (simplex pivots), so they scale across
    cores.  This is a deliberately small work-stealing-free pool: tasks
    are indexed, each domain repeatedly claims the next undone index
    with an atomic counter, and results land in a pre-sized array — no
    locks on the hot path, deterministic output order regardless of
    scheduling.

    Determinism note for callers: generate the random inputs
    {e sequentially} first (so the PRNG draws are reproducible), then
    map over them in parallel. *)

val num_domains : unit -> int
(** Pool width used by default: [Domain.recommended_domain_count],
    capped at 8 (simplex working sets are cache-hungry). *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f inputs] applies [f] to every element, in parallel when
    [domains > 1] (default {!num_domains}).  Exceptions raised by [f]
    are re-raised in the caller after all domains join.  Result order
    matches input order. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** List convenience wrapper over {!map}. *)
