lib/util/prng.mli:
