lib/util/stats.mli:
