lib/util/json.mli:
