lib/util/parallel.mli:
