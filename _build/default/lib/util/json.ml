type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string v =
  if not (Float.is_finite v) then
    invalid_arg "Json.to_string: non-finite number";
  if Float.is_integer v && Float.abs v < 1e15 then
    (* Exact small integers print without an exponent or fraction —
       indices, counts and grid values stay human-readable. *)
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let to_string t =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v -> Buffer.add_string buf (number_to_string v)
    | Str s -> escape_string buf s
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, value) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf name;
          Buffer.add_char buf ':';
          go value)
        fields;
      Buffer.add_char buf '}'
  in
  go t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent, error by exception, caught at the top   *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { input : string; mutable pos : int }

let peek c = if c.pos < String.length c.input then Some c.input.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let expect c ch =
  match peek c with
  | Some got when got = ch -> advance c
  | Some got -> parse_error "expected '%c' at offset %d, got '%c'" ch c.pos got
  | None -> parse_error "expected '%c' at offset %d, got end of input" ch c.pos

let skip_ws c =
  let continue = ref true in
  while !continue do
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> advance c
    | _ -> continue := false
  done

let expect_literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.input && String.sub c.input c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error "invalid literal at offset %d" c.pos

let utf8_of_code_point buf cp =
  (* Encode one Unicode scalar value as UTF-8. *)
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_hex4 c =
  let digit ch =
    match ch with
    | '0' .. '9' -> Char.code ch - Char.code '0'
    | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
    | _ -> parse_error "invalid \\u escape at offset %d" c.pos
  in
  let acc = ref 0 in
  for _ = 1 to 4 do
    (match peek c with
     | Some ch -> acc := (!acc * 16) + digit ch
     | None -> parse_error "truncated \\u escape at offset %d" c.pos);
    advance c
  done;
  !acc

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string at offset %d" c.pos
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
       | None -> parse_error "unterminated escape at offset %d" c.pos
       | Some ch ->
         advance c;
         (match ch with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            let cp = parse_hex4 c in
            let cp =
              (* Combine a surrogate pair into one code point. *)
              if cp >= 0xD800 && cp <= 0xDBFF then begin
                expect c '\\';
                expect c 'u';
                let lo = parse_hex4 c in
                if lo < 0xDC00 || lo > 0xDFFF then
                  parse_error "unpaired surrogate at offset %d" c.pos;
                0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
              end
              else if cp >= 0xDC00 && cp <= 0xDFFF then
                parse_error "unpaired surrogate at offset %d" c.pos
              else cp
            in
            utf8_of_code_point buf cp
          | _ -> parse_error "invalid escape '\\%c' at offset %d" ch c.pos));
      go ()
    | Some ch when Char.code ch < 0x20 ->
      parse_error "unescaped control character at offset %d" c.pos
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let consume_while pred =
    let continue = ref true in
    while !continue do
      match peek c with
      | Some ch when pred ch -> advance c
      | _ -> continue := false
    done
  in
  let digits () =
    let before = c.pos in
    consume_while (function '0' .. '9' -> true | _ -> false);
    if c.pos = before then parse_error "malformed number at offset %d" c.pos
  in
  (match peek c with Some '-' -> advance c | _ -> ());
  digits ();
  (match peek c with
   | Some '.' ->
     advance c;
     digits ()
   | _ -> ());
  (match peek c with
   | Some ('e' | 'E') ->
     advance c;
     (match peek c with Some ('+' | '-') -> advance c | _ -> ());
     digits ()
   | _ -> ());
  let text = String.sub c.input start (c.pos - start) in
  match float_of_string_opt text with
  | Some v -> v
  | None -> parse_error "malformed number %S at offset %d" text start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input at offset %d" c.pos
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let name = parse_string c in
        skip_ws c;
        expect c ':';
        let value = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((name, value) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((name, value) :: acc)
        | _ -> parse_error "expected ',' or '}' at offset %d" c.pos
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec items acc =
        let value = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (value :: acc)
        | Some ']' ->
          advance c;
          List.rev (value :: acc)
        | _ -> parse_error "expected ',' or ']' at offset %d" c.pos
      in
      Arr (items [])
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> expect_literal c "true" (Bool true)
  | Some 'f' -> expect_literal c "false" (Bool false)
  | Some 'n' -> expect_literal c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> parse_error "unexpected character '%c' at offset %d" ch c.pos

let of_string input =
  let c = { input; pos = 0 } in
  match parse_value c with
  | value ->
    skip_ws c;
    if c.pos = String.length input then Ok value
    else Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Num _ -> "number"
  | Str _ -> "string"
  | Arr _ -> "array"
  | Obj _ -> "object"

let to_num = function
  | Num v -> Ok v
  | t -> Error ("expected number, got " ^ type_name t)

let to_int = function
  | Num v when Float.is_integer v && Float.abs v <= 4503599627370496.0 ->
    Ok (int_of_float v)
  | Num _ -> Error "expected integer, got fractional number"
  | t -> Error ("expected integer, got " ^ type_name t)

let to_str = function
  | Str s -> Ok s
  | t -> Error ("expected string, got " ^ type_name t)

let to_bool = function
  | Bool b -> Ok b
  | t -> Error ("expected bool, got " ^ type_name t)

let to_list = function
  | Arr items -> Ok items
  | t -> Error ("expected array, got " ^ type_name t)
