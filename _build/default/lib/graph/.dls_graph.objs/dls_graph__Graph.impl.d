lib/graph/graph.ml: Array Dls_util Format List Queue Stdlib
