lib/graph/topologies.mli: Dls_util Graph
