lib/graph/topologies.ml: Array Dls_util Float Graph Hashtbl List Stdlib
