lib/graph/graph.mli: Dls_util Format
