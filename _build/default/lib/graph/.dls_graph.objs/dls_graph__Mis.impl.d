lib/graph/mis.ml: Array Graph Hashtbl List Stdlib
