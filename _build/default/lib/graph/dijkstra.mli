(** Weighted single-source shortest paths.

    The platform's default routing uses hop counts ({!Graph.shortest_path}),
    but the generator also supports latency-weighted routing — an
    evolution the paper's conclusion calls for — which needs Dijkstra. *)

val distances : Graph.t -> weight:(int -> float) -> src:int -> float array
(** [distances g ~weight ~src] where [weight edge_id >= 0.]; unreachable
    nodes get [infinity].
    @raise Invalid_argument on a negative weight or bad [src]. *)

val shortest_path :
  Graph.t -> weight:(int -> float) -> src:int -> dst:int ->
  (int list * int list) option
(** Minimum-weight path as [(nodes, edge_ids)], like
    {!Graph.shortest_path}. *)
