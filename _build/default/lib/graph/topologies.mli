(** Internet-like random topology models.

    The paper samples inter-cluster graphs with uniform edge probability
    (Erdos-Renyi, {!Graph.gnp}).  The simulation literature it builds on
    (SimGrid, GT-ITM/BRITE-style generators) favours models with
    geography and preferential attachment; these are provided for the
    topology-model ablation, with the same connectivity-repair
    convention as the Table 1 generator. *)

val waxman :
  Dls_util.Prng.t -> n:int -> alpha:float -> beta:float -> Graph.t
(** Waxman (1988): nodes are placed uniformly in the unit square and
    each pair is joined with probability
    [alpha * exp (-d / (beta * sqrt 2.))] where [d] is their Euclidean
    distance — short links dominate.  [alpha] scales density in (0, 1],
    [beta] in (0, 1] controls the reach of long links.
    @raise Invalid_argument on parameters outside (0, 1] or negative n. *)

val barabasi_albert : Dls_util.Prng.t -> n:int -> m:int -> Graph.t
(** Barabasi-Albert preferential attachment: nodes arrive one at a time
    and connect to [m] distinct existing nodes chosen with probability
    proportional to their degree — yielding the heavy-tailed degree
    distributions observed in router-level internet maps.  The first
    [min (m+1) n] nodes form a clique seed.
    @raise Invalid_argument if [m < 1] or [n < 1]. *)
