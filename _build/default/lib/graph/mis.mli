(** Exact maximum independent set.

    Section 4 of the paper proves NP-completeness of the steady-state
    throughput problem by reduction from MAXIMUM-INDEPENDENT-SET.  The
    test suite validates our implementation of that reduction in both
    directions, which requires ground-truth MIS values; this module
    computes them by branch and bound over bitset adjacency, exact for
    graphs of up to 62 nodes (far beyond what the gadget tests need). *)

val max_independent_set : Graph.t -> int list
(** Nodes of one maximum independent set (sorted ascending).
    @raise Invalid_argument for graphs with more than 62 nodes. *)

val independence_number : Graph.t -> int
(** Size of a maximum independent set. *)

val is_independent : Graph.t -> int list -> bool
(** Whether the given node set is independent (no edge inside). *)
