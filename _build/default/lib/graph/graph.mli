(** Undirected multigraph with integer nodes and identified edges.

    The platform's inter-cluster topology (Section 2 of the paper) is a
    graph of routers and backbone links; edge identities matter because
    each backbone link carries its own [bw]/[max-connect] parameters and
    the routing tables are ordered lists of edge ids. *)

type t

val create : n:int -> edges:(int * int) list -> t
(** [create ~n ~edges] builds a graph on nodes [0 .. n-1]; edge [i] of
    the list gets id [i].  Self-loops are rejected; parallel edges are
    allowed (they are distinct backbone links).
    @raise Invalid_argument on out-of-range endpoints or self-loops. *)

val num_nodes : t -> int
val num_edges : t -> int

val endpoints : t -> int -> int * int
(** Endpoints of an edge id.
    @raise Invalid_argument on a bad id. *)

val neighbors : t -> int -> (int * int) list
(** [(neighbor, edge_id)] pairs incident to a node. *)

val degree : t -> int -> int

val mem_edge : t -> int -> int -> bool
(** Whether some edge joins the two nodes. *)

val edges : t -> (int * int) array
(** Endpoint array indexed by edge id. *)

val fold_edges : (int -> int * int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_edges f g acc] folds [f edge_id (u, v)] over all edges. *)

val is_connected : t -> bool
(** True for the empty and one-node graphs. *)

val components : t -> int array
(** Component label per node (labels are arbitrary but consistent). *)

val bfs_distances : t -> src:int -> int array
(** Hop distances from [src]; [max_int] for unreachable nodes. *)

val shortest_path : t -> src:int -> dst:int -> (int list * int list) option
(** Minimum-hop path as [(node_list, edge_id_list)], with
    [node_list = src :: ... :: dst] and one edge id per hop.  [None] when
    unreachable; [Some ([src], [])] when [src = dst].  Deterministic:
    ties are broken toward smaller node ids. *)

(** {2 Constructors used by tests and examples} *)

val complete : int -> t
val path_graph : int -> t
val cycle : int -> t
(** @raise Invalid_argument for [cycle n] with [n < 3]. *)

val star : int -> t
(** [star n]: node 0 joined to nodes [1 .. n-1]. *)

val petersen : unit -> t
(** The Petersen graph (10 nodes, 15 edges); its maximum independent set
    has size 4 — a classic witness for the MIS-based reduction tests. *)

val gnp : Dls_util.Prng.t -> n:int -> p:float -> t
(** Erdos-Renyi random graph: each pair joined with probability [p]. *)

val connect_components : Dls_util.Prng.t -> t -> t
(** Adds uniformly chosen inter-component edges until the graph is
    connected (at most [#components - 1] new edges); the input edges keep
    their ids, new edges get fresh ids at the end. *)

val pp : Format.formatter -> t -> unit
