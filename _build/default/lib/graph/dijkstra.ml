(* Binary-heap Dijkstra with lazy deletion.  The heap is a simple array
   of (distance, node) pairs; stale entries are skipped on pop. *)

module Heap = struct
  type t = { mutable data : (float * int) array; mutable size : int }

  let create () = { data = Array.make 16 (0.0, 0); size = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h x =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) (0.0, 0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- x;
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          swap h !i !smallest;
          i := !smallest
        end
      done;
      Some top
    end
end

let run g ~weight ~src =
  let n = Graph.num_nodes g in
  if src < 0 || src >= n then invalid_arg "Dijkstra: bad source";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let heap = Heap.create () in
  dist.(src) <- 0.0;
  Heap.push heap (0.0, src);
  let finished = ref false in
  while not !finished do
    match Heap.pop heap with
    | None -> finished := true
    | Some (d, u) ->
      if d <= dist.(u) then
        List.iter
          (fun (v, e) ->
            let w = weight e in
            if w < 0.0 then invalid_arg "Dijkstra: negative weight";
            let nd = d +. w in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              parent.(v) <- u;
              parent_edge.(v) <- e;
              Heap.push heap (nd, v)
            end)
          (Graph.neighbors g u)
  done;
  (dist, parent, parent_edge)

let distances g ~weight ~src =
  let dist, _, _ = run g ~weight ~src in
  dist

let shortest_path g ~weight ~src ~dst =
  let n = Graph.num_nodes g in
  if dst < 0 || dst >= n then invalid_arg "Dijkstra: bad destination";
  let dist, parent, parent_edge = run g ~weight ~src in
  if Float.is_finite dist.(dst) then begin
    let rec walk v nodes edges =
      if v = src then (v :: nodes, edges)
      else walk parent.(v) (v :: nodes) (parent_edge.(v) :: edges)
    in
    Some (walk dst [] [])
  end
  else None
