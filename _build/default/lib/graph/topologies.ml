module Prng = Dls_util.Prng

let waxman rng ~n ~alpha ~beta =
  if n < 0 then invalid_arg "Topologies.waxman: negative node count";
  if alpha <= 0.0 || alpha > 1.0 || beta <= 0.0 || beta > 1.0 then
    invalid_arg "Topologies.waxman: alpha and beta must be in (0, 1]";
  let xs = Array.init n (fun _ -> Prng.float rng ~lo:0.0 ~hi:1.0) in
  let ys = Array.init n (fun _ -> Prng.float rng ~lo:0.0 ~hi:1.0) in
  let max_dist = Float.sqrt 2.0 in
  let edges = ref [] in
  for u = n - 1 downto 0 do
    for v = n - 1 downto u + 1 do
      let dx = xs.(u) -. xs.(v) and dy = ys.(u) -. ys.(v) in
      let d = Float.sqrt ((dx *. dx) +. (dy *. dy)) in
      let p = alpha *. Float.exp (-.d /. (beta *. max_dist)) in
      if Prng.bool rng ~p then edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n ~edges:!edges

let barabasi_albert rng ~n ~m =
  if n < 1 then invalid_arg "Topologies.barabasi_albert: need at least one node";
  if m < 1 then invalid_arg "Topologies.barabasi_albert: m must be >= 1";
  let seed = Stdlib.min (m + 1) n in
  let edges = ref [] in
  (* Clique seed. *)
  for u = 0 to seed - 1 do
    for v = u + 1 to seed - 1 do
      edges := (u, v) :: !edges
    done
  done;
  (* Degree-proportional attachment via the repeated-endpoints trick:
     picking a uniform endpoint of the current edge list IS picking a
     node with probability proportional to its degree. *)
  let endpoints = ref [] in
  List.iter (fun (u, v) -> endpoints := u :: v :: !endpoints) !edges;
  let endpoint_array = ref (Array.of_list !endpoints) in
  for v = seed to n - 1 do
    let targets = Hashtbl.create m in
    let guard = ref (100 * (m + 1)) in
    while Hashtbl.length targets < Stdlib.min m v && !guard > 0 do
      decr guard;
      let t =
        if Array.length !endpoint_array = 0 then Prng.int rng ~lo:0 ~hi:(v - 1)
        else Prng.pick rng !endpoint_array
      in
      if t < v then Hashtbl.replace targets t ()
    done;
    (* Fallback for degenerate seeds: fill with uniform picks. *)
    while Hashtbl.length targets < Stdlib.min m v do
      Hashtbl.replace targets (Prng.int rng ~lo:0 ~hi:(v - 1)) ()
    done;
    let new_endpoints = ref [] in
    Hashtbl.iter
      (fun t () ->
        edges := (t, v) :: !edges;
        new_endpoints := t :: v :: !new_endpoints)
      targets;
    endpoint_array :=
      Array.append !endpoint_array (Array.of_list !new_endpoints)
  done;
  Graph.create ~n ~edges:!edges
