type t = {
  n : int;
  edge_ends : (int * int) array;
  adj : (int * int) list array;  (* (neighbor, edge_id), reversed insertion order *)
}

let create ~n ~edges =
  if n < 0 then invalid_arg "Graph.create: negative node count";
  let edge_ends = Array.of_list edges in
  let adj = Array.make (Stdlib.max n 1) [] in
  Array.iteri
    (fun id (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.create: endpoint out of range";
      if u = v then invalid_arg "Graph.create: self-loop";
      adj.(u) <- (v, id) :: adj.(u);
      adj.(v) <- (u, id) :: adj.(v))
    edge_ends;
  { n; edge_ends; adj }

let num_nodes g = g.n
let num_edges g = Array.length g.edge_ends

let endpoints g id =
  if id < 0 || id >= Array.length g.edge_ends then
    invalid_arg "Graph.endpoints: bad edge id";
  g.edge_ends.(id)

let neighbors g u =
  if u < 0 || u >= g.n then invalid_arg "Graph.neighbors: bad node";
  g.adj.(u)

let degree g u = List.length (neighbors g u)

let mem_edge g u v = List.exists (fun (w, _) -> w = v) (neighbors g u)

let edges g = Array.copy g.edge_ends

let fold_edges f g acc =
  let acc = ref acc in
  Array.iteri (fun id ends -> acc := f id ends !acc) g.edge_ends;
  !acc

let components g =
  let label = Array.make (Stdlib.max g.n 1) (-1) in
  let next = ref 0 in
  for s = 0 to g.n - 1 do
    if label.(s) < 0 then begin
      let c = !next in
      incr next;
      let queue = Queue.create () in
      Queue.add s queue;
      label.(s) <- c;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun (v, _) ->
            if label.(v) < 0 then begin
              label.(v) <- c;
              Queue.add v queue
            end)
          g.adj.(u)
      done
    end
  done;
  Array.sub label 0 g.n

let is_connected g =
  if g.n <= 1 then true
  else begin
    let label = components g in
    Array.for_all (fun c -> c = 0) label
  end

let bfs_distances g ~src =
  if src < 0 || src >= g.n then invalid_arg "Graph.bfs_distances: bad node";
  let dist = Array.make g.n max_int in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun (v, _) ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      g.adj.(u)
  done;
  dist

let shortest_path g ~src ~dst =
  if src < 0 || src >= g.n || dst < 0 || dst >= g.n then
    invalid_arg "Graph.shortest_path: bad node";
  if src = dst then Some ([ src ], [])
  else begin
    (* BFS storing parents; neighbor lists are scanned in ascending node
       order so tie-breaking is deterministic. *)
    let parent = Array.make g.n (-1) in
    let parent_edge = Array.make g.n (-1) in
    let dist = Array.make g.n max_int in
    dist.(src) <- 0;
    let queue = Queue.create () in
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let nbrs =
        List.sort (fun (a, ea) (b, eb) -> Stdlib.compare (a, ea) (b, eb)) g.adj.(u)
      in
      List.iter
        (fun (v, e) ->
          if dist.(v) = max_int then begin
            dist.(v) <- dist.(u) + 1;
            parent.(v) <- u;
            parent_edge.(v) <- e;
            Queue.add v queue
          end)
        nbrs
    done;
    if dist.(dst) = max_int then None
    else begin
      let rec walk v nodes edges_acc =
        if v = src then (v :: nodes, edges_acc)
        else walk parent.(v) (v :: nodes) (parent_edge.(v) :: edges_acc)
      in
      Some (walk dst [] [])
    end
  end

let complete n =
  let edges = ref [] in
  for u = n - 1 downto 0 do
    for v = n - 1 downto u + 1 do
      edges := (u, v) :: !edges
    done
  done;
  create ~n ~edges:!edges

let path_graph n =
  create ~n ~edges:(List.init (Stdlib.max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Graph.cycle: need at least 3 nodes";
  create ~n ~edges:(List.init n (fun i -> (i, (i + 1) mod n)))

let star n =
  create ~n ~edges:(List.init (Stdlib.max 0 (n - 1)) (fun i -> (0, i + 1)))

let petersen () =
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  create ~n:10 ~edges:(outer @ spokes @ inner)

let gnp rng ~n ~p =
  let edges = ref [] in
  for u = n - 1 downto 0 do
    for v = n - 1 downto u + 1 do
      if Dls_util.Prng.bool rng ~p then edges := (u, v) :: !edges
    done
  done;
  create ~n ~edges:!edges

let connect_components rng g =
  let label = components g in
  let ncomp = Array.fold_left (fun m c -> Stdlib.max m (c + 1)) 0 label in
  if ncomp <= 1 then g
  else begin
    (* Pick one random representative pair per merge, chaining components
       in a random order. *)
    let members = Array.make ncomp [] in
    Array.iteri (fun v c -> members.(c) <- v :: members.(c)) label;
    let order = Array.init ncomp (fun c -> c) in
    Dls_util.Prng.shuffle rng order;
    let new_edges = ref [] in
    for i = 0 to ncomp - 2 do
      let a = Array.of_list members.(order.(i)) in
      let b = Array.of_list members.(order.(i + 1)) in
      let u = Dls_util.Prng.pick rng a in
      let v = Dls_util.Prng.pick rng b in
      new_edges := (u, v) :: !new_edges
    done;
    create ~n:g.n ~edges:(Array.to_list g.edge_ends @ List.rev !new_edges)
  end

let pp fmt g =
  Format.fprintf fmt "@[<v>graph n=%d m=%d@," g.n (num_edges g);
  Array.iteri (fun id (u, v) -> Format.fprintf fmt "  e%d: %d -- %d@," id u v) g.edge_ends;
  Format.fprintf fmt "@]"
