(* Branch and bound on int bitsets.  At each step, pick the remaining
   vertex of maximum degree (within the candidate set); either exclude it
   or include it and drop its neighborhood.  The candidate count is an
   upper bound used for pruning. *)

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let lowest_bit_index x =
  let rec go i x = if x land 1 = 1 then i else go (i + 1) (x lsr 1) in
  go 0 x

let max_independent_set g =
  let n = Graph.num_nodes g in
  if n > 62 then invalid_arg "Mis.max_independent_set: more than 62 nodes";
  let nbr = Array.make (Stdlib.max n 1) 0 in
  Graph.fold_edges
    (fun _ (u, v) () ->
      nbr.(u) <- nbr.(u) lor (1 lsl v);
      nbr.(v) <- nbr.(v) lor (1 lsl u))
    g ();
  let best = ref 0 and best_set = ref 0 in
  let rec branch candidates current size =
    if size + popcount candidates <= !best then ()
    else if candidates = 0 then begin
      if size > !best then begin
        best := size;
        best_set := current
      end
    end
    else begin
      (* Choose the candidate with the most candidate-neighbors: removing
         it simplifies the most. *)
      let pick = ref (-1) and pick_deg = ref (-1) in
      let rest = ref candidates in
      while !rest <> 0 do
        let v = lowest_bit_index !rest in
        rest := !rest land (!rest - 1);
        let d = popcount (nbr.(v) land candidates) in
        if d > !pick_deg then begin
          pick_deg := d;
          pick := v
        end
      done;
      let v = !pick in
      let vbit = 1 lsl v in
      (* Include v. *)
      branch (candidates land lnot (vbit lor nbr.(v))) (current lor vbit) (size + 1);
      (* Exclude v. *)
      branch (candidates land lnot vbit) current size
    end
  in
  if n > 0 then branch ((1 lsl n) - 1) 0 0;
  let result = ref [] in
  for v = n - 1 downto 0 do
    if !best_set land (1 lsl v) <> 0 then result := v :: !result
  done;
  !result

let independence_number g = List.length (max_independent_set g)

let is_independent g nodes =
  let set = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace set v ()) nodes;
  Graph.fold_edges
    (fun _ (u, v) ok -> ok && not (Hashtbl.mem set u && Hashtbl.mem set v))
    g true
