(** Flow-level execution of a periodic steady-state schedule.

    The paper argues (Section 3.2) that any valid allocation can be
    turned into a periodic schedule: during each period every cluster
    ships its chunks and computes the chunks received in the previous
    period.  This simulator executes that pattern under the Section 2
    bandwidth-sharing model — local links max-min shared, backbone
    connections individually capped — and measures the long-run
    throughput actually achieved per application, providing an
    independent, equation-free check of the steady-state analysis.

    Transfers of one period all start at the period boundary; rates are
    the max-min fair equilibrium, recomputed at every flow completion
    (processor sharing).  A chunk becomes computable at the destination
    when its transfer completes; clusters drain their compute queues at
    their speed, FIFO and work-conserving.  Transfers that overrun their
    period (possible: per-link feasibility does not imply that the
    concurrent max-min schedule meets every deadline) simply continue,
    delaying their chunk — the measured throughput quantifies the
    effect. *)

type stats = {
  predicted : float array;
  (** per-application throughput promised by the allocation, [alpha_k] *)
  achieved : float array;
  (** per-application work computed per time unit over the measurement
      window (after warm-up) *)
  late_transfers : int;
  (** transfers that completed after the period in which they started *)
  stalled_transfers : int;
  (** transfers that could never move (zero rate); an infeasible input *)
}

val run :
  ?periods:int ->
  ?warmup:int ->
  ?latency:Latency.t ->
  Dls_core.Problem.t ->
  Dls_core.Allocation.t ->
  stats
(** [run ~periods ~warmup problem alloc] simulates [periods] periods of
    unit length (defaults 20) and measures over the last
    [periods - warmup] (default warm-up 2).  With [latency], chunk
    arrivals are delayed by the one-way path latency and link sharing is
    RTT-biased ({!Latency.tcp_weight}) — the refinement the paper's
    conclusion proposes; steady-state throughput is unaffected
    asymptotically (latency is a constant offset per chunk) but warm-up
    takes longer and fairness between long and short routes degrades,
    which the stats expose.
    @raise Invalid_argument if [periods <= warmup] or either is
    negative. *)

val efficiency : stats -> float
(** Ratio of total achieved to total predicted throughput (1 when the
    simulation delivers everything the equations promise); 1 when
    nothing was predicted. *)
