(** Link latencies — the network-model refinement the paper's
    conclusion calls for ("include link latencies, TCP bandwidth sharing
    behaviors according to round-trip times").

    Latencies live beside the platform rather than inside it: the
    steady-state equations are latency-free (start-up costs vanish in
    the periodic regime, as the paper notes), so only the flow-level
    simulator consumes this data — to delay chunk arrivals by the
    one-way path latency and to bias bandwidth sharing by 1/RTT like
    TCP does. *)

type t

val none : Dls_platform.Platform.t -> t
(** All latencies zero: the simulator behaves exactly as without. *)

val uniform :
  Dls_platform.Platform.t -> backbone:float -> local:float -> t
(** Same latency on every backbone link / local link.
    @raise Invalid_argument on negative latencies. *)

val of_arrays :
  Dls_platform.Platform.t -> link:float array -> local:float array -> t
(** Explicit per-backbone and per-cluster latencies.
    @raise Invalid_argument on wrong lengths or negative entries. *)

val one_way : Dls_platform.Platform.t -> t -> int -> int -> float
(** Path latency from cluster [k] to cluster [l]: both local links plus
    every backbone link on the route; [infinity] if unreachable; 0 for
    [k = l]. *)

val rtt : Dls_platform.Platform.t -> t -> int -> int -> float
(** Round-trip time: twice {!one_way}. *)

val tcp_weight : Dls_platform.Platform.t -> t -> int -> int -> float
(** Sharing weight [1 / max(rtt, 1e-6)] — flows with shorter round
    trips get proportionally more of a saturated link, the first-order
    TCP behaviour. *)
