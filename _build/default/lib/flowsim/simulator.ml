module P = Dls_platform.Platform
module A = Dls_core.Allocation

type stats = {
  predicted : float array;
  achieved : float array;
  late_transfers : int;
  stalled_transfers : int;
}

type flow = {
  src : int;
  dst : int;
  amount : float;
  mutable remaining : float;
  cap : float;
  weight : float;
  delay : float;  (* one-way path latency added to the arrival *)
  spawned : float;  (* period-start time *)
}

let eps = 1e-9

let run ?(periods = 20) ?(warmup = 2) ?latency problem alloc =
  if warmup < 0 || periods <= warmup then
    invalid_arg "Simulator.run: need 0 <= warmup < periods";
  let p = Dls_core.Problem.platform problem in
  let kk = P.num_clusters p in
  let horizon = float_of_int periods in
  let predicted = Array.init kk (A.app_throughput alloc) in
  let capacities = Array.init kk (P.local_bw p) in
  (* Transfers of one period, described once and respawned each period.
     With a latency model, sharing weights follow 1/RTT and arrivals are
     delayed by the one-way path latency. *)
  let pattern = ref [] in
  for k = kk - 1 downto 0 do
    for l = kk - 1 downto 0 do
      if k <> l && alloc.A.alpha.(k).(l) > eps then begin
        let cap =
          match P.route_bottleneck p k l with
          | None -> 0.0
          | Some bw when bw = infinity -> infinity  (* co-located *)
          | Some bw -> float_of_int alloc.A.beta.(k).(l) *. bw
        in
        let weight, delay =
          match latency with
          | None -> (1.0, 0.0)
          | Some lat -> (Latency.tcp_weight p lat k l, Latency.one_way p lat k l)
        in
        pattern := (k, l, alloc.A.alpha.(k).(l), cap, weight, delay) :: !pattern
      end
    done
  done;
  let active : flow list ref = ref [] in
  let arrivals = ref [] in  (* (time, cluster, app, amount) *)
  let late = ref 0 and stalled = ref 0 in
  let t = ref 0.0 in
  let next_spawn = ref 0 in
  let guard = ref (1000 * (periods + 1) * (1 + List.length !pattern)) in
  let finished = ref false in
  while (not !finished) && !t < horizon -. eps && !guard > 0 do
    decr guard;
    (* Spawn the period's flows and local chunks at each boundary. *)
    if !next_spawn < periods && !t >= float_of_int !next_spawn -. eps then begin
      let now = float_of_int !next_spawn in
      List.iter
        (fun (k, l, amount, cap, weight, delay) ->
          active :=
            { src = k; dst = l; amount; remaining = amount; cap; weight; delay;
              spawned = now }
            :: !active)
        !pattern;
      for k = 0 to kk - 1 do
        if alloc.A.alpha.(k).(k) > eps then
          arrivals := (now, k, k, alloc.A.alpha.(k).(k)) :: !arrivals
      done;
      incr next_spawn
    end;
    let flows = !active in
    let sharing_flows =
      List.map
        (fun f ->
          { Sharing.resources = [ f.src; f.dst ]; cap = f.cap; weight = f.weight })
        flows
    in
    let rates = Sharing.rates ~capacities sharing_flows in
    (* Time to the next event: a completion or a period boundary. *)
    let dt_complete = ref infinity in
    List.iteri
      (fun i f ->
        if rates.(i) > eps then
          dt_complete := Float.min !dt_complete (f.remaining /. rates.(i)))
      flows;
    let next_boundary =
      if !next_spawn < periods then float_of_int !next_spawn else horizon
    in
    let dt = Float.min !dt_complete (next_boundary -. !t) in
    if dt = infinity || (dt <= eps && !dt_complete = infinity && flows = []) then begin
      (* Nothing in flight and no boundary ahead: jump to the boundary. *)
      if next_boundary > !t +. eps then t := next_boundary else finished := true
    end
    else if !dt_complete = infinity && next_boundary >= horizon -. eps && flows <> []
    then begin
      (* Flows exist but none can move and no spawn will change that. *)
      stalled := !stalled + List.length flows;
      active := [];
      finished := true
    end
    else begin
      let dt = Float.max 0.0 dt in
      List.iteri (fun i f -> f.remaining <- f.remaining -. (rates.(i) *. dt)) flows;
      t := !t +. dt;
      let done_, still =
        List.partition (fun f -> f.remaining <= eps *. Float.max 1.0 f.amount) flows
      in
      List.iter
        (fun f ->
          arrivals := (!t +. f.delay, f.dst, f.src, f.amount) :: !arrivals;
          if !t +. f.delay > f.spawned +. 1.0 +. eps then incr late)
        done_;
      active := still
    end
  done;
  (* Compute phase: per-cluster FIFO fluid processing at speed s_l;
     accumulate the work each application gets done inside the
     measurement window. *)
  let window_start = float_of_int warmup in
  let window = horizon -. window_start in
  let achieved = Array.make kk 0.0 in
  let by_cluster = Array.make kk [] in
  List.iter
    (fun ((_, c, _, _) as arrival) -> by_cluster.(c) <- arrival :: by_cluster.(c))
    !arrivals;
  for c = 0 to kk - 1 do
    let s = P.speed p c in
    if s > 0.0 then begin
      let queue =
        List.sort
          (fun (t1, _, a1, _) (t2, _, a2, _) -> Stdlib.compare (t1, a1) (t2, a2))
          by_cluster.(c)
      in
      let clock = ref 0.0 in
      List.iter
        (fun (arrival_time, _, app, amount) ->
          let start = Float.max !clock arrival_time in
          let finish = start +. (amount /. s) in
          clock := finish;
          (* Work performed inside [window_start, horizon]. *)
          let lo = Float.max start window_start and hi = Float.min finish horizon in
          if hi > lo then achieved.(app) <- achieved.(app) +. (s *. (hi -. lo)))
        queue
    end
  done;
  Array.iteri (fun i w -> achieved.(i) <- w /. window) achieved;
  { predicted; achieved; late_transfers = !late; stalled_transfers = !stalled }

let efficiency stats =
  let tot a = Array.fold_left ( +. ) 0.0 a in
  let p = tot stats.predicted in
  if p <= 0.0 then 1.0 else tot stats.achieved /. p
