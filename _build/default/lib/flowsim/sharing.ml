type flow = { resources : int list; cap : float; weight : float }

let flow ?(cap = infinity) ?(weight = 1.0) resources = { resources; cap; weight }

let eps = 1e-12

(* Weighted progressive filling: all active flows rise together, flow f
   at speed weight_f * d(phi); a step ends when a resource saturates
   (its active flows freeze) or a flow hits its cap.  Each step freezes
   at least one flow, so there are at most [n] steps of cost O(n * m). *)
let rates ~capacities flows =
  let nres = Array.length capacities in
  Array.iter
    (fun c -> if c < 0.0 then invalid_arg "Sharing.rates: negative capacity")
    capacities;
  let flows = Array.of_list flows in
  let n = Array.length flows in
  Array.iter
    (fun f ->
      if f.cap < 0.0 then invalid_arg "Sharing.rates: negative cap";
      if f.weight <= 0.0 then invalid_arg "Sharing.rates: non-positive weight";
      List.iter
        (fun r ->
          if r < 0 || r >= nres then invalid_arg "Sharing.rates: unknown resource")
        f.resources)
    flows;
  let rate = Array.make n 0.0 in
  let active = Array.make n true in
  let remaining = Array.copy capacities in
  (* Sum of weights of active flows per resource. *)
  let load = Array.make nres 0.0 in
  Array.iteri
    (fun i f ->
      if f.cap <= eps then begin
        active.(i) <- false;
        rate.(i) <- Float.max 0.0 f.cap
      end
      else List.iter (fun r -> load.(r) <- load.(r) +. f.weight) f.resources)
    flows;
  let freeze i =
    if active.(i) then begin
      active.(i) <- false;
      List.iter
        (fun r -> load.(r) <- Float.max 0.0 (load.(r) -. flows.(i).weight))
        flows.(i).resources
    end
  in
  let any_active () = Array.exists Fun.id active in
  let guard = ref (n + nres + 1) in
  while any_active () && !guard > 0 do
    decr guard;
    (* Largest common fill increment d(phi) every active flow can take. *)
    let delta = ref infinity in
    Array.iteri
      (fun r cap_left -> if load.(r) > eps then delta := Float.min !delta (cap_left /. load.(r)))
      remaining;
    Array.iteri
      (fun i f ->
        if active.(i) then delta := Float.min !delta ((f.cap -. rate.(i)) /. f.weight))
      flows;
    if !delta = infinity then begin
      (* Only unconstrained flows remain (no resource, infinite cap):
         they take their cap directly. *)
      Array.iteri
        (fun i f ->
          if active.(i) then begin
            rate.(i) <- f.cap;
            freeze i
          end)
        flows
    end
    else begin
      let delta = Float.max 0.0 !delta in
      Array.iteri
        (fun i f ->
          if active.(i) then begin
            let gain = f.weight *. delta in
            rate.(i) <- rate.(i) +. gain;
            List.iter (fun r -> remaining.(r) <- remaining.(r) -. gain) f.resources
          end)
        flows;
      for i = 0 to n - 1 do
        if active.(i) then begin
          let f = flows.(i) in
          let pinned =
            rate.(i) >= f.cap -. eps
            || List.exists (fun r -> remaining.(r) <= eps) f.resources
          in
          if pinned then freeze i
        end
      done
    end
  done;
  rate
