(** Max-min fair bandwidth sharing with per-flow rate caps.

    This realizes the paper's Section 2 sharing semantics at flow level:
    local-area links are capacity-[g_k] resources shared by all flows
    that cross them, while backbone links grant each connection a fixed
    bandwidth — so a flow using [beta] connections over a route with
    bottleneck [g_{k,l}] is simply rate-capped at [beta * g_{k,l}] and
    the only shared resources are the local links.  The classical
    progressive-filling algorithm computes the unique max-min fair rate
    vector (Bertsekas & Gallager, cited as [11] in the paper). *)

type flow = {
  resources : int list;  (** shared resource ids crossed by this flow *)
  cap : float;  (** individual rate ceiling; [infinity] if none *)
  weight : float;  (** relative share; 1 for plain max-min fairness *)
}

val flow : ?cap:float -> ?weight:float -> int list -> flow
(** Convenience constructor: [cap] defaults to [infinity], [weight]
    to 1. *)

val rates : capacities:float array -> flow list -> float array
(** Weighted max-min fair rates, in flow order: progressive filling
    where flow [f] rises at speed [weight_f], so on a saturated shared
    link rates are proportional to weights — the mechanism the paper's
    future-work section points at for modelling TCP's RTT bias (weight
    [∝ 1/RTT]).  Flows crossing no resource get their cap.
    Zero-capacity resources pin their flows at 0.
    @raise Invalid_argument on a negative capacity or cap, a
    non-positive weight, or an unknown resource id. *)
