lib/flowsim/sharing.ml: Array Float Fun List
