lib/flowsim/simulator.ml: Array Dls_core Dls_platform Float Latency List Sharing Stdlib
