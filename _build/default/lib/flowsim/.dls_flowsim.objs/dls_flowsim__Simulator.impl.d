lib/flowsim/simulator.ml: Array Dls_core Dls_platform Faults Float Latency List Sharing Stdlib
