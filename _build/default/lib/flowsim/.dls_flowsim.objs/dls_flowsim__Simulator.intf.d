lib/flowsim/simulator.mli: Dls_core Faults Latency
