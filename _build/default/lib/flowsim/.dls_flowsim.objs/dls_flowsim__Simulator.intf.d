lib/flowsim/simulator.mli: Dls_core Latency
