lib/flowsim/faults.ml: Array Buffer Dls_platform Dls_util Float Format List Printf
