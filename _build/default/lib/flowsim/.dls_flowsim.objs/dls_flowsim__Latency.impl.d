lib/flowsim/latency.ml: Array Dls_platform Float List
