lib/flowsim/faults.mli: Dls_platform Format
