lib/flowsim/latency.mli: Dls_platform
