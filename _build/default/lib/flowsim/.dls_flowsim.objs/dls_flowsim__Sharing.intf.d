lib/flowsim/sharing.mli:
