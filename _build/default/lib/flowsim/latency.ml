module P = Dls_platform.Platform

type t = { link : float array; local : float array }

let check_non_negative a =
  Array.iter (fun v -> if v < 0.0 then invalid_arg "Latency: negative latency") a

let none p =
  { link = Array.make (P.num_backbones p) 0.0;
    local = Array.make (P.num_clusters p) 0.0 }

let uniform p ~backbone ~local =
  if backbone < 0.0 || local < 0.0 then invalid_arg "Latency: negative latency";
  { link = Array.make (P.num_backbones p) backbone;
    local = Array.make (P.num_clusters p) local }

let of_arrays p ~link ~local =
  if Array.length link <> P.num_backbones p then
    invalid_arg "Latency.of_arrays: one latency per backbone link required";
  if Array.length local <> P.num_clusters p then
    invalid_arg "Latency.of_arrays: one latency per cluster required";
  check_non_negative link;
  check_non_negative local;
  { link = Array.copy link; local = Array.copy local }

let one_way p t k l =
  if k = l then 0.0
  else begin
    match P.route p k l with
    | None -> infinity
    | Some links ->
      t.local.(k) +. t.local.(l)
      +. List.fold_left (fun acc e -> acc +. t.link.(e)) 0.0 links
  end

let rtt p t k l = 2.0 *. one_way p t k l

let tcp_weight p t k l =
  let r = rtt p t k l in
  if r = infinity then 1e-6 else 1.0 /. Float.max r 1e-6
