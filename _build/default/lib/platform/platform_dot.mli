(** Graphviz rendering of platforms.

    Produces a [dot] digraph mirroring the paper's Figure 1/2 pictures:
    box nodes for clusters (speed and local-link capacity in the
    label), circle nodes for routers, and undirected-style backbone
    edges labelled with per-connection bandwidth and connection cap.
    Feed the output to [dot -Tsvg] (Graphviz is not required by this
    library — the output is just a string). *)

val to_dot : Platform.t -> string

val save : path:string -> Platform.t -> unit
(** @raise Sys_error on an unwritable path. *)
